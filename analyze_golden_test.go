// Golden + budget coverage for the observability layer: the EXPLAIN
// ANALYZE profile of a Q5-shaped query is pinned byte for byte (rows,
// estimate-vs-actual join-up, attributed joules and times are all
// deterministic simulated quantities), and profiling's real wall-clock
// overhead is measured against an unprofiled run of the same statement.
package main

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"ecodb/internal/engine"
	"ecodb/internal/hw/system"
	"ecodb/internal/opt"
	"ecodb/internal/sql"
	"ecodb/internal/tpch"
)

const analyzeQ5 = `EXPLAIN ANALYZE SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
	FROM region
	JOIN nation ON n_regionkey = r_regionkey
	JOIN customer ON c_nationkey = n_nationkey
	JOIN orders ON o_custkey = c_custkey
	JOIN lineitem ON l_orderkey = o_orderkey
	JOIN supplier ON s_suppkey = l_suppkey AND s_nationkey = c_nationkey
	WHERE r_name = 'ASIA'
	  AND o_orderdate >= DATE '1994-01-01' AND o_orderdate < DATE '1995-01-01'
	GROUP BY n_name ORDER BY revenue DESC`

// TestGoldenAnalyze pins the EXPLAIN ANALYZE rendering of TPC-H Q5 under
// the latency objective (optimized path: every operator carries the
// optimizer's estimate next to its actuals) and on the hand-lowered path
// (objective disabled). Any drift in operator instrumentation, joule
// attribution, or the estimate join-up shows up here as a byte diff.
func TestGoldenAnalyze(t *testing.T) {
	mkEngine := func(obj opt.Objective) *engine.Engine {
		prof := engine.ProfileCommercial()
		prof.Objective = obj
		e := engine.New(prof, system.NewSUT())
		tpch.NewGenerator(0.01, 42).Load(e.Catalog(),
			tpch.Region, tpch.Nation, tpch.Supplier, tpch.Customer, tpch.Orders, tpch.Lineitem)
		e.WarmAll()
		return e
	}

	var b strings.Builder
	for _, tc := range []struct {
		name string
		obj  opt.Objective
	}{
		{"latency objective (optimized, estimates attached)", opt.MinimizeLatency()},
		{"objective disabled (hand-lowered)", opt.Objective{}},
	} {
		out, err := sql.ExplainAnalyze(mkEngine(tc.obj), analyzeQ5)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		fmt.Fprintf(&b, "== EXPLAIN ANALYZE Q5, %s ==\n%s\n", tc.name, out)
	}
	checkGolden(t, "analyze", b.String())
}

// BenchmarkProfileOverhead measures the real wall-clock cost of profiling
// a statement: TPC-H Q5 executed with profiling off and on, min-of-reps so
// scheduler noise cancels. The budget is <5% — instrumentation is a
// per-batch span push/pop and a handful of float adds against the
// simulated-arithmetic-heavy executor, so the overhead must stay in the
// noise. The benchmark fails when the budget is exceeded.
func BenchmarkProfileOverhead(b *testing.B) {
	m := system.NewSUT()
	e := engine.New(engine.ProfileMySQLMemory(), m)
	tpch.NewGenerator(0.01, 42).Load(e.Catalog(),
		tpch.Region, tpch.Nation, tpch.Supplier, tpch.Customer, tpch.Orders, tpch.Lineitem)
	q5 := tpch.Q5(e.Catalog(), "ASIA", 1994)

	const reps = 7
	best := func(profiling bool) time.Duration {
		e.SetProfiling(profiling)
		min := time.Duration(1<<63 - 1)
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			e.Query(q5).Close()
			if d := time.Since(t0); d < min {
				min = d
			}
		}
		return min
	}
	best(false) // warm code paths and allocator before measuring

	b.ResetTimer()
	var off, on time.Duration
	for i := 0; i < b.N; i++ {
		off = best(false)
		on = best(true)
	}
	b.StopTimer()

	overhead := 100 * (float64(on)/float64(off) - 1)
	b.ReportMetric(overhead, "overhead-%")
	b.Logf("profiling off %v, on %v, overhead %.2f%%", off, on, overhead)
	if overhead >= 5 {
		b.Fatalf("profiling overhead %.2f%% exceeds the 5%% budget (off %v, on %v)",
			overhead, off, on)
	}
}
