// Benchmarks regenerating every table and figure in the paper's
// evaluation. Each benchmark reports the headline reproduced metrics via
// b.ReportMetric so `go test -bench=. -benchmem` prints the same rows the
// paper's evaluation section reports.
//
// The figures run at reduced generated scale with work amplification (see
// internal/experiments), so a single benchmark iteration is the full
// measured experiment including the paper's five-run protocol.
package main

import (
	"testing"

	"ecodb/internal/experiments"
)

// benchConfigCommercial is a lighter protocol for benchmarking (3 runs per
// point instead of 5) at the same paper-equivalent scale factor.
func benchConfigCommercial() experiments.Config {
	cfg := experiments.DefaultCommercialConfig()
	cfg.ProtocolRuns = 3
	return cfg
}

func benchConfigMySQL() experiments.Config {
	cfg := experiments.DefaultMySQLConfig()
	cfg.ProtocolRuns = 3
	return cfg
}

// BenchmarkTable1 regenerates the system power breakdown (paper Table 1).
func BenchmarkTable1(b *testing.B) {
	var last experiments.Table1Result
	for i := 0; i < b.N; i++ {
		last = experiments.Table1()
	}
	for _, s := range last.Stages {
		b.ReportMetric(float64(s.WallW), "W_"+metricName(s.Label))
	}
}

func metricName(label string) string {
	out := make([]rune, 0, len(label))
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ':
			out = append(out, '_')
		}
	}
	return string(out)
}

// BenchmarkFigure1 regenerates the commercial-DBMS operating-point plot
// (paper Figure 1): stock vs settings A/B/C.
func BenchmarkFigure1(b *testing.B) {
	var last experiments.Figure1Result
	for i := 0; i < b.N; i++ {
		last = experiments.Figure1(benchConfigCommercial())
	}
	if len(last.Measurements) == 4 {
		b.ReportMetric(last.Measurements[0].Time.Seconds(), "s_stock")
		b.ReportMetric(float64(last.Measurements[0].CPUEnergy), "J_stock")
		b.ReportMetric(last.Measurements[1].Time.Seconds(), "s_settingA")
		b.ReportMetric(float64(last.Measurements[1].CPUEnergy), "J_settingA")
	}
}

// BenchmarkFigure2 regenerates the commercial-DBMS ratio sweep with both
// voltage downgrades (paper Figure 2).
func BenchmarkFigure2(b *testing.B) {
	var last experiments.FigureRatioResult
	for i := 0; i < b.N; i++ {
		last = experiments.Figure2(benchConfigCommercial())
	}
	for _, pt := range last.Points {
		if pt.Setting.IsStock() {
			continue
		}
		b.ReportMetric(pt.EDPChange*100, "EDP%_"+metricName(pt.Setting.String()))
	}
}

// BenchmarkFigure3 regenerates the MySQL MEMORY-engine ratio sweep (paper
// Figure 3).
func BenchmarkFigure3(b *testing.B) {
	var last experiments.FigureRatioResult
	for i := 0; i < b.N; i++ {
		last = experiments.Figure3(benchConfigMySQL())
	}
	for _, pt := range last.Points {
		if pt.Setting.IsStock() {
			continue
		}
		b.ReportMetric(pt.EDPChange*100, "EDP%_"+metricName(pt.Setting.String()))
	}
}

// BenchmarkFigure4 regenerates the observed-vs-theoretical EDP comparison
// (paper Figure 4), reporting the worst divergence between the measured
// EDP and the V²/F model.
func BenchmarkFigure4(b *testing.B) {
	var last experiments.Figure4Result
	for i := 0; i < b.N; i++ {
		last = experiments.Figure4(benchConfigMySQL())
	}
	b.ReportMetric(last.MaxDivergence()*100, "maxdiv%")
}

// BenchmarkFigure5 regenerates the disk throughput and energy-per-KB study
// (paper Figure 5).
func BenchmarkFigure5(b *testing.B) {
	var last experiments.Figure5Result
	for i := 0; i < b.N; i++ {
		last = experiments.Figure5()
	}
	r := last.RandomRatios()
	b.ReportMetric(r[0], "x_rand8KB")
	b.ReportMetric(r[1], "x_rand16KB")
	b.ReportMetric(r[2], "x_rand32KB")
}

// BenchmarkFigure6 regenerates the QED study (paper Figure 6).
func BenchmarkFigure6(b *testing.B) {
	cfg := benchConfigMySQL()
	var last experiments.Figure6Result
	for i := 0; i < b.N; i++ {
		last = experiments.Figure6(cfg)
	}
	for _, p := range last.Points {
		b.ReportMetric(100*(1-p.EnergyRatio), "Esave%_batch"+itoa(p.BatchSize))
		b.ReportMetric(100*(p.ResponseRatio-1), "resp%_batch"+itoa(p.BatchSize))
	}
}

// BenchmarkFigure6HashSet is the ablation: QED with the hash-set merge
// strategy instead of the paper's linear OR chain.
func BenchmarkFigure6HashSet(b *testing.B) {
	cfg := benchConfigMySQL()
	var last experiments.Figure6Result
	for i := 0; i < b.N; i++ {
		last = experiments.Figure6HashSet(cfg)
	}
	for _, p := range last.Points {
		b.ReportMetric(100*(1-p.EnergyRatio), "Esave%_batch"+itoa(p.BatchSize))
	}
}

// BenchmarkWarmCold regenerates the §3.5 warm-vs-cold study.
func BenchmarkWarmCold(b *testing.B) {
	var last experiments.WarmColdResult
	for i := 0; i < b.N; i++ {
		last = experiments.WarmCold(benchConfigCommercial())
	}
	b.ReportMetric(last.Warm.Time.Seconds(), "s_warm")
	b.ReportMetric(last.Cold.Time.Seconds(), "s_cold")
	b.ReportMetric(float64(last.Warm.DiskEnergy), "J_warmdisk")
	b.ReportMetric(float64(last.Cold.DiskEnergy), "J_colddisk")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
