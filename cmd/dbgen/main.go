// Command dbgen generates TPC-H tables as pipe-separated .tbl files, the
// classic dbgen output format.
//
// Usage:
//
//	dbgen [-sf 0.1] [-seed 42] [-o dir] [table...]
//
// With no table arguments, all eight tables are generated.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ecodb/internal/catalog"
	"ecodb/internal/expr"
	"ecodb/internal/tpch"
)

var (
	flagSF   = flag.Float64("sf", 0.01, "TPC-H scale factor")
	flagSeed = flag.Uint64("seed", 42, "generator seed")
	flagOut  = flag.String("o", ".", "output directory")
)

func main() {
	flag.Parse()
	tables := flag.Args()

	cat := catalog.NewCatalog()
	tpch.NewGenerator(*flagSF, *flagSeed).Load(cat, tables...)

	for _, name := range cat.Names() {
		t := cat.MustTable(name)
		if err := writeTable(t); err != nil {
			fmt.Fprintln(os.Stderr, "dbgen:", err)
			os.Exit(1)
		}
	}
}

func writeTable(t *catalog.Table) error {
	path := filepath.Join(*flagOut, t.Name+".tbl")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	w := bufio.NewWriterSize(f, 1<<20)
	var sb strings.Builder
	for p := 0; p < t.Heap.NumPages(); p++ {
		for _, row := range t.Heap.Page(p).Rows() {
			sb.Reset()
			for i, v := range row {
				if i > 0 {
					sb.WriteByte('|')
				}
				sb.WriteString(formatValue(v))
			}
			sb.WriteByte('\n')
			if _, err := w.WriteString(sb.String()); err != nil {
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("%s: %d rows (%.1f KB) -> %s\n",
		t.Name, t.Heap.NumRows(), float64(t.Heap.Bytes())/1024, path)
	return nil
}

func formatValue(v expr.Value) string {
	switch v.Kind {
	case expr.KindFloat:
		return fmt.Sprintf("%.2f", v.F)
	default:
		return v.String()
	}
}
