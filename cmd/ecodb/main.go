// Command ecodb regenerates the paper's tables and figures on the
// simulated system under test, and serves the engine over HTTP.
//
// Usage:
//
//	ecodb [flags] <experiment>...
//	ecodb serve [flags]
//
// Experiments: table1, fig1, fig2, fig3, fig4, fig5, fig6, fig6hash,
// warmcold, server, all. The serve subcommand starts the multi-tenant
// query server (see docs/OPERATIONS.md).
//
// Flags:
//
//	-sf float       generated TPC-H scale factor override
//	-amp float      work amplification override (SF×amp = paper-equivalent SF)
//	-runs int       measurement repetitions per point (default: paper's 5)
//	-seed uint      data-generation seed
//	-metrics string dump the engine metrics registry after all runs (text/json)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ecodb/internal/experiments"
	"ecodb/internal/obsv"
)

var (
	flagSF           = flag.Float64("sf", 0, "generated TPC-H scale factor override (0 = experiment default)")
	flagAmp          = flag.Float64("amp", 0, "work amplification override (0 = experiment default)")
	flagRuns         = flag.Int("runs", 0, "measurement repetitions per point (0 = experiment default)")
	flagSeed         = flag.Uint64("seed", 0, "data-generation seed (0 = experiment default)")
	flagShared       = flag.Bool("shared-scan", true, "serve non-mergeable QED batches from one shared heap pass (sharedscan experiment; false = control arm)")
	flagColumnar     = flag.Bool("columnar", true, "run the treated arm of the columnar experiment through the columnar fast paths (false = control arm: both arms row-at-a-time)")
	flagParallel     = flag.Bool("parallel-agg", true, "run the treated arm of the parallelagg experiment with worker goroutines (false = control arm: both arms serial)")
	flagParallelSort = flag.Bool("parallel-sort", true, "run the treated arms of the parallelsort experiment with worker goroutines (false = control arm: every arm serial)")
	flagZoneMaps     = flag.Bool("zone-maps", true, "enable zone-map page pruning in the compression experiment's treated arm")
	flagDict         = flag.Bool("dict-strings", true, "enable dictionary-encoded string columns in the compression experiment's treated arm")
	flagMetrics      = flag.String("metrics", "", "dump the engine metrics registry after all experiments: text or json")
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		// The query-server subcommand owns its flags; see serve.go.
		if err := runServe(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "ecodb:", err)
			os.Exit(1)
		}
		return
	}
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	for _, name := range args {
		if name == "all" {
			runAll()
			continue
		}
		if err := runOne(name); err != nil {
			fmt.Fprintln(os.Stderr, "ecodb:", err)
			os.Exit(1)
		}
	}
	if err := dumpMetrics(*flagMetrics); err != nil {
		fmt.Fprintln(os.Stderr, "ecodb:", err)
		os.Exit(1)
	}
}

// dumpMetrics prints the process-wide metrics registry — every engine the
// experiments built shares it — in the requested format.
func dumpMetrics(format string) error {
	switch format {
	case "":
		return nil
	case "text":
		fmt.Println("engine metrics:")
		fmt.Print(obsv.Default().Snapshot().Text())
	case "json":
		fmt.Print(obsv.Default().Snapshot().JSON())
	default:
		return fmt.Errorf("unknown -metrics format %q (want text or json)", format)
	}
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: ecodb [flags] <experiment>...

experiments:
  table1    system power breakdown (paper Table 1)
  fig1      commercial DBMS operating points, medium downgrade (Figure 1)
  fig2      commercial DBMS ratio sweep, both downgrades (Figure 2)
  fig3      MySQL MEMORY ratio sweep (Figure 3)
  fig4      observed vs theoretical EDP = V²/F (Figure 4)
  fig5      disk throughput and energy per KB (Figure 5)
  fig6      QED energy vs response time (Figure 6)
  fig6hash  Figure 6 with the hash-set merge strategy (ablation)
  warmcold  §3.5 warm vs cold buffer pool
  capvsuc   ablation: FSB underclocking vs multiplier capping
  mechanisms ablation: decompose setting A's savings by mechanism
  sharedscan ablation: QED shared-scan flush vs sequential (see -shared-scan)
  columnar  ablation: row-at-a-time vs columnar execution wall-clock (see -columnar)
  parallelagg ablation: serial vs morsel-parallel aggregation wall-clock (see -parallel-agg)
  parallelsort ablation: serial vs morsel-parallel sort wall-clock and
            registry joules per query at 1/2/4 workers (see -parallel-sort)
  compression ablation: plain vs compressed columnar storage — zone-map
            pruning + dictionary strings (see -zone-maps, -dict-strings)
  optimizer ablation: cost-and-energy optimizer objectives on a TPC-H Q5
            batch — hand-lowered vs latency-optimal vs joules-optimal plans
  server    ablation: query-server admission policies under open-loop load —
            latency-vs-joules Pareto at 10²–10⁴ QPS (see docs/OPERATIONS.md)
  all       every paper experiment (table1..fig6, warmcold)

subcommands:
  serve     HTTP query server with admission control (ecodb serve -help)

flags:
`)
	flag.PrintDefaults()
}

func override(cfg experiments.Config) experiments.Config {
	if *flagSF > 0 {
		cfg.SF = *flagSF
	}
	if *flagAmp > 0 {
		cfg.Amplification = *flagAmp
	}
	if *flagRuns > 0 {
		cfg.ProtocolRuns = *flagRuns
	}
	if *flagSeed != 0 {
		cfg.Seed = *flagSeed
	}
	return cfg
}

func runOne(name string) error {
	start := time.Now()
	var out fmt.Stringer
	switch name {
	case "table1":
		out = experiments.Table1()
	case "fig1":
		out = experiments.Figure1(override(experiments.DefaultCommercialConfig()))
	case "fig2":
		out = experiments.Figure2(override(experiments.DefaultCommercialConfig()))
	case "fig3":
		out = experiments.Figure3(override(experiments.DefaultMySQLConfig()))
	case "fig4":
		out = experiments.Figure4(override(experiments.DefaultMySQLConfig()))
	case "fig5":
		out = experiments.Figure5()
	case "fig6":
		out = experiments.Figure6(override(experiments.DefaultMySQLConfig()))
	case "fig6hash":
		out = experiments.Figure6HashSet(override(experiments.DefaultMySQLConfig()))
	case "warmcold":
		out = experiments.WarmCold(override(experiments.DefaultCommercialConfig()))
	case "capvsuc":
		out = experiments.CapVsUnderclock(override(experiments.DefaultCommercialConfig()))
	case "mechanisms":
		out = experiments.Mechanisms(override(experiments.DefaultCommercialConfig()))
	case "sharedscan":
		out = experiments.SharedScans(override(experiments.DefaultCommercialConfig()), *flagShared)
	case "columnar":
		out = experiments.ColumnarScan(override(experiments.DefaultCommercialConfig()), *flagColumnar)
	case "parallelagg":
		out = experiments.ParallelAgg(override(experiments.DefaultCommercialConfig()), *flagParallel)
	case "parallelsort":
		out = experiments.ParallelSort(override(experiments.DefaultCommercialConfig()), *flagParallelSort)
	case "compression":
		out = experiments.Compression(override(experiments.DefaultCommercialConfig()), *flagZoneMaps, *flagDict)
	case "optimizer":
		out = experiments.Optimizer(override(experiments.DefaultCommercialConfig()))
	case "server":
		out = experiments.Server(override(experiments.DefaultServerConfig()))
	default:
		return fmt.Errorf("unknown experiment %q (try: table1 fig1 fig2 fig3 fig4 fig5 fig6 fig6hash warmcold capvsuc mechanisms sharedscan columnar parallelagg parallelsort compression optimizer server all; flags go before the experiment name)", name)
	}
	fmt.Println(out)
	fmt.Printf("[%s regenerated in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	return nil
}

func runAll() {
	for _, name := range []string{"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "warmcold"} {
		if err := runOne(name); err != nil {
			fmt.Fprintln(os.Stderr, "ecodb:", err)
			os.Exit(1)
		}
	}
}
