package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ecodb/internal/experiments"
	"ecodb/internal/server"
	"ecodb/internal/sim"
)

// runServe is the `ecodb serve` subcommand: an HTTP query server over a
// freshly generated, warm TPC-H dataset under the serving profile. It
// serves until SIGINT/SIGTERM, then drains gracefully — every accepted
// statement is executed and answered before the process exits.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	policy := fs.String("policy", "shared", "admission policy: private, shared or deadline")
	maxInflight := fs.Int("max-inflight", 4096, "admission bound: statements accepted but not yet answered (0 rejects everything)")
	flushN := fs.Int("flush-threshold", 4, "co-admit as soon as this many statements wait")
	flushMs := fs.Float64("flush-wait-ms", 20, "max wait for co-admission before the window flushes anyway")
	slackMs := fs.Float64("urgent-slack-ms", 20, "deadline policy: remaining budget at or below this bypasses the window")
	window := fs.Int("window", 64, "max statements per co-admission batch")
	sf := fs.Float64("sf", 0.0005, "generated TPC-H scale factor")
	seed := fs.Uint64("seed", 42, "data-generation seed")
	profiling := fs.Bool("profiling", true, "profile every statement for exact per-statement joule attribution")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ecodb serve [flags]\n\nflags:")
		fs.PrintDefaults()
		fmt.Fprintln(os.Stderr, "\nendpoints: POST /query, GET /metrics, GET /healthz, GET /tenants")
		fmt.Fprintln(os.Stderr, "see docs/OPERATIONS.md for the operator's handbook")
	}
	fs.Parse(args)

	pol, err := server.ParsePolicy(*policy)
	if err != nil {
		return err
	}
	cfg := server.Config{
		Policy:         pol,
		MaxInflight:    *maxInflight,
		FlushThreshold: *flushN,
		FlushWait:      sim.Duration(*flushMs / 1e3),
		UrgentSlack:    sim.Duration(*slackMs / 1e3),
		Window:         *window,
		Profiling:      *profiling,
	}
	log.Printf("ecodb serve: generating TPC-H sf=%g", *sf)
	sys := experiments.ServerSystem(experiments.Config{
		SF: *sf, Amplification: 1, Seed: *seed, ProtocolRuns: 1,
	})
	srv := server.NewServer(server.NewCore(cfg, sys), *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		log.Printf("ecodb serve: draining")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("ecodb serve: drain: %v", err)
		}
	}()

	log.Printf("ecodb serve: listening on %s (policy=%s max-inflight=%d flush=%d/%gms)",
		*addr, pol, *maxInflight, *flushN, *flushMs)
	err = srv.ListenAndServe()
	if err == nil {
		log.Printf("ecodb serve: drained, bye")
	}
	return err
}
