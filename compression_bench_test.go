// Benchmarks for the compressed-columnar-storage path, measuring real Go
// wall-clock. Unlike the columnar and parallel benchmarks — whose treated
// arms are charging-neutral — zone-map pruning also changes simulated
// charges (skipped pages cost a zone check instead of a read); what these
// benchmarks document is the real work the host machine no longer does.
package main

import (
	"testing"

	"ecodb/internal/catalog"
	"ecodb/internal/exec"
	"ecodb/internal/expr"
	"ecodb/internal/plan"
	"ecodb/internal/tpch"
)

// drainCount runs a fresh compile of p to exhaustion and returns the row
// count.
func drainCount(b *testing.B, p plan.Node) int64 {
	b.Helper()
	ctx := benchCtx()
	var rows int64
	op := exec.Compile(p)
	if err := exec.Drain(ctx, op, func(batch *expr.Batch) error {
		rows += int64(batch.Len())
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	ctx.Flush()
	return rows
}

// BenchmarkZoneMapPrune measures a selective TPC-H-shaped range scan — a
// narrow l_orderkey band over lineitem, whose monotone key gives every heap
// page a tight disjoint zone — with pruning off versus on. The acceptance
// bar for the zone-map subsystem is ≥2× wall-clock on this path; with ~99%
// of pages skipped, observed is far above it.
func BenchmarkZoneMapPrune(b *testing.B) {
	defer expr.SetZoneMapPruning(expr.ZoneMapPruning())
	cat := catalog.NewCatalog()
	tpch.NewGenerator(0.02, 42).Load(cat, tpch.Lineitem)
	t := cat.MustTable(tpch.Lineitem)
	band := plan.NewScan(t, expr.Between{
		E:  t.Schema.Col("l_orderkey"),
		Lo: expr.Int(2001),
		Hi: expr.Int(2301),
	})

	for _, arm := range []struct {
		name    string
		pruning bool
	}{{"unpruned", false}, {"pruned", true}} {
		b.Run(arm.name, func(b *testing.B) {
			expr.SetZoneMapPruning(arm.pruning)
			var rows int64
			for i := 0; i < b.N; i++ {
				rows = drainCount(b, band)
			}
			b.ReportMetric(float64(rows), "rows")
		})
	}
}

// BenchmarkDictFilter measures a string-equality scan over orders —
// o_orderstatus has three distinct values, so every page is dictionary
// fodder and none is prunable — on dense string pages versus
// dictionary-encoded ones, where FilterBatch compiles the predicate to an
// integer code comparison. Charges are identical by construction; the
// delta is the host-side cost of string compares the codes avoid.
func BenchmarkDictFilter(b *testing.B) {
	load := func(dict bool) *catalog.Table {
		defer expr.SetDictStrings(expr.DictStrings())
		expr.SetDictStrings(dict)
		cat := catalog.NewCatalog()
		tpch.NewGenerator(0.05, 42).Load(cat, tpch.Orders)
		return cat.MustTable(tpch.Orders)
	}
	pred := func(t *catalog.Table) expr.Expr {
		return expr.Cmp{
			Op: expr.EQ,
			L:  t.Schema.Col("o_orderstatus"),
			R:  expr.Const{V: expr.String("P")},
		}
	}

	for _, arm := range []struct {
		name string
		dict bool
	}{{"dense", false}, {"dict", true}} {
		b.Run(arm.name, func(b *testing.B) {
			t := load(arm.dict)
			scan := plan.NewScan(t, pred(t))
			b.ResetTimer()
			var rows int64
			for i := 0; i < b.N; i++ {
				rows = drainCount(b, scan)
			}
			b.ReportMetric(float64(rows), "rows")
		})
	}
}
