// Adaptive SLA: run a workload under the mid-flight adaptive PVC
// controller (§1's "dynamically adapt ... to meet our response time and
// energy goals"): it starts at the deepest energy-saving point and steps
// toward stock whenever the workload falls behind its response-time
// budget.
package main

import (
	"fmt"

	"ecodb/internal/core"
	"ecodb/internal/engine"
	"ecodb/internal/hw/cpu"
	"ecodb/internal/sim"
	"ecodb/internal/tpch"
	"ecodb/internal/workload"
)

func main() {
	prof := engine.ProfileCommercial()
	prof.WorkAmplification = 25
	sys := core.NewSystem(prof)
	tpch.NewGenerator(0.02, 11).Load(sys.Engine.Catalog(),
		tpch.Region, tpch.Nation, tpch.Supplier, tpch.Customer, tpch.Orders, tpch.Lineitem)
	sys.Engine.WarmAll()
	queries := workload.NewQueries("q5", tpch.Q5Workload(sys.Engine.Catalog()))

	// Baseline stock run to size the budget.
	t0 := sys.Machine.Clock.Now()
	workload.RunSequential(sys.Engine, sys.Machine.Clock, queries)
	stockTime := sys.Machine.Clock.Now().Sub(t0)
	budget := sim.Duration(float64(stockTime) * 1.04) // allow 4% slack

	adaptive := &core.AdaptivePVC{
		Sys: sys,
		Ladder: []core.Setting{
			core.PVCSetting(0.15, cpu.DowngradeMedium), // deepest saving
			core.PVCSetting(0.10, cpu.DowngradeMedium),
			core.PVCSetting(0.05, cpu.DowngradeMedium),
			core.Stock(),
		},
		Budget: budget,
	}

	total, decisions := adaptive.Run(queries)
	fmt.Printf("stock time %v; budget %v; adaptive run %v\n\n", stockTime, budget, total)
	for _, d := range decisions {
		fmt.Printf("  %s\n", d)
	}
	if total <= budget {
		fmt.Printf("\nbudget met with energy-saving settings engaged for part of the run\n")
	} else {
		fmt.Printf("\nbudget missed by %v — ladder exhausted at stock\n", total-budget)
	}
}
