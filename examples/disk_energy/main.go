// Disk energy: measure sequential vs random read throughput and energy per
// KB on the simulated drive's two supply lines, the way the paper clamps
// current meters on the 5 V and 12 V lines (§3.5).
package main

import (
	"fmt"

	"ecodb/internal/hw/disk"
	"ecodb/internal/meter"
	"ecodb/internal/sim"
)

func main() {
	const totalBytes = 256 << 20 // 256 MB per run

	fmt.Printf("%-12s %8s %14s %12s %12s %12s\n",
		"pattern", "block", "throughput", "5V line", "12V line", "energy/KB")
	for _, pattern := range []disk.Pattern{disk.Sequential, disk.Random} {
		for _, blockKB := range []int64{4, 8, 16, 32} {
			clock := sim.NewClock()
			d := disk.New(disk.CaviarSE16(), clock)
			block := blockKB << 10

			t0 := clock.Now()
			for read := int64(0); read < totalBytes; read += block {
				clock.Advance(d.Read(block, pattern))
			}
			t1 := clock.Now()

			dur := t1.Sub(t0).Seconds()
			e5 := meter.LineMeter{Line: d.Line5V()}.Energy(t0, t1)
			e12 := meter.LineMeter{Line: d.Line12V()}.Energy(t0, t1)
			total := float64(e5) + float64(e12)
			fmt.Printf("%-12s %6dKB %11.2fMB/s %11.1fJ %11.1fJ %9.3fmJ\n",
				pattern, blockKB, float64(totalBytes)/(1<<20)/dur,
				float64(e5), float64(e12), 1000*total/(float64(totalBytes)/1024))
		}
	}
	fmt.Println("\nsequential access is more energy efficient per KB primarily because it is faster (§3.5)")
}
