// Power breakdown: reproduce the paper's Table 1 by assembling the system
// component by component and reading the wall meter, then show the live
// wall/DC/CPU readings of the full system in different states.
package main

import (
	"fmt"

	"ecodb/internal/hw/cpu"
	"ecodb/internal/hw/mobo"
	"ecodb/internal/hw/system"
)

func main() {
	fmt.Println("Table 1 (component staging, no disk, no OS):")
	fmt.Print(system.FormatBreakdown(system.PowerBreakdown()))

	// Live readings of the fully assembled machine.
	m := system.NewSUT()
	fmt.Println("\nfully assembled system:")
	report := func(label string) {
		t := m.Clock.Now()
		fmt.Printf("  %-30s wall %6.1fW  dc %6.1fW  cpu %6.1fW\n",
			label, float64(m.WallPowerAt(t)), float64(m.DCPowerAt(t)),
			float64(m.EPU().ReadWatts(t)))
	}
	report("idle (stock)")

	// A two-core compute burst: the trace records busy power while the
	// work runs; read the meters mid-burst by probing the trace.
	m.CPU.SetParallelism(2)
	busyStart := m.Clock.Now()
	m.CPU.Run(3.2e9, cpu.Compute)
	fmt.Printf("  %-30s cpu %6.1fW over %v\n", "2-core compute burst",
		float64(m.CPU.Trace().MeanPower(busyStart, m.Clock.Now())),
		m.Clock.Now().Sub(busyStart))

	// Apply the paper's tuned platform profile and compare idle draw.
	m.Tuner().Apply(mobo.Tuned(0.05, cpu.DowngradeMedium))
	report("tuned idle (5% uc, medium)")

	m.Tuner().Apply(mobo.Stock())
	report("back to stock")
}
