// PVC sweep: generate the paper's Figure-1-style tradeoff curve for a
// TPC-H workload, then let the SLA advisor pick the most energy-efficient
// operating point that honours a 5% response-time budget.
package main

import (
	"fmt"

	"ecodb/internal/core"
	"ecodb/internal/engine"
	"ecodb/internal/tpch"
	"ecodb/internal/workload"
)

func main() {
	prof := engine.ProfileCommercial()
	prof.WorkAmplification = 25 // emulate a larger scale factor
	sys := core.NewSystem(prof)
	sys.Protocol.Runs = 3

	tpch.NewGenerator(0.02, 7).Load(sys.Engine.Catalog(),
		tpch.Region, tpch.Nation, tpch.Supplier, tpch.Customer, tpch.Orders, tpch.Lineitem)
	sys.Engine.WarmAll()
	queries := workload.NewQueries("q5", tpch.Q5Workload(sys.Engine.Catalog()))

	// Sweep all seven of the paper's operating points.
	pvc := core.NewPVC(sys)
	measurements := pvc.Sweep(core.PaperSettings(), queries)

	fmt.Println("tradeoff curve (the paper's Figure 1, as data):")
	for _, pt := range core.Relative(measurements) {
		fmt.Printf("  %s\n", pt)
	}

	// Work the curve backward into SLA terms (§1's SLA discussion).
	fmt.Println("\nminimum SLA slowdown admitting each setting:")
	for name, slack := range core.SLAFromCurve(measurements) {
		fmt.Printf("  %-18s needs ≥%.3f× stock time\n", name, slack)
	}

	// Pick the best point under a 5% response-time SLA.
	advisor := core.Advisor{MaxSlowdown: 1.05}
	best, ok := advisor.Choose(measurements)
	if !ok {
		fmt.Println("\nno non-stock setting fits the SLA")
		return
	}
	fmt.Printf("\nadvisor (≤5%% slowdown) picks: %s\n", best.Setting)
	fmt.Printf("  %v\n", best)
}
