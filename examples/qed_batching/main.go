// QED batching: submit a stream of 2%-selectivity selection queries to the
// QED controller, which delays them in a queue, merges each full batch into
// one disjunctive query, runs it, splits the results in application logic,
// and reports the energy/response-time tradeoff against sequential
// execution.
package main

import (
	"fmt"

	"ecodb/internal/core"
	"ecodb/internal/engine"
	"ecodb/internal/mqo"
	"ecodb/internal/tpch"
	"ecodb/internal/workload"
)

func main() {
	prof := engine.ProfileMySQLMemory()
	prof.WorkAmplification = 8
	sys := core.NewSystem(prof)
	tpch.NewGenerator(0.05, 3).Load(sys.Engine.Catalog(), tpch.Lineitem)

	const batchSize = 20
	queries := workload.NewQueries("sel", tpch.QuantityWorkload(sys.Engine.Catalog(), batchSize))
	clock := sys.Machine.Clock
	trace := sys.Machine.CPU.Trace()

	// Baseline: the traditional scheme, queries one after the other.
	t0 := clock.Now()
	seq := workload.RunSequential(sys.Engine, clock, queries)
	seqEnergy := trace.Energy(t0, clock.Now())

	// QED: queries queue up; the batch flushes at the threshold.
	qed := core.NewQED(sys, batchSize, mqo.OrChain)
	t1 := clock.Now()
	var batch *workload.RunResult
	for _, q := range queries {
		if done := qed.Submit(q); done != nil {
			batch = done
		} else {
			fmt.Printf("  queued %s (%d/%d waiting)\n", q.ID, qed.QueueLen(), batchSize)
		}
	}
	qedEnergy := trace.Energy(t1, clock.Now())

	fmt.Printf("\nsequential: mean response %v, energy %v\n", seq.MeanResponse(), seqEnergy)
	fmt.Printf("QED:        mean response %v, energy %v\n", batch.MeanResponse(), qedEnergy)

	eR := float64(qedEnergy) / float64(seqEnergy)
	tR := float64(batch.MeanResponse()) / float64(seq.MeanResponse())
	fmt.Printf("\nQED saves %.1f%% energy for a %.1f%% longer mean response (EDP %+.1f%%)\n",
		100*(1-eR), 100*(tR-1), 100*(eR*tR-1))

	// The per-query view: first query waits longest (§4).
	single := seq.Queries[0].End - seq.Queries[0].Start
	fmt.Printf("first-query degradation: %v; last-query: %v\n",
		core.FirstQueryDegradation(*batch, single),
		core.LastQueryDegradation(*batch, single))
}
