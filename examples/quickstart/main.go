// Quickstart: assemble the simulated system under test, load TPC-H, run
// one query at the stock operating point and one energy-saving PVC point,
// and print the energy/performance tradeoff.
package main

import (
	"fmt"

	"ecodb/internal/core"
	"ecodb/internal/engine"
	"ecodb/internal/hw/cpu"
	"ecodb/internal/tpch"
	"ecodb/internal/workload"
)

func main() {
	// A machine (E8500, DDR3, Caviar SE16, VX450W) with a commercial-
	// profile database engine and the paper's measurement instruments.
	// Work amplification makes the tiny demo dataset behave like a
	// mid-size one so the 1 Hz power sampling has something to sample.
	prof := engine.ProfileCommercial()
	prof.WorkAmplification = 50
	sys := core.NewSystem(prof)

	// Load TPC-H at a small scale factor and warm the buffer pool.
	tpch.NewGenerator(0.01, 1).Load(sys.Engine.Catalog(),
		tpch.Region, tpch.Nation, tpch.Supplier, tpch.Customer, tpch.Orders, tpch.Lineitem)
	sys.Engine.WarmAll()

	// One TPC-H Q5: revenue by nation for ASIA orders placed in 1994.
	q5 := tpch.Q5(sys.Engine.Catalog(), "ASIA", 1994)
	res, stats := sys.Engine.Exec(q5)
	fmt.Println("Q5(ASIA, 1994) results:")
	for _, row := range res.Rows {
		fmt.Printf("  %-12s revenue %.2f\n", row[0].S, row[1].F)
	}
	fmt.Printf("executed in %v (simulated), %d rows\n\n", stats.Duration, stats.RowsOut)

	// Measure a 10-query workload at stock and at the paper's setting A
	// (5% underclock, medium voltage downgrade).
	queries := workload.NewQueries("q5", tpch.Q5Workload(sys.Engine.Catalog()))
	stock := sys.MeasureOnce(core.Stock(), func() {
		workload.RunSequential(sys.Engine, sys.Machine.Clock, queries)
	})
	saving := sys.MeasureOnce(core.PVCSetting(0.05, cpu.DowngradeMedium), func() {
		workload.RunSequential(sys.Engine, sys.Machine.Clock, queries)
	})

	fmt.Println("operating points (10 × Q5):")
	fmt.Printf("  stock:        %v\n", stock)
	fmt.Printf("  PVC setting:  %v\n", saving)
	fmt.Printf("\nPVC trades %.1f%% response time for %.1f%% CPU energy savings.\n",
		100*(float64(saving.Time)/float64(stock.Time)-1),
		100*(1-float64(saving.CPUEnergyExact)/float64(stock.CPUEnergyExact)))
}
