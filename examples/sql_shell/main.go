// SQL shell: drive the engine through the SQL front end the way the
// paper's JDBC clients drove theirs. Runs a fixed script of statements —
// including TPC-H Q5 itself — and prints results with simulated time and
// energy per statement.
package main

import (
	"fmt"

	"ecodb/internal/engine"
	"ecodb/internal/hw/system"
	"ecodb/internal/sql"
	"ecodb/internal/tpch"
)

func main() {
	m := system.NewSUT()
	e := engine.New(engine.ProfileMySQLMemory(), m)
	tpch.NewGenerator(0.01, 42).Load(e.Catalog(),
		tpch.Region, tpch.Nation, tpch.Supplier, tpch.Customer, tpch.Orders, tpch.Lineitem)

	script := []string{
		`SELECT COUNT(*) AS lineitems FROM lineitem`,
		`SELECT l_quantity AS q, COUNT(*) AS n
		 FROM lineitem WHERE l_quantity IN (1, 25, 50)
		 GROUP BY l_quantity ORDER BY q`,
		`SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
		 FROM region
		 JOIN nation ON n_regionkey = r_regionkey
		 JOIN customer ON c_nationkey = n_nationkey
		 JOIN orders ON o_custkey = c_custkey
		 JOIN lineitem ON l_orderkey = o_orderkey
		 JOIN supplier ON s_suppkey = l_suppkey AND s_nationkey = c_nationkey
		 WHERE r_name = 'AMERICA'
		   AND o_orderdate >= DATE '1995-01-01' AND o_orderdate < DATE '1996-01-01'
		 GROUP BY n_name ORDER BY revenue DESC`,
		`EXPLAIN SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
		 FROM region
		 JOIN nation ON n_regionkey = r_regionkey
		 JOIN customer ON c_nationkey = n_nationkey
		 JOIN orders ON o_custkey = c_custkey
		 JOIN lineitem ON l_orderkey = o_orderkey
		 JOIN supplier ON s_suppkey = l_suppkey AND s_nationkey = c_nationkey
		 WHERE r_name = 'AMERICA'
		   AND o_orderdate >= DATE '1995-01-01' AND o_orderdate < DATE '1996-01-01'
		 GROUP BY n_name ORDER BY revenue DESC`,
		`EXPLAIN ANALYZE SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
		 FROM region
		 JOIN nation ON n_regionkey = r_regionkey
		 JOIN customer ON c_nationkey = n_nationkey
		 JOIN orders ON o_custkey = c_custkey
		 JOIN lineitem ON l_orderkey = o_orderkey
		 JOIN supplier ON s_suppkey = l_suppkey AND s_nationkey = c_nationkey
		 WHERE r_name = 'AMERICA'
		   AND o_orderdate >= DATE '1995-01-01' AND o_orderdate < DATE '1996-01-01'
		 GROUP BY n_name ORDER BY revenue DESC`,
	}

	for i, q := range script {
		fmt.Printf("ecodb> statement %d\n", i+1)
		if sql.IsExplainAnalyze(q) {
			out, err := sql.ExplainAnalyze(e, q)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(out)
			continue
		}
		if sql.IsExplain(q) {
			out, err := sql.Explain(e, q)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(out)
			continue
		}
		p, err := sql.Plan(e.Catalog(), q)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		// Stream result batches straight off the executor: rows are
		// printed as they are produced, never materialized server-side.
		t0 := m.Clock.Now()
		rows := e.Query(p)
		for _, col := range rows.Schema().Columns() {
			fmt.Printf("%-14s", col.Name)
		}
		fmt.Println()
		for {
			b, err := rows.Next()
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			if b == nil {
				break
			}
			for _, row := range b.Rows() {
				for _, v := range row {
					fmt.Printf("%-14v", v)
				}
				fmt.Println()
			}
		}
		st := rows.Stats()
		energy := m.CPU.Trace().Energy(t0, m.Clock.Now())
		fmt.Printf("(%d rows, %v simulated, %.2f J CPU)\n\n", st.RowsOut, st.Duration, float64(energy))
	}
}
