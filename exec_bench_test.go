// Benchmarks for the executor hot path, measuring real Go wall-clock
// (ns/op), not simulated time: simulated durations and joules are
// batch-size invariant by design, so these benchmarks document the real
// speedup of the vectorized batch pipeline over row-at-a-time execution.
package main

import (
	"testing"

	"ecodb/internal/catalog"
	"ecodb/internal/engine"
	"ecodb/internal/exec"
	"ecodb/internal/expr"
	"ecodb/internal/hw/cpu"
	"ecodb/internal/hw/system"
	"ecodb/internal/plan"
	"ecodb/internal/sim"
	"ecodb/internal/tpch"
)

// benchTable loads a lineitem heap once for the scan benchmarks.
func benchTable(b *testing.B) *catalog.Table {
	b.Helper()
	cat := catalog.NewCatalog()
	tpch.NewGenerator(0.02, 42).Load(cat, tpch.Lineitem)
	return cat.MustTable(tpch.Lineitem)
}

func benchCtx() *exec.Ctx {
	clock := sim.NewClock()
	return &exec.Ctx{
		CPU:  cpu.New(cpu.E8500(), clock),
		Cost: engine.ProfileMySQLMemory().Cost,
	}
}

// rowPage is one pre-materialized row-major page for the row-at-a-time
// baseline: the layout the pre-columnar engine stored.
type rowPage struct {
	rows  []expr.Row
	bytes int64
}

// rowPages materializes a heap's pages into row-major form once, outside
// the timed region, so the row baseline iterates what the old engine
// stored rather than paying a per-run gather.
func rowPages(tb *catalog.Table) []rowPage {
	heap := tb.Heap
	out := make([]rowPage, heap.NumPages())
	for i := range out {
		p := heap.Page(i)
		out[i] = rowPage{rows: p.Rows(), bytes: p.Bytes}
	}
	return out
}

// rowScan replicates the pre-vectorization row-at-a-time push scan: one
// emit-closure call and one interpreted predicate evaluation per tuple,
// with per-page cost flushes — the baseline the batch pipeline replaced.
func rowScan(ctx *exec.Ctx, pages []rowPage, filter expr.Expr, emit func(expr.Row)) {
	var meter expr.Cost
	for i := range pages {
		page := &pages[i]
		ctx.Charge(cpu.Stream, ctx.Cost.PageStreamCyclesPerKB*float64(page.bytes)/1024)
		nRows := float64(len(page.rows))
		ctx.Charge(cpu.Compute, ctx.Cost.ScanTupleCycles*nRows)
		ctx.Charge(cpu.MemStall, ctx.Cost.ScanTupleStallCycles*nRows)
		for _, row := range page.rows {
			if filter != nil && !filter.Eval(row, &meter).Truthy() {
				continue
			}
			emit(row)
		}
		ctx.ChargeExpr(&meter)
		ctx.Flush()
	}
}

// BenchmarkScanRowVsBatch compares the executor's filtered-scan hot path:
// the historical row-at-a-time push loop against the vectorized batch
// pipeline, over the same lineitem heap and predicate.
func BenchmarkScanRowVsBatch(b *testing.B) {
	tb := benchTable(b)
	pred := expr.Cmp{Op: expr.EQ, L: tb.Schema.Col("l_quantity"), R: expr.Const{V: expr.Int(25)}}

	b.Run("row", func(b *testing.B) {
		pages := rowPages(tb)
		b.ResetTimer()
		var rows int64
		for i := 0; i < b.N; i++ {
			ctx := benchCtx()
			rows = 0
			rowScan(ctx, pages, pred, func(expr.Row) { rows++ })
		}
		b.ReportMetric(float64(rows), "rows")
	})

	b.Run("batch", func(b *testing.B) {
		var rows int64
		for i := 0; i < b.N; i++ {
			ctx := benchCtx()
			rows = 0
			op := exec.Compile(plan.NewScan(tb, pred))
			if err := exec.Drain(ctx, op, func(batch *expr.Batch) error {
				rows += int64(batch.Len())
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			ctx.Flush()
		}
		b.ReportMetric(float64(rows), "rows")
	})
}

// BenchmarkColumnarFilter measures the scan→filter hot path on the TPC-H
// band-selection shape (l_quantity BETWEEN): the row-major baseline — the
// pre-columnar engine's per-tuple interpreted loop over row-major pages —
// against the columnar executor's typed-payload selection loops. The
// acceptance bar for the columnar representation is ≥1.5× on this path;
// observed is far above it.
func BenchmarkColumnarFilter(b *testing.B) {
	tb := benchTable(b)
	pred := expr.Between{E: tb.Schema.Col("l_quantity"),
		Lo: expr.Int(10), Hi: expr.Int(30)}

	b.Run("row", func(b *testing.B) {
		pages := rowPages(tb)
		b.ResetTimer()
		var rows int64
		for i := 0; i < b.N; i++ {
			ctx := benchCtx()
			rows = 0
			rowScan(ctx, pages, pred, func(expr.Row) { rows++ })
		}
		b.ReportMetric(float64(rows), "rows")
	})

	b.Run("columnar", func(b *testing.B) {
		var rows int64
		for i := 0; i < b.N; i++ {
			ctx := benchCtx()
			rows = 0
			op := exec.Compile(plan.NewScan(tb, pred))
			if err := exec.Drain(ctx, op, func(batch *expr.Batch) error {
				rows += int64(batch.Len())
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			ctx.Flush()
		}
		b.ReportMetric(float64(rows), "rows")
	})
}

// BenchmarkQ5Exec measures a full TPC-H Q5 execution — the six-table hash
// join pipeline with aggregation and sort — through the batch executor.
func BenchmarkQ5Exec(b *testing.B) {
	m := system.NewSUT()
	e := engine.New(engine.ProfileMySQLMemory(), m)
	tpch.NewGenerator(0.01, 42).Load(e.Catalog(),
		tpch.Region, tpch.Nation, tpch.Supplier, tpch.Customer, tpch.Orders, tpch.Lineitem)
	q5 := tpch.Q5(e.Catalog(), "ASIA", 1994)
	b.ResetTimer()
	var rows int64
	for i := 0; i < b.N; i++ {
		st := e.Query(q5).Stats()
		rows = st.RowsOut
	}
	b.ReportMetric(float64(rows), "rows")
}
