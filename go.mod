module ecodb

go 1.24
