// Golden tests pinning the simulated outputs — result rows, durations, and
// joules — of four end-to-end scenarios (the quickstart example, QED
// batching, the Figure 1 PVC sweep, and the shared-scan ablation) byte for
// byte. The files under testdata/golden were generated on the row-major
// []Row executor; the columnar refactor must reproduce them exactly,
// because floats are rendered in shortest-round-trip form (byte equality ⟺
// bit equality). Regenerate deliberately with:
//
//	go test -run TestGolden -update-golden
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"ecodb/internal/core"
	"ecodb/internal/engine"
	"ecodb/internal/experiments"
	"ecodb/internal/expr"
	"ecodb/internal/hw/cpu"
	"ecodb/internal/mqo"
	"ecodb/internal/obsv"
	"ecodb/internal/tpch"
	"ecodb/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden files from this revision's outputs")

// fexact renders a float in shortest form that round-trips, so golden
// comparison is exact bit comparison.
func fexact(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func fmtValue(v expr.Value) string {
	switch v.Kind {
	case expr.KindNull:
		return "null"
	case expr.KindFloat:
		return "float:" + fexact(v.F)
	case expr.KindString:
		return "string:" + strconv.Quote(v.S)
	default:
		return fmt.Sprintf("%v:%d", v.Kind, v.I)
	}
}

func fmtRows(b *strings.Builder, rows []expr.Row) {
	for _, r := range rows {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = fmtValue(v)
		}
		fmt.Fprintf(b, "  %s\n", strings.Join(parts, " | "))
	}
}

func fmtMeasurement(b *strings.Builder, label string, m core.Measurement) {
	fmt.Fprintf(b, "%s: time=%s cpu=%s cpuExact=%s disk=%s wall=%s vmean=%s fmean=%s\n",
		label, fexact(float64(m.Time)), fexact(float64(m.CPUEnergy)),
		fexact(float64(m.CPUEnergyExact)), fexact(float64(m.DiskEnergy)),
		fexact(float64(m.WallEnergy)), fexact(float64(m.MeanVoltage)), fexact(m.MeanFreqGHz))
}

func fmtRunResult(b *strings.Builder, label string, r workload.RunResult) {
	fmt.Fprintf(b, "%s: total=%s\n", label, fexact(float64(r.Total)))
	for _, q := range r.Queries {
		fmt.Fprintf(b, "  %s start=%s end=%s rows=%d\n",
			q.ID, fexact(float64(q.Start)), fexact(float64(q.End)), q.Rows)
	}
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update-golden on a known-good revision): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s output diverged from golden — simulated results/durations/joules are no longer bit-identical.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestGoldenQuickstart pins the quickstart example's numbers: one Q5
// execution plus a stock-vs-PVC measurement of the ten-query workload on
// the commercial profile.
func TestGoldenQuickstart(t *testing.T) {
	prof := engine.ProfileCommercial()
	prof.WorkAmplification = 50
	sys := core.NewSystem(prof)
	tpch.NewGenerator(0.01, 1).Load(sys.Engine.Catalog(),
		tpch.Region, tpch.Nation, tpch.Supplier, tpch.Customer, tpch.Orders, tpch.Lineitem)
	sys.Engine.WarmAll()

	var b strings.Builder
	res, stats := sys.Engine.Exec(tpch.Q5(sys.Engine.Catalog(), "ASIA", 1994))
	fmt.Fprintf(&b, "q5 rows (%d, %d bytes, duration=%s):\n",
		stats.RowsOut, stats.BytesOut, fexact(float64(stats.Duration)))
	fmtRows(&b, res.Rows)

	queries := workload.NewQueries("q5", tpch.Q5Workload(sys.Engine.Catalog()))
	stock := sys.MeasureOnce(core.Stock(), func() {
		workload.RunSequential(sys.Engine, sys.Machine.Clock, queries)
	})
	saving := sys.MeasureOnce(core.PVCSetting(0.05, cpu.DowngradeMedium), func() {
		workload.RunSequential(sys.Engine, sys.Machine.Clock, queries)
	})
	fmtMeasurement(&b, "stock", stock)
	fmtMeasurement(&b, "pvcA", saving)

	checkGolden(t, "quickstart", b.String())
}

// TestGoldenQEDBatching pins the QED merged-batch path: sequential baseline
// versus a merged disjunctive flush on the MySQL MEMORY profile, including
// the application-side split's per-query cardinalities.
func TestGoldenQEDBatching(t *testing.T) {
	prof := engine.ProfileMySQLMemory()
	prof.WorkAmplification = 8
	sys := core.NewSystem(prof)
	tpch.NewGenerator(0.02, 3).Load(sys.Engine.Catalog(), tpch.Lineitem)

	const batchSize = 8
	queries := workload.NewQueries("sel", tpch.QuantityWorkload(sys.Engine.Catalog(), batchSize))
	clock := sys.Machine.Clock
	trace := sys.Machine.CPU.Trace()

	var b strings.Builder
	t0 := clock.Now()
	seq := workload.RunSequential(sys.Engine, clock, queries)
	fmt.Fprintf(&b, "seqEnergy=%s\n", fexact(float64(trace.Energy(t0, clock.Now()))))
	fmtRunResult(&b, "sequential", seq)

	qed := core.NewQED(sys, batchSize, mqo.OrChain)
	t1 := clock.Now()
	var batch *workload.RunResult
	for _, q := range queries {
		if done := qed.Submit(q); done != nil {
			batch = done
		}
	}
	fmt.Fprintf(&b, "qedEnergy=%s\n", fexact(float64(trace.Energy(t1, clock.Now()))))
	fmtRunResult(&b, "qed", *batch)

	checkGolden(t, "qed_batching", b.String())
}

// TestGoldenFig1 pins the Figure 1 PVC sweep (stock + settings A/B/C) on
// the commercial profile at reduced generated scale.
func TestGoldenFig1(t *testing.T) {
	cfg := experiments.Config{SF: 0.02, Amplification: 50, Seed: 42, ProtocolRuns: 1}
	r := experiments.Figure1(cfg)
	var b strings.Builder
	for _, m := range r.Measurements {
		fmtMeasurement(&b, m.Setting.String(), m)
	}
	checkGolden(t, "fig1", b.String())
}

// TestGoldenCompression pins the compressed-storage path byte for byte:
// the mixed range-plus-string workload run with zone-map pruning and
// dictionary strings ENABLED — result rows of one pruned range query, every
// query's cardinality and simulated timings, total joules, and the pages
// pruned. Together with the four legacy goldens (which run with the toggles
// off) this pins both sides of the compression switch.
func TestGoldenCompression(t *testing.T) {
	defer expr.SetZoneMapPruning(expr.ZoneMapPruning())
	defer expr.SetDictStrings(expr.DictStrings())
	expr.SetZoneMapPruning(true)
	expr.SetDictStrings(true)

	prof := engine.ProfileCommercial()
	prof.WorkAmplification = 50
	sys := core.NewSystem(prof)
	tpch.NewGenerator(0.02, 42).Load(sys.Engine.Catalog(),
		tpch.Customer, tpch.Orders, tpch.Lineitem)
	sys.Engine.WarmAll()

	var b strings.Builder
	res, stats := sys.Engine.Exec(tpch.OrderkeyBandQuery(sys.Engine.Catalog(), 101, 4))
	fmt.Fprintf(&b, "band rows (%d, %d bytes, duration=%s):\n",
		stats.RowsOut, stats.BytesOut, fexact(float64(stats.Duration)))
	fmtRows(&b, res.Rows)

	pruned0 := obsv.PagesPruned.Load()
	queries := workload.NewQueries("comp", tpch.CompressionWorkload(sys.Engine.Catalog(), 0.02, 8))
	clock := sys.Machine.Clock
	trace := sys.Machine.CPU.Trace()
	t0 := clock.Now()
	run := workload.RunSequential(sys.Engine, clock, queries)
	fmt.Fprintf(&b, "energy=%s pruned=%d\n",
		fexact(float64(trace.Energy(t0, clock.Now()))), obsv.PagesPruned.Load()-pruned0)
	fmtRunResult(&b, "compressed", run)

	checkGolden(t, "compression", b.String())
}

// TestGoldenSharedScan pins the shared-scan ablation: sequential versus
// shared-pass energies, times, and pool touches at N=1/4/16.
func TestGoldenSharedScan(t *testing.T) {
	cfg := experiments.Config{SF: 0.02, Amplification: 50, Seed: 42, ProtocolRuns: 1}
	r := experiments.SharedScans(cfg, true)
	var b strings.Builder
	for _, p := range r.Points {
		fmt.Fprintf(&b, "N=%d seqTime=%s sharedTime=%s seqEnergy=%s sharedEnergy=%s seqPerQuery=%s sharedPerQuery=%s poolSeq=%d poolShared=%d\n",
			p.N, fexact(float64(p.SeqTime)), fexact(float64(p.SharedTime)),
			fexact(float64(p.SeqEnergy)), fexact(float64(p.SharedEnergy)),
			fexact(float64(p.SeqPerQuery)), fexact(float64(p.SharedPerQuery)),
			p.PoolSeq, p.PoolShared)
	}
	checkGolden(t, "sharedscan", b.String())
}
