// Package catalog holds table schemas and the table registry of the
// simulated database engine.
package catalog

import (
	"fmt"
	"sort"

	"ecodb/internal/expr"
	"ecodb/internal/storage"
)

// Column describes one column.
type Column struct {
	Name string
	Kind expr.Kind
}

// Schema is an ordered set of columns with name lookup.
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema; duplicate column names panic (schemas are
// static in this system).
func NewSchema(cols ...Column) *Schema {
	s := &Schema{cols: cols, index: make(map[string]int, len(cols))}
	for i, c := range cols {
		if _, dup := s.index[c.Name]; dup {
			panic(fmt.Sprintf("catalog: duplicate column %q", c.Name))
		}
		s.index[c.Name] = i
	}
	return s
}

// Columns returns the column list.
func (s *Schema) Columns() []Column { return s.cols }

// NumCols returns the column count.
func (s *Schema) NumCols() int { return len(s.cols) }

// Index returns the position of a column by name.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// MustIndex returns the position of a column, panicking if absent.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("catalog: no column %q", name))
	}
	return i
}

// Col returns an expression referencing the named column.
func (s *Schema) Col(name string) expr.Col {
	return expr.Col{Idx: s.MustIndex(name), Name: name}
}

// Concat returns a schema with b's columns appended to a's (join output).
func Concat(a, b *Schema) *Schema {
	cols := make([]Column, 0, a.NumCols()+b.NumCols())
	cols = append(cols, a.cols...)
	cols = append(cols, b.cols...)
	// Joins can legitimately repeat names; qualify duplicates.
	seen := make(map[string]int)
	for i := range cols {
		n := cols[i].Name
		seen[n]++
		if seen[n] > 1 {
			cols[i].Name = fmt.Sprintf("%s_%d", n, seen[n])
		}
	}
	return NewSchema(cols...)
}

// Table couples a schema with heap storage.
type Table struct {
	Name   string
	Schema *Schema
	Heap   *storage.Heap

	// stats caches the optimizer statistics; see Table.Stats.
	stats *TableStats
}

// NewTable creates an empty table with the default page size.
func NewTable(name string, schema *Schema) *Table {
	return &Table{Name: name, Schema: schema, Heap: storage.NewHeap(0)}
}

// Insert validates arity and appends a row.
func (t *Table) Insert(row expr.Row) {
	if len(row) != t.Schema.NumCols() {
		panic(fmt.Sprintf("catalog: row arity %d does not match %s schema arity %d",
			len(row), t.Name, t.Schema.NumCols()))
	}
	t.Heap.Append(row)
}

// Catalog is the table registry.
type Catalog struct {
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{tables: make(map[string]*Table)} }

// Create registers a table; re-creating an existing name is an error.
func (c *Catalog) Create(t *Table) error {
	if _, exists := c.tables[t.Name]; exists {
		return fmt.Errorf("catalog: table %q already exists", t.Name)
	}
	c.tables[t.Name] = t
	return nil
}

// MustCreate registers a table, panicking on duplicates.
func (c *Catalog) MustCreate(t *Table) {
	if err := c.Create(t); err != nil {
		panic(err)
	}
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no table %q", name)
	}
	return t, nil
}

// MustTable looks up a table, panicking if absent.
func (c *Catalog) MustTable(name string) *Table {
	t, err := c.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// Names returns all table names, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TotalBytes returns the combined heap footprint of all tables.
func (c *Catalog) TotalBytes() int64 {
	var n int64
	for _, t := range c.tables {
		n += t.Heap.Bytes()
	}
	return n
}
