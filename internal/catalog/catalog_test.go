package catalog

import (
	"testing"

	"ecodb/internal/expr"
)

func testSchema() *Schema {
	return NewSchema(
		Column{Name: "id", Kind: expr.KindInt},
		Column{Name: "name", Kind: expr.KindString},
	)
}

func TestSchemaLookup(t *testing.T) {
	s := testSchema()
	if s.NumCols() != 2 {
		t.Fatalf("NumCols = %d", s.NumCols())
	}
	if i, ok := s.Index("name"); !ok || i != 1 {
		t.Fatalf("Index(name) = %d,%v", i, ok)
	}
	if _, ok := s.Index("missing"); ok {
		t.Fatal("Index(missing) should be absent")
	}
	if s.MustIndex("id") != 0 {
		t.Fatal("MustIndex(id) != 0")
	}
	col := s.Col("name")
	if col.Idx != 1 || col.Name != "name" {
		t.Fatalf("Col = %+v", col)
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate column did not panic")
		}
	}()
	NewSchema(Column{Name: "a"}, Column{Name: "a"})
}

func TestMustIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustIndex(missing) did not panic")
		}
	}()
	testSchema().MustIndex("missing")
}

func TestConcatQualifiesDuplicates(t *testing.T) {
	a := NewSchema(Column{Name: "k", Kind: expr.KindInt}, Column{Name: "x", Kind: expr.KindInt})
	b := NewSchema(Column{Name: "k", Kind: expr.KindInt}, Column{Name: "y", Kind: expr.KindInt})
	c := Concat(a, b)
	if c.NumCols() != 4 {
		t.Fatalf("NumCols = %d", c.NumCols())
	}
	// First k keeps its name; the duplicate is qualified.
	if c.MustIndex("k") != 0 {
		t.Fatal("first k should stay at 0")
	}
	if c.MustIndex("k_2") != 2 {
		t.Fatal("duplicate k should be renamed k_2 at position 2")
	}
}

func TestTableInsertArity(t *testing.T) {
	tb := NewTable("t", testSchema())
	tb.Insert(expr.Row{expr.Int(1), expr.String("x")})
	if tb.Heap.NumRows() != 1 {
		t.Fatal("row not inserted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad arity did not panic")
		}
	}()
	tb.Insert(expr.Row{expr.Int(1)})
}

func TestCatalogCreateAndLookup(t *testing.T) {
	c := NewCatalog()
	c.MustCreate(NewTable("b", testSchema()))
	c.MustCreate(NewTable("a", testSchema()))

	if _, err := c.Table("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Table("zzz"); err == nil {
		t.Fatal("missing table lookup should error")
	}
	if err := c.Create(NewTable("a", testSchema())); err == nil {
		t.Fatal("duplicate create should error")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v, want sorted [a b]", names)
	}
}

func TestCatalogTotalBytes(t *testing.T) {
	c := NewCatalog()
	tb := NewTable("t", testSchema())
	tb.Insert(expr.Row{expr.Int(1), expr.String("hello")})
	c.MustCreate(tb)
	if c.TotalBytes() != tb.Heap.Bytes() {
		t.Fatalf("TotalBytes = %d, want %d", c.TotalBytes(), tb.Heap.Bytes())
	}
}

func TestMustTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustTable(missing) did not panic")
		}
	}()
	NewCatalog().MustTable("missing")
}
