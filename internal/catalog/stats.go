package catalog

import (
	"ecodb/internal/expr"
)

// ColStats summarizes one column for the optimizer's cardinality model.
type ColStats struct {
	// Min and Max bound the column's non-NULL values; Null when the column
	// is entirely NULL or mixes incomparable kinds (Valid false).
	Min, Max expr.Value
	// NDV is the number of distinct non-NULL values.
	NDV int64
	// Nulls reports whether any page holds a NULL in this column.
	Nulls bool
	// Valid is false when the column mixes incomparable kinds, in which
	// case Min/Max carry no information (NDV still counts).
	Valid bool
}

// TableStats summarizes a table for costing: cardinality, physical extent,
// and per-column distributions. Min/Max/Nulls are folded from the per-page
// zone maps the heap maintains on Append; NDV needs one pass over the
// column vectors (hashed exact counting), done lazily on first request.
type TableStats struct {
	Rows  int64
	Pages int
	Bytes int64
	Cols  []ColStats
}

// Col returns the stats entry for column i.
func (s *TableStats) Col(i int) *ColStats { return &s.Cols[i] }

// Stats returns the table's statistics, computing them on first use and
// caching until the heap grows (heaps are append-only, so row count is a
// complete freshness token). The zone maps built at Append time provide
// min/max/null presence for free; distinct counts hash every value once.
func (t *Table) Stats() *TableStats {
	rows := t.Heap.NumRows()
	if t.stats != nil && t.stats.Rows == rows {
		return t.stats
	}
	width := t.Schema.NumCols()
	st := &TableStats{
		Rows:  rows,
		Pages: t.Heap.NumPages(),
		Bytes: t.Heap.Bytes(),
		Cols:  make([]ColStats, width),
	}
	for c := range st.Cols {
		st.Cols[c].Min = expr.Null()
		st.Cols[c].Max = expr.Null()
		st.Cols[c].Valid = true
	}

	// Fold the per-page zone maps into table-level min/max/null presence.
	for p := 0; p < t.Heap.NumPages(); p++ {
		zones := t.Heap.Page(p).Zones
		for c := range st.Cols {
			cs := &st.Cols[c]
			z := &zones[c]
			if !z.Valid {
				cs.Valid = false
				cs.Min, cs.Max = expr.Null(), expr.Null()
				continue
			}
			if z.HasNulls {
				cs.Nulls = true
			}
			if !cs.Valid || z.Min.IsNull() {
				continue
			}
			if cs.Min.IsNull() {
				cs.Min, cs.Max = z.Min, z.Max
				continue
			}
			if expr.Compare(z.Min, cs.Min) < 0 {
				cs.Min = z.Min
			}
			if expr.Compare(z.Max, cs.Max) > 0 {
				cs.Max = z.Max
			}
		}
	}

	// Distinct counts: one hashed pass per column. Hash collisions can
	// only undercount, and at 64 bits they are vanishingly rare at the
	// simulated scale factors.
	seen := make(map[uint64]struct{})
	for c := 0; c < width; c++ {
		clear(seen)
		for p := 0; p < t.Heap.NumPages(); p++ {
			page := t.Heap.Page(p)
			vec := &page.Data.Cols[c]
			for i := 0; i < page.Data.N; i++ {
				v := vec.Get(i)
				if v.IsNull() {
					continue
				}
				seen[expr.HashValue(v)] = struct{}{}
			}
		}
		st.Cols[c].NDV = int64(len(seen))
	}

	t.stats = st
	return st
}
