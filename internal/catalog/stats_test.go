package catalog

import (
	"testing"

	"ecodb/internal/expr"
)

func statsTable() *Table {
	t := NewTable("t", NewSchema(
		Column{Name: "k", Kind: expr.KindInt},
		Column{Name: "grp", Kind: expr.KindString},
		Column{Name: "x", Kind: expr.KindFloat},
	))
	for i := 0; i < 1000; i++ {
		grp := expr.String([]string{"a", "b", "c", "d"}[i%4])
		x := expr.Float(float64(i % 10))
		if i%100 == 0 {
			x = expr.Null()
		}
		t.Insert(expr.Row{expr.Int(int64(i)), grp, x})
	}
	return t
}

func TestTableStatsFromZones(t *testing.T) {
	tab := statsTable()
	st := tab.Stats()

	if st.Rows != 1000 || st.Pages != tab.Heap.NumPages() || st.Bytes != tab.Heap.Bytes() {
		t.Fatalf("physical stats = %+v", st)
	}
	k := st.Col(0)
	if k.NDV != 1000 || k.Min.I != 0 || k.Max.I != 999 || k.Nulls {
		t.Fatalf("k stats = %+v", k)
	}
	grp := st.Col(1)
	if grp.NDV != 4 || grp.Min.S != "a" || grp.Max.S != "d" {
		t.Fatalf("grp stats = %+v", grp)
	}
	x := st.Col(2)
	if x.NDV != 10 || !x.Nulls || x.Min.F != 0 || x.Max.F != 9 {
		t.Fatalf("x stats = %+v", x)
	}
}

func TestTableStatsCacheInvalidation(t *testing.T) {
	tab := statsTable()
	st := tab.Stats()
	if got := tab.Stats(); got != st {
		t.Fatal("stats not cached across calls on an unchanged heap")
	}
	tab.Insert(expr.Row{expr.Int(5000), expr.String("e"), expr.Float(11)})
	st2 := tab.Stats()
	if st2 == st {
		t.Fatal("stats cache survived an append")
	}
	if st2.Rows != 1001 || st2.Col(1).NDV != 5 || st2.Col(2).Max.F != 11 {
		t.Fatalf("refreshed stats = %+v", st2)
	}
}

func TestTableStatsAllNullColumn(t *testing.T) {
	tab := NewTable("n", NewSchema(Column{Name: "v", Kind: expr.KindInt}))
	for i := 0; i < 3; i++ {
		tab.Insert(expr.Row{expr.Null()})
	}
	st := tab.Stats()
	v := st.Col(0)
	if v.NDV != 0 || !v.Nulls || !v.Min.IsNull() || !v.Max.IsNull() {
		t.Fatalf("all-NULL column stats = %+v", v)
	}
}
