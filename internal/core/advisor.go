package core

import (
	"fmt"
	"sort"

	"ecodb/internal/sim"
	"ecodb/internal/workload"
)

// Advisor chooses operating points under a service-level agreement — the
// paper's §1 sketch: "A data center operating near peak may have no choice
// but to aim for the fastest query response time. However, when the data
// center is not operating at peak capacity it may have the option of using
// an operating point that can save energy."
type Advisor struct {
	// MaxSlowdown bounds acceptable response time as a multiple of the
	// stock time (1.10 = "at most 10% slower").
	MaxSlowdown float64
}

// Choose returns the measured point with the lowest CPU energy whose time
// ratio fits the SLA, and ok=false when only stock qualifies or no stock
// baseline exists. Ties break toward faster settings.
func (a Advisor) Choose(ms []Measurement) (best Measurement, ok bool) {
	var base *Measurement
	for i := range ms {
		if ms[i].Setting.IsStock() {
			base = &ms[i]
			break
		}
	}
	if base == nil || a.MaxSlowdown < 1 {
		return Measurement{}, false
	}
	candidates := make([]Measurement, 0, len(ms))
	for _, m := range ms {
		if float64(m.Time) <= a.MaxSlowdown*float64(base.Time) {
			candidates = append(candidates, m)
		}
	}
	if len(candidates) == 0 {
		return Measurement{}, false
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		if candidates[i].CPUEnergy != candidates[j].CPUEnergy {
			return candidates[i].CPUEnergy < candidates[j].CPUEnergy
		}
		return candidates[i].Time < candidates[j].Time
	})
	best = candidates[0]
	return best, !best.Setting.IsStock() || len(candidates) == 1
}

// SLAFromCurve works backward from a measured tradeoff curve to the
// loosest SLA bound that unlocks each operating point — the paper's "work
// backward to create viable parameters for an SLA" remark. The result maps
// setting name to the minimum MaxSlowdown admitting it.
func SLAFromCurve(ms []Measurement) map[string]float64 {
	var base *Measurement
	for i := range ms {
		if ms[i].Setting.IsStock() {
			base = &ms[i]
			break
		}
	}
	out := make(map[string]float64, len(ms))
	if base == nil || base.Time <= 0 {
		return out
	}
	for _, m := range ms {
		out[m.Setting.String()] = float64(m.Time) / float64(base.Time)
	}
	return out
}

// AdaptivePVC re-evaluates the operating point while a workload runs — the
// paper's "dynamically adapt our query plan midflight to meet our response
// time and energy goals". After each query it compares progress against a
// response-time budget: behind schedule → step toward stock; comfortably
// ahead → step toward the deepest allowed saving.
type AdaptivePVC struct {
	Sys *System
	// Ladder orders settings from most aggressive saving (index 0) to
	// stock (last). Steps move along it.
	Ladder []Setting
	// Budget is the total response-time budget for the workload.
	Budget sim.Duration
}

// Decision records one adaptation step.
type Decision struct {
	AfterQuery int
	Elapsed    sim.Duration
	Expected   sim.Duration
	Chosen     Setting
}

// Run executes the workload, adapting between queries. It returns the
// total time and the decision trace.
func (a *AdaptivePVC) Run(queries []workload.Query) (sim.Duration, []Decision) {
	if len(a.Ladder) == 0 {
		panic("core: AdaptivePVC needs a settings ladder")
	}
	clock := a.Sys.Machine.Clock
	start := clock.Now()
	level := 0 // start at the most aggressive saving
	a.Sys.Machine.Tuner().Apply(a.Ladder[level].TunerProfile())

	var decisions []Decision
	for i, q := range queries {
		a.Sys.Engine.Exec(q.Plan)
		elapsed := clock.Now().Sub(start)
		expected := a.Budget * sim.Duration(float64(i+1)/float64(len(queries)))
		switch {
		case elapsed > expected && level < len(a.Ladder)-1:
			level++ // behind: trade energy saving for speed
		case elapsed < expected*9/10 && level > 0:
			level-- // ahead: deepen savings
		}
		a.Sys.Machine.Tuner().Apply(a.Ladder[level].TunerProfile())
		decisions = append(decisions, Decision{
			AfterQuery: i + 1,
			Elapsed:    elapsed,
			Expected:   expected,
			Chosen:     a.Ladder[level],
		})
	}
	return clock.Now().Sub(start), decisions
}

func (d Decision) String() string {
	return fmt.Sprintf("after q%d: elapsed %v vs budgeted %v → %s",
		d.AfterQuery, d.Elapsed, d.Expected, d.Chosen)
}
