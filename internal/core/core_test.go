package core

import (
	"math"
	"testing"

	"ecodb/internal/energy"
	"ecodb/internal/engine"
	"ecodb/internal/hw/cpu"
	"ecodb/internal/mqo"
	"ecodb/internal/plan"
	"ecodb/internal/sim"
	"ecodb/internal/tpch"
	"ecodb/internal/workload"
)

// testSystem builds a small MySQL-profile system with lineitem loaded.
func testSystem(t testing.TB) (*System, []workload.Query) {
	t.Helper()
	prof := engine.ProfileMySQLMemory()
	sys := NewSystem(prof)
	sys.Protocol.Runs = 3
	tpch.NewGenerator(0.01, 5).Load(sys.Engine.Catalog(), tpch.Lineitem)
	return sys, workload.NewQueries("sel", tpch.QuantityWorkload(sys.Engine.Catalog(), 8))
}

// commercialSystem builds a small commercial-profile system with the Q5
// tables.
func commercialSystem(t testing.TB) (*System, []workload.Query) {
	t.Helper()
	prof := engine.ProfileCommercial()
	prof.WorkAmplification = 10
	sys := NewSystem(prof)
	sys.Protocol.Runs = 3
	tpch.NewGenerator(0.01, 5).Load(sys.Engine.Catalog(),
		tpch.Region, tpch.Nation, tpch.Supplier, tpch.Customer, tpch.Orders, tpch.Lineitem)
	sys.Engine.WarmAll()
	return sys, workload.NewQueries("q5", tpch.Q5Workload(sys.Engine.Catalog()))
}

func TestSettingIsStock(t *testing.T) {
	if !Stock().IsStock() {
		t.Fatal("Stock() should be stock")
	}
	if PVCSetting(0.05, cpu.DowngradeMedium).IsStock() {
		t.Fatal("PVC setting should not be stock")
	}
	if (Setting{}).String() != "stock" {
		t.Fatalf("zero setting renders %q", Setting{}.String())
	}
}

func TestPaperSettingsCount(t *testing.T) {
	s := PaperSettings()
	if len(s) != 7 {
		t.Fatalf("paper settings = %d, want 7 (stock + 3×2)", len(s))
	}
	if !s[0].IsStock() {
		t.Fatal("first setting must be stock")
	}
	if len(MediumSettings()) != 4 {
		t.Fatal("medium settings should be stock + 3 points")
	}
}

func TestMeasureOnceFields(t *testing.T) {
	sys, queries := testSystem(t)
	m := sys.MeasureOnce(Stock(), func() {
		workload.RunSequential(sys.Engine, sys.Machine.Clock, queries[:2])
	})
	if m.Time <= 0 || m.CPUEnergyExact <= 0 || m.WallEnergy <= 0 {
		t.Fatalf("measurement incomplete: %+v", m)
	}
	if m.WallEnergy <= m.CPUEnergyExact {
		t.Fatal("wall energy should exceed CPU energy")
	}
	// CPU-pegged workload at stock: monitored V and F sit at the top
	// p-state (the paper's §3.4 observation).
	if math.Abs(float64(m.MeanVoltage)-1.25) > 0.02 {
		t.Fatalf("mean voltage = %v, want ≈1.25", m.MeanVoltage)
	}
	if math.Abs(m.MeanFreqGHz-3.167) > 0.05 {
		t.Fatalf("mean freq = %v, want ≈3.167", m.MeanFreqGHz)
	}
}

func TestMeasurementEDPAndTheory(t *testing.T) {
	m := Measurement{
		Time:        10 * sim.Second,
		CPUEnergy:   100,
		MeanVoltage: 1.25,
		MeanFreqGHz: 3.0,
	}
	if m.EDP() != 1000 {
		t.Fatalf("EDP = %v", m.EDP())
	}
	want := 1.25 * 1.25 / 3.0
	if math.Abs(m.TheoreticalEDP()-want) > 1e-12 {
		t.Fatalf("theoretical EDP = %v", m.TheoreticalEDP())
	}
}

func TestPVCSweepOrderAndRestore(t *testing.T) {
	sys, queries := testSystem(t)
	settings := []Setting{Stock(), PVCSetting(0.05, cpu.DowngradeMedium)}
	ms := NewPVC(sys).Sweep(settings, queries[:3])
	if len(ms) != 2 {
		t.Fatalf("sweep returned %d measurements", len(ms))
	}
	if !ms[0].Setting.IsStock() || ms[1].Setting.Underclock != 0.05 {
		t.Fatal("sweep order not preserved")
	}
	// Sweep must leave the machine at stock.
	if sys.Machine.CPU.Underclock() != 0 || sys.Machine.CPU.Downgrade() != cpu.DowngradeNone {
		t.Fatal("sweep did not restore stock settings")
	}
}

func TestPVCSavesEnergyOnCPUBoundWorkload(t *testing.T) {
	sys, queries := testSystem(t)
	ms := NewPVC(sys).Sweep(
		[]Setting{Stock(), PVCSetting(0.05, cpu.DowngradeMedium)}, queries[:3])
	rel := Relative(ms)
	if rel[1].EnergyRatio >= 1 {
		t.Fatalf("PVC energy ratio = %v, want < 1", rel[1].EnergyRatio)
	}
	if rel[1].TimeRatio <= 1 {
		t.Fatalf("PVC time ratio = %v, want > 1 (it trades time for energy)", rel[1].TimeRatio)
	}
	if rel[1].EDPChange >= 0 {
		t.Fatalf("5%%/medium should lower EDP, got %+v", rel[1])
	}
}

func TestRelativeRequiresStock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Relative without stock did not panic")
		}
	}()
	Relative([]Measurement{{Setting: PVCSetting(0.05, cpu.DowngradeSmall)}})
}

func TestQEDSubmitQueueFlush(t *testing.T) {
	sys, queries := testSystem(t)
	qed := NewQED(sys, 4, mqo.OrChain)
	for i := 0; i < 3; i++ {
		if res := qed.Submit(queries[i]); res != nil {
			t.Fatalf("batch flushed early at %d", i)
		}
	}
	if qed.QueueLen() != 3 {
		t.Fatalf("queue length = %d", qed.QueueLen())
	}
	res := qed.Submit(queries[3])
	if res == nil {
		t.Fatal("batch did not flush at threshold")
	}
	if qed.QueueLen() != 0 {
		t.Fatal("queue not drained")
	}
	if len(res.Queries) != 4 {
		t.Fatalf("batch result has %d queries", len(res.Queries))
	}
	// Every query completes at the batch end.
	for _, q := range res.Queries {
		if q.End != res.Total {
			t.Fatalf("query %s finished at %v, want batch end %v", q.ID, q.End, res.Total)
		}
	}
}

func TestQEDPreservesResultCardinalities(t *testing.T) {
	sys, queries := testSystem(t)

	seq := workload.RunSequential(sys.Engine, sys.Machine.Clock, queries)
	qed := NewQED(sys, len(queries), mqo.OrChain)
	batch := qed.RunBatch(queries)

	if seq.TotalRows() != batch.TotalRows() {
		t.Fatalf("QED changed result sizes: %d vs %d", batch.TotalRows(), seq.TotalRows())
	}
	for i := range queries {
		if seq.Queries[i].Rows != batch.Queries[i].Rows {
			t.Fatalf("query %d rows differ: seq %d vs qed %d",
				i, seq.Queries[i].Rows, batch.Queries[i].Rows)
		}
	}
}

func TestQEDSavesEnergy(t *testing.T) {
	sys, queries := testSystem(t)
	trace := sys.Machine.CPU.Trace()
	clock := sys.Machine.Clock

	t0 := clock.Now()
	workload.RunSequential(sys.Engine, clock, queries)
	seqE := trace.Energy(t0, clock.Now())

	t1 := clock.Now()
	NewQED(sys, len(queries), mqo.OrChain).RunBatch(queries)
	qedE := trace.Energy(t1, clock.Now())

	if qedE >= seqE {
		t.Fatalf("QED energy %v should undercut sequential %v", qedE, seqE)
	}
}

func TestQEDHashSetBeatsOrChain(t *testing.T) {
	sys, queries := testSystem(t)
	clock := sys.Machine.Clock

	t0 := clock.Now()
	NewQED(sys, len(queries), mqo.OrChain).RunBatch(queries)
	orTime := clock.Now().Sub(t0)

	t1 := clock.Now()
	NewQED(sys, len(queries), mqo.HashSet).RunBatch(queries)
	hashTime := clock.Now().Sub(t1)

	if hashTime >= orTime {
		t.Fatalf("hash-set merge (%v) should beat the OR chain (%v)", hashTime, orTime)
	}
}

func TestQEDFallsBackWhenUnmergeable(t *testing.T) {
	sys, _ := testSystem(t)
	// Q5 plans are not mergeable selections; load the remaining tables
	// they join against (lineitem is already present).
	tpch.NewGenerator(0.01, 5).Load(sys.Engine.Catalog(),
		tpch.Region, tpch.Nation, tpch.Supplier, tpch.Customer, tpch.Orders)
	queries := workload.NewQueries("q5", tpch.Q5Workload(sys.Engine.Catalog())[:2])
	res := NewQED(sys, 2, mqo.OrChain).RunBatch(queries)
	if len(res.Queries) != 2 {
		t.Fatalf("fallback produced %d results", len(res.Queries))
	}
	// Sequential fallback: the first query finishes before the second.
	if res.Queries[0].End >= res.Queries[1].End {
		t.Fatal("fallback should execute sequentially")
	}
}

// The QED-layer acceptance test for the shared-scan flush: a non-mergeable
// batch served by one pass returns the same per-query cardinalities as
// sequential execution, costs less energy, and its simulated
// joules-per-query strictly decrease as the batch grows.
func TestQEDSharedScanFlushSavesJoulesPerQuery(t *testing.T) {
	bandSystem := func() *System {
		prof := engine.ProfileMySQLMemory()
		sys := NewSystem(prof)
		tpch.NewGenerator(0.01, 5).Load(sys.Engine.Catalog(), tpch.Lineitem)
		return sys
	}

	// Cardinalities: shared flush must match the sequential fallback.
	sysA := bandSystem()
	bands := workload.NewQueries("band", tpch.QuantityBandWorkload(sysA.Engine.Catalog(), 6))
	seq := NewQED(sysA, 6, mqo.OrChain).RunBatch(bands) // SharedScan off: sequential fallback
	shared := func(sys *System, qs []workload.Query) workload.RunResult {
		qed := NewQED(sys, 2, mqo.OrChain)
		qed.SharedScan = true
		return qed.RunBatch(qs)
	}
	sh := shared(sysA, bands)
	for i := range bands {
		if sh.Queries[i].Rows != seq.Queries[i].Rows {
			t.Fatalf("query %d: shared %d rows vs sequential %d", i, sh.Queries[i].Rows, seq.Queries[i].Rows)
		}
	}
	if sh.Total >= seq.Total {
		t.Fatalf("shared flush %v not faster than sequential %v", sh.Total, seq.Total)
	}

	// Joules-per-query strictly decrease with batch size — each query pays
	// its own CPU but the pass is amortized. N identical full-table scans
	// (not mergeable: no predicate to fold) per point, each N on a fresh
	// system, exact trace integral (no sampling noise).
	var perQuery []energy.Joules
	for _, n := range []int{1, 2, 4, 8} {
		sys := bandSystem()
		li := sys.Engine.MustTable(tpch.Lineitem)
		plans := make([]plan.Node, n)
		for i := range plans {
			plans[i] = plan.NewScan(li, nil)
		}
		qs := workload.NewQueries("full", plans)
		clock := sys.Machine.Clock
		t0 := clock.Now()
		if n == 1 {
			// A QED batch of one has nothing to share; the sequential
			// fallback is the baseline point.
			workload.RunSequential(sys.Engine, clock, qs)
		} else {
			shared(sys, qs)
		}
		perQuery = append(perQuery, energy.PerQuery(sys.Machine.CPU.Trace().Energy(t0, clock.Now()), n))
	}
	for i := 1; i < len(perQuery); i++ {
		if perQuery[i] >= perQuery[i-1] {
			t.Fatalf("joules-per-query not strictly decreasing: %v", perQuery)
		}
	}
}

// A batch that is only PARTIALLY mergeable — some identical-shape equality
// selections plus one range selection — defeats mqo.Merge entirely (merge
// is all-or-nothing), so QED serves the whole batch sequentially, or from
// one shared pass when SharedScan is on; either way every query's
// cardinality is preserved.
func TestQEDFlushPartiallyMergeableBatch(t *testing.T) {
	sys, _ := testSystem(t)
	cat := sys.Engine.Catalog()
	plans := tpch.QuantityWorkload(cat, 3) // mergeable trio
	plans = append(plans, tpch.QuantityBandQuery(cat, 11, 2))
	queries := workload.NewQueries("mix", plans)

	want := workload.RunSequential(sys.Engine, sys.Machine.Clock, queries)

	// SharedScan off: sequential fallback (queries finish one after another).
	qed := NewQED(sys, len(queries), mqo.OrChain)
	for i, q := range queries[:3] {
		if res := qed.Submit(q); res != nil {
			t.Fatalf("flush fired early at %d", i)
		}
	}
	res := qed.Submit(queries[3])
	if res == nil {
		t.Fatal("flush did not fire at the batch threshold")
	}
	for i := range queries {
		if res.Queries[i].Rows != want.Queries[i].Rows {
			t.Fatalf("query %d: %d rows vs sequential %d", i, res.Queries[i].Rows, want.Queries[i].Rows)
		}
	}
	for i := 1; i < len(res.Queries); i++ {
		if res.Queries[i-1].End >= res.Queries[i].End {
			t.Fatal("partially mergeable batch should fall back to sequential execution")
		}
	}

	// SharedScan on: the same mixed batch rides one pass — all queries
	// issued together and cardinalities unchanged.
	qedSh := NewQED(sys, len(queries), mqo.OrChain)
	qedSh.SharedScan = true
	resSh := qedSh.RunBatch(queries)
	for i := range queries {
		if resSh.Queries[i].Rows != want.Queries[i].Rows {
			t.Fatalf("shared query %d: %d rows vs sequential %d", i, resSh.Queries[i].Rows, want.Queries[i].Rows)
		}
		if resSh.Queries[i].Start != 0 {
			t.Fatalf("shared query %d started at %v, want batch issue", i, resSh.Queries[i].Start)
		}
	}
}

// Fully mergeable batches must keep taking the merged path even with
// SharedScan on — predicate merging subsumes scan sharing.
func TestQEDSharedScanKeepsMergedPathWhenMergeable(t *testing.T) {
	// Two identical fresh systems so the durations are bit-comparable.
	sysA, queriesA := testSystem(t)
	t0 := sysA.Machine.Clock.Now()
	NewQED(sysA, len(queriesA), mqo.OrChain).RunBatch(queriesA)
	mergedTime := sysA.Machine.Clock.Now().Sub(t0)

	sysB, queriesB := testSystem(t)
	qed := NewQED(sysB, len(queriesB), mqo.OrChain)
	qed.SharedScan = true
	t1 := sysB.Machine.Clock.Now()
	qed.RunBatch(queriesB)
	sharedTime := sysB.Machine.Clock.Now().Sub(t1)

	if sharedTime != mergedTime {
		t.Fatalf("SharedScan changed the mergeable path: %v vs %v", sharedTime, mergedTime)
	}
}

func TestQEDBatchSizePanics(t *testing.T) {
	sys, _ := testSystem(t)
	defer func() {
		if recover() == nil {
			t.Fatal("batch size 1 did not panic")
		}
	}()
	NewQED(sys, 1, mqo.OrChain)
}

func TestFirstLastQueryDegradation(t *testing.T) {
	batch := workload.RunResult{
		Total: 10 * sim.Second,
		Queries: []workload.QueryResult{
			{End: 10 * sim.Second}, {End: 10 * sim.Second}, {End: 10 * sim.Second},
		},
	}
	single := 2 * sim.Second
	if got := FirstQueryDegradation(batch, single); got != 8*sim.Second {
		t.Fatalf("first degradation = %v", got)
	}
	if got := LastQueryDegradation(batch, single); got != 4*sim.Second {
		t.Fatalf("last degradation = %v", got)
	}
}

func TestAdvisorChoosesWithinSLA(t *testing.T) {
	stock := Measurement{Setting: Stock(), Time: 100 * sim.Second, CPUEnergy: 1000}
	good := Measurement{Setting: PVCSetting(0.05, cpu.DowngradeMedium), Time: 103 * sim.Second, CPUEnergy: 600}
	slow := Measurement{Setting: PVCSetting(0.15, cpu.DowngradeMedium), Time: 120 * sim.Second, CPUEnergy: 500}
	ms := []Measurement{stock, good, slow}

	best, ok := Advisor{MaxSlowdown: 1.05}.Choose(ms)
	if !ok || best.Setting != good.Setting {
		t.Fatalf("advisor chose %v", best.Setting)
	}
	// Looser SLA admits the slower, cheaper point.
	best, _ = Advisor{MaxSlowdown: 1.25}.Choose(ms)
	if best.Setting != slow.Setting {
		t.Fatalf("loose SLA chose %v", best.Setting)
	}
	// Tight SLA leaves only stock.
	best, _ = Advisor{MaxSlowdown: 1.0}.Choose(ms)
	if !best.Setting.IsStock() {
		t.Fatalf("tight SLA chose %v", best.Setting)
	}
}

func TestAdvisorWithoutBaseline(t *testing.T) {
	_, ok := Advisor{MaxSlowdown: 1.1}.Choose([]Measurement{
		{Setting: PVCSetting(0.05, cpu.DowngradeSmall)},
	})
	if ok {
		t.Fatal("advisor without stock baseline should fail")
	}
}

func TestSLAFromCurve(t *testing.T) {
	ms := []Measurement{
		{Setting: Stock(), Time: 100 * sim.Second},
		{Setting: PVCSetting(0.05, cpu.DowngradeMedium), Time: 103 * sim.Second},
	}
	slas := SLAFromCurve(ms)
	if math.Abs(slas["uc=5%/medium"]-1.03) > 1e-9 {
		t.Fatalf("SLA map = %v", slas)
	}
}

func TestAdaptivePVCStaysWithinBudget(t *testing.T) {
	sys, queries := commercialSystem(t)

	// Stock baseline.
	t0 := sys.Machine.Clock.Now()
	workload.RunSequential(sys.Engine, sys.Machine.Clock, queries)
	stockTime := sys.Machine.Clock.Now().Sub(t0)

	a := &AdaptivePVC{
		Sys: sys,
		Ladder: []Setting{
			PVCSetting(0.15, cpu.DowngradeMedium),
			PVCSetting(0.05, cpu.DowngradeMedium),
			Stock(),
		},
		Budget: sim.Duration(float64(stockTime) * 1.10),
	}
	total, decisions := a.Run(queries)
	if len(decisions) != len(queries) {
		t.Fatalf("decisions = %d", len(decisions))
	}
	if float64(total) > 1.12*float64(stockTime) {
		t.Fatalf("adaptive run %v blew the %v budget", total, a.Budget)
	}
}

func TestQEDModelFitAndPredictions(t *testing.T) {
	// T(n) = 2 + 0.5n seconds, t1 = 1.8s.
	m := FitQEDModel(1.8*sim.Second, 10, 7*sim.Second, 20, 12*sim.Second)
	if math.Abs(float64(m.Fixed)-2) > 1e-9 || math.Abs(float64(m.PerQuery)-0.5) > 1e-9 {
		t.Fatalf("fit = %+v", m)
	}
	if got := m.MergedTime(30); math.Abs(float64(got)-17) > 1e-9 {
		t.Fatalf("T(30) = %v", got)
	}
	if got := m.SequentialMeanResponse(9); math.Abs(float64(got)-9) > 1e-9 {
		t.Fatalf("seq mean(9) = %v, want (9+1)/2×1.8 = 9", got)
	}
	// First-query degradation grows with batch size (§4).
	if !(m.FirstQueryDegradation(20) > m.FirstQueryDegradation(10)) {
		t.Fatal("first-query degradation should grow with batch size")
	}
	// The last query can finish earlier than sequentially.
	if m.LastQueryDegradation(20) >= 0 {
		t.Fatal("last query should finish early for this fit")
	}
}

func TestQEDModelMatchesSimulator(t *testing.T) {
	sys, _ := testSystem(t)
	clock := sys.Machine.Clock

	single := workload.NewQueries("s", tpch.QuantityWorkload(sys.Engine.Catalog(), 1))
	t0 := clock.Now()
	workload.RunSequential(sys.Engine, clock, single)
	t1 := clock.Now().Sub(t0)

	runMerged := func(n int) sim.Duration {
		queries := workload.NewQueries("m", tpch.QuantityWorkload(sys.Engine.Catalog(), n))
		start := clock.Now()
		NewQED(sys, n, mqo.OrChain).RunBatch(queries)
		return clock.Now().Sub(start)
	}
	m := FitQEDModel(t1, 5, runMerged(5), 15, runMerged(15))

	// The fitted model predicts an unseen batch size within 10%.
	got := runMerged(10)
	pred := m.MergedTime(10)
	if rel := math.Abs(float64(got-pred)) / float64(got); rel > 0.10 {
		t.Fatalf("model predicts %v for batch 10, simulator %v (%.1f%% off)", pred, got, rel*100)
	}
}

func TestReduceMeasurementsDiscardsExtremes(t *testing.T) {
	s := Stock()
	reps := []Measurement{
		{Setting: s, CPUEnergy: 100, Time: 10 * sim.Second},
		{Setting: s, CPUEnergy: 1, Time: sim.Second},
		{Setting: s, CPUEnergy: 105, Time: 10 * sim.Second},
		{Setting: s, CPUEnergy: 1000, Time: 90 * sim.Second},
		{Setting: s, CPUEnergy: 95, Time: 10 * sim.Second},
	}
	got := reduceMeasurements(s, reps)
	if math.Abs(float64(got.CPUEnergy)-100) > 1e-9 {
		t.Fatalf("reduced energy = %v, want 100", got.CPUEnergy)
	}
}

var _ = energy.Joules(0)
