package core

import (
	"fmt"

	"ecodb/internal/energy"
	"ecodb/internal/hw/cpu"
	"ecodb/internal/hw/mobo"
	"ecodb/internal/workload"
)

// Setting is one PVC operating point: an FSB underclock fraction combined
// with a voltage downgrade preset. The zero value is the stock setting.
type Setting struct {
	Name       string
	Underclock float64
	Downgrade  cpu.Downgrade
}

// IsStock reports whether this is the factory configuration.
func (s Setting) IsStock() bool { return s.Underclock == 0 && s.Downgrade == cpu.DowngradeNone }

// TunerProfile translates the setting into the 6-Engine platform profile:
// stock keeps factory aux settings; any PVC point also enables the paper's
// auxiliary tuned settings (light loadline, chipset downgrade, EPU idle
// management — §3.3).
func (s Setting) TunerProfile() mobo.Profile {
	if s.IsStock() {
		return mobo.Stock()
	}
	return mobo.Tuned(s.Underclock, s.Downgrade)
}

func (s Setting) String() string {
	if s.Name != "" {
		return s.Name
	}
	if s.IsStock() {
		return "stock"
	}
	return fmt.Sprintf("uc=%.0f%%/%s", s.Underclock*100, s.Downgrade)
}

// Stock returns the factory operating point.
func Stock() Setting { return Setting{Name: "stock"} }

// PVCSetting returns a named PVC operating point.
func PVCSetting(underclock float64, d cpu.Downgrade) Setting {
	return Setting{
		Name:       fmt.Sprintf("uc=%.0f%%/%s", underclock*100, d),
		Underclock: underclock,
		Downgrade:  d,
	}
}

// PaperSettings returns the seven operating points of the paper's §3.3:
// stock plus 5/10/15% underclocking under the small and medium voltage
// downgrades.
func PaperSettings() []Setting {
	out := []Setting{Stock()}
	for _, d := range []cpu.Downgrade{cpu.DowngradeSmall, cpu.DowngradeMedium} {
		for _, uc := range []float64{0.05, 0.10, 0.15} {
			out = append(out, PVCSetting(uc, d))
		}
	}
	return out
}

// MediumSettings returns stock plus the medium-downgrade points — the
// paper's Figure 1 series (settings A, B, C).
func MediumSettings() []Setting {
	return []Setting{
		Stock(),
		PVCSetting(0.05, cpu.DowngradeMedium),
		PVCSetting(0.10, cpu.DowngradeMedium),
		PVCSetting(0.15, cpu.DowngradeMedium),
	}
}

// PVC is the processor voltage/frequency control technique: it sweeps a
// workload across operating points and reports the measured tradeoff
// curve. This is the machinery that "generates graphs as shown in
// Figure 1" (§1's first open question).
type PVC struct {
	Sys *System
}

// NewPVC returns the PVC controller for a system.
func NewPVC(sys *System) *PVC { return &PVC{Sys: sys} }

// Sweep measures the workload under every setting (using the system's
// five-run protocol per point) and returns one Measurement per setting, in
// input order. The machine is left at stock afterwards.
func (p *PVC) Sweep(settings []Setting, queries []workload.Query) []Measurement {
	out := make([]Measurement, 0, len(settings))
	for _, s := range settings {
		out = append(out, p.Sys.MeasureWorkload(s, queries))
	}
	p.Sys.Machine.Tuner().Apply(mobo.Stock())
	return out
}

// Point is one operating point expressed relative to a stock baseline —
// the ratio form the paper plots in Figures 2 and 3.
type Point struct {
	Setting     Setting
	EnergyRatio float64 // CPU energy / stock CPU energy
	TimeRatio   float64 // response time / stock response time
	EDPChange   float64 // relative EDP change, e.g. -0.47 for "47% lower"
}

// Relative converts measurements into stock-relative points. The baseline
// is the measurement whose setting IsStock; it panics if none exists,
// since ratios without a baseline are meaningless.
func Relative(ms []Measurement) []Point {
	var base *Measurement
	for i := range ms {
		if ms[i].Setting.IsStock() {
			base = &ms[i]
			break
		}
	}
	if base == nil {
		panic("core: Relative requires a stock measurement as baseline")
	}
	out := make([]Point, len(ms))
	for i, m := range ms {
		out[i] = Point{
			Setting:     m.Setting,
			EnergyRatio: energy.Ratio(base.CPUEnergy, m.CPUEnergy),
			TimeRatio:   float64(m.Time) / float64(base.Time),
			EDPChange:   energy.RelChange(base.EDP(), m.EDP()),
		}
	}
	return out
}

func (pt Point) String() string {
	return fmt.Sprintf("%-22s energy×%.3f time×%.3f EDP%+.1f%%",
		pt.Setting, pt.EnergyRatio, pt.TimeRatio, pt.EDPChange*100)
}
