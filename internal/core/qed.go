package core

import (
	"fmt"

	"ecodb/internal/hw/cpu"
	"ecodb/internal/mqo"
	"ecodb/internal/plan"
	"ecodb/internal/sim"
	"ecodb/internal/workload"
)

// QED — "improved Query Energy-efficiency by introducing explicit Delays"
// (§4) — holds arriving queries in a queue; when the queue reaches the
// batch threshold, mergeable queries are aggregated into one disjunctive
// query, executed once, and their results split back in application logic
// (whose cost is charged to the same machine, as the paper does).
type QED struct {
	Sys *System
	// BatchSize is the queue threshold that triggers a flush.
	BatchSize int
	// Strategy selects the merged-predicate implementation; the paper's
	// engines evaluate an OR chain.
	Strategy mqo.MergeStrategy
	// SharedScan enables the shared-scan flush mode: a batch the merger
	// rejects (heterogeneous predicates, mixed tables — anything beyond
	// mqo's identical-selection shape) is served by one circular heap
	// pass per table via engine.SharedSession instead of running
	// sequentially, extending QED's energy amortization to arbitrary
	// concurrent scans. Mergeable batches still take the merged path,
	// which subsumes sharing (one scan and one predicate pass).
	SharedScan bool

	queue []workload.Query
}

// NewQED returns a QED controller. Batch sizes below 2 panic — QED with a
// single query is just a delay.
func NewQED(sys *System, batchSize int, strategy mqo.MergeStrategy) *QED {
	if batchSize < 2 {
		panic(fmt.Sprintf("core: QED batch size %d must be at least 2", batchSize))
	}
	return &QED{Sys: sys, BatchSize: batchSize, Strategy: strategy}
}

// QueueLen returns the number of queries waiting.
func (q *QED) QueueLen() int { return len(q.queue) }

// Submit enqueues a query. When the queue reaches the batch size it is
// flushed and the batch's results are returned; otherwise Submit returns
// nil (the query waits — the "explicit delay").
//
// Per the paper's accounting, queue-building time is not counted: "the
// queue of queries builds up in a master system that is always on... and
// the DBMS machine goes to sleep when there is no work".
func (q *QED) Submit(query workload.Query) *workload.RunResult {
	q.queue = append(q.queue, query)
	if len(q.queue) < q.BatchSize {
		return nil
	}
	res := q.Flush()
	return &res
}

// Flush executes everything in the queue now: mergeable queries as one
// aggregated query, the rest sequentially. It returns the batch outcome
// with response times measured from flush (batch issue).
func (q *QED) Flush() workload.RunResult {
	queries := q.queue
	q.queue = nil
	return q.RunBatch(queries)
}

// RunBatch executes one batch the QED way. If the whole batch cannot be
// merged (the paper's queue examination step finds no common components),
// it falls back to a shared-scan flush when SharedScan is set — the
// non-mergeable queries still share one heap pass per table — and to
// sequential execution otherwise.
func (q *QED) RunBatch(queries []workload.Query) workload.RunResult {
	plans := make([]plan.Node, len(queries))
	for i := range queries {
		plans[i] = queries[i].Plan
	}
	merged, err := mqo.Merge(plans, q.Strategy)
	if err != nil {
		if q.SharedScan && len(queries) > 1 {
			return workload.RunShared(q.Sys.Engine, q.Sys.Machine.Clock, queries)
		}
		return workload.RunSequential(q.Sys.Engine, q.Sys.Machine.Clock, queries)
	}

	clock := q.Sys.Machine.Clock
	issue := clock.Now()

	// One aggregated query against the DBMS, streamed batch by batch into
	// the application-side splitter — the merged mega-result is routed as
	// it arrives instead of being materialized twice.
	rows := q.Sys.Engine.Query(merged.Plan)
	split := merged.NewSplitter()
	for {
		b, err := rows.Next()
		if err != nil {
			// No operator errors exist today; a partial split would
			// silently corrupt the measurement, so fail loudly.
			panic(fmt.Sprintf("core: merged query failed mid-stream: %v", err))
		}
		if b == nil {
			break
		}
		split.Add(b.Rows())
	}

	// Application-side split cost, charged to the same machine's CPU (the
	// paper's client runs on the SUT): routing result rows is
	// single-threaded, cache-missing object traversal, amplified like all
	// per-row work.
	perQuery, clientCycles := split.Finish()
	cpuModel := q.Sys.Machine.CPU
	cpuModel.SetParallelism(1)
	cpuModel.Run(clientCycles*q.Sys.Engine.Profile().Amplification(), cpu.MemStall)

	end := clock.Now().Sub(issue)
	out := workload.RunResult{Total: end}
	for i, query := range queries {
		out.Queries = append(out.Queries, workload.QueryResult{
			ID:    query.ID,
			Start: 0,
			End:   end, // every query returns when the batch completes
			Rows:  int64(len(perQuery[i])),
		})
	}
	return out
}

// Delay analysis helpers (§4 notes "the response time degradation is most
// severe for the first query in the batch, and least for the last").

// FirstQueryDegradation returns how much longer the first-submitted query
// waited under QED compared to running immediately alone, given the
// batch result and a single-query baseline duration.
func FirstQueryDegradation(batch workload.RunResult, single sim.Duration) sim.Duration {
	if len(batch.Queries) == 0 {
		return 0
	}
	return batch.Queries[0].Response() - single
}

// LastQueryDegradation is the same for the last query, whose sequential
// baseline would have been n·single.
func LastQueryDegradation(batch workload.RunResult, single sim.Duration) sim.Duration {
	n := len(batch.Queries)
	if n == 0 {
		return 0
	}
	return batch.Queries[n-1].Response() - sim.Duration(n)*single
}
