package core

import (
	"fmt"

	"ecodb/internal/sim"
)

// QEDModel is the "simple analytical model" §4 alludes to for QED's
// response-time effects: with t₁ the single-query time and the merged
// batch taking T(n) = a + b·n,
//
//	sequential mean response over n queries  = (n+1)/2 · t₁
//	QED response (every query, from issue)   = a + b·n
//	first-query degradation                  = T(n) − t₁
//	last-query degradation                   = T(n) − n·t₁
//
// It captures the paper's observations that degradation is most severe for
// the first query, least for the last, and that the first query's
// degradation grows with batch size.
type QEDModel struct {
	Single   sim.Duration // t₁
	Fixed    sim.Duration // a: merged-query cost independent of batch size
	PerQuery sim.Duration // b: merged-query cost per batched query
}

// FitQEDModel calibrates the model from three observations: a single-query
// run and merged runs at two batch sizes.
func FitQEDModel(single sim.Duration, n1 int, t1 sim.Duration, n2 int, t2 sim.Duration) QEDModel {
	if n1 == n2 {
		panic("core: FitQEDModel needs two distinct batch sizes")
	}
	b := float64(t2-t1) / float64(n2-n1)
	a := float64(t1) - b*float64(n1)
	return QEDModel{Single: single, Fixed: sim.Duration(a), PerQuery: sim.Duration(b)}
}

// MergedTime predicts the merged batch execution time T(n).
func (m QEDModel) MergedTime(n int) sim.Duration {
	return m.Fixed + m.PerQuery*sim.Duration(n)
}

// SequentialMeanResponse predicts the mean per-query response of the
// traditional scheme with all n queries issued at once.
func (m QEDModel) SequentialMeanResponse(n int) sim.Duration {
	return m.Single * sim.Duration(n+1) / 2
}

// QEDMeanResponse predicts the mean per-query response under QED: every
// query returns when the batch completes.
func (m QEDModel) QEDMeanResponse(n int) sim.Duration { return m.MergedTime(n) }

// ResponsePenalty predicts QED's mean response time relative to
// sequential, e.g. 1.52 for "52% higher".
func (m QEDModel) ResponsePenalty(n int) float64 {
	seq := m.SequentialMeanResponse(n)
	if seq <= 0 {
		return 0
	}
	return float64(m.QEDMeanResponse(n)) / float64(seq)
}

// FirstQueryDegradation predicts how much longer the first query waits
// versus running alone immediately.
func (m QEDModel) FirstQueryDegradation(n int) sim.Duration {
	return m.MergedTime(n) - m.Single
}

// LastQueryDegradation predicts the last query's extra wait versus its
// sequential completion at n·t₁ (often negative: the last query finishes
// sooner under QED).
func (m QEDModel) LastQueryDegradation(n int) sim.Duration {
	return m.MergedTime(n) - sim.Duration(n)*m.Single
}

func (m QEDModel) String() string {
	return fmt.Sprintf("QEDModel{t1=%v, T(n)=%v + n·%v}", m.Single, m.Fixed, m.PerQuery)
}
