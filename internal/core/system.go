// Package core is ecoDB's public control layer — the paper's contribution:
// treating energy as a first-class query-processing metric. It provides
//
//   - operating-point Settings (PVC: FSB underclocking × voltage downgrade),
//   - measured tradeoff curves between response time and energy (the
//     machinery that generates the paper's Figure 1),
//   - the QED workload controller (explicit delays + multi-query merge),
//   - an SLA-constrained operating-point Advisor and a mid-flight adaptive
//     controller (future-work items §1 sketches),
//   - the analytic QED response-time model (§4's "simple analytical
//     model").
package core

import (
	"fmt"

	"ecodb/internal/energy"
	"ecodb/internal/engine"
	"ecodb/internal/hw/system"
	"ecodb/internal/meter"
	"ecodb/internal/sim"
	"ecodb/internal/workload"
)

// System bundles a simulated machine, a database engine bound to it, and
// the paper's measurement instruments.
type System struct {
	Machine  *system.Machine
	Engine   *engine.Engine
	Sampler  *meter.GUISampler
	Protocol *meter.Protocol
}

// NewSystem assembles the paper's SUT with an engine of the given profile
// and the paper's measurement methodology (1 Hz GUI sampling, five-run
// protocol). The sampler's phase varies per run so the protocol's
// discard-extremes step has real work to do.
func NewSystem(prof engine.Profile) *System {
	m := system.NewSUT()
	s := &System{
		Machine:  m,
		Engine:   engine.New(prof, m),
		Sampler:  meter.NewGUISampler(),
		Protocol: meter.NewProtocol(),
	}
	s.Sampler.Phase = sim.NewRNG(prof.Seed ^ 0xfade)
	return s
}

// Measurement is one measured operating point: the paper's per-workload
// record of response time, CPU energy (as the GUI-sampled methodology
// reports it), and supporting channels.
type Measurement struct {
	Setting Setting
	// Time is the workload response time.
	Time sim.Duration
	// CPUEnergy is measured the paper's way: 1 Hz sampled mean wattage ×
	// execution time.
	CPUEnergy energy.Joules
	// CPUEnergyExact is the exact trace integral (what a better
	// instrument would read).
	CPUEnergyExact energy.Joules
	// DiskEnergy sums the drive's 5 V and 12 V lines.
	DiskEnergy energy.Joules
	// WallEnergy is the whole-system wall draw including PSU loss.
	WallEnergy energy.Joules
	// MeanVoltage and MeanFreqGHz are the monitored busy-time averages
	// (paper §3.4 measures these to build the theoretical EDP).
	MeanVoltage energy.Volts
	MeanFreqGHz float64
}

// EDP returns the measurement's energy-delay product on the GUI-sampled
// CPU energy, the paper's primary combined metric.
func (m Measurement) EDP() energy.EDP {
	return energy.EDPOf(m.CPUEnergy, m.Time.Seconds())
}

// TheoreticalEDP returns V²/F from the monitored voltage and frequency —
// proportional to the paper's §3.4 model EDP = CV²/F.
func (m Measurement) TheoreticalEDP() float64 {
	if m.MeanFreqGHz == 0 {
		return 0
	}
	v := float64(m.MeanVoltage)
	return v * v / m.MeanFreqGHz
}

func (m Measurement) String() string {
	return fmt.Sprintf("%-22s T=%v cpu=%v (exact %v) disk=%v wall=%v V̄=%.3f F̄=%.2fGHz",
		m.Setting, m.Time, m.CPUEnergy, m.CPUEnergyExact, m.DiskEnergy, m.WallEnergy,
		float64(m.MeanVoltage), m.MeanFreqGHz)
}

// MeasureOnce applies the setting, executes run, and measures the window
// with every instrument. Callers wanting the paper's protocol use a
// Protocol around this.
func (s *System) MeasureOnce(setting Setting, run func()) Measurement {
	s.Machine.Tuner().Apply(setting.TunerProfile())
	clock := s.Machine.Clock
	cpuModel := s.Machine.CPU

	t0 := clock.Now()
	stats0 := cpuModel.Stats()
	run()
	t1 := clock.Now()
	stats1 := cpuModel.Stats()

	busy := stats1.Busy - stats0.Busy
	var vMean energy.Volts
	var fMean float64
	if busy > 0 {
		// Undo the cumulative averaging to recover this window's means.
		vMean = energy.Volts((float64(stats1.MeanVoltage)*stats1.Busy.Seconds() -
			float64(stats0.MeanVoltage)*stats0.Busy.Seconds()) / busy.Seconds())
		fMean = (stats1.MeanFreqGHz*stats1.Busy.Seconds() -
			stats0.MeanFreqGHz*stats0.Busy.Seconds()) / busy.Seconds()
	}

	return Measurement{
		Setting:        setting,
		Time:           t1.Sub(t0),
		CPUEnergy:      s.Sampler.Measure(cpuModel.Trace(), t0, t1),
		CPUEnergyExact: cpuModel.Trace().Energy(t0, t1),
		DiskEnergy:     s.Machine.Disk.Energy(t0, t1),
		WallEnergy:     s.Machine.WallEnergy(t0, t1),
		MeanVoltage:    vMean,
		MeanFreqGHz:    fMean,
	}
}

// MeasureWorkload measures a sequential execution of the workload under a
// setting, repeated per the system's protocol with extremes discarded; all
// fields are averaged over the kept runs.
func (s *System) MeasureWorkload(setting Setting, queries []workload.Query) Measurement {
	reps := make([]Measurement, s.Protocol.Runs)
	for i := range reps {
		reps[i] = s.MeasureOnce(setting, func() {
			workload.RunSequential(s.Engine, s.Machine.Clock, queries)
		})
	}
	return reduceMeasurements(setting, reps)
}

// reduceMeasurements applies the paper's discard-extremes-by-energy rule
// and averages every field over the kept runs.
func reduceMeasurements(setting Setting, reps []Measurement) Measurement {
	if len(reps) == 0 {
		return Measurement{Setting: setting}
	}
	kept := make([]Measurement, len(reps))
	copy(kept, reps)
	if len(kept) >= 3 {
		lo, hi := 0, 0
		for i, m := range kept {
			if m.CPUEnergy < kept[lo].CPUEnergy {
				lo = i
			}
			if m.CPUEnergy > kept[hi].CPUEnergy {
				hi = i
			}
		}
		filtered := kept[:0]
		for i, m := range kept {
			if i != lo && i != hi {
				filtered = append(filtered, m)
			}
		}
		kept = filtered
	}
	out := Measurement{Setting: setting}
	n := float64(len(kept))
	for _, m := range kept {
		out.Time += m.Time / sim.Duration(n)
		out.CPUEnergy += energy.Joules(float64(m.CPUEnergy) / n)
		out.CPUEnergyExact += energy.Joules(float64(m.CPUEnergyExact) / n)
		out.DiskEnergy += energy.Joules(float64(m.DiskEnergy) / n)
		out.WallEnergy += energy.Joules(float64(m.WallEnergy) / n)
		out.MeanVoltage += energy.Volts(float64(m.MeanVoltage) / n)
		out.MeanFreqGHz += m.MeanFreqGHz / n
	}
	return out
}
