package energy

import (
	"sort"

	"ecodb/internal/sim"
)

// TotalAt sums the instantaneous power of several traces at instant t.
func TotalAt(t sim.Time, traces ...*Trace) Watts {
	var w Watts
	for _, tr := range traces {
		w += tr.At(t)
	}
	return w
}

// PerQuery amortizes a batch's energy over its n queries — the
// joules-per-query metric shared-work evaluations report (one heap pass
// serving n consumers divides its shared I/O and streaming joules by n).
// Non-positive n returns total unchanged.
func PerQuery(total Joules, n int) Joules {
	if n <= 1 {
		return total
	}
	return Joules(float64(total) / float64(n))
}

// Integrate computes ∫ f(Σ traces) dt over [t0, t1] exactly, by walking the
// union of all traces' breakpoints. The transform f lets callers model a
// nonlinear stage between the summed draw and the measured quantity — the
// power supply's load-dependent efficiency when integrating wall power, or
// the identity for plain DC energy.
func Integrate(t0, t1 sim.Time, f func(Watts) Watts, traces ...*Trace) Joules {
	if t1 <= t0 {
		return 0
	}
	if f == nil {
		f = func(w Watts) Watts { return w }
	}
	// Union of breakpoints within (t0, t1).
	var cuts []sim.Time
	for _, tr := range traces {
		for _, s := range tr.steps {
			if s.at > t0 && s.at < t1 {
				cuts = append(cuts, s.at)
			}
		}
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })

	var e Joules
	cur := t0
	for _, c := range cuts {
		if c == cur {
			continue
		}
		e += f(TotalAt(cur, traces...)).For(c.Sub(cur).Seconds())
		cur = c
	}
	e += f(TotalAt(cur, traces...)).For(t1.Sub(cur).Seconds())
	return e
}
