package energy

import (
	"math"
	"testing"
	"testing/quick"

	"ecodb/internal/sim"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWattsJoulesRoundTrip(t *testing.T) {
	j := Watts(25).For(10)
	if j != 250 {
		t.Fatalf("25W for 10s = %v J, want 250", j)
	}
	if w := j.Over(10); w != 25 {
		t.Fatalf("250J over 10s = %v W, want 25", w)
	}
}

func TestJoulesOverZeroDuration(t *testing.T) {
	if w := Joules(100).Over(0); w != 0 {
		t.Fatalf("Over(0) = %v, want 0", w)
	}
}

func TestEDPOf(t *testing.T) {
	// The paper's stock commercial reading: ~1228.7 J over ~48.5 s.
	e := EDPOf(1228.7, 48.5)
	if !almost(float64(e), 59591.95, 0.1) {
		t.Fatalf("EDP = %v", e)
	}
}

func TestRelChange(t *testing.T) {
	if got := RelChange(100.0, 51.0); !almost(got, -0.49, 1e-12) {
		t.Fatalf("RelChange = %v, want -0.49", got)
	}
	if got := RelChange(0.0, 5.0); got != 0 {
		t.Fatalf("RelChange from 0 = %v, want 0", got)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(Joules(200), Joules(100)); got != 0.5 {
		t.Fatalf("Ratio = %v", got)
	}
}

func TestIsoEDP(t *testing.T) {
	// Points on the iso-EDP curve keep energy×time product constant.
	for _, e := range []float64{0.25, 0.5, 1, 2} {
		tr := IsoEDP(e)
		if !almost(e*tr, 1, 1e-12) {
			t.Fatalf("IsoEDP(%v)*%v = %v, want 1", e, e, e*tr)
		}
	}
	if IsoEDP(0) != 0 {
		t.Fatal("IsoEDP(0) should be 0")
	}
}

func TestIsoEDPCurve(t *testing.T) {
	c := IsoEDPCurve(0.5, 1.0, 6)
	if len(c) != 6 {
		t.Fatalf("curve has %d points, want 6", len(c))
	}
	if c[0][0] != 0.5 || c[5][0] != 1.0 {
		t.Fatalf("curve endpoints wrong: %v %v", c[0], c[5])
	}
	for _, p := range c {
		if !almost(p[0]*p[1], 1, 1e-12) {
			t.Fatalf("curve point %v off the iso-EDP line", p)
		}
	}
}

func TestTraceAtAndEnergy(t *testing.T) {
	var tr Trace
	tr.Set(0, 10)
	tr.Set(5, 20)
	tr.Set(10, 0)

	if got := tr.At(2); got != 10 {
		t.Fatalf("At(2) = %v", got)
	}
	if got := tr.At(5); got != 20 {
		t.Fatalf("At(5) = %v", got)
	}
	if got := tr.At(12); got != 0 {
		t.Fatalf("At(12) = %v", got)
	}
	// 5s at 10W + 5s at 20W = 150 J.
	if got := tr.Energy(0, 10); got != 150 {
		t.Fatalf("Energy(0,10) = %v, want 150", got)
	}
	// Partial window: [3, 7) = 2s*10 + 2s*20 = 60 J.
	if got := tr.Energy(3, 7); got != 60 {
		t.Fatalf("Energy(3,7) = %v, want 60", got)
	}
}

func TestTraceBeforeFirstStep(t *testing.T) {
	var tr Trace
	tr.Set(5, 40)
	if got := tr.At(1); got != 0 {
		t.Fatalf("At before first step = %v, want 0", got)
	}
	if got := tr.Energy(0, 10); got != 200 {
		t.Fatalf("Energy = %v, want 200 (only 5s at 40W)", got)
	}
}

func TestTraceSameInstantSupersedes(t *testing.T) {
	var tr Trace
	tr.Set(1, 10)
	tr.Set(1, 30)
	if got := tr.At(1); got != 30 {
		t.Fatalf("At(1) = %v, want 30 after supersede", got)
	}
	if tr.Steps() != 1 {
		t.Fatalf("Steps() = %d, want 1", tr.Steps())
	}
}

func TestTraceDedupsEqualPower(t *testing.T) {
	var tr Trace
	tr.Set(0, 10)
	tr.Set(1, 10)
	tr.Set(2, 10)
	if tr.Steps() != 1 {
		t.Fatalf("Steps() = %d, want 1 (equal powers deduped)", tr.Steps())
	}
}

func TestTraceOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Set did not panic")
		}
	}()
	var tr Trace
	tr.Set(5, 1)
	tr.Set(4, 1)
}

func TestTraceMeanPower(t *testing.T) {
	var tr Trace
	tr.Set(0, 10)
	tr.Set(10, 30)
	if got := tr.MeanPower(0, 20); got != 20 {
		t.Fatalf("MeanPower = %v, want 20", got)
	}
}

func TestTraceSample(t *testing.T) {
	var tr Trace
	tr.Set(0, 5)
	tr.Set(2.5, 15)
	s := tr.Sample(0, 5, sim.Second)
	want := []Watts{5, 5, 5, 15, 15}
	if len(s) != len(want) {
		t.Fatalf("got %d samples, want %d", len(s), len(want))
	}
	for i := range s {
		if s[i] != want[i] {
			t.Fatalf("sample %d = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestTraceReset(t *testing.T) {
	var tr Trace
	tr.Set(0, 5)
	tr.Reset()
	if tr.Steps() != 0 || tr.Last() != 0 {
		t.Fatal("Reset did not clear the trace")
	}
}

// Property: for any piecewise trace, Energy is additive over adjacent
// windows.
func TestTraceEnergyAdditive(t *testing.T) {
	f := func(raw []uint8) bool {
		var tr Trace
		at := sim.Time(0)
		for _, b := range raw {
			at = at.Add(sim.Duration(b%10) * sim.Millisecond)
			tr.Set(at, Watts(b%50))
		}
		end := at.Add(sim.Second)
		mid := sim.Time(float64(end) / 2)
		whole := float64(tr.Energy(0, end))
		split := float64(tr.Energy(0, mid)) + float64(tr.Energy(mid, end))
		return almost(whole, split, 1e-9*math.Max(1, whole))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Integrate with identity transform equals the sum of per-trace
// energies.
func TestIntegrateMatchesSumOfEnergies(t *testing.T) {
	f := func(raw []uint8, raw2 []uint8) bool {
		mk := func(bytes []uint8) *Trace {
			var tr Trace
			at := sim.Time(0)
			for _, b := range bytes {
				at = at.Add(sim.Duration(b%7+1) * sim.Millisecond)
				tr.Set(at, Watts(b%30))
			}
			return &tr
		}
		a, b := mk(raw), mk(raw2)
		end := sim.Time(2)
		got := float64(Integrate(0, end, nil, a, b))
		want := float64(a.Energy(0, end)) + float64(b.Energy(0, end))
		return almost(got, want, 1e-9*math.Max(1, want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIntegrateTransform(t *testing.T) {
	var tr Trace
	tr.Set(0, 10)
	// Transform doubling the power should double the energy.
	got := Integrate(0, 5, func(w Watts) Watts { return 2 * w }, &tr)
	if got != 100 {
		t.Fatalf("Integrate with 2x transform = %v, want 100", got)
	}
}

func TestTotalAt(t *testing.T) {
	var a, b Trace
	a.Set(0, 3)
	b.Set(0, 4)
	if got := TotalAt(1, &a, &b); got != 7 {
		t.Fatalf("TotalAt = %v, want 7", got)
	}
}
