package energy

import (
	"fmt"
	"sort"

	"ecodb/internal/sim"
)

// Trace records the power drawn by one component as a piecewise-constant
// function of virtual time. Components append steps as their power state
// changes; meters integrate or sample the trace afterwards.
//
// The zero value is an empty trace drawing 0 W.
type Trace struct {
	steps []step
}

type step struct {
	at sim.Time
	w  Watts
}

// Set records that the component draws w watts from instant t onward.
// Instants must be appended in non-decreasing order; Set panics otherwise,
// because out-of-order power events indicate a simulation bug.
func (tr *Trace) Set(t sim.Time, w Watts) {
	if n := len(tr.steps); n > 0 {
		last := tr.steps[n-1]
		if t < last.at {
			panic(fmt.Sprintf("energy: trace step at %v before previous step %v", t, last.at))
		}
		if t == last.at {
			// Same-instant update supersedes the previous step.
			tr.steps[n-1].w = w
			return
		}
		if last.w == w {
			return // no change; keep the trace compact
		}
	}
	tr.steps = append(tr.steps, step{at: t, w: w})
}

// At returns the power drawn at instant t. Before the first step the trace
// draws 0 W.
func (tr *Trace) At(t sim.Time) Watts {
	i := sort.Search(len(tr.steps), func(i int) bool { return tr.steps[i].at > t })
	if i == 0 {
		return 0
	}
	return tr.steps[i-1].w
}

// Energy integrates the trace between t0 and t1, exactly.
func (tr *Trace) Energy(t0, t1 sim.Time) Joules {
	if t1 <= t0 || len(tr.steps) == 0 {
		return 0
	}
	var e Joules
	// Find first step at or after t0.
	i := sort.Search(len(tr.steps), func(i int) bool { return tr.steps[i].at > t0 })
	cur := t0
	var w Watts
	if i > 0 {
		w = tr.steps[i-1].w
	}
	for ; i < len(tr.steps) && tr.steps[i].at < t1; i++ {
		e += w.For(tr.steps[i].at.Sub(cur).Seconds())
		cur = tr.steps[i].at
		w = tr.steps[i].w
	}
	e += w.For(t1.Sub(cur).Seconds())
	return e
}

// MeanPower returns the exact average power between t0 and t1.
func (tr *Trace) MeanPower(t0, t1 sim.Time) Watts {
	d := t1.Sub(t0).Seconds()
	if d <= 0 {
		return 0
	}
	return Watts(float64(tr.Energy(t0, t1)) / d)
}

// Sample returns instantaneous power readings every interval seconds in
// [t0, t1), mimicking a sensor GUI that refreshes periodically (the ASUS
// 6-Engine display refreshes about once per second). The reading at each
// sample instant is the instantaneous power, not an average — exactly the
// quantization the paper's methodology suffers from.
func (tr *Trace) Sample(t0, t1 sim.Time, interval sim.Duration) []Watts {
	if interval <= 0 {
		panic("energy: non-positive sample interval")
	}
	var out []Watts
	for t := t0; t < t1; t = t.Add(interval) {
		out = append(out, tr.At(t))
	}
	return out
}

// Steps returns the number of recorded power steps (for tests).
func (tr *Trace) Steps() int { return len(tr.steps) }

// Last returns the power of the most recent step, or 0 for an empty trace.
func (tr *Trace) Last() Watts {
	if len(tr.steps) == 0 {
		return 0
	}
	return tr.steps[len(tr.steps)-1].w
}

// Reset discards all recorded steps.
func (tr *Trace) Reset() { tr.steps = tr.steps[:0] }
