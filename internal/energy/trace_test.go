package energy

import (
	"strings"
	"testing"

	"ecodb/internal/sim"
)

// A chain of same-instant updates must collapse to one step holding the
// last value — each supersede replaces the previous, never appends.
func TestTraceSameInstantSupersedeChain(t *testing.T) {
	var tr Trace
	tr.Set(0, 5)
	tr.Set(3, 10)
	tr.Set(3, 20)
	tr.Set(3, 30)
	tr.Set(3, 40)
	if tr.Steps() != 2 {
		t.Fatalf("Steps() = %d, want 2 (chain collapsed)", tr.Steps())
	}
	if got := tr.At(3); got != 40 {
		t.Fatalf("At(3) = %v, want 40 (last write wins)", got)
	}
	// Energy must integrate the final value only: 3s*5W + 2s*40W.
	if got := tr.Energy(0, 5); got != 95 {
		t.Fatalf("Energy(0,5) = %v, want 95", got)
	}
}

// Superseding a step back to the power of the step before it leaves two
// steps with equal power — legal, just not compact. Energy must still be
// exact across the redundant boundary.
func TestTraceSupersedeToEqualPower(t *testing.T) {
	var tr Trace
	tr.Set(0, 10)
	tr.Set(4, 25)
	tr.Set(4, 10) // back to the preceding power, via the supersede path
	if got := tr.At(4); got != 10 {
		t.Fatalf("At(4) = %v, want 10", got)
	}
	if got := tr.Energy(0, 8); got != 80 {
		t.Fatalf("Energy(0,8) = %v, want 80 (8s at a constant 10W)", got)
	}
}

// At an instant exactly on a step boundary the new power already applies:
// steps are half-open intervals [at, next).
func TestTraceAtExactBoundary(t *testing.T) {
	var tr Trace
	tr.Set(0, 7)
	tr.Set(2, 11)
	tr.Set(6, 13)
	for _, tc := range []struct {
		at   sim.Time
		want Watts
	}{
		{0, 7}, {2, 11}, {6, 13},
	} {
		if got := tr.At(tc.at); got != tc.want {
			t.Fatalf("At(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

// Energy windows whose endpoints land exactly on step boundaries must
// charge each interval once — no double counting at the seams.
func TestTraceEnergyBoundaryWindows(t *testing.T) {
	var tr Trace
	tr.Set(0, 10)
	tr.Set(2, 20)
	tr.Set(5, 30)
	if got := tr.Energy(2, 5); got != 60 {
		t.Fatalf("Energy(2,5) = %v, want 60 (3s at 20W)", got)
	}
	whole := tr.Energy(0, 8)
	split := tr.Energy(0, 2) + tr.Energy(2, 5) + tr.Energy(5, 8)
	if whole != split {
		t.Fatalf("Energy additivity at boundaries: whole=%v split=%v", whole, split)
	}
}

// Set must panic on a time regression, and the message must name both
// instants — out-of-order power events mean the simulation itself is
// broken, so the panic has to be debuggable.
func TestTraceRegressionPanicMessage(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("regressing Set did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "before previous step") {
			t.Fatalf("panic %v does not describe the regression", r)
		}
	}()
	var tr Trace
	tr.Set(10, 1)
	tr.Set(9.999, 2)
}

// Dropping an equal-power Set must not lose the instant for later,
// different-power writes: a new value at the deduped instant opens a fresh
// step there rather than rewriting history back to the surviving step.
func TestTraceSetAfterDedupOpensNewStep(t *testing.T) {
	var tr Trace
	tr.Set(0, 10)
	tr.Set(5, 10) // deduped: no new step, trace still one step at t=0
	tr.Set(5, 99) // different power at the deduped instant: a real step
	if tr.Steps() != 2 {
		t.Fatalf("Steps() = %d, want 2", tr.Steps())
	}
	if got := tr.At(1); got != 10 {
		t.Fatalf("At(1) = %v, want 10 (history before the new step unchanged)", got)
	}
	if got := tr.At(5); got != 99 {
		t.Fatalf("At(5) = %v, want 99", got)
	}
	if got := tr.Energy(0, 10); got != 545 {
		t.Fatalf("Energy(0,10) = %v, want 545 (5s*10W + 5s*99W)", got)
	}
}
