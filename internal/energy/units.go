// Package energy defines the units and arithmetic used throughout ecoDB:
// watts, joules, the energy-delay product (EDP), and piecewise-constant
// power traces that meters sample.
//
// The paper (Lang & Patel, CIDR 2009) uses CPU joules as its primary energy
// metric and EDP = joules × seconds as its primary combined metric; the
// iso-EDP curve in its Figure 2 separates "interesting" operating points
// (below the curve) from uninteresting ones.
package energy

import "fmt"

// Watts is instantaneous power.
type Watts float64

func (w Watts) String() string { return fmt.Sprintf("%.2fW", float64(w)) }

// Joules is an amount of energy.
type Joules float64

func (j Joules) String() string { return fmt.Sprintf("%.1fJ", float64(j)) }

// Amps is electrical current on a supply line.
type Amps float64

// Volts is electrical potential.
type Volts float64

// Over returns the average power of j joules spent over d seconds.
func (j Joules) Over(seconds float64) Watts {
	if seconds <= 0 {
		return 0
	}
	return Watts(float64(j) / seconds)
}

// For returns the energy of drawing w watts for d seconds.
func (w Watts) For(seconds float64) Joules {
	return Joules(float64(w) * seconds)
}

// EDP is the energy-delay product, in joule-seconds. Lower is better: a
// setting with lower EDP gains a larger percentage of energy saving than it
// loses in response time.
type EDP float64

// EDPOf computes the energy-delay product of a run.
func EDPOf(e Joules, seconds float64) EDP {
	return EDP(float64(e) * seconds)
}

// RelChange returns the relative change (new-old)/old, e.g. -0.49 for a 49%
// reduction. It returns 0 when old is 0.
func RelChange[T ~float64](old, new T) float64 {
	if old == 0 {
		return 0
	}
	return (float64(new) - float64(old)) / float64(old)
}

// Ratio returns new/old, the form the paper plots on both axes of its
// Figures 2 and 3 ("ratio compared to the stock setting"). It returns 0
// when old is 0.
func Ratio[T ~float64](old, new T) float64 {
	if old == 0 {
		return 0
	}
	return float64(new) / float64(old)
}

// IsoEDP returns the time ratio that keeps EDP constant for a given energy
// ratio, i.e. the solid curve in the paper's Figure 2: points (e, t) with
// e·t = 1. Energy ratios ≤ 0 return +Inf-free 0 for plotting convenience.
func IsoEDP(energyRatio float64) float64 {
	if energyRatio <= 0 {
		return 0
	}
	return 1 / energyRatio
}

// IsoEDPCurve samples the constant-EDP curve between the two energy ratios
// inclusive, for rendering alongside measured operating points.
func IsoEDPCurve(fromEnergyRatio, toEnergyRatio float64, points int) [][2]float64 {
	if points < 2 {
		points = 2
	}
	curve := make([][2]float64, points)
	step := (toEnergyRatio - fromEnergyRatio) / float64(points-1)
	for i := range curve {
		e := fromEnergyRatio + float64(i)*step
		curve[i] = [2]float64{e, IsoEDP(e)}
	}
	return curve
}
