package engine

import (
	"fmt"

	"ecodb/internal/catalog"
	"ecodb/internal/exec"
	"ecodb/internal/expr"
	"ecodb/internal/hw/cpu"
	"ecodb/internal/hw/disk"
	"ecodb/internal/obsv"
	"ecodb/internal/plan"
	"ecodb/internal/sim"
	"ecodb/internal/storage"
)

// Result is a fully materialized query result.
type Result struct {
	Schema *catalog.Schema
	Rows   []expr.Row
}

// ExecStats describes one statement execution.
type ExecStats struct {
	Duration sim.Duration
	RowsOut  int64
	// BytesOut is the estimated result wire size.
	BytesOut int64
	// Pool traffic for disk-backed engines (zero for memory engines).
	PoolHits, PoolMisses int64
}

// Engine is one database engine instance bound to a simulated machine.
type Engine struct {
	prof Profile
	mach Machine
	cat  *catalog.Catalog
	pool *storage.BufferPool
	rng  *sim.RNG
	// profiling enables per-query execution profiles (see Rows.Profile).
	// Simulated results, durations, and joules are byte-identical either
	// way: the profiler only observes the charges the engine already makes.
	profiling bool
	// queuedAt/queued carry one statement's admission-queue wait from
	// QueryQueued (or SharedSession.Admit) into startQueryPar, which
	// consumes them. Like the rest of the engine this follows the
	// cooperative single-threaded execution model — the fields are only
	// ever set and cleared around one statement start.
	queuedAt sim.Time
	queued   bool
}

// Machine is the slice of the simulated system an engine needs: a CPU to
// charge work to and a blocking disk-read primitive.
type Machine interface {
	CPUModel() *cpu.CPU
	BlockingRead(n int64, pattern disk.Pattern) sim.Duration
}

// New returns an engine with an empty catalog on the given machine.
func New(prof Profile, mach Machine) *Engine {
	e := &Engine{
		prof: prof,
		mach: mach,
		cat:  catalog.NewCatalog(),
		rng:  sim.NewRNG(prof.Seed),
	}
	if !prof.MemoryEngine {
		if prof.PoolBytes <= 0 {
			panic("engine: disk-backed profile needs a buffer pool size")
		}
		e.pool = storage.NewBufferPool(prof.PoolBytes, &reader{
			m:      mach,
			amp:    prof.Amplification(),
			extent: prof.ExtentBytes,
		})
	}
	return e
}

// reader adapts the machine to the buffer pool's DiskReader: it amplifies
// read volume per the profile and models tablespace fragmentation by
// charging one seek per extent of sequentially streamed bytes.
type reader struct {
	m      Machine
	amp    float64
	extent int64
	carry  int64 // sequential bytes since the last charged seek
}

func (r *reader) BlockingRead(n int64, sequential bool) {
	n = int64(float64(n) * r.amp)
	if !sequential {
		r.carry = 0
		r.m.BlockingRead(n, disk.Random)
		return
	}
	if r.extent > 0 {
		r.carry += n
		for r.carry >= r.extent {
			r.carry -= r.extent
			// A zero-byte random read is a pure head seek: the extent
			// boundary cost on a fragmented heap file.
			r.m.BlockingRead(0, disk.Random)
		}
	}
	r.m.BlockingRead(n, disk.Sequential)
}

// Profile returns the engine's configuration.
func (e *Engine) Profile() Profile { return e.prof }

// SetProfiling toggles per-query execution profiles. When on, every
// statement's Rows carries a Profile — an operator-span tree with actual
// rows, attributed simulated joules and time, and (for optimizer-routed
// statements) the estimates next to the actuals. Profiling never changes
// what the simulation computes; it only watches it.
func (e *Engine) SetProfiling(on bool) { e.profiling = on }

// Profiling reports whether per-query profiles are being collected.
func (e *Engine) Profiling() bool { return e.profiling }

// Catalog returns the table registry; loaders insert data through it.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Pool returns the buffer pool, or nil for memory engines.
func (e *Engine) Pool() *storage.BufferPool { return e.pool }

// WarmAll marks every table resident, the state after the paper's warm-up
// runs. Memory engines are always warm.
func (e *Engine) WarmAll() {
	if e.pool == nil {
		return
	}
	for _, name := range e.cat.Names() {
		t := e.cat.MustTable(name)
		e.pool.Warm(name, t.Heap)
	}
}

// ColdStart empties the buffer pool, as after the reboot in the paper's
// §3.5 cold experiment. Memory engines cannot be cold.
func (e *Engine) ColdStart() {
	if e.pool != nil {
		e.pool.InvalidateAll()
	}
}

// Rows is a streaming query result: an iterator over batches produced by
// the vectorized executor. Consumers pull batches with Next; each batch is
// valid until the following Next call. Statistics (and the trailing result-
// path cost accounting) are finalized when the stream is exhausted or
// closed — Close drains any unconsumed input first, because the simulated
// engines under study never terminate a statement early.
type Rows struct {
	e   *Engine
	op  exec.Operator
	ctx *exec.Ctx
	par int // simulated cores this statement runs on

	start      sim.Time
	poolBefore storage.PoolStats
	rowsOut    int64
	bytesOut   int64
	stats      ExecStats
	finished   bool

	// obs collects this statement's execution profile when the engine has
	// profiling enabled; profile is the finalized result (see Profile).
	obs     *obsv.Collector
	profile *obsv.Profile
}

// Profile returns the statement's execution profile, draining the stream
// first if the consumer has not. It returns nil when the engine was not
// profiling at statement start.
func (r *Rows) Profile() *obsv.Profile {
	r.Close()
	return r.profile
}

// Query starts executing a plan and returns a streaming result iterator.
// Statement overhead is charged up front; per-batch work is charged as the
// consumer pulls. The old fully-materialized Exec is a thin wrapper over
// this.
func (e *Engine) Query(p plan.Node) *Rows {
	// With an objective enabled, re-derive the plan through the optimizer
	// (join order, build sides, pushdown, parallelism); plans the extractor
	// does not recognize fall back to executing as given.
	if lowered, ch, pi, ok := e.optimize(p, 0); ok {
		return e.startQueryPar(exec.CompileParallel(lowered, e.prof.Workers), ch.Parallelism, pi)
	}
	// Eligible scan→filter→project fragments run morsel-parallel across
	// the profile's worker goroutines; CompileParallel falls back to the
	// serial operators for Workers <= 1. Simulated accounting is
	// worker-count invariant either way.
	return e.startQuery(exec.CompileParallel(p, e.prof.Workers))
}

// QueryQueued is Query for a statement that waited in an admission queue
// since queuedAt (a server-side delay, not new simulated work): when
// profiling is on, the statement's profile gains a leading queue span
// covering [queuedAt, start], so EXPLAIN ANALYZE shows where response time
// went before execution began. The wait is observation only — no cycles,
// no joules — because the machine spent that window running other
// statements, whose profiles own its energy.
func (e *Engine) QueryQueued(p plan.Node, queuedAt sim.Time) *Rows {
	e.queuedAt, e.queued = queuedAt, true
	return e.Query(p)
}

// startQuery charges statement overhead, builds the execution context, and
// opens op as a streaming result — the shared tail of Query and the
// shared-scan admission path (see SharedSession).
func (e *Engine) startQuery(op exec.Operator) *Rows {
	return e.startQueryPar(op, e.prof.Parallelism, nil)
}

// startQueryPar is startQuery at an explicit parallelism degree — the
// optimizer's chosen degree when a statement routes through it. pi is the
// optimizer's estimate record for the profile, nil when the statement did
// not route through the optimizer or profiling is off.
func (e *Engine) startQueryPar(op exec.Operator, par int, pi *obsv.PlanInfo) *Rows {
	if par < 1 {
		par = 1
	}
	obsv.Queries.Inc()
	c := e.mach.CPUModel()
	c.SetParallelism(par)
	// The machine is single-threaded between pulls: parallelism is raised
	// only while executor work runs (here and inside Next), so an
	// abandoned iterator can never leave the shared CPU misconfigured.
	defer c.SetParallelism(1)

	queuedAt, queued := e.queuedAt, e.queued
	e.queuedAt, e.queued = 0, false

	r := &Rows{e: e, par: par, start: c.Clock().Now()}
	if e.pool != nil {
		r.poolBefore = e.pool.Stats()
	}
	if e.profiling {
		r.obs = obsv.NewCollector("statement", r.start)
		if pi != nil {
			r.obs.SetPlan(pi)
		}
		if queued && queuedAt <= r.start {
			// The admission-queue wait renders as the statement's first
			// child span. Its Seconds are set directly — no charge backs
			// them, because queue time is other statements' execution time
			// and their profiles already own that energy.
			qs := r.obs.OpenSpan(obsv.KindQueue, "QueueWait", "", queuedAt)
			qs.Seconds = r.start.Sub(queuedAt).Seconds()
			r.obs.Pop(r.start)
		}
		// The observer is installed only while this statement's work runs
		// (bracketed here and in Next, exactly like parallelism), so
		// co-admitted queries interleaving pulls on one machine each
		// observe only their own clock advances.
		c.SetObserver(r.obs)
		defer c.SetObserver(nil)
	}

	// Statement overhead: parse, optimize, round trip.
	c.Run(e.prof.QueryOverheadCycles, cpu.Compute)

	ctx := &exec.Ctx{CPU: c, Pool: e.pool, Cost: e.prof.Cost, Amplify: e.prof.Amplification(), BatchSize: e.prof.BatchSize, Obs: r.obs}
	if e.prof.BGIOProbPerPage > 0 && !e.prof.MemoryEngine {
		// Amplified page counts mean amplified background traffic.
		prob := e.prof.BGIOProbPerPage * e.prof.Amplification()
		ctx.PageHook = func() {
			if e.rng.Float64() < prob {
				e.mach.BlockingRead(e.prof.BGIOBytes, disk.Random)
			}
		}
	}
	r.ctx = ctx
	r.op = op
	if err := r.op.Open(ctx); err != nil {
		// No operator errors today; finalize so the iterator is inert.
		r.finish()
	}
	return r
}

// Schema describes the result rows.
func (r *Rows) Schema() *catalog.Schema { return r.op.Schema() }

// Next returns the next result batch — columnar, read-only — or nil when
// the stream is exhausted. The batch is owned by the executor and valid
// until the following call; materialize rows that must outlive it with
// Batch.Rows or Batch.AppendRowsTo.
func (r *Rows) Next() (*expr.Batch, error) {
	if r.finished {
		return nil, nil
	}
	c := r.e.mach.CPUModel()
	c.SetParallelism(r.par)
	defer c.SetParallelism(1)
	if r.obs != nil {
		c.SetObserver(r.obs)
		defer c.SetObserver(nil)
	}
	b, err := r.op.Next(r.ctx)
	if err != nil {
		r.finish()
		return nil, err
	}
	if b == nil {
		r.finish()
		return nil, nil
	}
	obsv.Batches.Inc()
	n := b.Len()
	obsv.RowsOut.Add(int64(n))
	r.rowsOut += int64(n)
	for li := 0; li < n; li++ {
		r.bytesOut += b.RowBytes(li)
	}
	return b, nil
}

// Close drains any remaining batches (completing the statement's simulated
// work) and finalizes statistics. It is idempotent.
func (r *Rows) Close() error {
	for !r.finished {
		if _, err := r.Next(); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns the execution statistics; it drains and closes the stream
// first if the consumer has not.
func (r *Rows) Stats() ExecStats {
	r.Close()
	return r.stats
}

// finish charges the result path — server-side materialization/wire cost,
// then the client (hosted on the same machine, as the paper's JDBC client
// was) receives the rows, paying collector pressure that grows with the
// result size — and freezes the statistics.
func (r *Rows) finish() {
	if r.finished {
		return
	}
	r.finished = true
	r.op.Close(r.ctx)

	e, ctx := r.e, r.ctx
	c := e.mach.CPUModel()
	if r.obs != nil {
		// The result path gets its own span so its charges do not land on
		// the statement root undifferentiated.
		r.obs.OpenSpan(obsv.KindResult, "Result", "", c.Clock().Now())
	}
	n := float64(r.rowsOut)
	ctx.Charge(cpu.Stream, e.prof.Cost.ResultRowCycles*n)
	ctx.Charge(cpu.Stream, e.prof.Cost.ResultKBCycles*float64(r.bytesOut)/1024)
	gc := e.prof.Cost.ClientRowFactor(n * e.prof.Amplification())
	ctx.Charge(cpu.MemStall, e.prof.Cost.ClientRowCycles*n*gc)
	ctx.Flush()

	end := c.Clock().Now()
	if r.obs != nil {
		r.obs.Pop(end)
		r.obs.Root().Rows = r.rowsOut
		r.profile = r.obs.Finish(end)
	}
	c.SetParallelism(1)
	r.stats = ExecStats{
		Duration: end.Sub(r.start),
		RowsOut:  r.rowsOut,
		BytesOut: r.bytesOut,
	}
	obsv.QuerySeconds.Observe(r.stats.Duration.Seconds())
	obsv.QueryJoules(e.prof.Objective.String()).Add(float64(c.Trace().Energy(r.start, end)))
	if e.pool != nil {
		after := e.pool.Stats()
		r.stats.PoolHits = after.Hits - r.poolBefore.Hits
		r.stats.PoolMisses = after.Misses - r.poolBefore.Misses
	}
}

// Exec runs a plan to completion, charging all work and I/O to the
// machine, and returns the materialized result with execution statistics.
// It is a thin wrapper over the streaming Query iterator; this is the
// client edge where the executor's columnar batches are re-rowified.
func (e *Engine) Exec(p plan.Node) (*Result, ExecStats) {
	rows := e.Query(p)
	res := &Result{Schema: rows.Schema()}
	for {
		b, err := rows.Next()
		if err != nil {
			panic(fmt.Sprintf("engine: executor error: %v", err))
		}
		if b == nil {
			break
		}
		res.Rows = b.AppendRowsTo(res.Rows)
	}
	return res, rows.Stats()
}

// MustTable is a convenience lookup used by workload builders.
func (e *Engine) MustTable(name string) *catalog.Table { return e.cat.MustTable(name) }

func (e *Engine) String() string {
	return fmt.Sprintf("%s [%d tables, %.1f MB]", e.prof.Name, len(e.cat.Names()),
		float64(e.cat.TotalBytes())/(1<<20))
}
