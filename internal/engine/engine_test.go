package engine

import (
	"testing"

	"ecodb/internal/expr"
	"ecodb/internal/hw/system"
	"ecodb/internal/plan"
	"ecodb/internal/tpch"
)

func newEngine(t testing.TB, prof Profile, sf float64) (*Engine, *system.Machine) {
	t.Helper()
	m := system.NewSUT()
	e := New(prof, m)
	tpch.NewGenerator(sf, 42).Load(e.Catalog(),
		tpch.Region, tpch.Nation, tpch.Supplier, tpch.Customer, tpch.Orders, tpch.Lineitem)
	return e, m
}

func TestExecQ5ReturnsNationsOfRegion(t *testing.T) {
	e, _ := newEngine(t, ProfileMySQLMemory(), 0.01)
	res, st := e.Exec(tpch.Q5(e.Catalog(), "ASIA", 1994))
	if len(res.Rows) == 0 || len(res.Rows) > 5 {
		t.Fatalf("Q5 returned %d rows, want 1..5 (nations in ASIA)", len(res.Rows))
	}
	asia := map[string]bool{"INDIA": true, "INDONESIA": true, "JAPAN": true, "CHINA": true, "VIETNAM": true}
	for _, row := range res.Rows {
		if !asia[row[0].S] {
			t.Fatalf("non-ASIA nation %q in result", row[0].S)
		}
	}
	// Sorted by revenue descending.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][1].F > res.Rows[i-1][1].F {
			t.Fatal("result not sorted by revenue desc")
		}
	}
	if st.Duration <= 0 || st.RowsOut != int64(len(res.Rows)) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQ5ResultsIdenticalAcrossProfiles(t *testing.T) {
	// The engines differ in cost and timing, never in answers.
	eMem, _ := newEngine(t, ProfileMySQLMemory(), 0.01)
	eCom, _ := newEngine(t, ProfileCommercial(), 0.01)
	eCom.WarmAll()

	rMem, _ := eMem.Exec(tpch.Q5(eMem.Catalog(), "AMERICA", 1995))
	rCom, _ := eCom.Exec(tpch.Q5(eCom.Catalog(), "AMERICA", 1995))
	if len(rMem.Rows) != len(rCom.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(rMem.Rows), len(rCom.Rows))
	}
	for i := range rMem.Rows {
		if rMem.Rows[i][0].S != rCom.Rows[i][0].S {
			t.Fatalf("row %d nations differ", i)
		}
		if diff := rMem.Rows[i][1].F - rCom.Rows[i][1].F; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("row %d revenues differ", i)
		}
	}
}

func TestSelectionSelectivity(t *testing.T) {
	e, _ := newEngine(t, ProfileMySQLMemory(), 0.02)
	total := e.Catalog().MustTable(tpch.Lineitem).Heap.NumRows()
	res, _ := e.Exec(tpch.QuantityQuery(e.Catalog(), 25))
	frac := float64(len(res.Rows)) / float64(total)
	if frac < 0.012 || frac > 0.028 {
		t.Fatalf("selection fraction = %.4f, want ≈0.02", frac)
	}
}

func TestMemoryEngineNeverTouchesDisk(t *testing.T) {
	e, m := newEngine(t, ProfileMySQLMemory(), 0.005)
	before := m.Disk.Stats()
	e.Exec(tpch.Q5(e.Catalog(), "ASIA", 1994))
	after := m.Disk.Stats()
	if after.Reads != before.Reads {
		t.Fatal("memory engine performed disk reads")
	}
	if e.Pool() != nil {
		t.Fatal("memory engine should have no buffer pool")
	}
}

func TestColdRunSlowerThanWarm(t *testing.T) {
	prof := ProfileCommercial()
	e, m := newEngine(t, prof, 0.01)
	q := tpch.Q5(e.Catalog(), "ASIA", 1994)

	e.ColdStart()
	_, cold := e.Exec(q)
	e.WarmAll()
	_, warm := e.Exec(q)

	if cold.Duration <= warm.Duration {
		t.Fatalf("cold %v should exceed warm %v", cold.Duration, warm.Duration)
	}
	if cold.PoolMisses == 0 {
		t.Fatal("cold run should miss in the pool")
	}
	if warm.PoolMisses != 0 {
		t.Fatalf("warm run missed %d pages", warm.PoolMisses)
	}
	if m.Disk.Stats().Reads == 0 {
		t.Fatal("cold run should read the disk")
	}
}

func TestAmplificationScalesDuration(t *testing.T) {
	base := ProfileMySQLMemory()
	amp := ProfileMySQLMemory()
	amp.WorkAmplification = 10

	e1, _ := newEngine(t, base, 0.005)
	e2, _ := newEngine(t, amp, 0.005)
	_, s1 := e1.Exec(tpch.QuantityQuery(e1.Catalog(), 1))
	_, s2 := e2.Exec(tpch.QuantityQuery(e2.Catalog(), 1))

	ratio := s2.Duration.Seconds() / s1.Duration.Seconds()
	// Statement overhead is not amplified, so the ratio is slightly
	// below 10.
	if ratio < 8.5 || ratio > 10.1 {
		t.Fatalf("amplification ×10 scaled duration by %.2f", ratio)
	}
}

func TestParallelismRestoredAfterExec(t *testing.T) {
	e, m := newEngine(t, ProfileCommercial(), 0.005)
	e.WarmAll()
	e.Exec(tpch.QuantityQuery(e.Catalog(), 1))
	// After Exec the machine must be back at parallelism 1: a 1e9-cycle
	// compute run takes 1e9/F seconds on one core.
	d := m.CPU.Run(1e9, 0)
	want := 1e9 / (3.1667e9)
	if diff := d.Seconds() - want; diff > 1e-3 || diff < -1e-3 {
		t.Fatalf("parallelism not restored: run took %v", d)
	}
}

func TestBackgroundIOHappensWhenWarm(t *testing.T) {
	prof := ProfileCommercial()
	prof.BGIOProbPerPage = 0.2 // make it frequent for the test
	e, m := newEngine(t, prof, 0.01)
	e.WarmAll()
	before := m.Disk.Stats().Reads
	e.Exec(tpch.Q5(e.Catalog(), "ASIA", 1994))
	if m.Disk.Stats().Reads == before {
		t.Fatal("warm run produced no background disk activity")
	}
}

func TestResultClientGCFactor(t *testing.T) {
	cost := ProfileMySQLMemory().Cost
	small := cost.ClientRowFactor(1000)
	big := cost.ClientRowFactor(2.1e6)
	bigger := cost.ClientRowFactor(10e6)
	if !(small < big) {
		t.Fatal("GC factor should grow with result size")
	}
	if big != bigger {
		t.Fatal("GC factor should saturate")
	}
}

func TestDiskBackedProfileRequiresPool(t *testing.T) {
	prof := ProfileCommercial()
	prof.PoolBytes = 0
	defer func() {
		if recover() == nil {
			t.Fatal("pool-less disk profile did not panic")
		}
	}()
	New(prof, system.NewSUT())
}

func TestFragmentedReaderChargesSeeks(t *testing.T) {
	m := system.NewSUT()
	r := &reader{m: m, amp: 1, extent: 64 << 10}
	before := m.Disk.Stats().Seeks
	// Stream 256 KB sequentially: expect 4 extent-boundary seeks.
	for i := 0; i < 32; i++ {
		r.BlockingRead(8<<10, i > 0)
	}
	seeks := m.Disk.Stats().Seeks - before
	// The first read is random (its own seek) plus ≈3-4 extent seeks.
	if seeks < 4 || seeks > 6 {
		t.Fatalf("seeks = %d, want ≈5", seeks)
	}
}

func TestEngineString(t *testing.T) {
	e, _ := newEngine(t, ProfileMySQLMemory(), 0.001)
	if e.String() == "" {
		t.Fatal("empty String()")
	}
}

// Guard against accidental schema drift in the public profile presets.
func TestProfilePresets(t *testing.T) {
	c := ProfileCommercial()
	if c.MemoryEngine || c.Parallelism != 2 || c.PoolBytes == 0 {
		t.Fatalf("commercial profile misconfigured: %+v", c)
	}
	mysql := ProfileMySQLMemory()
	if !mysql.MemoryEngine || mysql.Parallelism != 1 {
		t.Fatalf("mysql profile misconfigured: %+v", mysql)
	}
	if mysql.Amplification() != 1 {
		t.Fatal("default amplification should be 1")
	}
}

// plan import is exercised via tpch plans; keep a direct use for clarity.
var _ plan.Node = (*plan.Scan)(nil)
var _ = expr.Int

// --- streaming Query API ---

func TestQueryStreamMatchesExec(t *testing.T) {
	e1, _ := newEngine(t, ProfileMySQLMemory(), 0.01)
	e2, _ := newEngine(t, ProfileMySQLMemory(), 0.01)

	res, st := e1.Exec(tpch.Q5(e1.Catalog(), "ASIA", 1994))

	rows := e2.Query(tpch.Q5(e2.Catalog(), "ASIA", 1994))
	var streamed []expr.Row
	for {
		b, err := rows.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		streamed = b.AppendRowsTo(streamed)
	}
	stStream := rows.Stats()

	if len(streamed) != len(res.Rows) {
		t.Fatalf("streamed %d rows, materialized %d", len(streamed), len(res.Rows))
	}
	for i := range streamed {
		if streamed[i][0].S != res.Rows[i][0].S || streamed[i][1].F != res.Rows[i][1].F {
			t.Fatalf("row %d differs: %v vs %v", i, streamed[i], res.Rows[i])
		}
	}
	// Identical engines on identical machines: streaming must charge the
	// exact same simulated duration and produce the same stats.
	if stStream.Duration != st.Duration || stStream.RowsOut != st.RowsOut || stStream.BytesOut != st.BytesOut {
		t.Fatalf("stats differ: stream %+v vs exec %+v", stStream, st)
	}
}

func TestQueryStatsDrainsUnconsumedStream(t *testing.T) {
	e1, _ := newEngine(t, ProfileMySQLMemory(), 0.01)
	e2, _ := newEngine(t, ProfileMySQLMemory(), 0.01)

	_, st := e1.Exec(tpch.QuantityQuery(e1.Catalog(), 25))

	// Abandoning the stream must still complete the statement's simulated
	// work: the engines under study never terminate a query early.
	rows := e2.Query(tpch.QuantityQuery(e2.Catalog(), 25))
	stStream := rows.Stats()
	if stStream.Duration != st.Duration || stStream.RowsOut != st.RowsOut {
		t.Fatalf("abandoned stream stats %+v differ from exec %+v", stStream, st)
	}
}

func TestQueryCloseIdempotent(t *testing.T) {
	e, _ := newEngine(t, ProfileMySQLMemory(), 0.005)
	rows := e.Query(tpch.QuantityQuery(e.Catalog(), 1))
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if b, err := rows.Next(); b != nil || err != nil {
		t.Fatal("Next after Close should report end of stream")
	}
	if rows.Stats().RowsOut == 0 {
		t.Fatal("closed stream should still account all rows")
	}
}

func TestQueryParallelismRestored(t *testing.T) {
	e, m := newEngine(t, ProfileCommercial(), 0.005)
	e.WarmAll()
	e.Query(tpch.QuantityQuery(e.Catalog(), 1)).Close()
	d := m.CPU.Run(1e9, 0)
	want := 1e9 / (3.1667e9)
	if diff := d.Seconds() - want; diff > 1e-3 || diff < -1e-3 {
		t.Fatalf("parallelism not restored after streaming query: run took %v", d)
	}
}

func TestSimulationInvariantAcrossWorkerCounts(t *testing.T) {
	// The morsel-parallel path must leave the simulation bit-identical:
	// same rows, same duration, same pool traffic, same charged cycles —
	// for any worker count, on the disk-backed profile with background
	// I/O live.
	type run struct {
		rows     []expr.Row
		stats    ExecStats
		cycles   float64
		byKind   [3]float64
		poolHits int64
	}
	exec := func(workers int) run {
		prof := ProfileCommercial()
		prof.Workers = workers
		e, m := newEngine(t, prof, 0.01)
		e.WarmAll()
		res, st := e.Exec(tpch.Q5(e.Catalog(), "ASIA", 1994))
		cs := m.CPUModel().Stats()
		return run{rows: res.Rows, stats: st, cycles: cs.Cycles,
			byKind: cs.CyclesByKind, poolHits: st.PoolHits}
	}

	base := exec(0) // serial
	for _, w := range []int{1, 2, 4, 7} {
		got := exec(w)
		if len(got.rows) != len(base.rows) {
			t.Fatalf("workers=%d: %d rows, want %d", w, len(got.rows), len(base.rows))
		}
		for i := range got.rows {
			for c := range got.rows[i] {
				if got.rows[i][c] != base.rows[i][c] {
					t.Fatalf("workers=%d: row %d col %d differs", w, i, c)
				}
			}
		}
		if got.stats != base.stats {
			t.Fatalf("workers=%d: stats differ:\n got %+v\nwant %+v", w, got.stats, base.stats)
		}
		if got.cycles != base.cycles || got.byKind != base.byKind {
			t.Fatalf("workers=%d: charged cycles differ: %v/%v vs %v/%v",
				w, got.cycles, got.byKind, base.cycles, base.byKind)
		}
		if got.poolHits != base.poolHits {
			t.Fatalf("workers=%d: pool hits %d, want %d", w, got.poolHits, base.poolHits)
		}
	}
}

func TestParallelAggSimulationInvariantAcrossWorkerCounts(t *testing.T) {
	// Profile.Workers routes Agg(fragment) plans through the parallel
	// pre-aggregation path; the grouped revenue query must leave rows,
	// stats, and charged cycles bit-identical at every worker count, on
	// the disk-backed profile with background I/O live.
	aggPlan := func(e *Engine) plan.Node {
		li := e.MustTable(tpch.Lineitem)
		price, disc := li.Schema.Col("l_extendedprice"), li.Schema.Col("l_discount")
		revenue := expr.Arith{Op: expr.Mul, L: price,
			R: expr.Arith{Op: expr.Sub, L: expr.Const{V: expr.Float(1)}, R: disc}}
		return plan.NewAgg(
			plan.NewScan(li, expr.Cmp{Op: expr.LT, L: li.Schema.Col("l_quantity"), R: expr.Const{V: expr.Int(40)}}),
			[]int{li.Schema.MustIndex("l_quantity")},
			[]plan.AggSpec{
				{Func: plan.Sum, Arg: revenue, Name: "revenue"},
				{Func: plan.Avg, Arg: revenue, Name: "avg_rev"},
				{Func: plan.Count, Name: "n"},
			})
	}
	type run struct {
		rows   []expr.Row
		stats  ExecStats
		cycles float64
	}
	exec := func(workers int) run {
		prof := ProfileCommercial()
		prof.Workers = workers
		e, m := newEngine(t, prof, 0.01)
		e.WarmAll()
		res, st := e.Exec(aggPlan(e))
		return run{rows: res.Rows, stats: st, cycles: m.CPUModel().Stats().Cycles}
	}

	base := exec(1)
	if len(base.rows) == 0 {
		t.Fatal("grouped aggregation returned no rows")
	}
	for _, w := range []int{2, 4} {
		got := exec(w)
		if len(got.rows) != len(base.rows) {
			t.Fatalf("workers=%d: %d rows, want %d", w, len(got.rows), len(base.rows))
		}
		for i := range got.rows {
			for c := range got.rows[i] {
				if got.rows[i][c] != base.rows[i][c] {
					t.Fatalf("workers=%d: row %d col %d: %v != %v",
						w, i, c, got.rows[i][c], base.rows[i][c])
				}
			}
		}
		if got.stats != base.stats {
			t.Fatalf("workers=%d: stats differ:\n got %+v\nwant %+v", w, got.stats, base.stats)
		}
		if got.cycles != base.cycles {
			t.Fatalf("workers=%d: charged cycles %v, want %v", w, got.cycles, base.cycles)
		}
	}
}

func TestRowsEarlyCloseDrainsStatement(t *testing.T) {
	// Abandoning a streaming result mid-scan must still charge the whole
	// statement: the engines under study never terminate early. Duration
	// and row accounting must match a fully consumed run on an identical
	// engine.
	full, _ := newEngine(t, ProfileCommercial(), 0.01)
	full.WarmAll()
	q := func(e *Engine) plan.Node {
		li := e.MustTable(tpch.Lineitem)
		return plan.NewScan(li, expr.Cmp{
			Op: expr.LT, L: li.Schema.Col("l_quantity"), R: expr.Const{V: expr.Int(10)}})
	}
	_, want := full.Exec(q(full))

	early, _ := newEngine(t, ProfileCommercial(), 0.01)
	early.WarmAll()
	rows := early.Query(q(early))
	b, err := rows.Next()
	if err != nil || b == nil {
		t.Fatalf("first batch: %v, %v", b, err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	got := rows.Stats()
	if got != want {
		t.Fatalf("early-closed stats %+v, want fully-drained %+v", got, want)
	}
	if b2, _ := rows.Next(); b2 != nil {
		t.Fatal("closed stream served another batch")
	}
}
