package engine

import (
	"ecodb/internal/obsv"
	"ecodb/internal/plan"
)

// This file is the engine's observability edge: running a statement for its
// execution profile (the SQL front end's EXPLAIN ANALYZE) and snapshotting
// the process-wide metrics registry.

// AnalyzeQuery runs p to completion with profiling enabled and returns its
// execution profile. The statement really executes — every simulated
// charge, disk read, and clock advance happens exactly as Query would make
// them — because the profile is an observation of the run, not an estimate.
// The engine's profiling setting is restored afterwards.
func (e *Engine) AnalyzeQuery(p plan.Node) (*obsv.Profile, error) {
	prev := e.profiling
	e.profiling = true
	defer func() { e.profiling = prev }()

	rows := e.Query(p)
	if err := rows.Close(); err != nil {
		return nil, err
	}
	return rows.Profile(), nil
}

// MetricsSnapshot returns a point-in-time copy of the process-wide metrics
// registry, with the engine's gauges (buffer-pool residency) refreshed
// first. Counters are monotonic over the process lifetime; callers wanting
// per-interval numbers difference two snapshots.
func (e *Engine) MetricsSnapshot() obsv.MetricsSnapshot {
	if e.pool != nil {
		obsv.Default().Gauge(obsv.MetricPoolResident).Set(float64(e.pool.Used()))
	}
	return obsv.Default().Snapshot()
}
