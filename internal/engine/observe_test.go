package engine

import (
	"fmt"
	"math"
	"testing"

	"ecodb/internal/expr"
	"ecodb/internal/obsv"
	"ecodb/internal/opt"
	"ecodb/internal/tpch"
)

// relClose reports |a-b| within tol relative to the larger magnitude
// (absolute below 1).
func relClose(a, b, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// checkProfileSums asserts the profile's two total-energy invariants:
// re-walking the span tree reproduces Profile.Joules bit-for-bit, and the
// attributed total matches the chronological meter total to float noise.
func checkProfileSums(t *testing.T, label string, p *obsv.Profile) {
	t.Helper()
	if p == nil {
		t.Fatalf("%s: nil profile", label)
	}
	if got := obsv.SumJoules(p.Root); got != p.Joules {
		t.Fatalf("%s: SumJoules(Root) = %v, Profile.Joules = %v (re-walk must be exact)",
			label, got, p.Joules)
	}
	if !relClose(p.Joules, p.MeterJoules, 1e-9) {
		t.Fatalf("%s: attributed %v J vs metered %v J (diff %g)",
			label, p.Joules, p.MeterJoules, p.Joules-p.MeterJoules)
	}
}

// Per-operator attributed joules must sum to the meter's total for the
// query window on the serial path.
func TestProfileJoulesSumToMeterSerial(t *testing.T) {
	e, m := newEngine(t, ProfileMySQLMemory(), 0.01)
	e.SetProfiling(true)
	p := e.Query(tpch.Q5(e.Catalog(), "ASIA", 1994)).Profile()
	checkProfileSums(t, "serial", p)
	meter := float64(m.CPU.Trace().Energy(p.Start, p.End))
	if !relClose(p.Joules, meter, 1e-9) {
		t.Fatalf("serial: profile %v J vs trace window %v J", p.Joules, meter)
	}
	if p.Root.Rows == 0 || p.End.Sub(p.Start) <= 0 {
		t.Fatalf("serial: degenerate profile: rows=%d window=%v",
			p.Root.Rows, p.End.Sub(p.Start))
	}
}

// Same invariant on the morsel-parallel path. Background I/O is disabled
// so the trace window holds only this query's charges.
func TestProfileJoulesSumToMeterParallel(t *testing.T) {
	prof := ProfileCommercial()
	prof.Workers = 4
	prof.BGIOProbPerPage = 0
	e, m := newEngine(t, prof, 0.01)
	e.WarmAll()
	e.SetProfiling(true)
	p := e.Query(tpch.Q5(e.Catalog(), "ASIA", 1994)).Profile()
	checkProfileSums(t, "parallel", p)
	meter := float64(m.CPU.Trace().Energy(p.Start, p.End))
	if !relClose(p.Joules, meter, 1e-9) {
		t.Fatalf("parallel: profile %v J vs trace window %v J", p.Joules, meter)
	}
}

// Same invariant on the shared-scan path, with co-admitted queries: each
// collector observes only its own query's clock advances, so the
// per-query profiles partition the batch window's metered energy.
func TestProfileJoulesSumToMeterShared(t *testing.T) {
	prof := ProfileCommercial()
	prof.BGIOProbPerPage = 0
	e, m := newEngine(t, prof, 0.01)
	e.WarmAll()
	e.SetProfiling(true)

	plans := tpch.Q5Workload(e.Catalog())[:3]
	sess := e.NewSharedSession()
	sess.SetExpectedConcurrency(len(plans))
	t0 := m.Clock.Now()
	streams := make([]*Rows, len(plans))
	for i, p := range plans {
		streams[i] = sess.Query(p)
	}
	done := make([]bool, len(streams))
	remaining := len(streams)
	for remaining > 0 {
		for i, r := range streams {
			if done[i] {
				continue
			}
			b, err := r.Next()
			if err != nil {
				t.Fatal(err)
			}
			if b == nil {
				done[i] = true
				remaining--
			}
		}
	}
	end := m.Clock.Now()

	var sum float64
	sharedSpans := 0
	for i, r := range streams {
		p := r.Profile()
		checkProfileSums(t, fmt.Sprintf("shared query %d", i), p)
		if anyShared(p.Root) {
			sharedSpans++
		}
		sum += p.Joules
	}
	if sharedSpans == 0 {
		t.Fatal("no profile in the co-admitted batch carries a shared-scan span")
	}
	meter := float64(m.CPU.Trace().Energy(t0, end))
	if !relClose(sum, meter, 1e-9) {
		t.Fatalf("shared batch: Σ profiles = %v J, trace window = %v J", sum, meter)
	}
}

func anyShared(s *obsv.Span) bool {
	if s.Shared {
		return true
	}
	for _, c := range s.Children {
		if anyShared(c) {
			return true
		}
	}
	return false
}

// Profiling must not perturb the simulation: identical engines must
// produce bit-identical rows, stats, and metered energy with profiling on
// and off.
func TestProfilingChargesNothing(t *testing.T) {
	type outcome struct {
		rows   []expr.Row
		stats  ExecStats
		energy float64
	}
	run := func(profiling bool) outcome {
		e, m := newEngine(t, ProfileCommercial(), 0.01)
		e.WarmAll()
		e.SetProfiling(profiling)
		t0 := m.Clock.Now()
		res, st := e.Exec(tpch.Q5(e.Catalog(), "ASIA", 1994))
		return outcome{rows: res.Rows, stats: st,
			energy: float64(m.CPU.Trace().Energy(t0, m.Clock.Now()))}
	}
	off, on := run(false), run(true)
	if off.stats != on.stats {
		t.Fatalf("stats drift: off %+v, on %+v", off.stats, on.stats)
	}
	if off.energy != on.energy {
		t.Fatalf("energy drift: off %v J, on %v J", off.energy, on.energy)
	}
	if len(off.rows) != len(on.rows) {
		t.Fatalf("row counts differ: %d vs %d", len(off.rows), len(on.rows))
	}
	for i := range off.rows {
		for c := range off.rows[i] {
			if off.rows[i][c] != on.rows[i][c] {
				t.Fatalf("row %d col %d differs with profiling on", i, c)
			}
		}
	}
}

// With an enabled objective the profile carries the optimizer's estimates
// next to the actuals.
func TestProfileCarriesEstimates(t *testing.T) {
	prof := ProfileCommercial()
	prof.Objective = opt.MinimizeLatency()
	e, _ := newEngine(t, prof, 0.01)
	e.WarmAll()
	e.SetProfiling(true)
	p := e.Query(tpch.Q5(e.Catalog(), "ASIA", 1994)).Profile()
	if p == nil {
		t.Fatal("nil profile")
	}
	if p.Plan == nil {
		t.Fatal("optimized query produced a profile without plan info")
	}
	if p.Plan.Objective != "latency" || len(p.Plan.Ops) == 0 {
		t.Fatalf("plan info incomplete: %+v", p.Plan)
	}
	withEst := 0
	obsv.Walk(p.Root, func(s *obsv.Span, _ int) {
		if s.Est != nil {
			withEst++
			if s.Est.Rows <= 0 || s.Est.Joules < 0 {
				t.Fatalf("span %q carries degenerate estimate %+v", s.Label, *s.Est)
			}
		}
	})
	if withEst == 0 {
		t.Fatal("no span carries an estimate on the optimized path")
	}
	checkProfileSums(t, "optimized", p)
}

// Profile is nil until profiling is enabled, and carries a statement root
// once it is.
func TestProfileAvailability(t *testing.T) {
	e, _ := newEngine(t, ProfileMySQLMemory(), 0.005)
	if p := e.Query(tpch.QuantityQuery(e.Catalog(), 1)).Profile(); p != nil {
		t.Fatal("Profile() without SetProfiling(true) should be nil")
	}
	e.SetProfiling(true)
	p := e.Query(tpch.QuantityQuery(e.Catalog(), 1)).Profile()
	if p == nil {
		t.Fatal("Profile() with profiling on returned nil")
	}
	if p.Root.Kind != obsv.KindStatement {
		t.Fatalf("root kind = %v, want statement", p.Root.Kind)
	}
}
