package engine

import (
	"time"

	"ecodb/internal/obsv"
	"ecodb/internal/opt"
	"ecodb/internal/plan"
)

// This file is the engine's edge of the cost-and-energy optimizer: it
// packages the profile's cost constants and the machine's CPU model into
// an opt.Env, and routes statements through Extract → Optimize → Lower
// when the profile's Objective is enabled.

// OptimizerEnv returns the costing environment and objective this engine
// plans under — the hook the SQL front end's EXPLAIN uses.
func (e *Engine) OptimizerEnv() (opt.Env, opt.Objective) {
	return e.optEnv(0), e.prof.Objective
}

// optEnv builds the optimizer environment. sharedQ > 1 advertises the
// shared-scan access path with that many co-attached queries expected.
func (e *Engine) optEnv(sharedQ int) opt.Env {
	return opt.Env{
		CPU:               e.mach.CPUModel(),
		Cost:              e.prof.Cost,
		Amplify:           e.prof.Amplification(),
		OverheadCycles:    e.prof.QueryOverheadCycles,
		MaxParallelism:    e.prof.Parallelism,
		SharedConcurrency: sharedQ,
	}
}

// optimize re-plans p under the profile's objective. ok is false when the
// objective is disabled or the plan cannot be optimized (unrecognized
// shape, no statistics, no admissible lowering) — callers then execute p
// exactly as handed in, so optimization can never lose a query. With
// profiling enabled the returned PlanInfo carries the winning choice's
// whole-plan and per-operator estimates for the profile's
// estimate-vs-actual join-up; it is nil otherwise.
func (e *Engine) optimize(p plan.Node, sharedQ int) (plan.Node, *opt.Choice, *obsv.PlanInfo, bool) {
	if !e.prof.Objective.Enabled {
		return nil, nil, nil, false
	}
	lg, base, err := opt.Extract(p)
	if err != nil {
		return nil, nil, nil, false
	}
	env := e.optEnv(sharedQ)
	t0 := time.Now()
	ch, err := opt.Optimize(lg, base, env, e.prof.Objective)
	obsv.PlanningSeconds.Observe(time.Since(t0).Seconds())
	if err != nil {
		return nil, nil, nil, false
	}
	lowered, err := lg.Lower(ch.Phys)
	if err != nil {
		return nil, nil, nil, false
	}
	var pi *obsv.PlanInfo
	if e.profiling {
		access := "private-scan"
		if ch.Shared {
			access = "shared-scan"
		}
		pi = &obsv.PlanInfo{
			Objective:   ch.Objective.String(),
			Parallelism: ch.Parallelism,
			Access:      access,
			EstSeconds:  ch.EstSeconds,
			EstJoules:   ch.EstJoules,
			EstRows:     ch.EstRows,
			Ops:         opt.OperatorEstimates(lg, env, ch),
		}
	}
	return lowered, ch, pi, true
}
