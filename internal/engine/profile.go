// Package engine provides the DBMS facade: a catalog plus executor bound to
// one simulated machine, configured by a Profile. Two profiles reproduce
// the workload characters of the paper's systems:
//
//   - ProfileCommercial: a parallel, disk-backed engine whose TPC-H Q5 runs
//     are punctuated by memory stalls and background disk traffic even when
//     the database is warm (paper §3.5 observes "significant activity even
//     though the database was warm").
//   - ProfileMySQLMemory: MySQL 5.1 with the MEMORY storage engine — single
//     threaded, no disk at all, CPU-pegged ("the memory engine makes MySQL
//     CPU-bound", §3.4).
package engine

import (
	"ecodb/internal/exec"
	"ecodb/internal/opt"
)

// Profile configures an engine's execution character.
type Profile struct {
	// Name identifies the engine in reports.
	Name string
	// MemoryEngine keeps every table fully in memory and never touches
	// the disk (MySQL MEMORY tables).
	MemoryEngine bool
	// Parallelism is how many cores a query's operators use.
	Parallelism int
	// Workers is how many OS goroutines execute morsel-eligible plan
	// fragments (scan→filter→project chains) concurrently; 0 or 1 keeps
	// the serial executor. Workers changes real wall-clock behaviour
	// only — simulated results, durations, and joules are worker-count
	// invariant, because the morsel coordinator replays all simulated
	// accounting in deterministic page order and multi-core simulated
	// time is charged via Parallelism as before.
	Workers int
	// PoolBytes is the buffer pool size for disk-backed engines.
	PoolBytes int64
	// Cost holds the per-operation cycle constants.
	Cost exec.CostModel
	// QueryOverheadCycles is charged per statement (parse, optimize,
	// network round trip).
	QueryOverheadCycles float64
	// BGIOProbPerPage is the probability a scanned page triggers one
	// random background disk read even when warm (log writes, temp
	// activity, read-ahead churn of the commercial engine).
	BGIOProbPerPage float64
	// BGIOBytes is the size of each background read.
	BGIOBytes int64
	// ExtentBytes is the heap-file extent size: cold sequential reads pay
	// one seek per extent (fragmented tablespace), which is why the
	// paper's cold run was ≈3× slower overall (§3.5). Zero disables
	// fragmentation.
	ExtentBytes int64
	// BatchSize is the executor's target rows per batch; zero selects
	// expr.DefaultBatchCapacity. It changes real wall-clock behaviour
	// only — simulated time and energy are batch-size invariant.
	BatchSize int
	// WorkAmplification scales all per-row CPU work and all disk read
	// volume (default 1 when zero). Running a scale-factor-s dataset
	// with amplification 1/s emulates the paper's full-scale absolute
	// runtimes and joules while generating only s of the data.
	WorkAmplification float64
	// Seed drives the engine's internal randomness (background I/O).
	Seed uint64
	// Objective, when enabled, routes Query and SharedSession.Query
	// statements through the cost-and-energy optimizer (internal/opt): the
	// plan is re-derived from catalog statistics and lowered to whichever
	// physical shape, parallelism degree and access path the objective
	// scores best. The zero Objective (the default in every stock profile)
	// bypasses the optimizer entirely — hand-lowered plans execute exactly
	// as given, which is what keeps the golden suites stable.
	Objective opt.Objective
}

// Amplification returns the effective work amplification (≥ 1 by default).
func (p Profile) Amplification() float64 {
	if p.WorkAmplification <= 0 {
		return 1
	}
	return p.WorkAmplification
}

// ProfileCommercial models the paper's commercial DBMS. Cost constants are
// calibrated (see internal/experiments) so a 10-query TPC-H Q5 workload at
// scale factor 1.0 lands near the paper's stock operating point: ≈48.5 s
// and ≈1230 CPU joules, with roughly a quarter of busy time in compute and
// most of the rest stalled on memory — the hash-join-heavy execution
// character of a row-store with no indices.
func ProfileCommercial() Profile {
	return Profile{
		Name:         "ClydeDB (commercial profile)",
		MemoryEngine: false,
		Parallelism:  2,
		Workers:      4,
		PoolBytes:    1 << 30,
		Cost: exec.CostModel{
			ScanTupleCycles:       370,
			ScanTupleStallCycles:  180,
			PageStreamCyclesPerKB: 220,

			BuildCycles:      450,
			BuildStallCycles: 470,
			ProbeCycles:      420,
			ProbeStallCycles: 545,
			MatchCycles:      225,

			AggCycles:      240,
			AggStallCycles: 210,

			SortCmpCycles: 36,

			ZoneCheckCycles: 60,

			ResultRowCycles:   420,
			ResultKBCycles:    520,
			ClientRowCycles:   380,
			ExprCycleMultiple: 2.1,
		},
		QueryOverheadCycles: 28e6,
		BGIOProbPerPage:     0.00016,
		BGIOBytes:           16 << 10,
		ExtentBytes:         64 << 10,
		Seed:                0x5eedc0ffee,
	}
}

// ProfileMySQLMemory models MySQL 5.1 with MEMORY tables: single-threaded,
// all data resident, and dominated by compute (interpreted row evaluation),
// which is why the paper measured its voltage and frequency "nearly
// constant" — the processor never leaves the top p-state.
func ProfileMySQLMemory() Profile {
	return Profile{
		Name:         "MySQL 5.1.28 (MEMORY engine)",
		MemoryEngine: true,
		Parallelism:  1,
		Cost: exec.CostModel{
			ScanTupleCycles:       1540,
			ScanTupleStallCycles:  45,
			PageStreamCyclesPerKB: 60,

			BuildCycles:      1500,
			BuildStallCycles: 90,
			ProbeCycles:      1450,
			ProbeStallCycles: 65,
			MatchCycles:      430,

			AggCycles:      930,
			AggStallCycles: 50,

			SortCmpCycles: 30,

			ZoneCheckCycles: 45,

			ResultRowCycles:        520,
			ResultKBCycles:         480,
			ClientRowCycles:        2600,
			ClientGCPerMRow:        8.75,
			ClientGCSaturationRows: 1.2e6,
			ExprCycleMultiple:      2.4,
		},
		QueryOverheadCycles: 9e6,
		Seed:                0x0dbedb,
	}
}
