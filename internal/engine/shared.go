package engine

import (
	"ecodb/internal/catalog"
	"ecodb/internal/exec"
	"ecodb/internal/plan"
	"ecodb/internal/scanshare"
	"ecodb/internal/sim"
)

// SharedSession is the shared-scan admission path: streaming queries
// started through it route every scan leaf in their plans through a
// per-table scanshare.Coordinator, so concurrent queries over the same
// table ride one circular heap pass — buffer-pool accesses, disk reads and
// page streaming are charged once per pass while each query pays its own
// per-tuple CPU. Plain Engine.Query and Exec are unchanged (private scans).
//
// The session follows the engine's cooperative single-threaded execution
// model: interleave pulls on the returned Rows iterators from one
// goroutine (e.g. round-robin, as workload.RunShared does). Queries
// admitted while a pass is mid-lap simply join at its current page and
// wrap, so results can arrive in rotated page order for late arrivals;
// queries admitted together (before any pulls) start at the same page and
// produce exactly the rows a private scan produces, in the same order.
type SharedSession struct {
	e      *Engine
	coords map[string]*scanshare.Coordinator
	// expected is the admission-time concurrency hint the optimizer costs
	// the shared access path with; see SetExpectedConcurrency.
	expected int
	// prio is the attach priority of the statement currently being
	// admitted (consumed by sharedLeaf during compilation; see Admit).
	prio int
}

// AdmitOpts carries per-statement admission metadata from a query server
// into the shared-scan path. The zero value is a plain Query.
type AdmitOpts struct {
	// Priority is the statement's attach priority, recorded on its
	// shared-pass consumers (scanshare.Consumer.Priority). The pass itself
	// is demand-driven and symmetric; priority informs the admission
	// order and the drain schedule of whoever pulls the streams (the
	// server drains higher-priority statements more often per round).
	Priority int
	// QueuedAt, with Queued true, is when the statement entered the
	// admission queue; see Engine.QueryQueued for what it does to the
	// statement's profile.
	QueuedAt sim.Time
	Queued   bool
}

// NewSharedSession returns a shared-scan session over the engine's tables.
// Coordinators — and their pass positions — persist for the session's
// lifetime, so successive batches reuse the same elevator pass.
func (e *Engine) NewSharedSession() *SharedSession {
	return &SharedSession{e: e, coords: make(map[string]*scanshare.Coordinator)}
}

// Coordinator returns the session's shared-pass coordinator for a table,
// creating it on first use.
func (s *SharedSession) Coordinator(t *catalog.Table) *scanshare.Coordinator {
	c, ok := s.coords[t.Name]
	if !ok {
		c = scanshare.NewCoordinator(t.Heap, t.Name, s.e.pool)
		s.coords[t.Name] = c
	}
	return c
}

// Query starts a streaming query whose scan leaves are attached to the
// session's shared passes. Statement overhead, result-path accounting and
// the Rows contract are identical to Engine.Query; only the leaves differ.
// The scan attach happens here (at admission), so a batch of Query calls
// followed by interleaved pulls gives every member the same entry page.
// Caveat: blocking operators run their blocking phase at admission too —
// a hash join's Open drains the whole build side, advancing the shared
// pass before the rest of the batch is admitted (extra laps, see
// workload.RunShared).
func (s *SharedSession) Query(p plan.Node) *Rows {
	return s.Admit(p, AdmitOpts{})
}

// Admit is Query with admission metadata: the statement's shared-pass
// consumers attach with opts.Priority, and a queue wait (opts.Queued) is
// recorded on the statement's profile exactly as Engine.QueryQueued does.
// Simulated results, durations, and joules are identical to Query for any
// opts — admission metadata is policy and observation, never physics.
func (s *SharedSession) Admit(p plan.Node, opts AdmitOpts) *Rows {
	s.prio = opts.Priority
	defer func() { s.prio = 0 }()
	if opts.Queued {
		s.e.queuedAt, s.e.queued = opts.QueuedAt, true
	}
	// With an objective enabled, the optimizer weighs the shared attach
	// against a private scan for this plan: sharing amortizes page
	// streaming across the expected concurrency (energy down) while
	// stretching per-query response as the queries time-share the machine.
	// Choice.Shared selects which leaf compilation the statement gets.
	if lowered, ch, pi, ok := s.e.optimize(p, s.ExpectedConcurrency()); ok {
		if ch.Shared {
			return s.e.startQueryPar(exec.CompileLeaf(lowered, s.sharedLeaf), ch.Parallelism, pi)
		}
		return s.e.startQueryPar(exec.CompileParallel(lowered, s.e.prof.Workers), ch.Parallelism, pi)
	}
	return s.e.startQuery(exec.CompileLeaf(p, s.sharedLeaf))
}

// sharedLeaf compiles one scan leaf as an attach to the session's shared
// pass over that table, at the priority of the statement being admitted.
func (s *SharedSession) sharedLeaf(scan *plan.Scan) exec.Operator {
	return exec.NewSharedScanWith(s.Coordinator(scan.Table), scan.Table, scan.Filter, s.prio)
}

// SetExpectedConcurrency tells the optimizer how many queries the caller
// intends to co-attach to this session's passes — the Q that pass-fired
// work amortizes over. Values below 2 reset to the default.
func (s *SharedSession) SetExpectedConcurrency(n int) {
	s.expected = n
}

// ExpectedConcurrency returns the admission-time concurrency hint;
// defaults to 2 (a shared session exists because at least two queries are
// expected to ride the pass).
func (s *SharedSession) ExpectedConcurrency() int {
	if s.expected < 2 {
		return 2
	}
	return s.expected
}
