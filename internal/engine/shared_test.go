package engine

import (
	"testing"

	"ecodb/internal/catalog"
	"ecodb/internal/expr"
	"ecodb/internal/hw/cpu"
	"ecodb/internal/plan"
	"ecodb/internal/tpch"
)

// bandPlans builds n non-mergeable range selections over lineitem.
func bandPlans(e *Engine, n int) []plan.Node {
	return tpch.QuantityBandWorkload(e.Catalog(), n)
}

// driveShared admits all plans into one shared session and round-robins
// the streams to completion, returning each query's materialized rows.
func driveShared(t *testing.T, e *Engine, plans []plan.Node) [][]expr.Row {
	t.Helper()
	sess := e.NewSharedSession()
	streams := make([]*Rows, len(plans))
	for i, p := range plans {
		streams[i] = sess.Query(p)
	}
	out := make([][]expr.Row, len(plans))
	remaining := len(streams)
	for remaining > 0 {
		for i, r := range streams {
			if r == nil {
				continue
			}
			b, err := r.Next()
			if err != nil {
				t.Fatal(err)
			}
			if b == nil {
				streams[i] = nil
				remaining--
				continue
			}
			out[i] = b.AppendRowsTo(out[i])
		}
	}
	return out
}

// The engine-layer acceptance test: N concurrent scans through a shared
// session read the heap once (pool traffic equals one pass, not N), return
// per-query rows bit-identical to the private path, and charge page-stream
// cycles once per pass while per-tuple cycles scale with N.
func TestSharedSessionOnePassServesConcurrentScans(t *testing.T) {
	const n = 4
	prof := ProfileCommercial()
	prof.BGIOProbPerPage = 0 // keep the disk comparison exact

	// Private baseline: each query its own pass on a fresh engine.
	var wantRows [][]expr.Row
	basePool := int64(0)
	ePriv, mPriv := newEngine(t, prof, 0.01)
	ePriv.WarmAll()
	pages := int64(ePriv.MustTable(tpch.Lineitem).Heap.NumPages())
	privBefore := mPriv.CPUModel().Stats()
	for _, p := range bandPlans(ePriv, n) {
		res, st := ePriv.Exec(p)
		wantRows = append(wantRows, res.Rows)
		basePool += st.PoolHits + st.PoolMisses
	}
	privStream := mPriv.CPUModel().Stats().CyclesByKind[cpu.Stream] - privBefore.CyclesByKind[cpu.Stream]
	if basePool != n*pages {
		t.Fatalf("private baseline touched %d pages, want %d×%d", basePool, n, pages)
	}

	// Shared run on a fresh identical engine.
	eShared, m := newEngine(t, prof, 0.01)
	eShared.WarmAll()
	eShared.Pool().ResetStats()
	before := m.CPUModel().Stats()
	gotRows := driveShared(t, eShared, bandPlans(eShared, n))
	after := m.CPUModel().Stats()

	for qi := range wantRows {
		if len(gotRows[qi]) != len(wantRows[qi]) {
			t.Fatalf("query %d: %d rows shared vs %d private", qi, len(gotRows[qi]), len(wantRows[qi]))
		}
		for i := range gotRows[qi] {
			for c := range gotRows[qi][i] {
				if gotRows[qi][i][c] != wantRows[qi][i][c] {
					t.Fatalf("query %d row %d col %d differs", qi, i, c)
				}
			}
		}
	}

	st := eShared.Pool().Stats()
	if st.Hits+st.Misses != pages {
		t.Fatalf("shared run touched the pool %d times, want one pass (%d)", st.Hits+st.Misses, pages)
	}

	// One I/O stream, N consumer fragments: relative to N private passes,
	// the shared run saves exactly (n-1) passes' worth of page-stream
	// cycles — the result path (also Stream work) is still charged per
	// query. Interleaved flushing reorders float accumulation, so allow a
	// relative epsilon.
	sharedStream := after.CyclesByKind[cpu.Stream] - before.CyclesByKind[cpu.Stream]
	onePassStream := prof.Cost.PageStreamCyclesPerKB * float64(eShared.MustTable(tpch.Lineitem).Heap.Bytes()) / 1024 * prof.Amplification()
	saved := privStream - sharedStream
	wantSaved := float64(n-1) * onePassStream
	if diff := saved - wantSaved; diff > 1e-6*wantSaved || diff < -1e-6*wantSaved {
		t.Fatalf("shared run saved %v stream cycles, want %v ((n-1) passes); shared=%v private=%v",
			saved, wantSaved, sharedStream, privStream)
	}
}

// Zero-result scans through the shared path must terminate and account
// like any other consumer — including on empty tables, where a consumer is
// born done, and single-page heaps.
func TestSharedSessionZeroResultAndDegenerateHeaps(t *testing.T) {
	e, _ := newEngine(t, ProfileMySQLMemory(), 0.005)

	empty := catalog.NewTable("empty_t", catalog.NewSchema(
		catalog.Column{Name: "x", Kind: expr.KindInt}))
	e.Catalog().MustCreate(empty)

	tiny := catalog.NewTable("tiny_t", catalog.NewSchema(
		catalog.Column{Name: "x", Kind: expr.KindInt}))
	tiny.Insert(expr.Row{expr.Int(7)})
	e.Catalog().MustCreate(tiny)
	if tiny.Heap.NumPages() != 1 {
		t.Fatalf("tiny heap has %d pages, want 1", tiny.Heap.NumPages())
	}

	li := e.MustTable(tpch.Lineitem)
	noMatch := plan.NewScan(li, expr.Cmp{ // l_quantity is 1..50: no row matches
		Op: expr.GT, L: li.Schema.Col("l_quantity"), R: expr.Const{V: expr.Int(1000)}})

	plans := []plan.Node{
		plan.NewScan(empty, nil),
		plan.NewScan(tiny, nil),
		noMatch,
		plan.NewScan(tiny, expr.Cmp{Op: expr.EQ, L: tiny.Schema.Col("x"), R: expr.Const{V: expr.Int(8)}}),
	}
	got := driveShared(t, e, plans)
	if len(got[0]) != 0 {
		t.Fatalf("empty table returned %d rows", len(got[0]))
	}
	if len(got[1]) != 1 || got[1][0][0].I != 7 {
		t.Fatalf("single-page heap returned %v", got[1])
	}
	if len(got[2]) != 0 {
		t.Fatalf("zero-result scan returned %d rows", len(got[2]))
	}
	if len(got[3]) != 0 {
		t.Fatalf("zero-result single-page scan returned %d rows", len(got[3]))
	}
}

// A consumer admitted while the pass sits on the LAST page of the heap
// still sees every row exactly once (wrap-around), at the engine layer.
func TestSharedSessionLateAttachSeesWholeTable(t *testing.T) {
	e, _ := newEngine(t, ProfileMySQLMemory(), 0.01)
	li := e.MustTable(tpch.Lineitem)
	n := li.Heap.NumPages()
	if n < 2 {
		t.Fatalf("need a multi-page heap, got %d pages", n)
	}

	sess := e.NewSharedSession()
	first := sess.Query(plan.NewScan(li, nil))
	// Drive the pass until it sits on the last page. Batches are
	// page-granular and the full scan is filterless, so each Next is one
	// page.
	for i := 0; i < n-1; i++ {
		if b, err := first.Next(); err != nil || b == nil {
			t.Fatalf("pull %d: batch=%v err=%v", i, b, err)
		}
	}
	if pos := sess.Coordinator(li).Pos(); pos != n-1 {
		t.Fatalf("pass position = %d, want %d", pos, n-1)
	}

	late := sess.Query(plan.NewScan(li, nil))
	var lateRows int64
	for {
		b, err := late.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		lateRows += int64(b.Len())
	}
	if lateRows != li.Heap.NumRows() {
		t.Fatalf("late consumer saw %d rows, want %d (every page exactly once)", lateRows, li.Heap.NumRows())
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	if got := first.Stats().RowsOut; got != li.Heap.NumRows() {
		t.Fatalf("first consumer accounted %d rows, want %d", got, li.Heap.NumRows())
	}
}

// Plain Query/Exec stay on the private path: a shared session on the same
// engine must not alter their accounting.
func TestPlainQueryUnaffectedBySharedSession(t *testing.T) {
	e1, _ := newEngine(t, ProfileCommercial(), 0.005)
	e1.WarmAll()
	_, want := e1.Exec(tpch.QuantityQuery(e1.Catalog(), 25))

	e2, _ := newEngine(t, ProfileCommercial(), 0.005)
	e2.WarmAll()
	_ = e2.NewSharedSession() // exists, unused
	_, got := e2.Exec(tpch.QuantityQuery(e2.Catalog(), 25))
	if got != want {
		t.Fatalf("plain Exec stats changed with a shared session present: %+v vs %+v", got, want)
	}
}
