// Package exec executes logical plans over real rows while charging every
// operation's estimated CPU cycles and I/O to the simulated machine. The
// result is a query processor whose answers are computed for real but whose
// time and energy come from the hardware models — which is what lets PVC
// settings change a workload's joules without changing its answers.
package exec

import (
	"math"

	"ecodb/internal/expr"
	"ecodb/internal/hw/cpu"
	"ecodb/internal/obsv"
	"ecodb/internal/storage"
)

// CostModel holds the per-operation cycle constants of one engine profile.
// Two presets (in package engine) model the paper's commercial DBMS and
// MySQL's MEMORY engine; the split between Compute and MemStall cycles is
// what makes one workload CPU-bound and the other memory-punctuated.
type CostModel struct {
	// Scan: per-tuple interpretation cost and per-page streaming cost.
	ScanTupleCycles       float64 // compute, per row
	ScanTupleStallCycles  float64 // memstall, per row
	PageStreamCyclesPerKB float64 // stream, per KB of page data

	// Hash join.
	BuildCycles      float64 // compute, per build row
	BuildStallCycles float64 // memstall, per build row (hash table writes)
	ProbeCycles      float64 // compute, per probe row
	ProbeStallCycles float64 // memstall, per probe row (bucket chases)
	MatchCycles      float64 // compute, per emitted match

	// Aggregation.
	AggCycles      float64 // compute, per input row
	AggStallCycles float64 // memstall, per input row

	// Sort.
	SortCmpCycles float64 // compute, per comparison (n·log₂n of them)

	// Zone maps: the cost of consulting a page's min/max entries against
	// the pushed-down predicate, charged per examined page whenever a scan
	// runs with pruning active. A pruned page costs exactly this — no
	// buffer-pool access, no disk read, no stream or tuple work — which is
	// what turns page skipping into a simulated-joules win, not just a
	// wall-clock one.
	ZoneCheckCycles float64 // compute, per examined page when pruning

	// Result path: server-side materialization/wire cost (bandwidth-bound
	// Stream work) and client-side receive cost. The client (a JDBC
	// application in the paper, running on the SUT) builds an object per
	// row — pointer-chasing, cache-missing work charged as MemStall.
	ResultRowCycles float64 // stream, per result row, server side
	ResultKBCycles  float64 // stream, per KB of result, server side
	ClientRowCycles float64 // memstall, per result row, client side
	// ClientGCPerMRow models collector pressure in the client runtime:
	// the per-row receive cost is multiplied by
	// 1 + ClientGCPerMRow · min(resultRows, ClientGCSaturationRows)/1e6.
	// Large materialized results (QED's merged batches) pay heavily;
	// ordinary result sets barely notice.
	ClientGCPerMRow        float64
	ClientGCSaturationRows float64
	ExprCycleMultiple      float64 // scales expr-tree costs (interpreter weight)
}

// ClientRowFactor returns the GC-pressure multiplier for a result of
// equivRows rows.
func (c CostModel) ClientRowFactor(equivRows float64) float64 {
	if c.ClientGCPerMRow <= 0 {
		return 1
	}
	r := equivRows
	if c.ClientGCSaturationRows > 0 && r > c.ClientGCSaturationRows {
		r = c.ClientGCSaturationRows
	}
	return 1 + c.ClientGCPerMRow*r/1e6
}

// Ctx is the execution context shared by all operators of one query: the
// CPU that charges work, the optional buffer pool, cost constants, and
// per-kind cycle accumulators flushed at page granularity (so the power
// trace stays compact while totals remain exact).
type Ctx struct {
	CPU  *cpu.CPU
	Pool *storage.BufferPool // nil for an all-in-memory engine
	Cost CostModel

	// Amplify scales all charged cycles (default 1 when zero). Running a
	// scale-factor-s dataset with Amplify=1/s emulates the full-scale
	// workload's absolute runtimes: each generated row stands for 1/s
	// rows of the paper's dataset.
	Amplify float64

	// PageHook, if set, runs once per scanned page — the engine uses it
	// to inject the background disk traffic the paper observed on the
	// commercial system even with a warm cache.
	PageHook func()

	// BatchSize is the target rows per execution batch; zero selects
	// expr.DefaultBatchCapacity.
	BatchSize int

	// Obs, when non-nil, receives a copy of every charge tagged with the
	// operator span that made it — the per-query profile collector. All
	// observation sites are guarded by a nil check, so a disabled profile
	// costs one branch and allocates nothing; and the collector only ever
	// reads, so simulated results and charges are identical either way.
	Obs *obsv.Collector

	acc [3]float64 // indexed by cpu.WorkKind
}

// BatchTarget returns the effective rows-per-batch target.
func (c *Ctx) BatchTarget() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return expr.DefaultBatchCapacity
}

func (c *Ctx) amp() float64 {
	if c.Amplify <= 0 {
		return 1
	}
	return c.Amplify
}

// Charge accumulates cycles of the given kind.
func (c *Ctx) Charge(kind cpu.WorkKind, cycles float64) {
	a := cycles * c.amp()
	c.acc[kind] += a
	if c.Obs != nil {
		c.Obs.Charge(int(kind), a)
	}
}

// ChargeExpr drains an expression cost meter into compute work, scaled by
// the profile's interpreter weight.
func (c *Ctx) ChargeExpr(m *expr.Cost) {
	mult := c.Cost.ExprCycleMultiple
	if mult == 0 {
		mult = 1
	}
	a := m.Drain() * mult * c.amp()
	c.acc[cpu.Compute] += a
	if c.Obs != nil {
		c.Obs.Charge(int(cpu.Compute), a)
	}
}

// chargePageStream charges the physical-read side of surfacing one heap
// page: the background-I/O page hook and the memory stream that moves the
// page's bytes. Scan paths must route this through exactly one call per
// physical page read — once per page for private scans, once per PASS for
// shared scans — so the three scan implementations (scanOp, morselExec,
// sharedScanOp) stay simulation-identical by construction.
func (c *Ctx) chargePageStream(bytes int64) {
	if c.PageHook != nil {
		c.PageHook()
	}
	if c.Obs != nil {
		c.Obs.PageRead(bytes)
	}
	c.Charge(cpu.Stream, c.Cost.PageStreamCyclesPerKB*float64(bytes)/1024)
}

// chargeZoneCheck charges the zone-map consult for one examined page.
// Scans with pruning active charge it for every page they look at —
// pruned or read — so enabling pruning on an unprunable workload costs a
// little, exactly like a real engine's min/max check.
func (c *Ctx) chargeZoneCheck() {
	c.Charge(cpu.Compute, c.Cost.ZoneCheckCycles)
}

// chargeSort charges the comparison-model cost of sorting n rows:
// SortCmpCycles·n·log₂n compute plus a quarter of that in memory stalls.
// This is the single formula shared by the serial sort and the parallel
// sort's coordinator (and mirrored by opt's sortCost estimate): the
// parallel sort charges it once on the total row count, never per run,
// because the simulated cost models the algorithm, not the schedule.
func (c *Ctx) chargeSort(n float64) {
	if n <= 1 {
		return
	}
	c.Charge(cpu.Compute, c.Cost.SortCmpCycles*n*math.Log2(n))
	c.Charge(cpu.MemStall, 0.25*c.Cost.SortCmpCycles*n*math.Log2(n))
}

// chargePageTuples charges the per-consumer interpretation of one page's
// rows — work every query pays for every page it processes, shared pass
// or not.
func (c *Ctx) chargePageTuples(nRows int) {
	c.Charge(cpu.Compute, c.Cost.ScanTupleCycles*float64(nRows))
	c.Charge(cpu.MemStall, c.Cost.ScanTupleStallCycles*float64(nRows))
}

// Flush runs all accumulated work on the CPU, in kind order.
func (c *Ctx) Flush() {
	for kind, cycles := range c.acc {
		if cycles > 0 {
			c.CPU.Run(cycles, cpu.WorkKind(kind))
			c.acc[kind] = 0
		}
	}
}
