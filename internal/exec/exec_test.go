package exec

import (
	"sort"
	"testing"

	"ecodb/internal/catalog"
	"ecodb/internal/expr"
	"ecodb/internal/hw/cpu"
	"ecodb/internal/plan"
	"ecodb/internal/sim"
	"ecodb/internal/storage"
)

// testCtx returns a context on a fresh CPU with unit costs.
func testCtx() (*Ctx, *sim.Clock) {
	clock := sim.NewClock()
	c := cpu.New(cpu.E8500(), clock)
	return &Ctx{
		CPU: c,
		Cost: CostModel{
			ScanTupleCycles:       10,
			ScanTupleStallCycles:  5,
			PageStreamCyclesPerKB: 1,
			BuildCycles:           10,
			BuildStallCycles:      5,
			ProbeCycles:           10,
			ProbeStallCycles:      5,
			MatchCycles:           5,
			AggCycles:             10,
			AggStallCycles:        5,
			SortCmpCycles:         3,
			ResultRowCycles:       5,
			ClientRowCycles:       5,
		},
	}, clock
}

func numbersTable(t *testing.T, name string, n int) *catalog.Table {
	t.Helper()
	tb := catalog.NewTable(name, catalog.NewSchema(
		catalog.Column{Name: "k", Kind: expr.KindInt},
		catalog.Column{Name: "v", Kind: expr.KindInt},
	))
	for i := 0; i < n; i++ {
		tb.Insert(expr.Row{expr.Int(int64(i)), expr.Int(int64(i * 10))})
	}
	return tb
}

func collect(t *testing.T, op Operator, ctx *Ctx) []expr.Row {
	t.Helper()
	var rows []expr.Row
	if err := Drain(ctx, op, func(b *expr.Batch) error {
		rows = b.AppendRowsTo(rows)
		return nil
	}); err != nil {
		t.Fatalf("drain: %v", err)
	}
	return rows
}

func TestScanAllRows(t *testing.T) {
	ctx, clock := testCtx()
	tb := numbersTable(t, "t", 100)
	op := Compile(plan.NewScan(tb, nil))
	rows := collect(t, op, ctx)
	if len(rows) != 100 {
		t.Fatalf("scanned %d rows", len(rows))
	}
	if clock.Now() == 0 {
		t.Fatal("scan charged no time")
	}
}

func TestScanWithFilter(t *testing.T) {
	ctx, _ := testCtx()
	tb := numbersTable(t, "t", 100)
	pred := expr.Cmp{Op: expr.LT, L: tb.Schema.Col("k"), R: expr.Const{V: expr.Int(10)}}
	rows := collect(t, Compile(plan.NewScan(tb, pred)), ctx)
	if len(rows) != 10 {
		t.Fatalf("filtered scan returned %d rows, want 10", len(rows))
	}
}

func TestScanChargesPoolAccesses(t *testing.T) {
	ctx, clock := testCtx()
	tb := numbersTable(t, "t", 500)
	pool := storage.NewBufferPool(1<<20, readerFunc(func(n int64, seq bool) {
		clock.Advance(sim.Millisecond)
	}))
	ctx.Pool = pool
	collect(t, Compile(plan.NewScan(tb, nil)), ctx)
	if pool.Stats().Misses != int64(tb.Heap.NumPages()) {
		t.Fatalf("pool misses %d, want one per page %d", pool.Stats().Misses, tb.Heap.NumPages())
	}
}

type readerFunc func(int64, bool)

func (f readerFunc) BlockingRead(n int64, sequential bool) { f(n, sequential) }

func TestPageHookRunsPerPage(t *testing.T) {
	ctx, _ := testCtx()
	tb := numbersTable(t, "t", 500)
	var hooks int
	ctx.PageHook = func() { hooks++ }
	collect(t, Compile(plan.NewScan(tb, nil)), ctx)
	if hooks != tb.Heap.NumPages() {
		t.Fatalf("hooks = %d, want %d", hooks, tb.Heap.NumPages())
	}
}

func TestFilterOperator(t *testing.T) {
	ctx, _ := testCtx()
	tb := numbersTable(t, "t", 20)
	p := plan.NewFilter(plan.NewScan(tb, nil),
		expr.Cmp{Op: expr.GE, L: tb.Schema.Col("k"), R: expr.Const{V: expr.Int(15)}})
	rows := collect(t, Compile(p), ctx)
	if len(rows) != 5 {
		t.Fatalf("filter returned %d rows", len(rows))
	}
}

func TestHashJoinInner(t *testing.T) {
	ctx, _ := testCtx()
	left := numbersTable(t, "l", 10)  // k: 0..9
	right := numbersTable(t, "r", 20) // k: 0..19
	j := plan.NewHashJoin(
		plan.NewScan(left, nil), plan.NewScan(right, nil),
		left.Schema.MustIndex("k"), right.Schema.MustIndex("k"), nil)
	rows := collect(t, Compile(j), ctx)
	if len(rows) != 10 {
		t.Fatalf("join produced %d rows, want 10", len(rows))
	}
	// Output is buildRow ++ probeRow: 4 columns.
	if len(rows[0]) != 4 {
		t.Fatalf("join row width %d, want 4", len(rows[0]))
	}
	for _, r := range rows {
		if r[0].I != r[2].I {
			t.Fatalf("join keys differ: %v", r)
		}
	}
}

func TestHashJoinDuplicateBuildKeys(t *testing.T) {
	ctx, _ := testCtx()
	dup := catalog.NewTable("d", catalog.NewSchema(
		catalog.Column{Name: "k", Kind: expr.KindInt}))
	dup.Insert(expr.Row{expr.Int(1)})
	dup.Insert(expr.Row{expr.Int(1)})
	probe := numbersTable(t, "p", 3)
	j := plan.NewHashJoin(plan.NewScan(dup, nil), plan.NewScan(probe, nil),
		0, probe.Schema.MustIndex("k"), nil)
	rows := collect(t, Compile(j), ctx)
	if len(rows) != 2 {
		t.Fatalf("1:N join produced %d rows, want 2", len(rows))
	}
}

func TestHashJoinResidual(t *testing.T) {
	ctx, _ := testCtx()
	left := numbersTable(t, "l", 10)
	right := numbersTable(t, "r", 10)
	j := plan.NewHashJoin(
		plan.NewScan(left, nil), plan.NewScan(right, nil),
		left.Schema.MustIndex("k"), right.Schema.MustIndex("k"), nil)
	// Residual on the concatenated row: keep only k < 3.
	j.Residual = expr.Cmp{Op: expr.LT, L: expr.Col{Idx: 0}, R: expr.Const{V: expr.Int(3)}}
	rows := collect(t, Compile(j), ctx)
	if len(rows) != 3 {
		t.Fatalf("residual join produced %d rows, want 3", len(rows))
	}
}

func TestProject(t *testing.T) {
	ctx, _ := testCtx()
	tb := numbersTable(t, "t", 5)
	p := plan.NewProject(plan.NewScan(tb, nil),
		[]expr.Expr{expr.Arith{Op: expr.Add, L: tb.Schema.Col("k"), R: expr.Const{V: expr.Int(100)}}},
		[]string{"k100"}, []expr.Kind{expr.KindFloat})
	rows := collect(t, Compile(p), ctx)
	if len(rows) != 5 || rows[2][0].AsFloat() != 102 {
		t.Fatalf("project rows = %v", rows)
	}
}

func TestHashAggSumCountMinMaxAvg(t *testing.T) {
	ctx, _ := testCtx()
	tb := catalog.NewTable("g", catalog.NewSchema(
		catalog.Column{Name: "grp", Kind: expr.KindString},
		catalog.Column{Name: "x", Kind: expr.KindFloat},
	))
	for i, g := range []string{"a", "b", "a", "a", "b"} {
		tb.Insert(expr.Row{expr.String(g), expr.Float(float64(i + 1))})
	}
	// a: 1,3,4; b: 2,5.
	col := tb.Schema.Col("x")
	a := plan.NewAgg(plan.NewScan(tb, nil), []int{0}, []plan.AggSpec{
		{Func: plan.Sum, Arg: col, Name: "s"},
		{Func: plan.Count, Name: "c"},
		{Func: plan.Min, Arg: col, Name: "mn"},
		{Func: plan.Max, Arg: col, Name: "mx"},
		{Func: plan.Avg, Arg: col, Name: "av"},
	})
	rows := collect(t, Compile(a), ctx)
	if len(rows) != 2 {
		t.Fatalf("agg produced %d groups", len(rows))
	}
	byGroup := map[string]expr.Row{}
	for _, r := range rows {
		byGroup[r[0].S] = r
	}
	ra := byGroup["a"]
	if ra[1].F != 8 || ra[2].I != 3 || ra[3].F != 1 || ra[4].F != 4 || ra[5].F != 8.0/3 {
		t.Fatalf("group a aggregates wrong: %v", ra)
	}
	rb := byGroup["b"]
	if rb[1].F != 7 || rb[2].I != 2 {
		t.Fatalf("group b aggregates wrong: %v", rb)
	}
}

func TestAggEmptyInput(t *testing.T) {
	ctx, _ := testCtx()
	tb := numbersTable(t, "t", 0)
	a := plan.NewAgg(plan.NewScan(tb, nil), []int{0},
		[]plan.AggSpec{{Func: plan.Count, Name: "c"}})
	rows := collect(t, Compile(a), ctx)
	if len(rows) != 0 {
		t.Fatalf("empty-input agg produced %d rows", len(rows))
	}
}

func TestHashJoinNullKeysDoNotMatch(t *testing.T) {
	// SQL equality is false on NULL: {NULL,1} ⋈ {NULL,1} is one row, not
	// two. The pre-fix executor matched NULL build keys with NULL probe
	// keys because both landed on the same hash-table entry.
	ctx, _ := testCtx()
	mk := func(name string) *catalog.Table {
		tb := catalog.NewTable(name, catalog.NewSchema(
			catalog.Column{Name: name + "k", Kind: expr.KindInt}))
		tb.Insert(expr.Row{expr.Null()})
		tb.Insert(expr.Row{expr.Int(1)})
		return tb
	}
	j := plan.NewHashJoin(plan.NewScan(mk("l"), nil), plan.NewScan(mk("r"), nil), 0, 0, nil)
	rows := collect(t, Compile(j), ctx)
	if len(rows) != 1 {
		t.Fatalf("NULL-key join produced %d rows, want 1", len(rows))
	}
	if rows[0][0].I != 1 || rows[0][1].I != 1 {
		t.Fatalf("joined row = %v, want (1,1)", rows[0])
	}
}

func TestGlobalAggOverEmptyInput(t *testing.T) {
	// A global aggregate (no GROUP BY) over zero rows returns exactly one
	// row: COUNT 0, everything else NULL. The pre-fix executor returned
	// zero rows.
	ctx, _ := testCtx()
	tb := numbersTable(t, "t", 0)
	v := tb.Schema.Col("v")
	a := plan.NewAgg(plan.NewScan(tb, nil), nil, []plan.AggSpec{
		{Func: plan.Count, Name: "c"},
		{Func: plan.Sum, Arg: v, Name: "s"},
		{Func: plan.Min, Arg: v, Name: "mn"},
		{Func: plan.Max, Arg: v, Name: "mx"},
		{Func: plan.Avg, Arg: v, Name: "av"},
	})
	rows := collect(t, Compile(a), ctx)
	if len(rows) != 1 {
		t.Fatalf("global agg over empty input produced %d rows, want 1", len(rows))
	}
	r := rows[0]
	if r[0].Kind != expr.KindInt || r[0].I != 0 {
		t.Fatalf("COUNT(*) over empty input = %v, want 0", r[0])
	}
	for i, name := range []string{"sum", "min", "max", "avg"} {
		if !r[1+i].IsNull() {
			t.Fatalf("%s over empty input = %v, want NULL", name, r[1+i])
		}
	}
}

func TestGroupKeysAreInjective(t *testing.T) {
	ctx, _ := testCtx()
	// ("x\x00","y") and ("x","\x00y") collapsed under the old
	// string+separator keys; they are distinct groups.
	tb := catalog.NewTable("g", catalog.NewSchema(
		catalog.Column{Name: "a", Kind: expr.KindString},
		catalog.Column{Name: "b", Kind: expr.KindString},
	))
	tb.Insert(expr.Row{expr.String("x\x00"), expr.String("y")})
	tb.Insert(expr.Row{expr.String("x"), expr.String("\x00y")})
	a := plan.NewAgg(plan.NewScan(tb, nil), []int{0, 1},
		[]plan.AggSpec{{Func: plan.Count, Name: "c"}})
	if rows := collect(t, Compile(a), ctx); len(rows) != 2 {
		t.Fatalf("boundary-shifted groups collapsed: %d groups, want 2", len(rows))
	}

	// Int(1) and String("1") render identically but are distinct groups.
	ctx2, _ := testCtx()
	mixed := catalog.NewTable("m", catalog.NewSchema(
		catalog.Column{Name: "k", Kind: expr.KindString}))
	mixed.Insert(expr.Row{expr.Int(1)})
	mixed.Insert(expr.Row{expr.String("1")})
	a2 := plan.NewAgg(plan.NewScan(mixed, nil), []int{0},
		[]plan.AggSpec{{Func: plan.Count, Name: "c"}})
	if rows := collect(t, Compile(a2), ctx2); len(rows) != 2 {
		t.Fatalf("kind-crossing groups collapsed: %d groups, want 2", len(rows))
	}
}

func TestAggOutputOrderDeterministic(t *testing.T) {
	// Regression for the map-iteration emission order: groups come out in
	// sorted encoded-group-key order — a pure function of the group set —
	// never in map, first-seen, or worker-dependent order. Feeding the
	// same rows in two different orders must emit byte-identical results.
	build := func(groups []string) *catalog.Table {
		tb := catalog.NewTable("t", catalog.NewSchema(
			catalog.Column{Name: "g", Kind: expr.KindString},
			catalog.Column{Name: "one", Kind: expr.KindInt},
		))
		for _, g := range groups {
			tb.Insert(expr.Row{expr.String(g), expr.Int(1)})
		}
		return tb
	}
	run := func(tb *catalog.Table) []expr.Row {
		ctx, _ := testCtx()
		a := plan.NewAgg(plan.NewScan(tb, nil), []int{0},
			[]plan.AggSpec{{Func: plan.Count, Name: "c"}})
		return collect(t, Compile(a), ctx)
	}

	// Same multiset, different first-seen orders.
	a := run(build([]string{"pear", "apple", "plum", "apple", "pear", "fig"}))
	b := run(build([]string{"fig", "plum", "pear", "apple", "apple", "pear"}))
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("got %d and %d groups, want 4", len(a), len(b))
	}
	for i := range a {
		if a[i][0] != b[i][0] || a[i][1] != b[i][1] {
			t.Fatalf("row %d differs across input orders: %v vs %v", i, a[i], b[i])
		}
	}

	// The order is exactly ascending encoded group keys.
	want := make([]string, len(a))
	for i, r := range a {
		want[i] = string(expr.AppendGroupKey(nil, r[0]))
	}
	if !sort.StringsAreSorted(want) {
		t.Fatalf("emission order is not sorted by encoded group key: %v", a)
	}

	// Map iteration is randomized per run; repeated runs must not wobble.
	for i := 0; i < 5; i++ {
		c := run(build([]string{"pear", "apple", "plum", "apple", "pear", "fig"}))
		for j := range a {
			if a[j][0] != c[j][0] {
				t.Fatalf("repeat %d reordered groups: %v vs %v", i, a, c)
			}
		}
	}
}

func TestCountColumnSkipsNulls(t *testing.T) {
	ctx, _ := testCtx()
	tb := catalog.NewTable("t", catalog.NewSchema(
		catalog.Column{Name: "g", Kind: expr.KindString},
		catalog.Column{Name: "v", Kind: expr.KindInt},
	))
	tb.Insert(expr.Row{expr.String("a"), expr.Int(1)})
	tb.Insert(expr.Row{expr.String("a"), expr.Null()})
	tb.Insert(expr.Row{expr.String("b"), expr.Null()})
	v := tb.Schema.Col("v")
	a := plan.NewAgg(plan.NewScan(tb, nil), []int{0}, []plan.AggSpec{
		{Func: plan.Count, Arg: v, Name: "cnt_v"}, // COUNT(v)
		{Func: plan.Count, Name: "cnt_star"},      // COUNT(*)
	})
	rows := collect(t, Compile(a), ctx)
	if len(rows) != 2 {
		t.Fatalf("agg produced %d groups, want 2", len(rows))
	}
	byGroup := map[string]expr.Row{}
	for _, r := range rows {
		byGroup[r[0].S] = r
	}
	if ra := byGroup["a"]; ra[1].I != 1 || ra[2].I != 2 {
		t.Fatalf("group a: COUNT(v)=%v COUNT(*)=%v, want 1 and 2", ra[1], ra[2])
	}
	if rb := byGroup["b"]; rb[1].I != 0 || rb[2].I != 1 {
		t.Fatalf("group b: COUNT(v)=%v COUNT(*)=%v, want 0 and 1", rb[1], rb[2])
	}
}

func TestSortAscDesc(t *testing.T) {
	ctx, _ := testCtx()
	tb := catalog.NewTable("s", catalog.NewSchema(
		catalog.Column{Name: "x", Kind: expr.KindInt}))
	for _, v := range []int64{3, 1, 4, 1, 5} {
		tb.Insert(expr.Row{expr.Int(v)})
	}
	asc := collect(t, Compile(plan.NewSort(plan.NewScan(tb, nil), plan.SortKey{Col: 0})), ctx)
	for i := 1; i < len(asc); i++ {
		if asc[i][0].I < asc[i-1][0].I {
			t.Fatalf("not ascending: %v", asc)
		}
	}
	desc := collect(t, Compile(plan.NewSort(plan.NewScan(tb, nil), plan.SortKey{Col: 0, Desc: true})), ctx)
	for i := 1; i < len(desc); i++ {
		if desc[i][0].I > desc[i-1][0].I {
			t.Fatalf("not descending: %v", desc)
		}
	}
}

func TestLimit(t *testing.T) {
	ctx, _ := testCtx()
	tb := numbersTable(t, "t", 50)
	rows := collect(t, Compile(plan.NewLimit(plan.NewScan(tb, nil), 7)), ctx)
	if len(rows) != 7 {
		t.Fatalf("limit emitted %d rows", len(rows))
	}
}

func TestLimitTruncatesMidBatch(t *testing.T) {
	// When the limit boundary falls inside a batch, exactly the first N
	// rows come out — in order, across the batch seam.
	ctx, _ := testCtx()
	tb := numbersTable(t, "t", 1200) // ~409 rows per page: limit spans pages
	rows := collect(t, Compile(plan.NewLimit(plan.NewScan(tb, nil), 450)), ctx)
	if len(rows) != 450 {
		t.Fatalf("limit emitted %d rows, want 450", len(rows))
	}
	for i, r := range rows {
		if r[0].I != int64(i) {
			t.Fatalf("row %d has key %d: truncation reordered or dropped rows", i, r[0].I)
		}
	}

	// Limit inside the very first batch: the returned batch holds exactly
	// N rows even though the input batch held a whole page.
	ctx2, _ := testCtx()
	op := Compile(plan.NewLimit(plan.NewScan(tb, nil), 7))
	if err := op.Open(ctx2); err != nil {
		t.Fatal(err)
	}
	defer op.Close(ctx2)
	b, err := op.Next(ctx2)
	if err != nil || b == nil {
		t.Fatalf("first batch: %v, %v", b, err)
	}
	if b.Len() != 7 {
		t.Fatalf("mid-batch truncation returned %d rows, want 7", b.Len())
	}
	if next, _ := op.Next(ctx2); next != nil {
		t.Fatalf("limit served rows past the boundary: %v", next.Rows())
	}
}

func TestAmplificationScalesTime(t *testing.T) {
	tb := numbersTable(t, "t", 200)
	run := func(amp float64) sim.Duration {
		ctx, clock := testCtx()
		ctx.Amplify = amp
		collect(t, Compile(plan.NewScan(tb, nil)), ctx)
		return clock.Now().Sub(0)
	}
	t1, t10 := run(1), run(10)
	ratio := t10.Seconds() / t1.Seconds()
	if ratio < 9.9 || ratio > 10.1 {
		t.Fatalf("amplification ×10 scaled time by %v", ratio)
	}
}

func TestFlushDrainsAccumulators(t *testing.T) {
	ctx, clock := testCtx()
	ctx.Charge(cpu.Compute, 1e6)
	before := clock.Now()
	ctx.Flush()
	if clock.Now() == before {
		t.Fatal("flush did not run charged work")
	}
	ctx.Flush() // second flush is a no-op
	if clock.Now() != clock.Now() {
		t.Fatal("unreachable")
	}
}

func TestCompileUnknownNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown node did not panic")
		}
	}()
	Compile(nil)
}

// --- batch-pipeline semantics ---

func TestScanBatchesArePageGranular(t *testing.T) {
	ctx, _ := testCtx()
	tb := numbersTable(t, "t", 3000)
	op := Compile(plan.NewScan(tb, nil))
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	defer op.Close(ctx)
	var total int
	batches := 0
	for {
		b, err := op.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		batches++
		total += b.Len()
	}
	if total != 3000 {
		t.Fatalf("scanned %d rows", total)
	}
	if batches != tb.Heap.NumPages() {
		t.Fatalf("got %d batches, want one per page (%d)", batches, tb.Heap.NumPages())
	}
}

func TestScanReusesBatch(t *testing.T) {
	ctx, _ := testCtx()
	tb := numbersTable(t, "t", 1000)
	op := Compile(plan.NewScan(tb, nil))
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	defer op.Close(ctx)
	b1, _ := op.Next(ctx)
	b2, _ := op.Next(ctx)
	if b1 == nil || b2 == nil {
		t.Fatal("expected at least two batches")
	}
	if b1 != b2 {
		t.Fatal("scan should recycle its output batch across Next calls")
	}
}

func TestLimitStillRunsInputToCompletion(t *testing.T) {
	ctx, _ := testCtx()
	tb := numbersTable(t, "t", 2000)
	var pages int
	ctx.PageHook = func() { pages++ }
	rows := collect(t, Compile(plan.NewLimit(plan.NewScan(tb, nil), 3)), ctx)
	if len(rows) != 3 {
		t.Fatalf("limit emitted %d rows", len(rows))
	}
	if pages != tb.Heap.NumPages() {
		t.Fatalf("limit scanned %d pages, want the full heap (%d): no early termination", pages, tb.Heap.NumPages())
	}
	// The final limited batch must survive the input drain.
	if rows[0][0].I != 0 || rows[2][0].I != 2 {
		t.Fatalf("limited rows corrupted by input drain: %v", rows)
	}
}

func TestBatchAndRowExecutionAgree(t *testing.T) {
	// The vectorized pipeline and naive row-at-a-time evaluation of the
	// same plan must produce identical rows and identical charged cycles.
	ctx, _ := testCtx()
	tb := numbersTable(t, "t", 500)
	pred := expr.Cmp{Op: expr.LT, L: tb.Schema.Col("k"), R: expr.Const{V: expr.Int(100)}}

	rows := collect(t, Compile(plan.NewScan(tb, pred)), ctx)

	var want []expr.Row
	var rowMeter, batchMeter expr.Cost
	heap := tb.Heap
	for i := 0; i < heap.NumPages(); i++ {
		for _, r := range heap.Page(i).Rows() {
			if pred.Eval(r, &rowMeter).Truthy() {
				want = append(want, r)
			}
		}
		expr.FilterBatch(pred, &heap.Page(i).Data, nil, &batchMeter)
	}
	if len(rows) != len(want) {
		t.Fatalf("batch path %d rows, row path %d", len(rows), len(want))
	}
	for i := range rows {
		if rows[i][0].I != want[i][0].I || rows[i][1].I != want[i][1].I {
			t.Fatalf("row %d differs: %v vs %v", i, rows[i], want[i])
		}
	}
	if rowMeter.Cycles != batchMeter.Cycles {
		t.Fatalf("charged cycles differ: row %v vs batch %v", rowMeter.Cycles, batchMeter.Cycles)
	}
}
