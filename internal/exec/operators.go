package exec

import (
	"fmt"
	"math"
	"sort"

	"ecodb/internal/catalog"
	"ecodb/internal/expr"
	"ecodb/internal/hw/cpu"
	"ecodb/internal/plan"
	"ecodb/internal/storage"
)

// Operator is a compiled physical operator in the vectorized pull pipeline.
// The driver calls Open once, Next until it returns nil, then Close.
// Operators charge their work to the context batch-at-a-time as they go.
type Operator interface {
	Schema() *catalog.Schema
	// Open prepares the operator and its inputs. Blocking phases (hash
	// build) run here.
	Open(ctx *Ctx) error
	// Next returns the next batch of output rows, or nil at end of
	// stream. The returned batch is owned by the operator and valid only
	// until the following Next call; the Row values inside it are
	// immutable and may be retained.
	Next(ctx *Ctx) (*expr.Batch, error)
	// Close releases operator state. It is idempotent.
	Close(ctx *Ctx) error
}

// Drain runs op to completion — Open, Next until exhausted, Close —
// invoking fn (when non-nil) on every batch. It is the canonical driver
// loop for callers that do not need incremental pulls.
func Drain(ctx *Ctx, op Operator, fn func(*expr.Batch) error) error {
	if err := op.Open(ctx); err != nil {
		return err
	}
	for {
		b, err := op.Next(ctx)
		if err != nil {
			op.Close(ctx)
			return err
		}
		if b == nil {
			break
		}
		if fn != nil {
			if err := fn(b); err != nil {
				op.Close(ctx)
				return err
			}
		}
	}
	return op.Close(ctx)
}

// Compile lowers a logical plan to serial physical operators. Unknown
// node types panic: the operator set is closed. It is the workers=1 case
// of CompileParallel; the single lowering switch lives in compile (see
// parallel.go).
func Compile(n plan.Node) Operator { return CompileParallel(n, 1) }

// scanOp reads a heap page by page through the buffer pool (misses become
// simulated disk reads), charging stream work for page bytes and per-tuple
// interpretation costs once per page, and filtering each page's rows with
// the batch-wise evaluator. Output batches are page-granular (see Next).
type scanOp struct {
	table  *catalog.Table
	filter expr.Expr

	scan  *storage.PageScan
	raw   *expr.Batch // one page's unfiltered rows (filtered scans only)
	out   *expr.Batch
	meter expr.Cost
}

func (s *scanOp) Schema() *catalog.Schema { return s.table.Schema }

func (s *scanOp) Open(ctx *Ctx) error {
	s.scan = storage.NewPageScan(s.table.Heap, s.table.Name, ctx.Pool)
	if s.filter != nil {
		s.raw = expr.NewBatch(ctx.BatchTarget())
	}
	s.out = expr.NewBatch(ctx.BatchTarget())
	return nil
}

// Next surfaces pages until the output batch is non-empty, charging page
// costs as it goes. Batches are page-granular (a batch never spans a page
// boundary) and the accumulated work is flushed to the CPU at the top of
// each page step — by which point downstream operators have charged their
// work for the previous batch — so every flushed power-trace window holds
// one page's worth of whole-pipeline work, exactly as the row-at-a-time
// engine's page loop produced it. The 1 Hz GUI-sampled energies of the
// paper's methodology depend on that microstructure; batch sizes above a
// page's row count would change it. Pages hold ~10²–10³ rows, plenty to
// amortize per-batch overhead.
func (s *scanOp) Next(ctx *Ctx) (*expr.Batch, error) {
	s.out.Reset()
	for s.out.Len() == 0 {
		ctx.Flush()  // close the previous page's pipeline-wide cost window
		dst := s.out // filterless scans read pages straight into the output
		if s.filter != nil {
			s.raw.Reset()
			dst = s.raw
		}
		bytes, nRows, ok := s.scan.ReadInto(dst)
		if !ok {
			break
		}
		ctx.chargePageStream(bytes)
		ctx.chargePageTuples(nRows)
		if s.filter != nil {
			expr.FilterBatch(s.filter, s.raw.Rows, s.out, &s.meter)
			ctx.ChargeExpr(&s.meter)
		}
	}
	if s.out.Len() == 0 {
		return nil, nil
	}
	return s.out, nil
}

func (s *scanOp) Close(*Ctx) error {
	s.scan, s.raw, s.out = nil, nil, nil
	return nil
}

// filterOp drops rows failing the predicate, one input batch at a time.
type filterOp struct {
	input Operator
	pred  expr.Expr

	out   *expr.Batch
	meter expr.Cost
}

func (f *filterOp) Schema() *catalog.Schema { return f.input.Schema() }

func (f *filterOp) Open(ctx *Ctx) error {
	f.out = expr.NewBatch(ctx.BatchTarget())
	return f.input.Open(ctx)
}

func (f *filterOp) Next(ctx *Ctx) (*expr.Batch, error) {
	for {
		in, err := f.input.Next(ctx)
		if err != nil || in == nil {
			return nil, err
		}
		f.out.Reset()
		expr.FilterBatch(f.pred, in.Rows, f.out, &f.meter)
		ctx.ChargeExpr(&f.meter)
		if f.out.Len() > 0 {
			return f.out, nil
		}
	}
}

func (f *filterOp) Close(ctx *Ctx) error {
	f.out = nil
	return f.input.Close(ctx)
}

// hashJoinOp materializes the build side into a hash table keyed on a
// single column during Open, then streams the probe side batch by batch.
// Output rows are buildRow ++ probeRow; an optional residual predicate
// filters matches.
type hashJoinOp struct {
	build, probe       Operator
	buildKey, probeKey int
	residual           expr.Expr
	schema             *catalog.Schema

	table map[expr.Value][]expr.Row
	out   *expr.Batch
	meter expr.Cost
}

func (j *hashJoinOp) Schema() *catalog.Schema { return j.schema }

func (j *hashJoinOp) Open(ctx *Ctx) error {
	j.out = expr.NewBatch(ctx.BatchTarget())
	j.table = make(map[expr.Value][]expr.Row)
	if err := j.build.Open(ctx); err != nil {
		return err
	}
	for {
		b, err := j.build.Next(ctx)
		if err != nil {
			j.build.Close(ctx)
			return err
		}
		if b == nil {
			break
		}
		for _, row := range b.Rows {
			k := row[j.buildKey]
			if k.IsNull() {
				// NULL never equals NULL under join semantics (Cmp.Eval
				// returns false on NULL); keep NULL keys out of the table
				// so they cannot meet a NULL probe key.
				continue
			}
			j.table[k] = append(j.table[k], row)
		}
		n := float64(b.Len())
		ctx.Charge(cpu.Compute, ctx.Cost.BuildCycles*n)
		ctx.Charge(cpu.MemStall, ctx.Cost.BuildStallCycles*n)
	}
	if err := j.build.Close(ctx); err != nil {
		return err
	}
	ctx.Flush()
	return j.probe.Open(ctx)
}

func (j *hashJoinOp) Next(ctx *Ctx) (*expr.Batch, error) {
	buildWidth := j.build.Schema().NumCols()
	probeWidth := j.probe.Schema().NumCols()
	for {
		in, err := j.probe.Next(ctx)
		if err != nil || in == nil {
			return nil, err
		}
		ctx.Charge(cpu.Compute, ctx.Cost.ProbeCycles*float64(in.Len()))
		ctx.Charge(cpu.MemStall, ctx.Cost.ProbeStallCycles*float64(in.Len()))
		j.out.Reset()
		matches := 0
		for _, row := range in.Rows {
			k := row[j.probeKey]
			if k.IsNull() {
				continue
			}
			hits, ok := j.table[k]
			if !ok {
				continue
			}
			for _, b := range hits {
				matches++
				out := make(expr.Row, 0, buildWidth+probeWidth)
				out = append(out, b...)
				out = append(out, row...)
				if j.residual != nil && !j.residual.Eval(out, &j.meter).Truthy() {
					continue
				}
				j.out.Append(out)
			}
		}
		ctx.Charge(cpu.Compute, ctx.Cost.MatchCycles*float64(matches))
		ctx.ChargeExpr(&j.meter)
		if j.out.Len() > 0 {
			return j.out, nil
		}
	}
}

func (j *hashJoinOp) Close(ctx *Ctx) error {
	j.table, j.out = nil, nil
	return j.probe.Close(ctx)
}

// projectOp computes output expressions column-at-a-time over each input
// batch, packing the output rows into one backing allocation per batch.
type projectOp struct {
	input  Operator
	exprs  []expr.Expr
	schema *catalog.Schema

	out   *expr.Batch
	cols  [][]expr.Value // scratch: one value column per expression
	meter expr.Cost
}

func (p *projectOp) Schema() *catalog.Schema { return p.schema }

func (p *projectOp) Open(ctx *Ctx) error {
	p.out = expr.NewBatch(ctx.BatchTarget())
	p.cols = make([][]expr.Value, len(p.exprs))
	return p.input.Open(ctx)
}

func (p *projectOp) Next(ctx *Ctx) (*expr.Batch, error) {
	in, err := p.input.Next(ctx)
	if err != nil || in == nil {
		return nil, err
	}
	for i, e := range p.exprs {
		p.cols[i] = expr.EvalBatch(e, in.Rows, p.cols[i][:0], &p.meter)
	}
	ctx.ChargeExpr(&p.meter)

	// Assemble rows from the evaluated columns. The backing array is
	// freshly allocated per batch because output rows may be retained
	// downstream (sort buffers, materialized results).
	n, width := in.Len(), len(p.exprs)
	backing := make([]expr.Value, n*width)
	p.out.Reset()
	for r := 0; r < n; r++ {
		row := backing[r*width : (r+1)*width : (r+1)*width]
		for c := range p.cols {
			row[c] = p.cols[c][r]
		}
		p.out.Append(expr.Row(row))
	}
	return p.out, nil
}

func (p *projectOp) Close(ctx *Ctx) error {
	p.out, p.cols = nil, nil
	return p.input.Close(ctx)
}

// aggState accumulates one group.
type aggState struct {
	groupVals expr.Row
	sums      []float64
	counts    []int64
	mins      []expr.Value
	maxs      []expr.Value
	seen      []bool
}

// newAggState returns a zeroed accumulator for nAggs aggregates.
func newAggState(nAggs int) *aggState {
	return &aggState{
		sums:   make([]float64, nAggs),
		counts: make([]int64, nAggs),
		mins:   make([]expr.Value, nAggs),
		maxs:   make([]expr.Value, nAggs),
		seen:   make([]bool, nAggs),
	}
}

// aggOp is a hash aggregation over single- or multi-column groups. It
// consumes its whole input on the first Next, then serves the grouped
// output in batches.
type aggOp struct {
	input   Operator
	groupBy []int
	aggs    []plan.AggSpec
	schema  *catalog.Schema

	results []expr.Row
	pos     int
	started bool
	out     expr.Batch
}

func (a *aggOp) Schema() *catalog.Schema { return a.schema }

func (a *aggOp) Open(ctx *Ctx) error {
	a.results, a.pos, a.started = nil, 0, false
	return a.input.Open(ctx)
}

func (a *aggOp) Next(ctx *Ctx) (*expr.Batch, error) {
	if !a.started {
		a.started = true
		if err := a.consume(ctx); err != nil {
			return nil, err
		}
	}
	return serveBuffered(ctx, a.results, &a.pos, &a.out), nil
}

// consume drains the input, grouping rows and folding aggregates, then
// materializes one output row per group in first-seen order.
func (a *aggOp) consume(ctx *Ctx) error {
	groups := make(map[string]*aggState)
	order := make([]string, 0, 16) // deterministic emission order (first seen)
	var meter expr.Cost
	var keyBuf []byte

	for {
		in, err := a.input.Next(ctx)
		if err != nil {
			return err
		}
		if in == nil {
			break
		}
		n := float64(in.Len())
		ctx.Charge(cpu.Compute, ctx.Cost.AggCycles*n)
		ctx.Charge(cpu.MemStall, ctx.Cost.AggStallCycles*n)
		for _, row := range in.Rows {
			keyBuf = keyBuf[:0]
			for _, g := range a.groupBy {
				keyBuf = expr.AppendGroupKey(keyBuf, row[g])
			}
			// The map-index conversion lets the compiler elide the key
			// copy on lookup hits; the string is materialized only for
			// first-seen groups.
			st, ok := groups[string(keyBuf)]
			if !ok {
				key := string(keyBuf)
				st = newAggState(len(a.aggs))
				st.groupVals = make(expr.Row, len(a.groupBy))
				for i, g := range a.groupBy {
					st.groupVals[i] = row[g]
				}
				groups[key] = st
				order = append(order, key)
			}
			for i, spec := range a.aggs {
				if spec.Func == plan.Count {
					// COUNT(expr) counts rows where the argument is
					// non-NULL; bare COUNT(*) (nil Arg) counts every row.
					if spec.Arg != nil && spec.Arg.Eval(row, &meter).IsNull() {
						continue
					}
					st.counts[i]++
					continue
				}
				v := spec.Arg.Eval(row, &meter)
				if v.IsNull() {
					continue
				}
				st.counts[i]++
				st.sums[i] += v.AsFloat()
				if !st.seen[i] {
					st.mins[i], st.maxs[i], st.seen[i] = v, v, true
				} else {
					if expr.Compare(v, st.mins[i]) < 0 {
						st.mins[i] = v
					}
					if expr.Compare(v, st.maxs[i]) > 0 {
						st.maxs[i] = v
					}
				}
			}
		}
		ctx.ChargeExpr(&meter)
	}

	if len(a.groupBy) == 0 && len(order) == 0 {
		// A global aggregate always yields one row: COUNT is 0 and the
		// value aggregates are NULL when no input rows arrived.
		groups[""] = newAggState(len(a.aggs))
		order = append(order, "")
	}

	a.results = make([]expr.Row, 0, len(order))
	for _, key := range order {
		st := groups[key]
		out := make(expr.Row, 0, len(a.groupBy)+len(a.aggs))
		out = append(out, st.groupVals...)
		for i, spec := range a.aggs {
			switch spec.Func {
			case plan.Sum:
				// SUM over zero non-NULL inputs is NULL, not 0.
				if st.counts[i] == 0 {
					out = append(out, expr.Null())
					continue
				}
				out = append(out, expr.Float(st.sums[i]))
			case plan.Count:
				out = append(out, expr.Int(st.counts[i]))
			case plan.Min:
				out = append(out, minOrNull(st.seen[i], st.mins[i]))
			case plan.Max:
				out = append(out, minOrNull(st.seen[i], st.maxs[i]))
			case plan.Avg:
				if st.counts[i] == 0 {
					out = append(out, expr.Null())
				} else {
					out = append(out, expr.Float(st.sums[i]/float64(st.counts[i])))
				}
			default:
				panic(fmt.Sprintf("exec: unknown aggregate %v", spec.Func))
			}
		}
		a.results = append(a.results, out)
	}
	ctx.Charge(cpu.Compute, ctx.Cost.AggCycles*float64(len(a.results)))
	ctx.Flush()
	return nil
}

func (a *aggOp) Close(ctx *Ctx) error {
	a.results = nil
	return a.input.Close(ctx)
}

func minOrNull(seen bool, v expr.Value) expr.Value {
	if !seen {
		return expr.Null()
	}
	return v
}

// sortOp materializes its input on the first Next and sorts it, charging
// n·log₂n compares, then serves the ordered rows in batches.
type sortOp struct {
	input Operator
	keys  []plan.SortKey

	rows    []expr.Row
	pos     int
	started bool
	out     expr.Batch
}

func (s *sortOp) Schema() *catalog.Schema { return s.input.Schema() }

func (s *sortOp) Open(ctx *Ctx) error {
	s.rows, s.pos, s.started = nil, 0, false
	return s.input.Open(ctx)
}

func (s *sortOp) Next(ctx *Ctx) (*expr.Batch, error) {
	if !s.started {
		s.started = true
		for {
			in, err := s.input.Next(ctx)
			if err != nil {
				return nil, err
			}
			if in == nil {
				break
			}
			s.rows = append(s.rows, in.Rows...)
		}
		sort.SliceStable(s.rows, func(i, j int) bool {
			for _, k := range s.keys {
				c := expr.Compare(s.rows[i][k.Col], s.rows[j][k.Col])
				if c == 0 {
					continue
				}
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		if n := float64(len(s.rows)); n > 1 {
			ctx.Charge(cpu.Compute, ctx.Cost.SortCmpCycles*n*math.Log2(n))
			ctx.Charge(cpu.MemStall, 0.25*ctx.Cost.SortCmpCycles*n*math.Log2(n))
		}
		ctx.Flush()
	}
	return serveBuffered(ctx, s.rows, &s.pos, &s.out), nil
}

func (s *sortOp) Close(ctx *Ctx) error {
	s.rows = nil
	return s.input.Close(ctx)
}

// limitOp serves the first n rows. The input still runs to completion
// (there are no indices to stop early with), matching the engines under
// study: once the limit is reached the remaining input is drained before
// the final batch is returned.
type limitOp struct {
	input Operator
	n     int

	remaining int
	done      bool
	out       expr.Batch
}

func (l *limitOp) Schema() *catalog.Schema { return l.input.Schema() }

func (l *limitOp) Open(ctx *Ctx) error {
	l.remaining, l.done = l.n, false
	return l.input.Open(ctx)
}

func (l *limitOp) Next(ctx *Ctx) (*expr.Batch, error) {
	if l.done {
		return nil, nil
	}
	for {
		in, err := l.input.Next(ctx)
		if err != nil {
			return nil, err
		}
		if in == nil {
			l.done = true
			return nil, nil
		}
		if l.remaining == 0 {
			continue // past the limit: keep draining the input's work
		}
		keep := in.Rows
		if len(keep) > l.remaining {
			keep = keep[:l.remaining]
		}
		l.remaining -= len(keep)
		if l.remaining > 0 {
			l.out.Rows = keep
			return &l.out, nil
		}
		// Limit reached: copy the final rows out of the input's reusable
		// batch, then drain the rest of the input so its full cost lands
		// inside this query.
		l.out.Rows = append(make([]expr.Row, 0, len(keep)), keep...)
		for {
			rest, err := l.input.Next(ctx)
			if err != nil {
				return nil, err
			}
			if rest == nil {
				break
			}
		}
		l.done = true
		return &l.out, nil
	}
}

func (l *limitOp) Close(ctx *Ctx) error {
	return l.input.Close(ctx)
}

// serveBuffered hands out successive batch-sized windows of rows, advancing
// *pos; it returns nil once all rows are served. The window batch aliases
// rows directly — no copying.
func serveBuffered(ctx *Ctx, rows []expr.Row, pos *int, out *expr.Batch) *expr.Batch {
	if *pos >= len(rows) {
		return nil
	}
	end := *pos + ctx.BatchTarget()
	if end > len(rows) {
		end = len(rows)
	}
	out.Rows = rows[*pos:end:end]
	*pos = end
	return out
}
