package exec

import (
	"fmt"
	"sort"
	"sync"

	"ecodb/internal/catalog"
	"ecodb/internal/expr"
	"ecodb/internal/hw/cpu"
	"ecodb/internal/obsv"
	"ecodb/internal/plan"
	"ecodb/internal/storage"
)

// Operator is a compiled physical operator in the vectorized pull pipeline.
// The driver calls Open once, Next until it returns nil, then Close.
// Operators charge their work to the context batch-at-a-time as they go.
type Operator interface {
	Schema() *catalog.Schema
	// Open prepares the operator and its inputs. Blocking phases (hash
	// build) run here.
	Open(ctx *Ctx) error
	// Next returns the next batch of output rows, or nil at end of
	// stream. The returned batch is owned by the operator, read-only to
	// the caller, and valid only until the following Next call; values
	// gathered out of it are immutable and may be retained.
	Next(ctx *Ctx) (*expr.Batch, error)
	// Close releases operator state. It is idempotent.
	Close(ctx *Ctx) error
}

// Drain runs op to completion — Open, Next until exhausted, Close —
// invoking fn (when non-nil) on every batch. It is the canonical driver
// loop for callers that do not need incremental pulls.
func Drain(ctx *Ctx, op Operator, fn func(*expr.Batch) error) error {
	if err := op.Open(ctx); err != nil {
		return err
	}
	for {
		b, err := op.Next(ctx)
		if err != nil {
			op.Close(ctx)
			return err
		}
		if b == nil {
			break
		}
		if fn != nil {
			if err := fn(b); err != nil {
				op.Close(ctx)
				return err
			}
		}
	}
	return op.Close(ctx)
}

// Compile lowers a logical plan to serial physical operators. Unknown
// node types panic: the operator set is closed. It is the workers=1 case
// of CompileParallel; the single lowering switch lives in compile (see
// parallel.go).
func Compile(n plan.Node) Operator { return CompileParallel(n, 1) }

// scanOp reads a heap page by page through the buffer pool (misses become
// simulated disk reads), charging stream work for page bytes and per-tuple
// interpretation costs once per page, and filtering each page's column
// vectors with the batch-wise evaluator. Output batches are zero-copy
// views of the page's vectors, narrowed by a selection vector when a
// filter is present; they are page-granular (see Next).
type scanOp struct {
	table  *catalog.Table
	filter expr.Expr
	// prune, when non-nil, is the conjunction of filter and downstream
	// filter predicates pushed down for the zone-map skip decision only
	// (compileFused sets it); filtering itself is unchanged. When nil the
	// scan prunes on filter alone.
	prune expr.Expr

	scan   *storage.PageScan
	pruner expr.Expr  // active prune predicate for this execution, or nil
	view   expr.Batch // current page view; Sel points into sel
	sel    []int32
	meter  expr.Cost
}

func (s *scanOp) Schema() *catalog.Schema { return s.table.Schema }

func (s *scanOp) Open(ctx *Ctx) error {
	s.scan = storage.NewPageScan(s.table.Heap, s.table.Name, ctx.Pool)
	p := s.prune
	if p == nil {
		p = s.filter
	}
	s.pruner = prunePredicate(p)
	return nil
}

// Next surfaces pages until one survives the filter, charging page costs
// as it goes. Batches are page-granular (a batch never spans a page
// boundary) and the accumulated work is flushed to the CPU at the top of
// each page step — by which point downstream operators have charged their
// work for the previous batch — so every flushed power-trace window holds
// one page's worth of whole-pipeline work, exactly as the row-at-a-time
// engine's page loop produced it. The 1 Hz GUI-sampled energies of the
// paper's methodology depend on that microstructure; batch sizes above a
// page's row count would change it. Pages hold ~10²–10³ rows, plenty to
// amortize per-batch overhead.
func (s *scanOp) Next(ctx *Ctx) (*expr.Batch, error) {
	for {
		ctx.Flush() // close the previous page's pipeline-wide cost window
		if s.pruner != nil {
			if zones, ok := s.scan.PeekZones(); ok {
				ctx.chargeZoneCheck()
				if len(zones) > 0 && expr.ZonePrunes(s.pruner, zones) {
					s.scan.Skip()
					obsv.PagesPruned.Inc()
					if ctx.Obs != nil {
						ctx.Obs.PagePruned()
					}
					continue
				}
			}
		}
		bytes, nRows, ok := s.scan.ReadInto(&s.view)
		if !ok {
			return nil, nil
		}
		ctx.chargePageStream(bytes)
		ctx.chargePageTuples(nRows)
		if s.filter != nil {
			s.sel = expr.FilterBatch(s.filter, &s.view, s.sel, &s.meter)
			ctx.ChargeExpr(&s.meter)
			if len(s.sel) == 0 {
				continue
			}
			s.view.Sel = s.sel
		}
		return &s.view, nil
	}
}

func (s *scanOp) Close(*Ctx) error {
	s.scan, s.sel, s.pruner = nil, nil, nil
	s.view = expr.Batch{}
	return nil
}

// fusedOp runs a chain of adjacent filter/project stages as one operator —
// operator fusion: every stage of a batch runs back to back over the same
// column vectors with no per-stage operator dispatch, filters narrowing
// the selection vector in place of copying rows and projections writing
// fresh vectors. Cycle charging is per stage, in pipeline order, exactly
// as the unfused filter/project operators charged.
type fusedOp struct {
	input  Operator
	stages []fragStage
	schema *catalog.Schema

	views  []expr.Batch // per stage: filter view or owned project output
	sels   [][]int32    // per filter stage: reused selection buffer
	meters []expr.Cost
}

func (f *fusedOp) Schema() *catalog.Schema { return f.schema }

func (f *fusedOp) Open(ctx *Ctx) error {
	f.views = make([]expr.Batch, len(f.stages))
	f.sels = make([][]int32, len(f.stages))
	f.meters = make([]expr.Cost, len(f.stages))
	for i, st := range f.stages {
		if st.exprs != nil {
			f.views[i] = *expr.NewBatch(len(st.exprs))
		}
	}
	return f.input.Open(ctx)
}

func (f *fusedOp) Next(ctx *Ctx) (*expr.Batch, error) {
	for {
		in, err := f.input.Next(ctx)
		if err != nil || in == nil {
			return nil, err
		}
		cur := in
		for i := range f.stages {
			st := &f.stages[i]
			m := &f.meters[i]
			if st.pred != nil {
				f.sels[i] = expr.FilterBatch(st.pred, cur, f.sels[i], m)
				ctx.ChargeExpr(m)
				v := &f.views[i]
				v.Alias(cur, f.sels[i])
				cur = v
			} else {
				out := &f.views[i]
				for c := range st.exprs {
					expr.EvalBatch(st.exprs[c], cur, &out.Cols[c], m)
				}
				out.N, out.Sel = cur.Len(), nil
				ctx.ChargeExpr(m)
				cur = out
			}
			if cur.Len() == 0 {
				break
			}
		}
		if cur.Len() > 0 {
			return cur, nil
		}
	}
}

func (f *fusedOp) Close(ctx *Ctx) error {
	f.views, f.sels, f.meters = nil, nil, nil
	return f.input.Close(ctx)
}

// hashJoinOp materializes the build side into a hash table keyed on a
// single column during Open, then streams the probe side batch by batch.
// With workers > 1 the table is radix-partitioned by key hash and each
// worker builds one partition — the build side's real construction cost
// spreads across cores. When the probe side is itself a pure
// scan→filter→project fragment and workers > 1, the probe also
// parallelizes: probe-side morsels stream through per-worker probe
// fragments against the completed read-only partitions and merge back in
// page order (parallel_join.go). Output rows are buildRow ++ probeRow,
// assembled columnar into the output batch; an optional residual predicate
// filters matches.
type hashJoinOp struct {
	build, probe       Operator // probe is nil when probeFrag is set
	buildKey, probeKey int
	residual           expr.Expr
	schema             *catalog.Schema
	workers            int

	// probeFrag, when non-nil, is the probe side lowered as a morsel
	// fragment for the merged parallel probe; probeLabel is the span label
	// the equivalent serial probe leaf would have carried.
	probeFrag  *fragment
	probeLabel string
	pump       morselPump
	probeSpan  *obsv.Span

	// parts are the partitioned build tables: a key's partition is
	// HashValue(key) mod len(parts), so every key lives wholly in one
	// partition and a probe looks up exactly one map. With one partition
	// (workers <= 1, or a build side too small to be worth splitting) no
	// hashes are computed at all. After Open the partitions are read-only,
	// which is what lets probe workers share them without locks.
	parts   []map[expr.Value][]expr.Row
	scratch probeScratch
}

// probeScratch is one probe consumer's private state: the output batch
// under assembly plus reusable row/hash buffers and the residual-predicate
// meter. The serial probe owns one; each merged-probe morsel worker owns
// its own, so workers never share mutable state.
type probeScratch struct {
	out      *expr.Batch
	probeRow expr.Row
	catRow   expr.Row
	hashBuf  []uint64 // reused per-batch probe-key hashes (partitioned probes)
	meter    expr.Cost
}

// minPartitionBuildRows is the build-side size below which the partitioned
// build is not worth it: splitting a dimension-table build across workers
// saves microseconds while charging every probe row one HashValue call to
// pick a partition. Below the threshold the join keeps the serial
// single-map build and the probe's native one-map lookup.
const minPartitionBuildRows = 8192

func (j *hashJoinOp) Schema() *catalog.Schema { return j.schema }

// Open drains the build side, charging build work per batch exactly as the
// single-table build did, then — at workers > 1 — constructs the
// partitioned hash tables in parallel. The serial path inserts rows
// directly during the drain, as it always has; the parallel path only
// copies each batch columnar during the drain (a bulk payload copy —
// batches are valid only until the next pull) and defers row
// materialization, key hashing, and table insertion to the partition
// workers. Simulated accounting happens entirely during the drain (table
// construction is real work only), so results, durations, and joules are
// identical across worker counts; per-key row lists keep global build
// order because every partition builder scans the drained batches in
// order. NULL keys never enter a table: NULL never equals NULL under join
// semantics (Cmp.Eval returns false on NULL), so they could never meet a
// NULL probe key.
func (j *hashJoinOp) Open(ctx *Ctx) error {
	j.scratch.out = expr.NewBatch(j.schema.NumCols())
	if err := j.build.Open(ctx); err != nil {
		return err
	}
	parallel := j.workers > 1
	var chunks []*expr.Batch
	var table map[expr.Value][]expr.Row
	buildRows := 0
	if !parallel {
		table = make(map[expr.Value][]expr.Row)
	}
	for {
		b, err := j.build.Next(ctx)
		if err != nil {
			j.build.Close(ctx)
			return err
		}
		if b == nil {
			break
		}
		buildRows += b.Len()
		if parallel {
			c := expr.NewBatch(b.Width())
			c.AppendBatch(b, b.Len())
			chunks = append(chunks, c)
		} else {
			for _, row := range b.Rows() {
				if k := row[j.buildKey]; !k.IsNull() {
					table[k] = append(table[k], row)
				}
			}
		}
		n := float64(b.Len())
		ctx.Charge(cpu.Compute, ctx.Cost.BuildCycles*n)
		ctx.Charge(cpu.MemStall, ctx.Cost.BuildStallCycles*n)
	}
	if err := j.build.Close(ctx); err != nil {
		return err
	}
	ctx.Flush()
	switch {
	case parallel && buildRows >= minPartitionBuildRows:
		j.buildPartitions(chunks)
	case parallel:
		// Too small to split: one map, built inline, probed natively.
		table = make(map[expr.Value][]expr.Row, buildRows)
		for _, c := range chunks {
			for _, row := range c.Rows() {
				if k := row[j.buildKey]; !k.IsNull() {
					table[k] = append(table[k], row)
				}
			}
		}
		fallthrough
	default:
		j.parts = []map[expr.Value][]expr.Row{table}
	}
	if j.probeFrag != nil {
		j.openMergedProbe(ctx)
		return nil
	}
	return j.probe.Open(ctx)
}

// buildPartitions constructs the partitioned build tables from the drained
// build-side batches, one partition per worker.
func (j *hashJoinOp) buildPartitions(chunks []*expr.Batch) {
	p := j.workers
	j.parts = make([]map[expr.Value][]expr.Row, p)

	// Phase 1: materialize rows and bucket each chunk's row indices by
	// key-hash partition, chunks striped across workers. Each chunk's
	// columnar copy is dropped as soon as its rows are materialized, so
	// the copies and the row forms overlap per chunk, not for the whole
	// build side. NULL-key rows enter no bucket.
	rows := make([][]expr.Row, len(chunks))
	buckets := make([][][]int32, len(chunks)) // per chunk, per partition
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for c := w; c < len(chunks); c += p {
				rs := chunks[c].Rows()
				chunks[c] = nil
				bk := make([][]int32, p)
				for i, row := range rs {
					if k := row[j.buildKey]; !k.IsNull() {
						part := expr.HashValue(k) % uint64(p)
						bk[part] = append(bk[part], int32(i))
					}
				}
				rows[c], buckets[c] = rs, bk
			}
		}(w)
	}
	wg.Wait()

	// Phase 2: one worker per partition, each walking only its own index
	// buckets — O(n) insertion work in total, not O(workers·n) — with
	// chunks in order and indices ascending, so per-key insertion order
	// is chunk order × row order, identical to the single-table build.
	for part := 0; part < p; part++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			table := make(map[expr.Value][]expr.Row)
			for c := range rows {
				for _, i := range buckets[c][part] {
					row := rows[c][i]
					table[row[j.buildKey]] = append(table[row[j.buildKey]], row)
				}
			}
			j.parts[part] = table
		}(part)
	}
	wg.Wait()
}

func (j *hashJoinOp) Next(ctx *Ctx) (*expr.Batch, error) {
	if j.probeFrag != nil {
		return j.mergedNext(ctx)
	}
	for {
		in, err := j.probe.Next(ctx)
		if err != nil || in == nil {
			return nil, err
		}
		ctx.Charge(cpu.Compute, ctx.Cost.ProbeCycles*float64(in.Len()))
		ctx.Charge(cpu.MemStall, ctx.Cost.ProbeStallCycles*float64(in.Len()))
		matches := j.probeBatch(in, &j.scratch)
		ctx.Charge(cpu.Compute, ctx.Cost.MatchCycles*float64(matches))
		ctx.ChargeExpr(&j.scratch.meter)
		if j.scratch.out.Len() > 0 {
			return j.scratch.out, nil
		}
	}
}

// probeBatch probes one input batch against the completed (read-only)
// partitions, assembling matches into ps.out, and returns the raw match
// count. It charges nothing: the residual predicate meters into ps.meter
// and the caller charges probe/match work, so the serial Next and the
// merged probe's workers share one probe implementation while only the
// coordinator touches the simulated machine.
func (j *hashJoinOp) probeBatch(in *expr.Batch, ps *probeScratch) int {
	ps.out.Reset()
	matches := 0
	kvec := &in.Cols[j.probeKey]
	// Partitioned probes hash the whole batch's keys up front in one
	// vectorized pass over the key column's payload (expr.HashVec)
	// instead of one HashValue interpreter call per row; hashes — and
	// therefore partition choices and results — are bit-identical.
	var hashes []uint64
	if len(j.parts) > 1 {
		ps.hashBuf = expr.HashVec(kvec, in.Sel, ps.hashBuf[:0])
		hashes = ps.hashBuf
	}
	for li, n := 0, in.Len(); li < n; li++ {
		k := kvec.Get(in.RowIdx(li))
		if k.IsNull() {
			continue
		}
		var hits []expr.Row
		if hashes != nil {
			hits = j.parts[hashes[li]%uint64(len(j.parts))][k]
		} else {
			hits = j.parts[0][k]
		}
		if len(hits) == 0 {
			continue
		}
		ps.probeRow = in.Row(li, ps.probeRow)
		for _, b := range hits {
			matches++
			ps.catRow = append(append(ps.catRow[:0], b...), ps.probeRow...)
			if j.residual != nil && !j.residual.Eval(ps.catRow, &ps.meter).Truthy() {
				continue
			}
			ps.out.AppendRow(ps.catRow)
		}
	}
	return matches
}

func (j *hashJoinOp) Close(ctx *Ctx) error {
	if j.probeFrag != nil {
		// Stop the probe workers before releasing the partitions they read.
		j.pump.close()
		j.parts, j.scratch.out = nil, nil
		return nil
	}
	j.parts, j.scratch.out = nil, nil
	return j.probe.Close(ctx)
}

// aggState accumulates one group. The same accumulator serves both the
// serial path and the parallel path's morsel-run partials, so the NULL,
// COUNT, and MIN/MAX tie semantics can never diverge between them: a
// partial (see newAggPartial) sets needVals to divert SUM/AVG argument
// values into ordered per-group lists (vals) instead of folding them into
// sums — float addition is not associative, so only the coordinator may
// add them, in global row order.
type aggState struct {
	groupVals expr.Row
	sums      []float64
	counts    []int64
	mins      []expr.Value
	maxs      []expr.Value
	seen      []bool
	vals      [][]float64 // partials only: ordered values per diverted aggregate
	needVals  []bool      // nil on the serial/coordinator accumulator
}

// newAggState returns a zeroed accumulator for nAggs aggregates.
func newAggState(nAggs int) *aggState {
	return &aggState{
		sums:   make([]float64, nAggs),
		counts: make([]int64, nAggs),
		mins:   make([]expr.Value, nAggs),
		maxs:   make([]expr.Value, nAggs),
		seen:   make([]bool, nAggs),
	}
}

// aggArgVecs allocates the reused argument vectors for a set of aggregate
// specs: one per spec with an argument expression, nil for bare COUNT(*).
func aggArgVecs(aggs []plan.AggSpec) []*expr.ColVec {
	vecs := make([]*expr.ColVec, len(aggs))
	for i, spec := range aggs {
		if spec.Arg != nil {
			vecs[i] = &expr.ColVec{}
		}
	}
	return vecs
}

// evalAggArgs evaluates every aggregate argument over the batch into its
// reused vector — batch-wise, charging exactly what per-row Eval charges.
func evalAggArgs(in *expr.Batch, aggs []plan.AggSpec, argVecs []*expr.ColVec, meter *expr.Cost) {
	for i, spec := range aggs {
		if spec.Arg != nil {
			expr.EvalBatch(spec.Arg, in, argVecs[i], meter)
		}
	}
}

// accumulate folds logical row li's evaluated aggregate arguments into st.
// Accumulation order across calls must follow global row order: SUM and AVG
// add floats, and float addition is not associative, so any reordering
// would change result bits.
func (st *aggState) accumulate(aggs []plan.AggSpec, argVecs []*expr.ColVec, li int) {
	for i := range aggs {
		if aggs[i].Func == plan.Count {
			// COUNT(expr) counts rows where the argument is non-NULL;
			// bare COUNT(*) (nil Arg) counts every row.
			if argVecs[i] != nil && argVecs[i].IsNull(li) {
				continue
			}
			st.counts[i]++
			continue
		}
		v := argVecs[i].Get(li)
		if v.IsNull() {
			continue
		}
		st.counts[i]++
		if st.needVals != nil && st.needVals[i] {
			st.vals[i] = append(st.vals[i], v.AsFloat())
		} else {
			st.sums[i] += v.AsFloat()
		}
		if !st.seen[i] {
			st.mins[i], st.maxs[i], st.seen[i] = v, v, true
		} else {
			if expr.Compare(v, st.mins[i]) < 0 {
				st.mins[i] = v
			}
			if expr.Compare(v, st.maxs[i]) > 0 {
				st.maxs[i] = v
			}
		}
	}
}

// sortedGroupKeys returns the group table's keys in ascending encoded-byte
// order — the single deterministic emission order shared by the serial and
// parallel aggregation paths, so output order is a pure function of the
// group set (never of map iteration, input order, or worker count).
func sortedGroupKeys(groups map[string]*aggState) []string {
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// buildAggRows materializes one output row per group, in the order keys
// dictates.
func buildAggRows(groups map[string]*aggState, keys []string, groupBy []int, aggs []plan.AggSpec) []expr.Row {
	results := make([]expr.Row, 0, len(keys))
	for _, key := range keys {
		st := groups[key]
		out := make(expr.Row, 0, len(groupBy)+len(aggs))
		out = append(out, st.groupVals...)
		for i, spec := range aggs {
			switch spec.Func {
			case plan.Sum:
				// SUM over zero non-NULL inputs is NULL, not 0.
				if st.counts[i] == 0 {
					out = append(out, expr.Null())
					continue
				}
				out = append(out, expr.Float(st.sums[i]))
			case plan.Count:
				out = append(out, expr.Int(st.counts[i]))
			case plan.Min:
				out = append(out, minOrNull(st.seen[i], st.mins[i]))
			case plan.Max:
				out = append(out, minOrNull(st.seen[i], st.maxs[i]))
			case plan.Avg:
				if st.counts[i] == 0 {
					out = append(out, expr.Null())
				} else {
					out = append(out, expr.Float(st.sums[i]/float64(st.counts[i])))
				}
			default:
				panic(fmt.Sprintf("exec: unknown aggregate %v", spec.Func))
			}
		}
		results = append(results, out)
	}
	return results
}

// finishAggGroups applies the global-aggregate guarantee (one output row
// even with no input), fixes the deterministic emission order, and
// materializes the result rows — the shared tail of the serial and
// parallel aggregation paths.
func finishAggGroups(groups map[string]*aggState, groupBy []int, aggs []plan.AggSpec) []expr.Row {
	if len(groupBy) == 0 && len(groups) == 0 {
		// A global aggregate always yields one row: COUNT is 0 and the
		// value aggregates are NULL when no input rows arrived.
		groups[""] = newAggState(len(aggs))
	}
	return buildAggRows(groups, sortedGroupKeys(groups), groupBy, aggs)
}

// aggOp is a hash aggregation over single- or multi-column groups. It
// consumes its whole input on the first Next, then serves the grouped
// output in batches.
type aggOp struct {
	input   Operator
	groupBy []int
	aggs    []plan.AggSpec
	schema  *catalog.Schema

	results []expr.Row
	pos     int
	started bool
	out     expr.Batch
}

func (a *aggOp) Schema() *catalog.Schema { return a.schema }

func (a *aggOp) Open(ctx *Ctx) error {
	a.results, a.pos, a.started = nil, 0, false
	a.out = *expr.NewBatch(a.schema.NumCols())
	return a.input.Open(ctx)
}

func (a *aggOp) Next(ctx *Ctx) (*expr.Batch, error) {
	if !a.started {
		a.started = true
		if err := a.consume(ctx); err != nil {
			return nil, err
		}
	}
	return serveBuffered(ctx, a.results, &a.pos, &a.out), nil
}

// consume drains the input, grouping rows and folding aggregates, then
// materializes one output row per group in sorted group-key order. The
// batch is consumed straight from its column payloads: group keys are
// encoded column-wise by expr.GroupKeys and aggregate arguments evaluate
// batch-wise into reused vectors, so no scratch row is ever gathered —
// the per-tuple work left is one hash-table probe and the accumulator
// folds.
func (a *aggOp) consume(ctx *Ctx) error {
	groups := make(map[string]*aggState)
	var meter expr.Cost
	var keys expr.GroupKeys
	argVecs := aggArgVecs(a.aggs)

	for {
		in, err := a.input.Next(ctx)
		if err != nil {
			return err
		}
		if in == nil {
			break
		}
		n := float64(in.Len())
		ctx.Charge(cpu.Compute, ctx.Cost.AggCycles*n)
		ctx.Charge(cpu.MemStall, ctx.Cost.AggStallCycles*n)
		keys.Build(in, a.groupBy)
		evalAggArgs(in, a.aggs, argVecs, &meter)
		for li, nr := 0, in.Len(); li < nr; li++ {
			// The map-index conversion lets the compiler elide the key
			// copy on lookup hits; the string is materialized only for
			// first-seen groups.
			st, ok := groups[string(keys.Key(li))]
			if !ok {
				key := string(keys.Key(li))
				st = newAggState(len(a.aggs))
				st.groupVals = make(expr.Row, len(a.groupBy))
				for i, g := range a.groupBy {
					st.groupVals[i] = in.Cols[g].Get(in.RowIdx(li))
				}
				groups[key] = st
			}
			st.accumulate(a.aggs, argVecs, li)
		}
		ctx.ChargeExpr(&meter)
	}

	a.results = finishAggGroups(groups, a.groupBy, a.aggs)
	ctx.Charge(cpu.Compute, ctx.Cost.AggCycles*float64(len(a.results)))
	ctx.Flush()
	return nil
}

func (a *aggOp) Close(ctx *Ctx) error {
	a.results = nil
	return a.input.Close(ctx)
}

func minOrNull(seen bool, v expr.Value) expr.Value {
	if !seen {
		return expr.Null()
	}
	return v
}

// sortCmp orders physical row i of batch a against physical row j of batch
// b under keys, returning a negative value when a's row sorts first. Keys
// compare with expr.Compare (NULL smallest, so ASC puts NULLs first and
// DESC puts them last); ties return 0 and callers break them on arrival
// order — stability for the serial sort, the global row ordinal for the
// parallel sort — which is what keeps every path's output byte-identical.
func sortCmp(keys []plan.SortKey, a *expr.Batch, i int32, b *expr.Batch, j int32) int {
	for _, k := range keys {
		c := expr.Compare(a.Cols[k.Col].Get(int(i)), b.Cols[k.Col].Get(int(j)))
		if c == 0 {
			continue
		}
		if k.Desc {
			return -c
		}
		return c
	}
	return 0
}

// sortOp materializes its input on the first Next and sorts it, charging
// n·log₂n compares, then serves the ordered rows in columnar batches. The
// input is copied columnar into an owned buffer and ordered through a
// permutation, so serving gathers typed ColVec batches straight from the
// buffer — downstream consumers keep their columnar fast paths instead of
// receiving re-rowified batches.
type sortOp struct {
	input Operator
	keys  []plan.SortKey

	buf     expr.Batch
	perm    []int32
	pos     int
	started bool
	out     expr.Batch
}

func (s *sortOp) Schema() *catalog.Schema { return s.input.Schema() }

func (s *sortOp) Open(ctx *Ctx) error {
	s.buf = *expr.NewBatch(s.input.Schema().NumCols())
	s.perm, s.pos, s.started = nil, 0, false
	s.out = *expr.NewBatch(s.input.Schema().NumCols())
	return s.input.Open(ctx)
}

func (s *sortOp) Next(ctx *Ctx) (*expr.Batch, error) {
	if !s.started {
		s.started = true
		for {
			in, err := s.input.Next(ctx)
			if err != nil {
				return nil, err
			}
			if in == nil {
				break
			}
			s.buf.AppendBatch(in, in.Len())
		}
		// A stable sort over the identity permutation is equivalent to the
		// stable sort over the rows themselves: equal keys keep arrival
		// order.
		s.perm = make([]int32, s.buf.Len())
		for i := range s.perm {
			s.perm[i] = int32(i)
		}
		sort.SliceStable(s.perm, func(i, j int) bool {
			return sortCmp(s.keys, &s.buf, s.perm[i], &s.buf, s.perm[j]) < 0
		})
		obsv.SortRows.Add(int64(s.buf.Len()))
		ctx.chargeSort(float64(s.buf.Len()))
		ctx.Flush()
	}
	return serveSorted(ctx, &s.buf, s.perm, &s.pos, &s.out), nil
}

func (s *sortOp) Close(ctx *Ctx) error {
	s.buf, s.perm = expr.Batch{}, nil
	return s.input.Close(ctx)
}

// limitOp serves the first n rows. The input still runs to completion
// (there are no indices to stop early with), matching the engines under
// study: once the limit is reached the remaining input is drained before
// the final batch is returned.
type limitOp struct {
	input Operator
	n     int

	remaining int
	done      bool
	identSel  []int32 // identity selection for prefix views of dense input
	out       expr.Batch
	final     expr.Batch
}

func (l *limitOp) Schema() *catalog.Schema { return l.input.Schema() }

func (l *limitOp) Open(ctx *Ctx) error {
	l.remaining, l.done = l.n, false
	l.final = *expr.NewBatch(l.input.Schema().NumCols())
	return l.input.Open(ctx)
}

func (l *limitOp) Next(ctx *Ctx) (*expr.Batch, error) {
	if l.done {
		return nil, nil
	}
	for {
		in, err := l.input.Next(ctx)
		if err != nil {
			return nil, err
		}
		if in == nil {
			l.done = true
			return nil, nil
		}
		if l.remaining == 0 {
			continue // past the limit: keep draining the input's work
		}
		keep := in.Len()
		if keep > l.remaining {
			keep = l.remaining
		}
		l.remaining -= keep
		if l.remaining > 0 {
			// Mid-stream: a zero-copy prefix view of the input batch.
			if in.Sel != nil {
				l.out.Alias(in, in.Sel[:keep])
			} else {
				for i := len(l.identSel); i < keep; i++ {
					l.identSel = append(l.identSel, int32(i))
				}
				l.out.Alias(in, l.identSel[:keep])
			}
			return &l.out, nil
		}
		// Limit reached: copy the final rows out of the input's reusable
		// batch, then drain the rest of the input so its full cost lands
		// inside this query.
		l.final.Reset()
		l.final.AppendBatch(in, keep)
		for {
			rest, err := l.input.Next(ctx)
			if err != nil {
				return nil, err
			}
			if rest == nil {
				break
			}
		}
		l.done = true
		return &l.final, nil
	}
}

func (l *limitOp) Close(ctx *Ctx) error {
	return l.input.Close(ctx)
}

// serveBuffered hands out successive batch-sized windows of buffered rows
// rebuilt columnar into out, advancing *pos; it returns nil once all rows
// are served.
func serveBuffered(ctx *Ctx, rows []expr.Row, pos *int, out *expr.Batch) *expr.Batch {
	if *pos >= len(rows) {
		return nil
	}
	end := *pos + ctx.BatchTarget()
	if end > len(rows) {
		end = len(rows)
	}
	out.Reset()
	for _, r := range rows[*pos:end] {
		out.AppendRow(r)
	}
	*pos = end
	return out
}

// serveSorted hands out successive batch-sized windows of a sorted
// permutation, gathered columnar from the sort buffer into out; it returns
// nil once all rows are served.
func serveSorted(ctx *Ctx, buf *expr.Batch, perm []int32, pos *int, out *expr.Batch) *expr.Batch {
	if *pos >= len(perm) {
		return nil
	}
	end := *pos + ctx.BatchTarget()
	if end > len(perm) {
		end = len(perm)
	}
	out.Reset()
	for c := range out.Cols {
		out.Cols[c].AppendFrom(&buf.Cols[c], perm[*pos:end])
	}
	out.N = end - *pos
	*pos = end
	return out
}
