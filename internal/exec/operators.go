package exec

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ecodb/internal/catalog"
	"ecodb/internal/expr"
	"ecodb/internal/hw/cpu"
	"ecodb/internal/plan"
	"ecodb/internal/storage"
)

// Operator is a compiled physical operator. Run pushes output rows into
// emit; operators charge their work to the context as they go.
type Operator interface {
	Schema() *catalog.Schema
	Run(ctx *Ctx, emit func(expr.Row))
}

// Compile lowers a logical plan to physical operators. Unknown node types
// panic: the operator set is closed.
func Compile(n plan.Node) Operator {
	switch n := n.(type) {
	case *plan.Scan:
		return &scanOp{table: n.Table, filter: n.Filter}
	case *plan.Filter:
		return &filterOp{input: Compile(n.Input), pred: n.Pred}
	case *plan.HashJoin:
		return &hashJoinOp{
			build: Compile(n.Build), probe: Compile(n.Probe),
			buildKey: n.BuildKey, probeKey: n.ProbeKey,
			residual: n.Residual, schema: n.Schema(),
		}
	case *plan.Project:
		return &projectOp{input: Compile(n.Input), exprs: n.Exprs, schema: n.Schema()}
	case *plan.Agg:
		return &aggOp{input: Compile(n.Input), groupBy: n.GroupBy, aggs: n.Aggs, schema: n.Schema()}
	case *plan.Sort:
		return &sortOp{input: Compile(n.Input), keys: n.Keys}
	case *plan.Limit:
		return &limitOp{input: Compile(n.Input), n: n.N}
	default:
		panic(fmt.Sprintf("exec: cannot compile %T", n))
	}
}

// scanOp reads a heap page by page, touching the buffer pool (misses become
// simulated disk reads), charging stream work for page bytes and per-tuple
// interpretation costs, and applying its filter.
type scanOp struct {
	table  *catalog.Table
	filter expr.Expr
}

func (s *scanOp) Schema() *catalog.Schema { return s.table.Schema }

func (s *scanOp) Run(ctx *Ctx, emit func(expr.Row)) {
	heap := s.table.Heap
	var meter expr.Cost
	for i := 0; i < heap.NumPages(); i++ {
		page := heap.Page(i)
		if ctx.Pool != nil {
			ctx.Pool.Access(storage.PageID{Table: s.table.Name, Index: i}, page.Bytes)
		}
		if ctx.PageHook != nil {
			ctx.PageHook()
		}
		ctx.Charge(cpu.Stream, ctx.Cost.PageStreamCyclesPerKB*float64(page.Bytes)/1024)
		nRows := float64(len(page.Rows))
		ctx.Charge(cpu.Compute, ctx.Cost.ScanTupleCycles*nRows)
		ctx.Charge(cpu.MemStall, ctx.Cost.ScanTupleStallCycles*nRows)
		for _, row := range page.Rows {
			if s.filter != nil && !s.filter.Eval(row, &meter).Truthy() {
				continue
			}
			emit(row)
		}
		ctx.ChargeExpr(&meter)
		ctx.Flush()
	}
}

// filterOp drops rows failing the predicate.
type filterOp struct {
	input Operator
	pred  expr.Expr
}

func (f *filterOp) Schema() *catalog.Schema { return f.input.Schema() }

func (f *filterOp) Run(ctx *Ctx, emit func(expr.Row)) {
	var meter expr.Cost
	f.input.Run(ctx, func(row expr.Row) {
		ok := f.pred.Eval(row, &meter).Truthy()
		ctx.ChargeExpr(&meter)
		if ok {
			emit(row)
		}
	})
}

// hashJoinOp materializes the build side into a hash table keyed on a
// single column, then streams the probe side. Output rows are
// buildRow ++ probeRow; an optional residual predicate filters matches.
type hashJoinOp struct {
	build, probe       Operator
	buildKey, probeKey int
	residual           expr.Expr
	schema             *catalog.Schema
}

func (j *hashJoinOp) Schema() *catalog.Schema { return j.schema }

func (j *hashJoinOp) Run(ctx *Ctx, emit func(expr.Row)) {
	// Build phase.
	table := make(map[expr.Value][]expr.Row)
	j.build.Run(ctx, func(row expr.Row) {
		k := row[j.buildKey]
		table[k] = append(table[k], row)
		ctx.Charge(cpu.Compute, ctx.Cost.BuildCycles)
		ctx.Charge(cpu.MemStall, ctx.Cost.BuildStallCycles)
	})
	ctx.Flush()

	// Probe phase.
	var meter expr.Cost
	buildWidth := j.build.Schema().NumCols()
	probeWidth := j.probe.Schema().NumCols()
	j.probe.Run(ctx, func(row expr.Row) {
		ctx.Charge(cpu.Compute, ctx.Cost.ProbeCycles)
		ctx.Charge(cpu.MemStall, ctx.Cost.ProbeStallCycles)
		matches, ok := table[row[j.probeKey]]
		if !ok {
			return
		}
		for _, b := range matches {
			out := make(expr.Row, 0, buildWidth+probeWidth)
			out = append(out, b...)
			out = append(out, row...)
			ctx.Charge(cpu.Compute, ctx.Cost.MatchCycles)
			if j.residual != nil {
				keep := j.residual.Eval(out, &meter).Truthy()
				ctx.ChargeExpr(&meter)
				if !keep {
					continue
				}
			}
			emit(out)
		}
	})
}

// projectOp computes output expressions per row.
type projectOp struct {
	input  Operator
	exprs  []expr.Expr
	schema *catalog.Schema
}

func (p *projectOp) Schema() *catalog.Schema { return p.schema }

func (p *projectOp) Run(ctx *Ctx, emit func(expr.Row)) {
	var meter expr.Cost
	p.input.Run(ctx, func(row expr.Row) {
		out := make(expr.Row, len(p.exprs))
		for i, e := range p.exprs {
			out[i] = e.Eval(row, &meter)
		}
		ctx.ChargeExpr(&meter)
		emit(out)
	})
}

// aggState accumulates one group.
type aggState struct {
	groupVals expr.Row
	sums      []float64
	counts    []int64
	mins      []expr.Value
	maxs      []expr.Value
	seen      []bool
}

// aggOp is a hash aggregation over single- or multi-column groups.
type aggOp struct {
	input   Operator
	groupBy []int
	aggs    []plan.AggSpec
	schema  *catalog.Schema
}

func (a *aggOp) Schema() *catalog.Schema { return a.schema }

func (a *aggOp) Run(ctx *Ctx, emit func(expr.Row)) {
	groups := make(map[string]*aggState)
	order := make([]string, 0, 16) // deterministic emission order (first seen)
	var meter expr.Cost
	var keyBuf strings.Builder

	a.input.Run(ctx, func(row expr.Row) {
		ctx.Charge(cpu.Compute, ctx.Cost.AggCycles)
		ctx.Charge(cpu.MemStall, ctx.Cost.AggStallCycles)

		keyBuf.Reset()
		for _, g := range a.groupBy {
			keyBuf.WriteString(row[g].String())
			keyBuf.WriteByte('\x00')
		}
		key := keyBuf.String()
		st, ok := groups[key]
		if !ok {
			st = &aggState{
				sums:   make([]float64, len(a.aggs)),
				counts: make([]int64, len(a.aggs)),
				mins:   make([]expr.Value, len(a.aggs)),
				maxs:   make([]expr.Value, len(a.aggs)),
				seen:   make([]bool, len(a.aggs)),
			}
			st.groupVals = make(expr.Row, len(a.groupBy))
			for i, g := range a.groupBy {
				st.groupVals[i] = row[g]
			}
			groups[key] = st
			order = append(order, key)
		}
		for i, spec := range a.aggs {
			if spec.Func == plan.Count {
				st.counts[i]++
				continue
			}
			v := spec.Arg.Eval(row, &meter)
			if v.IsNull() {
				continue
			}
			st.counts[i]++
			st.sums[i] += v.AsFloat()
			if !st.seen[i] {
				st.mins[i], st.maxs[i], st.seen[i] = v, v, true
			} else {
				if expr.Compare(v, st.mins[i]) < 0 {
					st.mins[i] = v
				}
				if expr.Compare(v, st.maxs[i]) > 0 {
					st.maxs[i] = v
				}
			}
		}
		ctx.ChargeExpr(&meter)
	})

	for _, key := range order {
		st := groups[key]
		out := make(expr.Row, 0, len(a.groupBy)+len(a.aggs))
		out = append(out, st.groupVals...)
		for i, spec := range a.aggs {
			switch spec.Func {
			case plan.Sum:
				out = append(out, expr.Float(st.sums[i]))
			case plan.Count:
				out = append(out, expr.Int(st.counts[i]))
			case plan.Min:
				out = append(out, minOrNull(st.seen[i], st.mins[i]))
			case plan.Max:
				out = append(out, minOrNull(st.seen[i], st.maxs[i]))
			case plan.Avg:
				if st.counts[i] == 0 {
					out = append(out, expr.Null())
				} else {
					out = append(out, expr.Float(st.sums[i]/float64(st.counts[i])))
				}
			default:
				panic(fmt.Sprintf("exec: unknown aggregate %v", spec.Func))
			}
		}
		ctx.Charge(cpu.Compute, ctx.Cost.AggCycles)
		emit(out)
	}
	ctx.Flush()
}

func minOrNull(seen bool, v expr.Value) expr.Value {
	if !seen {
		return expr.Null()
	}
	return v
}

// sortOp materializes its input and sorts it, charging n·log₂n compares.
type sortOp struct {
	input Operator
	keys  []plan.SortKey
}

func (s *sortOp) Schema() *catalog.Schema { return s.input.Schema() }

func (s *sortOp) Run(ctx *Ctx, emit func(expr.Row)) {
	var rows []expr.Row
	s.input.Run(ctx, func(row expr.Row) { rows = append(rows, row) })

	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range s.keys {
			c := expr.Compare(rows[i][k.Col], rows[j][k.Col])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if n := float64(len(rows)); n > 1 {
		ctx.Charge(cpu.Compute, ctx.Cost.SortCmpCycles*n*math.Log2(n))
		ctx.Charge(cpu.MemStall, 0.25*ctx.Cost.SortCmpCycles*n*math.Log2(n))
	}
	ctx.Flush()
	for _, r := range rows {
		emit(r)
	}
}

// limitOp emits the first n rows. The input still runs to completion
// (there are no indices to stop early with), matching the engines under
// study.
type limitOp struct {
	input Operator
	n     int
}

func (l *limitOp) Schema() *catalog.Schema { return l.input.Schema() }

func (l *limitOp) Run(ctx *Ctx, emit func(expr.Row)) {
	emitted := 0
	l.input.Run(ctx, func(row expr.Row) {
		if emitted < l.n {
			emitted++
			emit(row)
		}
	})
}
