package exec

import (
	"fmt"
	"strings"
	"sync"

	"ecodb/internal/catalog"
	"ecodb/internal/expr"
	"ecodb/internal/obsv"
	"ecodb/internal/plan"
	"ecodb/internal/storage"
)

// Morsel-driven parallel execution.
//
// The serial pipeline already flows page-granular batches; a morsel is
// exactly one of those pages. The dispatcher below fans pages out to N
// worker goroutines, each running a compiled scan→filter→project fragment
// over its morsel with a private expr.Cost meter, and a coordinator merges
// finished morsels back IN PAGE ORDER. Only the coordinator ever touches
// the simulated machine — buffer pool accesses, page hooks, and cycle
// charges are replayed during the merge in exactly the sequence the serial
// scanOp/filterOp/projectOp chain produces them. Real wall-clock therefore
// scales with cores while simulated results, durations, and joules are
// bit-identical to Compile's serial path, independent of goroutine
// interleaving and worker count. Multi-core simulated time remains the
// engine's business: it charges work via cpu.SetParallelism exactly as
// before.

// CompileParallel is the plan-lowering entry point: with workers > 1 it
// replaces every maximal scan→filter→project chain with a morsel-driven
// parallel operator spread across workers goroutines; with workers <= 1
// (or for plan shapes with no eligible fragment) the shared switch lowers
// to the serial operator set. Unknown node types panic: the operator set
// is closed.
func CompileParallel(n plan.Node, workers int) Operator {
	return compile(n, workers, nil)
}

// compile owns the single lowering switch, shared by Compile,
// CompileParallel and CompileLeaf (sharedscan.go). A non-nil leaf produces
// the scan leaves and disables the morsel fragment fold — externally
// coordinated leaves (a shared pass) own their page order.
func compile(n plan.Node, workers int, leaf ScanLeaf) Operator {
	if leaf == nil && workers > 1 {
		if f, ok := planFragment(n); ok {
			return wrapSpan(&morselExec{frag: f, workers: workers}, obsv.KindScan,
				fmt.Sprintf("MorselScan(%s x%d)", f.table.Name, workers), f.table.Name)
		}
	}
	switch n := n.(type) {
	case *plan.Scan:
		if leaf != nil {
			op := leaf(n)
			label := fmt.Sprintf("Scan(%s)", n.Table.Name)
			if _, shared := op.(*sharedScanOp); shared {
				label = fmt.Sprintf("SharedScan(%s)", n.Table.Name)
			}
			return wrapSpan(op, obsv.KindScan, label, n.Table.Name)
		}
		return wrapSpan(&scanOp{table: n.Table, filter: n.Filter}, obsv.KindScan,
			fmt.Sprintf("Scan(%s)", n.Table.Name), n.Table.Name)
	case *plan.Filter, *plan.Project:
		return compileFused(n, workers, leaf)
	case *plan.HashJoin:
		j := &hashJoinOp{
			build:    compile(n.Build, workers, leaf),
			buildKey: n.BuildKey, probeKey: n.ProbeKey,
			residual: n.Residual, schema: n.Schema(),
			workers: workers,
		}
		if leaf == nil && workers > 1 {
			if f, ok := planFragment(n.Probe); ok {
				// The probe side folds into the join: probe workers stream
				// morsels through the fragment and probe the completed
				// read-only partitions directly (parallel_join.go), instead
				// of serializing every surviving probe row through the
				// coordinator first.
				j.probeFrag = f
				j.probeLabel = fmt.Sprintf("MorselScan(%s x%d)", f.table.Name, workers)
			}
		}
		if j.probeFrag == nil {
			j.probe = compile(n.Probe, workers, leaf)
		}
		return wrapSpan(j, obsv.KindJoin, fmt.Sprintf("HashJoin(%s = %s)",
			n.Build.Schema().Columns()[n.BuildKey].Name,
			n.Probe.Schema().Columns()[n.ProbeKey].Name), "")
	case *plan.Agg:
		label := fmt.Sprintf("Agg(groups=%d aggs=%d)", len(n.GroupBy), len(n.Aggs))
		if leaf == nil && workers > 1 {
			if f, ok := planFragment(n.Input); ok {
				// The aggregation boundary joins the fragment: workers
				// pre-aggregate their morsels instead of serializing every
				// surviving row through a downstream aggOp.
				return wrapSpan(newParallelAgg(f, n, workers), obsv.KindAgg,
					fmt.Sprintf("ParallelAgg(%s x%d)", f.table.Name, workers), f.table.Name)
			}
		}
		a := &aggOp{input: compile(n.Input, workers, leaf), groupBy: n.GroupBy, aggs: n.Aggs, schema: n.Schema()}
		return wrapSpan(a, obsv.KindAgg, label, "")
	case *plan.Sort:
		if leaf == nil && workers > 1 {
			if f, ok := planFragment(n.Input); ok {
				// The sort boundary joins the fragment: workers generate
				// sorted runs over their morsels and the coordinator merges
				// them (parallel_sort.go), instead of serializing every
				// surviving row through a downstream serial sort.
				return wrapSpan(newParallelSort(f, n.Keys, workers), obsv.KindSort,
					fmt.Sprintf("ParallelSort(%s x%d)", f.table.Name, workers), f.table.Name)
			}
		}
		return wrapSpan(&sortOp{input: compile(n.Input, workers, leaf), keys: n.Keys},
			obsv.KindSort, fmt.Sprintf("Sort(keys=%d)", len(n.Keys)), "")
	case *plan.Limit:
		return wrapSpan(&limitOp{input: compile(n.Input, workers, leaf), n: n.N},
			obsv.KindLimit, fmt.Sprintf("Limit(%d)", n.N), "")
	default:
		panic(fmt.Sprintf("exec: cannot compile %T", n))
	}
}

// compileFused folds the maximal chain of adjacent Filter/Project nodes
// rooted at n into one fused operator over the chain's input — operator
// fusion for the serial pipeline, mirroring what planFragment does for the
// morsel-parallel leaf. Stage order is bottom-up (execution order); cycle
// charging per stage is identical to the unfused operator chain.
func compileFused(n plan.Node, workers int, leaf ScanLeaf) Operator {
	schema := n.Schema()
	var topDown []fragStage
	cur := n
walk:
	for {
		switch t := cur.(type) {
		case *plan.Filter:
			topDown = append(topDown, fragStage{pred: t.Pred})
			cur = t.Input
		case *plan.Project:
			topDown = append(topDown, fragStage{exprs: t.Exprs})
			cur = t.Input
		default:
			break walk
		}
	}
	stages := make([]fragStage, len(topDown))
	for i, st := range topDown {
		stages[len(stages)-1-i] = st
	}
	input := compile(cur, workers, leaf)
	if sc, ok := unwrapSpan(input).(*scanOp); ok {
		// Push the chain's leading filter predicates (every stage before
		// the first projection — they still reference the scan schema) down
		// to the scan's prune decision. Filtering itself stays where it is;
		// only the page-skip test sees the extra conjuncts.
		var terms []expr.Expr
		if sc.filter != nil {
			terms = append(terms, sc.filter)
		}
		for _, st := range stages {
			if st.pred == nil {
				break
			}
			terms = append(terms, st.pred)
		}
		sc.prune = conjoinPrune(terms)
	}
	names := make([]string, len(stages))
	for i, st := range stages {
		if st.pred != nil {
			names[i] = "filter"
		} else {
			names[i] = "project"
		}
	}
	return wrapSpan(&fusedOp{input: input, stages: stages, schema: schema},
		obsv.KindFused, fmt.Sprintf("Fused(%s)", strings.Join(names, ",")), "")
}

// fragStage is one worker-side stage of a fragment: a filter predicate or
// a projection list applied to a morsel's surviving rows.
type fragStage struct {
	pred  expr.Expr   // non-nil for a filter stage
	exprs []expr.Expr // non-nil for a project stage
}

// fragment is a scan→filter→project chain compiled for morsel execution:
// it can evaluate one page entirely in a worker, with no access to shared
// executor state.
type fragment struct {
	table      *catalog.Table
	scanFilter expr.Expr
	stages     []fragStage
	schema     *catalog.Schema
	// pruner is the active zone-map prune predicate for this execution —
	// the scan filter conjoined with the leading filter stages — set by
	// initPrune at operator Open, nil when pruning is off or unusable.
	pruner expr.Expr
}

// initPrune resolves the fragment's prune predicate against the global
// pruning toggle. Called at operator Open so the toggle is read at the
// same point scanOp reads it.
func (f *fragment) initPrune() {
	var terms []expr.Expr
	if f.scanFilter != nil {
		terms = append(terms, f.scanFilter)
	}
	for _, st := range f.stages {
		if st.pred == nil {
			break
		}
		terms = append(terms, st.pred)
	}
	f.pruner = prunePredicate(conjoinPrune(terms))
}

// planFragment recognizes plan subtrees that are pure scan→filter→project
// chains — the pipeline fragments morsel workers can run.
func planFragment(n plan.Node) (*fragment, bool) {
	switch n := n.(type) {
	case *plan.Scan:
		return &fragment{table: n.Table, scanFilter: n.Filter, schema: n.Schema()}, true
	case *plan.Filter:
		f, ok := planFragment(n.Input)
		if !ok {
			return nil, false
		}
		f.stages = append(f.stages, fragStage{pred: n.Pred})
		return f, true
	case *plan.Project:
		f, ok := planFragment(n.Input)
		if !ok {
			return nil, false
		}
		f.stages = append(f.stages, fragStage{exprs: n.Exprs})
		f.schema = n.Schema()
		return f, true
	default:
		return nil, false
	}
}

// morselResult is one page's worth of finished worker output: the
// surviving batch (a selection-narrowed view of the page's column vectors,
// or fresh projected vectors) plus everything the coordinator needs to
// replay the page's simulated accounting — byte/row counts for the scan
// charges and one private cost meter per pipeline stage, charged in stage
// order so the floating-point accumulation matches the serial pipeline bit
// for bit.
type morselResult struct {
	idx       int
	pruned    bool // page skipped by zone maps: replay charges the check only
	pageBytes int64
	pageRows  int
	meters    []expr.Cost // scan-filter meter first, then one per stage
	batch     expr.Batch
}

// run executes the fragment over one page in worker context: real
// computation and private cost metering only, no simulated-machine access.
// The batch starts as a zero-copy view of the page's column vectors;
// filters narrow its selection vector, projections replace it with fresh
// vectors owned by the result.
func (f *fragment) run(idx int, page *storage.Page) *morselResult {
	if f.pruner != nil && len(page.Zones) > 0 && expr.ZonePrunes(f.pruner, page.Zones) {
		// Worker context decides the skip (pure zone-map reads); the
		// coordinator charges the zone check when it merges the item.
		return &morselResult{idx: idx, pruned: true}
	}
	res := &morselResult{
		idx: idx, pageBytes: page.Bytes, pageRows: page.NumRows(),
		meters: make([]expr.Cost, 1+len(f.stages)),
	}
	res.batch.Alias(&page.Data, nil)
	if f.scanFilter != nil {
		res.batch.Sel = expr.FilterBatch(f.scanFilter, &res.batch, nil, &res.meters[0])
	}
	for i := range f.stages {
		st := &f.stages[i]
		m := &res.meters[1+i]
		if st.pred != nil {
			res.batch.Sel = expr.FilterBatch(st.pred, &res.batch, nil, m)
			continue
		}
		out := expr.NewBatch(len(st.exprs))
		for c := range st.exprs {
			expr.EvalBatch(st.exprs[c], &res.batch, &out.Cols[c], m)
		}
		out.N = res.batch.Len()
		res.batch = *out
	}
	return res
}

// morselItem is one page's worth of finished worker output, keyed by page
// index so the coordinator can merge items in deterministic page order.
// morselExec produces plain morselResults; parallelAggOp wraps them with a
// per-morsel partial aggregation table.
type morselItem interface {
	pageIndex() int
}

func (r *morselResult) pageIndex() int { return r.idx }

// morselPump is the dispatcher half shared by all morsel-driven parallel
// operators: it fans a heap's pages across worker goroutines — each
// calling the work function on one page, in worker context, with no access
// to shared executor state — and hands the finished items back to the
// coordinator in ascending page order. Only the coordinator then touches
// the simulated machine, so simulated accounting stays independent of
// goroutine interleaving and worker count.
type morselPump struct {
	workers int
	// work processes one claimed run of adjacent pages, calling emit once
	// per page with that page's finished item, in page order. emit reports
	// false when the pump is stopping and the worker must abandon the run.
	// Run granularity lets operators keep per-run worker state (the
	// parallel agg's partial tables) while the coordinator still merges
	// per-page items.
	work func(run storage.MorselRun, src *storage.MorselSource, emit func(morselItem) bool)

	src     *storage.MorselSource
	results chan morselItem
	tickets chan struct{} // claim window: bounds runs in flight + reordered
	stop    chan struct{}
	wg      sync.WaitGroup
	pending map[int]morselItem // finished out-of-order morsels by index
	nextIdx int
	total   int
}

// open starts the worker pool over heap. Handout is run-granular
// (NUMA-style affinity: a worker keeps claiming adjacent pages, see
// storage.MorselSource): a worker must hold a ticket to claim a run and
// the coordinator refunds one when a run's last page merges, so the runs
// that are in flight or waiting to be merged never exceed the window — a
// straggler on page 0 cannot make the rest of the pool race ahead and
// buffer the whole table in the reorder map. The results channel's
// capacity is window·runLength morsels, so a held ticket guarantees no
// send of any page in the claimed run ever blocks and the pool can always
// drain on its own.
func (p *morselPump) open(heap *storage.Heap) {
	p.src = storage.NewMorselSource(heap)
	p.total = p.src.NumMorsels()
	p.nextIdx = 0
	if p.total <= 1 {
		// Nothing to overlap: next runs the work inline, sparing
		// tiny-table scans (TPC-H region, nation) the pool setup.
		return
	}
	pool := p.workers
	if pool > p.total {
		pool = p.total
	}
	p.pending = make(map[int]morselItem, pool)
	p.stop = make(chan struct{})
	window := 4 * pool
	p.results = make(chan morselItem, window*p.src.RunLength())
	p.tickets = make(chan struct{}, window)
	for i := 0; i < window; i++ {
		p.tickets <- struct{}{}
	}
	for w := 0; w < pool; w++ {
		p.wg.Add(1)
		go p.worker()
	}
}

func (p *morselPump) worker() {
	defer p.wg.Done()
	emit := func(it morselItem) bool {
		select {
		case <-p.stop:
			return false
		default:
		}
		p.results <- it // never blocks: ticket held
		return true
	}
	for {
		select {
		case <-p.tickets:
		case <-p.stop:
			return
		}
		run, ok := p.src.NextRun()
		if !ok {
			return
		}
		p.work(run, p.src, emit)
	}
}

// next returns the next page's finished item in ascending page order, or
// nil once the heap is exhausted.
func (p *morselPump) next() morselItem {
	for p.nextIdx < p.total {
		var res morselItem
		if p.results == nil {
			// Inline path: the heap was too small to fan out, so the
			// single page runs as a one-page run right here.
			p.work(storage.MorselRun{Start: p.nextIdx, End: p.nextIdx + 1}, p.src,
				func(it morselItem) bool { res = it; return true })
		} else if r, ok := p.pending[p.nextIdx]; ok {
			delete(p.pending, p.nextIdx)
			res = r
		} else {
			r := <-p.results
			p.pending[r.pageIndex()] = r
			continue
		}
		p.nextIdx++
		if p.tickets != nil && (p.nextIdx%p.src.RunLength() == 0 || p.nextIdx == p.total) {
			// Refund the claim ticket only now that the run's last morsel
			// is being merged: results that were merely buffered out of
			// order in p.pending still count against the window, so a
			// straggler on the next-to-merge page cannot let the rest of
			// the pool race ahead and buffer the whole table. The send
			// cannot block — refunds never exceed claims — and cannot
			// deadlock: runs are claimed in contiguous order and a claimer
			// needs no further tickets to finish its whole run, so the
			// next-to-merge page's result always arrives even when
			// tickets are scarce.
			p.tickets <- struct{}{}
		}
		return res
	}
	return nil
}

// close stops the workers and waits for them to exit. It is idempotent.
func (p *morselPump) close() {
	if p.stop != nil {
		close(p.stop)
		p.wg.Wait()
	}
	p.src, p.results, p.tickets, p.stop, p.pending = nil, nil, nil, nil, nil
}

// replayMorselPage replays one finished morsel's simulated page accounting
// exactly as the serial scan pipeline produces it: flush the previous
// page's cost window, charge the zone check when pruning is active, then —
// for read pages — touch the buffer pool, fire the page hook, charge scan
// work, and drain the stage meters in pipeline order. A pruned page's
// window holds the zone check alone, exactly as serial scanOp's skip step
// flushes it.
func replayMorselPage(ctx *Ctx, table string, res *morselResult, pruning bool) {
	ctx.Flush() // close the previous page's pipeline-wide cost window
	if pruning {
		ctx.chargeZoneCheck()
	}
	if res.pruned {
		obsv.PagesPruned.Inc()
		if ctx.Obs != nil {
			ctx.Obs.PagePruned()
		}
		return
	}
	if ctx.Pool != nil {
		ctx.Pool.Access(storage.PageID{Table: table, Index: res.idx}, res.pageBytes)
	}
	ctx.chargePageStream(res.pageBytes)
	ctx.chargePageTuples(res.pageRows)
	for i := range res.meters {
		ctx.ChargeExpr(&res.meters[i])
	}
}

// morselExec is the morsel-driven parallel leaf operator: a morselPump
// fanning a table's pages across worker goroutines running the fragment,
// and a coordinator (Next) that merges finished morsels in deterministic
// page order.
type morselExec struct {
	frag    *fragment
	workers int

	pump morselPump
}

func (m *morselExec) Schema() *catalog.Schema { return m.frag.schema }

// Open starts the worker pool.
func (m *morselExec) Open(*Ctx) error {
	m.frag.initPrune()
	m.pump = morselPump{
		workers: m.workers,
		work: func(run storage.MorselRun, src *storage.MorselSource, emit func(morselItem) bool) {
			for idx := run.Start; idx < run.End; idx++ {
				if !emit(m.frag.run(idx, src.Page(idx))) {
					return
				}
			}
		},
	}
	m.pump.open(m.frag.table.Heap)
	return nil
}

// Next merges worker results in page order, replaying each page's
// simulated accounting in the serial pipeline's sequence.
func (m *morselExec) Next(ctx *Ctx) (*expr.Batch, error) {
	for {
		it := m.pump.next()
		if it == nil {
			// End of heap: flush the final page's window, as the serial
			// scan does when it discovers the heap is exhausted.
			ctx.Flush()
			return nil, nil
		}
		if b := m.merge(ctx, it.(*morselResult)); b != nil {
			return b, nil
		}
	}
}

// merge replays one page's simulated accounting and returns its batch, or
// nil for an empty post-filter page (charged and skipped, like the serial
// scanOp's read-until-non-empty loop).
func (m *morselExec) merge(ctx *Ctx, res *morselResult) *expr.Batch {
	replayMorselPage(ctx, m.frag.table.Name, res, m.frag.pruner != nil)
	if res.batch.Len() > 0 {
		return &res.batch
	}
	return nil
}

// Close stops the workers and waits for them to exit. It is idempotent.
func (m *morselExec) Close(*Ctx) error {
	m.pump.close()
	return nil
}
