package exec

import (
	"ecodb/internal/catalog"
	"ecodb/internal/expr"
	"ecodb/internal/hw/cpu"
	"ecodb/internal/plan"
	"ecodb/internal/storage"
)

// Parallel vectorized aggregation.
//
// An Agg whose input is a morsel-eligible scan→filter→project fragment no
// longer serializes at the aggregation boundary: each worker runs the
// fragment over its morsel AND folds the surviving rows into a private,
// morsel-local partial table, fed straight from the batch's column
// payloads (group keys encoded column-wise by expr.GroupKeys, aggregate
// arguments evaluated batch-wise into vectors). The coordinator merges
// partial tables in ascending page order and emits groups in sorted
// group-key order — the same order the serial aggOp emits.
//
// Determinism is the design constraint, and it dictates what a partial may
// pre-reduce:
//
//   - COUNT is an integer and MIN/MAX keep a strict-inequality "earliest
//     wins" rule, so per-morsel partials merge losslessly in page order.
//   - SUM and AVG add floats, and float addition is not associative: a
//     sum-of-partial-sums would drift from the serial row-order sum in the
//     last bits. Partials therefore carry each group's argument values in
//     row order, and only the coordinator folds them into the running sum —
//     page order × row order = global row order, so the bits match the
//     serial path exactly, independent of worker count.
//
// The diverted value lists are bounded: once a run has buffered more than
// valueBudget values, the worker seals the run's partial table onto the
// current page's item and starts a fresh table, so a run never holds more
// than one budget's worth past a page boundary. Sealing happens only at
// page boundaries and depends only on page contents, so flush points — and
// therefore the coordinator's fold order, which remains page order × row
// order — are identical at every worker count.
//
// Simulated accounting replays in the coordinator exactly as the serial
// aggOp-over-scan pipeline charges it: per page, the scan/filter/project
// charges (replayMorselPage), then the aggregation's per-row cycles and
// the argument-evaluation meter. Results, durations, and joules are
// bit-identical across worker counts by construction.

// newAggPartial returns a run-local group accumulator: a plain aggState —
// so the NULL, COUNT, and MIN/MAX semantics are single-sourced in
// aggState.accumulate — whose needVals aggregates divert their argument
// values into ordered per-group lists for the coordinator to fold.
func newAggPartial(nAggs int, needVals []bool) *aggState {
	st := newAggState(nAggs)
	st.vals = make([][]float64, nAggs)
	st.needVals = needVals
	return st
}

// morselAggResult is one page's finished worker output on the parallel
// aggregation path: the fragment's page accounting plus the page's share
// of the aggregation charges. Workers aggregate at run granularity — one
// partial table per claimed run of adjacent pages, amortizing table and
// scratch allocations across the run — so normally only the run's LAST
// page carries the partial table (parts nil elsewhere); a run that blows
// its value budget seals tables onto earlier page items too, always at
// page boundaries. Per-page charges stay exactly where the serial
// pipeline charges them.
type morselAggResult struct {
	res      *morselResult
	n        int       // surviving (post-fragment) row count
	aggMeter expr.Cost // argument-evaluation cycles for this page
	keys     []string  // first-seen order within the run
	parts    map[string]*aggState
}

func (r *morselAggResult) pageIndex() int { return r.res.idx }

// parallelAggOp is the morsel-driven parallel aggregation operator: a
// morselPump whose workers run the fragment and pre-aggregate each morsel,
// and a coordinator that merges partials in page order and serves the
// grouped output in batches.
// defaultAggValueBudget bounds the SUM/AVG argument values a run's partial
// table may buffer before the worker seals it onto the current page's item
// (tests shrink it to exercise sealing). At the default morsel run length
// this caps per-run memory without ever splitting a page across tables.
const defaultAggValueBudget = 1 << 14

type parallelAggOp struct {
	frag        *fragment
	groupBy     []int
	aggs        []plan.AggSpec
	schema      *catalog.Schema
	workers     int
	needVals    []bool
	valueBudget int

	pump    morselPump
	groups  map[string]*aggState
	results []expr.Row
	pos     int
	started bool
	out     expr.Batch
}

// newParallelAgg builds the operator for Agg(fragment) plans.
func newParallelAgg(f *fragment, n *plan.Agg, workers int) *parallelAggOp {
	needVals := make([]bool, len(n.Aggs))
	for i, spec := range n.Aggs {
		needVals[i] = spec.Func == plan.Sum || spec.Func == plan.Avg
	}
	return &parallelAggOp{
		frag: f, groupBy: n.GroupBy, aggs: n.Aggs,
		schema: n.Schema(), workers: workers, needVals: needVals,
		valueBudget: defaultAggValueBudget,
	}
}

func (a *parallelAggOp) Schema() *catalog.Schema { return a.schema }

func (a *parallelAggOp) Open(*Ctx) error {
	a.frag.initPrune()
	a.groups = make(map[string]*aggState)
	a.results, a.pos, a.started = nil, 0, false
	a.out = *expr.NewBatch(a.schema.NumCols())
	a.pump = morselPump{workers: a.workers, work: a.work}
	a.pump.open(a.frag.table.Heap)
	return nil
}

// work runs in worker context: the fragment over each of the run's pages,
// folding every page's surviving rows into one run-local partial table —
// real computation and private metering only, no simulated-machine access.
// Pages fold in page order and each group's values append in row order, so
// the run partial preserves the run's global row order. The table rides on
// the run's last page's item; per-page accounting (fragment meters, row
// counts, argument-evaluation cycles) stays on each page's own item.
func (a *parallelAggOp) work(run storage.MorselRun, src *storage.MorselSource, emit func(morselItem) bool) {
	var keys expr.GroupKeys
	argVecs := aggArgVecs(a.aggs)
	parts := make(map[string]*aggState)
	var order []string
	buffered := 0
	items := make([]*morselAggResult, 0, run.Len())

	for idx := run.Start; idx < run.End; idx++ {
		res := a.frag.run(idx, src.Page(idx))
		it := &morselAggResult{res: res, n: res.batch.Len()}
		items = append(items, it)
		if it.n == 0 {
			continue
		}
		keys.Build(&res.batch, a.groupBy)
		evalAggArgs(&res.batch, a.aggs, argVecs, &it.aggMeter)
		for li := 0; li < it.n; li++ {
			p, ok := parts[string(keys.Key(li))]
			if !ok {
				key := string(keys.Key(li))
				p = newAggPartial(len(a.aggs), a.needVals)
				p.groupVals = make(expr.Row, len(a.groupBy))
				for i, g := range a.groupBy {
					p.groupVals[i] = res.batch.Cols[g].Get(res.batch.RowIdx(li))
				}
				parts[key] = p
				order = append(order, key)
			}
			p.accumulate(a.aggs, argVecs, li)
		}
		// Count the values this page diverted into partial lists (exactly
		// what accumulate appends: non-NULL SUM/AVG arguments) and seal the
		// run's table onto this page's item once the budget is exceeded. No
		// accumulation follows a seal on the same page, so sealing never
		// splits a page's rows across tables.
		for i, need := range a.needVals {
			if !need {
				continue
			}
			for li := 0; li < it.n; li++ {
				if !argVecs[i].IsNull(li) {
					buffered++
				}
			}
		}
		if a.valueBudget > 0 && buffered > a.valueBudget {
			it.keys, it.parts = order, parts
			parts = make(map[string]*aggState)
			order = nil
			buffered = 0
		}
		// Only the charges and the run partial travel to the coordinator;
		// drop the page view so the batch's vectors are collectable.
		res.batch = expr.Batch{}
	}
	last := items[len(items)-1]
	if last.parts == nil {
		// A seal on the run's final page already carries everything; only
		// attach the (possibly empty) remainder table when it did not.
		last.keys, last.parts = order, parts
	}
	for _, it := range items {
		if !emit(it) {
			return
		}
	}
}

func (a *parallelAggOp) Next(ctx *Ctx) (*expr.Batch, error) {
	if !a.started {
		a.started = true
		a.consume(ctx)
	}
	return serveBuffered(ctx, a.results, &a.pos, &a.out), nil
}

// consume drains the pump in page order, replaying each morsel's simulated
// accounting and merging its partials, then finalizes the grouped output —
// charge for charge the sequence the serial aggOp-over-scan pipeline
// produces.
func (a *parallelAggOp) consume(ctx *Ctx) {
	for {
		it := a.pump.next()
		if it == nil {
			break
		}
		a.mergeMorsel(ctx, it.(*morselAggResult))
	}
	// End of heap: flush the final page's window, as the serial scan does
	// when it discovers the heap is exhausted.
	ctx.Flush()
	a.results = finishAggGroups(a.groups, a.groupBy, a.aggs)
	ctx.Charge(cpu.Compute, ctx.Cost.AggCycles*float64(len(a.results)))
	ctx.Flush()
}

// mergeMorsel replays one page's accounting (scan charges, then the
// aggregation's per-row cycles and argument meter, exactly as the serial
// path interleaves them) and, on a run's last page, folds the run's
// partials into the global group table. Run partials arrive in run order
// (runs are contiguous and items merge in ascending page order) and each
// group's SUM/AVG values fold in the run's row order, so every
// floating-point accumulation happens in global row order — the serial
// path's exact addition sequence.
func (a *parallelAggOp) mergeMorsel(ctx *Ctx, r *morselAggResult) {
	replayMorselPage(ctx, a.frag.table.Name, r.res, a.frag.pruner != nil)
	if r.n > 0 {
		n := float64(r.n)
		ctx.Charge(cpu.Compute, ctx.Cost.AggCycles*n)
		ctx.Charge(cpu.MemStall, ctx.Cost.AggStallCycles*n)
		ctx.ChargeExpr(&r.aggMeter)
	}
	if r.parts == nil {
		return
	}
	for _, key := range r.keys {
		p := r.parts[key]
		st, ok := a.groups[key]
		if !ok {
			st = newAggState(len(a.aggs))
			st.groupVals = p.groupVals
			a.groups[key] = st
		}
		for i := range a.aggs {
			st.counts[i] += p.counts[i]
			for _, v := range p.vals[i] {
				st.sums[i] += v
			}
			if !p.seen[i] {
				continue
			}
			if !st.seen[i] {
				st.mins[i], st.maxs[i], st.seen[i] = p.mins[i], p.maxs[i], true
				continue
			}
			if expr.Compare(p.mins[i], st.mins[i]) < 0 {
				st.mins[i] = p.mins[i]
			}
			if expr.Compare(p.maxs[i], st.maxs[i]) > 0 {
				st.maxs[i] = p.maxs[i]
			}
		}
	}
}

func (a *parallelAggOp) Close(*Ctx) error {
	a.pump.close()
	a.groups, a.results = nil, nil
	return nil
}
