package exec

import (
	"ecodb/internal/expr"
	"ecodb/internal/hw/cpu"
	"ecodb/internal/obsv"
	"ecodb/internal/storage"
)

// Merged parallel hash-join probe.
//
// Once Open finishes, the build partitions are immutable, so probing them
// is embarrassingly parallel: each morsel worker runs the probe-side
// fragment over its claimed pages and probes the surviving rows against
// the shared read-only partitions with its own probeScratch — real
// hashing, lookups, residual evaluation, and output assembly all happen in
// worker context. The coordinator merges finished pages back in page order
// through the same ticket window as every other morsel operator and
// replays the serial probe's exact charge sequence: the page's scan
// charges inside the (emulated) probe-leaf scan span, then the per-batch
// probe/match charges inside the join's own span. Simulated results,
// durations, joules, and the profile span tree are byte-identical to the
// serial morsel-scan-under-join lowering at any worker count.

// morselProbeResult is one probe-side page's finished worker output: the
// fragment's page accounting plus the assembled join output, the raw match
// count, and the residual-predicate meter — everything the coordinator
// needs to replay the serial probe's charges without redoing its work.
type morselProbeResult struct {
	res     *morselResult
	n       int         // probe rows surviving the fragment
	out     *expr.Batch // assembled join output (nil when n == 0)
	matches int
	meter   expr.Cost
}

func (r *morselProbeResult) pageIndex() int { return r.res.idx }

// openMergedProbe starts the probe-side worker pool. It runs at the point
// Open would have opened a serial probe operator, and with profiling on it
// creates the scan span that probe leaf would have created — the merged
// probe has no inner operator tree, so the join emulates its child span to
// keep the profile tree identical to the serial lowering.
func (j *hashJoinOp) openMergedProbe(ctx *Ctx) {
	j.probeFrag.initPrune()
	j.pump = morselPump{workers: j.workers, work: j.probeWork}
	if ctx.Obs != nil {
		j.probeSpan = ctx.Obs.OpenSpan(obsv.KindScan, j.probeLabel,
			j.probeFrag.table.Name, ctx.CPU.Clock().Now())
		defer ctx.Obs.Pop(ctx.CPU.Clock().Now())
	}
	j.pump.open(j.probeFrag.table.Heap)
}

// probeWork is the worker function: run the probe fragment over each page
// of the claimed run, then probe the survivors against the completed
// partitions. Private scratch per worker invocation; no simulated-machine
// access.
func (j *hashJoinOp) probeWork(run storage.MorselRun, src *storage.MorselSource, emit func(morselItem) bool) {
	var ps probeScratch
	for idx := run.Start; idx < run.End; idx++ {
		res := j.probeFrag.run(idx, src.Page(idx))
		it := &morselProbeResult{res: res, n: res.batch.Len()}
		if it.n > 0 {
			ps.out = expr.NewBatch(j.schema.NumCols())
			it.matches = j.probeBatch(&res.batch, &ps)
			it.out = ps.out
			it.meter = ps.meter
			ps.meter = expr.Cost{}
		}
		res.batch = expr.Batch{} // drop the page view; accounting remains
		if !emit(it) {
			return
		}
	}
}

// mergedNext merges probe-side pages in page order. Each page replays the
// scan-side accounting inside the emulated probe span (exactly what a
// morselExec child would charge), then — for pages with surviving probe
// rows — the probe, match, and residual charges the serial Next makes per
// batch, attributed to the join span the caller's spanOp already pushed.
func (j *hashJoinOp) mergedNext(ctx *Ctx) (*expr.Batch, error) {
	for {
		it := j.pump.next()
		if it == nil {
			// End of the probe heap: the final page's window flushes inside
			// the scan span, as the serial morsel scan flushes when it
			// discovers the heap is exhausted.
			j.pushProbeSpan(ctx)
			ctx.Flush()
			j.popProbeSpan(ctx)
			return nil, nil
		}
		r := it.(*morselProbeResult)
		obsv.ProbeMorsels.Inc()
		j.pushProbeSpan(ctx)
		replayMorselPage(ctx, j.probeFrag.table.Name, r.res, j.probeFrag.pruner != nil)
		if r.n > 0 && j.probeSpan != nil {
			// The serial probe leaf returns only non-empty batches; mirror
			// its span's batch and row counts.
			j.probeSpan.Batches++
			j.probeSpan.Rows += int64(r.n)
		}
		j.popProbeSpan(ctx)
		if r.n == 0 {
			continue
		}
		n := float64(r.n)
		ctx.Charge(cpu.Compute, ctx.Cost.ProbeCycles*n)
		ctx.Charge(cpu.MemStall, ctx.Cost.ProbeStallCycles*n)
		ctx.Charge(cpu.Compute, ctx.Cost.MatchCycles*float64(r.matches))
		ctx.ChargeExpr(&r.meter)
		if r.out.Len() > 0 {
			return r.out, nil
		}
	}
}

func (j *hashJoinOp) pushProbeSpan(ctx *Ctx) {
	if j.probeSpan != nil {
		ctx.Obs.Push(j.probeSpan)
	}
}

func (j *hashJoinOp) popProbeSpan(ctx *Ctx) {
	if j.probeSpan != nil {
		ctx.Obs.Pop(ctx.CPU.Clock().Now())
	}
}
