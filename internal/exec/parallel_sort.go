package exec

import (
	"sort"

	"ecodb/internal/catalog"
	"ecodb/internal/expr"
	"ecodb/internal/obsv"
	"ecodb/internal/plan"
	"ecodb/internal/storage"
)

// Parallel sort: morsel-driven run generation + loser-tree multiway merge.
//
// Each worker runs the scan→filter→project fragment over its claimed run
// of adjacent pages, copies the survivors columnar into a run-local sort
// buffer, and sorts a permutation of that buffer by the sort keys with
// ties broken on the global row ordinal (page index × row index) — real
// comparison work, done in worker context. The coordinator replays every
// page's simulated accounting in page order (identical to the serial
// scan), charges the serial sort's single n·log₂n formula on the total
// surviving row count, and then merges the sorted runs with a tournament
// tree of losers, streaming the globally ordered output in columnar
// batches.
//
// Determinism: runs are fixed contiguous page windows independent of
// worker count (storage.MorselSource), so run contents — and therefore
// merge decisions — depend only on the data. The (keys, global ordinal)
// order the merge produces is exactly the order the serial stable sort
// produces, because arrival order at the serial sort IS ascending global
// ordinal; ordinals are unique, so the total order has no residual
// nondeterminism. Results are byte-identical to sortOp at any worker
// count, and simulated durations and joules are bit-identical because the
// coordinator's charge sequence is the serial one.

// sortedRun is one morsel run's sorted output: the columnar copy of its
// surviving rows, each row's global ordinal, and the permutation ordering
// them by (keys, ordinal). pos is the merge cursor.
type sortedRun struct {
	buf  expr.Batch
	ord  []int64 // pageIdx<<32 | physRowIdx, per physical buffer row
	perm []int32
	pos  int
}

// morselSortResult is one page's item flowing back to the coordinator: the
// page accounting to replay, plus — on the run's final page only — the
// whole run's sorted output.
type morselSortResult struct {
	res *morselResult
	run *sortedRun // non-nil on the run's last page
}

func (r *morselSortResult) pageIndex() int { return r.res.idx }

// parallelSortOp is the fragment-folded sort: morselPump workers generate
// sorted runs, the coordinator replays charges and merges.
type parallelSortOp struct {
	frag    *fragment
	keys    []plan.SortKey
	workers int

	pump    morselPump
	runs    []*sortedRun
	lt      *loserTree
	total   int
	started bool
	out     expr.Batch
}

func newParallelSort(f *fragment, keys []plan.SortKey, workers int) *parallelSortOp {
	return &parallelSortOp{frag: f, keys: keys, workers: workers}
}

func (s *parallelSortOp) Schema() *catalog.Schema { return s.frag.schema }

func (s *parallelSortOp) Open(*Ctx) error {
	s.frag.initPrune()
	s.runs, s.lt, s.total, s.started = nil, nil, 0, false
	s.out = *expr.NewBatch(s.frag.schema.NumCols())
	s.pump = morselPump{workers: s.workers, work: s.work}
	s.pump.open(s.frag.table.Heap)
	return nil
}

// work generates one sorted run in worker context: fragment over each
// page, survivors copied columnar into the run buffer with their global
// ordinals recorded, then one permutation sort over the whole run. The
// run's sorted output rides the final page's item so the coordinator sees
// it exactly when the run's last page merges.
func (s *parallelSortOp) work(run storage.MorselRun, src *storage.MorselSource, emit func(morselItem) bool) {
	sr := &sortedRun{buf: *expr.NewBatch(s.frag.schema.NumCols())}
	items := make([]*morselSortResult, 0, run.End-run.Start)
	for idx := run.Start; idx < run.End; idx++ {
		res := s.frag.run(idx, src.Page(idx))
		items = append(items, &morselSortResult{res: res})
		if n := res.batch.Len(); n > 0 {
			for li := 0; li < n; li++ {
				sr.ord = append(sr.ord, int64(idx)<<32|int64(res.batch.RowIdx(li)))
			}
			sr.buf.AppendBatch(&res.batch, n)
		}
		res.batch = expr.Batch{} // drop the page view; accounting remains
	}
	sr.perm = make([]int32, len(sr.ord))
	for i := range sr.perm {
		sr.perm[i] = int32(i)
	}
	sort.Slice(sr.perm, func(i, j int) bool {
		a, b := sr.perm[i], sr.perm[j]
		if c := sortCmp(s.keys, &sr.buf, a, &sr.buf, b); c != 0 {
			return c < 0
		}
		return sr.ord[a] < sr.ord[b] // unique: no stability needed
	})
	items[len(items)-1].run = sr
	for _, it := range items {
		if !emit(it) {
			return
		}
	}
}

// consume drains the pump, replaying every page's simulated accounting in
// page order and collecting the sorted runs, then charges the sort formula
// on the total surviving row count — the exact charge sequence of a serial
// morsel scan feeding sortOp — and seats the merge tree.
func (s *parallelSortOp) consume(ctx *Ctx) {
	for {
		it := s.pump.next()
		if it == nil {
			break
		}
		r := it.(*morselSortResult)
		replayMorselPage(ctx, s.frag.table.Name, r.res, s.frag.pruner != nil)
		if r.run != nil {
			s.total += r.run.buf.Len()
			if r.run.buf.Len() > 0 {
				s.runs = append(s.runs, r.run)
			}
		}
	}
	ctx.Flush() // end of heap, as the serial scan flushes on exhaustion
	obsv.SortRows.Add(int64(s.total))
	ctx.chargeSort(float64(s.total))
	ctx.Flush()
	if len(s.runs) > 0 {
		obsv.MergePasses.Inc() // single-level merge: one pass over the runs
	}
	s.lt = newLoserTree(s.runs, s.keys)
}

func (s *parallelSortOp) Next(ctx *Ctx) (*expr.Batch, error) {
	if !s.started {
		s.started = true
		s.consume(ctx)
	}
	s.out.Reset()
	target := ctx.BatchTarget()
	for s.out.N < target {
		run, idx := s.lt.pop()
		if run == nil {
			break
		}
		for c := range s.out.Cols {
			s.out.Cols[c].Append(run.buf.Cols[c].Get(int(idx)))
		}
		s.out.N++
	}
	if s.out.N == 0 {
		return nil, nil
	}
	return &s.out, nil
}

func (s *parallelSortOp) Close(*Ctx) error {
	s.pump.close()
	s.runs, s.lt = nil, nil
	return nil
}

// loserTree is a tournament tree of losers over K sorted runs: node[i]
// holds the run that lost the match at internal node i, win the run whose
// head is the global minimum. pop is O(log K) — one leaf-to-root replay —
// against O(K) for a naive scan, which matters when a big table yields
// hundreds of runs.
type loserTree struct {
	keys []plan.SortKey
	runs []*sortedRun
	node []int // loser run index per internal node; -1 = empty slot
	win  int
}

func newLoserTree(runs []*sortedRun, keys []plan.SortKey) *loserTree {
	lt := &loserTree{keys: keys, runs: runs, win: -1}
	k := len(runs)
	lt.node = make([]int, k)
	for i := range lt.node {
		lt.node[i] = -1
	}
	for i := k - 1; i >= 0; i-- {
		lt.insert(i)
	}
	return lt
}

// insert seats run i during construction: it walks i's leaf-to-root path,
// parking the carried winner in the first empty node; once every node on
// the path holds a loser the carried winner plays through to the root.
// Inserting leaves in descending order fills all k-1 internal nodes and
// crowns the overall winner on the final insert.
func (lt *loserTree) insert(i int) {
	k := len(lt.runs)
	w := i
	for n := (k + i) / 2; n > 0; n /= 2 {
		if lt.node[n] == -1 {
			lt.node[n] = w
			return
		}
		if lt.beats(lt.node[n], w) {
			lt.node[n], w = w, lt.node[n]
		}
	}
	lt.win = w
}

// replay re-plays the matches on run r's leaf-to-root path after r's head
// changed, leaving losers at the internal nodes and the winner in win.
func (lt *loserTree) replay(r int) {
	k := len(lt.runs)
	w := r
	for n := (k + r) / 2; n > 0; n /= 2 {
		if lt.beats(lt.node[n], w) {
			lt.node[n], w = w, lt.node[n]
		}
	}
	lt.win = w
}

// beats reports whether run a's head row orders strictly before run b's
// head row under (keys, global ordinal). Exhausted runs and empty slots
// lose to everything.
func (lt *loserTree) beats(a, b int) bool {
	if a < 0 {
		return false
	}
	ra := lt.runs[a]
	if ra.pos >= len(ra.perm) {
		return false
	}
	if b < 0 {
		return true
	}
	rb := lt.runs[b]
	if rb.pos >= len(rb.perm) {
		return true
	}
	ia, ib := ra.perm[ra.pos], rb.perm[rb.pos]
	if c := sortCmp(lt.keys, &ra.buf, ia, &rb.buf, ib); c != 0 {
		return c < 0
	}
	return ra.ord[ia] < rb.ord[ib]
}

// pop returns the run holding the globally smallest head row and that
// row's physical index in the run's buffer, advancing the run's cursor;
// nil when every run is exhausted.
func (lt *loserTree) pop() (*sortedRun, int32) {
	if lt.win < 0 {
		return nil, 0
	}
	r := lt.runs[lt.win]
	if r.pos >= len(r.perm) {
		return nil, 0 // the best head is exhausted: all runs are
	}
	idx := r.perm[r.pos]
	r.pos++
	lt.replay(lt.win)
	return r, idx
}
