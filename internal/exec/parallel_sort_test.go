package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"ecodb/internal/expr"
	"ecodb/internal/plan"
)

func TestCompileParallelSortLowering(t *testing.T) {
	tb := numbersTable(t, "t", 300)
	k := tb.Schema.Col("k")
	chain := plan.NewProject(
		plan.NewFilter(plan.NewScan(tb, nil),
			expr.Cmp{Op: expr.LT, L: k, R: expr.Const{V: expr.Int(250)}}),
		[]expr.Expr{k}, []string{"k"}, []expr.Kind{expr.KindInt})
	srt := plan.NewSort(chain, plan.SortKey{Col: 0, Desc: true})

	if _, ok := unwrapSpan(CompileParallel(srt, 4)).(*parallelSortOp); !ok {
		t.Fatalf("sort over fragment compiled to %T, want parallel sort",
			unwrapSpan(CompileParallel(srt, 4)))
	}
	if _, ok := unwrapSpan(CompileParallel(srt, 1)).(*sortOp); !ok {
		t.Fatalf("workers=1 sort compiled to %T, want the serial operator",
			unwrapSpan(CompileParallel(srt, 1)))
	}

	// A sort over a blocking input stays serial; the fragment below the
	// blocking input still folds into a morsel leaf.
	overLimit := plan.NewSort(plan.NewLimit(chain, 5), plan.SortKey{Col: 0})
	root, ok := unwrapSpan(CompileParallel(overLimit, 4)).(*sortOp)
	if !ok {
		t.Fatalf("sort over limit compiled to %T", unwrapSpan(CompileParallel(overLimit, 4)))
	}
	lim, ok := unwrapSpan(root.input).(*limitOp)
	if !ok {
		t.Fatalf("sort input compiled to %T, want limit", unwrapSpan(root.input))
	}
	if _, ok := unwrapSpan(lim.input).(*morselExec); !ok {
		t.Fatalf("limit input compiled to %T, want morsel fragment", unwrapSpan(lim.input))
	}
}

func TestCompileParallelProbeLowering(t *testing.T) {
	build := numbersTable(t, "b", 100)
	probe := numbersTable(t, "p", 400)
	pk := probe.Schema.Col("k")
	probeChain := plan.NewFilter(plan.NewScan(probe, nil),
		expr.Cmp{Op: expr.LT, L: pk, R: expr.Const{V: expr.Int(350)}})
	j := plan.NewHashJoin(plan.NewScan(build, nil), probeChain,
		build.Schema.MustIndex("k"), probe.Schema.MustIndex("k"), nil)

	hj := unwrapSpan(CompileParallel(j, 4)).(*hashJoinOp)
	if hj.probeFrag == nil || hj.probe != nil {
		t.Fatalf("fragment probe at workers=4: probeFrag=%v probe=%T, want merged probe",
			hj.probeFrag, hj.probe)
	}
	hj1 := unwrapSpan(CompileParallel(j, 1)).(*hashJoinOp)
	if hj1.probeFrag != nil || hj1.probe == nil {
		t.Fatal("workers=1 must keep the serial probe operator")
	}

	// A blocking probe side cannot fold: the probe stays an operator tree.
	jb := plan.NewHashJoin(plan.NewScan(build, nil), plan.NewLimit(probeChain, 5),
		build.Schema.MustIndex("k"), probe.Schema.MustIndex("k"), nil)
	hjb := unwrapSpan(CompileParallel(jb, 4)).(*hashJoinOp)
	if hjb.probeFrag != nil || hjb.probe == nil {
		t.Fatal("probe over limit must not fold into a merged probe")
	}
}

// TestLoserTreeMatchesNaiveMerge drives the tournament tree over randomly
// generated sorted runs and checks the popped sequence against a naive
// sort of all rows by (key, ordinal) — duplicate keys everywhere, so the
// ordinal tie-break and the tree's construction both have to be right.
func TestLoserTreeMatchesNaiveMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := []plan.SortKey{{Col: 0}}
	for trial := 0; trial < 300; trial++ {
		nRuns := 1 + rng.Intn(13)
		type rec struct {
			key int64
			ord int64
		}
		var all []rec
		runs := make([]*sortedRun, nRuns)
		ord := int64(0)
		for r := range runs {
			sr := &sortedRun{buf: *expr.NewBatch(1)}
			n := 1 + rng.Intn(7)
			for i := 0; i < n; i++ {
				key := int64(rng.Intn(5)) // heavy duplication
				sr.buf.Cols[0].Append(expr.Int(key))
				sr.buf.N++
				sr.ord = append(sr.ord, ord)
				all = append(all, rec{key, ord})
				ord++
			}
			sr.perm = make([]int32, n)
			for i := range sr.perm {
				sr.perm[i] = int32(i)
			}
			sort.Slice(sr.perm, func(i, j int) bool {
				a, b := sr.perm[i], sr.perm[j]
				if c := sortCmp(keys, &sr.buf, a, &sr.buf, b); c != 0 {
					return c < 0
				}
				return sr.ord[a] < sr.ord[b]
			})
			runs[r] = sr
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].key != all[j].key {
				return all[i].key < all[j].key
			}
			return all[i].ord < all[j].ord
		})
		lt := newLoserTree(runs, keys)
		for i, want := range all {
			run, idx := lt.pop()
			if run == nil {
				t.Fatalf("trial %d: tree exhausted after %d of %d rows", trial, i, len(all))
			}
			if got := run.ord[idx]; got != want.ord {
				t.Fatalf("trial %d row %d: popped ordinal %d, want %d", trial, i, got, want.ord)
			}
		}
		if run, _ := lt.pop(); run != nil {
			t.Fatalf("trial %d: tree yielded rows past the end", trial)
		}
	}
}

func TestParallelSortEarlyCloseStopsWorkers(t *testing.T) {
	ctx, _ := testCtx()
	tb := numbersTable(t, "t", 20000)
	op := CompileParallel(plan.NewSort(plan.NewScan(tb, nil), plan.SortKey{Col: 0, Desc: true}), 4)
	if _, ok := unwrapSpan(op).(*parallelSortOp); !ok {
		t.Fatalf("compiled to %T, want parallel sort", unwrapSpan(op))
	}
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	// Abandon before the first Next: Close must stop the worker pool
	// without deadlocking, and be idempotent.
	if err := op.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := op.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestParallelProbeEarlyCloseStopsWorkers(t *testing.T) {
	ctx, _ := testCtx()
	build := numbersTable(t, "b", 200)
	probe := numbersTable(t, "p", 20000)
	j := plan.NewHashJoin(plan.NewScan(build, nil), plan.NewScan(probe, nil),
		build.Schema.MustIndex("k"), probe.Schema.MustIndex("k"), nil)
	op := CompileParallel(j, 4)
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	// Abandon after the build finished but before probing: Close must stop
	// the probe worker pool without deadlocking, and be idempotent.
	if err := op.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := op.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestParallelSortEmptyHeap(t *testing.T) {
	ctx, _ := testCtx()
	tb := numbersTable(t, "t", 0)
	rows := collect(t, CompileParallel(plan.NewSort(plan.NewScan(tb, nil), plan.SortKey{Col: 0}), 4), ctx)
	if len(rows) != 0 {
		t.Fatalf("sort over empty heap produced %d rows", len(rows))
	}
}

// TestParallelAggValueBudgetSealsRuns shrinks the SUM/AVG value-list
// budget far enough that every run seals partial tables at page
// boundaries, and requires the outcome to remain bit-identical to the
// serial path at every worker count.
func TestParallelAggValueBudgetSealsRuns(t *testing.T) {
	gt := groupedTable(t, "g", 4000)
	gk, gx := gt.Schema.Col("k"), gt.Schema.Col("x")
	p := plan.NewAgg(
		plan.NewScan(gt, expr.Cmp{Op: expr.GE, L: gk, R: expr.Const{V: expr.Int(10)}}),
		[]int{gt.Schema.MustIndex("g")}, fullAggSpecs(gx))
	serial := runWorkers(t, p, 1, false)
	if len(serial.rows) == 0 {
		t.Fatal("serial run produced no rows; the test would not bite")
	}
	for _, budget := range []int{1, 7, 64} {
		for _, w := range []int{2, 4, 8} {
			got := runWorkersTuned(t, p, w, false, func(op Operator) {
				unwrapSpan(op).(*parallelAggOp).valueBudget = budget
			})
			assertOutcomesIdentical(t, serial, got, fmt.Sprintf("budget=%d workers=%d", budget, w))
		}
	}
}
