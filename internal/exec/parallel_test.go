package exec

import (
	"testing"

	"ecodb/internal/energy"
	"ecodb/internal/expr"
	"ecodb/internal/hw/cpu"
	"ecodb/internal/plan"
	"ecodb/internal/sim"
	"ecodb/internal/storage"
)

// outcome captures everything a run charges to the simulated machine, for
// exact comparison across worker counts.
type outcome struct {
	rows   []expr.Row
	now    sim.Time
	stats  cpu.Stats
	joules energy.Joules
	hooks  int
	pool   storage.PoolStats
}

// runWorkers executes the plan with the given worker count on a fresh
// simulated machine (optionally disk-backed) and returns the outcome.
// workers <= 1 exercises the serial Compile path.
func runWorkers(t *testing.T, p plan.Node, workers int, withPool bool) outcome {
	t.Helper()
	ctx, clock := testCtx()
	var out outcome
	if withPool {
		ctx.Pool = storage.NewBufferPool(1<<20, readerFunc(func(n int64, seq bool) {
			clock.Advance(sim.Millisecond)
		}))
	}
	ctx.PageHook = func() { out.hooks++ }
	op := CompileParallel(p, workers)
	if err := Drain(ctx, op, func(b *expr.Batch) error {
		out.rows = b.AppendRowsTo(out.rows)
		return nil
	}); err != nil {
		t.Fatalf("drain (workers=%d): %v", workers, err)
	}
	ctx.Flush()
	out.now = clock.Now()
	out.stats = ctx.CPU.Stats()
	out.joules = ctx.CPU.Trace().Energy(0, clock.Now())
	if ctx.Pool != nil {
		out.pool = ctx.Pool.Stats()
	}
	return out
}

// assertOutcomesIdentical requires bit-identical simulation results: same
// rows, same simulated clock, same charged cycles by kind, same joules,
// same pool traffic and page hooks.
func assertOutcomesIdentical(t *testing.T, want, got outcome, label string) {
	t.Helper()
	if len(got.rows) != len(want.rows) {
		t.Fatalf("%s: %d rows, want %d", label, len(got.rows), len(want.rows))
	}
	for i := range got.rows {
		if len(got.rows[i]) != len(want.rows[i]) {
			t.Fatalf("%s: row %d arity differs", label, i)
		}
		for c := range got.rows[i] {
			if got.rows[i][c] != want.rows[i][c] {
				t.Fatalf("%s: row %d col %d: %v != %v", label, i, c, got.rows[i][c], want.rows[i][c])
			}
		}
	}
	if got.now != want.now {
		t.Fatalf("%s: simulated time %v != %v", label, got.now, want.now)
	}
	if got.stats != want.stats {
		t.Fatalf("%s: cpu stats differ:\n got %+v\nwant %+v", label, got.stats, want.stats)
	}
	if got.joules != want.joules {
		t.Fatalf("%s: joules %v != %v", label, got.joules, want.joules)
	}
	if got.hooks != want.hooks {
		t.Fatalf("%s: page hooks %d != %d", label, got.hooks, want.hooks)
	}
	if got.pool != want.pool {
		t.Fatalf("%s: pool stats %+v != %+v", label, got.pool, want.pool)
	}
}

// parallelPlans is the matrix of plan shapes the morsel executor must
// reproduce bit-identically: bare and filtered scans (fast-path and
// interpreted predicates), filter→project chains folded into the
// fragment, and parallel leaves under agg, join, sort and limit.
func parallelPlans(t *testing.T) map[string]plan.Node {
	t.Helper()
	tb := numbersTable(t, "t", 5000)
	other := numbersTable(t, "o", 1200)
	k, v := tb.Schema.Col("k"), tb.Schema.Col("v")
	interp := expr.And{Terms: []expr.Expr{
		expr.Cmp{Op: expr.GE, L: k, R: expr.Const{V: expr.Int(100)}},
		expr.Cmp{Op: expr.LT, L: v, R: expr.Const{V: expr.Int(40000)}},
	}}
	return map[string]plan.Node{
		"scan":          plan.NewScan(tb, nil),
		"filtered-scan": plan.NewScan(tb, expr.Cmp{Op: expr.LT, L: k, R: expr.Const{V: expr.Int(700)}}),
		"filter-project-chain": plan.NewProject(
			plan.NewFilter(plan.NewScan(tb, nil), interp),
			[]expr.Expr{expr.Arith{Op: expr.Add, L: k, R: v}, k},
			[]string{"sum", "k"}, []expr.Kind{expr.KindFloat, expr.KindInt}),
		"agg-over-parallel-scan": plan.NewAgg(
			plan.NewScan(tb, expr.Cmp{Op: expr.LT, L: k, R: expr.Const{V: expr.Int(2000)}}),
			nil,
			[]plan.AggSpec{{Func: plan.Sum, Arg: v, Name: "s"}, {Func: plan.Count, Name: "c"}}),
		"join-of-parallel-scans": plan.NewHashJoin(
			plan.NewScan(other, nil),
			plan.NewScan(tb, expr.Cmp{Op: expr.LT, L: k, R: expr.Const{V: expr.Int(600)}}),
			other.Schema.MustIndex("k"), tb.Schema.MustIndex("k"), nil),
		"sort-limit": plan.NewLimit(
			plan.NewSort(plan.NewScan(tb, nil), plan.SortKey{Col: 0, Desc: true}), 37),
	}
}

func TestParallelMatchesSerialBitIdentically(t *testing.T) {
	for name, p := range parallelPlans(t) {
		for _, withPool := range []bool{false, true} {
			serial := runWorkers(t, p, 1, withPool)
			if len(serial.rows) == 0 && name != "agg-over-parallel-scan" {
				// every non-agg shape must produce rows for the test to bite
				t.Fatalf("%s: serial run produced no rows", name)
			}
			for _, w := range []int{2, 3, 4, 8} {
				got := runWorkers(t, p, w, withPool)
				assertOutcomesIdentical(t, serial, got, name)
			}
		}
	}
}

func TestParallelRepeatedRunsBitIdentical(t *testing.T) {
	plans := parallelPlans(t)
	p := plans["filter-project-chain"]
	first := runWorkers(t, p, 4, true)
	for i := 0; i < 3; i++ {
		assertOutcomesIdentical(t, first, runWorkers(t, p, 4, true), "repeat")
	}
}

func TestCompileParallelFoldsFragments(t *testing.T) {
	tb := numbersTable(t, "t", 100)
	k := tb.Schema.Col("k")
	chain := plan.NewProject(
		plan.NewFilter(plan.NewScan(tb, nil),
			expr.Cmp{Op: expr.LT, L: k, R: expr.Const{V: expr.Int(10)}}),
		[]expr.Expr{k}, []string{"k"}, []expr.Kind{expr.KindInt})

	if _, ok := CompileParallel(chain, 4).(*morselExec); !ok {
		t.Fatal("scan→filter→project chain should fold into one morsel operator")
	}
	if _, ok := CompileParallel(chain, 1).(*morselExec); ok {
		t.Fatal("workers=1 must fall back to the serial operators")
	}
	// An agg root is not a fragment; its input chain still folds.
	agg := plan.NewAgg(chain, nil, []plan.AggSpec{{Func: plan.Count, Name: "c"}})
	root, ok := CompileParallel(agg, 4).(*aggOp)
	if !ok {
		t.Fatalf("agg root compiled to %T", CompileParallel(agg, 4))
	}
	if _, ok := root.input.(*morselExec); !ok {
		t.Fatalf("agg input compiled to %T, want morsel fragment", root.input)
	}
}

func TestMorselExecSchemaTracksFragment(t *testing.T) {
	tb := numbersTable(t, "t", 50)
	k := tb.Schema.Col("k")
	proj := plan.NewProject(plan.NewScan(tb, nil),
		[]expr.Expr{expr.Arith{Op: expr.Mul, L: k, R: k}},
		[]string{"k2"}, []expr.Kind{expr.KindFloat})
	op := CompileParallel(proj, 2)
	if op.Schema().NumCols() != 1 || op.Schema().Columns()[0].Name != "k2" {
		t.Fatalf("morsel schema = %v", op.Schema().Columns())
	}
}

func TestMorselExecEarlyCloseStopsWorkers(t *testing.T) {
	ctx, _ := testCtx()
	tb := numbersTable(t, "t", 20000)
	op := CompileParallel(plan.NewScan(tb, nil), 4)
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	b, err := op.Next(ctx)
	if err != nil || b == nil || b.Len() == 0 {
		t.Fatalf("first batch: %v, %v", b, err)
	}
	// Abandon the stream mid-scan: Close must stop the worker pool
	// without deadlocking, and be idempotent.
	if err := op.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := op.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestMorselExecEmptyHeap(t *testing.T) {
	ctx, _ := testCtx()
	tb := numbersTable(t, "t", 0)
	op := CompileParallel(plan.NewScan(tb, nil), 4)
	rows := collect(t, op, ctx)
	if len(rows) != 0 {
		t.Fatalf("empty heap produced %d rows", len(rows))
	}
}
