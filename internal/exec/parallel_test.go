package exec

import (
	"testing"

	"ecodb/internal/catalog"
	"ecodb/internal/energy"
	"ecodb/internal/expr"
	"ecodb/internal/hw/cpu"
	"ecodb/internal/plan"
	"ecodb/internal/sim"
	"ecodb/internal/storage"
)

// outcome captures everything a run charges to the simulated machine, for
// exact comparison across worker counts.
type outcome struct {
	rows   []expr.Row
	now    sim.Time
	stats  cpu.Stats
	joules energy.Joules
	hooks  int
	pool   storage.PoolStats
}

// runWorkers executes the plan with the given worker count on a fresh
// simulated machine (optionally disk-backed) and returns the outcome.
// workers <= 1 exercises the serial Compile path.
func runWorkers(t *testing.T, p plan.Node, workers int, withPool bool) outcome {
	t.Helper()
	return runWorkersTuned(t, p, workers, withPool, nil)
}

// runWorkersTuned is runWorkers with a hook to adjust the compiled
// operator tree before execution (e.g. shrink the parallel agg's value
// budget).
func runWorkersTuned(t *testing.T, p plan.Node, workers int, withPool bool, mut func(Operator)) outcome {
	t.Helper()
	ctx, clock := testCtx()
	var out outcome
	if withPool {
		ctx.Pool = storage.NewBufferPool(1<<20, readerFunc(func(n int64, seq bool) {
			clock.Advance(sim.Millisecond)
		}))
	}
	ctx.PageHook = func() { out.hooks++ }
	op := CompileParallel(p, workers)
	if mut != nil {
		mut(op)
	}
	if err := Drain(ctx, op, func(b *expr.Batch) error {
		out.rows = b.AppendRowsTo(out.rows)
		return nil
	}); err != nil {
		t.Fatalf("drain (workers=%d): %v", workers, err)
	}
	ctx.Flush()
	out.now = clock.Now()
	out.stats = ctx.CPU.Stats()
	out.joules = ctx.CPU.Trace().Energy(0, clock.Now())
	if ctx.Pool != nil {
		out.pool = ctx.Pool.Stats()
	}
	return out
}

// assertOutcomesIdentical requires bit-identical simulation results: same
// rows, same simulated clock, same charged cycles by kind, same joules,
// same pool traffic and page hooks.
func assertOutcomesIdentical(t *testing.T, want, got outcome, label string) {
	t.Helper()
	if len(got.rows) != len(want.rows) {
		t.Fatalf("%s: %d rows, want %d", label, len(got.rows), len(want.rows))
	}
	for i := range got.rows {
		if len(got.rows[i]) != len(want.rows[i]) {
			t.Fatalf("%s: row %d arity differs", label, i)
		}
		for c := range got.rows[i] {
			if got.rows[i][c] != want.rows[i][c] {
				t.Fatalf("%s: row %d col %d: %v != %v", label, i, c, got.rows[i][c], want.rows[i][c])
			}
		}
	}
	if got.now != want.now {
		t.Fatalf("%s: simulated time %v != %v", label, got.now, want.now)
	}
	if got.stats != want.stats {
		t.Fatalf("%s: cpu stats differ:\n got %+v\nwant %+v", label, got.stats, want.stats)
	}
	if got.joules != want.joules {
		t.Fatalf("%s: joules %v != %v", label, got.joules, want.joules)
	}
	if got.hooks != want.hooks {
		t.Fatalf("%s: page hooks %d != %d", label, got.hooks, want.hooks)
	}
	if got.pool != want.pool {
		t.Fatalf("%s: pool stats %+v != %+v", label, got.pool, want.pool)
	}
}

// groupedTable builds a table exercising the grouped-aggregation edge
// cases: a string group column with periodic NULL keys, an int key, and a
// float measure with periodic NULLs and enough irregular values that any
// reordering of SUM's float additions would change result bits.
func groupedTable(t *testing.T, name string, n int) *catalog.Table {
	t.Helper()
	tb := catalog.NewTable(name, catalog.NewSchema(
		catalog.Column{Name: "g", Kind: expr.KindString},
		catalog.Column{Name: "k", Kind: expr.KindInt},
		catalog.Column{Name: "x", Kind: expr.KindFloat},
	))
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i := 0; i < n; i++ {
		g := expr.String(names[i%len(names)])
		if i%11 == 0 {
			g = expr.Null()
		}
		x := expr.Float(float64(i)*0.37 - float64(i%13)/7)
		if i%7 == 0 {
			x = expr.Null()
		}
		tb.Insert(expr.Row{g, expr.Int(int64(i)), x})
	}
	return tb
}

// allNullKeyTable builds a table whose group column is NULL on every row.
func allNullKeyTable(t *testing.T, name string, n int) *catalog.Table {
	t.Helper()
	tb := catalog.NewTable(name, catalog.NewSchema(
		catalog.Column{Name: "g", Kind: expr.KindString},
		catalog.Column{Name: "x", Kind: expr.KindFloat},
	))
	for i := 0; i < n; i++ {
		tb.Insert(expr.Row{expr.Null(), expr.Float(float64(i) * 1.25)})
	}
	return tb
}

// fullAggSpecs is every aggregate function over the measure column at
// position x, plus both COUNT forms.
func fullAggSpecs(x expr.Expr) []plan.AggSpec {
	return []plan.AggSpec{
		{Func: plan.Sum, Arg: x, Name: "s"},
		{Func: plan.Count, Name: "c_star"},
		{Func: plan.Count, Arg: x, Name: "c_x"},
		{Func: plan.Min, Arg: x, Name: "mn"},
		{Func: plan.Max, Arg: x, Name: "mx"},
		{Func: plan.Avg, Arg: x, Name: "av"},
	}
}

// parallelPlans is the matrix of plan shapes the morsel executor must
// reproduce bit-identically: bare and filtered scans (fast-path and
// interpreted predicates), filter→project chains folded into the
// fragment, parallel pre-aggregation (grouped, global, empty-input,
// all-NULL-key), partitioned-build joins with merged parallel probes
// (NULL/duplicate probe keys, empty probe side), and parallel sorts
// (ASC/DESC, NULL keys at either end, duplicate keys, projected
// fragments, empty input, single page).
func parallelPlans(t *testing.T) map[string]plan.Node {
	t.Helper()
	tb := numbersTable(t, "t", 5000)
	// Above minPartitionBuildRows: "join-of-parallel-scans" exercises the
	// radix-partitioned build, while the grouped-table join below stays
	// under the threshold and covers the small-build single-map fallback.
	other := numbersTable(t, "o", 10000)
	gt := groupedTable(t, "g", 4000)
	nk := allNullKeyTable(t, "nk", 900)
	onePage := numbersTable(t, "p1", 50)
	k, v := tb.Schema.Col("k"), tb.Schema.Col("v")
	gk, gx := gt.Schema.Col("k"), gt.Schema.Col("x")
	interp := expr.And{Terms: []expr.Expr{
		expr.Cmp{Op: expr.GE, L: k, R: expr.Const{V: expr.Int(100)}},
		expr.Cmp{Op: expr.LT, L: v, R: expr.Const{V: expr.Int(40000)}},
	}}
	return map[string]plan.Node{
		"scan":          plan.NewScan(tb, nil),
		"filtered-scan": plan.NewScan(tb, expr.Cmp{Op: expr.LT, L: k, R: expr.Const{V: expr.Int(700)}}),
		"filter-project-chain": plan.NewProject(
			plan.NewFilter(plan.NewScan(tb, nil), interp),
			[]expr.Expr{expr.Arith{Op: expr.Add, L: k, R: v}, k},
			[]string{"sum", "k"}, []expr.Kind{expr.KindFloat, expr.KindInt}),
		"agg-over-parallel-scan": plan.NewAgg(
			plan.NewScan(tb, expr.Cmp{Op: expr.LT, L: k, R: expr.Const{V: expr.Int(2000)}}),
			nil,
			[]plan.AggSpec{{Func: plan.Sum, Arg: v, Name: "s"}, {Func: plan.Count, Name: "c"}}),
		"group-agg-over-fragment": plan.NewAgg(
			plan.NewScan(gt, expr.Cmp{Op: expr.LT, L: gk, R: expr.Const{V: expr.Int(3700)}}),
			[]int{gt.Schema.MustIndex("g")},
			fullAggSpecs(gx)),
		"group-agg-over-projected-fragment": plan.NewAgg(
			plan.NewProject(
				plan.NewFilter(plan.NewScan(gt, nil),
					expr.Cmp{Op: expr.GE, L: gk, R: expr.Const{V: expr.Int(250)}}),
				[]expr.Expr{gt.Schema.Col("g"), expr.Arith{Op: expr.Mul, L: gx, R: expr.Const{V: expr.Float(1.01)}}},
				[]string{"g", "x2"}, []expr.Kind{expr.KindString, expr.KindFloat}),
			[]int{0},
			[]plan.AggSpec{
				{Func: plan.Sum, Arg: expr.Col{Idx: 1}, Name: "s"},
				{Func: plan.Avg, Arg: expr.Col{Idx: 1}, Name: "av"},
			}),
		"group-agg-empty-input": plan.NewAgg(
			plan.NewScan(gt, expr.Cmp{Op: expr.LT, L: gk, R: expr.Const{V: expr.Int(-1)}}),
			[]int{gt.Schema.MustIndex("g")},
			fullAggSpecs(gx)),
		"agg-all-null-keys": plan.NewAgg(
			plan.NewScan(nk, nil),
			[]int{nk.Schema.MustIndex("g")},
			fullAggSpecs(nk.Schema.Col("x"))),
		"join-of-parallel-scans": plan.NewHashJoin(
			plan.NewScan(other, nil),
			plan.NewScan(tb, expr.Cmp{Op: expr.LT, L: k, R: expr.Const{V: expr.Int(600)}}),
			other.Schema.MustIndex("k"), tb.Schema.MustIndex("k"), nil),
		"join-dup-and-null-keys-residual": withResidual(plan.NewHashJoin(
			plan.NewScan(gt, nil), // g repeats per group and is NULL every 11th row
			plan.NewScan(gt, expr.Cmp{Op: expr.LT, L: gk, R: expr.Const{V: expr.Int(300)}}),
			gt.Schema.MustIndex("g"), gt.Schema.MustIndex("g"), nil),
			expr.Cmp{Op: expr.LT, L: expr.Col{Idx: 1}, R: expr.Col{Idx: 4}}),
		"join-empty-probe-side": plan.NewHashJoin(
			plan.NewScan(tb, nil),
			plan.NewScan(gt, expr.Cmp{Op: expr.LT, L: gk, R: expr.Const{V: expr.Int(-1)}}),
			tb.Schema.MustIndex("k"), gt.Schema.MustIndex("k"), nil),
		"sort-limit": plan.NewLimit(
			plan.NewSort(plan.NewScan(tb, nil), plan.SortKey{Col: 0, Desc: true}), 37),
		// g ascending puts its NULL keys first and repeats five group names
		// (duplicate primaries); x descending puts its NULL measures last.
		"sort-multi-key-nulls": plan.NewSort(plan.NewScan(gt, nil),
			plan.SortKey{Col: gt.Schema.MustIndex("g")},
			plan.SortKey{Col: gt.Schema.MustIndex("x"), Desc: true}),
		// A single heavily duplicated DESC key: almost every comparison ties
		// and falls through to arrival order, the stability property the
		// parallel sort must reproduce through global row ordinals.
		"sort-desc-dup-keys": plan.NewSort(
			plan.NewScan(gt, expr.Cmp{Op: expr.GE, L: gk, R: expr.Const{V: expr.Int(500)}}),
			plan.SortKey{Col: gt.Schema.MustIndex("g"), Desc: true}),
		"sort-projected-fragment": plan.NewSort(
			plan.NewProject(
				plan.NewFilter(plan.NewScan(tb, nil), interp),
				[]expr.Expr{expr.Arith{Op: expr.Add, L: k, R: v}, k},
				[]string{"sum", "k"}, []expr.Kind{expr.KindFloat, expr.KindInt}),
			plan.SortKey{Col: 0, Desc: true}),
		"sort-empty-input": plan.NewSort(
			plan.NewScan(gt, expr.Cmp{Op: expr.LT, L: gk, R: expr.Const{V: expr.Int(-1)}}),
			plan.SortKey{Col: gt.Schema.MustIndex("g")}),
		"sort-single-page": plan.NewSort(plan.NewScan(onePage, nil),
			plan.SortKey{Col: 0, Desc: true}),
	}
}

// withResidual attaches a residual predicate built against the join's
// concatenated schema.
func withResidual(j *plan.HashJoin, residual expr.Expr) *plan.HashJoin {
	j.Residual = residual
	return j
}

func TestParallelMatchesSerialBitIdentically(t *testing.T) {
	// Shapes whose serial run legitimately produces no rows.
	emptyOK := map[string]bool{
		"group-agg-empty-input": true,
		"sort-empty-input":      true,
		"join-empty-probe-side": true,
	}
	for name, p := range parallelPlans(t) {
		for _, withPool := range []bool{false, true} {
			serial := runWorkers(t, p, 1, withPool)
			if len(serial.rows) == 0 && !emptyOK[name] {
				// every other shape must produce rows for the test to bite
				t.Fatalf("%s: serial run produced no rows", name)
			}
			for _, w := range []int{2, 3, 4, 8} {
				got := runWorkers(t, p, w, withPool)
				assertOutcomesIdentical(t, serial, got, name)
			}
		}
	}
}

func TestParallelRepeatedRunsBitIdentical(t *testing.T) {
	plans := parallelPlans(t)
	for _, name := range []string{
		"filter-project-chain", "group-agg-over-fragment",
		"sort-desc-dup-keys", "join-dup-and-null-keys-residual",
	} {
		p := plans[name]
		first := runWorkers(t, p, 4, true)
		for i := 0; i < 3; i++ {
			assertOutcomesIdentical(t, first, runWorkers(t, p, 4, true), name+"-repeat")
		}
	}
}

func TestParallelAggEarlyCloseStopsWorkers(t *testing.T) {
	ctx, _ := testCtx()
	gt := groupedTable(t, "g", 20000)
	p := plan.NewAgg(plan.NewScan(gt, nil), []int{0},
		[]plan.AggSpec{{Func: plan.Count, Name: "c"}})
	op := CompileParallel(p, 4)
	if _, ok := unwrapSpan(op).(*parallelAggOp); !ok {
		t.Fatalf("compiled to %T, want parallel agg", unwrapSpan(op))
	}
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	// Abandon before the first Next: Close must stop the worker pool
	// without deadlocking, and be idempotent.
	if err := op.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := op.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestParallelAggEmptyHeap(t *testing.T) {
	ctx, _ := testCtx()
	tb := numbersTable(t, "t", 0)
	p := plan.NewAgg(plan.NewScan(tb, nil), []int{0},
		[]plan.AggSpec{{Func: plan.Count, Name: "c"}})
	rows := collect(t, CompileParallel(p, 4), ctx)
	if len(rows) != 0 {
		t.Fatalf("grouped agg over empty heap produced %d rows", len(rows))
	}

	// A global aggregate over an empty heap still yields its one row.
	ctx2, _ := testCtx()
	g := plan.NewAgg(plan.NewScan(tb, nil), nil,
		[]plan.AggSpec{{Func: plan.Count, Name: "c"}, {Func: plan.Sum, Arg: tb.Schema.Col("v"), Name: "s"}})
	rows = collect(t, CompileParallel(g, 4), ctx2)
	if len(rows) != 1 || rows[0][0].I != 0 || !rows[0][1].IsNull() {
		t.Fatalf("global agg over empty heap = %v, want one (0, NULL) row", rows)
	}
}

func TestCompileParallelFoldsFragments(t *testing.T) {
	tb := numbersTable(t, "t", 100)
	k := tb.Schema.Col("k")
	chain := plan.NewProject(
		plan.NewFilter(plan.NewScan(tb, nil),
			expr.Cmp{Op: expr.LT, L: k, R: expr.Const{V: expr.Int(10)}}),
		[]expr.Expr{k}, []string{"k"}, []expr.Kind{expr.KindInt})

	if _, ok := unwrapSpan(CompileParallel(chain, 4)).(*morselExec); !ok {
		t.Fatal("scan→filter→project chain should fold into one morsel operator")
	}
	if _, ok := unwrapSpan(CompileParallel(chain, 1)).(*morselExec); ok {
		t.Fatal("workers=1 must fall back to the serial operators")
	}
	// An agg over a fragment absorbs it: workers pre-aggregate morsels.
	agg := plan.NewAgg(chain, nil, []plan.AggSpec{{Func: plan.Count, Name: "c"}})
	if _, ok := unwrapSpan(CompileParallel(agg, 4)).(*parallelAggOp); !ok {
		t.Fatalf("agg over fragment compiled to %T, want parallel agg", unwrapSpan(CompileParallel(agg, 4)))
	}
	if _, ok := unwrapSpan(CompileParallel(agg, 1)).(*aggOp); !ok {
		t.Fatalf("workers=1 agg compiled to %T, want the serial operator", unwrapSpan(CompileParallel(agg, 1)))
	}

	// An agg over a non-fragment input stays serial; the chain below the
	// blocking input still folds into a morsel leaf.
	overLimit := plan.NewAgg(plan.NewLimit(chain, 5), nil,
		[]plan.AggSpec{{Func: plan.Count, Name: "c"}})
	root, ok := unwrapSpan(CompileParallel(overLimit, 4)).(*aggOp)
	if !ok {
		t.Fatalf("agg over limit compiled to %T", unwrapSpan(CompileParallel(overLimit, 4)))
	}
	lim, ok := unwrapSpan(root.input).(*limitOp)
	if !ok {
		t.Fatalf("agg input compiled to %T, want limit", unwrapSpan(root.input))
	}
	if _, ok := unwrapSpan(lim.input).(*morselExec); !ok {
		t.Fatalf("limit input compiled to %T, want morsel fragment", unwrapSpan(lim.input))
	}
}

func TestMorselExecSchemaTracksFragment(t *testing.T) {
	tb := numbersTable(t, "t", 50)
	k := tb.Schema.Col("k")
	proj := plan.NewProject(plan.NewScan(tb, nil),
		[]expr.Expr{expr.Arith{Op: expr.Mul, L: k, R: k}},
		[]string{"k2"}, []expr.Kind{expr.KindFloat})
	op := CompileParallel(proj, 2)
	if op.Schema().NumCols() != 1 || op.Schema().Columns()[0].Name != "k2" {
		t.Fatalf("morsel schema = %v", op.Schema().Columns())
	}
}

func TestMorselExecEarlyCloseStopsWorkers(t *testing.T) {
	ctx, _ := testCtx()
	tb := numbersTable(t, "t", 20000)
	op := CompileParallel(plan.NewScan(tb, nil), 4)
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	b, err := op.Next(ctx)
	if err != nil || b == nil || b.Len() == 0 {
		t.Fatalf("first batch: %v, %v", b, err)
	}
	// Abandon the stream mid-scan: Close must stop the worker pool
	// without deadlocking, and be idempotent.
	if err := op.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := op.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestMorselExecEmptyHeap(t *testing.T) {
	ctx, _ := testCtx()
	tb := numbersTable(t, "t", 0)
	op := CompileParallel(plan.NewScan(tb, nil), 4)
	rows := collect(t, op, ctx)
	if len(rows) != 0 {
		t.Fatalf("empty heap produced %d rows", len(rows))
	}
}
