package exec

import (
	"ecodb/internal/expr"
)

// Scan-time zone-map pruning, shared by the three access paths (private
// scanOp, morsel fragments, shared-scan consumers).
//
// Pruning is a pure skip decision: the predicate a page is checked against
// is only ever used to prove "no row here can pass", never to drop the
// actual filtering work, so results are bit-identical with pruning on or
// off. What changes is the charge stream — a pruned page costs one
// ZoneCheckCycles constant instead of a buffer-pool access, a disk read,
// page streaming, and per-tuple interpretation.

// prunePredicate decides whether a scan runs with pruning active and
// returns the predicate pages are checked against: pred when the global
// toggle is on and pred has a prunable shape, nil otherwise. A nil return
// means "never check, never charge".
func prunePredicate(pred expr.Expr) expr.Expr {
	if pred == nil || !expr.ZoneMapPruning() || !expr.Prunable(pred) {
		return nil
	}
	return pred
}

// conjoinPrune combines a scan's own filter with downstream filter
// predicates pushed down for the prune decision only. Terms must all
// reference the scan's schema (callers stop collecting at the first
// projection).
func conjoinPrune(terms []expr.Expr) expr.Expr {
	switch len(terms) {
	case 0:
		return nil
	case 1:
		return terms[0]
	default:
		return expr.And{Terms: terms}
	}
}

// Pages skipped by zone-map pruning are counted in the process-wide
// metrics registry (obsv.PagesPruned) — once per physical skip: per page
// for private scans and morsel fragments, once per pass step for shared
// scans regardless of how many consumers observe the skip. Callers that
// used the old PrunedPages/ResetPrunedPages pair read snapshot deltas of
// obsv.PagesPruned instead.
