package exec

import (
	"fmt"
	"testing"

	"ecodb/internal/catalog"
	"ecodb/internal/expr"
	"ecodb/internal/obsv"
	"ecodb/internal/plan"
	"ecodb/internal/scanshare"
)

// clusteredTable builds the pruning test fixture: a monotone int key (so
// heap pages cover narrow disjoint key bands — the shape zone maps prune),
// a string column laid out in contiguous runs (so string-equality scans
// prune too, and dictionary encoding has a few distinct words to encode),
// and a float measure. Periodic NULLs in both s and x keep the NULL
// semantics honest under pruning and encoding.
func clusteredTable(t *testing.T, name string, n int) *catalog.Table {
	t.Helper()
	tb := catalog.NewTable(name, catalog.NewSchema(
		catalog.Column{Name: "k", Kind: expr.KindInt},
		catalog.Column{Name: "s", Kind: expr.KindString},
		catalog.Column{Name: "x", Kind: expr.KindFloat},
	))
	const nWords = 40
	for i := 0; i < n; i++ {
		s := expr.String(fmt.Sprintf("w%02d", (i*nWords)/n))
		if i%13 == 0 {
			s = expr.Null()
		}
		x := expr.Float(float64(i)*0.37 - float64(i%11)/7)
		if i%7 == 0 {
			x = expr.Null()
		}
		tb.Insert(expr.Row{expr.Int(int64(i)), s, x})
	}
	return tb
}

// prunePlans builds the plan-shape matrix against fresh fixture tables:
// pruned range scans, string-equality scans (dictionary fodder), pushdown
// through fused filter chains, parallel aggregation over a pruned
// fragment, and a partitioned-build string join whose probe side prunes
// (the vectorized HashVec probe path under dictionary encoding).
func prunePlans(t *testing.T) map[string]plan.Node {
	t.Helper()
	tb := clusteredTable(t, "c", 6000)
	big := clusteredTable(t, "b", 10000)
	if expr.DictStrings() {
		tb.Heap.CompressStrings()
		big.Heap.CompressStrings()
	}
	k, s, x := tb.Schema.Col("k"), tb.Schema.Col("s"), tb.Schema.Col("x")
	return map[string]plan.Node{
		"range-scan": plan.NewScan(tb, expr.Between{E: k, Lo: expr.Int(800), Hi: expr.Int(1100)}),
		"string-eq-scan": plan.NewScan(tb, expr.Cmp{
			Op: expr.EQ, L: s, R: expr.Const{V: expr.String("w07")}}),
		"fused-chain": plan.NewProject(
			plan.NewFilter(plan.NewScan(tb, nil), expr.And{Terms: []expr.Expr{
				expr.Cmp{Op: expr.GE, L: k, R: expr.Const{V: expr.Int(4000)}},
				expr.Cmp{Op: expr.LT, L: x, R: expr.Const{V: expr.Float(1900)}},
			}}),
			[]expr.Expr{s, expr.Arith{Op: expr.Mul, L: x, R: expr.Const{V: expr.Float(2)}}},
			[]string{"s", "x2"}, []expr.Kind{expr.KindString, expr.KindFloat}),
		"agg-over-pruned-fragment": plan.NewAgg(
			plan.NewScan(tb, expr.Between{E: k, Lo: expr.Int(500), Hi: expr.Int(2500)}),
			[]int{tb.Schema.MustIndex("s")},
			[]plan.AggSpec{
				{Func: plan.Sum, Arg: x, Name: "sx"},
				{Func: plan.Count, Name: "c"},
			}),
		// big (10000 rows ≥ minPartitionBuildRows) builds partitioned under
		// parallel compilation, so the probe side hashes through HashVec —
		// over dictionary codes when encoding is on — while its scan prunes.
		"string-join-pruned-probe": plan.NewHashJoin(
			plan.NewScan(big, nil),
			plan.NewScan(tb, expr.Between{E: k, Lo: expr.Int(100), Hi: expr.Int(700)}),
			big.Schema.MustIndex("s"), tb.Schema.MustIndex("s"), nil),
	}
}

// TestPruningAndDictResultsIdentical is the compression tentpole's
// correctness gate: for every plan shape, query results are bit-identical
// across all four {zone-maps × dict-strings} toggle combinations, and
// within each combination the full simulated outcome — rows, clock, cycles
// by kind, joules, pool traffic, page hooks — is bit-identical across
// worker counts. (Joules legitimately differ BETWEEN combinations: pruning
// skips work. Results never do.)
func TestPruningAndDictResultsIdentical(t *testing.T) {
	defer expr.SetZoneMapPruning(expr.ZoneMapPruning())
	defer expr.SetDictStrings(expr.DictStrings())

	combos := []struct {
		name     string
		zm, dict bool
	}{
		{"plain", false, false},
		{"zonemaps", true, false},
		{"dict", false, true},
		{"zonemaps+dict", true, true},
	}
	refRows := map[string][]expr.Row{}
	for _, combo := range combos {
		expr.SetZoneMapPruning(combo.zm)
		expr.SetDictStrings(combo.dict)
		for name, p := range prunePlans(t) {
			label := name + "/" + combo.name
			serial := runWorkers(t, p, 1, true)
			if len(serial.rows) == 0 {
				t.Fatalf("%s: serial run produced no rows — fixture no longer bites", label)
			}
			if combo.name == "plain" {
				refRows[name] = serial.rows
			} else {
				want := refRows[name]
				if len(serial.rows) != len(want) {
					t.Fatalf("%s: %d rows, plain-storage reference %d", label, len(serial.rows), len(want))
				}
				for i := range want {
					for c := range want[i] {
						if serial.rows[i][c] != want[i][c] {
							t.Fatalf("%s: row %d col %d = %v, plain %v", label, i, c, serial.rows[i][c], want[i][c])
						}
					}
				}
			}
			for _, w := range []int{2, 4} {
				assertOutcomesIdentical(t, serial, runWorkers(t, p, w, true), label)
			}
		}
	}
}

// TestScanPrunesPages pins the counter semantics: a selective range scan
// skips pages only when pruning is on, and skipped pages never reach the
// buffer pool.
func TestScanPrunesPages(t *testing.T) {
	defer expr.SetZoneMapPruning(expr.ZoneMapPruning())
	tb := clusteredTable(t, "c", 6000)
	p := plan.NewScan(tb, expr.Between{E: tb.Schema.Col("k"), Lo: expr.Int(800), Hi: expr.Int(1100)})

	expr.SetZoneMapPruning(false)
	before := obsv.PagesPruned.Load()
	off := runWorkers(t, p, 1, true)
	if got := obsv.PagesPruned.Load() - before; got != 0 {
		t.Fatalf("pruning off: counter delta = %d, want 0", got)
	}

	expr.SetZoneMapPruning(true)
	before = obsv.PagesPruned.Load()
	on := runWorkers(t, p, 1, true)
	pruned := obsv.PagesPruned.Load() - before
	if pruned == 0 {
		t.Fatal("pruning on: no pages pruned on a clustered range scan")
	}
	if int64(on.hooks)+pruned != int64(off.hooks) {
		t.Fatalf("page hooks %d + pruned %d != unpruned hooks %d", on.hooks, pruned, off.hooks)
	}
	onAcc, offAcc := on.pool.Hits+on.pool.Misses, off.pool.Hits+off.pool.Misses
	if onAcc+pruned != offAcc {
		t.Fatalf("pool accesses %d + pruned %d != unpruned accesses %d", onAcc, pruned, offAcc)
	}
}

// TestSharedScanPruningMatchesPrivate extends the shared-alone ≡ private
// simulation identity to the pruning path: one consumer on a coordinator,
// zone maps on, versus a private scan of the same predicate.
func TestSharedScanPruningMatchesPrivate(t *testing.T) {
	defer expr.SetZoneMapPruning(expr.ZoneMapPruning())
	expr.SetZoneMapPruning(true)

	tb := clusteredTable(t, "c", 6000)
	pred := expr.Between{E: tb.Schema.Col("k"), Lo: expr.Int(800), Hi: expr.Int(1100)}

	ctxPriv, clockPriv := testCtx()
	want := collect(t, Compile(plan.NewScan(tb, pred)), ctxPriv)
	ctxPriv.Flush()

	coord := scanshare.NewCoordinator(tb.Heap, tb.Name, nil)
	ctxShared, clockShared := testCtx()
	got := collect(t, NewSharedScan(coord, tb, pred), ctxShared)
	ctxShared.Flush()

	if len(got) != len(want) {
		t.Fatalf("shared pruned scan returned %d rows, private %d", len(got), len(want))
	}
	for i := range got {
		for c := range got[i] {
			if got[i][c] != want[i][c] {
				t.Fatalf("row %d col %d differs: %v vs %v", i, c, got[i][c], want[i][c])
			}
		}
	}
	if clockShared.Now() != clockPriv.Now() {
		t.Fatalf("shared-alone time %v differs from private %v under pruning", clockShared.Now(), clockPriv.Now())
	}
	if ctxShared.CPU.Stats() != ctxPriv.CPU.Stats() {
		t.Fatalf("shared-alone cycles differ from private under pruning:\n got %+v\nwant %+v",
			ctxShared.CPU.Stats(), ctxPriv.CPU.Stats())
	}
	st := coord.Stats()
	if st.PagesPruned == 0 {
		t.Fatal("coordinator skipped no pages on a clustered range scan")
	}
	if st.PagesSurfaced+st.PagesPruned != int64(tb.Heap.NumPages()) {
		t.Fatalf("surfaced %d + pruned %d != %d heap pages", st.PagesSurfaced, st.PagesPruned, tb.Heap.NumPages())
	}
}
