package exec

import (
	"ecodb/internal/catalog"
	"ecodb/internal/expr"
	"ecodb/internal/plan"
	"ecodb/internal/scanshare"
)

// sharedScanOp is the shared-scan leaf: Open attaches the query to the
// table's shared circular pass, Next pulls pages from the coordinator, and
// Close detaches. The charging split is the scanshare contract — the
// surface hook (page-stream cycles, page hook; plus the buffer-pool access
// inside the coordinator's CircularScan) fires once per page the PASS
// surfaces, on whichever consumer's pull advanced it, while per-tuple
// interpretation and predicate work are charged here, per consumer, for
// every page this query processes. Output batches are page-granular and
// the per-page cost-window flush mirrors scanOp exactly, so a shared scan
// driven alone is simulation-identical to a private one.
type sharedScanOp struct {
	coord  *scanshare.Coordinator
	table  *catalog.Table
	filter expr.Expr
	prio   int

	cons    *scanshare.Consumer
	pruning bool       // zone-map pruning active for this execution
	view    expr.Batch // current page view; Sel points into sel
	sel     []int32
	meter   expr.Cost
}

// NewSharedScan returns a shared-scan leaf operator over table, attached
// to coord on Open. filter may be nil for a full scan.
func NewSharedScan(coord *scanshare.Coordinator, table *catalog.Table, filter expr.Expr) Operator {
	return NewSharedScanWith(coord, table, filter, 0)
}

// NewSharedScanWith is NewSharedScan with an attach priority, recorded on
// the consumer for the drain policy (see scanshare.Coordinator.AttachWith).
func NewSharedScanWith(coord *scanshare.Coordinator, table *catalog.Table, filter expr.Expr, priority int) Operator {
	return &sharedScanOp{coord: coord, table: table, filter: filter, prio: priority}
}

func (s *sharedScanOp) Schema() *catalog.Schema { return s.table.Schema }

func (s *sharedScanOp) Open(ctx *Ctx) error {
	if pruner := prunePredicate(s.filter); pruner != nil {
		s.pruning = true
		s.cons = s.coord.AttachWith(func(zones []expr.Zone) bool {
			return expr.ZonePrunes(pruner, zones)
		}, s.prio)
		return nil
	}
	s.pruning = false
	s.cons = s.coord.AttachWith(nil, s.prio)
	return nil
}

func (s *sharedScanOp) Next(ctx *Ctx) (*expr.Batch, error) {
	for {
		ctx.Flush() // close the previous page's pipeline-wide cost window
		_, page, pruned, ok := s.cons.Next(func(_ int, bytes int64) {
			// Shared charges: fired once per pass, on the advancing pull.
			ctx.chargePageStream(bytes)
		})
		if !ok {
			return nil, nil
		}
		if s.pruning {
			// The zone-map consult runs per examined step, pruned or not.
			ctx.chargeZoneCheck()
		}
		if pruned {
			// Not counted in the global pruned-pages metric: the pass's
			// physical skip was already counted once, by the coordinator,
			// when it advanced past the page. This consumer merely observed
			// the skip; its view of it lands on the span via PagesPruned().
			continue
		}
		// Per-consumer charges: every query interprets the tuples itself.
		ctx.chargePageTuples(page.NumRows())
		s.view.Alias(&page.Data, nil)
		if s.filter != nil {
			s.sel = expr.FilterBatch(s.filter, &s.view, s.sel, &s.meter)
			ctx.ChargeExpr(&s.meter)
			if len(s.sel) == 0 {
				continue
			}
			s.view.Sel = s.sel
		}
		return &s.view, nil
	}
}

func (s *sharedScanOp) Close(ctx *Ctx) error {
	if s.cons != nil {
		if ctx.Obs != nil {
			// Fill the span's shared-pass detail before detaching: where
			// this consumer entered the circular pass, how many surfaced
			// pages it saw, and how many pass steps it skipped as pruned.
			sp := ctx.Obs.Cur()
			sp.Shared = true
			sp.SharedEntry = s.cons.Entry()
			sp.SharedSeen = s.cons.PagesSeen()
			sp.SharedPruned = s.cons.PagesPruned()
		}
		s.cons.Close()
		s.cons = nil
	}
	s.view, s.sel = expr.Batch{}, nil
	return nil
}

// ScanLeaf builds the physical leaf for one plan.Scan during lowering —
// the hook CompileLeaf uses to swap private page scans for shared-scan
// consumers.
type ScanLeaf func(*plan.Scan) Operator

// CompileLeaf lowers a plan through the single compile switch (see
// parallel.go) but produces every scan leaf through leaf instead of the
// private scanOp. Morsel parallelization is disabled: the leaves
// coordinate through external machinery (a shared pass) that owns their
// page order.
func CompileLeaf(n plan.Node, leaf ScanLeaf) Operator {
	return compile(n, 1, leaf)
}
