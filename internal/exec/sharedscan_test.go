package exec

import (
	"testing"

	"ecodb/internal/expr"
	"ecodb/internal/hw/cpu"
	"ecodb/internal/plan"
	"ecodb/internal/scanshare"
)

func TestSharedScanSingleConsumerMatchesPrivateScan(t *testing.T) {
	tb := numbersTable(t, "t", 5000)
	pred := expr.Cmp{Op: expr.LT, L: tb.Schema.Col("k"), R: expr.Const{V: expr.Int(1000)}}

	ctxPriv, clockPriv := testCtx()
	want := collect(t, Compile(plan.NewScan(tb, pred)), ctxPriv)
	ctxPriv.Flush()

	coord := scanshare.NewCoordinator(tb.Heap, tb.Name, nil)
	ctxShared, clockShared := testCtx()
	got := collect(t, NewSharedScan(coord, tb, pred), ctxShared)
	ctxShared.Flush()

	if len(got) != len(want) {
		t.Fatalf("shared scan returned %d rows, private %d", len(got), len(want))
	}
	for i := range got {
		for c := range got[i] {
			if got[i][c] != want[i][c] {
				t.Fatalf("row %d col %d differs: %v vs %v", i, c, got[i][c], want[i][c])
			}
		}
	}
	// A shared scan driven alone charges exactly what the private scan
	// charges: identical simulated time.
	if clockShared.Now() != clockPriv.Now() {
		t.Fatalf("shared-alone time %v differs from private %v", clockShared.Now(), clockPriv.Now())
	}
	if coord.Attached() != 0 {
		t.Fatal("consumer not detached on Close")
	}
}

// N concurrent shared scans round-robined to completion: per-query rows
// bit-identical to private scans, page-stream cycles charged once per pass
// (not once per consumer), per-tuple compute charged per consumer.
func TestSharedScanChargesStreamOncePerPass(t *testing.T) {
	tb := numbersTable(t, "t", 5000)
	preds := []expr.Expr{
		expr.Cmp{Op: expr.LT, L: tb.Schema.Col("k"), R: expr.Const{V: expr.Int(500)}},
		expr.Cmp{Op: expr.GE, L: tb.Schema.Col("k"), R: expr.Const{V: expr.Int(4500)}},
		expr.Between{E: tb.Schema.Col("k"), Lo: expr.Int(1000), Hi: expr.Int(1200)},
	}

	// Private baseline: each query its own pass on its own machine.
	var wantRows [][]expr.Row
	var privStream float64
	for _, p := range preds {
		ctx, _ := testCtx()
		wantRows = append(wantRows, collect(t, Compile(plan.NewScan(tb, p)), ctx))
		ctx.Flush()
		privStream += ctx.CPU.Stats().CyclesByKind[cpu.Stream]
	}

	// Shared: all three consumers on one machine, one coordinator.
	ctx, _ := testCtx()
	coord := scanshare.NewCoordinator(tb.Heap, tb.Name, nil)
	ops := make([]Operator, len(preds))
	for i, p := range preds {
		ops[i] = NewSharedScan(coord, tb, p)
		if err := ops[i].Open(ctx); err != nil {
			t.Fatal(err)
		}
	}
	gotRows := make([][]expr.Row, len(preds))
	remaining := len(ops)
	for remaining > 0 {
		for i, op := range ops {
			if op == nil {
				continue
			}
			b, err := op.Next(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if b == nil {
				ops[i].Close(ctx)
				ops[i] = nil
				remaining--
				continue
			}
			gotRows[i] = b.AppendRowsTo(gotRows[i])
		}
	}
	ctx.Flush()

	for qi := range preds {
		if len(gotRows[qi]) != len(wantRows[qi]) {
			t.Fatalf("query %d: %d rows shared vs %d private", qi, len(gotRows[qi]), len(wantRows[qi]))
		}
		for i := range gotRows[qi] {
			for c := range gotRows[qi][i] {
				if gotRows[qi][i][c] != wantRows[qi][i][c] {
					t.Fatalf("query %d row %d col %d differs", qi, i, c)
				}
			}
		}
	}

	st := coord.Stats()
	if st.PagesSurfaced != int64(tb.Heap.NumPages()) {
		t.Fatalf("pass surfaced %d pages, want %d (one pass)", st.PagesSurfaced, tb.Heap.NumPages())
	}
	if st.PagesDelivered != 3*st.PagesSurfaced {
		t.Fatalf("delivered %d, want 3×%d", st.PagesDelivered, st.PagesSurfaced)
	}
	// One I/O stream: the shared run's stream cycles are one pass's worth —
	// a third of what three private passes charged.
	sharedStream := ctx.CPU.Stats().CyclesByKind[cpu.Stream]
	if want := privStream / 3; sharedStream != want {
		t.Fatalf("shared stream cycles = %v, want one pass %v (private total %v)",
			sharedStream, want, privStream)
	}
	// N consumer fragments: per-tuple compute still charged per consumer —
	// the shared run's compute+stall cycles match the private total.
	shared := ctx.CPU.Stats().CyclesByKind
	var privCompute, privStall float64
	for _, p := range preds {
		c2, _ := testCtx()
		collect(t, Compile(plan.NewScan(tb, p)), c2)
		c2.Flush()
		privCompute += c2.CPU.Stats().CyclesByKind[cpu.Compute]
		privStall += c2.CPU.Stats().CyclesByKind[cpu.MemStall]
	}
	if shared[cpu.Compute] != privCompute || shared[cpu.MemStall] != privStall {
		t.Fatalf("per-consumer cycles differ: shared %v/%v vs private %v/%v",
			shared[cpu.Compute], shared[cpu.MemStall], privCompute, privStall)
	}
}

// CompileLeaf lowers whole plans over shared leaves: a projection over a
// filtered shared scan must produce exactly what the private pipeline does.
func TestCompileLeafSharedPipeline(t *testing.T) {
	tb := numbersTable(t, "t", 3000)
	p := plan.NewProject(
		plan.NewFilter(plan.NewScan(tb, nil), expr.Cmp{
			Op: expr.LT, L: tb.Schema.Col("k"), R: expr.Const{V: expr.Int(100)}}),
		[]expr.Expr{expr.Arith{Op: expr.Add, L: tb.Schema.Col("v"), R: expr.Const{V: expr.Int(1)}}},
		[]string{"v1"}, []expr.Kind{expr.KindInt})

	ctx1, _ := testCtx()
	want := collect(t, Compile(p), ctx1)

	coord := scanshare.NewCoordinator(tb.Heap, tb.Name, nil)
	op := CompileLeaf(p, func(scan *plan.Scan) Operator {
		return NewSharedScan(coord, scan.Table, scan.Filter)
	})
	ctx2, _ := testCtx()
	got := collect(t, op, ctx2)

	if len(got) != len(want) {
		t.Fatalf("%d rows vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i][0] != want[i][0] {
			t.Fatalf("row %d differs: %v vs %v", i, got[i], want[i])
		}
	}
	if coord.Stats().PagesSurfaced != int64(tb.Heap.NumPages()) {
		t.Fatal("shared leaf did not drive the pass")
	}
}

func TestSharedScanEmptyTable(t *testing.T) {
	tb := numbersTable(t, "empty", 0)
	coord := scanshare.NewCoordinator(tb.Heap, tb.Name, nil)
	ctx, _ := testCtx()
	rows := collect(t, NewSharedScan(coord, tb, nil), ctx)
	if len(rows) != 0 {
		t.Fatalf("empty table returned %d rows", len(rows))
	}
}
