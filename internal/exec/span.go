package exec

import (
	"ecodb/internal/catalog"
	"ecodb/internal/expr"
	"ecodb/internal/obsv"
)

// spanOp wraps a physical operator with a profile span. compile inserts one
// around every operator it lowers, so the profile tree mirrors the executed
// operator tree exactly. With profiling off (ctx.Obs == nil) the wrapper is
// a single nil check per call and allocates nothing; with profiling on it
// brackets the inner operator's Open/Next/Close so every charge the
// operator makes — including charges made while pulling from its children,
// which bracket themselves the same way — attributes to the innermost
// active span, i.e. the operator that charged it.
type spanOp struct {
	inner Operator
	kind  obsv.Kind
	label string
	table string
	span  *obsv.Span
}

func wrapSpan(op Operator, kind obsv.Kind, label, table string) Operator {
	return &spanOp{inner: op, kind: kind, label: label, table: table}
}

// unwrapSpan returns the operator beneath a span wrapper, for the compile
// steps that sniff concrete operator types (scan prune pushdown).
func unwrapSpan(op Operator) Operator {
	if w, ok := op.(*spanOp); ok {
		return w.inner
	}
	return op
}

func (w *spanOp) Schema() *catalog.Schema { return w.inner.Schema() }

func (w *spanOp) Open(ctx *Ctx) error {
	if ctx.Obs == nil {
		return w.inner.Open(ctx)
	}
	w.span = ctx.Obs.OpenSpan(w.kind, w.label, w.table, ctx.CPU.Clock().Now())
	err := w.inner.Open(ctx)
	ctx.Obs.Pop(ctx.CPU.Clock().Now())
	return err
}

func (w *spanOp) Next(ctx *Ctx) (*expr.Batch, error) {
	if ctx.Obs == nil || w.span == nil {
		return w.inner.Next(ctx)
	}
	ctx.Obs.Push(w.span)
	b, err := w.inner.Next(ctx)
	if b != nil {
		w.span.Batches++
		w.span.Rows += int64(b.Len())
	}
	ctx.Obs.Pop(ctx.CPU.Clock().Now())
	return b, err
}

func (w *spanOp) Close(ctx *Ctx) error {
	if ctx.Obs == nil || w.span == nil {
		return w.inner.Close(ctx)
	}
	ctx.Obs.Push(w.span)
	err := w.inner.Close(ctx)
	ctx.Obs.Pop(ctx.CPU.Clock().Now())
	return err
}
