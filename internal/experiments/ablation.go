package experiments

import (
	"fmt"
	"strings"

	"ecodb/internal/core"
	"ecodb/internal/energy"
	"ecodb/internal/hw/cpu"
	"ecodb/internal/hw/mobo"
	"ecodb/internal/sim"
	"ecodb/internal/workload"
)

// AblationPoint is one measured configuration in an ablation study.
type AblationPoint struct {
	Label       string
	TimeRatio   float64
	EnergyRatio float64
	EDPChange   float64
	TopFreqGHz  float64
}

// CapVsUnderclockResult contrasts the paper's preferred FSB underclocking
// with traditional multiplier capping (§3: capping "puts a hard upper
// limit on the top p-state", losing a whole 333 MHz step per level, while
// underclocking "allows a finer granularity of CPU frequency modulation").
type CapVsUnderclockResult struct {
	Config Config
	Points []AblationPoint
}

// CapVsUnderclock measures the Q5 workload on the commercial profile under
// both mechanisms at the medium voltage downgrade: underclocking by
// 5/10/15% versus capping the multiplier at 9/8/7.
func CapVsUnderclock(cfg Config) CapVsUnderclockResult {
	sys, queries := newCommercialSystem(cfg)
	res := CapVsUnderclockResult{Config: cfg}

	measure := func(label string, apply func()) AblationPoint {
		sys.Machine.Tuner().Apply(mobo.Stock())
		sys.Machine.CPU.SetMultiplierCap(0)
		apply()
		var agg []core.Measurement
		for i := 0; i < cfg.ProtocolRuns; i++ {
			m := measureRun(sys, queries)
			agg = append(agg, m)
		}
		red := reduceList(agg)
		red.Setting = core.Setting{Name: label}
		return AblationPoint{
			Label:      label,
			TopFreqGHz: sys.Machine.CPU.Freq(sys.Machine.CPU.TopPState()).GHz(),
			// Ratios filled by the caller against the stock point.
			TimeRatio:   red.Time.Seconds(),
			EnergyRatio: float64(red.CPUEnergy),
		}
	}

	pts := []AblationPoint{measure("stock", func() {})}
	for _, uc := range []float64{0.05, 0.10, 0.15} {
		uc := uc
		pts = append(pts, measure(fmt.Sprintf("underclock %.0f%%/medium", uc*100), func() {
			sys.Machine.Tuner().Apply(mobo.Tuned(uc, cpu.DowngradeMedium))
		}))
	}
	for _, cap := range []float64{9, 8, 7} {
		cap := cap
		pts = append(pts, measure(fmt.Sprintf("cap %.0fx/medium", cap), func() {
			sys.Machine.Tuner().Apply(mobo.Tuned(0, cpu.DowngradeMedium))
			sys.Machine.CPU.SetMultiplierCap(cap)
		}))
	}
	sys.Machine.CPU.SetMultiplierCap(0)
	sys.Machine.Tuner().Apply(mobo.Stock())

	// Normalize against stock.
	stockT, stockE := pts[0].TimeRatio, pts[0].EnergyRatio
	for i := range pts {
		pts[i].TimeRatio /= stockT
		pts[i].EnergyRatio /= stockE
		pts[i].EDPChange = pts[i].TimeRatio*pts[i].EnergyRatio - 1
	}
	res.Points = pts
	return res
}

// measureRun measures one sequential workload execution with the system's
// instruments.
func measureRun(sys *core.System, queries []workload.Query) core.Measurement {
	clock := sys.Machine.Clock
	t0 := clock.Now()
	workload.RunSequential(sys.Engine, clock, queries)
	t1 := clock.Now()
	return core.Measurement{
		Time:      t1.Sub(t0),
		CPUEnergy: sys.Sampler.Measure(sys.Machine.CPU.Trace(), t0, t1),
	}
}

// reduceList averages measurements after dropping the energy extremes.
func reduceList(ms []core.Measurement) core.Measurement {
	if len(ms) >= 3 {
		lo, hi := 0, 0
		for i, m := range ms {
			if m.CPUEnergy < ms[lo].CPUEnergy {
				lo = i
			}
			if m.CPUEnergy > ms[hi].CPUEnergy {
				hi = i
			}
		}
		kept := ms[:0]
		for i, m := range ms {
			if i != lo && i != hi {
				kept = append(kept, m)
			}
		}
		ms = kept
	}
	var out core.Measurement
	n := float64(len(ms))
	for _, m := range ms {
		out.Time += sim.Duration(float64(m.Time) / n)
		out.CPUEnergy += energy.Joules(float64(m.CPUEnergy) / n)
	}
	return out
}

func (r CapVsUnderclockResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: FSB underclocking vs multiplier capping (%s)\n", r.Config)
	fmt.Fprintf(&b, "  %-26s %10s %10s %10s %10s\n", "mechanism", "top GHz", "time×", "energy×", "EDP")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-26s %10.2f %10.3f %10.3f %+9.1f%%\n",
			p.Label, p.TopFreqGHz, p.TimeRatio, p.EnergyRatio, p.EDPChange*100)
	}
	b.WriteString("  (underclocking moves in ~160 MHz steps and keeps every p-state;\n")
	b.WriteString("   capping loses a full 333 MHz step per level — the paper's §3 argument)\n")
	return b.String()
}

// MechanismResult decomposes setting A's savings into the individual
// platform mechanisms the tuned profile enables.
type MechanismResult struct {
	Config Config
	Points []AblationPoint
}

// Mechanisms measures the Q5 workload with each tuned-profile mechanism
// enabled in isolation, quantifying where the paper's ~49% saving comes
// from on a stall-heavy commercial workload.
func Mechanisms(cfg Config) MechanismResult {
	sys, queries := newCommercialSystem(cfg)

	profiles := []struct {
		label string
		prof  mobo.Profile
	}{
		{"stock", mobo.Stock()},
		{"underclock 5% only", mobo.Profile{UnderclockFrac: 0.05}},
		{"medium downgrade only", mobo.Profile{Downgrade: cpu.DowngradeMedium}},
		{"light loadline only", mobo.Profile{LightLoadline: true}},
		{"EPU deep idle only", mobo.Profile{DeepIdle: true}},
		{"EPU stall downshift only", mobo.Profile{StallMultiplierCap: 6}},
		{"all (setting A)", mobo.Tuned(0.05, cpu.DowngradeMedium)},
	}

	var pts []AblationPoint
	for _, pc := range profiles {
		sys.Machine.Tuner().Apply(pc.prof)
		var agg []core.Measurement
		for i := 0; i < cfg.ProtocolRuns; i++ {
			agg = append(agg, measureRun(sys, queries))
		}
		red := reduceList(agg)
		pts = append(pts, AblationPoint{
			Label:       pc.label,
			TimeRatio:   red.Time.Seconds(),
			EnergyRatio: float64(red.CPUEnergy),
		})
	}
	sys.Machine.Tuner().Apply(mobo.Stock())

	stockT, stockE := pts[0].TimeRatio, pts[0].EnergyRatio
	for i := range pts {
		pts[i].TimeRatio /= stockT
		pts[i].EnergyRatio /= stockE
		pts[i].EDPChange = pts[i].TimeRatio*pts[i].EnergyRatio - 1
	}
	return MechanismResult{Config: cfg, Points: pts}
}

func (r MechanismResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: mechanism decomposition of setting A (%s)\n", r.Config)
	fmt.Fprintf(&b, "  %-26s %10s %10s %10s\n", "mechanism", "time×", "energy×", "EDP")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-26s %10.3f %10.3f %+9.1f%%\n",
			p.Label, p.TimeRatio, p.EnergyRatio, p.EDPChange*100)
	}
	return b.String()
}
