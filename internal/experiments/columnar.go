package experiments

import (
	"fmt"
	"strings"
	"time"

	"ecodb/internal/core"
	"ecodb/internal/energy"
	"ecodb/internal/engine"
	"ecodb/internal/expr"
	"ecodb/internal/sim"
	"ecodb/internal/tpch"
	"ecodb/internal/workload"
)

// ColumnarPoint is one workload size's row-vs-columnar comparison on the
// filter-heavy band-selection workload.
type ColumnarPoint struct {
	N int

	// RowWall and ColWall are real Go wall-clock — the resource the
	// columnar representation actually changes.
	RowWall, ColWall time.Duration
	// RowTime/ColTime and the per-query joules are simulated: the
	// representation change is charging-neutral by construction, so these
	// pairs must match exactly.
	RowTime, ColTime           sim.Duration
	RowPerQuery, ColPerQuery   energy.Joules
	Speedup                    float64 // RowWall / ColWall
	SimulatedJoulesIdentical   bool
	SimulatedDurationIdentical bool
}

// ColumnarResult is the columnar-execution ablation: the filter-heavy
// workload replayed row-at-a-time (gather + interpreted Eval per tuple)
// versus through the columnar fast paths, per workload size. With
// enabled=false the treated arm also runs row-at-a-time and the wall-clock
// deltas collapse — the control arm.
type ColumnarResult struct {
	Config  Config
	Enabled bool
	Points  []ColumnarPoint
}

// ColumnarWorkloadSizes are the batch sizes the ablation sweeps.
var ColumnarWorkloadSizes = []int{1, 4, 16}

// ColumnarScan replays a filter-heavy TPC-H selection workload (the band
// selections of the shared-scan ablation: scan→filter over lineitem) on
// the commercial profile, row-at-a-time versus columnar. Unlike the other
// experiments this one measures REAL wall-clock — the paper's thesis is
// that software choices determine the energy a query burns, and the
// executor's representation is exactly such a choice: simulated-era joules
// per query stay bit-identical while the modern host does measurably less
// work per tuple.
func ColumnarScan(cfg Config, enabled bool) ColumnarResult {
	runs := cfg.ProtocolRuns
	if runs < 1 {
		runs = 1
	}
	defer expr.SetRowAtATime(false)

	res := ColumnarResult{Config: cfg, Enabled: enabled}
	for _, n := range ColumnarWorkloadSizes {
		// Each arm gets a FRESH system: the commercial profile's
		// background-I/O randomness advances with every query, so only
		// identical from-boot replays can be compared bit for bit. The
		// best wall-clock over the protocol runs drops scheduler noise;
		// simulated numbers come from the first run (all runs of one arm
		// replay the same per-run sequence as the other arm's).
		arm := func(rowAtATime bool) (wall time.Duration, simT sim.Duration, perQ energy.Joules) {
			prof := engine.ProfileCommercial()
			prof.WorkAmplification = cfg.Amplification
			sys := core.NewSystem(prof)
			tpch.NewGenerator(cfg.SF, cfg.Seed).Load(sys.Engine.Catalog(), tpch.Lineitem)
			sys.Engine.WarmAll()
			clock := sys.Machine.Clock
			trace := sys.Machine.CPU.Trace()
			queries := workload.NewQueries("band", tpch.QuantityBandWorkload(sys.Engine.Catalog(), n))

			expr.SetRowAtATime(rowAtATime)
			for rep := 0; rep < runs; rep++ {
				t0 := clock.Now()
				w0 := time.Now()
				workload.RunSequential(sys.Engine, clock, queries)
				w := time.Since(w0)
				if rep == 0 || w < wall {
					wall = w
				}
				if rep == 0 {
					simT = clock.Now().Sub(t0)
					perQ = energy.PerQuery(trace.Energy(t0, clock.Now()), n)
				}
			}
			return wall, simT, perQ
		}

		rowWall, rowT, rowJ := arm(true)
		colWall, colT, colJ := arm(!enabled)

		res.Points = append(res.Points, ColumnarPoint{
			N:                          n,
			RowWall:                    rowWall,
			ColWall:                    colWall,
			RowTime:                    rowT,
			ColTime:                    colT,
			RowPerQuery:                rowJ,
			ColPerQuery:                colJ,
			Speedup:                    float64(rowWall) / float64(colWall),
			SimulatedJoulesIdentical:   rowJ == colJ,
			SimulatedDurationIdentical: rowT == colT,
		})
	}
	return res
}

func (r ColumnarResult) String() string {
	var b strings.Builder
	mode := "columnar fast paths"
	if !r.Enabled {
		mode = "DISABLED (control arm: both arms row-at-a-time)"
	}
	fmt.Fprintf(&b, "Columnar execution ablation (%s)\n", r.Config)
	fmt.Fprintf(&b, "  band-selection workload on lineitem, treated arm: %s\n\n", mode)
	fmt.Fprintf(&b, "  %3s %14s %14s %9s %14s %14s %10s\n",
		"N", "row wall", "columnar wall", "speedup", "row J/query", "col J/query", "sim equal")
	for _, p := range r.Points {
		equal := "yes"
		if !p.SimulatedJoulesIdentical || !p.SimulatedDurationIdentical {
			equal = "NO (BUG)"
		}
		fmt.Fprintf(&b, "  %3d %14v %14v %8.2fx %14v %14v %10s\n",
			p.N, p.RowWall.Round(time.Microsecond), p.ColWall.Round(time.Microsecond),
			p.Speedup, p.RowPerQuery, p.ColPerQuery, equal)
	}
	b.WriteString("\n  Simulated durations and joules per query are bit-identical across the\n")
	b.WriteString("  two execution models by construction (the fast paths charge exactly what\n")
	b.WriteString("  the interpreter charges); the wall-clock column is the real saving the\n")
	b.WriteString("  columnar representation buys on the scan→filter hot path.\n")
	return b.String()
}
