package experiments

import (
	"fmt"
	"strings"
	"time"

	"ecodb/internal/core"
	"ecodb/internal/energy"
	"ecodb/internal/engine"
	"ecodb/internal/expr"
	"ecodb/internal/obsv"
	"ecodb/internal/sim"
	"ecodb/internal/tpch"
	"ecodb/internal/workload"
)

// CompressionBands is how many order-key range queries the ablation's mixed
// workload carries alongside the fixed string selections.
const CompressionBands = 8

// CompressionResult is the compressed-storage ablation: the mixed
// range-plus-string workload replayed on plain storage versus with zone-map
// pruning and dictionary-encoded strings enabled. Unlike the columnar
// ablation this one is NOT charging-neutral — skipping a page really does
// avoid its buffer-pool, streaming, and per-tuple charges (replacing them
// with one zone-map consult), so the simulated joules and durations drop.
// Query results must still be bit-identical: compression changes where
// bytes live and which pages are touched, never what a query returns. With
// both toggles false the treated arm also runs on plain storage — the
// control.
type CompressionResult struct {
	Config Config
	// ZoneMaps and DictStrings are the treated arm's toggles, so either
	// mechanism can be ablated alone.
	ZoneMaps, DictStrings bool

	Queries int
	// Wall-clock per arm (real Go time, best of ProtocolRuns).
	BaseWall, CompWall time.Duration
	// Simulated workload time and per-query CPU joules per arm (first run).
	BaseTime, CompTime         sim.Duration
	BasePerQuery, CompPerQuery energy.Joules
	// PagesPruned is how many heap pages the compressed arm skipped by zone
	// maps across the whole workload (0 in the baseline by construction).
	PagesPruned int64
	// RowsIdentical is the correctness gate: every query returned the same
	// cardinality in both arms.
	RowsIdentical bool
}

// Compression runs the compressed-storage ablation on the commercial
// profile: fresh system per arm (background-I/O randomness advances with
// every page read, so only from-boot replays compare), with the treated arm
// loading dictionary-encoded tables and scanning under zone-map pruning as
// the toggles select.
func Compression(cfg Config, zoneMaps, dictStrings bool) CompressionResult {
	runs := cfg.ProtocolRuns
	if runs < 1 {
		runs = 1
	}
	defer expr.SetZoneMapPruning(expr.ZoneMapPruning())
	defer expr.SetDictStrings(expr.DictStrings())

	res := CompressionResult{Config: cfg, ZoneMaps: zoneMaps, DictStrings: dictStrings}

	arm := func(compressed bool) (wall time.Duration, simT sim.Duration, perQ energy.Joules, rows []int64, pruned int64) {
		// The toggles gate behaviour at two sites: DictStrings at Load time
		// (string columns are encoded as the heap is built) and
		// ZoneMapPruning at operator Open. Both must be set before the
		// system is assembled.
		expr.SetZoneMapPruning(compressed && zoneMaps)
		expr.SetDictStrings(compressed && dictStrings)
		prof := engine.ProfileCommercial()
		prof.WorkAmplification = cfg.Amplification
		sys := core.NewSystem(prof)
		tpch.NewGenerator(cfg.SF, cfg.Seed).Load(sys.Engine.Catalog(),
			tpch.Customer, tpch.Orders, tpch.Lineitem)
		sys.Engine.WarmAll()
		clock := sys.Machine.Clock
		trace := sys.Machine.CPU.Trace()
		queries := workload.NewQueries("comp",
			tpch.CompressionWorkload(sys.Engine.Catalog(), cfg.SF, CompressionBands))
		res.Queries = len(queries)

		pruned0 := obsv.PagesPruned.Load()
		for rep := 0; rep < runs; rep++ {
			t0 := clock.Now()
			w0 := time.Now()
			r := workload.RunSequential(sys.Engine, clock, queries)
			w := time.Since(w0)
			if rep == 0 || w < wall {
				wall = w
			}
			if rep == 0 {
				simT = clock.Now().Sub(t0)
				perQ = energy.PerQuery(trace.Energy(t0, clock.Now()), len(queries))
				pruned = obsv.PagesPruned.Load() - pruned0
				for _, q := range r.Queries {
					rows = append(rows, q.Rows)
				}
			}
		}
		return wall, simT, perQ, rows, pruned
	}

	baseWall, baseT, baseJ, baseRows, _ := arm(false)
	compWall, compT, compJ, compRows, pruned := arm(true)

	res.BaseWall, res.CompWall = baseWall, compWall
	res.BaseTime, res.CompTime = baseT, compT
	res.BasePerQuery, res.CompPerQuery = baseJ, compJ
	res.PagesPruned = pruned
	res.RowsIdentical = len(baseRows) == len(compRows)
	for i := range baseRows {
		if i >= len(compRows) || baseRows[i] != compRows[i] {
			res.RowsIdentical = false
			break
		}
	}
	return res
}

// JouleSavingPct returns the per-query simulated-energy saving of the
// compressed arm as a percentage of the baseline.
func (r CompressionResult) JouleSavingPct() float64 {
	if r.BasePerQuery == 0 {
		return 0
	}
	return (1 - float64(r.CompPerQuery)/float64(r.BasePerQuery)) * 100
}

func (r CompressionResult) String() string {
	var b strings.Builder
	var mode string
	switch {
	case r.ZoneMaps && r.DictStrings:
		mode = "zone-map pruning + dictionary strings"
	case r.ZoneMaps:
		mode = "zone-map pruning only"
	case r.DictStrings:
		mode = "dictionary strings only"
	default:
		mode = "DISABLED (control arm: both arms on plain storage)"
	}
	fmt.Fprintf(&b, "Compressed-storage ablation (%s)\n", r.Config)
	fmt.Fprintf(&b, "  %d-query mixed workload (order-key ranges + status/segment selections), treated arm: %s\n\n",
		r.Queries, mode)
	fmt.Fprintf(&b, "  %-12s %14s %14s %14s\n", "arm", "wall", "sim time", "J/query")
	fmt.Fprintf(&b, "  %-12s %14v %14v %14v\n", "baseline",
		r.BaseWall.Round(time.Microsecond), r.BaseTime, r.BasePerQuery)
	fmt.Fprintf(&b, "  %-12s %14v %14v %14v\n", "compressed",
		r.CompWall.Round(time.Microsecond), r.CompTime, r.CompPerQuery)
	rowsOK := "yes"
	if !r.RowsIdentical {
		rowsOK = "NO (BUG)"
	}
	fmt.Fprintf(&b, "\n  pages pruned: %d   J/query saving: %.1f%%   results identical: %s\n",
		r.PagesPruned, r.JouleSavingPct(), rowsOK)
	b.WriteString("\n  Pruned pages cost one zone-map consult instead of a buffer-pool access,\n")
	b.WriteString("  a page stream, and per-tuple interpretation — the simulated joules drop\n")
	b.WriteString("  because the engine genuinely does less work, not by accounting fiat.\n")
	return b.String()
}
