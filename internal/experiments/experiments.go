// Package experiments regenerates every table and figure in the paper's
// evaluation. Each experiment returns a typed result carrying both the
// measured values and the paper's published values, and renders a
// side-by-side text report; EXPERIMENTS.md is generated from these.
//
// Scale-factor note: experiments generate a reduced dataset and amplify
// per-row work by the inverse factor (engine.Profile.WorkAmplification), so
// absolute virtual runtimes and joules correspond to the paper's scale
// factors while keeping generation and Go-side execution cheap. The
// product SF × Amplification is the paper-equivalent scale factor.
package experiments

import (
	"fmt"
	"strings"

	"ecodb/internal/core"
	"ecodb/internal/engine"
	"ecodb/internal/tpch"
	"ecodb/internal/workload"
)

// Config controls dataset scale and measurement effort.
type Config struct {
	// SF is the generated TPC-H scale factor.
	SF float64
	// Amplification scales per-row work; SF×Amplification is the
	// paper-equivalent scale factor.
	Amplification float64
	// Seed drives data generation and sampling phase.
	Seed uint64
	// ProtocolRuns is the number of repetitions per measured point
	// (the paper uses 5, discarding the extremes).
	ProtocolRuns int
}

// DefaultCommercialConfig emulates the paper's commercial-DBMS setup:
// TPC-H at paper-equivalent scale factor 1.0.
func DefaultCommercialConfig() Config {
	return Config{SF: 0.05, Amplification: 20, Seed: 42, ProtocolRuns: 5}
}

// DefaultMySQLConfig emulates the paper's MySQL MEMORY-engine setups. The
// paper-equivalent scale factor is 0.5 — the paper's QED scale; its PVC
// runs used 0.125, and all PVC results are stock-relative ratios, which the
// cost model keeps scale-invariant.
func DefaultMySQLConfig() Config {
	return Config{SF: 0.125, Amplification: 4, Seed: 42, ProtocolRuns: 5}
}

// EquivalentSF returns the paper-equivalent scale factor.
func (c Config) EquivalentSF() float64 { return c.SF * c.Amplification }

func (c Config) String() string {
	return fmt.Sprintf("sf=%g×%g (paper-equivalent %g), %d runs/point",
		c.SF, c.Amplification, c.EquivalentSF(), c.ProtocolRuns)
}

// newCommercialSystem assembles the commercial-profile SUT with the Q5
// tables loaded and warm.
func newCommercialSystem(cfg Config) (*core.System, []workload.Query) {
	prof := engine.ProfileCommercial()
	prof.WorkAmplification = cfg.Amplification
	sys := core.NewSystem(prof)
	tpch.NewGenerator(cfg.SF, cfg.Seed).Load(sys.Engine.Catalog(),
		tpch.Region, tpch.Nation, tpch.Supplier, tpch.Customer, tpch.Orders, tpch.Lineitem)
	sys.Engine.WarmAll()
	sys.Protocol.Runs = cfg.ProtocolRuns
	return sys, workload.NewQueries("q5", tpch.Q5Workload(sys.Engine.Catalog()))
}

// newMySQLSystem assembles the MySQL-MEMORY SUT with the Q5 tables loaded
// (memory engines are always warm).
func newMySQLSystem(cfg Config) (*core.System, []workload.Query) {
	prof := engine.ProfileMySQLMemory()
	prof.WorkAmplification = cfg.Amplification
	sys := core.NewSystem(prof)
	tpch.NewGenerator(cfg.SF, cfg.Seed).Load(sys.Engine.Catalog(),
		tpch.Region, tpch.Nation, tpch.Supplier, tpch.Customer, tpch.Orders, tpch.Lineitem)
	sys.Protocol.Runs = cfg.ProtocolRuns
	return sys, workload.NewQueries("q5", tpch.Q5Workload(sys.Engine.Catalog()))
}

// Comparison is one paper-vs-measured line in a report.
type Comparison struct {
	Metric   string
	Paper    float64
	Measured float64
	Unit     string
}

// Dev returns the measured-vs-paper deviation as a fraction of the paper
// value (0 when the paper value is 0).
func (c Comparison) Dev() float64 {
	if c.Paper == 0 {
		return 0
	}
	return (c.Measured - c.Paper) / c.Paper
}

func renderComparisons(b *strings.Builder, comps []Comparison) {
	fmt.Fprintf(b, "  %-44s %10s %10s %8s\n", "metric", "paper", "measured", "dev")
	for _, c := range comps {
		fmt.Fprintf(b, "  %-44s %9.1f%s %9.1f%s %+7.1f%%\n",
			c.Metric, c.Paper, c.Unit, c.Measured, c.Unit, c.Dev()*100)
	}
}
