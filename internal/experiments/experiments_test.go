package experiments

import (
	"math"
	"strings"
	"testing"

	"ecodb/internal/hw/disk"
)

// lightCommercial keeps Go-side runtime low while preserving the
// paper-equivalent scale factor 1.0 (0.02 × 50).
func lightCommercial() Config {
	return Config{SF: 0.02, Amplification: 50, Seed: 42, ProtocolRuns: 3}
}

// lightMySQL preserves paper-equivalent scale factor 0.5 (0.05 × 10).
func lightMySQL() Config {
	return Config{SF: 0.05, Amplification: 10, Seed: 42, ProtocolRuns: 3}
}

// shorten reduces the generated scale factor under `go test -short`,
// raising amplification by the inverse ratio so the paper-equivalent scale
// (and therefore absolute simulated runtimes and joules) is preserved, and
// drops to a single protocol run. Quantization noise grows with the
// reduction, so tests with tight paper tolerances skip short mode instead
// of shrinking.
func shorten(cfg Config, shortSF float64) Config {
	if !testing.Short() {
		return cfg
	}
	cfg.Amplification *= cfg.SF / shortSF
	cfg.SF = shortSF
	cfg.ProtocolRuns = 1
	return cfg
}

// skipShort marks a test too tolerance-sensitive to run at reduced scale.
func skipShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("paper-tolerance test needs full generated scale; run without -short")
	}
}

func TestTable1WithinHalfWattOfPaper(t *testing.T) {
	r := Table1()
	if len(r.Stages) != 6 {
		t.Fatalf("stages = %d", len(r.Stages))
	}
	for _, c := range r.Comparisons() {
		if math.Abs(c.Measured-c.Paper) > 0.5 {
			t.Errorf("%s: measured %.1fW vs paper %.1fW", c.Metric, c.Measured, c.Paper)
		}
	}
	if !strings.Contains(r.String(), "Paper vs measured") {
		t.Fatal("rendering incomplete")
	}
}

func TestFigure1HeadlineClaims(t *testing.T) {
	r := Figure1(shorten(lightCommercial(), 0.005))
	if len(r.Measurements) != 4 {
		t.Fatalf("measurements = %d", len(r.Measurements))
	}
	stock, a, b, c := r.Measurements[0], r.Measurements[1], r.Measurements[2], r.Measurements[3]

	// Stock lands near the paper's absolute operating point.
	if math.Abs(stock.Time.Seconds()-48.5) > 3 {
		t.Errorf("stock time %v, paper 48.5s", stock.Time)
	}
	if math.Abs(float64(stock.CPUEnergy)-1228.7) > 120 {
		t.Errorf("stock CPU energy %v, paper 1228.7J", stock.CPUEnergy)
	}

	// Setting A: large energy saving for a small time penalty.
	eSave := 1 - float64(a.CPUEnergy)/float64(stock.CPUEnergy)
	tPen := a.Time.Seconds()/stock.Time.Seconds() - 1
	if eSave < 0.35 {
		t.Errorf("setting A saves %.1f%%, want ≥35%% (paper 49%%)", eSave*100)
	}
	if tPen > 0.06 || tPen < 0 {
		t.Errorf("setting A time penalty %.1f%%, want ≈3%%", tPen*100)
	}

	// B and C are dominated by A: slower AND hungrier (paper's Figure 1).
	if !(b.Time > a.Time && float64(b.CPUEnergyExact) > float64(a.CPUEnergyExact)) {
		t.Errorf("B (T=%v, E=%v) should be dominated by A (T=%v, E=%v)",
			b.Time, b.CPUEnergyExact, a.Time, a.CPUEnergyExact)
	}
	if !(c.Time > b.Time && float64(c.CPUEnergyExact) >= float64(b.CPUEnergyExact)) {
		t.Errorf("C (T=%v, E=%v) should be at least as bad as B (T=%v, E=%v)",
			c.Time, c.CPUEnergyExact, b.Time, b.CPUEnergyExact)
	}
}

func TestFigure2Orderings(t *testing.T) {
	// The EDP monotonicity orderings sit within GUI-sampling noise at
	// reduced generated scale, so this one needs the full dataset.
	skipShort(t)
	r := Figure2(lightCommercial())
	byName := map[string]float64{}
	for _, pt := range r.Points {
		byName[pt.Setting.String()] = pt.EDPChange
	}
	// All six PVC points improve EDP (paper: −15% to −47%).
	for name, edp := range byName {
		if name == "stock" {
			continue
		}
		if edp >= 0 {
			t.Errorf("%s EDP %+.1f%%, want negative", name, edp*100)
		}
	}
	// Medium dominates small at every underclock level.
	for _, uc := range []string{"5", "10", "15"} {
		s := byName["uc="+uc+"%/small"]
		m := byName["uc="+uc+"%/medium"]
		if m >= s {
			t.Errorf("medium EDP (%+.1f%%) should beat small (%+.1f%%) at %s%%", m*100, s*100, uc)
		}
	}
	// EDP worsens beyond 5% underclocking (the paper's key §3.3 finding).
	for _, dg := range []string{"small", "medium"} {
		e5 := byName["uc=5%/"+dg]
		e10 := byName["uc=10%/"+dg]
		e15 := byName["uc=15%/"+dg]
		if !(e5 < e10 && e10 < e15) {
			t.Errorf("%s EDP should worsen monotonically: %.1f/%.1f/%.1f",
				dg, e5*100, e10*100, e15*100)
		}
	}
}

func TestFigure3MatchesPaperBands(t *testing.T) {
	r := Figure3(shorten(lightMySQL(), 0.0125))
	byName := map[string]float64{}
	for _, pt := range r.Points {
		byName[pt.Setting.String()] = pt.EDPChange * 100
	}
	// MySQL is CPU-bound: savings are much smaller than the commercial
	// system's; each point within 8 EDP points of the paper.
	checks := []struct {
		name  string
		paper float64
	}{
		{"uc=5%/small", -7}, {"uc=10%/small", -0.4}, {"uc=15%/small", 9},
		{"uc=5%/medium", -16}, {"uc=10%/medium", -8}, {"uc=15%/medium", 0},
	}
	for _, c := range checks {
		got := byName[c.name]
		if math.Abs(got-c.paper) > 8 {
			t.Errorf("%s EDP %+.1f%%, paper %+.1f%% (tolerance 8 points)", c.name, got, c.paper)
		}
	}
	// The trend the paper highlights: underclocking beyond 5% worsens
	// EDP on the CPU-bound workload.
	if !(byName["uc=5%/small"] < byName["uc=10%/small"] &&
		byName["uc=10%/small"] < byName["uc=15%/small"]) {
		t.Error("small-downgrade EDP should rise with underclocking")
	}
}

func TestFigure4TheoryTracksObservation(t *testing.T) {
	r := Figure4(shorten(lightMySQL(), 0.0125))
	if len(r.Panels["small"]) != 4 || len(r.Panels["medium"]) != 4 {
		t.Fatalf("panels incomplete: %v", r.Panels)
	}
	// Paper: "the observed EDP closely matches the theoretical model".
	if div := r.MaxDivergence(); div > 0.12 {
		t.Errorf("observed vs V²/F diverges %.1f%%, want ≤12%%", div*100)
	}
	// Both observed and theoretical EDP rise with deeper underclocking.
	for _, panel := range []string{"small", "medium"} {
		pts := r.Panels[panel]
		for i := 2; i < len(pts); i++ {
			if pts[i].TheoreticalEDP <= pts[i-1].TheoreticalEDP {
				t.Errorf("%s theoretical EDP should rise from uc=%v to uc=%v",
					panel, pts[i-1].Setting.Underclock, pts[i].Setting.Underclock)
			}
		}
	}
}

func TestFigure5Shapes(t *testing.T) {
	r := Figure5()
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	var seqTputs []float64
	randEnergy := map[int]float64{}
	for _, row := range r.Rows {
		if row.Pattern == disk.Sequential {
			seqTputs = append(seqTputs, row.ThroughputMBps)
		} else {
			randEnergy[row.BlockKB] = row.EnergyPerKBmJ
		}
	}
	// Sequential throughput flat across block sizes.
	for _, tput := range seqTputs {
		if math.Abs(tput-seqTputs[0]) > 1e-9 {
			t.Error("sequential throughput should not depend on block size")
		}
	}
	// Random energy/KB falls with block size; paper ratios within 15%.
	if !(randEnergy[4] > randEnergy[8] && randEnergy[8] > randEnergy[16] && randEnergy[16] > randEnergy[32]) {
		t.Error("random energy/KB should fall with block size")
	}
	ratios := r.RandomRatios()
	for i, paper := range PaperFig5RandomRatios {
		if math.Abs(ratios[i]-paper)/paper > 0.15 {
			t.Errorf("random ratio %d = %.2f, paper %.2f", i, ratios[i], paper)
		}
	}
}

func TestFigure6QEDClaims(t *testing.T) {
	cfg := shorten(lightMySQL(), 0.0125)
	cfg.ProtocolRuns = 2
	r := Figure6(cfg)
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		// QED saves substantial energy at a substantial response cost.
		if p.EnergyRatio > 0.65 || p.EnergyRatio < 0.35 {
			t.Errorf("batch %d energy ratio %.2f, want ≈0.5 (paper 0.46-0.54)",
				p.BatchSize, p.EnergyRatio)
		}
		if p.ResponseRatio < 1.3 || p.ResponseRatio > 1.75 {
			t.Errorf("batch %d response ratio %.2f, want ≈1.5 (paper 1.43-1.52)",
				p.BatchSize, p.ResponseRatio)
		}
		// EDP improves (the technique operates below the iso-EDP curve).
		if p.EDPChange >= 0 {
			t.Errorf("batch %d EDP %+.1f%%, want negative", p.BatchSize, p.EDPChange*100)
		}
	}
	// Largest batch gives the best EDP (paper: batch 50 is best).
	if !(r.Points[3].EDPChange <= r.Points[0].EDPChange) {
		t.Errorf("batch 50 EDP (%+.1f%%) should be at least as good as batch 35 (%+.1f%%)",
			r.Points[3].EDPChange*100, r.Points[0].EDPChange*100)
	}
}

func TestFigure6HashSetBeatsOrChain(t *testing.T) {
	cfg := shorten(lightMySQL(), 0.0125)
	cfg.ProtocolRuns = 1
	or := Figure6(cfg)
	hash := Figure6HashSet(cfg)
	// The smarter merged plan can only help: less merged-query time.
	for i := range or.Points {
		if hash.Points[i].QEDMeanResponse > or.Points[i].QEDMeanResponse {
			t.Errorf("batch %d: hash-set response %v should not exceed or-chain %v",
				or.Points[i].BatchSize, hash.Points[i].QEDMeanResponse, or.Points[i].QEDMeanResponse)
		}
	}
}

func TestWarmColdClaims(t *testing.T) {
	r := WarmCold(shorten(lightCommercial(), 0.005))
	slow := float64(r.Cold.Time) / float64(r.Warm.Time)
	if slow < 2.2 || slow > 4.5 {
		t.Errorf("cold/warm slowdown %.2f, want ≈3 (paper)", slow)
	}
	// Warm: disk ≈ 1/6 of CPU energy; cold: more than half.
	warmRatio := float64(r.Warm.DiskEnergy) / float64(r.Warm.CPUEnergy)
	coldRatio := float64(r.Cold.DiskEnergy) / float64(r.Cold.CPUEnergy)
	if warmRatio < 0.10 || warmRatio > 0.30 {
		t.Errorf("warm disk/CPU energy = %.2f, paper ≈0.17", warmRatio)
	}
	if coldRatio < 0.4 {
		t.Errorf("cold disk/CPU energy = %.2f, paper >0.5", coldRatio)
	}
}

func TestConfigEquivalentSF(t *testing.T) {
	cfg := Config{SF: 0.05, Amplification: 20}
	if cfg.EquivalentSF() != 1.0 {
		t.Fatalf("equivalent SF = %v", cfg.EquivalentSF())
	}
}

func TestRenderings(t *testing.T) {
	// Every result type renders without panicking and mentions its
	// figure.
	cfg := lightMySQL()
	cfg.ProtocolRuns = 1
	cases := []struct {
		name string
		s    string
	}{
		{"fig5", Figure5().String()},
	}
	for _, c := range cases {
		if !strings.Contains(c.s, "Figure") {
			t.Errorf("%s rendering missing title:\n%s", c.name, c.s)
		}
	}
}

func TestCapVsUnderclockGranularity(t *testing.T) {
	cfg := shorten(lightCommercial(), 0.005)
	cfg.ProtocolRuns = 1
	r := CapVsUnderclock(cfg)
	if len(r.Points) != 7 {
		t.Fatalf("points = %d", len(r.Points))
	}
	byLabel := map[string]AblationPoint{}
	for _, p := range r.Points {
		byLabel[p.Label] = p
	}
	// Underclocking 5% keeps the top frequency above every cap level —
	// the finer-grained control of §3.
	uc5 := byLabel["underclock 5%/medium"]
	for _, cap := range []string{"cap 9x/medium", "cap 8x/medium", "cap 7x/medium"} {
		if byLabel[cap].TopFreqGHz >= uc5.TopFreqGHz {
			t.Errorf("%s top freq %.2f should sit below 5%% underclock %.2f",
				cap, byLabel[cap].TopFreqGHz, uc5.TopFreqGHz)
		}
	}
	// Deeper caps are slower.
	if !(byLabel["cap 7x/medium"].TimeRatio > byLabel["cap 9x/medium"].TimeRatio) {
		t.Error("deeper caps should be slower")
	}
	// All points render.
	if r.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestMechanismDecomposition(t *testing.T) {
	cfg := shorten(lightCommercial(), 0.005)
	cfg.ProtocolRuns = 1
	r := Mechanisms(cfg)
	byLabel := map[string]AblationPoint{}
	for _, p := range r.Points {
		byLabel[p.Label] = p
	}
	all := byLabel["all (setting A)"]
	if all.EnergyRatio >= 1 {
		t.Fatalf("combined setting saves nothing: %v", all.EnergyRatio)
	}
	// The substantive isolated mechanisms save energy, and none alone
	// matches the combination. (Deep idle alone only touches the small
	// I/O-wait share of a warm run, so it stays within sampling noise and
	// is reported but not asserted.)
	for _, label := range []string{
		"medium downgrade only", "EPU stall downshift only",
	} {
		p := byLabel[label]
		if p.EnergyRatio >= 1.0 {
			t.Errorf("%s should save energy, ratio %.3f", label, p.EnergyRatio)
		}
		if p.EnergyRatio <= all.EnergyRatio {
			t.Errorf("%s alone (%.3f) should not beat the combination (%.3f)",
				label, p.EnergyRatio, all.EnergyRatio)
		}
	}
	// The stall downshift is the dominant single mechanism on this
	// stall-heavy workload.
	downshift := byLabel["EPU stall downshift only"]
	for _, other := range []string{"medium downgrade only", "light loadline only", "underclock 5% only"} {
		if byLabel[other].EnergyRatio < downshift.EnergyRatio {
			t.Errorf("stall downshift (%.3f) should dominate %s (%.3f)",
				downshift.EnergyRatio, other, byLabel[other].EnergyRatio)
		}
	}
}

func TestSharedScanAblation(t *testing.T) {
	cfg := shorten(lightCommercial(), 0.005)
	r := SharedScans(cfg, true)
	if len(r.Points) != len(SharedScanConcurrencies) {
		t.Fatalf("%d points, want %d", len(r.Points), len(SharedScanConcurrencies))
	}
	pages := int64(0)
	for _, p := range r.Points {
		if p.N == 1 {
			// Nothing to share at N=1: both arms are one pass.
			pages = p.PoolShared
			continue
		}
		// One pass shared vs N passes sequential.
		if p.PoolShared != pages {
			t.Errorf("N=%d: shared pool touches %d, want one pass (%d)", p.N, p.PoolShared, pages)
		}
		if p.PoolSeq != int64(p.N)*pages {
			t.Errorf("N=%d: sequential pool touches %d, want %d", p.N, p.PoolSeq, int64(p.N)*pages)
		}
		if p.EnergyRatio >= 1 {
			t.Errorf("N=%d: sharing saves no energy (ratio %.3f)", p.N, p.EnergyRatio)
		}
		if p.TimeRatio >= 1 {
			t.Errorf("N=%d: sharing saves no time (ratio %.3f)", p.N, p.TimeRatio)
		}
		// Joules-per-query: the shared batch beats its own sequential arm.
		// (Strict decrease ACROSS N on identical queries is asserted at the
		// QED layer; band queries differ slightly in result size per N.)
		if p.SharedPerQuery >= p.SeqPerQuery {
			t.Errorf("N=%d: shared J/query %v not below sequential %v", p.N, p.SharedPerQuery, p.SeqPerQuery)
		}
	}
	if !strings.Contains(r.String(), "sharing on") {
		t.Fatal("report should name the mode")
	}

	// Control arm: sharing disabled, the "shared" run is sequential too,
	// so pool traffic matches N passes.
	off := SharedScans(cfg, false)
	for _, p := range off.Points {
		if p.PoolShared != p.PoolSeq {
			t.Errorf("control N=%d: pool %d vs %d, want equal (sharing off)", p.N, p.PoolShared, p.PoolSeq)
		}
	}
	if !strings.Contains(off.String(), "off (control)") {
		t.Fatal("control report should name the mode")
	}
}

func TestColumnarAblationChargingNeutral(t *testing.T) {
	cfg := shorten(lightCommercial(), 0.01)
	r := ColumnarScan(cfg, true)
	if len(r.Points) != len(ColumnarWorkloadSizes) {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		// The load-bearing property: the representation change must not
		// move a single simulated joule or second.
		if !p.SimulatedJoulesIdentical {
			t.Errorf("N=%d: row %v vs columnar %v J/query — representation leaked into charging", p.N, p.RowPerQuery, p.ColPerQuery)
		}
		if !p.SimulatedDurationIdentical {
			t.Errorf("N=%d: row %v vs columnar %v simulated time — representation leaked into charging", p.N, p.RowTime, p.ColTime)
		}
		// Wall-clock must not regress (the observed speedup is ~10x; >1 keeps
		// the assertion robust on noisy hosts). Short mode drops to a single
		// timed run per arm of a tiny workload, where one scheduler hiccup
		// can flip the comparison — skip the real-time half there.
		if !testing.Short() && p.Speedup <= 1 {
			t.Errorf("N=%d: columnar slower than row-at-a-time (%.2fx)", p.N, p.Speedup)
		}
	}
	if !strings.Contains(r.String(), "columnar fast paths") {
		t.Fatal("report should name the mode")
	}
	if !strings.Contains(ColumnarScan(cfg, false).String(), "control arm") {
		t.Fatal("control report should name the mode")
	}
}

func TestParallelAggAblationChargingNeutral(t *testing.T) {
	cfg := shorten(lightCommercial(), 0.01)
	r := ParallelAgg(cfg, true)
	if len(r.Points) != len(ParallelAggWorkloadSizes) {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		// The load-bearing property: worker count must not move a single
		// simulated joule or second. Wall-clock speedup is host-dependent
		// (single-core runners see none), so it is reported, not asserted.
		if !p.SimulatedJoulesIdentical {
			t.Errorf("N=%d: serial %v vs parallel %v J/query — workers leaked into charging", p.N, p.SerialPerQuery, p.ParPerQuery)
		}
		if !p.SimulatedDurationIdentical {
			t.Errorf("N=%d: serial %v vs parallel %v simulated time — workers leaked into charging", p.N, p.SerialTime, p.ParTime)
		}
	}
	if !strings.Contains(r.String(), "parallel pre-aggregation") {
		t.Fatal("report should name the mode")
	}
	if !strings.Contains(ParallelAgg(cfg, false).String(), "control arm") {
		t.Fatal("control report should name the mode")
	}
}

func TestParallelSortAblationChargingNeutral(t *testing.T) {
	cfg := shorten(lightCommercial(), 0.01)
	r := ParallelSort(cfg, true)
	if len(r.Arms) != len(ParallelSortWorkers) {
		t.Fatalf("arms = %d", len(r.Arms))
	}
	// The load-bearing property: worker count must not move a single
	// simulated joule or second. Wall-clock speedup is host-dependent
	// (single-core runners see none), so it is reported, not asserted.
	if !r.SimulatedIdentical {
		t.Error("worker count leaked into charging: simulated numbers differ across arms")
	}
	if r.Arms[0].MergePasses != 0 {
		t.Errorf("serial arm recorded %d merge passes, want 0", r.Arms[0].MergePasses)
	}
	for _, a := range r.Arms[1:] {
		if a.MergePasses == 0 {
			t.Errorf("workers=%d arm recorded no merge passes — the parallel sort never engaged", a.Workers)
		}
		if a.SortRows != r.Arms[0].SortRows {
			t.Errorf("workers=%d arm sorted %d rows vs serial %d", a.Workers, a.SortRows, r.Arms[0].SortRows)
		}
	}
	if r.Arms[0].PerQuery <= 0 {
		t.Error("registry joules delta should be positive")
	}
	if !strings.Contains(r.String(), "loser-tree merge") {
		t.Fatal("report should name the mode")
	}
	if !strings.Contains(ParallelSort(cfg, false).String(), "control arm") {
		t.Fatal("control report should name the mode")
	}
}

func TestOptimizerAblation(t *testing.T) {
	cfg := Config{SF: 0.05, Amplification: 20, Seed: 42, ProtocolRuns: 1}
	if testing.Short() {
		cfg = Config{SF: 0.01, Amplification: 100, Seed: 42, ProtocolRuns: 1}
	}
	r := Optimizer(cfg)

	// The optimizer's hard safety property: whatever plans the objectives
	// pick, every query's rows are bit-identical across all three arms.
	if !r.RowsIdentical {
		t.Fatal("optimized arms returned different rows than the hand-lowered baseline")
	}
	// The paper's operating-point claim: the two objectives choose
	// different physical plans for the same batch...
	if !r.PlanFlipped {
		t.Fatalf("latency and joules objectives chose the same plan: %q", r.Arms[1].Plan)
	}
	if !strings.Contains(r.Arms[1].Plan, "private") {
		t.Errorf("latency arm should scan privately, chose %q", r.Arms[1].Plan)
	}
	if !strings.Contains(r.Arms[2].Plan, "shared") {
		t.Errorf("joules arm should ride the shared pass, chose %q", r.Arms[2].Plan)
	}
	// ...and the joules plan buys a real saving: >=10% lower J/query under
	// equal-window accounting, paid for with a longer makespan.
	if s := r.JouleSavingPct(); s < 10 {
		t.Errorf("window J/query saving %.1f%%, want >= 10%%", s)
	}
	if r.Arms[2].Time <= r.Arms[1].Time {
		t.Errorf("joules arm should trade time for energy: %v vs latency %v", r.Arms[2].Time, r.Arms[1].Time)
	}
	if r.Arms[2].PerQuery >= r.Arms[1].PerQuery {
		t.Errorf("joules arm burns more even before window accounting: %v vs %v", r.Arms[2].PerQuery, r.Arms[1].PerQuery)
	}
	if !strings.Contains(r.String(), "plan flipped across objectives: yes") {
		t.Fatal("report should state the flip")
	}
}
