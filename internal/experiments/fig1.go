package experiments

import (
	"fmt"
	"strings"

	"ecodb/internal/core"
)

// Figure1Result is the commercial-DBMS operating-point plot: absolute CPU
// joules versus workload response time at stock and the three medium-
// downgrade underclock settings (A, B, C in the paper's Figure 1).
type Figure1Result struct {
	Config       Config
	Measurements []core.Measurement
}

// Figure1 reproduces the paper's Figure 1: TPC-H Q5 ×10 on the commercial
// DBMS, stock vs 5/10/15% underclocking with the medium voltage downgrade.
func Figure1(cfg Config) Figure1Result {
	sys, queries := newCommercialSystem(cfg)
	pvc := core.NewPVC(sys)
	return Figure1Result{
		Config:       cfg,
		Measurements: pvc.Sweep(core.MediumSettings(), queries),
	}
}

// Comparisons returns the paper-vs-measured key numbers: the stock
// operating point and setting A's savings.
func (r Figure1Result) Comparisons() []Comparison {
	if len(r.Measurements) < 2 {
		return nil
	}
	stock, a := r.Measurements[0], r.Measurements[1]
	rel := core.Relative(r.Measurements)
	return []Comparison{
		{Metric: "stock response time", Paper: 48.5, Measured: stock.Time.Seconds(), Unit: "s"},
		{Metric: "stock CPU energy", Paper: 1228.7, Measured: float64(stock.CPUEnergy), Unit: "J"},
		{Metric: "setting A (5%/medium) energy saving", Paper: 49, Measured: -100 * (rel[1].EnergyRatio - 1), Unit: "%"},
		{Metric: "setting A response-time penalty", Paper: 3, Measured: 100 * (rel[1].TimeRatio - 1), Unit: "%"},
		{Metric: "setting A response time", Paper: 50.0, Measured: a.Time.Seconds(), Unit: "s"},
	}
}

func (r Figure1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: TPC-H Q5 on the commercial DBMS (%s)\n", r.Config)
	fmt.Fprintf(&b, "  %-18s %12s %14s %14s %12s\n",
		"setting", "time", "CPU energy", "system (wall)", "disk")
	for _, m := range r.Measurements {
		fmt.Fprintf(&b, "  %-18s %12v %14v %14v %12v\n",
			m.Setting, m.Time, m.CPUEnergy, m.WallEnergy, m.DiskEnergy)
	}
	b.WriteString("\n  Dominance check (paper: B and C are worse than A on both axes):\n")
	if len(r.Measurements) == 4 {
		a, bb, c := r.Measurements[1], r.Measurements[2], r.Measurements[3]
		fmt.Fprintf(&b, "    B vs A: time %+.1f%%, energy %+.1f%%\n",
			100*(float64(bb.Time)/float64(a.Time)-1), 100*(float64(bb.CPUEnergy)/float64(a.CPUEnergy)-1))
		fmt.Fprintf(&b, "    C vs A: time %+.1f%%, energy %+.1f%%\n",
			100*(float64(c.Time)/float64(a.Time)-1), 100*(float64(c.CPUEnergy)/float64(a.CPUEnergy)-1))
	}
	b.WriteString("\nPaper vs measured:\n")
	renderComparisons(&b, r.Comparisons())
	return b.String()
}
