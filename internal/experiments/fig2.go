package experiments

import (
	"fmt"
	"strings"

	"ecodb/internal/core"
	"ecodb/internal/energy"
)

// PaperEDPFig2 holds the paper's §3.3 EDP changes (percent) for the
// commercial DBMS at 5/10/15% underclocking.
var PaperEDPFig2 = map[string][3]float64{
	"small":  {-30, -22, -15},
	"medium": {-47, -38, -23},
}

// FigureRatioResult is a stock-relative ratio sweep (the form of the
// paper's Figures 2 and 3): energy ratio on one axis, time ratio on the
// other, with the iso-EDP curve for reference.
type FigureRatioResult struct {
	Name     string
	Config   Config
	Points   []core.Point
	PaperEDP map[string][3]float64
	IsoEDP   [][2]float64
}

// Figure2 reproduces the paper's Figure 2: the commercial DBMS under both
// voltage downgrades, plotted as ratios to stock with the constant-EDP
// curve separating "interesting" points.
func Figure2(cfg Config) FigureRatioResult {
	sys, queries := newCommercialSystem(cfg)
	pvc := core.NewPVC(sys)
	ms := pvc.Sweep(core.PaperSettings(), queries)
	return FigureRatioResult{
		Name:     "Figure 2: TPC-H Q5 on the commercial DBMS (ratios to stock)",
		Config:   cfg,
		Points:   core.Relative(ms),
		PaperEDP: PaperEDPFig2,
		IsoEDP:   energy.IsoEDPCurve(0.4, 1.0, 13),
	}
}

// Comparisons returns paper-vs-measured EDP changes for every non-stock
// point.
func (r FigureRatioResult) Comparisons() []Comparison {
	var out []Comparison
	for _, pt := range r.Points {
		if pt.Setting.IsStock() {
			continue
		}
		dg := pt.Setting.Downgrade.String()
		ucIdx := map[float64]int{0.05: 0, 0.10: 1, 0.15: 2}
		idx, ok := ucIdx[pt.Setting.Underclock]
		if !ok {
			continue
		}
		paper := r.PaperEDP[dg][idx]
		out = append(out, Comparison{
			Metric:   fmt.Sprintf("EDP change, %s", pt.Setting),
			Paper:    paper,
			Measured: pt.EDPChange * 100,
			Unit:     "%",
		})
	}
	return out
}

func (r FigureRatioResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)\n", r.Name, r.Config)
	fmt.Fprintf(&b, "  %-18s %13s %11s %10s %14s\n",
		"setting", "energy ratio", "time ratio", "EDP", "vs iso-EDP")
	for _, pt := range r.Points {
		side := "on curve"
		iso := energy.IsoEDP(pt.EnergyRatio)
		switch {
		case pt.TimeRatio < iso-1e-9:
			side = "below (good)"
		case pt.TimeRatio > iso+1e-9:
			side = "above"
		}
		fmt.Fprintf(&b, "  %-18s %13.3f %11.3f %+9.1f%% %14s\n",
			pt.Setting, pt.EnergyRatio, pt.TimeRatio, pt.EDPChange*100, side)
	}
	b.WriteString("\nPaper vs measured (EDP change):\n")
	renderComparisons(&b, r.Comparisons())
	return b.String()
}
