package experiments

import (
	"ecodb/internal/core"
	"ecodb/internal/energy"
)

// PaperEDPFig3 holds the paper's §3.3 EDP changes (percent) for MySQL at
// 5/10/15% underclocking.
var PaperEDPFig3 = map[string][3]float64{
	"small":  {-7, -0.4, +9},
	"medium": {-16, -8, 0},
}

// Figure3 reproduces the paper's Figure 3: TPC-H Q5 on MySQL's MEMORY
// engine (CPU-bound), both downgrades, as ratios to stock.
func Figure3(cfg Config) FigureRatioResult {
	sys, queries := newMySQLSystem(cfg)
	pvc := core.NewPVC(sys)
	ms := pvc.Sweep(core.PaperSettings(), queries)
	return FigureRatioResult{
		Name:     "Figure 3: TPC-H Q5 on MySQL MEMORY engine (ratios to stock)",
		Config:   cfg,
		Points:   core.Relative(ms),
		PaperEDP: PaperEDPFig3,
		IsoEDP:   energy.IsoEDPCurve(0.4, 1.0, 13),
	}
}
