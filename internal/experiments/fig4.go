package experiments

import (
	"fmt"
	"math"
	"strings"

	"ecodb/internal/core"
	"ecodb/internal/hw/cpu"
)

// Figure4Point pairs observed EDP with the theoretical V²/F model at one
// operating point, both normalized to stock (the paper plots the two on
// separate axes of the same chart and shows they track).
type Figure4Point struct {
	Setting        core.Setting
	ObservedEDP    float64 // relative to stock
	TheoreticalEDP float64 // V²/F relative to stock, from monitored V̄ and F̄
}

// Figure4Result is one panel ((a) small, (b) medium) of the paper's
// Figure 4.
type Figure4Result struct {
	Config Config
	Panels map[string][]Figure4Point
}

// Figure4 reproduces the paper's Figure 4: the observed EDP of the MySQL
// workload against the theoretical EDP = V²/F computed from continuously
// monitored voltage and frequency, for the small and medium downgrades.
func Figure4(cfg Config) Figure4Result {
	sys, queries := newMySQLSystem(cfg)
	pvc := core.NewPVC(sys)

	out := Figure4Result{Config: cfg, Panels: make(map[string][]Figure4Point)}
	for _, d := range []cpu.Downgrade{cpu.DowngradeSmall, cpu.DowngradeMedium} {
		settings := []core.Setting{core.Stock()}
		for _, uc := range []float64{0.05, 0.10, 0.15} {
			settings = append(settings, core.PVCSetting(uc, d))
		}
		ms := pvc.Sweep(settings, queries)
		base := ms[0]
		points := make([]Figure4Point, len(ms))
		for i, m := range ms {
			points[i] = Figure4Point{
				Setting:        m.Setting,
				ObservedEDP:    float64(m.EDP()) / float64(base.EDP()),
				TheoreticalEDP: m.TheoreticalEDP() / base.TheoreticalEDP(),
			}
		}
		out.Panels[d.String()] = points
	}
	return out
}

// MaxDivergence returns the largest relative gap between observed and
// theoretical EDP across all points — the paper's claim is that the two
// "closely match".
func (r Figure4Result) MaxDivergence() float64 {
	var worst float64
	for _, pts := range r.Panels {
		for _, p := range pts {
			if p.TheoreticalEDP == 0 {
				continue
			}
			d := math.Abs(p.ObservedEDP-p.TheoreticalEDP) / p.TheoreticalEDP
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

func (r Figure4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: observed EDP vs theoretical EDP = V²/F, MySQL workload (%s)\n", r.Config)
	for _, panel := range []string{"small", "medium"} {
		fmt.Fprintf(&b, "  (%s voltage settings)\n", panel)
		fmt.Fprintf(&b, "    %-18s %14s %16s %8s\n", "setting", "observed EDP", "theoretical EDP", "gap")
		for _, p := range r.Panels[panel] {
			gap := 0.0
			if p.TheoreticalEDP != 0 {
				gap = (p.ObservedEDP - p.TheoreticalEDP) / p.TheoreticalEDP
			}
			fmt.Fprintf(&b, "    %-18s %14.3f %16.3f %+7.1f%%\n",
				p.Setting, p.ObservedEDP, p.TheoreticalEDP, gap*100)
		}
	}
	fmt.Fprintf(&b, "  max observed/theory divergence: %.1f%% (paper: the model \"closely matches\")\n",
		r.MaxDivergence()*100)
	return b.String()
}
