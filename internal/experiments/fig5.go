package experiments

import (
	"fmt"
	"strings"

	"ecodb/internal/hw/disk"
	"ecodb/internal/meter"
	"ecodb/internal/sim"
)

// Figure5Row is one (pattern, block size) cell of the disk study.
type Figure5Row struct {
	Pattern        disk.Pattern
	BlockKB        int
	ThroughputMBps float64
	EnergyPerKBmJ  float64
}

// Figure5Result is the paper's disk access study: throughput and energy
// per KB for sequential and random reads of 1.6 GB at several block sizes.
type Figure5Result struct {
	TotalMB int
	Rows    []Figure5Row
}

// PaperFig5RandomRatios are the paper's approximate random-throughput
// improvements over the 4 KB block size at 8/16/32 KB (§3.5: "1.88,
// approximately 3.5 and 6 times").
var PaperFig5RandomRatios = [3]float64{1.88, 3.5, 6.0}

// Figure5 reproduces the paper's Figure 5: read 1.6 GB (400,000 4 KB pages
// worth) from a 4 GB file sequentially and randomly with block sizes of 4,
// 8, 16 and 32 KB, measuring data throughput and energy per KB on the
// drive's two supply lines.
func Figure5() Figure5Result {
	const totalBytes = int64(400000) * 4 << 10 // 1.6 GB
	res := Figure5Result{TotalMB: int(totalBytes >> 20)}

	for _, pattern := range []disk.Pattern{disk.Sequential, disk.Random} {
		for _, blockKB := range []int{4, 8, 16, 32} {
			clock := sim.NewClock()
			d := disk.New(disk.CaviarSE16(), clock)
			block := int64(blockKB) << 10
			calls := totalBytes / block

			t0 := clock.Now()
			for i := int64(0); i < calls; i++ {
				clock.Advance(d.Read(block, pattern))
			}
			t1 := clock.Now()
			dur := t1.Sub(t0).Seconds()
			joules := meter.SumLines(t0, t1, d.Line5V(), d.Line12V())
			res.Rows = append(res.Rows, Figure5Row{
				Pattern:        pattern,
				BlockKB:        blockKB,
				ThroughputMBps: float64(totalBytes) / (1 << 20) / dur,
				EnergyPerKBmJ:  1000 * float64(joules) / (float64(totalBytes) / 1024),
			})
		}
	}
	return res
}

// RandomRatios returns the measured random-throughput improvements over
// the 4 KB block size, for 8/16/32 KB.
func (r Figure5Result) RandomRatios() [3]float64 {
	var base float64
	var out [3]float64
	i := 0
	for _, row := range r.Rows {
		if row.Pattern != disk.Random {
			continue
		}
		if row.BlockKB == 4 {
			base = row.ThroughputMBps
			continue
		}
		if base > 0 && i < 3 {
			out[i] = row.ThroughputMBps / base
			i++
		}
	}
	return out
}

// Comparisons returns paper-vs-measured random throughput ratios.
func (r Figure5Result) Comparisons() []Comparison {
	got := r.RandomRatios()
	blocks := []int{8, 16, 32}
	out := make([]Comparison, 3)
	for i := range out {
		out[i] = Comparison{
			Metric:   fmt.Sprintf("random throughput ratio %dKB/4KB", blocks[i]),
			Paper:    PaperFig5RandomRatios[i],
			Measured: got[i],
			Unit:     "x",
		}
	}
	return out
}

func (r Figure5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: disk energy, reading %d MB from a 4 GB file\n", r.TotalMB)
	fmt.Fprintf(&b, "  %-12s %8s %18s %16s\n", "pattern", "block", "throughput MB/s", "energy mJ/KB")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %6dKB %18.2f %16.3f\n",
			row.Pattern, row.BlockKB, row.ThroughputMBps, row.EnergyPerKBmJ)
	}
	b.WriteString("\nPaper vs measured:\n")
	renderComparisons(&b, r.Comparisons())
	return b.String()
}
