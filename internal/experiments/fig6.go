package experiments

import (
	"fmt"
	"strings"

	"ecodb/internal/core"
	"ecodb/internal/energy"
	"ecodb/internal/engine"
	"ecodb/internal/meter"
	"ecodb/internal/mqo"
	"ecodb/internal/sim"
	"ecodb/internal/tpch"
	"ecodb/internal/workload"
)

// Figure6Point is one batch size's sequential-vs-QED comparison.
type Figure6Point struct {
	BatchSize int

	SeqMeanResponse sim.Duration
	SeqEnergy       energy.Joules
	QEDMeanResponse sim.Duration
	QEDEnergy       energy.Joules

	// EnergyRatio and ResponseRatio are QED/sequential; EDPChange is the
	// relative change in (energy × mean response).
	EnergyRatio   float64
	ResponseRatio float64
	EDPChange     float64
}

// Figure6Result is the paper's QED study.
type Figure6Result struct {
	Config     Config
	Strategy   mqo.MergeStrategy
	SingleTime sim.Duration
	Points     []Figure6Point
}

// PaperFig6 holds the paper's §4 numbers: energy saving % and mean
// response-time increase % per batch size (45 is shown in the figure but
// not quoted in the text; the 54%/43% pair is the abstract's batch-50
// summary).
var PaperFig6 = map[int][2]float64{
	35: {46, 52},
	40: {51, 50},
	50: {54, 43},
}

// Figure6 reproduces the paper's Figure 6: the 2%-selectivity l_quantity
// selection workload on MySQL's MEMORY engine at stock settings, run
// sequentially versus QED-batched at sizes 35, 40, 45 and 50.
func Figure6(cfg Config) Figure6Result {
	return figure6(cfg, mqo.OrChain)
}

// Figure6HashSet runs the same study with the hash-set merge strategy —
// the smarter merged plan ecoDB adds beyond the paper (an ablation).
func Figure6HashSet(cfg Config) Figure6Result {
	return figure6(cfg, mqo.HashSet)
}

func figure6(cfg Config, strategy mqo.MergeStrategy) Figure6Result {
	prof := engine.ProfileMySQLMemory()
	prof.WorkAmplification = cfg.Amplification
	sys := core.NewSystem(prof)
	tpch.NewGenerator(cfg.SF, cfg.Seed).Load(sys.Engine.Catalog(), tpch.Lineitem)
	clock := sys.Machine.Clock
	trace := sys.Machine.CPU.Trace()

	// Single-query baseline for the delay analysis.
	t0 := clock.Now()
	workload.RunSequential(sys.Engine, clock,
		workload.NewQueries("single", tpch.QuantityWorkload(sys.Engine.Catalog(), 1)))
	single := clock.Now().Sub(t0)

	res := Figure6Result{Config: cfg, Strategy: strategy, SingleTime: single}
	runs := cfg.ProtocolRuns
	if runs < 1 {
		runs = 1
	}

	for _, n := range []int{35, 40, 45, 50} {
		queries := workload.NewQueries("sel", tpch.QuantityWorkload(sys.Engine.Catalog(), n))

		// Reading.Time carries the mean per-query response (the paper's
		// Figure 6 metric); Reduce averages it with extremes dropped.
		var seqReadings, qedReadings []meter.Reading
		for rep := 0; rep < runs; rep++ {
			t0 := clock.Now()
			seq := workload.RunSequential(sys.Engine, clock, queries)
			seqReadings = append(seqReadings, meter.Reading{
				Energy: sys.Sampler.Measure(trace, t0, clock.Now()), Time: seq.MeanResponse()})

			qed := core.NewQED(sys, n, strategy)
			t1 := clock.Now()
			batch := qed.RunBatch(queries)
			qedReadings = append(qedReadings, meter.Reading{
				Energy: sys.Sampler.Measure(trace, t1, clock.Now()), Time: batch.MeanResponse()})
		}
		seqRed := meter.Reduce(seqReadings)
		qedRed := meter.Reduce(qedReadings)
		seqE, seqMean := seqRed.Energy, seqRed.Time
		qedE, qedMean := qedRed.Energy, qedRed.Time

		eR := float64(qedE) / float64(seqE)
		tR := float64(qedMean) / float64(seqMean)
		res.Points = append(res.Points, Figure6Point{
			BatchSize:       n,
			SeqMeanResponse: seqMean,
			SeqEnergy:       seqE,
			QEDMeanResponse: qedMean,
			QEDEnergy:       qedE,
			EnergyRatio:     eR,
			ResponseRatio:   tR,
			EDPChange:       eR*tR - 1,
		})
	}
	return res
}

// Comparisons returns paper-vs-measured energy savings and response
// penalties for the quoted batch sizes.
func (r Figure6Result) Comparisons() []Comparison {
	var out []Comparison
	for _, p := range r.Points {
		paper, ok := PaperFig6[p.BatchSize]
		if !ok {
			continue
		}
		out = append(out,
			Comparison{
				Metric:   fmt.Sprintf("batch %d energy saving", p.BatchSize),
				Paper:    paper[0],
				Measured: -100 * (p.EnergyRatio - 1),
				Unit:     "%",
			},
			Comparison{
				Metric:   fmt.Sprintf("batch %d response-time increase", p.BatchSize),
				Paper:    paper[1],
				Measured: 100 * (p.ResponseRatio - 1),
				Unit:     "%",
			},
		)
	}
	return out
}

func (r Figure6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: QED on 2%%-selectivity l_quantity selections (%s, merge=%s)\n",
		r.Config, r.Strategy)
	fmt.Fprintf(&b, "  single query: %v\n", r.SingleTime)
	fmt.Fprintf(&b, "  %-6s %14s %12s %14s %12s %9s %9s %8s\n",
		"batch", "seq mean resp", "seq energy", "qed mean resp", "qed energy", "energy×", "resp×", "EDP")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-6d %14v %12v %14v %12v %9.3f %9.3f %+7.1f%%\n",
			p.BatchSize, p.SeqMeanResponse, p.SeqEnergy, p.QEDMeanResponse, p.QEDEnergy,
			p.EnergyRatio, p.ResponseRatio, p.EDPChange*100)
	}
	b.WriteString("\nPaper vs measured:\n")
	renderComparisons(&b, r.Comparisons())
	return b.String()
}
