package experiments

import (
	"fmt"
	"strings"
	"time"

	"ecodb/internal/core"
	"ecodb/internal/energy"
	"ecodb/internal/engine"
	"ecodb/internal/expr"
	"ecodb/internal/obsv"
	"ecodb/internal/opt"
	"ecodb/internal/plan"
	"ecodb/internal/sim"
	"ecodb/internal/tpch"
)

// OptimizerArm is one objective's run of the Q5 batch.
type OptimizerArm struct {
	Name string
	// Plan summarizes the optimizer's choice for the batch's queries
	// (every Q5 instance gets the same shape).
	Plan string
	// Wall is real Go time for the batch (best of ProtocolRuns); Time is
	// the simulated batch makespan and PerQuery the simulated CPU joules
	// per query while the batch runs (first run).
	Wall     time.Duration
	Time     sim.Duration
	PerQuery energy.Joules
	// RegistryPerQuery is the same arm read through the process-wide
	// metrics registry: the engine_query_joules_total.<objective> counter's
	// delta over the run, divided by the batch size. Each query's counter
	// contribution integrates that query's own admit→finish window, so for
	// a co-admitted batch the windows overlap and this reads the mean
	// per-query response-window energy — a response-centric number, unlike
	// PerQuery's share of the batch makespan.
	RegistryPerQuery energy.Joules
	// WindowPerQuery is simulated joules per query over the common
	// observation window — the slowest arm's makespan. An arm that finishes
	// early does not power the machine off; it idles at the profile's idle
	// draw until the window closes. This equal-window accounting is how
	// strategies of different duration compare in the paper's
	// operating-point argument, and it is the ablation's headline metric.
	WindowPerQuery energy.Joules

	batch energy.Joules // total batch energy over the arm's own makespan
	idleW energy.Watts  // the arm's machine idle draw, for the window tail
}

// OptimizerResult is the cost-and-energy optimizer ablation: the paper's
// ten-query Q5 workload arrives as one co-admitted batch on a shared
// session, replayed under three profiles — optimizer disabled (the
// hand-lowered plans, legacy shared execution), the latency objective,
// and the joules objective. The optimizer re-plans each statement: the
// latency objective detaches from the shared pass, reorders the joins and
// runs on every configured core; the joules objective keeps single-core
// execution and rides the shared pass, amortizing lineitem's page
// streaming across the whole batch. Result rows must be byte-identical in
// all three arms — the optimizer may only change how the answer is
// computed, never the answer.
type OptimizerResult struct {
	Config  Config
	Queries int
	Arms    []OptimizerArm // baseline, latency, joules
	// PlanFlipped reports that the latency- and joules-objective physical
	// plans differ (shape, parallelism, or access path).
	PlanFlipped bool
	// RowsIdentical is the correctness gate: every query returned
	// bit-identical rows (values and order) in all three arms.
	RowsIdentical bool
}

// Optimizer runs the optimizer ablation on the commercial profile, a
// fresh system per arm (background-I/O randomness advances with every
// page read, so only from-boot replays compare).
func Optimizer(cfg Config) OptimizerResult {
	runs := cfg.ProtocolRuns
	if runs < 1 {
		runs = 1
	}
	res := OptimizerResult{Config: cfg}

	arm := func(name string, obj opt.Objective) (OptimizerArm, [][]expr.Row) {
		prof := engine.ProfileCommercial()
		prof.WorkAmplification = cfg.Amplification
		prof.Objective = obj
		sys := core.NewSystem(prof)
		tpch.NewGenerator(cfg.SF, cfg.Seed).Load(sys.Engine.Catalog(),
			tpch.Region, tpch.Nation, tpch.Supplier, tpch.Customer, tpch.Orders, tpch.Lineitem)
		sys.Engine.WarmAll()
		clock := sys.Machine.Clock
		trace := sys.Machine.CPU.Trace()
		plans := tpch.Q5Workload(sys.Engine.Catalog())
		res.Queries = len(plans)

		a := OptimizerArm{Name: name, Plan: chosenPlan(sys.Engine, plans[0], len(plans))}
		var rows [][]expr.Row
		for rep := 0; rep < runs; rep++ {
			j0 := obsv.QueryJoules(obj.String()).Load()
			t0 := clock.Now()
			w0 := time.Now()
			got := runCoAdmitted(sys.Engine, plans, len(plans))
			w := time.Since(w0)
			if rep == 0 || w < a.Wall {
				a.Wall = w
			}
			if rep == 0 {
				a.Time = clock.Now().Sub(t0)
				a.batch = trace.Energy(t0, clock.Now())
				a.PerQuery = energy.PerQuery(a.batch, len(plans))
				a.RegistryPerQuery = energy.PerQuery(
					energy.Joules(obsv.QueryJoules(obj.String()).Load()-j0), len(plans))
				a.idleW = sys.Machine.CPU.IdlePower()
				rows = got
			}
		}
		return a, rows
	}

	base, baseRows := arm("baseline", opt.Objective{})
	lat, latRows := arm("latency", opt.MinimizeLatency())
	jou, jouRows := arm("joules", opt.MinimizeJoules())
	res.Arms = []OptimizerArm{base, lat, jou}

	// Equal-window energy: every arm is observed for as long as the slowest
	// one runs, idling at its own machine's idle draw after finishing.
	var window sim.Duration
	for _, a := range res.Arms {
		window = max(window, a.Time)
	}
	for i := range res.Arms {
		a := &res.Arms[i]
		tail := a.idleW.For((window - a.Time).Seconds())
		a.WindowPerQuery = energy.PerQuery(a.batch+tail, res.Queries)
	}

	res.PlanFlipped = lat.Plan != jou.Plan
	res.RowsIdentical = batchesEqual(baseRows, latRows) && batchesEqual(baseRows, jouRows)
	return res
}

// runCoAdmitted admits every plan to one shared session before any pulls
// (so shared attaches all enter at the same pass position), then
// interleaves pulls round-robin, materializing each query's rows.
func runCoAdmitted(e *engine.Engine, plans []plan.Node, expected int) [][]expr.Row {
	sess := e.NewSharedSession()
	sess.SetExpectedConcurrency(expected)
	streams := make([]*engine.Rows, len(plans))
	for i, p := range plans {
		streams[i] = sess.Query(p)
	}
	out := make([][]expr.Row, len(plans))
	remaining := len(plans)
	for remaining > 0 {
		for i, r := range streams {
			if r == nil {
				continue
			}
			b, err := r.Next()
			if err != nil {
				panic(fmt.Sprintf("experiments: optimizer batch query %d failed: %v", i, err))
			}
			if b == nil {
				r.Close()
				streams[i] = nil
				remaining--
				continue
			}
			out[i] = b.AppendRowsTo(out[i])
		}
	}
	return out
}

// chosenPlan renders what the engine's optimizer picks for p at the given
// shared concurrency — "hand-lowered" when the objective is disabled or
// the plan bypasses optimization.
func chosenPlan(e *engine.Engine, p plan.Node, sharedQ int) string {
	env, obj := e.OptimizerEnv()
	if !obj.Enabled {
		return "hand-lowered (objective disabled)"
	}
	lg, basePhys, err := opt.Extract(p)
	if err != nil {
		return "hand-lowered (not extractable)"
	}
	env.SharedConcurrency = sharedQ
	ch, err := opt.Optimize(lg, basePhys, env, obj)
	if err != nil {
		return "hand-lowered (no admissible plan)"
	}
	names := make([]string, len(ch.Phys.JoinOrder))
	for i, t := range ch.Phys.JoinOrder {
		names[i] = lg.Tables[t].Name
	}
	sides := make([]string, len(ch.Phys.BuildLeft))
	for i, bl := range ch.Phys.BuildLeft {
		if bl {
			sides[i] = "L"
		} else {
			sides[i] = "R"
		}
	}
	access := "private"
	if ch.Shared {
		access = "shared"
	}
	return fmt.Sprintf("%s | builds %s | par=%d %s",
		strings.Join(names, "⨝"), strings.Join(sides, ""), ch.Parallelism, access)
}

func batchesEqual(a, b [][]expr.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if len(a[i][j]) != len(b[i][j]) {
				return false
			}
			for k := range a[i][j] {
				if a[i][j][k] != b[i][j][k] {
					return false
				}
			}
		}
	}
	return true
}

// JouleSavingPct returns the joules arm's per-query energy saving as a
// percentage of the latency arm, under equal-window accounting.
func (r OptimizerResult) JouleSavingPct() float64 {
	if len(r.Arms) < 3 || r.Arms[1].WindowPerQuery == 0 {
		return 0
	}
	return (1 - float64(r.Arms[2].WindowPerQuery)/float64(r.Arms[1].WindowPerQuery)) * 100
}

func (r OptimizerResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cost-and-energy optimizer ablation (%s)\n", r.Config)
	fmt.Fprintf(&b, "  %d-query TPC-H Q5 batch, co-admitted; objective varies per arm\n\n", r.Queries)
	fmt.Fprintf(&b, "  %-10s %12s %12s %10s %12s %12s  %s\n",
		"arm", "wall", "sim time", "J/query", "J/q window", "J/q registry", "chosen plan")
	for _, a := range r.Arms {
		fmt.Fprintf(&b, "  %-10s %12v %12v %10v %12v %12v  %s\n",
			a.Name, a.Wall.Round(time.Microsecond), a.Time, a.PerQuery, a.WindowPerQuery,
			a.RegistryPerQuery, a.Plan)
	}
	flip := "no"
	if r.PlanFlipped {
		flip = "yes"
	}
	rowsOK := "yes"
	if !r.RowsIdentical {
		rowsOK = "NO (BUG)"
	}
	fmt.Fprintf(&b, "\n  plan flipped across objectives: %s   window J/query saving (joules vs latency): %.1f%%   results identical: %s\n",
		flip, r.JouleSavingPct(), rowsOK)
	b.WriteString("\n  The latency objective leaves the shared pass and spreads compute across\n")
	b.WriteString("  cores; the joules objective rides one shared heap pass single-core, trading\n")
	b.WriteString("  response time for amortized page streaming and lower-power stalls. The\n")
	b.WriteString("  window column observes every arm for the slowest arm's makespan — a machine\n")
	b.WriteString("  that finishes early still burns idle watts — which is how strategies of\n")
	b.WriteString("  different duration compare in the paper's operating-point argument.\n")
	return b.String()
}
