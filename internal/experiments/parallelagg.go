package experiments

import (
	"fmt"
	"strings"
	"time"

	"ecodb/internal/core"
	"ecodb/internal/energy"
	"ecodb/internal/engine"
	"ecodb/internal/sim"
	"ecodb/internal/tpch"
	"ecodb/internal/workload"
)

// ParallelAggWorkers is the treated arm's worker count.
const ParallelAggWorkers = 4

// ParallelAggPoint is one workload size's serial-vs-parallel comparison on
// the aggregation-heavy pricing-summary workload.
type ParallelAggPoint struct {
	N int

	// SerialWall and ParWall are real Go wall-clock — the resource worker
	// goroutines actually change.
	SerialWall, ParWall time.Duration
	// Simulated durations and per-query joules must match exactly: the
	// morsel coordinator replays all charging in page order, so worker
	// count never moves a simulated number.
	SerialTime, ParTime         sim.Duration
	SerialPerQuery, ParPerQuery energy.Joules
	Speedup                     float64 // SerialWall / ParWall
	SimulatedJoulesIdentical    bool
	SimulatedDurationIdentical  bool
}

// ParallelAggResult is the parallel-aggregation ablation: the Q1-shaped
// grouped-revenue workload replayed with Workers=1 versus Workers=4, per
// workload size. With enabled=false the treated arm also runs serial and
// the wall-clock deltas collapse — the control arm.
type ParallelAggResult struct {
	Config  Config
	Enabled bool
	Points  []ParallelAggPoint
}

// ParallelAggWorkloadSizes are the batch sizes the ablation sweeps.
var ParallelAggWorkloadSizes = []int{1, 4, 16}

// ParallelAgg replays an aggregation-dominated TPC-H workload (grouped
// revenue per quantity over lineitem — Agg directly on a scan fragment) on
// the commercial profile, serial versus morsel-parallel with per-worker
// partial aggregation tables. Like the columnar ablation this measures
// REAL wall-clock: the paper's energy-proportionality argument rewards
// finishing the same work in fewer core-seconds, and worker count is
// exactly such a software choice — simulated-era joules per query stay
// bit-identical while the modern host finishes sooner.
func ParallelAgg(cfg Config, enabled bool) ParallelAggResult {
	runs := cfg.ProtocolRuns
	if runs < 1 {
		runs = 1
	}

	res := ParallelAggResult{Config: cfg, Enabled: enabled}
	for _, n := range ParallelAggWorkloadSizes {
		// Each arm gets a FRESH system: the commercial profile's
		// background-I/O randomness advances with every query, so only
		// identical from-boot replays can be compared bit for bit. The
		// best wall-clock over the protocol runs drops scheduler noise;
		// simulated numbers come from the first run.
		arm := func(workers int) (wall time.Duration, simT sim.Duration, perQ energy.Joules) {
			prof := engine.ProfileCommercial()
			prof.WorkAmplification = cfg.Amplification
			prof.Workers = workers
			sys := core.NewSystem(prof)
			tpch.NewGenerator(cfg.SF, cfg.Seed).Load(sys.Engine.Catalog(), tpch.Lineitem)
			sys.Engine.WarmAll()
			clock := sys.Machine.Clock
			trace := sys.Machine.CPU.Trace()
			queries := workload.NewQueries("agg", tpch.RevenueAggWorkload(sys.Engine.Catalog(), n))

			for rep := 0; rep < runs; rep++ {
				t0 := clock.Now()
				w0 := time.Now()
				workload.RunSequential(sys.Engine, clock, queries)
				w := time.Since(w0)
				if rep == 0 || w < wall {
					wall = w
				}
				if rep == 0 {
					simT = clock.Now().Sub(t0)
					perQ = energy.PerQuery(trace.Energy(t0, clock.Now()), n)
				}
			}
			return wall, simT, perQ
		}

		treated := ParallelAggWorkers
		if !enabled {
			treated = 1
		}
		serWall, serT, serJ := arm(1)
		parWall, parT, parJ := arm(treated)

		res.Points = append(res.Points, ParallelAggPoint{
			N:                          n,
			SerialWall:                 serWall,
			ParWall:                    parWall,
			SerialTime:                 serT,
			ParTime:                    parT,
			SerialPerQuery:             serJ,
			ParPerQuery:                parJ,
			Speedup:                    float64(serWall) / float64(parWall),
			SimulatedJoulesIdentical:   serJ == parJ,
			SimulatedDurationIdentical: serT == parT,
		})
	}
	return res
}

func (r ParallelAggResult) String() string {
	var b strings.Builder
	mode := fmt.Sprintf("parallel pre-aggregation, %d workers", ParallelAggWorkers)
	if !r.Enabled {
		mode = "DISABLED (control arm: both arms serial)"
	}
	fmt.Fprintf(&b, "Parallel aggregation ablation (%s)\n", r.Config)
	fmt.Fprintf(&b, "  grouped-revenue workload on lineitem, treated arm: %s\n\n", mode)
	fmt.Fprintf(&b, "  %3s %14s %14s %9s %14s %14s %10s\n",
		"N", "serial wall", "parallel wall", "speedup", "ser J/query", "par J/query", "sim equal")
	for _, p := range r.Points {
		equal := "yes"
		if !p.SimulatedJoulesIdentical || !p.SimulatedDurationIdentical {
			equal = "NO (BUG)"
		}
		fmt.Fprintf(&b, "  %3d %14v %14v %8.2fx %14v %14v %10s\n",
			p.N, p.SerialWall.Round(time.Microsecond), p.ParWall.Round(time.Microsecond),
			p.Speedup, p.SerialPerQuery, p.ParPerQuery, equal)
	}
	b.WriteString("\n  Simulated durations and joules per query are bit-identical across worker\n")
	b.WriteString("  counts by construction (the coordinator merges per-worker partial tables\n")
	b.WriteString("  in page order and folds floating-point sums in global row order); the\n")
	b.WriteString("  wall-clock column is the real saving on multi-core hosts. Single-core\n")
	b.WriteString("  hosts see speedup ≈ 1.0 — the treated arm differs only in goroutines.\n")
	return b.String()
}
