package experiments

import (
	"fmt"
	"strings"
	"time"

	"ecodb/internal/core"
	"ecodb/internal/energy"
	"ecodb/internal/engine"
	"ecodb/internal/obsv"
	"ecodb/internal/sim"
	"ecodb/internal/tpch"
	"ecodb/internal/workload"
)

// ParallelSortWorkers are the worker counts the ablation sweeps; the first
// entry is the serial baseline every other arm is compared against.
var ParallelSortWorkers = []int{1, 2, 4}

// ParallelSortQueries is the workload size: distinct ordered-revenue sort
// queries per arm.
const ParallelSortQueries = 8

// ParallelSortArm is one worker count's measurement on the sort-dominated
// ordered-revenue workload.
type ParallelSortArm struct {
	Workers int
	// Wall is real Go wall-clock — the only resource worker count changes.
	Wall time.Duration
	// Time is the simulated batch duration; identical across arms by
	// construction (the coordinator replays all charging in page order).
	Time sim.Duration
	// PerQuery is joules per query sourced from the engine metrics
	// registry: the delta of the per-objective query-energy counter across
	// the batch, divided by the query count — the same number an operator
	// would read off `ecodb -metrics`.
	PerQuery energy.Joules
	// SortRows and MergePasses are registry counter deltas across the
	// batch: rows through a sort operator (identical in every arm) and
	// loser-tree merge passes (zero in the serial arm — the counter proves
	// which path ran).
	SortRows, MergePasses int64

	// batch is the arm's trace-measured batch energy: unlike the registry
	// counter, the trace is per-system and summed from the same magnitude
	// in every arm, so it is the bit-identity gate.
	batch energy.Joules
}

// ParallelSortResult is the parallel-sort ablation: the ordered-revenue
// workload replayed at increasing worker counts. With enabled=false every
// arm runs serial and the wall-clock deltas collapse — the control arm.
type ParallelSortResult struct {
	Config  Config
	Enabled bool
	Arms    []ParallelSortArm
	// SimulatedIdentical reports that every arm's simulated duration and
	// registry joules matched the serial arm bit for bit.
	SimulatedIdentical bool
}

// ParallelSort replays a sort-dominated TPC-H workload (ordered revenue
// over lineitem — Sort directly on a scan→filter→project fragment) on the
// commercial profile at worker counts 1, 2, and 4. Workers generate
// sorted runs and the coordinator merges them with a loser tree; as with
// the aggregation ablation, the measured quantity is REAL wall-clock —
// simulated durations and joules per query stay bit-identical while the
// modern host finishes sooner, which is the paper's energy argument.
// Joules per query come from the engine metrics registry (the
// per-objective query-energy counter), not the energy trace, proving the
// observability surface agrees with the simulation.
func ParallelSort(cfg Config, enabled bool) ParallelSortResult {
	runs := cfg.ProtocolRuns
	if runs < 1 {
		runs = 1
	}

	res := ParallelSortResult{Config: cfg, Enabled: enabled, SimulatedIdentical: true}
	for _, workers := range ParallelSortWorkers {
		treated := workers
		if !enabled {
			treated = 1
		}
		// Each arm gets a FRESH system: the commercial profile's
		// background-I/O randomness advances with every query, so only
		// identical from-boot replays can be compared bit for bit. The best
		// wall-clock over the protocol runs drops scheduler noise; simulated
		// numbers and registry deltas come from the first run.
		prof := engine.ProfileCommercial()
		prof.WorkAmplification = cfg.Amplification
		prof.Workers = treated
		sys := core.NewSystem(prof)
		tpch.NewGenerator(cfg.SF, cfg.Seed).Load(sys.Engine.Catalog(), tpch.Lineitem)
		sys.Engine.WarmAll()
		clock := sys.Machine.Clock
		trace := sys.Machine.CPU.Trace()
		queries := workload.NewQueries("sort",
			tpch.OrderedRevenueWorkload(sys.Engine.Catalog(), ParallelSortQueries))

		arm := ParallelSortArm{Workers: workers}
		joules := obsv.QueryJoules(prof.Objective.String())
		for rep := 0; rep < runs; rep++ {
			j0 := joules.Load()
			s0, m0 := obsv.SortRows.Load(), obsv.MergePasses.Load()
			t0 := clock.Now()
			w0 := time.Now()
			workload.RunSequential(sys.Engine, clock, queries)
			w := time.Since(w0)
			if rep == 0 || w < arm.Wall {
				arm.Wall = w
			}
			if rep == 0 {
				arm.Time = clock.Now().Sub(t0)
				arm.batch = trace.Energy(t0, clock.Now())
				arm.PerQuery = energy.PerQuery(
					energy.Joules(joules.Load()-j0), ParallelSortQueries)
				arm.SortRows = obsv.SortRows.Load() - s0
				arm.MergePasses = obsv.MergePasses.Load() - m0
			}
		}
		res.Arms = append(res.Arms, arm)
	}

	base := res.Arms[0]
	for _, a := range res.Arms[1:] {
		if a.Time != base.Time || a.batch != base.batch || a.SortRows != base.SortRows {
			res.SimulatedIdentical = false
		}
	}
	return res
}

func (r ParallelSortResult) String() string {
	var b strings.Builder
	mode := "morsel-parallel sort: worker run generation + loser-tree merge"
	if !r.Enabled {
		mode = "DISABLED (control arm: every worker count runs serial)"
	}
	fmt.Fprintf(&b, "Parallel sort ablation (%s)\n", r.Config)
	fmt.Fprintf(&b, "  ordered-revenue workload on lineitem (%d queries), treated arms: %s\n\n",
		ParallelSortQueries, mode)
	fmt.Fprintf(&b, "  %7s %14s %9s %14s %14s %12s %12s\n",
		"workers", "wall", "speedup", "sim duration", "J/query", "sort rows", "merge passes")
	base := r.Arms[0]
	for _, a := range r.Arms {
		fmt.Fprintf(&b, "  %7d %14v %8.2fx %14v %14v %12d %12d\n",
			a.Workers, a.Wall.Round(time.Microsecond),
			float64(base.Wall)/float64(a.Wall),
			a.Time, a.PerQuery, a.SortRows, a.MergePasses)
	}
	status := "bit-identical across worker counts"
	if !r.SimulatedIdentical {
		status = "NOT identical — BUG"
	}
	fmt.Fprintf(&b, "\n  Simulated durations and trace-measured batch joules: %s.\n", status)
	b.WriteString("  J/query is read from the engine metrics registry (per-objective query\n")
	b.WriteString("  energy counter deltas), so the observability surface is the thing under\n")
	b.WriteString("  test; the merge-passes counter proves which arms took the parallel path.\n")
	b.WriteString("  Wall-clock is the real saving on multi-core hosts; single-core hosts see\n")
	b.WriteString("  speedup ≈ 1.0 — the arms differ only in goroutines.\n")
	return b.String()
}
