package experiments

import (
	"fmt"
	"strings"

	"ecodb/internal/core"
	"ecodb/internal/engine"
	"ecodb/internal/server"
	"ecodb/internal/tpch"
)

// DefaultServerConfig sizes the query-server ablation: a small lineitem
// at amplification 1, because the experiment measures serving throughput
// rather than paper-scale per-query joules.
func DefaultServerConfig() Config {
	return Config{SF: 0.0005, Amplification: 1, Seed: 42, ProtocolRuns: 1}
}

// serverProfile is the commercial profile adjusted for a serving workload:
// clients hold persistent sessions with prepared statements, so the
// per-statement overhead drops from the paper's ad-hoc JDBC round trip
// (28M cycles — parse, optimize, connection churn) to a prepared-execute
// dispatch. Simulated physics are otherwise unchanged.
func serverProfile(cfg Config) engine.Profile {
	prof := engine.ProfileCommercial()
	prof.WorkAmplification = cfg.Amplification
	prof.QueryOverheadCycles = 5e5
	return prof
}

// ServerSystem assembles the serving SUT for `ecodb serve`: every TPC-H
// table loaded and warm under the serving profile, ready for arbitrary SQL
// over HTTP.
func ServerSystem(cfg Config) *core.System {
	sys := core.NewSystem(serverProfile(cfg))
	tpch.NewGenerator(cfg.SF, cfg.Seed).Load(sys.Engine.Catalog(),
		tpch.Region, tpch.Nation, tpch.Supplier, tpch.Customer, tpch.Orders, tpch.Lineitem)
	sys.Engine.WarmAll()
	return sys
}

// newServerSystem assembles the ablation SUT: lineitem loaded and warm,
// plus the 25-band non-mergeable selection workload as admission requests.
func newServerSystem(cfg Config) (*core.System, []server.Request) {
	sys := core.NewSystem(serverProfile(cfg))
	tpch.NewGenerator(cfg.SF, cfg.Seed).Load(sys.Engine.Catalog(), tpch.Lineitem)
	sys.Engine.WarmAll()
	plans := tpch.QuantityBandWorkload(sys.Engine.Catalog(), 25)
	reqs := make([]server.Request, len(plans))
	for i, p := range plans {
		reqs[i] = server.Request{ID: fmt.Sprintf("band%02d", i+1), Plan: p}
	}
	return sys, reqs
}

// ServerPoint is one (offered load, admission policy) cell of the ablation.
type ServerPoint struct {
	QPS    float64
	Policy server.Policy
	server.OpenLoopResult
}

// ServerResult is the latency-versus-joules Pareto sweep of the admission
// policies under open-loop load.
type ServerResult struct {
	Cfg    Config
	N      int
	Points []ServerPoint
}

// Point returns the cell for an offered load and policy, nil if absent.
func (r *ServerResult) Point(qps float64, pol server.Policy) *ServerPoint {
	for i := range r.Points {
		if r.Points[i].QPS == qps && r.Points[i].Policy == pol {
			return &r.Points[i]
		}
	}
	return nil
}

// Server runs the query-server admission ablation: the same open-loop
// arrival schedule — N statements at 10²–10⁴ statements per simulated
// second, cycling the non-mergeable band workload — pushed through each
// admission policy on a fresh system. Private admission executes every
// statement the moment the scheduler reaches it with private scans; shared
// and deadline admission gather co-admission windows and serve each batch
// from one circular pass per table. The run's energy integrates the whole
// horizon, idle watts included, so a policy that finishes the offered work
// sooner banks the difference as idle time rather than hiding it.
func Server(cfg Config) *ServerResult {
	const n = 256
	out := &ServerResult{Cfg: cfg, N: n}
	for _, qps := range []float64{100, 1000, 10000} {
		for _, pol := range []server.Policy{server.PolicyPrivate, server.PolicyShared, server.PolicyDeadline} {
			sys, reqs := newServerSystem(cfg)
			if pol == server.PolicyDeadline {
				// The deadline arm carries a 50 ms simulated response budget
				// per statement so EDF ordering and miss accounting engage.
				for i := range reqs {
					reqs[i].Deadline = 0.050
				}
			}
			scfg := server.Config{
				Policy:         pol,
				MaxInflight:    4096,
				FlushThreshold: 16,
				FlushWait:      0.005,
				UrgentSlack:    0.002,
				Window:         64,
			}
			c := server.NewCore(scfg, sys)
			res := c.RunOpenLoop(server.OpenLoopArrivals(sys.Machine.Clock.Now(), n, qps, reqs))
			out.Points = append(out.Points, ServerPoint{QPS: qps, Policy: pol, OpenLoopResult: res})
		}
	}
	return out
}

func (r *ServerResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Query-server admission ablation — latency vs joules Pareto (%s)\n", r.Cfg)
	fmt.Fprintf(&b, "%d statements per point, open loop, 25 non-mergeable quantity bands over lineitem\n\n", r.N)
	fmt.Fprintf(&b, "  %8s %-9s %9s %5s %4s %10s %10s %9s %9s\n",
		"offered", "policy", "achieved", "done", "miss", "mean-resp", "max-resp", "J/query", "total-J")
	var lastQPS float64
	for _, p := range r.Points {
		if p.QPS != lastQPS && lastQPS != 0 {
			b.WriteByte('\n')
		}
		lastQPS = p.QPS
		fmt.Fprintf(&b, "  %7.0f/s %-9s %7.0f/s %5d %4d %10s %10s %9.4f %9.1f\n",
			p.QPS, p.Policy, p.AchievedQPS(), p.Completed, p.Misses,
			p.MeanResponse, p.MaxResponse, p.JoulesPerQuery(), p.Joules)
	}
	b.WriteString("\nReading the Pareto: within an offered-load row-group, a policy dominates when\n")
	b.WriteString("both its mean response and its J/query are lower. Shared admission trades a\n")
	b.WriteString("bounded co-admission wait for page I/O and page streaming charged once per\n")
	b.WriteString("pass; the saving grows with the flush batch size, so it widens with load.\n")
	return b.String()
}
