package experiments

import (
	"strings"
	"testing"

	"ecodb/internal/server"
)

// TestServerAblation pins the acceptance bar for the query-server
// experiment: at the highest offered load, shared admission sustains at
// least 10³ statements per simulated second and lands strictly below
// private admission on joules per query.
func TestServerAblation(t *testing.T) {
	r := Server(DefaultServerConfig())
	for _, p := range r.Points {
		if p.Completed != r.N {
			t.Fatalf("%v/%s completed %d of %d", p.QPS, p.Policy, p.Completed, r.N)
		}
	}
	shared := r.Point(10000, server.PolicyShared)
	private := r.Point(10000, server.PolicyPrivate)
	if shared == nil || private == nil {
		t.Fatalf("missing 10k points: %+v", r.Points)
	}
	if got := shared.AchievedQPS(); got < 1000 {
		t.Fatalf("shared admission achieved %.0f QPS at 10k offered, want >= 1000", got)
	}
	if shared.JoulesPerQuery() >= private.JoulesPerQuery() {
		t.Fatalf("shared J/query %.4f not below private %.4f",
			shared.JoulesPerQuery(), private.JoulesPerQuery())
	}
	out := r.String()
	for _, want := range []string{"offered", "policy", "J/query", "Pareto"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestServerDeterminism: two identical ablation sweeps produce identical
// joules and response times — the bit-identity contract at experiment
// granularity.
func TestServerDeterminism(t *testing.T) {
	a := Server(DefaultServerConfig())
	b := Server(DefaultServerConfig())
	if len(a.Points) != len(b.Points) {
		t.Fatalf("point counts diverge: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		pa, pb := a.Points[i], b.Points[i]
		if pa.Joules != pb.Joules || pa.MeanResponse != pb.MeanResponse || pa.End != pb.End {
			t.Fatalf("point %d diverges: %+v vs %+v", i, pa.OpenLoopResult, pb.OpenLoopResult)
		}
	}
}
