package experiments

import (
	"fmt"
	"strings"

	"ecodb/internal/core"
	"ecodb/internal/energy"
	"ecodb/internal/engine"
	"ecodb/internal/meter"
	"ecodb/internal/mqo"
	"ecodb/internal/obsv"
	"ecodb/internal/sim"
	"ecodb/internal/tpch"
	"ecodb/internal/workload"
)

// SharedScanPoint is one concurrency level's sequential-vs-shared
// comparison on the non-mergeable band-selection workload.
type SharedScanPoint struct {
	N int

	SeqTime    sim.Duration
	SharedTime sim.Duration
	SeqEnergy  energy.Joules
	// SharedEnergy is the batch's energy when QED flushes it through the
	// shared-scan subsystem (equal to a second sequential run when the
	// ablation disables sharing).
	SharedEnergy energy.Joules
	// SeqPerQuery and SharedPerQuery are the joules-per-query the two
	// strategies pay at this concurrency.
	SeqPerQuery    energy.Joules
	SharedPerQuery energy.Joules
	// PoolSeq and PoolShared count buffer-pool touches (hits+misses): N
	// heap passes sequentially versus one pass shared.
	PoolSeq    int64
	PoolShared int64

	// EnergyRatio is shared/sequential batch energy; TimeRatio likewise.
	EnergyRatio float64
	TimeRatio   float64
}

// SharedScanResult is the shared-scan ablation: the QED band workload
// (range selections mqo.Merge rejects) replayed with scan sharing on or
// off, per concurrency level.
type SharedScanResult struct {
	Config  Config
	Enabled bool
	Points  []SharedScanPoint
}

// SharedScanConcurrencies are the batch sizes the ablation sweeps.
var SharedScanConcurrencies = []int{1, 4, 16}

// SharedScans replays a non-mergeable selection workload on the commercial
// profile, sequentially versus through QED's shared-scan flush, at
// increasing concurrency. With enabled=false the QED controller falls back
// to sequential execution and the deltas collapse — the ablation's control
// arm. Energies are exact trace integrals (what a better instrument than
// the paper's 1 Hz GUI sampler would read): the shared windows are short
// enough that sampling noise would otherwise drown the per-pass delta.
func SharedScans(cfg Config, enabled bool) SharedScanResult {
	prof := engine.ProfileCommercial()
	prof.WorkAmplification = cfg.Amplification
	sys := core.NewSystem(prof)
	tpch.NewGenerator(cfg.SF, cfg.Seed).Load(sys.Engine.Catalog(), tpch.Lineitem)
	sys.Engine.WarmAll()
	clock := sys.Machine.Clock
	trace := sys.Machine.CPU.Trace()

	runs := cfg.ProtocolRuns
	if runs < 1 {
		runs = 1
	}

	res := SharedScanResult{Config: cfg, Enabled: enabled}
	for _, n := range SharedScanConcurrencies {
		queries := workload.NewQueries("band", tpch.QuantityBandWorkload(sys.Engine.Catalog(), n))

		var seqReadings, sharedReadings []meter.Reading
		var poolSeq, poolShared int64
		for rep := 0; rep < runs; rep++ {
			// Pool touches come from the process-wide metrics registry —
			// storage_pool_reads_total ticks once per Access, so snapshot
			// deltas equal the old PoolStats hits+misses arithmetic.
			p0 := obsv.PoolReads.Load()
			t0 := clock.Now()
			workload.RunSequential(sys.Engine, clock, queries)
			seqReadings = append(seqReadings, meter.Reading{
				Energy: trace.Energy(t0, clock.Now()), Time: clock.Now().Sub(t0)})
			p1 := obsv.PoolReads.Load()
			poolSeq = p1 - p0

			qed := core.NewQED(sys, 2, mqo.OrChain)
			qed.SharedScan = enabled
			t1 := clock.Now()
			qed.RunBatch(queries)
			sharedReadings = append(sharedReadings, meter.Reading{
				Energy: trace.Energy(t1, clock.Now()), Time: clock.Now().Sub(t1)})
			poolShared = obsv.PoolReads.Load() - p1
		}
		seq := meter.Reduce(seqReadings)
		shared := meter.Reduce(sharedReadings)

		res.Points = append(res.Points, SharedScanPoint{
			N:              n,
			SeqTime:        seq.Time,
			SharedTime:     shared.Time,
			SeqEnergy:      seq.Energy,
			SharedEnergy:   shared.Energy,
			SeqPerQuery:    energy.PerQuery(seq.Energy, n),
			SharedPerQuery: energy.PerQuery(shared.Energy, n),
			PoolSeq:        poolSeq,
			PoolShared:     poolShared,
			EnergyRatio:    float64(shared.Energy) / float64(seq.Energy),
			TimeRatio:      float64(shared.Time) / float64(seq.Time),
		})
	}
	return res
}

func (r SharedScanResult) String() string {
	var b strings.Builder
	mode := "on"
	if !r.Enabled {
		mode = "off (control)"
	}
	fmt.Fprintf(&b, "Shared scans: non-mergeable band selections, sharing %s (%s)\n", mode, r.Config)
	fmt.Fprintf(&b, "  %-4s %12s %12s %12s %12s %12s %12s %10s %10s %8s\n",
		"N", "seq time", "shared time", "seq J", "shared J", "seq J/q", "shared J/q",
		"pool seq", "pool shrd", "ΔJ")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-4d %12v %12v %12v %12v %12v %12v %10d %10d %+7.1f%%\n",
			p.N, p.SeqTime, p.SharedTime, p.SeqEnergy, p.SharedEnergy,
			p.SeqPerQuery, p.SharedPerQuery, p.PoolSeq, p.PoolShared,
			(p.EnergyRatio-1)*100)
	}
	b.WriteString("  (charging rules: buffer-pool/disk reads and page streaming once per\n")
	b.WriteString("   pass; per-tuple CPU and result path per consumer — so the joules\n")
	b.WriteString("   delta grows with N while answers stay bit-identical)\n")
	return b.String()
}
