package experiments

import (
	"strings"

	"ecodb/internal/hw/system"
)

// Table1Paper holds the paper's published wall readings (watts) for each
// build stage of its Table 1.
var Table1Paper = []float64{9.2, 20.1, 49.7, 54.0, 55.7, 69.3}

// Table1Result is the reproduced system power breakdown.
type Table1Result struct {
	Stages []system.BreakdownStage
}

// Table1 reproduces the paper's Table 1: wall power measured as components
// are installed one at a time, with no disk or OS present.
func Table1() Table1Result {
	return Table1Result{Stages: system.PowerBreakdown()}
}

// Comparisons returns paper-vs-measured rows.
func (r Table1Result) Comparisons() []Comparison {
	out := make([]Comparison, len(r.Stages))
	for i, s := range r.Stages {
		paper := 0.0
		if i < len(Table1Paper) {
			paper = Table1Paper[i]
		}
		out[i] = Comparison{Metric: s.Label, Paper: paper, Measured: float64(s.WallW), Unit: "W"}
	}
	return out
}

func (r Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table 1: System Power Breakdown (wall watts per build stage)\n")
	b.WriteString(system.FormatBreakdown(r.Stages))
	b.WriteString("\nPaper vs measured:\n")
	renderComparisons(&b, r.Comparisons())
	return b.String()
}
