package experiments

import (
	"fmt"
	"strings"

	"ecodb/internal/energy"
	"ecodb/internal/sim"
	"ecodb/internal/workload"
)

// WarmColdRun is one of the two §3.5 runs.
type WarmColdRun struct {
	Mode       string
	Time       sim.Duration
	CPUEnergy  energy.Joules
	DiskEnergy energy.Joules
}

// WarmColdResult reproduces the paper's §3.5 study: the Q5 workload on the
// commercial DBMS with a warm buffer pool versus immediately after a
// reboot.
type WarmColdResult struct {
	Config Config
	Cold   WarmColdRun
	Warm   WarmColdRun
}

// WarmCold runs the cold-then-warm comparison. The cold run streams every
// page from the fragmented tablespace; the warm run's only disk traffic is
// the engine's background activity.
func WarmCold(cfg Config) WarmColdResult {
	sys, queries := newCommercialSystem(cfg)
	clock := sys.Machine.Clock

	run := func(mode string) WarmColdRun {
		if mode == "cold" {
			sys.Engine.ColdStart()
		} else {
			sys.Engine.WarmAll()
		}
		t0 := clock.Now()
		workload.RunSequential(sys.Engine, clock, queries)
		t1 := clock.Now()
		return WarmColdRun{
			Mode:       mode,
			Time:       t1.Sub(t0),
			CPUEnergy:  sys.Sampler.Measure(sys.Machine.CPU.Trace(), t0, t1),
			DiskEnergy: sys.Machine.Disk.Energy(t0, t1),
		}
	}
	// Cold first (as after the paper's reboot), then warm.
	cold := run("cold")
	warm := run("warm")
	return WarmColdResult{Config: cfg, Cold: cold, Warm: warm}
}

// Comparisons returns the paper's §3.5 numbers against the measured ones.
func (r WarmColdResult) Comparisons() []Comparison {
	return []Comparison{
		{Metric: "warm workload time", Paper: 48.5, Measured: r.Warm.Time.Seconds(), Unit: "s"},
		{Metric: "warm CPU energy", Paper: 1228.7, Measured: float64(r.Warm.CPUEnergy), Unit: "J"},
		{Metric: "warm disk energy", Paper: 214.7, Measured: float64(r.Warm.DiskEnergy), Unit: "J"},
		{Metric: "cold workload time", Paper: 156, Measured: r.Cold.Time.Seconds(), Unit: "s"},
		{Metric: "cold CPU energy", Paper: 2146.0, Measured: float64(r.Cold.CPUEnergy), Unit: "J"},
		{Metric: "cold disk energy", Paper: 1135.4, Measured: float64(r.Cold.DiskEnergy), Unit: "J"},
	}
}

func (r WarmColdResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§3.5 warm vs cold (%s)\n", r.Config)
	for _, run := range []WarmColdRun{r.Warm, r.Cold} {
		ratio := float64(run.CPUEnergy) / float64(run.DiskEnergy)
		fmt.Fprintf(&b, "  %-5s T=%10v cpu=%9v disk=%9v cpu:disk=%.1f\n",
			run.Mode, run.Time, run.CPUEnergy, run.DiskEnergy, ratio)
	}
	fmt.Fprintf(&b, "  cold/warm slowdown: %.2f× (paper: \"about three times longer\")\n",
		float64(r.Cold.Time)/float64(r.Warm.Time))
	b.WriteString("\nPaper vs measured:\n")
	renderComparisons(&b, r.Comparisons())
	return b.String()
}
