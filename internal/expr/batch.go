package expr

// DefaultBatchCapacity is the default number of rows one execution batch
// targets. It is large enough to amortize per-batch bookkeeping (cost
// flushes, virtual dispatch into operators) over many tuples while keeping
// a batch of typical TPC-H rows within cache-friendly bounds.
const DefaultBatchCapacity = 1024

// Batch is a reusable chunk of rows flowing between operators in the
// vectorized executor. The containing slice is owned by the producing
// operator and recycled across Next calls; the Row values themselves are
// immutable and may be retained by consumers.
type Batch struct {
	Rows []Row
}

// NewBatch returns an empty batch with the given row capacity;
// non-positive capacities select DefaultBatchCapacity.
func NewBatch(capacity int) *Batch {
	if capacity <= 0 {
		capacity = DefaultBatchCapacity
	}
	return &Batch{Rows: make([]Row, 0, capacity)}
}

// Len returns the number of rows in the batch.
func (b *Batch) Len() int { return len(b.Rows) }

// Reset empties the batch, keeping its capacity.
func (b *Batch) Reset() { b.Rows = b.Rows[:0] }

// Append adds a row.
func (b *Batch) Append(r Row) { b.Rows = append(b.Rows, r) }

// EvalBatch evaluates e over every row, appending one value per row to dst
// and returning the extended slice. Cycle accounting is identical to
// row-at-a-time Eval; the accumulated cost is simply drained once per batch
// by the caller instead of once per row.
func EvalBatch(e Expr, rows []Row, dst []Value, cost *Cost) []Value {
	for _, r := range rows {
		dst = append(dst, e.Eval(r, cost))
	}
	return dst
}

// FilterBatch appends the rows satisfying pred to out. The common
// single-column predicate shapes (col ⋈ const, col BETWEEN, col IN hash-set)
// run in specialized loops that hoist the column index and constant out of
// the per-row interpreter walk; everything else falls back to Eval. Charged
// cycles are identical to evaluating pred row by row.
func FilterBatch(pred Expr, in []Row, out *Batch, cost *Cost) {
	switch p := pred.(type) {
	case Cmp:
		if col, ok := p.L.(Col); ok {
			if c, ok := p.R.(Const); ok {
				filterCmpColConst(p.Op, col.Idx, c.V, in, out, cost)
				return
			}
		}
	case Between:
		if col, ok := p.E.(Col); ok {
			filterBetweenCol(col.Idx, p.Lo, p.Hi, in, out, cost)
			return
		}
	case *InHash:
		if col, ok := p.E.(Col); ok {
			filterInHashCol(col.Idx, p.Set, in, out, cost)
			return
		}
	}
	for _, r := range in {
		if pred.Eval(r, cost).Truthy() {
			out.Append(r)
		}
	}
}

// filterCmpColConst is the vectorized loop for Cmp{Col, Const}, charging
// exactly what Cmp.Eval charges per row.
func filterCmpColConst(op CmpOp, idx int, k Value, in []Row, out *Batch, cost *Cost) {
	var cycles float64
	for _, r := range in {
		v := r[idx]
		cycles += CyclesColRef + CyclesConst
		if v.IsNull() || k.IsNull() {
			cycles += CyclesCompare
			continue
		}
		if v.Kind == KindString {
			cycles += CyclesStringCmp
		} else {
			cycles += CyclesCompare
		}
		rel := Compare(v, k)
		var keep bool
		switch op {
		case EQ:
			keep = rel == 0
		case NE:
			keep = rel != 0
		case LT:
			keep = rel < 0
		case LE:
			keep = rel <= 0
		case GT:
			keep = rel > 0
		case GE:
			keep = rel >= 0
		}
		if keep {
			out.Append(r)
		}
	}
	cost.Add(cycles)
}

// filterBetweenCol is the vectorized loop for Between{Col}, the TPC-H
// date-range shape.
func filterBetweenCol(idx int, lo, hi Value, in []Row, out *Batch, cost *Cost) {
	var cycles float64
	for _, r := range in {
		v := r[idx]
		cycles += CyclesColRef + 2*CyclesCompare
		if v.IsNull() {
			continue
		}
		if Compare(v, lo) >= 0 && Compare(v, hi) < 0 {
			out.Append(r)
		}
	}
	cost.Add(cycles)
}

// filterInHashCol is the vectorized loop for InHash{Col}, the merged-QED
// hash-set membership shape.
func filterInHashCol(idx int, set map[Value]struct{}, in []Row, out *Batch, cost *Cost) {
	var cycles float64
	for _, r := range in {
		cycles += CyclesColRef + CyclesHashProbe
		if _, ok := set[r[idx]]; ok {
			out.Append(r)
		}
	}
	cost.Add(cycles)
}
