package expr

import "sync/atomic"

// DefaultBatchCapacity is the default number of rows one execution batch
// targets. It is large enough to amortize per-batch bookkeeping (cost
// flushes, virtual dispatch into operators) over many tuples while keeping
// a batch of typical TPC-H rows within cache-friendly bounds.
const DefaultBatchCapacity = 1024

// Batch is a chunk of tuples flowing between operators in the vectorized
// executor, laid out column-major: Cols holds N physical rows as one
// ColVec per column, and Sel — when non-nil — is a selection vector of
// physical row indices, in ascending order, naming the rows that are
// logically present. Filters select by writing Sel instead of copying
// rows; downstream operators iterate logical rows via Len/RowIdx.
//
// A batch handed out by an operator's Next is valid only until the
// following Next call and is read-only to consumers: Cols may alias
// storage-owned page vectors, so consumers must never mutate or Reset a
// batch they did not build. Values gathered out of a batch are immutable
// and may be retained.
type Batch struct {
	Cols []ColVec
	Sel  []int32
	N    int
}

// NewBatch returns an empty owned batch with width columns.
func NewBatch(width int) *Batch {
	return &Batch{Cols: make([]ColVec, width)}
}

// Len returns the number of logical rows: the selection's length when one
// is present, the physical row count otherwise.
func (b *Batch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.N
}

// RowIdx maps logical row li to its physical index in Cols.
func (b *Batch) RowIdx(li int) int {
	if b.Sel != nil {
		return int(b.Sel[li])
	}
	return li
}

// Width returns the column count.
func (b *Batch) Width() int { return len(b.Cols) }

// Reset empties an owned batch, keeping column capacity. It must not be
// called on view batches whose Cols alias another owner's vectors.
func (b *Batch) Reset() {
	for i := range b.Cols {
		b.Cols[i].Reset()
	}
	b.Sel = nil
	b.N = 0
}

// Alias turns b into a zero-copy view of src's physical rows with the
// given selection: Cols shares src's vectors, so b must never be mutated
// while the view is live.
func (b *Batch) Alias(src *Batch, sel []int32) {
	b.Cols = src.Cols
	b.N = src.N
	b.Sel = sel
}

// AppendRow appends one tuple to an owned batch.
func (b *Batch) AppendRow(r Row) {
	for i := range b.Cols {
		b.Cols[i].Append(r[i])
	}
	b.N++
}

// AppendBatch appends the first limit logical rows of src to an owned
// batch, columnar-wise.
func (b *Batch) AppendBatch(src *Batch, limit int) {
	if src.Sel == nil && limit == src.N && b.N == 0 {
		for c := range b.Cols {
			b.Cols[c].AppendFrom(&src.Cols[c], nil)
		}
		b.N = src.N
		return
	}
	for li := 0; li < limit; li++ {
		i := src.RowIdx(li)
		for c := range b.Cols {
			b.Cols[c].Append(src.Cols[c].Get(i))
		}
		b.N++
	}
}

// gatherInto fills dst with physical row i's values. dst must have one
// slot per column; it is returned for convenience.
func (b *Batch) gatherInto(dst Row, i int) Row {
	for c := range b.Cols {
		dst[c] = b.Cols[c].Get(i)
	}
	return dst
}

// Row materializes logical row li into dst (grown as needed) and returns
// it.
func (b *Batch) Row(li int, dst Row) Row {
	if cap(dst) < len(b.Cols) {
		dst = make(Row, len(b.Cols))
	}
	dst = dst[:len(b.Cols)]
	return b.gatherInto(dst, b.RowIdx(li))
}

// AppendRowsTo materializes every logical row into dst and returns the
// extended slice — the re-rowification the engine performs at the client
// edge. All rows share one fresh backing allocation; they are independent
// of the batch and may be retained.
func (b *Batch) AppendRowsTo(dst []Row) []Row {
	n, w := b.Len(), len(b.Cols)
	backing := make([]Value, n*w)
	for li := 0; li < n; li++ {
		row := backing[li*w : (li+1)*w : (li+1)*w]
		b.gatherInto(row, b.RowIdx(li))
		dst = append(dst, row)
	}
	return dst
}

// Rows materializes every logical row with fresh backing.
func (b *Batch) Rows() []Row { return b.AppendRowsTo(nil) }

// RowBytes estimates the storage footprint of logical row li, matching
// Row.Bytes on the materialized tuple.
func (b *Batch) RowBytes(li int) int64 {
	i := b.RowIdx(li)
	var n int64 = 4 // header
	for c := range b.Cols {
		n += b.Cols[c].Get(i).Bytes()
	}
	return n
}

// rowAtATime disables the columnar fast paths, forcing FilterBatch and
// EvalBatch through the per-row gather + interpreted-Eval fallback — the
// row-at-a-time execution model over the same storage. Charged cycles are
// identical either way (the fast paths charge exactly what Eval charges),
// so toggling changes real wall-clock only; the `ecodb columnar` ablation
// uses it as its row-major control arm.
var rowAtATime atomic.Bool

// SetRowAtATime toggles the row-at-a-time fallback. Toggle only while no
// queries are executing.
func SetRowAtATime(on bool) { rowAtATime.Store(on) }

// RowAtATime reports whether the columnar fast paths are disabled.
func RowAtATime() bool { return rowAtATime.Load() }

// EvalBatch evaluates e over every logical row of in, writing one value
// per row into dst (which is Reset first). Plain column references copy
// the source vector payload instead of walking the interpreter per row,
// and literals replicate the constant; cycle accounting is identical to
// row-at-a-time Eval.
func EvalBatch(e Expr, in *Batch, dst *ColVec, cost *Cost) {
	dst.Reset()
	if !rowAtATime.Load() {
		switch e := e.(type) {
		case Col:
			cost.Add(float64(in.Len()) * CyclesColRef)
			dst.AppendFrom(&in.Cols[e.Idx], in.Sel)
			return
		case Const:
			cost.Add(float64(in.Len()) * CyclesConst)
			for li, n := 0, in.Len(); li < n; li++ {
				dst.Append(e.V)
			}
			return
		}
	}
	scratch := make(Row, len(in.Cols))
	if in.Sel == nil {
		for i := 0; i < in.N; i++ {
			dst.Append(e.Eval(in.gatherInto(scratch, i), cost))
		}
	} else {
		for _, i := range in.Sel {
			dst.Append(e.Eval(in.gatherInto(scratch, int(i)), cost))
		}
	}
}

// FilterBatch evaluates pred over every logical row of in and returns the
// surviving physical indices appended to sel[:0] — a selection vector the
// caller threads back into a batch, so filtering never copies rows. The
// common single-column predicate shapes (col ⋈ const, col BETWEEN, col IN
// hash-set) run in tight loops over the contiguous typed payload slices;
// everything else gathers a scratch row and falls back to Eval. Charged
// cycles are identical to evaluating pred row by row.
//
// The returned selection is always non-nil: an empty selection means "no
// rows", whereas a nil Batch.Sel means "all rows".
func FilterBatch(pred Expr, in *Batch, sel []int32, cost *Cost) []int32 {
	if sel == nil {
		sel = make([]int32, 0, 16)
	} else {
		sel = sel[:0]
	}
	if !rowAtATime.Load() {
		switch p := pred.(type) {
		case Cmp:
			if col, ok := p.L.(Col); ok {
				if c, ok := p.R.(Const); ok {
					return filterCmpColConst(p.Op, col.Idx, c.V, in, sel, cost)
				}
			}
		case Between:
			if col, ok := p.E.(Col); ok {
				return filterBetweenCol(col.Idx, p.Lo, p.Hi, in, sel, cost)
			}
		case *InHash:
			if col, ok := p.E.(Col); ok {
				return filterInHashCol(col.Idx, p.Set, in, sel, cost)
			}
		}
	}
	return filterGeneric(pred, in, sel, cost)
}

// filterGeneric is the fallback: gather each logical row and interpret the
// predicate — exactly the work a row-at-a-time engine does per tuple.
func filterGeneric(pred Expr, in *Batch, sel []int32, cost *Cost) []int32 {
	scratch := make(Row, len(in.Cols))
	if in.Sel == nil {
		for i := 0; i < in.N; i++ {
			if pred.Eval(in.gatherInto(scratch, i), cost).Truthy() {
				sel = append(sel, int32(i))
			}
		}
		return sel
	}
	for _, i := range in.Sel {
		if pred.Eval(in.gatherInto(scratch, int(i)), cost).Truthy() {
			sel = append(sel, int32(i))
		}
	}
	return sel
}

// numericKind reports whether k orders numerically under Compare — the
// single definition of the numeric class, shared by Compare and the dense
// filter fast paths so the two can never diverge.
func numericKind(k Kind) bool {
	return k == KindInt || k == KindFloat || k == KindDate || k == KindBool
}

// cmpKeep maps a Compare result through a comparison operator.
func cmpKeep(op CmpOp, rel int) bool {
	switch op {
	case EQ:
		return rel == 0
	case NE:
		return rel != 0
	case LT:
		return rel < 0
	case LE:
		return rel <= 0
	case GT:
		return rel > 0
	case GE:
		return rel >= 0
	}
	return false
}

// filterCmpColConst is the vectorized loop for Cmp{Col, Const}, charging
// exactly what Cmp.Eval charges per row. Dense homogeneous vectors run the
// typed payload loops; NULLs, input selections, heterogeneous vectors, and
// incomparable kinds take the per-element slow path.
func filterCmpColConst(op CmpOp, idx int, k Value, in *Batch, sel []int32, cost *Cost) []int32 {
	vec := &in.Cols[idx]
	n := in.Len()
	if n == 0 {
		return sel
	}
	dense := in.Sel == nil && vec.Any == nil && !vec.HasNulls() && !k.IsNull() &&
		((vec.Kind == KindString && k.Kind == KindString) ||
			(numericKind(vec.Kind) && numericKind(k.Kind)))
	if !dense {
		var cycles float64
		for li := 0; li < n; li++ {
			i := in.RowIdx(li)
			v := vec.Get(i)
			cycles += CyclesColRef + CyclesConst
			if v.IsNull() || k.IsNull() {
				cycles += CyclesCompare
				continue
			}
			if v.Kind == KindString {
				cycles += CyclesStringCmp
			} else {
				cycles += CyclesCompare
			}
			if cmpKeep(op, Compare(v, k)) {
				sel = append(sel, int32(i))
			}
		}
		cost.Add(cycles)
		return sel
	}
	if vec.Kind == KindString {
		cost.Add(float64(n) * (CyclesColRef + CyclesConst + CyclesStringCmp))
		if vec.Dict != nil {
			return selCmpCodes(op, vec.Codes, vec.Dict, k.S, sel)
		}
		return selCmpStrings(op, vec.S, k.S, sel)
	}
	cost.Add(float64(n) * (CyclesColRef + CyclesConst + CyclesCompare))
	if vec.Kind == KindFloat {
		return selCmpFloats(op, vec.F, k.AsFloat(), sel)
	}
	return selCmpInts(op, vec.I, k.AsFloat(), sel)
}

// selCmpInts selects the int/date/bool payload elements standing in the
// given relation to k. Comparisons go through float64 exactly as
// Compare does, so ordering (including 2⁵³-scale rounding) is identical.
func selCmpInts(op CmpOp, vals []int64, k float64, sel []int32) []int32 {
	switch op {
	case EQ:
		for i, v := range vals {
			if x := float64(v); !(x < k) && !(x > k) {
				sel = append(sel, int32(i))
			}
		}
	case NE:
		for i, v := range vals {
			if x := float64(v); x < k || x > k {
				sel = append(sel, int32(i))
			}
		}
	case LT:
		for i, v := range vals {
			if float64(v) < k {
				sel = append(sel, int32(i))
			}
		}
	case LE:
		for i, v := range vals {
			if !(float64(v) > k) {
				sel = append(sel, int32(i))
			}
		}
	case GT:
		for i, v := range vals {
			if float64(v) > k {
				sel = append(sel, int32(i))
			}
		}
	case GE:
		for i, v := range vals {
			if !(float64(v) < k) {
				sel = append(sel, int32(i))
			}
		}
	}
	return sel
}

// selCmpFloats is selCmpInts over the float payload.
func selCmpFloats(op CmpOp, vals []float64, k float64, sel []int32) []int32 {
	switch op {
	case EQ:
		for i, v := range vals {
			if !(v < k) && !(v > k) {
				sel = append(sel, int32(i))
			}
		}
	case NE:
		for i, v := range vals {
			if v < k || v > k {
				sel = append(sel, int32(i))
			}
		}
	case LT:
		for i, v := range vals {
			if v < k {
				sel = append(sel, int32(i))
			}
		}
	case LE:
		for i, v := range vals {
			if !(v > k) {
				sel = append(sel, int32(i))
			}
		}
	case GT:
		for i, v := range vals {
			if v > k {
				sel = append(sel, int32(i))
			}
		}
	case GE:
		for i, v := range vals {
			if !(v < k) {
				sel = append(sel, int32(i))
			}
		}
	}
	return sel
}

// selCmpStrings is selCmpInts over the string payload.
func selCmpStrings(op CmpOp, vals []string, k string, sel []int32) []int32 {
	switch op {
	case EQ:
		for i, v := range vals {
			if v == k {
				sel = append(sel, int32(i))
			}
		}
	case NE:
		for i, v := range vals {
			if v != k {
				sel = append(sel, int32(i))
			}
		}
	case LT:
		for i, v := range vals {
			if v < k {
				sel = append(sel, int32(i))
			}
		}
	case LE:
		for i, v := range vals {
			if v <= k {
				sel = append(sel, int32(i))
			}
		}
	case GT:
		for i, v := range vals {
			if v > k {
				sel = append(sel, int32(i))
			}
		}
	case GE:
		for i, v := range vals {
			if v >= k {
				sel = append(sel, int32(i))
			}
		}
	}
	return sel
}

// selCmpCodes is selCmpStrings over a dictionary-encoded payload: the
// constant maps to a code (equality) or a code bound (ordering — legal
// because the dictionary is sorted, so code order is string order), and the
// loop compares int32 codes instead of strings. Selections are identical to
// selCmpStrings on the decoded values; charging is done by the caller.
func selCmpCodes(op CmpOp, codes []int32, d *Dict, k string, sel []int32) []int32 {
	switch op {
	case EQ:
		c, ok := d.Code(k)
		if !ok {
			return sel
		}
		for i, v := range codes {
			if v == c {
				sel = append(sel, int32(i))
			}
		}
	case NE:
		c, ok := d.Code(k)
		if !ok {
			for i := range codes {
				sel = append(sel, int32(i))
			}
			return sel
		}
		for i, v := range codes {
			if v != c {
				sel = append(sel, int32(i))
			}
		}
	case LT:
		bound := d.LowerBound(k)
		for i, v := range codes {
			if v < bound {
				sel = append(sel, int32(i))
			}
		}
	case LE:
		bound := d.UpperBound(k)
		for i, v := range codes {
			if v < bound {
				sel = append(sel, int32(i))
			}
		}
	case GT:
		bound := d.UpperBound(k)
		for i, v := range codes {
			if v >= bound {
				sel = append(sel, int32(i))
			}
		}
	case GE:
		bound := d.LowerBound(k)
		for i, v := range codes {
			if v >= bound {
				sel = append(sel, int32(i))
			}
		}
	}
	return sel
}

// filterBetweenCol is the vectorized loop for Between{Col}, the TPC-H
// date-range shape: lo <= v < hi.
func filterBetweenCol(idx int, lo, hi Value, in *Batch, sel []int32, cost *Cost) []int32 {
	vec := &in.Cols[idx]
	n := in.Len()
	if n == 0 {
		return sel
	}
	dense := in.Sel == nil && vec.Any == nil && !vec.HasNulls() &&
		((vec.Kind == KindString && lo.Kind == KindString && hi.Kind == KindString) ||
			(numericKind(vec.Kind) && numericKind(lo.Kind) && numericKind(hi.Kind)))
	if !dense {
		var cycles float64
		for li := 0; li < n; li++ {
			i := in.RowIdx(li)
			v := vec.Get(i)
			cycles += CyclesColRef + 2*CyclesCompare
			if v.IsNull() {
				continue
			}
			if Compare(v, lo) >= 0 && Compare(v, hi) < 0 {
				sel = append(sel, int32(i))
			}
		}
		cost.Add(cycles)
		return sel
	}
	cost.Add(float64(n) * (CyclesColRef + 2*CyclesCompare))
	if vec.Kind == KindString {
		if vec.Dict != nil {
			loc, hic := vec.Dict.LowerBound(lo.S), vec.Dict.LowerBound(hi.S)
			for i, v := range vec.Codes {
				if v >= loc && v < hic {
					sel = append(sel, int32(i))
				}
			}
			return sel
		}
		los, his := lo.S, hi.S
		for i, v := range vec.S {
			if !(v < los) && v < his {
				sel = append(sel, int32(i))
			}
		}
		return sel
	}
	lof, hif := lo.AsFloat(), hi.AsFloat()
	if vec.Kind == KindFloat {
		for i, v := range vec.F {
			if !(v < lof) && v < hif {
				sel = append(sel, int32(i))
			}
		}
		return sel
	}
	for i, v := range vec.I {
		if x := float64(v); !(x < lof) && x < hif {
			sel = append(sel, int32(i))
		}
	}
	return sel
}

// filterInHashCol is the vectorized loop for InHash{Col}, the merged-QED
// hash-set membership shape. The probe itself dominates, so one loop over
// canonical element values serves every vector representation.
func filterInHashCol(idx int, set map[Value]struct{}, in *Batch, sel []int32, cost *Cost) []int32 {
	vec := &in.Cols[idx]
	n := in.Len()
	cost.Add(float64(n) * (CyclesColRef + CyclesHashProbe))
	if vec.Dict != nil && in.Sel == nil {
		// Probe the set once per dictionary word, then test codes against
		// the resulting bitmap. Membership is Go map equality on canonical
		// Values, so a NULL set element matches NULL rows.
		d := vec.Dict
		keep := make([]bool, d.Len())
		for c := range keep {
			_, keep[c] = set[Value{Kind: KindString, S: d.words[c]}]
		}
		_, nullIn := set[Value{}]
		for i, c := range vec.Codes {
			if vec.Nulls != nil && vec.Nulls[i] {
				if nullIn {
					sel = append(sel, int32(i))
				}
				continue
			}
			if keep[c] {
				sel = append(sel, int32(i))
			}
		}
		return sel
	}
	if in.Sel == nil {
		for i := 0; i < n; i++ {
			if _, ok := set[vec.Get(i)]; ok {
				sel = append(sel, int32(i))
			}
		}
		return sel
	}
	for _, i := range in.Sel {
		if _, ok := set[vec.Get(int(i))]; ok {
			sel = append(sel, int32(i))
		}
	}
	return sel
}
