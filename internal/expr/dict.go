package expr

import (
	"sort"
	"sync/atomic"
)

// Dict is an order-preserving string dictionary: the distinct words of a
// column sorted ascending, so code order equals string order. That ordering
// is what lets range predicates over a dictionary-encoded column compile to
// integer code-range tests — `v < k` becomes `code < LowerBound(k)` — while
// equality becomes a single code comparison. Dictionaries are immutable
// once built and shared by every page vector of the column.
type Dict struct {
	words []string
	index map[string]int32
}

// NewDict builds a dictionary from the given words, sorting and
// deduplicating them.
func NewDict(words []string) *Dict {
	sorted := append([]string(nil), words...)
	sort.Strings(sorted)
	uniq := sorted[:0]
	for i, w := range sorted {
		if i == 0 || w != sorted[i-1] {
			uniq = append(uniq, w)
		}
	}
	d := &Dict{words: uniq, index: make(map[string]int32, len(uniq))}
	for i, w := range uniq {
		d.index[w] = int32(i)
	}
	return d
}

// Len returns the number of distinct words.
func (d *Dict) Len() int { return len(d.words) }

// Word returns the word for code c.
func (d *Dict) Word(c int32) string { return d.words[c] }

// Code returns the code of s, or false when s is not in the dictionary.
func (d *Dict) Code(s string) (int32, bool) {
	c, ok := d.index[s]
	return c, ok
}

// LowerBound returns the first code whose word is >= s (possibly Len()).
func (d *Dict) LowerBound(s string) int32 {
	return int32(sort.SearchStrings(d.words, s))
}

// UpperBound returns the first code whose word is > s (possibly Len()).
func (d *Dict) UpperBound(s string) int32 {
	return int32(sort.Search(len(d.words), func(i int) bool { return d.words[i] > s }))
}

// EncodeDict switches a dense string vector to the dictionary
// representation against d: the S payload is dropped and Codes holds one
// code per element (zero under NULLs). It reports false — leaving the
// vector untouched — when the vector is not a plain string column or some
// word is missing from d. Logical content is unchanged: Get returns the
// same canonical Values either way.
func (v *ColVec) EncodeDict(d *Dict) bool {
	if v.Any != nil || v.Dict != nil || v.Kind != KindString {
		return false
	}
	codes := make([]int32, v.n)
	for i, s := range v.S {
		if v.Nulls != nil && v.Nulls[i] {
			continue
		}
		c, ok := d.Code(s)
		if !ok {
			return false
		}
		codes[i] = c
	}
	v.Codes = codes
	v.Dict = d
	v.S = nil
	return true
}

// undict materializes a dictionary vector back to the dense string
// representation — the escape hatch Append takes before mutating, so the
// append-side invariants never meet codes.
func (v *ColVec) undict() {
	s := make([]string, v.n, v.n+8)
	for i := range s {
		if v.Nulls == nil || !v.Nulls[i] {
			s[i] = v.Dict.words[v.Codes[i]]
		}
	}
	v.S = s
	v.Dict = nil
	v.Codes = nil
}

// dictStrings gates dictionary encoding of generated string columns.
// Default off: existing golden workloads pin charges over dense pages, and
// encoding is a storage-build-time choice, not a per-query one.
var dictStrings atomic.Bool

// SetDictStrings toggles dictionary encoding of string columns at table
// generation time. Toggle only while no tables are being built.
func SetDictStrings(on bool) { dictStrings.Store(on) }

// DictStrings reports whether generated string columns are
// dictionary-encoded.
func DictStrings() bool { return dictStrings.Load() }
