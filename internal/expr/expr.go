package expr

import (
	"fmt"
	"strings"
)

// Per-node evaluation costs in CPU cycles, reflecting an interpreted
// expression evaluator of the paper's era (MySQL 5.1's Item tree or a
// commercial engine's expression interpreter): virtual dispatch plus the
// arithmetic itself.
const (
	CyclesColRef    = 3  // slot lookup
	CyclesConst     = 1  //
	CyclesCompare   = 8  // dispatch + numeric compare
	CyclesStringCmp = 14 // dispatch + short-string compare
	CyclesArith     = 7  // dispatch + flop
	CyclesLogic     = 4  // and/or/not step
	CyclesHashProbe = 18 // hash + bucket probe for set membership
)

// Cost accumulates the CPU cycles charged by expression evaluation. The
// executor drains it into the simulated CPU at page granularity.
type Cost struct {
	Cycles float64
}

// Add charges c cycles.
func (c *Cost) Add(cycles float64) {
	if c != nil {
		c.Cycles += cycles
	}
}

// Drain returns the accumulated cycles and resets the meter.
func (c *Cost) Drain() float64 {
	v := c.Cycles
	c.Cycles = 0
	return v
}

// Expr is a typed expression over a row.
type Expr interface {
	// Eval computes the expression on row, charging cycles to cost.
	// cost may be nil when the caller does not meter (tests, planning).
	Eval(row Row, cost *Cost) Value
	String() string
}

// Col references a column by position; Name is for display only.
type Col struct {
	Idx  int
	Name string
}

// Eval implements Expr.
func (c Col) Eval(row Row, cost *Cost) Value {
	cost.Add(CyclesColRef)
	return row[c.Idx]
}

func (c Col) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("$%d", c.Idx)
}

// Const is a literal.
type Const struct {
	V Value
}

// Eval implements Expr.
func (c Const) Eval(_ Row, cost *Cost) Value {
	cost.Add(CyclesConst)
	return c.V
}

func (c Const) String() string {
	if c.V.Kind == KindString {
		return "'" + c.V.S + "'"
	}
	return c.V.String()
}

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (o CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[o]
}

// Cmp compares two sub-expressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eval implements Expr.
func (c Cmp) Eval(row Row, cost *Cost) Value {
	l := c.L.Eval(row, cost)
	r := c.R.Eval(row, cost)
	if l.IsNull() || r.IsNull() {
		cost.Add(CyclesCompare)
		return Bool(false)
	}
	if l.Kind == KindString {
		cost.Add(CyclesStringCmp)
	} else {
		cost.Add(CyclesCompare)
	}
	rel := Compare(l, r)
	switch c.Op {
	case EQ:
		return Bool(rel == 0)
	case NE:
		return Bool(rel != 0)
	case LT:
		return Bool(rel < 0)
	case LE:
		return Bool(rel <= 0)
	case GT:
		return Bool(rel > 0)
	case GE:
		return Bool(rel >= 0)
	default:
		panic(fmt.Sprintf("expr: unknown CmpOp %d", int(c.Op)))
	}
}

func (c Cmp) String() string {
	return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R)
}

// Between tests lo <= e < hi, the shape of TPC-H date-range predicates.
type Between struct {
	E      Expr
	Lo, Hi Value // inclusive lower, exclusive upper
}

// Eval implements Expr.
func (b Between) Eval(row Row, cost *Cost) Value {
	v := b.E.Eval(row, cost)
	cost.Add(2 * CyclesCompare)
	if v.IsNull() {
		return Bool(false)
	}
	return Bool(Compare(v, b.Lo) >= 0 && Compare(v, b.Hi) < 0)
}

func (b Between) String() string {
	return fmt.Sprintf("(%s in [%s, %s))", b.E, b.Lo, b.Hi)
}

// And is a short-circuit conjunction.
type And struct {
	Terms []Expr
}

// Eval implements Expr.
func (a And) Eval(row Row, cost *Cost) Value {
	for _, t := range a.Terms {
		cost.Add(CyclesLogic)
		if !t.Eval(row, cost).Truthy() {
			return Bool(false)
		}
	}
	return Bool(true)
}

func (a And) String() string { return joinExprs(a.Terms, " AND ") }

// Or is a short-circuit disjunction evaluated left to right — the linear
// OR-chain a 2008-era engine runs for QED's merged predicates, whose cost
// grows with the number of disjuncts.
type Or struct {
	Terms []Expr
}

// Eval implements Expr.
func (o Or) Eval(row Row, cost *Cost) Value {
	for _, t := range o.Terms {
		cost.Add(CyclesLogic)
		if t.Eval(row, cost).Truthy() {
			return Bool(true)
		}
	}
	return Bool(false)
}

func (o Or) String() string { return joinExprs(o.Terms, " OR ") }

// Not negates a boolean expression.
type Not struct {
	E Expr
}

// Eval implements Expr.
func (n Not) Eval(row Row, cost *Cost) Value {
	cost.Add(CyclesLogic)
	return Bool(!n.E.Eval(row, cost).Truthy())
}

func (n Not) String() string { return fmt.Sprintf("NOT %s", n.E) }

// InHash tests membership of an expression in a constant set using a hash
// table — the plan shape a smarter optimizer produces for a merged QED
// disjunction over one column.
type InHash struct {
	E   Expr
	Set map[Value]struct{}
	// Desc is used for display (the set itself may be large).
	Desc string
}

// NewInHash builds a hash-set membership test over constant values.
func NewInHash(e Expr, vals []Value) *InHash {
	set := make(map[Value]struct{}, len(vals))
	for _, v := range vals {
		set[v] = struct{}{}
	}
	return &InHash{E: e, Set: set, Desc: fmt.Sprintf("IN<%d values>", len(vals))}
}

// Eval implements Expr.
func (i *InHash) Eval(row Row, cost *Cost) Value {
	v := i.E.Eval(row, cost)
	cost.Add(CyclesHashProbe)
	_, ok := i.Set[v]
	return Bool(ok)
}

func (i *InHash) String() string { return fmt.Sprintf("(%s %s)", i.E, i.Desc) }

// ArithOp is an arithmetic operator.
type ArithOp int

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

func (o ArithOp) String() string { return [...]string{"+", "-", "*", "/"}[o] }

// Arith computes a binary arithmetic expression in float64, the precision
// TPC-H revenue aggregation needs.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Eval implements Expr.
func (a Arith) Eval(row Row, cost *Cost) Value {
	l := a.L.Eval(row, cost)
	r := a.R.Eval(row, cost)
	cost.Add(CyclesArith)
	if l.IsNull() || r.IsNull() {
		return Null()
	}
	x, y := l.AsFloat(), r.AsFloat()
	switch a.Op {
	case Add:
		return Float(x + y)
	case Sub:
		return Float(x - y)
	case Mul:
		return Float(x * y)
	case Div:
		if y == 0 {
			return Null()
		}
		return Float(x / y)
	default:
		panic(fmt.Sprintf("expr: unknown ArithOp %d", int(a.Op)))
	}
}

func (a Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}

func joinExprs(terms []Expr, sep string) string {
	parts := make([]string, len(terms))
	for i, t := range terms {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}
