package expr

import (
	"testing"
	"testing/quick"
)

func TestValueConstructors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null(), KindNull},
		{Bool(true), KindBool},
		{Int(42), KindInt},
		{Float(3.14), KindFloat},
		{String("x"), KindString},
		{Date(100), KindDate},
	}
	for _, c := range cases {
		if c.v.Kind != c.kind {
			t.Errorf("constructor produced kind %v, want %v", c.v.Kind, c.kind)
		}
	}
}

func TestDateRoundTrip(t *testing.T) {
	v := MustParseDate("1994-01-01")
	if got := v.DateString(); got != "1994-01-01" {
		t.Fatalf("DateString = %q", got)
	}
	if MustParseDate("1970-01-01").I != 0 {
		t.Fatal("epoch should be day 0")
	}
	if MustParseDate("1970-01-02").I != 1 {
		t.Fatal("epoch+1 should be day 1")
	}
}

func TestMustParseDatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad date did not panic")
		}
	}()
	MustParseDate("not-a-date")
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{String("a"), String("b"), -1},
		{String("b"), String("b"), 0},
		{Null(), Int(1), -1},
		{Int(1), Null(), 1},
		{Null(), Null(), 0},
		{Date(10), Date(20), -1},
		{Bool(false), Bool(true), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareIncomparablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("comparing string with int did not panic")
		}
	}()
	Compare(String("a"), Int(1))
}

func TestTruthy(t *testing.T) {
	if !Bool(true).Truthy() || Bool(false).Truthy() {
		t.Fatal("Bool truthiness wrong")
	}
	if Null().Truthy() || Int(1).Truthy() {
		t.Fatal("non-bool values must not be truthy")
	}
}

func TestRowBytes(t *testing.T) {
	r := Row{Int(1), String("hello"), Null()}
	// 4 header + 8 + (5+2) + 1 = 20.
	if got := r.Bytes(); got != 20 {
		t.Fatalf("Row.Bytes = %d, want 20", got)
	}
}

func TestRowClone(t *testing.T) {
	r := Row{Int(1), Int(2)}
	c := r.Clone()
	c[0] = Int(99)
	if r[0].I != 1 {
		t.Fatal("Clone did not copy")
	}
}

func testRow() Row {
	return Row{Int(10), Float(2.5), String("ASIA"), Date(100)}
}

func TestColEval(t *testing.T) {
	var cost Cost
	v := Col{Idx: 2, Name: "r_name"}.Eval(testRow(), &cost)
	if v.S != "ASIA" {
		t.Fatalf("Col eval = %v", v)
	}
	if cost.Cycles != CyclesColRef {
		t.Fatalf("cost = %v, want %v", cost.Cycles, CyclesColRef)
	}
}

func TestCmpOperators(t *testing.T) {
	row := testRow()
	col := Col{Idx: 0}
	cases := []struct {
		op   CmpOp
		rhs  int64
		want bool
	}{
		{EQ, 10, true}, {EQ, 11, false},
		{NE, 11, true}, {NE, 10, false},
		{LT, 11, true}, {LT, 10, false},
		{LE, 10, true}, {LE, 9, false},
		{GT, 9, true}, {GT, 10, false},
		{GE, 10, true}, {GE, 11, false},
	}
	for _, c := range cases {
		got := Cmp{Op: c.op, L: col, R: Const{V: Int(c.rhs)}}.Eval(row, nil)
		if got.Truthy() != c.want {
			t.Errorf("10 %v %d = %v, want %v", c.op, c.rhs, got.Truthy(), c.want)
		}
	}
}

func TestCmpNullIsFalse(t *testing.T) {
	got := Cmp{Op: EQ, L: Const{V: Null()}, R: Const{V: Int(1)}}.Eval(nil, nil)
	if got.Truthy() {
		t.Fatal("NULL = 1 should be false")
	}
}

func TestBetweenHalfOpen(t *testing.T) {
	col := Col{Idx: 3}
	b := Between{E: col, Lo: Date(100), Hi: Date(200)}
	if !b.Eval(testRow(), nil).Truthy() {
		t.Fatal("lower bound should be inclusive")
	}
	b2 := Between{E: col, Lo: Date(50), Hi: Date(100)}
	if b2.Eval(testRow(), nil).Truthy() {
		t.Fatal("upper bound should be exclusive")
	}
}

func TestAndOrShortCircuitCost(t *testing.T) {
	row := testRow()
	tr := Cmp{Op: EQ, L: Col{Idx: 0}, R: Const{V: Int(10)}}
	fa := Cmp{Op: EQ, L: Col{Idx: 0}, R: Const{V: Int(11)}}

	var cheap, dear Cost
	// Or stops at the first true term.
	if !(Or{Terms: []Expr{tr, fa, fa}}).Eval(row, &cheap).Truthy() {
		t.Fatal("or should be true")
	}
	if !(Or{Terms: []Expr{fa, fa, tr}}).Eval(row, &dear).Truthy() {
		t.Fatal("or should be true")
	}
	if cheap.Cycles >= dear.Cycles {
		t.Fatalf("short-circuit OR should cost less when the match is first: %v vs %v",
			cheap.Cycles, dear.Cycles)
	}

	// And stops at the first false term.
	var a1, a2 Cost
	And{Terms: []Expr{fa, tr, tr}}.Eval(row, &a1)
	And{Terms: []Expr{tr, tr, fa}}.Eval(row, &a2)
	if a1.Cycles >= a2.Cycles {
		t.Fatal("short-circuit AND should cost less when the false term is first")
	}
}

// The QED-relevant property: evaluating an N-term OR over a non-matching
// row costs Θ(N), while the hash-set variant is O(1).
func TestOrChainLinearInTermsHashSetConstant(t *testing.T) {
	row := Row{Int(999)}
	col := Col{Idx: 0}
	mkOr := func(n int) Or {
		terms := make([]Expr, n)
		for i := range terms {
			terms[i] = Cmp{Op: EQ, L: col, R: Const{V: Int(int64(i))}}
		}
		return Or{Terms: terms}
	}
	var c10, c50 Cost
	mkOr(10).Eval(row, &c10)
	mkOr(50).Eval(row, &c50)
	if ratio := c50.Cycles / c10.Cycles; ratio < 4.5 || ratio > 5.5 {
		t.Fatalf("OR cost ratio 50/10 terms = %v, want ≈5", ratio)
	}

	mkIn := func(n int) *InHash {
		vals := make([]Value, n)
		for i := range vals {
			vals[i] = Int(int64(i))
		}
		return NewInHash(col, vals)
	}
	var h10, h50 Cost
	mkIn(10).Eval(row, &h10)
	mkIn(50).Eval(row, &h50)
	if h10.Cycles != h50.Cycles {
		t.Fatalf("hash-set cost should not depend on set size: %v vs %v", h10.Cycles, h50.Cycles)
	}
}

func TestInHashMembership(t *testing.T) {
	in := NewInHash(Col{Idx: 0}, []Value{Int(1), Int(5), Int(9)})
	if !in.Eval(Row{Int(5)}, nil).Truthy() {
		t.Fatal("5 should be in the set")
	}
	if in.Eval(Row{Int(4)}, nil).Truthy() {
		t.Fatal("4 should not be in the set")
	}
}

func TestArith(t *testing.T) {
	row := Row{Float(10), Float(4)}
	cases := []struct {
		op   ArithOp
		want float64
	}{
		{Add, 14}, {Sub, 6}, {Mul, 40}, {Div, 2.5},
	}
	for _, c := range cases {
		got := Arith{Op: c.op, L: Col{Idx: 0}, R: Col{Idx: 1}}.Eval(row, nil)
		if got.F != c.want {
			t.Errorf("10 %v 4 = %v, want %v", c.op, got.F, c.want)
		}
	}
}

func TestArithDivByZeroIsNull(t *testing.T) {
	got := Arith{Op: Div, L: Const{V: Float(1)}, R: Const{V: Float(0)}}.Eval(nil, nil)
	if !got.IsNull() {
		t.Fatalf("1/0 = %v, want NULL", got)
	}
}

func TestArithNullPropagates(t *testing.T) {
	got := Arith{Op: Add, L: Const{V: Null()}, R: Const{V: Float(1)}}.Eval(nil, nil)
	if !got.IsNull() {
		t.Fatal("NULL + 1 should be NULL")
	}
}

func TestNot(t *testing.T) {
	if (Not{E: Const{V: Bool(true)}}).Eval(nil, nil).Truthy() {
		t.Fatal("NOT true should be false")
	}
	if !(Not{E: Const{V: Bool(false)}}).Eval(nil, nil).Truthy() {
		t.Fatal("NOT false should be true")
	}
}

func TestCostDrain(t *testing.T) {
	var c Cost
	c.Add(5)
	c.Add(7)
	if got := c.Drain(); got != 12 {
		t.Fatalf("Drain = %v", got)
	}
	if c.Cycles != 0 {
		t.Fatal("Drain did not reset")
	}
}

func TestNilCostSafe(t *testing.T) {
	var c *Cost
	c.Add(5) // must not panic
}

func TestStringRendering(t *testing.T) {
	e := Cmp{Op: EQ, L: Col{Idx: 0, Name: "l_quantity"}, R: Const{V: Int(7)}}
	if got := e.String(); got != "(l_quantity = 7)" {
		t.Fatalf("String = %q", got)
	}
	o := Or{Terms: []Expr{e, e}}
	if got := o.String(); got != "((l_quantity = 7) OR (l_quantity = 7))" {
		t.Fatalf("Or.String = %q", got)
	}
}

// Property: Compare is antisymmetric and reflexive over ints and floats.
func TestComparePropertyAntisymmetric(t *testing.T) {
	f := func(a, b int32) bool {
		va, vb := Int(int64(a)), Int(int64(b))
		return Compare(va, vb) == -Compare(vb, va) && Compare(va, va) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a Between over [lo, hi) agrees with the conjunction of two
// comparisons.
func TestBetweenEquivalence(t *testing.T) {
	f := func(v, lo, hi int16) bool {
		row := Row{Int(int64(v))}
		b := Between{E: Col{Idx: 0}, Lo: Int(int64(lo)), Hi: Int(int64(hi))}.Eval(row, nil).Truthy()
		c := v >= lo && v < hi
		return b == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
