package expr

import (
	"math/rand"
	"testing"
)

// Property test for the columnar rewrite: every FilterBatch fast path
// (filterCmpColConst, filterBetweenCol, filterInHashCol) and the generic
// Eval fallback must agree EXACTLY — selected physical indices and charged
// cycles — with row-at-a-time evaluation of the same predicate, across
// random batches covering dense, NULL-bearing, heterogeneous (mixed-kind)
// and selection-carrying inputs.

// randValue draws a value from the given class: numeric classes mix
// Int/Float/Date/Bool kinds (driving vectors heterogeneous), string
// classes draw short strings; both classes produce NULLs.
func randValue(rng *rand.Rand, numeric bool, nullFrac float64) Value {
	if rng.Float64() < nullFrac {
		return Null()
	}
	if numeric {
		switch rng.Intn(4) {
		case 0:
			return Int(int64(rng.Intn(20) - 10))
		case 1:
			return Float(float64(rng.Intn(40))/4 - 5)
		case 2:
			return Date(int64(rng.Intn(30) + 9000))
		default:
			return Bool(rng.Intn(2) == 0)
		}
	}
	letters := []string{"", "a", "ab", "abc", "b", "ba", "zz", "\x00x"}
	return String(letters[rng.Intn(len(letters))])
}

// randHomValue draws a non-NULL value of one fixed kind, for dense
// homogeneous vectors that exercise the typed payload loops.
func randHomValue(rng *rand.Rand, kind Kind) Value {
	switch kind {
	case KindInt:
		return Int(int64(rng.Intn(20) - 10))
	case KindFloat:
		return Float(float64(rng.Intn(40))/4 - 5)
	case KindDate:
		return Date(int64(rng.Intn(30) + 9000))
	case KindBool:
		return Bool(rng.Intn(2) == 0)
	default:
		letters := []string{"", "a", "ab", "abc", "b", "ba", "zz"}
		return String(letters[rng.Intn(len(letters))])
	}
}

// randBatch builds a random one-column batch plus its row-major mirror.
// Shapes rotate through dense-homogeneous, NULL-bearing, heterogeneous,
// and half rotate again with an input selection vector.
func randBatch(rng *rand.Rand, numeric bool) *Batch {
	b := NewBatch(1)
	n := rng.Intn(60) + 1
	shape := rng.Intn(3)
	homKind := KindString
	if numeric {
		homKind = []Kind{KindInt, KindFloat, KindDate, KindBool}[rng.Intn(4)]
	}
	for i := 0; i < n; i++ {
		var v Value
		switch shape {
		case 0: // dense homogeneous: the typed fast-path loops
			v = randHomValue(rng, homKind)
		case 1: // homogeneous with NULLs
			if rng.Float64() < 0.3 {
				v = Null()
			} else {
				v = randHomValue(rng, homKind)
			}
		default: // heterogeneous (numeric mixes kinds) with NULLs
			v = randValue(rng, numeric, 0.2)
		}
		b.AppendRow(Row{v})
	}
	if rng.Intn(2) == 0 { // carry an input selection: every other row
		sel := make([]int32, 0, n)
		for i := 0; i < n; i += 2 {
			sel = append(sel, int32(i))
		}
		b.Sel = sel
	}
	return b
}

// randPred draws one of the three fast-path predicate shapes over column 0,
// matched to the batch's value class so Compare never sees incomparable
// kinds.
func randPred(rng *rand.Rand, numeric bool) Expr {
	col := Col{Idx: 0, Name: "c"}
	konst := func() Value {
		// NULL constants sometimes, to cover the all-dropped path.
		return randValue(rng, numeric, 0.1)
	}
	switch rng.Intn(3) {
	case 0:
		op := CmpOp(rng.Intn(6))
		return Cmp{Op: op, L: col, R: Const{V: konst()}}
	case 1:
		return Between{E: col, Lo: konst(), Hi: konst()}
	default:
		vals := make([]Value, rng.Intn(5)+1)
		for i := range vals {
			vals[i] = randValue(rng, numeric, 0.1)
		}
		return NewInHash(col, vals)
	}
}

func TestFilterBatchMatchesRowAtATimeExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(0xc01a))
	for caseNo := 0; caseNo < 2000; caseNo++ {
		numeric := rng.Intn(2) == 0
		in := randBatch(rng, numeric)
		pred := randPred(rng, numeric)

		// Row-at-a-time reference: materialize the logical rows and
		// interpret the predicate per row, exactly as the pre-columnar
		// engine did.
		var refCost Cost
		rows := in.Rows()
		var want []int32
		for li, r := range rows {
			if pred.Eval(r, &refCost).Truthy() {
				want = append(want, int32(in.RowIdx(li)))
			}
		}

		// Columnar fast path.
		var fastCost Cost
		got := FilterBatch(pred, in, nil, &fastCost)

		// Generic fallback over the same columnar batch.
		var genCost Cost
		gen := filterGeneric(pred, in, nil, &genCost)

		if len(got) != len(want) || len(gen) != len(want) {
			t.Fatalf("case %d (%s): fast selected %d, generic %d, row reference %d",
				caseNo, pred, len(got), len(gen), len(want))
		}
		for i := range want {
			if got[i] != want[i] || gen[i] != want[i] {
				t.Fatalf("case %d (%s): selection %d differs: fast %d generic %d want %d",
					caseNo, pred, i, got[i], gen[i], want[i])
			}
		}
		if fastCost.Cycles != refCost.Cycles {
			t.Fatalf("case %d (%s): fast path charged %v cycles, row reference %v",
				caseNo, pred, fastCost.Cycles, refCost.Cycles)
		}
		if genCost.Cycles != refCost.Cycles {
			t.Fatalf("case %d (%s): generic fallback charged %v cycles, row reference %v",
				caseNo, pred, genCost.Cycles, refCost.Cycles)
		}
	}
}

// TestDictFilterMatchesDenseExactly mirrors every random string batch into
// a dictionary-encoded copy and requires FilterBatch to agree EXACTLY —
// selected physical indices and charged cycles — between the two physical
// representations and the row-at-a-time reference. Predicate constants are
// drawn independently of the column, so out-of-dictionary words (the
// code-miss paths of selCmpCodes) occur constantly.
func TestDictFilterMatchesDenseExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(0xd1c7))
	encoded := 0
	for caseNo := 0; caseNo < 2000; caseNo++ {
		in := randBatch(rng, false)
		pred := randPred(rng, false)

		// Rebuild the same logical column, then switch it to codes.
		din := NewBatch(1)
		for i := 0; i < in.Cols[0].Len(); i++ {
			din.AppendRow(Row{in.Cols[0].Get(i)})
		}
		if in.Sel != nil {
			din.Sel = append([]int32(nil), in.Sel...)
		}
		vec := &din.Cols[0]
		var words []string
		for i := 0; i < vec.Len(); i++ {
			if v := vec.Get(i); v.Kind == KindString {
				words = append(words, v.S)
			}
		}
		if !vec.EncodeDict(NewDict(words)) {
			continue // all-NULL column: no string payload to encode
		}
		encoded++

		var refCost Cost
		var want []int32
		for li, r := range in.Rows() {
			if pred.Eval(r, &refCost).Truthy() {
				want = append(want, int32(in.RowIdx(li)))
			}
		}

		var denseCost, dictCost Cost
		dense := FilterBatch(pred, in, nil, &denseCost)
		dict := FilterBatch(pred, din, nil, &dictCost)

		if len(dense) != len(want) || len(dict) != len(want) {
			t.Fatalf("case %d (%s): dense selected %d, dict %d, row reference %d",
				caseNo, pred, len(dense), len(dict), len(want))
		}
		for i := range want {
			if dense[i] != want[i] || dict[i] != want[i] {
				t.Fatalf("case %d (%s): selection %d differs: dense %d dict %d want %d",
					caseNo, pred, i, dense[i], dict[i], want[i])
			}
		}
		if denseCost.Cycles != refCost.Cycles || dictCost.Cycles != refCost.Cycles {
			t.Fatalf("case %d (%s): dense charged %v, dict %v, row reference %v — encoding must be charging-neutral",
				caseNo, pred, denseCost.Cycles, dictCost.Cycles, refCost.Cycles)
		}
	}
	if encoded < 1500 {
		t.Fatalf("only %d/2000 cases dictionary-encoded — generator shape drifted", encoded)
	}
}

// TestZonePruneSoundness builds each random page's zone maps exactly as
// Heap.Append does (folding Update over every value) and requires that
// whenever ZonePrunes claims a predicate holds nowhere on the page, the
// full filter over the page indeed selects nothing. Covers the NULL-heavy,
// heterogeneous, and composite AND/OR shapes.
func TestZonePruneSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(0x20e5))
	pruned := 0
	for caseNo := 0; caseNo < 2000; caseNo++ {
		numeric := rng.Intn(2) == 0
		in := randBatch(rng, numeric)
		var pred Expr = randPred(rng, numeric)
		switch rng.Intn(4) {
		case 0:
			pred = And{Terms: []Expr{pred, randPred(rng, numeric)}}
		case 1:
			pred = Or{Terms: []Expr{pred, randPred(rng, numeric)}}
		}
		if !Prunable(pred) {
			t.Fatalf("case %d: generator produced non-prunable predicate %s", caseNo, pred)
		}

		zones := NewZones(1)
		vec := &in.Cols[0]
		for i := 0; i < vec.Len(); i++ {
			zones[0].Update(vec.Get(i))
		}
		if !ZonePrunes(pred, zones) {
			continue
		}
		pruned++

		// Zones summarize the whole page: check against every row.
		in.Sel = nil
		var cost Cost
		if sel := FilterBatch(pred, in, nil, &cost); len(sel) != 0 {
			t.Fatalf("case %d (%s): zone maps pruned a page on which the filter selects %d rows (min=%v max=%v nulls=%v)",
				caseNo, pred, len(sel), zones[0].Min, zones[0].Max, zones[0].HasNulls)
		}
	}
	if pruned < 200 {
		t.Fatalf("only %d/2000 cases pruned — generator no longer exercises ZonePrunes", pruned)
	}
}

func TestEvalBatchColFastPathMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(0xeba1))
	for caseNo := 0; caseNo < 500; caseNo++ {
		numeric := rng.Intn(2) == 0
		in := randBatch(rng, numeric)
		e := Col{Idx: 0, Name: "c"}

		var refCost Cost
		rows := in.Rows()
		want := make([]Value, len(rows))
		for i, r := range rows {
			want[i] = e.Eval(r, &refCost)
		}

		var fastCost Cost
		var dst ColVec
		EvalBatch(e, in, &dst, &fastCost)

		if dst.Len() != len(want) {
			t.Fatalf("case %d: EvalBatch produced %d values, want %d", caseNo, dst.Len(), len(want))
		}
		for i := range want {
			if dst.Get(i) != want[i] {
				t.Fatalf("case %d: value %d = %v, want %v", caseNo, i, dst.Get(i), want[i])
			}
		}
		if fastCost.Cycles != refCost.Cycles {
			t.Fatalf("case %d: Col fast path charged %v cycles, row reference %v",
				caseNo, fastCost.Cycles, refCost.Cycles)
		}
	}
}
