package expr

import (
	"math/rand"
	"testing"
)

// Property test for the columnar rewrite: every FilterBatch fast path
// (filterCmpColConst, filterBetweenCol, filterInHashCol) and the generic
// Eval fallback must agree EXACTLY — selected physical indices and charged
// cycles — with row-at-a-time evaluation of the same predicate, across
// random batches covering dense, NULL-bearing, heterogeneous (mixed-kind)
// and selection-carrying inputs.

// randValue draws a value from the given class: numeric classes mix
// Int/Float/Date/Bool kinds (driving vectors heterogeneous), string
// classes draw short strings; both classes produce NULLs.
func randValue(rng *rand.Rand, numeric bool, nullFrac float64) Value {
	if rng.Float64() < nullFrac {
		return Null()
	}
	if numeric {
		switch rng.Intn(4) {
		case 0:
			return Int(int64(rng.Intn(20) - 10))
		case 1:
			return Float(float64(rng.Intn(40))/4 - 5)
		case 2:
			return Date(int64(rng.Intn(30) + 9000))
		default:
			return Bool(rng.Intn(2) == 0)
		}
	}
	letters := []string{"", "a", "ab", "abc", "b", "ba", "zz", "\x00x"}
	return String(letters[rng.Intn(len(letters))])
}

// randHomValue draws a non-NULL value of one fixed kind, for dense
// homogeneous vectors that exercise the typed payload loops.
func randHomValue(rng *rand.Rand, kind Kind) Value {
	switch kind {
	case KindInt:
		return Int(int64(rng.Intn(20) - 10))
	case KindFloat:
		return Float(float64(rng.Intn(40))/4 - 5)
	case KindDate:
		return Date(int64(rng.Intn(30) + 9000))
	case KindBool:
		return Bool(rng.Intn(2) == 0)
	default:
		letters := []string{"", "a", "ab", "abc", "b", "ba", "zz"}
		return String(letters[rng.Intn(len(letters))])
	}
}

// randBatch builds a random one-column batch plus its row-major mirror.
// Shapes rotate through dense-homogeneous, NULL-bearing, heterogeneous,
// and half rotate again with an input selection vector.
func randBatch(rng *rand.Rand, numeric bool) *Batch {
	b := NewBatch(1)
	n := rng.Intn(60) + 1
	shape := rng.Intn(3)
	homKind := KindString
	if numeric {
		homKind = []Kind{KindInt, KindFloat, KindDate, KindBool}[rng.Intn(4)]
	}
	for i := 0; i < n; i++ {
		var v Value
		switch shape {
		case 0: // dense homogeneous: the typed fast-path loops
			v = randHomValue(rng, homKind)
		case 1: // homogeneous with NULLs
			if rng.Float64() < 0.3 {
				v = Null()
			} else {
				v = randHomValue(rng, homKind)
			}
		default: // heterogeneous (numeric mixes kinds) with NULLs
			v = randValue(rng, numeric, 0.2)
		}
		b.AppendRow(Row{v})
	}
	if rng.Intn(2) == 0 { // carry an input selection: every other row
		sel := make([]int32, 0, n)
		for i := 0; i < n; i += 2 {
			sel = append(sel, int32(i))
		}
		b.Sel = sel
	}
	return b
}

// randPred draws one of the three fast-path predicate shapes over column 0,
// matched to the batch's value class so Compare never sees incomparable
// kinds.
func randPred(rng *rand.Rand, numeric bool) Expr {
	col := Col{Idx: 0, Name: "c"}
	konst := func() Value {
		// NULL constants sometimes, to cover the all-dropped path.
		return randValue(rng, numeric, 0.1)
	}
	switch rng.Intn(3) {
	case 0:
		op := CmpOp(rng.Intn(6))
		return Cmp{Op: op, L: col, R: Const{V: konst()}}
	case 1:
		return Between{E: col, Lo: konst(), Hi: konst()}
	default:
		vals := make([]Value, rng.Intn(5)+1)
		for i := range vals {
			vals[i] = randValue(rng, numeric, 0.1)
		}
		return NewInHash(col, vals)
	}
}

func TestFilterBatchMatchesRowAtATimeExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(0xc01a))
	for caseNo := 0; caseNo < 2000; caseNo++ {
		numeric := rng.Intn(2) == 0
		in := randBatch(rng, numeric)
		pred := randPred(rng, numeric)

		// Row-at-a-time reference: materialize the logical rows and
		// interpret the predicate per row, exactly as the pre-columnar
		// engine did.
		var refCost Cost
		rows := in.Rows()
		var want []int32
		for li, r := range rows {
			if pred.Eval(r, &refCost).Truthy() {
				want = append(want, int32(in.RowIdx(li)))
			}
		}

		// Columnar fast path.
		var fastCost Cost
		got := FilterBatch(pred, in, nil, &fastCost)

		// Generic fallback over the same columnar batch.
		var genCost Cost
		gen := filterGeneric(pred, in, nil, &genCost)

		if len(got) != len(want) || len(gen) != len(want) {
			t.Fatalf("case %d (%s): fast selected %d, generic %d, row reference %d",
				caseNo, pred, len(got), len(gen), len(want))
		}
		for i := range want {
			if got[i] != want[i] || gen[i] != want[i] {
				t.Fatalf("case %d (%s): selection %d differs: fast %d generic %d want %d",
					caseNo, pred, i, got[i], gen[i], want[i])
			}
		}
		if fastCost.Cycles != refCost.Cycles {
			t.Fatalf("case %d (%s): fast path charged %v cycles, row reference %v",
				caseNo, pred, fastCost.Cycles, refCost.Cycles)
		}
		if genCost.Cycles != refCost.Cycles {
			t.Fatalf("case %d (%s): generic fallback charged %v cycles, row reference %v",
				caseNo, pred, genCost.Cycles, refCost.Cycles)
		}
	}
}

func TestEvalBatchColFastPathMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(0xeba1))
	for caseNo := 0; caseNo < 500; caseNo++ {
		numeric := rng.Intn(2) == 0
		in := randBatch(rng, numeric)
		e := Col{Idx: 0, Name: "c"}

		var refCost Cost
		rows := in.Rows()
		want := make([]Value, len(rows))
		for i, r := range rows {
			want[i] = e.Eval(r, &refCost)
		}

		var fastCost Cost
		var dst ColVec
		EvalBatch(e, in, &dst, &fastCost)

		if dst.Len() != len(want) {
			t.Fatalf("case %d: EvalBatch produced %d values, want %d", caseNo, dst.Len(), len(want))
		}
		for i := range want {
			if dst.Get(i) != want[i] {
				t.Fatalf("case %d: value %d = %v, want %v", caseNo, i, dst.Get(i), want[i])
			}
		}
		if fastCost.Cycles != refCost.Cycles {
			t.Fatalf("case %d: Col fast path charged %v cycles, row reference %v",
				caseNo, fastCost.Cycles, refCost.Cycles)
		}
	}
}
