package expr

import (
	"encoding/binary"
	"fmt"
	"math"
)

// AppendGroupKey appends an injective binary encoding of v to dst and
// returns the extended slice. Concatenating the encodings of several values
// yields a key that two value tuples share exactly when they are equal
// tuple-wise: every encoding starts with the kind tag and is either fixed
// width or length-prefixed, so no value can masquerade as the boundary
// between two others. This is the group-key encoding of hash aggregation —
// the display-string keys it replaced collapsed ("x\x00","y") with
// ("x","\x00y") and Int(1) with String("1").
func AppendGroupKey(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.Kind))
	switch v.Kind {
	case KindNull:
		// Kind tag alone: all NULLs belong to one group.
	case KindBool, KindInt, KindDate:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.I))
	case KindFloat:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F))
	case KindString:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(len(v.S)))
		dst = append(dst, v.S...)
	default:
		panic(fmt.Sprintf("expr: cannot encode %v as a group key", v.Kind))
	}
	return dst
}
