package expr

import (
	"encoding/binary"
	"fmt"
	"math"
)

// AppendGroupKey appends an injective binary encoding of v to dst and
// returns the extended slice. Concatenating the encodings of several values
// yields a key that two value tuples share exactly when they are equal
// tuple-wise: every encoding starts with the kind tag and is either fixed
// width or length-prefixed, so no value can masquerade as the boundary
// between two others. This is the group-key encoding of hash aggregation —
// the display-string keys it replaced collapsed ("x\x00","y") with
// ("x","\x00y") and Int(1) with String("1").
func AppendGroupKey(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.Kind))
	switch v.Kind {
	case KindNull:
		// Kind tag alone: all NULLs belong to one group.
	case KindBool, KindInt, KindDate:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.I))
	case KindFloat:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F))
	case KindString:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(len(v.S)))
		dst = append(dst, v.S...)
	default:
		panic(fmt.Sprintf("expr: cannot encode %v as a group key", v.Kind))
	}
	return dst
}

// fixedKeyWidth is the encoded width of every non-string group-key value:
// one kind tag plus the 8-byte payload (NULL is tag-only, width 1).
const fixedKeyWidth = 1 + 8

// GroupKeys builds the injective group-key encodings of a whole batch
// column-wise — the vectorized mirror of calling AppendGroupKey per row.
// Instead of gathering a scratch row per tuple and walking its values, each
// group-by column is encoded in one pass over its contiguous typed payload,
// writing every row's fragment at a precomputed offset. The per-row byte
// strings are identical to the row-at-a-time encoding, so map keys built
// either way collide exactly the same.
//
// The builder owns its buffers and is reusable: Build overwrites the
// previous batch's keys.
type GroupKeys struct {
	buf  []byte
	offs []int32 // len n+1: key i is buf[offs[i]:offs[i+1]]
	cur  []int32 // per-row write cursors during Build
}

// Len returns the number of keys built.
func (g *GroupKeys) Len() int {
	if len(g.offs) == 0 {
		return 0
	}
	return len(g.offs) - 1
}

// Key returns row li's encoded group key. It aliases the builder's buffer
// and is valid until the next Build.
func (g *GroupKeys) Key(li int) []byte { return g.buf[g.offs[li]:g.offs[li+1]] }

// Build encodes the group keys of every logical row of b over the columns
// at positions cols. Pass one sizes each row's key (column-wise over the
// payloads); pass two writes each column's fragments at the running per-row
// cursor, again column-wise.
func (g *GroupKeys) Build(b *Batch, cols []int) {
	n := b.Len()
	g.offs = append(g.offs[:0], 0)
	g.cur = g.cur[:0]
	if n == 0 {
		return
	}

	// Pass 1: per-row encoded sizes, accumulated in cur.
	for i := 0; i < n; i++ {
		g.cur = append(g.cur, 0)
	}
	for _, c := range cols {
		vec := &b.Cols[c]
		switch {
		case vec.Any != nil || vec.Kind == KindString || vec.Kind == KindNull:
			// Variable width (strings), per-element kinds (Any), or
			// tag-only NULL columns: size element by element.
			for li := 0; li < n; li++ {
				g.cur[li] += int32(keyWidth(vec, b.RowIdx(li)))
			}
		case vec.HasNulls():
			for li := 0; li < n; li++ {
				if vec.Nulls[b.RowIdx(li)] {
					g.cur[li]++
				} else {
					g.cur[li] += fixedKeyWidth
				}
			}
		default:
			for li := 0; li < n; li++ {
				g.cur[li] += fixedKeyWidth
			}
		}
	}
	total := int32(0)
	for li := 0; li < n; li++ {
		total += g.cur[li]
		g.offs = append(g.offs, total)
	}
	if cap(g.buf) < int(total) {
		g.buf = make([]byte, total)
	}
	g.buf = g.buf[:total]

	// Pass 2: write each column's fragment at the per-row cursor.
	copy(g.cur, g.offs[:n])
	for _, c := range cols {
		vec := &b.Cols[c]
		dense := b.Sel == nil && vec.Any == nil && !vec.HasNulls()
		switch {
		case dense && (vec.Kind == KindBool || vec.Kind == KindInt || vec.Kind == KindDate):
			for li, v := range vec.I[:n] {
				at := g.cur[li]
				g.buf[at] = byte(vec.Kind)
				binary.LittleEndian.PutUint64(g.buf[at+1:], uint64(v))
				g.cur[li] = at + fixedKeyWidth
			}
		case dense && vec.Kind == KindFloat:
			for li, v := range vec.F[:n] {
				at := g.cur[li]
				g.buf[at] = byte(KindFloat)
				binary.LittleEndian.PutUint64(g.buf[at+1:], math.Float64bits(v))
				g.cur[li] = at + fixedKeyWidth
			}
		case dense && vec.Kind == KindString && vec.Dict != nil:
			for li, c := range vec.Codes[:n] {
				g.cur[li] += int32(putKeyString(g.buf[g.cur[li]:], vec.Dict.words[c]))
			}
		case dense && vec.Kind == KindString:
			for li, s := range vec.S[:n] {
				g.cur[li] += int32(putKeyString(g.buf[g.cur[li]:], s))
			}
		default:
			for li := 0; li < n; li++ {
				g.cur[li] += int32(putKeyValue(g.buf[g.cur[li]:], vec.Get(b.RowIdx(li))))
			}
		}
	}
}

// keyWidth returns the encoded width of element i of vec — exactly the
// number of bytes putKeyValue writes for vec.Get(i).
func keyWidth(vec *ColVec, i int) int {
	if vec.IsNull(i) {
		return 1
	}
	k := vec.Kind
	if vec.Any != nil {
		k = vec.Any[i].Kind
	}
	switch k {
	case KindNull:
		return 1
	case KindString:
		if vec.Any != nil {
			return fixedKeyWidth + len(vec.Any[i].S)
		}
		if vec.Dict != nil {
			return fixedKeyWidth + len(vec.Dict.words[vec.Codes[i]])
		}
		return fixedKeyWidth + len(vec.S[i])
	default:
		return fixedKeyWidth
	}
}

// putKeyString writes the string encoding (tag, length, bytes) into dst and
// returns the width written.
func putKeyString(dst []byte, s string) int {
	dst[0] = byte(KindString)
	binary.LittleEndian.PutUint64(dst[1:], uint64(len(s)))
	return fixedKeyWidth + copy(dst[fixedKeyWidth:], s)
}

// FNV-1a constants for HashValue.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashValue returns a 64-bit hash of v consistent with Go's == on Value —
// the equality the executor's hash tables key on — so values that are equal
// map keys always hash identically. It drives radix partitioning of
// parallel hash-join builds: a key's partition must be a pure function of
// the key. The hash is FNV-1a over the bytes of the injective group-key
// encoding, folded into the state directly (no intermediate buffer — this
// runs once per probe row on partitioned joins), with negative zero
// normalized first (-0.0 == 0.0 under ==, but their float bits differ).
func HashValue(v Value) uint64 {
	h := fnvByte(fnvOffset64, byte(v.Kind))
	switch v.Kind {
	case KindNull:
	case KindBool, KindInt, KindDate:
		h = fnvUint64(h, uint64(v.I))
	case KindFloat:
		f := v.F
		if f == 0 {
			f = 0 // collapse -0.0 onto +0.0
		}
		h = fnvUint64(h, math.Float64bits(f))
	case KindString:
		h = fnvUint64(h, uint64(len(v.S)))
		for i := 0; i < len(v.S); i++ {
			h = fnvByte(h, v.S[i])
		}
	default:
		panic(fmt.Sprintf("expr: cannot hash %v", v.Kind))
	}
	return h
}

// HashVec appends HashValue of every logical element of vec to dst and
// returns the extended slice — the vectorized mirror of hashing per row,
// used by the hash-join probe side. With sel nil all elements hash in one
// typed payload loop (dictionary vectors hash each distinct word once and
// gather through the codes); with a selection the selected elements hash
// via Get. Hashes are bit-identical to HashValue either way.
func HashVec(vec *ColVec, sel []int32, dst []uint64) []uint64 {
	if sel != nil {
		for _, i := range sel {
			dst = append(dst, HashValue(vec.Get(int(i))))
		}
		return dst
	}
	n := vec.Len()
	if vec.Any != nil || vec.Kind == KindNull {
		for i := 0; i < n; i++ {
			dst = append(dst, HashValue(vec.Get(i)))
		}
		return dst
	}
	seed := fnvByte(fnvOffset64, byte(vec.Kind))
	nullHash := fnvByte(fnvOffset64, byte(KindNull))
	switch vec.Kind {
	case KindFloat:
		for i, v := range vec.F[:n] {
			if vec.Nulls != nil && vec.Nulls[i] {
				dst = append(dst, nullHash)
				continue
			}
			if v == 0 {
				v = 0 // collapse -0.0 onto +0.0
			}
			dst = append(dst, fnvUint64(seed, math.Float64bits(v)))
		}
	case KindString:
		if vec.Dict != nil {
			wordHash := make([]uint64, vec.Dict.Len())
			for c, w := range vec.Dict.words {
				wordHash[c] = fnvString(seed, w)
			}
			for i, c := range vec.Codes[:n] {
				if vec.Nulls != nil && vec.Nulls[i] {
					dst = append(dst, nullHash)
					continue
				}
				dst = append(dst, wordHash[c])
			}
			return dst
		}
		for i, s := range vec.S[:n] {
			if vec.Nulls != nil && vec.Nulls[i] {
				dst = append(dst, nullHash)
				continue
			}
			dst = append(dst, fnvString(seed, s))
		}
	default: // Bool, Int, Date
		for i, v := range vec.I[:n] {
			if vec.Nulls != nil && vec.Nulls[i] {
				dst = append(dst, nullHash)
				continue
			}
			dst = append(dst, fnvUint64(seed, uint64(v)))
		}
	}
	return dst
}

// fnvString folds a length-prefixed string into the FNV state, matching
// HashValue's string branch.
func fnvString(h uint64, s string) uint64 {
	h = fnvUint64(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

// fnvUint64 folds an 8-byte little-endian payload into the FNV state, byte
// for byte as AppendGroupKey would have written it.
func fnvUint64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

// putKeyValue writes one value's encoding into dst and returns the width —
// the in-place form of AppendGroupKey for the generic Build path.
func putKeyValue(dst []byte, v Value) int {
	switch v.Kind {
	case KindNull:
		dst[0] = byte(KindNull)
		return 1
	case KindBool, KindInt, KindDate:
		dst[0] = byte(v.Kind)
		binary.LittleEndian.PutUint64(dst[1:], uint64(v.I))
		return fixedKeyWidth
	case KindFloat:
		dst[0] = byte(KindFloat)
		binary.LittleEndian.PutUint64(dst[1:], math.Float64bits(v.F))
		return fixedKeyWidth
	case KindString:
		return putKeyString(dst, v.S)
	default:
		panic(fmt.Sprintf("expr: cannot encode %v as a group key", v.Kind))
	}
}
