package expr

import (
	"testing"
	"testing/quick"
)

func groupKey(vals ...Value) string {
	var buf []byte
	for _, v := range vals {
		buf = AppendGroupKey(buf, v)
	}
	return string(buf)
}

func TestGroupKeyInjective(t *testing.T) {
	distinct := [][]Value{
		{String("x\x00"), String("y")}, // boundary-shifted string pairs
		{String("x"), String("\x00y")},
		{String("x\x00y")}, // different arity, same concatenated bytes
		{Int(1)},           // same display form, different kinds
		{String("1")},
		{Float(1)},
		{Bool(true)},
		{Date(1)},
		{Null()},
		{Int(0)},
		{Float(0)}, // Float(0) vs Int(0) are distinct groups
		{String("")},
		{},
	}
	seen := make(map[string]int)
	for i, tuple := range distinct {
		k := groupKey(tuple...)
		if j, dup := seen[k]; dup {
			t.Fatalf("tuples %v and %v share group key %q", distinct[j], distinct[i], k)
		}
		seen[k] = i
	}
}

func TestGroupKeyEqualTuplesAgree(t *testing.T) {
	a := groupKey(String("abc"), Int(-7), Null(), Float(2.5))
	b := groupKey(String("abc"), Int(-7), Null(), Float(2.5))
	if a != b {
		t.Fatal("equal tuples produced different keys")
	}
}

func TestGroupKeyInjectiveProperty(t *testing.T) {
	// Random pairs of (int,string) tuples: keys collide iff tuples equal.
	f := func(i1 int64, s1 string, i2 int64, s2 string) bool {
		k1 := groupKey(Int(i1), String(s1))
		k2 := groupKey(Int(i2), String(s2))
		return (k1 == k2) == (i1 == i2 && s1 == s2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// keyBatch builds a batch from row-major tuples for GroupKeys tests.
func keyBatch(rows []Row) *Batch {
	if len(rows) == 0 {
		return NewBatch(0)
	}
	b := NewBatch(len(rows[0]))
	for _, r := range rows {
		b.AppendRow(r)
	}
	return b
}

// assertKeysMatchRowPath requires the column-wise builder to reproduce the
// row-at-a-time AppendGroupKey encoding byte for byte on every logical row.
func assertKeysMatchRowPath(t *testing.T, b *Batch, cols []int) {
	t.Helper()
	var g GroupKeys
	g.Build(b, cols)
	if g.Len() != b.Len() {
		t.Fatalf("built %d keys for %d logical rows", g.Len(), b.Len())
	}
	var scratch Row
	var want []byte
	for li := 0; li < b.Len(); li++ {
		scratch = b.Row(li, scratch)
		want = want[:0]
		for _, c := range cols {
			want = AppendGroupKey(want, scratch[c])
		}
		if got := g.Key(li); string(got) != string(want) {
			t.Fatalf("row %d: batch key %x != row key %x", li, got, want)
		}
	}
}

func TestGroupKeysBatchMatchesRowEncoding(t *testing.T) {
	dense := keyBatch([]Row{
		{Int(1), String("a"), Float(1.5), Date(42)},
		{Int(1), String(""), Float(-0.0), Date(0)},
		{Int(-9), String("x\x00y"), Float(2.5), Date(-3)},
		{Int(1 << 40), String("long-ish string value"), Float(0), Date(7)},
	})
	assertKeysMatchRowPath(t, dense, []int{0, 1, 2, 3})
	assertKeysMatchRowPath(t, dense, []int{1})
	assertKeysMatchRowPath(t, dense, []int{3, 0})

	// Selection vectors: keys follow logical rows, not physical ones.
	sel := keyBatch([]Row{
		{Int(10), String("a")}, {Int(11), String("b")},
		{Int(12), String("c")}, {Int(13), String("d")},
	})
	sel.Sel = []int32{1, 3}
	assertKeysMatchRowPath(t, sel, []int{0, 1})

	// NULLs in fixed-width and string columns.
	nulls := keyBatch([]Row{
		{Int(1), Null(), String("s")},
		{Null(), Float(2), Null()},
		{Int(3), Null(), String("")},
	})
	assertKeysMatchRowPath(t, nulls, []int{0, 1, 2})

	// Heterogeneous columns degrade to the Any representation.
	mixed := keyBatch([]Row{
		{Int(1)}, {String("1")}, {Float(1)}, {Null()}, {Bool(true)},
	})
	assertKeysMatchRowPath(t, mixed, []int{0})

	// All-NULL column (vector kind stays KindNull).
	allNull := keyBatch([]Row{{Null(), Int(1)}, {Null(), Int(2)}})
	assertKeysMatchRowPath(t, allNull, []int{0, 1})

	// Empty batch and empty column list.
	assertKeysMatchRowPath(t, keyBatch(nil), nil)
	assertKeysMatchRowPath(t, dense, nil)
}

func TestGroupKeysBuilderIsReusable(t *testing.T) {
	var g GroupKeys
	b1 := keyBatch([]Row{{String("first-long-key")}, {String("second")}})
	g.Build(b1, []int{0})
	k0 := string(g.Key(0))
	b2 := keyBatch([]Row{{Int(5)}})
	g.Build(b2, []int{0})
	if g.Len() != 1 {
		t.Fatalf("rebuild kept %d keys, want 1", g.Len())
	}
	if string(g.Key(0)) == k0 {
		t.Fatal("rebuild returned the previous batch's key")
	}
	if want := string(AppendGroupKey(nil, Int(5))); string(g.Key(0)) != want {
		t.Fatalf("rebuilt key %x, want %x", g.Key(0), want)
	}
}

func TestHashValueConsistentWithMapEquality(t *testing.T) {
	// Values that are equal Go map keys must hash identically; -0.0 and
	// +0.0 are the one bitwise-distinct equal pair.
	if HashValue(Float(0)) != HashValue(Float(negZero())) {
		t.Fatal("-0.0 and +0.0 are equal map keys but hashed differently")
	}
	// Distinct kinds with the same payload should (and here do) separate.
	pairs := [][2]Value{
		{Int(1), Float(1)},
		{Int(1), String("1")},
		{Int(0), Null()},
		{Bool(true), Int(1)},
		{Date(5), Int(5)},
	}
	for _, p := range pairs {
		if HashValue(p[0]) == HashValue(p[1]) {
			t.Fatalf("distinct map keys %v and %v collide", p[0], p[1])
		}
	}
	// The fold-in-place hash must equal FNV-1a over the materialized
	// group-key encoding — the definition it inlines.
	for _, v := range []Value{
		Null(), Bool(true), Int(-7), Int(1 << 40), Float(2.5),
		Date(9000), String(""), String("x\x00y"), String("a longer string"),
	} {
		h := uint64(14695981039346656037)
		for _, b := range AppendGroupKey(nil, v) {
			h = (h ^ uint64(b)) * 1099511628211
		}
		if got := HashValue(v); got != h {
			t.Fatalf("HashValue(%v) = %x, want FNV over encoding %x", v, got, h)
		}
	}
}

func negZero() float64 {
	z := 0.0
	return -z
}
