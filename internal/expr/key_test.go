package expr

import (
	"testing"
	"testing/quick"
)

func groupKey(vals ...Value) string {
	var buf []byte
	for _, v := range vals {
		buf = AppendGroupKey(buf, v)
	}
	return string(buf)
}

func TestGroupKeyInjective(t *testing.T) {
	distinct := [][]Value{
		{String("x\x00"), String("y")}, // boundary-shifted string pairs
		{String("x"), String("\x00y")},
		{String("x\x00y")}, // different arity, same concatenated bytes
		{Int(1)},           // same display form, different kinds
		{String("1")},
		{Float(1)},
		{Bool(true)},
		{Date(1)},
		{Null()},
		{Int(0)},
		{Float(0)}, // Float(0) vs Int(0) are distinct groups
		{String("")},
		{},
	}
	seen := make(map[string]int)
	for i, tuple := range distinct {
		k := groupKey(tuple...)
		if j, dup := seen[k]; dup {
			t.Fatalf("tuples %v and %v share group key %q", distinct[j], distinct[i], k)
		}
		seen[k] = i
	}
}

func TestGroupKeyEqualTuplesAgree(t *testing.T) {
	a := groupKey(String("abc"), Int(-7), Null(), Float(2.5))
	b := groupKey(String("abc"), Int(-7), Null(), Float(2.5))
	if a != b {
		t.Fatal("equal tuples produced different keys")
	}
}

func TestGroupKeyInjectiveProperty(t *testing.T) {
	// Random pairs of (int,string) tuples: keys collide iff tuples equal.
	f := func(i1 int64, s1 string, i2 int64, s2 string) bool {
		k1 := groupKey(Int(i1), String(s1))
		k2 := groupKey(Int(i2), String(s2))
		return (k1 == k2) == (i1 == i2 && s1 == s2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
