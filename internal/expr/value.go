// Package expr provides typed row values and an expression tree with CPU
// cost accounting. Every expression evaluation charges an estimated cycle
// count to a Cost meter; the executor converts those cycles into simulated
// time and energy on the machine's CPU model. This is how "the same query
// plan" costs different energy under different PVC settings while still
// computing real answers over real rows.
package expr

import (
	"fmt"
	"strconv"
	"time"
)

// Kind is a value's type tag.
type Kind uint8

// Value kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindDate // stored as days since 1970-01-01 in I
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindDate:
		return "date"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a compact tagged union; using a struct rather than an interface
// avoids boxing millions of TPC-H column values.
type Value struct {
	Kind Kind
	I    int64 // Int, Date (days since epoch), Bool (0/1)
	F    float64
	S    string
}

// Constructors.

// Null returns the SQL NULL value.
func Null() Value { return Value{Kind: KindNull} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{Kind: KindBool, I: i}
}

// Int returns an integer value.
func Int(v int64) Value { return Value{Kind: KindInt, I: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{Kind: KindFloat, F: v} }

// String returns a string value.
func String(s string) Value { return Value{Kind: KindString, S: s} }

// Date returns a date value from days since 1970-01-01.
func Date(days int64) Value { return Value{Kind: KindDate, I: days} }

// MustParseDate converts "YYYY-MM-DD" to a date value, panicking on
// malformed input (dates in this codebase are compile-time constants).
func MustParseDate(s string) Value {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		panic(fmt.Sprintf("expr: bad date %q: %v", s, err))
	}
	return Date(t.Unix() / 86400)
}

// DateString renders a date value as "YYYY-MM-DD".
func (v Value) DateString() string {
	return time.Unix(v.I*86400, 0).UTC().Format("2006-01-02")
}

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Truthy reports whether a boolean value is true; NULL and non-booleans are
// false (SQL three-valued logic collapsed to two, which suffices for the
// paper's workloads).
func (v Value) Truthy() bool { return v.Kind == KindBool && v.I != 0 }

// AsFloat converts numeric values to float64 for arithmetic and
// aggregation.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt, KindDate, KindBool:
		return float64(v.I)
	case KindFloat:
		return v.F
	default:
		return 0
	}
}

func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindDate:
		return v.DateString()
	default:
		return fmt.Sprintf("Value{%d}", v.Kind)
	}
}

// Compare orders two values of the same kind: -1, 0, or +1. Mixed numeric
// kinds (int vs float) compare numerically. NULL sorts before everything.
// Incomparable kinds panic: schema errors are programming bugs here.
func Compare(a, b Value) int {
	if a.Kind == KindNull || b.Kind == KindNull {
		switch {
		case a.Kind == b.Kind:
			return 0
		case a.Kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	switch {
	case a.Kind == KindString && b.Kind == KindString:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		}
		return 0
	case numericKind(a.Kind) && numericKind(b.Kind):
		x, y := a.AsFloat(), b.AsFloat()
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	default:
		panic(fmt.Sprintf("expr: cannot compare %v with %v", a.Kind, b.Kind))
	}
}

// Equal reports whether two values are equal under Compare semantics.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Bytes estimates the in-page storage footprint of the value, used by the
// buffer pool for page sizing.
func (v Value) Bytes() int64 {
	switch v.Kind {
	case KindString:
		return int64(len(v.S)) + 2
	case KindNull:
		return 1
	default:
		return 8
	}
}

// Row is one tuple.
type Row []Value

// Bytes estimates the tuple's storage footprint.
func (r Row) Bytes() int64 {
	var n int64 = 4 // header
	for _, v := range r {
		n += v.Bytes()
	}
	return n
}

// Clone returns a deep-enough copy (values are immutable; the slice is
// copied).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}
