package expr

// ColVec is one column of an execution batch in columnar layout: a single
// kind tag, the values packed into one contiguous typed payload slice, and
// an optional NULL bitmap. Predicate and projection loops run over the
// payload slices directly — no per-value tag dispatch, no Row indirection —
// which is what makes the columnar executor's inner loops SIMD-shaped.
//
// Representation invariants:
//
//   - Kind is the kind of every non-NULL element; KindNull while the vector
//     is empty or all-NULL. Exactly one payload slice (I for Bool/Int/Date,
//     F for Float, S for String) is maintained at full length once Kind is
//     established; NULL elements hold a zero there.
//   - Nulls is nil when no element is NULL; otherwise it has one entry per
//     element.
//   - Any is the heterogeneous escape hatch: if a column ever mixes value
//     kinds (legal for Values, unheard of for real table data), the vector
//     degrades to a plain []Value and Any becomes authoritative. Fast paths
//     check for it and fall back to generic evaluation.
//   - Dict non-nil marks a dictionary-encoded string vector: Kind is
//     KindString, S is nil, and Codes holds one dictionary code per element
//     (zero under NULLs; Nulls stays authoritative). Reads are transparent —
//     Get decodes through the dictionary — and Append materializes back to
//     dense strings before mutating.
//
// Values read out of a vector are canonical: only the payload field implied
// by the kind is set, exactly as the package constructors build them.
type ColVec struct {
	Kind  Kind
	Nulls []bool
	I     []int64
	F     []float64
	S     []string
	Any   []Value
	Dict  *Dict
	Codes []int32
	n     int
}

// Len returns the number of elements.
func (v *ColVec) Len() int { return v.n }

// Reset empties the vector, keeping payload capacity.
func (v *ColVec) Reset() {
	v.Kind = KindNull
	v.Nulls = nil
	v.I = v.I[:0]
	v.F = v.F[:0]
	v.S = v.S[:0]
	v.Any = nil
	v.Dict = nil
	v.Codes = v.Codes[:0]
	v.n = 0
}

// HasNulls reports whether any element is NULL.
func (v *ColVec) HasNulls() bool { return v.Nulls != nil }

// IsNull reports whether element i is NULL.
func (v *ColVec) IsNull(i int) bool {
	if v.Any != nil {
		return v.Any[i].Kind == KindNull
	}
	return v.Nulls != nil && v.Nulls[i]
}

// Get returns element i as a canonical Value.
func (v *ColVec) Get(i int) Value {
	if v.Any != nil {
		return v.Any[i]
	}
	if v.Nulls != nil && v.Nulls[i] {
		return Value{}
	}
	switch v.Kind {
	case KindNull:
		return Value{}
	case KindFloat:
		return Value{Kind: KindFloat, F: v.F[i]}
	case KindString:
		if v.Dict != nil {
			return Value{Kind: KindString, S: v.Dict.words[v.Codes[i]]}
		}
		return Value{Kind: KindString, S: v.S[i]}
	default:
		return Value{Kind: v.Kind, I: v.I[i]}
	}
}

// payloadAppendZero grows the established payload by one zero element.
func (v *ColVec) payloadAppendZero() {
	switch v.Kind {
	case KindNull:
	case KindFloat:
		v.F = append(v.F, 0)
	case KindString:
		v.S = append(v.S, "")
	default:
		v.I = append(v.I, 0)
	}
}

// degrade switches the vector to the heterogeneous []Value representation.
func (v *ColVec) degrade() {
	any := make([]Value, v.n, v.n+8)
	for i := range any {
		any[i] = v.Get(i)
	}
	v.Any = any
	v.Nulls, v.I, v.F, v.S = nil, nil, nil, nil
	v.Dict, v.Codes = nil, nil
}

// Append adds one value, establishing the vector's kind on the first
// non-NULL element and degrading to the heterogeneous representation if a
// second kind ever appears.
func (v *ColVec) Append(val Value) {
	if v.Dict != nil {
		v.undict()
	}
	if v.Any != nil {
		v.Any = append(v.Any, val)
		v.n++
		return
	}
	if val.Kind == KindNull {
		if v.Nulls == nil {
			v.Nulls = make([]bool, v.n, v.n+8)
		}
		v.Nulls = append(v.Nulls, true)
		v.payloadAppendZero()
		v.n++
		return
	}
	if v.Kind == KindNull {
		// First non-NULL element: establish the kind, backfilling zeros
		// under any leading NULLs.
		v.Kind = val.Kind
		for i := 0; i < v.n; i++ {
			v.payloadAppendZero()
		}
	} else if val.Kind != v.Kind {
		v.degrade()
		v.Any = append(v.Any, val)
		v.n++
		return
	}
	if v.Nulls != nil {
		v.Nulls = append(v.Nulls, false)
	}
	switch v.Kind {
	case KindFloat:
		v.F = append(v.F, val.F)
	case KindString:
		v.S = append(v.S, val.S)
	default:
		v.I = append(v.I, val.I)
	}
	v.n++
}

// AppendFrom appends src's elements — all of them when sel is nil,
// otherwise the elements at the selected physical indices. The common dense
// copy into an empty vector is a bulk payload copy.
func (v *ColVec) AppendFrom(src *ColVec, sel []int32) {
	if sel == nil {
		if v.n == 0 {
			v.Kind = src.Kind
			v.I = append(v.I[:0], src.I...)
			v.F = append(v.F[:0], src.F...)
			v.S = append(v.S[:0], src.S...)
			v.Nulls = nil
			if src.Nulls != nil {
				v.Nulls = append([]bool(nil), src.Nulls...)
			}
			v.Any = nil
			if src.Any != nil {
				v.Any = append([]Value(nil), src.Any...)
			}
			v.Dict = src.Dict
			v.Codes = append(v.Codes[:0], src.Codes...)
			v.n = src.n
			return
		}
		for i := 0; i < src.n; i++ {
			v.Append(src.Get(i))
		}
		return
	}
	for _, i := range sel {
		v.Append(src.Get(int(i)))
	}
}
