package expr

import "sync/atomic"

// Zone is a per-page, per-column zone map entry: the min/max of the
// column's non-NULL values on that page plus null presence. A scan consults
// zones before reading a page; when the pushed-down predicate cannot hold
// anywhere inside [Min, Max], the page is skipped for the price of a
// zone-map check instead of a buffer-pool read. Zones live in expr because
// pruning must reason with exactly the Compare/Eval semantics the filters
// use — a divergence would silently drop rows.
type Zone struct {
	Min, Max Value // Null when the page has no non-NULL values
	HasNulls bool
	Valid    bool // false: column mixes incomparable kinds; never prune on it
}

// NewZones returns a fresh all-valid zone slice for a width-column page.
func NewZones(width int) []Zone {
	z := make([]Zone, width)
	for i := range z {
		z[i].Valid = true
	}
	return z
}

// Update folds one value into the zone entry.
func (z *Zone) Update(v Value) {
	if !z.Valid {
		return
	}
	if v.IsNull() {
		z.HasNulls = true
		return
	}
	if z.Min.IsNull() {
		z.Min, z.Max = v, v
		return
	}
	if !comparableClass(z.Min.Kind, v.Kind) {
		z.Valid = false
		z.Min, z.Max = Null(), Null()
		return
	}
	if Compare(v, z.Min) < 0 {
		z.Min = v
	}
	if Compare(v, z.Max) > 0 {
		z.Max = v
	}
}

// comparableClass reports whether kinds a and b order under Compare —
// both strings or both numeric.
func comparableClass(a, b Kind) bool {
	return (a == KindString && b == KindString) || (numericKind(a) && numericKind(b))
}

// Prunable reports whether pred has a shape zone maps can ever prune on:
// single-column comparisons against constants, ranges, hash-set
// membership, and AND/OR combinations of those. A non-prunable predicate
// makes ZonePrunes trivially false, so scans skip the zone check (and its
// charge) entirely.
func Prunable(pred Expr) bool {
	switch p := pred.(type) {
	case Cmp:
		if _, ok := p.L.(Col); ok {
			_, ok2 := p.R.(Const)
			return ok2
		}
		if _, ok := p.R.(Col); ok {
			_, ok2 := p.L.(Const)
			return ok2
		}
		return false
	case Between:
		_, ok := p.E.(Col)
		return ok
	case *InHash:
		_, ok := p.E.(Col)
		return ok
	case And:
		for _, t := range p.Terms {
			if Prunable(t) {
				return true
			}
		}
		return false
	case Or:
		for _, t := range p.Terms {
			if !Prunable(t) {
				return false
			}
		}
		return len(p.Terms) > 0
	default:
		return false
	}
}

// ZonePrunes reports whether zones prove that pred holds for no row of the
// page — the page can be skipped without changing results. It is
// conservative: false means "must read", never "must not". The rules
// mirror Eval exactly: comparisons and ranges are false on NULL operands,
// and InHash membership is Go map equality (so a NULL set element matches
// NULL rows).
func ZonePrunes(pred Expr, zones []Zone) bool {
	switch p := pred.(type) {
	case Cmp:
		if col, ok := p.L.(Col); ok {
			if c, ok := p.R.(Const); ok {
				return cmpPrunes(p.Op, &zones[col.Idx], c.V)
			}
		}
		if col, ok := p.R.(Col); ok {
			if c, ok := p.L.(Const); ok {
				return cmpPrunes(flipCmpOp(p.Op), &zones[col.Idx], c.V)
			}
		}
		return false
	case Between:
		col, ok := p.E.(Col)
		if !ok {
			return false
		}
		return betweenPrunes(&zones[col.Idx], p.Lo, p.Hi)
	case *InHash:
		col, ok := p.E.(Col)
		if !ok {
			return false
		}
		return inHashPrunes(&zones[col.Idx], p.Set)
	case And:
		for _, t := range p.Terms {
			if ZonePrunes(t, zones) {
				return true
			}
		}
		return false
	case Or:
		for _, t := range p.Terms {
			if !ZonePrunes(t, zones) {
				return false
			}
		}
		return len(p.Terms) > 0
	default:
		return false
	}
}

// flipCmpOp mirrors an operator across its operands: const ⋈ col becomes
// col ⋈' const.
func flipCmpOp(op CmpOp) CmpOp {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	default:
		return op // EQ, NE are symmetric
	}
}

// cmpPrunes decides col ⋈ k against one zone entry.
func cmpPrunes(op CmpOp, z *Zone, k Value) bool {
	if !z.Valid {
		return false
	}
	if k.IsNull() {
		// Cmp.Eval is false whenever an operand is NULL.
		return true
	}
	if z.Min.IsNull() {
		// No non-NULL values on the page; NULL rows never pass a Cmp.
		return true
	}
	if !comparableClass(z.Min.Kind, k.Kind) {
		// Eval would panic on the first row either way; don't mask it.
		return false
	}
	switch op {
	case EQ:
		return Compare(k, z.Min) < 0 || Compare(k, z.Max) > 0
	case NE:
		return Compare(z.Min, z.Max) == 0 && Compare(k, z.Min) == 0
	case LT:
		return Compare(z.Min, k) >= 0
	case LE:
		return Compare(z.Min, k) > 0
	case GT:
		return Compare(z.Max, k) <= 0
	case GE:
		return Compare(z.Max, k) < 0
	default:
		return false
	}
}

// betweenPrunes decides lo <= col < hi against one zone entry.
func betweenPrunes(z *Zone, lo, hi Value) bool {
	if !z.Valid {
		return false
	}
	if hi.IsNull() {
		// Compare(v, NULL) is +1 for non-NULL v, so v < hi never holds.
		return true
	}
	if z.Min.IsNull() {
		return true
	}
	if !comparableClass(z.Min.Kind, hi.Kind) {
		return false
	}
	if Compare(z.Min, hi) >= 0 {
		return true
	}
	if lo.IsNull() {
		// Compare(v, NULL) >= 0 always holds: no lower bound.
		return false
	}
	if !comparableClass(z.Min.Kind, lo.Kind) {
		return false
	}
	return Compare(z.Max, lo) < 0
}

// inHashPrunes decides hash-set membership against one zone entry. Set
// membership is Go map equality on canonical Values, so a NULL element
// (Get yields Value{}) matches NULL rows, and members outside the
// column's comparable class can never match.
func inHashPrunes(z *Zone, set map[Value]struct{}) bool {
	if !z.Valid {
		return false
	}
	for m := range set {
		if m.IsNull() {
			if z.HasNulls {
				return false
			}
			continue
		}
		if z.Min.IsNull() || !comparableClass(z.Min.Kind, m.Kind) {
			continue
		}
		if Compare(m, z.Min) >= 0 && Compare(m, z.Max) <= 0 {
			return false
		}
	}
	return true
}

// zoneMapPruning gates scan-time page pruning. Default off: the existing
// golden workloads pin charges with every page read, and pruning changes
// the charge stream (a zone-check constant instead of a read) even though
// results are bit-identical either way.
var zoneMapPruning atomic.Bool

// SetZoneMapPruning toggles scan-time zone-map page pruning. Toggle only
// while no queries are executing.
func SetZoneMapPruning(on bool) { zoneMapPruning.Store(on) }

// ZoneMapPruning reports whether scans consult zone maps to skip pages.
func ZoneMapPruning() bool { return zoneMapPruning.Load() }
