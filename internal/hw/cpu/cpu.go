package cpu

import (
	"fmt"

	"ecodb/internal/energy"
	"ecodb/internal/sim"
)

// WorkKind classifies a segment of processor work. The kind determines both
// which clock paces the work and the switching-activity factor used for
// dynamic power.
type WorkKind int

const (
	// Compute is core-bound work paced by the CPU clock at full activity.
	Compute WorkKind = iota
	// MemStall is work dominated by DRAM accesses: it is paced by the
	// memory clock (FSB × memory multiplier), and the core draws reduced
	// dynamic power while stalled.
	MemStall
	// Stream is memory-bandwidth-bound data movement (result
	// materialization, large copies): paced by the memory clock with an
	// activity factor between Compute and MemStall.
	Stream
)

func (k WorkKind) String() string {
	switch k {
	case Compute:
		return "compute"
	case MemStall:
		return "memstall"
	case Stream:
		return "stream"
	default:
		return fmt.Sprintf("WorkKind(%d)", int(k))
	}
}

// Config describes a processor. Fields are exported so machine presets
// (EightfiveHundred below) and tests can build variants.
type Config struct {
	Model string
	Cores int

	// FSB is the stock front-side-bus speed.
	FSB MHz
	// PStates are the supported (multiplier, VID) pairs, any order.
	PStates []PState
	// MemMultiplier relates the memory clock to the FSB
	// (DDR3-1333 on a 333 MHz FSB has multiplier 4).
	MemMultiplier float64
	// MemFixedLatencyFrac is the fraction of a memory stall that is
	// DRAM-core latency (row activation, CAS in nanoseconds) and does not
	// shrink or stretch with the bus clock; the remainder is bus transfer
	// time that scales inversely with the memory clock.
	MemFixedLatencyFrac float64
	// MemTimingFallbackK models the board falling back to conservative
	// DRAM timings when the FSB deviates far from stock: the fixed-
	// latency part of memory stalls is multiplied by
	// 1 + K·max(0, underclock − MemTimingFallbackFreeUC).
	MemTimingFallbackK float64
	// MemTimingFallbackFreeUC is the underclocking the board absorbs
	// without relaxing DRAM timings.
	MemTimingFallbackFreeUC float64

	// CdynWPerV2GHz is the per-core dynamic power coefficient C in the
	// paper's CV²F model, in watts per (volt² · GHz) at activity 1.0.
	CdynWPerV2GHz float64
	// LeakWPerV is package leakage power per volt of core voltage.
	LeakWPerV float64
	// UncoreW is the constant package draw independent of p-state.
	UncoreW energy.Watts

	// Activity factors by work kind, plus the idle factors. Idle differs
	// between the stock configuration (Windows high-performance plan:
	// shallow C1 halts, slow SpeedStep downshifts during short I/O waits)
	// and the EPU-tuned configuration (immediate downshift, deep halt).
	ComputeActivity  float64
	MemStallActivity float64
	StreamActivity   float64
	IdleActivityHalt float64 // halted core sharing an active package
	IdleActivityDeep float64 // deep idle under EPU power management

	// DowngradeOffsets maps each Downgrade level to the voltage subtracted
	// from every p-state VID. Index by the Downgrade value.
	DowngradeOffsets [3]energy.Volts
	// DroopPerLoadedCore is the additional voltage droop per busy core
	// under the "light" loadline setting.
	DroopPerLoadedCore energy.Volts
	// VFloor is the minimum effective core voltage; the regulator cannot
	// go below it.
	VFloor energy.Volts
}

// E8500 returns the configuration of the paper's processor, an Intel
// Core 2 Duo E8500: two cores, 333 MHz FSB, 3.16 GHz stock (multiplier
// 9.5), with SpeedStep p-states down to multiplier 6. The power
// coefficients are calibrated so that the stock TPC-H workloads land near
// the paper's measured CPU joules (see internal/experiments calibration
// tests).
func E8500() Config {
	return Config{
		Model: "Intel Core 2 Duo E8500",
		Cores: 2,
		FSB:   333.33,
		PStates: []PState{
			{Multiplier: 6.0, VID: 1.000},
			{Multiplier: 7.0, VID: 1.075},
			{Multiplier: 8.0, VID: 1.150},
			{Multiplier: 9.0, VID: 1.212},
			{Multiplier: 9.5, VID: 1.250},
		},
		MemMultiplier:           4.0,
		MemFixedLatencyFrac:     0.50,
		MemTimingFallbackK:      1.50,
		MemTimingFallbackFreeUC: 0.05,

		CdynWPerV2GHz: 3.80,
		LeakWPerV:     3.00,
		UncoreW:       2.50,

		ComputeActivity:  1.00,
		MemStallActivity: 0.38,
		StreamActivity:   0.55,
		IdleActivityHalt: 0.15,
		IdleActivityDeep: 0.06,

		DowngradeOffsets:   [3]energy.Volts{0, 0.055, 0.100},
		DroopPerLoadedCore: 0.020,
		VFloor:             0.70,
	}
}

// CPU is a simulated processor attached to a virtual clock. It executes
// work segments, advancing the clock and recording its package power draw
// in a trace that sensors sample.
//
// CPU is not safe for concurrent use; one simulated machine runs one query
// at a time, as in the paper's workload model.
type CPU struct {
	cfg     Config
	pstates []PState // ascending multiplier
	clock   *sim.Clock
	trace   energy.Trace

	// Tunables (the 6-Engine controls).
	underclock float64 // FSB reduction fraction, e.g. 0.05
	downgrade  Downgrade
	loadline   Loadline
	capMult    float64 // 0 = no multiplier cap
	deepIdle   bool    // EPU-managed idle (immediate downshift + deep halt)
	stallCap   float64 // EPU low-IPC downshift: multiplier cap during stalls

	parallelism int // cores used by Run work

	// obs, when non-nil, observes every clock-advancing segment. Purely
	// passive: the engine installs a per-query profile collector here to
	// attribute run energy to operators without changing any charge.
	obs Observer

	// Accounting.
	busy         sim.Duration
	idle         sim.Duration
	vIntegral    float64 // ∫V dt over busy time (for Figure 4 monitoring)
	fIntegral    float64 // ∫F dt over busy time, GHz·s
	cyclesDone   float64
	cyclesByKind [3]float64 // indexed by WorkKind
	coreSeconds  float64    // busy seconds weighted by parallelism
}

// Observer watches the CPU's clock-advancing segments: busy runs with the
// power the trace records for them, and idle waits. Observations are
// read-only; implementations must not touch the CPU or the clock.
type Observer interface {
	CPURun(kind WorkKind, cycles float64, start, end sim.Time, busy energy.Watts)
	CPUWait(start, end sim.Time, idle energy.Watts)
}

// SetObserver installs (or, with nil, removes) the segment observer.
func (c *CPU) SetObserver(o Observer) { c.obs = o }

// New returns a CPU with the given configuration attached to clock.
// It panics if the configuration is invalid, since configurations are
// compile-time presets.
func New(cfg Config, clock *sim.Clock) *CPU {
	ps, err := sortPStates(cfg.PStates)
	if err != nil {
		panic(err)
	}
	if cfg.Cores <= 0 {
		panic("cpu: config needs at least one core")
	}
	c := &CPU{cfg: cfg, pstates: ps, clock: clock, parallelism: 1}
	c.trace.Set(clock.Now(), c.power(c.idlePState(), c.idleActivity(), 0))
	return c
}

// Config returns the processor's configuration.
func (c *CPU) Config() Config { return c.cfg }

// Trace returns the package power trace (what the motherboard's EPU sensor
// reads).
func (c *CPU) Trace() *energy.Trace { return &c.trace }

// Clock returns the virtual clock the CPU advances.
func (c *CPU) Clock() *sim.Clock { return c.clock }

// SetUnderclock lowers the FSB by the given fraction (0.05 = 5%).
// Fractions outside [0, 0.5) panic: the paper's motherboard cannot
// underclock by half.
func (c *CPU) SetUnderclock(frac float64) {
	if frac < 0 || frac >= 0.5 {
		panic(fmt.Sprintf("cpu: underclock fraction %v out of range [0,0.5)", frac))
	}
	c.underclock = frac
	c.refreshIdleTrace()
}

// Underclock returns the current FSB reduction fraction.
func (c *CPU) Underclock() float64 { return c.underclock }

// SetDowngrade selects a voltage downgrade preset.
func (c *CPU) SetDowngrade(d Downgrade) {
	if d < DowngradeNone || d > DowngradeMedium {
		panic(fmt.Sprintf("cpu: unknown downgrade %d", int(d)))
	}
	c.downgrade = d
	c.refreshIdleTrace()
}

// Downgrade returns the current voltage downgrade level.
func (c *CPU) Downgrade() Downgrade { return c.downgrade }

// SetLoadline selects the loadline calibration.
func (c *CPU) SetLoadline(l Loadline) {
	c.loadline = l
	c.refreshIdleTrace()
}

// SetDeepIdle enables the EPU-tuned idle behaviour: immediate downshift to
// the lowest p-state and deep halt states during waits. The stock Windows
// Server high-performance configuration leaves this off, so short I/O waits
// burn near-active power at the top p-state.
func (c *CPU) SetDeepIdle(on bool) {
	c.deepIdle = on
	c.refreshIdleTrace()
}

// SetStallMultiplierCap engages the EPU's dynamic low-load downshift: while
// the core executes memory-stalled or streaming work (low IPC), it drops to
// the highest p-state whose multiplier does not exceed mult. Because such
// work is paced by the memory clock, the downshift costs almost no time but
// removes core switching power — the asymmetric mechanism that saves far
// more on stall-heavy workloads (the commercial DBMS) than on CPU-pegged
// ones (MySQL's MEMORY engine). A cap of 0 disables the downshift (stock
// behaviour, EPU software not running).
func (c *CPU) SetStallMultiplierCap(mult float64) {
	if mult != 0 && mult < c.pstates[0].Multiplier {
		panic(fmt.Sprintf("cpu: stall multiplier cap %v below lowest p-state %v", mult, c.pstates[0].Multiplier))
	}
	c.stallCap = mult
}

// stallPState returns the p-state occupied during memory-stalled work.
func (c *CPU) stallPState() PState {
	if c.stallCap == 0 {
		return c.TopPState()
	}
	best := c.pstates[0]
	for _, p := range c.pstates {
		if p.Multiplier <= c.stallCap && p.Multiplier > best.Multiplier {
			best = p
		}
	}
	return best
}

// SetMultiplierCap caps the top usable multiplier (the traditional p-state
// power-management alternative the paper contrasts with underclocking).
// A cap of 0 removes the cap. Caps below the lowest multiplier panic.
func (c *CPU) SetMultiplierCap(mult float64) {
	if mult != 0 && mult < c.pstates[0].Multiplier {
		panic(fmt.Sprintf("cpu: multiplier cap %v below lowest p-state %v", mult, c.pstates[0].Multiplier))
	}
	c.capMult = mult
	c.refreshIdleTrace()
}

// SetParallelism sets how many cores subsequent Run segments use.
// It panics if n is not in [1, Cores].
func (c *CPU) SetParallelism(n int) {
	if n < 1 || n > c.cfg.Cores {
		panic(fmt.Sprintf("cpu: parallelism %d outside [1,%d]", n, c.cfg.Cores))
	}
	c.parallelism = n
}

// Parallelism returns how many cores Run segments currently use.
func (c *CPU) Parallelism() int { return c.parallelism }

// FSB returns the effective front-side-bus speed after underclocking.
func (c *CPU) FSB() MHz { return MHz(float64(c.cfg.FSB) * (1 - c.underclock)) }

// MemFreq returns the effective memory clock: FSB × memory multiplier.
// Underclocking the FSB slows memory proportionally.
func (c *CPU) MemFreq() MHz { return MHz(float64(c.FSB()) * c.cfg.MemMultiplier) }

// TopPState returns the highest usable p-state, honoring a multiplier cap.
func (c *CPU) TopPState() PState {
	top := c.pstates[len(c.pstates)-1]
	if c.capMult == 0 {
		return top
	}
	best := c.pstates[0]
	for _, p := range c.pstates {
		if p.Multiplier <= c.capMult && p.Multiplier > best.Multiplier {
			best = p
		}
	}
	return best
}

// PStates returns the configured p-states in ascending multiplier order.
func (c *CPU) PStates() []PState {
	out := make([]PState, len(c.pstates))
	copy(out, c.pstates)
	return out
}

// Freq returns the effective core frequency of p-state p.
func (c *CPU) Freq(p PState) MHz { return p.Freq(c.FSB()) }

// Voltage returns the effective core voltage at p-state p with loadedCores
// cores drawing current: VID − downgrade offset − loadline droop, floored
// at the regulator minimum.
func (c *CPU) Voltage(p PState, loadedCores int) energy.Volts {
	v := p.VID - c.cfg.DowngradeOffsets[c.downgrade]
	if c.loadline == LoadlineLight {
		v -= c.cfg.DroopPerLoadedCore * energy.Volts(loadedCores)
	}
	if v < c.cfg.VFloor {
		v = c.cfg.VFloor
	}
	return v
}

// power computes package power at p-state p with activeCores cores running
// at the given activity; remaining cores are halted.
func (c *CPU) power(p PState, activity float64, activeCores int) energy.Watts {
	v := float64(c.Voltage(p, activeCores))
	f := c.Freq(p).GHz()
	haltAct := c.cfg.IdleActivityHalt
	if c.deepIdle {
		haltAct = c.cfg.IdleActivityDeep
	}
	dyn := 0.0
	for core := 0; core < c.cfg.Cores; core++ {
		act := haltAct
		if core < activeCores {
			act = activity
		}
		dyn += c.cfg.CdynWPerV2GHz * v * v * f * act
	}
	leak := c.cfg.LeakWPerV * v
	return energy.Watts(dyn+leak) + c.cfg.UncoreW
}

// PowerAt reports package power at an explicit p-state, activity factor and
// active-core count under the current voltage settings. It exists for
// instruments and scenarios outside normal execution (e.g. the firmware
// spin loop in the Table 1 breakdown).
func (c *CPU) PowerAt(p PState, activity float64, activeCores int) energy.Watts {
	return c.power(p, activity, activeCores)
}

// activityFor maps a work kind to its switching-activity factor.
func (c *CPU) activityFor(kind WorkKind) float64 {
	switch kind {
	case Compute:
		return c.cfg.ComputeActivity
	case MemStall:
		return c.cfg.MemStallActivity
	case Stream:
		return c.cfg.StreamActivity
	default:
		panic(fmt.Sprintf("cpu: unknown work kind %d", int(kind)))
	}
}

// idlePState returns the p-state occupied while waiting. With EPU deep
// idle the processor downshifts to the lowest multiplier immediately; the
// stock configuration lingers at the top p-state during the short waits
// that punctuate database workloads.
func (c *CPU) idlePState() PState {
	if c.deepIdle {
		return c.pstates[0]
	}
	return c.TopPState()
}

func (c *CPU) idleActivity() float64 {
	if c.deepIdle {
		return c.cfg.IdleActivityDeep
	}
	return c.cfg.IdleActivityHalt
}

// IdlePower reports the package power while waiting under current settings.
func (c *CPU) IdlePower() energy.Watts {
	return c.power(c.idlePState(), c.idleActivity(), 0)
}

// BusyPower reports the package power while running work of the given kind
// at the current parallelism and settings, including any EPU stall
// downshift for memory-paced kinds.
func (c *CPU) BusyPower(kind WorkKind) energy.Watts {
	ps := c.TopPState()
	if kind == MemStall || kind == Stream {
		ps = c.stallPState()
	}
	return c.power(ps, c.activityFor(kind), c.parallelism)
}

// refreshIdleTrace re-records the idle power after a settings change so the
// trace reflects the new draw immediately.
func (c *CPU) refreshIdleTrace() {
	c.trace.Set(c.clock.Now(), c.IdlePower())
}

// Run executes a work segment of the given cycle count and kind, advancing
// the clock and recording energy. It returns the segment's duration.
//
// Compute cycles are paced by the core clock divided across the configured
// parallelism; MemStall and Stream cycles are paced by the memory clock
// (which underclocking also slows). Negative cycles panic; zero cycles are
// a no-op.
func (c *CPU) Run(cycles float64, kind WorkKind) sim.Duration {
	if cycles < 0 {
		panic("cpu: negative cycle count")
	}
	if cycles == 0 {
		return 0
	}
	ps := c.TopPState()
	var d sim.Duration
	switch kind {
	case Compute:
		d = sim.Duration(cycles / (c.Freq(ps).Hz() * float64(c.parallelism)))
	case MemStall:
		// Cycles are counted against the stock memory clock; the stall
		// stretches by the blend of fixed DRAM latency (with any timing-
		// fallback penalty) and clock-scaled transfer time. The core's
		// p-state does not pace this work, so the EPU downshift applies.
		base := cycles / (MHz(float64(c.cfg.FSB) * c.cfg.MemMultiplier)).Hz()
		d = sim.Duration(base * c.memSlowdown())
		ps = c.stallPState()
	case Stream:
		// Bandwidth-bound transfers scale with the memory clock and also
		// suffer the timing fallback.
		base := cycles / (MHz(float64(c.cfg.FSB) * c.cfg.MemMultiplier)).Hz()
		d = sim.Duration(base * c.memTimingPenalty() / (1 - c.underclock))
		ps = c.stallPState()
	default:
		panic(fmt.Sprintf("cpu: unknown work kind %d", int(kind)))
	}
	start := c.clock.Now()
	p := c.power(ps, c.activityFor(kind), c.parallelism)
	c.trace.Set(start, p)
	c.clock.Advance(d)
	c.trace.Set(c.clock.Now(), c.IdlePower())
	if c.obs != nil {
		c.obs.CPURun(kind, cycles, start, c.clock.Now(), p)
	}

	c.busy += d
	c.cyclesDone += cycles
	c.cyclesByKind[kind] += cycles
	c.coreSeconds += d.Seconds() * float64(c.parallelism)
	c.vIntegral += float64(c.Voltage(ps, c.parallelism)) * d.Seconds()
	c.fIntegral += c.Freq(ps).GHz() * d.Seconds()
	return d
}

// memTimingPenalty returns the DRAM timing-fallback multiplier at the
// current underclock.
func (c *CPU) memTimingPenalty() float64 {
	over := c.underclock - c.cfg.MemTimingFallbackFreeUC
	if over <= 0 {
		return 1
	}
	return 1 + c.cfg.MemTimingFallbackK*over
}

// memSlowdown returns the memory-stall time multiplier relative to stock:
// the fixed-latency fraction pays the timing penalty, the transfer fraction
// scales with the slowed memory clock.
func (c *CPU) memSlowdown() float64 {
	ff := c.cfg.MemFixedLatencyFrac
	return ff*c.memTimingPenalty() + (1-ff)/(1-c.underclock)
}

// Wait idles the processor for d (e.g. while a disk read completes),
// advancing the clock and recording idle-state energy.
func (c *CPU) Wait(d sim.Duration) {
	if d < 0 {
		panic("cpu: negative wait")
	}
	if d == 0 {
		return
	}
	start := c.clock.Now()
	c.trace.Set(start, c.IdlePower())
	c.clock.Advance(d)
	c.trace.Set(c.clock.Now(), c.IdlePower())
	if c.obs != nil {
		c.obs.CPUWait(start, c.clock.Now(), c.IdlePower())
	}
	c.idle += d
}

// Stats reports accumulated execution counters.
type Stats struct {
	Busy   sim.Duration
	Idle   sim.Duration
	Cycles float64
	// CyclesByKind breaks Cycles down by work kind — the parallel work
	// accounting the morsel executor's tests use to verify that the
	// dispatcher charges exactly the work the serial pipeline charges.
	CyclesByKind [3]float64
	// CoreSeconds is busy wall time weighted by the parallelism each
	// segment ran at: a 2-core segment of 1 s contributes 2 core-seconds.
	// It differs from Busy exactly when SetParallelism spread work over
	// multiple simulated cores.
	CoreSeconds float64
	// MeanVoltage and MeanFreqGHz are the time-weighted averages observed
	// over busy segments — the quantities the paper monitors to build its
	// Figure 4 theoretical EDP = V²/F comparison.
	MeanVoltage  energy.Volts
	MeanFreqGHz  float64
	BusyFraction float64
}

// Stats returns the counters accumulated since construction or ResetStats.
func (c *CPU) Stats() Stats {
	s := Stats{
		Busy: c.busy, Idle: c.idle, Cycles: c.cyclesDone,
		CyclesByKind: c.cyclesByKind, CoreSeconds: c.coreSeconds,
	}
	if c.busy > 0 {
		s.MeanVoltage = energy.Volts(c.vIntegral / c.busy.Seconds())
		s.MeanFreqGHz = c.fIntegral / c.busy.Seconds()
	}
	if total := c.busy + c.idle; total > 0 {
		s.BusyFraction = float64(c.busy) / float64(total)
	}
	return s
}

// ResetStats zeroes the accumulated counters (not the power trace).
func (c *CPU) ResetStats() {
	c.busy, c.idle, c.cyclesDone, c.vIntegral, c.fIntegral = 0, 0, 0, 0, 0
	c.cyclesByKind = [3]float64{}
	c.coreSeconds = 0
}
