package cpu

import (
	"math"
	"testing"
	"testing/quick"

	"ecodb/internal/sim"
)

func newE8500(t testing.TB) (*CPU, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	return New(E8500(), clock), clock
}

func TestStockFrequency(t *testing.T) {
	c, _ := newE8500(t)
	// 9.5 × 333.33 MHz ≈ 3.167 GHz.
	f := c.Freq(c.TopPState()).GHz()
	if math.Abs(f-3.1667) > 0.001 {
		t.Fatalf("stock top frequency = %v GHz, want ≈3.1667", f)
	}
}

func TestUnderclockScalesAllPStates(t *testing.T) {
	c, _ := newE8500(t)
	stock := make([]float64, 0)
	for _, p := range c.PStates() {
		stock = append(stock, float64(c.Freq(p)))
	}
	c.SetUnderclock(0.10)
	for i, p := range c.PStates() {
		got := float64(c.Freq(p))
		if math.Abs(got-0.9*stock[i]) > 1e-9 {
			t.Fatalf("p-state %d freq %v, want %v", i, got, 0.9*stock[i])
		}
	}
	// All p-states remain available: underclocking, unlike capping,
	// retains every multiplier (§3 of the paper).
	if len(c.PStates()) != 5 {
		t.Fatalf("p-states = %d, want 5", len(c.PStates()))
	}
}

func TestUnderclockSlowsMemory(t *testing.T) {
	c, _ := newE8500(t)
	stockMem := float64(c.MemFreq())
	c.SetUnderclock(0.15)
	if got := float64(c.MemFreq()); math.Abs(got-0.85*stockMem) > 1e-9 {
		t.Fatalf("mem freq %v, want %v", got, 0.85*stockMem)
	}
}

func TestMultiplierCapLimitsTopPState(t *testing.T) {
	c, _ := newE8500(t)
	c.SetMultiplierCap(7)
	if got := c.TopPState().Multiplier; got != 7 {
		t.Fatalf("capped top multiplier = %v, want 7", got)
	}
	c.SetMultiplierCap(0)
	if got := c.TopPState().Multiplier; got != 9.5 {
		t.Fatalf("uncapped top multiplier = %v, want 9.5", got)
	}
}

// The paper's §3 example: capping at multiplier 7 on a 333 MHz FSB yields a
// 2.33 GHz ceiling, whereas 5% underclocking keeps the top multiplier and
// yields a finer-grained reduction.
func TestCapVsUnderclockGranularity(t *testing.T) {
	c, _ := newE8500(t)
	c.SetMultiplierCap(7)
	capped := c.Freq(c.TopPState()).GHz()
	if math.Abs(capped-2.333) > 0.01 {
		t.Fatalf("capped frequency %v GHz, want ≈2.333", capped)
	}
	c.SetMultiplierCap(0)
	c.SetUnderclock(0.05)
	underclocked := c.Freq(c.TopPState()).GHz()
	if !(underclocked > capped) {
		t.Fatalf("5%% underclock (%v GHz) should sit above a 7x cap (%v GHz)", underclocked, capped)
	}
}

func TestVoltageDowngradeLowersVoltage(t *testing.T) {
	c, _ := newE8500(t)
	top := c.TopPState()
	stock := c.Voltage(top, 0)
	c.SetDowngrade(DowngradeSmall)
	small := c.Voltage(top, 0)
	c.SetDowngrade(DowngradeMedium)
	medium := c.Voltage(top, 0)
	if !(medium < small && small < stock) {
		t.Fatalf("voltages not ordered: stock %v small %v medium %v", stock, small, medium)
	}
}

func TestLoadlineDroop(t *testing.T) {
	c, _ := newE8500(t)
	top := c.TopPState()
	noLoad := c.Voltage(top, 0)
	if c.Voltage(top, 2) != noLoad {
		t.Fatal("stock loadline should not droop under load")
	}
	c.SetLoadline(LoadlineLight)
	if got := c.Voltage(top, 2); got >= noLoad {
		t.Fatalf("light loadline under 2-core load %v should droop below %v", got, noLoad)
	}
}

func TestVoltageFloor(t *testing.T) {
	cfg := E8500()
	cfg.DowngradeOffsets[DowngradeMedium] = 0.9 // absurd downgrade
	c := New(cfg, sim.NewClock())
	c.SetDowngrade(DowngradeMedium)
	if got := c.Voltage(c.PStates()[0], 0); got != cfg.VFloor {
		t.Fatalf("voltage %v, want floored at %v", got, cfg.VFloor)
	}
}

func TestPowerModelMonotonicity(t *testing.T) {
	c, _ := newE8500(t)
	// Busy power exceeds idle power; compute exceeds memstall.
	if !(c.BusyPower(Compute) > c.IdlePower()) {
		t.Fatal("busy power should exceed idle power")
	}
	if !(c.BusyPower(Compute) > c.BusyPower(MemStall)) {
		t.Fatal("compute power should exceed memstall power")
	}
	if !(c.BusyPower(Stream) > c.BusyPower(MemStall)) {
		t.Fatal("stream power should exceed memstall power")
	}
}

func TestDowngradeReducesBusyPower(t *testing.T) {
	c, _ := newE8500(t)
	stock := c.BusyPower(Compute)
	c.SetDowngrade(DowngradeMedium)
	if got := c.BusyPower(Compute); got >= stock {
		t.Fatalf("medium downgrade power %v, want below stock %v", got, stock)
	}
}

func TestDeepIdleReducesIdlePower(t *testing.T) {
	c, _ := newE8500(t)
	stockIdle := c.IdlePower()
	c.SetDeepIdle(true)
	if got := c.IdlePower(); got >= stockIdle {
		t.Fatalf("deep idle power %v, want below stock idle %v", got, stockIdle)
	}
}

func TestRunAdvancesClockByCyclesOverFreq(t *testing.T) {
	c, clock := newE8500(t)
	f := c.Freq(c.TopPState()).Hz()
	d := c.Run(f, Compute) // one second of single-core work
	if math.Abs(d.Seconds()-1) > 1e-9 {
		t.Fatalf("Run duration = %v, want 1s", d)
	}
	if math.Abs(clock.Now().Seconds()-1) > 1e-9 {
		t.Fatalf("clock = %v, want 1s", clock.Now())
	}
}

func TestRunParallelismSpeedsCompute(t *testing.T) {
	c, _ := newE8500(t)
	d1 := c.Run(1e9, Compute)
	c.SetParallelism(2)
	d2 := c.Run(1e9, Compute)
	if math.Abs(d2.Seconds()*2-d1.Seconds()) > 1e-12 {
		t.Fatalf("2-core run %v, want half of %v", d2, d1)
	}
}

func TestMemStallSlowdownBlend(t *testing.T) {
	c, _ := newE8500(t)
	cfg := c.Config()
	cycles := 1e9
	stock := c.Run(cycles, MemStall)
	c.SetUnderclock(0.10)
	slowed := c.Run(cycles, MemStall)
	// Fixed-latency half pays the timing fallback beyond the free 5%;
	// transfer half scales with the slowed clock.
	penalty := 1 + cfg.MemTimingFallbackK*(0.10-cfg.MemTimingFallbackFreeUC)
	want := cfg.MemFixedLatencyFrac*penalty + (1-cfg.MemFixedLatencyFrac)/0.9
	if ratio := slowed.Seconds() / stock.Seconds(); math.Abs(ratio-want) > 1e-9 {
		t.Fatalf("memstall slowdown ratio = %v, want %v", ratio, want)
	}
}

func TestMemStallNoPenaltyWithinFreeUnderclock(t *testing.T) {
	c, _ := newE8500(t)
	cfg := c.Config()
	cycles := 1e9
	stock := c.Run(cycles, MemStall)
	c.SetUnderclock(cfg.MemTimingFallbackFreeUC)
	slowed := c.Run(cycles, MemStall)
	want := cfg.MemFixedLatencyFrac + (1-cfg.MemFixedLatencyFrac)/(1-cfg.MemTimingFallbackFreeUC)
	if ratio := slowed.Seconds() / stock.Seconds(); math.Abs(ratio-want) > 1e-9 {
		t.Fatalf("memstall slowdown at free underclock = %v, want %v (no timing penalty)", ratio, want)
	}
}

func TestRunRecordsEnergy(t *testing.T) {
	c, clock := newE8500(t)
	start := clock.Now()
	c.Run(3.1667e9, Compute) // ~1 s
	e := c.Trace().Energy(start, clock.Now())
	want := float64(c.BusyPower(Compute)) * clock.Now().Seconds()
	if math.Abs(float64(e)-want) > 1e-6 {
		t.Fatalf("trace energy = %v, want %v", e, want)
	}
}

func TestWaitRecordsIdleEnergy(t *testing.T) {
	c, clock := newE8500(t)
	c.SetDeepIdle(true)
	start := clock.Now()
	c.Wait(10 * sim.Second)
	e := c.Trace().Energy(start, clock.Now())
	want := float64(c.IdlePower()) * 10
	if math.Abs(float64(e)-want) > 1e-6 {
		t.Fatalf("idle energy = %v, want %v", e, want)
	}
}

func TestStatsAccumulate(t *testing.T) {
	c, _ := newE8500(t)
	c.Run(3.1667e9, Compute)
	c.Wait(sim.Second)
	s := c.Stats()
	if s.Cycles != 3.1667e9 {
		t.Fatalf("cycles = %v", s.Cycles)
	}
	if s.Busy <= 0 || s.Idle != sim.Second {
		t.Fatalf("busy=%v idle=%v", s.Busy, s.Idle)
	}
	if s.BusyFraction <= 0 || s.BusyFraction >= 1 {
		t.Fatalf("busy fraction = %v", s.BusyFraction)
	}
	if math.Abs(float64(s.MeanVoltage)-1.25) > 1e-9 {
		t.Fatalf("mean voltage = %v, want 1.25 (stock top VID)", s.MeanVoltage)
	}
	if math.Abs(s.MeanFreqGHz-3.1667) > 0.001 {
		t.Fatalf("mean freq = %v", s.MeanFreqGHz)
	}
	c.ResetStats()
	if s := c.Stats(); s.Cycles != 0 || s.Busy != 0 || s.Idle != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestZeroCyclesNoOp(t *testing.T) {
	c, clock := newE8500(t)
	before := clock.Now()
	if d := c.Run(0, Compute); d != 0 || clock.Now() != before {
		t.Fatal("zero-cycle run advanced time")
	}
}

func TestInvalidInputsPanic(t *testing.T) {
	c, _ := newE8500(t)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("negative cycles", func() { c.Run(-1, Compute) })
	mustPanic("negative wait", func() { c.Wait(-1) })
	mustPanic("underclock out of range", func() { c.SetUnderclock(0.6) })
	mustPanic("bad parallelism", func() { c.SetParallelism(3) })
	mustPanic("cap below lowest", func() { c.SetMultiplierCap(1) })
}

// Property: the paper's §3.4 model — with the processor pinned busy, EDP of
// a fixed-cycle compute job is proportional to V²/F across settings.
func TestEDPProportionalToV2OverF(t *testing.T) {
	f := func(uc8 uint8, dg uint8) bool {
		ucFrac := float64(uc8%16) / 100 // 0..15%
		d := Downgrade(dg % 3)

		clock := sim.NewClock()
		c := New(E8500(), clock)
		c.SetUnderclock(ucFrac)
		c.SetDowngrade(d)

		const cycles = 1e9
		start := clock.Now()
		dur := c.Run(cycles, Compute)
		e := c.Trace().Energy(start, clock.Now())
		edp := float64(e) * dur.Seconds()

		v := float64(c.Voltage(c.TopPState(), 1))
		fghz := c.Freq(c.TopPState()).GHz()
		// Subtract the non-CV²F terms (leakage + uncore + halted core),
		// leaving pure dynamic EDP to compare against V²/F.
		cfg := c.Config()
		overheadW := cfg.LeakWPerV*v + float64(cfg.UncoreW) +
			cfg.CdynWPerV2GHz*v*v*fghz*cfg.IdleActivityHalt
		dynE := float64(e) - overheadW*dur.Seconds()
		dynEDP := dynE * dur.Seconds()

		theory := v * v / fghz
		// dynEDP = Cdyn·V²·F·t² = Cdyn·cycles²/1e18·V²/F — so the ratio
		// must be the constant Cdyn·cycles²·1e-18.
		wantConst := cfg.CdynWPerV2GHz * cycles * cycles * 1e-18
		gotConst := dynEDP / theory
		_ = edp
		return math.Abs(gotConst-wantConst) < 1e-6*wantConst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: energy over any run is non-negative and the clock never moves
// backwards regardless of operation order.
func TestEnergyNonNegativeProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		clock := sim.NewClock()
		c := New(E8500(), clock)
		last := clock.Now()
		for _, op := range ops {
			switch op % 4 {
			case 0:
				c.Run(float64(op)*1e6, Compute)
			case 1:
				c.Run(float64(op)*1e6, MemStall)
			case 2:
				c.Wait(sim.Duration(op) * sim.Millisecond)
			case 3:
				c.SetUnderclock(float64(op%16) / 100)
			}
			if clock.Now() < last {
				return false
			}
			last = clock.Now()
		}
		return c.Trace().Energy(0, clock.Now()) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelWorkAccounting(t *testing.T) {
	c, _ := newE8500(t)
	c.Run(2e9, Compute)
	s1 := c.Stats()
	if s1.CyclesByKind[Compute] != 2e9 || s1.CyclesByKind[MemStall] != 0 {
		t.Fatalf("cycles by kind = %v", s1.CyclesByKind)
	}
	// At parallelism 1, core-seconds equal busy seconds.
	if math.Abs(s1.CoreSeconds-s1.Busy.Seconds()) > 1e-12 {
		t.Fatalf("core-seconds %v != busy %v at parallelism 1", s1.CoreSeconds, s1.Busy.Seconds())
	}

	// The same work at parallelism 2 takes half the wall time but the
	// same core-seconds: two cores busy for half as long.
	c.SetParallelism(2)
	if c.Parallelism() != 2 {
		t.Fatalf("Parallelism() = %d", c.Parallelism())
	}
	c.Run(2e9, Compute)
	s2 := c.Stats()
	wall1 := s1.Busy.Seconds()
	wall2 := s2.Busy.Seconds() - wall1
	if math.Abs(wall2-wall1/2) > 1e-12 {
		t.Fatalf("parallel segment wall %v, want half of %v", wall2, wall1)
	}
	cs2 := s2.CoreSeconds - s1.CoreSeconds
	if math.Abs(cs2-wall1) > 1e-12 {
		t.Fatalf("parallel segment core-seconds %v, want %v", cs2, wall1)
	}
	if s2.CyclesByKind[Compute] != 4e9 {
		t.Fatalf("compute cycles = %v, want 4e9", s2.CyclesByKind[Compute])
	}

	// Memory-paced work is accounted under its own kind.
	c.Run(1e9, MemStall)
	c.Run(5e8, Stream)
	s3 := c.Stats()
	if s3.CyclesByKind[MemStall] != 1e9 || s3.CyclesByKind[Stream] != 5e8 {
		t.Fatalf("cycles by kind = %v", s3.CyclesByKind)
	}
	if got := s3.CyclesByKind[Compute] + s3.CyclesByKind[MemStall] + s3.CyclesByKind[Stream]; got != s3.Cycles {
		t.Fatalf("kind breakdown %v does not sum to total %v", got, s3.Cycles)
	}

	c.ResetStats()
	if s := c.Stats(); s.CoreSeconds != 0 || s.CyclesByKind != [3]float64{} {
		t.Fatalf("ResetStats left parallel accounting: %+v", s)
	}
}
