package cpu

// Estimation mirrors of Run's pacing and power math, used by the query
// optimizer to cost candidate plans in simulated seconds and joules
// without advancing the clock or touching the trace. Keeping them in this
// package (rather than duplicating formulas in internal/opt) means a
// change to Run's timing model automatically propagates to plan costing.

// EstimateSeconds returns the wall-clock seconds Run would take to execute
// cycles of the given kind at the given parallelism under the current
// tuning (underclock, caps), without executing anything.
//
// Compute work divides across cores; memory-paced work (MemStall, Stream)
// does not — its duration is set by the memory clock regardless of how
// many cores wait on it. That asymmetry is the optimizer's main
// parallelism lever: extra cores halve compute time but only add
// switching power to stall time.
func (c *CPU) EstimateSeconds(cycles float64, kind WorkKind, parallelism int) float64 {
	if cycles <= 0 {
		return 0
	}
	if parallelism < 1 {
		parallelism = 1
	}
	switch kind {
	case Compute:
		return cycles / (c.Freq(c.TopPState()).Hz() * float64(parallelism))
	case MemStall:
		base := cycles / (MHz(float64(c.cfg.FSB) * c.cfg.MemMultiplier)).Hz()
		return base * c.memSlowdown()
	case Stream:
		base := cycles / (MHz(float64(c.cfg.FSB) * c.cfg.MemMultiplier)).Hz()
		return base * c.memTimingPenalty() / (1 - c.underclock)
	default:
		return 0
	}
}

// EstimateEnergy returns the package joules Run would record for cycles of
// the given kind at the given parallelism: busy power at the segment's
// p-state and activity, times the segment duration.
func (c *CPU) EstimateEnergy(cycles float64, kind WorkKind, parallelism int) float64 {
	secs := c.EstimateSeconds(cycles, kind, parallelism)
	if secs == 0 {
		return 0
	}
	ps := c.TopPState()
	if kind == MemStall || kind == Stream {
		ps = c.stallPState()
	}
	return float64(c.power(ps, c.activityFor(kind), parallelism)) * secs
}
