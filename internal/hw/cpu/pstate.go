// Package cpu models a desktop processor of the Core 2 era with dynamic
// voltage and frequency scaling (DVFS), in the way the paper's PVC technique
// manipulates it:
//
//   - P-states are (multiplier, voltage) pairs; CPU frequency is the product
//     of the front-side-bus (FSB) speed and the multiplier.
//   - Underclocking lowers the FSB speed, scaling *every* p-state down while
//     retaining all of them — the paper's preferred fine-grained control.
//   - Multiplier capping (the traditional alternative) limits the top
//     p-state but leaves the FSB alone.
//   - Voltage downgrades subtract a fixed offset from every p-state's VID.
//
// Power follows the paper's §3.4 model, dynamic power = C·V²·F scaled by an
// activity factor, plus a leakage term proportional to voltage and a small
// constant uncore draw. Time for compute work is cycles/frequency; memory-
// stall work is clocked by the memory bus, which also slows when the FSB is
// underclocked (§3: "underclocking also slows the main memory").
package cpu

import (
	"fmt"
	"sort"

	"ecodb/internal/energy"
)

// MHz is a frequency in megahertz.
type MHz float64

// GHz returns the frequency in gigahertz.
func (f MHz) GHz() float64 { return float64(f) / 1000 }

// Hz returns the frequency in hertz.
func (f MHz) Hz() float64 { return float64(f) * 1e6 }

func (f MHz) String() string { return fmt.Sprintf("%.0fMHz", float64(f)) }

// PState is one processor performance state: a CPU multiplier and the stock
// voltage (VID) the processor requests at that multiplier.
type PState struct {
	Multiplier float64
	VID        energy.Volts
}

// Freq returns the CPU core frequency of this p-state on the given FSB.
func (p PState) Freq(fsb MHz) MHz { return MHz(float64(fsb) * p.Multiplier) }

// Downgrade identifies one of the motherboard's preset CPU voltage
// downgrade levels (the ASUS 6-Engine "small" and "medium" settings used in
// the paper).
type Downgrade int

// Voltage downgrade levels.
const (
	DowngradeNone Downgrade = iota
	DowngradeSmall
	DowngradeMedium
)

func (d Downgrade) String() string {
	switch d {
	case DowngradeNone:
		return "none"
	case DowngradeSmall:
		return "small"
	case DowngradeMedium:
		return "medium"
	default:
		return fmt.Sprintf("Downgrade(%d)", int(d))
	}
}

// Loadline selects the motherboard's voltage loadline calibration. The
// paper's tuned runs set "CPU loadline: light", which lets the core voltage
// droop under load instead of compensating for it; the stock setting holds
// the VID steady.
type Loadline int

// Loadline settings.
const (
	LoadlineStock Loadline = iota
	LoadlineLight
)

func (l Loadline) String() string {
	if l == LoadlineLight {
		return "light"
	}
	return "stock"
}

// sortPStates orders p-states by ascending multiplier and validates them.
func sortPStates(ps []PState) ([]PState, error) {
	if len(ps) == 0 {
		return nil, fmt.Errorf("cpu: no p-states configured")
	}
	out := make([]PState, len(ps))
	copy(out, ps)
	sort.Slice(out, func(i, j int) bool { return out[i].Multiplier < out[j].Multiplier })
	for i, p := range out {
		if p.Multiplier <= 0 {
			return nil, fmt.Errorf("cpu: p-state %d has non-positive multiplier %v", i, p.Multiplier)
		}
		if p.VID <= 0 {
			return nil, fmt.Errorf("cpu: p-state %d has non-positive VID %v", i, p.VID)
		}
		if i > 0 && out[i].VID < out[i-1].VID {
			return nil, fmt.Errorf("cpu: p-state VIDs must be non-decreasing with multiplier")
		}
	}
	return out, nil
}
