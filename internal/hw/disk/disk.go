// Package disk models a 7200 RPM SATA hard drive: service times for
// sequential and random reads, and power drawn on the drive's two supply
// lines — the 5 V line feeding the electronics and the 12 V line feeding
// the spindle and actuator — which is exactly how the paper measures disk
// energy (§3.5: "The hard disk drive in our SUT has two power lines").
//
// The timing model has a fixed positioning cost per random call (seek +
// rotational latency + controller overhead) plus a per-byte streaming cost.
// That structure alone produces the paper's Figure 5: sequential throughput
// is flat in the read size, random throughput grows sub-linearly with it,
// and energy per KB is the reciprocal of throughput times line power.
package disk

import (
	"fmt"

	"ecodb/internal/energy"
	"ecodb/internal/sim"
)

// Pattern is a disk access pattern.
type Pattern int

const (
	// Sequential reads continue from the previous position: no seek.
	Sequential Pattern = iota
	// Random reads require a full seek and rotational wait per call.
	Random
)

func (p Pattern) String() string {
	if p == Random {
		return "random"
	}
	return "sequential"
}

// Config describes the drive.
type Config struct {
	Model      string
	CapacityGB float64

	// AvgSeek is the average head seek time.
	AvgSeek sim.Duration
	// AvgRotational is the average rotational latency (half a revolution:
	// 4.17 ms at 7200 RPM).
	AvgRotational sim.Duration
	// CallOverhead is the per-read-call controller/OS cost charged to the
	// drive's service time on random calls.
	CallOverhead sim.Duration
	// SeqMBps is the sustained sequential transfer rate.
	SeqMBps float64
	// RandMBps is the media transfer rate for short random reads, which
	// is lower than the sequential rate (no read-ahead, track switches).
	RandMBps float64

	// Line5VIdle/Active: electronics power, idle vs servicing a request.
	Line5VIdle, Line5VActive energy.Watts
	// Line12VIdle: spindle power while spinning with heads parked.
	// Line12VStream: spindle+head power while transferring sequentially.
	// Line12VSeek: spindle+actuator power while seeking.
	Line12VIdle, Line12VStream, Line12VSeek energy.Watts
}

// CaviarSE16 matches the paper's Western Digital Caviar SE16 320 GB SATA
// drive, with power calibrated against the paper's warm (214.7 J over a
// 48.5 s workload) and cold (1135.4 J over 156 s) measurements.
func CaviarSE16() Config {
	return Config{
		Model:         "WD Caviar SE16 320GB",
		CapacityGB:    320,
		AvgSeek:       8.9 * sim.Millisecond,
		AvgRotational: 4.17 * sim.Millisecond,
		CallOverhead:  0.45 * sim.Millisecond,
		SeqMBps:       62,
		RandMBps:      5.0,

		Line5VIdle:    1.1,
		Line5VActive:  2.3,
		Line12VIdle:   2.9,
		Line12VStream: 4.6,
		Line12VSeek:   7.4,
	}
}

// Disk is a simulated drive attached to a virtual clock. Read operations
// compute a service time, record per-line power over that window, and
// return the duration; the caller (the machine) idles the CPU for it.
//
// The drive records power on two separate traces, one per supply line, so
// experiments can clamp a current meter on each line as the paper did.
type Disk struct {
	cfg     Config
	clock   *sim.Clock
	line5V  energy.Trace
	line12V energy.Trace

	reads      int64
	bytesRead  int64
	seeks      int64
	activeTime sim.Duration
}

// New returns a Disk attached to clock, spun up and idle.
func New(cfg Config, clock *sim.Clock) *Disk {
	if cfg.SeqMBps <= 0 || cfg.RandMBps <= 0 {
		panic("disk: non-positive transfer rate")
	}
	d := &Disk{cfg: cfg, clock: clock}
	d.line5V.Set(clock.Now(), cfg.Line5VIdle)
	d.line12V.Set(clock.Now(), cfg.Line12VIdle)
	return d
}

// Config returns the drive configuration.
func (d *Disk) Config() Config { return d.cfg }

// Line5V returns the 5 V (electronics) power trace.
func (d *Disk) Line5V() *energy.Trace { return &d.line5V }

// Line12V returns the 12 V (spindle/actuator) power trace.
func (d *Disk) Line12V() *energy.Trace { return &d.line12V }

// ServiceTime returns the time to read n bytes with the given pattern,
// without performing the read. One call is one request: a random call pays
// seek + rotational latency + overhead then transfers at the random media
// rate; a sequential call streams at the sequential rate.
func (d *Disk) ServiceTime(n int64, pattern Pattern) sim.Duration {
	if n < 0 {
		panic("disk: negative read size")
	}
	mb := float64(n) / (1 << 20)
	switch pattern {
	case Sequential:
		return sim.Duration(mb / d.cfg.SeqMBps)
	case Random:
		return d.cfg.AvgSeek + d.cfg.AvgRotational + d.cfg.CallOverhead +
			sim.Duration(mb/d.cfg.RandMBps)
	default:
		panic(fmt.Sprintf("disk: unknown pattern %d", int(pattern)))
	}
}

// Read services one read request of n bytes, recording per-line power over
// the service window starting at the current clock instant. It returns the
// service time but does not advance the clock — the machine advances it
// while idling the CPU, so disk and CPU power are recorded over the same
// window.
func (d *Disk) Read(n int64, pattern Pattern) sim.Duration {
	dur := d.ServiceTime(n, pattern)
	if dur == 0 {
		return 0
	}
	start := d.clock.Now()
	end := start.Add(dur)

	w12 := d.cfg.Line12VStream
	if pattern == Random {
		// Apportion the window between positioning (seek power) and
		// transfer (stream power): record the time-weighted blend, which
		// integrates identically and keeps the trace compact.
		pos := (d.cfg.AvgSeek + d.cfg.AvgRotational + d.cfg.CallOverhead).Seconds()
		frac := pos / dur.Seconds()
		w12 = energy.Watts(frac*float64(d.cfg.Line12VSeek) + (1-frac)*float64(d.cfg.Line12VStream))
		d.seeks++
	}
	d.line5V.Set(start, d.cfg.Line5VActive)
	d.line12V.Set(start, w12)
	d.line5V.Set(end, d.cfg.Line5VIdle)
	d.line12V.Set(end, d.cfg.Line12VIdle)

	d.reads++
	d.bytesRead += n
	d.activeTime += dur
	return dur
}

// Stats reports accumulated request counters.
type Stats struct {
	Reads     int64
	Seeks     int64
	BytesRead int64
	Active    sim.Duration
}

// Stats returns counters accumulated since construction or ResetStats.
func (d *Disk) Stats() Stats {
	return Stats{Reads: d.reads, Seeks: d.seeks, BytesRead: d.bytesRead, Active: d.activeTime}
}

// ResetStats zeroes the request counters (not the power traces).
func (d *Disk) ResetStats() {
	d.reads, d.seeks, d.bytesRead, d.activeTime = 0, 0, 0, 0
}

// IdlePower returns the combined draw of both lines when idle.
func (d *Disk) IdlePower() energy.Watts { return d.cfg.Line5VIdle + d.cfg.Line12VIdle }

// Energy returns the total energy drawn by both lines between t0 and t1 —
// what the paper computes by measuring current on each line and summing.
func (d *Disk) Energy(t0, t1 sim.Time) energy.Joules {
	return d.line5V.Energy(t0, t1) + d.line12V.Energy(t0, t1)
}
