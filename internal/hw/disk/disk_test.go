package disk

import (
	"math"
	"testing"
	"testing/quick"

	"ecodb/internal/sim"
)

func newDisk(t testing.TB) (*Disk, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	return New(CaviarSE16(), clock), clock
}

func TestSequentialServiceTimeLinear(t *testing.T) {
	d, _ := newDisk(t)
	t1 := d.ServiceTime(1<<20, Sequential)
	t2 := d.ServiceTime(2<<20, Sequential)
	if math.Abs(t2.Seconds()-2*t1.Seconds()) > 1e-12 {
		t.Fatalf("sequential time not linear: %v vs %v", t1, t2)
	}
}

func TestRandomPaysPositioning(t *testing.T) {
	d, _ := newDisk(t)
	seqT := d.ServiceTime(4<<10, Sequential)
	rndT := d.ServiceTime(4<<10, Random)
	if rndT <= seqT {
		t.Fatalf("random 4KB (%v) should cost more than sequential (%v)", rndT, seqT)
	}
	cfg := d.Config()
	minPositioning := cfg.AvgSeek + cfg.AvgRotational
	if rndT < minPositioning {
		t.Fatalf("random read %v cheaper than positioning %v", rndT, minPositioning)
	}
}

// Figure 5(a): sequential throughput flat in block size; random throughput
// rises sub-linearly — roughly 1.9×, 3.5×, 6× over the 4 KB rate at
// 8/16/32 KB.
func TestThroughputShapeMatchesFigure5(t *testing.T) {
	d, _ := newDisk(t)
	tput := func(block int64, p Pattern) float64 {
		dur := d.ServiceTime(block, p)
		return float64(block) / (1 << 20) / dur.Seconds()
	}
	seq4 := tput(4<<10, Sequential)
	seq32 := tput(32<<10, Sequential)
	if math.Abs(seq32/seq4-1) > 1e-9 {
		t.Fatalf("sequential throughput should be flat: %v vs %v", seq4, seq32)
	}

	r4 := tput(4<<10, Random)
	ratios := []struct {
		block    int64
		lo, hi   float64
		paperVal float64
	}{
		{8 << 10, 1.7, 2.0, 1.88},
		{16 << 10, 3.1, 3.9, 3.5},
		{32 << 10, 5.2, 6.8, 6.0},
	}
	for _, r := range ratios {
		got := tput(r.block, Random) / r4
		if got < r.lo || got > r.hi {
			t.Errorf("random %dKB/4KB throughput ratio = %.2f, want in [%v,%v] (paper ≈%v)",
				r.block>>10, got, r.lo, r.hi, r.paperVal)
		}
	}
}

func TestReadRecordsPowerOnBothLines(t *testing.T) {
	d, clock := newDisk(t)
	start := clock.Now()
	dur := d.Read(1<<20, Random)
	clock.Advance(dur)
	end := clock.Now()

	cfg := d.Config()
	e5 := d.Line5V().Energy(start, end)
	e12 := d.Line12V().Energy(start, end)
	if e5 <= 0 || e12 <= 0 {
		t.Fatalf("line energies not recorded: 5V=%v 12V=%v", e5, e12)
	}
	if float64(e5) <= float64(cfg.Line5VIdle)*dur.Seconds() {
		t.Fatal("5V line energy should exceed idle draw during a read")
	}
	// After the read both lines return to idle.
	if got := d.Line5V().At(end); got != cfg.Line5VIdle {
		t.Fatalf("5V after read = %v, want idle %v", got, cfg.Line5VIdle)
	}
	if got := d.Line12V().At(end); got != cfg.Line12VIdle {
		t.Fatalf("12V after read = %v, want idle %v", got, cfg.Line12VIdle)
	}
}

func TestRandomDrawsMorePowerThanSequential(t *testing.T) {
	// Equal-size reads: the random one must cost more energy (slower AND
	// seek power).
	mk := func(p Pattern) float64 {
		clock := sim.NewClock()
		d := New(CaviarSE16(), clock)
		start := clock.Now()
		dur := d.Read(64<<10, p)
		clock.Advance(dur)
		return float64(d.Energy(start, clock.Now()))
	}
	if seq, rnd := mk(Sequential), mk(Random); rnd <= seq {
		t.Fatalf("random energy %v should exceed sequential %v", rnd, seq)
	}
}

func TestStatsAccumulate(t *testing.T) {
	d, clock := newDisk(t)
	clock.Advance(d.Read(4<<10, Random))
	clock.Advance(d.Read(8<<10, Sequential))
	s := d.Stats()
	if s.Reads != 2 || s.Seeks != 1 || s.BytesRead != 12<<10 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Active <= 0 {
		t.Fatal("active time not accumulated")
	}
	d.ResetStats()
	if s := d.Stats(); s.Reads != 0 || s.BytesRead != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestZeroByteRead(t *testing.T) {
	d, _ := newDisk(t)
	if dur := d.Read(0, Sequential); dur != 0 {
		t.Fatalf("zero-byte read took %v", dur)
	}
}

func TestNegativeReadPanics(t *testing.T) {
	d, _ := newDisk(t)
	defer func() {
		if recover() == nil {
			t.Fatal("negative read did not panic")
		}
	}()
	d.Read(-1, Sequential)
}

// Property: service time is monotonically non-decreasing in read size for
// both patterns.
func TestServiceTimeMonotonic(t *testing.T) {
	d, _ := newDisk(t)
	f := func(a, b uint32) bool {
		x, y := int64(a%(64<<20)), int64(b%(64<<20))
		if x > y {
			x, y = y, x
		}
		for _, p := range []Pattern{Sequential, Random} {
			if d.ServiceTime(x, p) > d.ServiceTime(y, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: energy per KB for random reads decreases as block size grows
// (Figure 5(b)).
func TestRandomEnergyPerKBDecreases(t *testing.T) {
	perKB := func(block int64) float64 {
		clock := sim.NewClock()
		d := New(CaviarSE16(), clock)
		start := clock.Now()
		clock.Advance(d.Read(block, Random))
		return float64(d.Energy(start, clock.Now())) / (float64(block) / 1024)
	}
	prev := math.Inf(1)
	for _, b := range []int64{4 << 10, 8 << 10, 16 << 10, 32 << 10} {
		cur := perKB(b)
		if cur >= prev {
			t.Fatalf("energy/KB at %dKB (%v) not below previous (%v)", b>>10, cur, prev)
		}
		prev = cur
	}
}
