// Package mem models DDR3 main memory power. The memory clock is a
// multiple of the front-side bus, so underclocking the FSB (the paper's PVC
// technique) also slows memory and reduces its power draw — the paper notes
// this explicitly in §3.
//
// Timing effects of the slower memory clock are modelled on the CPU side
// (cpu.MemStall work is paced by the memory clock); this package only
// accounts for DIMM power, which feeds Table 1 and the whole-system wall
// measurements.
package mem

import (
	"fmt"

	"ecodb/internal/energy"
	"ecodb/internal/sim"
)

// Config describes the installed memory.
type Config struct {
	// DIMMs is the number of installed modules.
	DIMMs int
	// GBPerDIMM is each module's capacity.
	GBPerDIMM float64
	// StockMHz is the data rate at the stock FSB (DDR3-1333 → 1333).
	StockMHz float64

	// ControllerW is drawn once when any memory is installed (the
	// on-board memory controller and termination). The paper's Table 1
	// shows the first DIMM adding ~4.3 W at the wall but the second only
	// ~1.7 W; the difference is this one-time cost.
	ControllerW energy.Watts
	// DIMMBaseW is each module's standby draw.
	DIMMBaseW energy.Watts
	// DIMMWPerGHz is each module's additional draw per GHz of memory
	// clock while active.
	DIMMWPerGHz float64
}

// Kingston2x1GDDR3 matches the paper's system: 2 × 1 GB Kingston DDR3-1333.
func Kingston2x1GDDR3() Config {
	return Config{
		DIMMs:       2,
		GBPerDIMM:   1,
		StockMHz:    1333,
		ControllerW: 2.4,
		DIMMBaseW:   0.65,
		DIMMWPerGHz: 0.60,
	}
}

// Memory is a bank of DIMMs attached to the simulated machine.
type Memory struct {
	cfg   Config
	clock *sim.Clock
	trace energy.Trace
	ratio float64 // current clock / stock clock
}

// New returns a Memory attached to clock, running at stock speed.
func New(cfg Config, clock *sim.Clock) *Memory {
	if cfg.DIMMs < 0 {
		panic("mem: negative DIMM count")
	}
	m := &Memory{cfg: cfg, clock: clock, ratio: 1}
	m.trace.Set(clock.Now(), m.Power())
	return m
}

// Config returns the memory configuration.
func (m *Memory) Config() Config { return m.cfg }

// Trace returns the memory power trace.
func (m *Memory) Trace() *energy.Trace { return &m.trace }

// SetClockRatio scales the memory clock relative to stock; the machine
// calls this when the FSB is underclocked. Ratios outside (0, 1.2] panic.
func (m *Memory) SetClockRatio(r float64) {
	if r <= 0 || r > 1.2 {
		panic(fmt.Sprintf("mem: clock ratio %v out of range", r))
	}
	m.ratio = r
	m.trace.Set(m.clock.Now(), m.Power())
}

// EffectiveMHz returns the current memory data rate.
func (m *Memory) EffectiveMHz() float64 { return m.cfg.StockMHz * m.ratio }

// CapacityGB returns total installed capacity.
func (m *Memory) CapacityGB() float64 {
	return float64(m.cfg.DIMMs) * m.cfg.GBPerDIMM
}

// Power returns the current total memory subsystem draw.
func (m *Memory) Power() energy.Watts {
	if m.cfg.DIMMs == 0 {
		return 0
	}
	perDIMM := m.cfg.DIMMBaseW + energy.Watts(m.cfg.DIMMWPerGHz*m.EffectiveMHz()/1000)
	return m.cfg.ControllerW + energy.Watts(m.cfg.DIMMs)*perDIMM
}
