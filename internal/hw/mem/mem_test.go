package mem

import (
	"math"
	"testing"

	"ecodb/internal/sim"
)

func TestPowerScalesWithDIMMs(t *testing.T) {
	clock := sim.NewClock()
	cfg := Kingston2x1GDDR3()

	cfg.DIMMs = 0
	none := New(cfg, clock)
	if none.Power() != 0 {
		t.Fatalf("no DIMMs should draw 0, got %v", none.Power())
	}

	cfg.DIMMs = 1
	one := New(cfg, clock)
	cfg.DIMMs = 2
	two := New(cfg, clock)

	// First DIMM includes the controller activation; the second adds
	// only the per-DIMM draw — the paper's Table 1 asymmetry (≈4.3 W
	// then ≈1.7 W at the wall).
	first := float64(one.Power())
	second := float64(two.Power() - one.Power())
	if !(first > 2*second) {
		t.Fatalf("first DIMM (%vW) should cost much more than the second (%vW)", first, second)
	}
}

func TestUnderclockLowersMemoryPower(t *testing.T) {
	clock := sim.NewClock()
	m := New(Kingston2x1GDDR3(), clock)
	stock := m.Power()
	m.SetClockRatio(0.85)
	if got := m.Power(); got >= stock {
		t.Fatalf("slowed memory draws %v, want below %v", got, stock)
	}
	if math.Abs(m.EffectiveMHz()-0.85*1333) > 1e-9 {
		t.Fatalf("effective clock = %v", m.EffectiveMHz())
	}
}

func TestClockRatioBounds(t *testing.T) {
	m := New(Kingston2x1GDDR3(), sim.NewClock())
	defer func() {
		if recover() == nil {
			t.Fatal("ratio 0 did not panic")
		}
	}()
	m.SetClockRatio(0)
}

func TestCapacity(t *testing.T) {
	m := New(Kingston2x1GDDR3(), sim.NewClock())
	if m.CapacityGB() != 2 {
		t.Fatalf("capacity = %v GB", m.CapacityGB())
	}
}

func TestTraceFollowsPower(t *testing.T) {
	clock := sim.NewClock()
	m := New(Kingston2x1GDDR3(), clock)
	clock.Advance(5 * sim.Second)
	m.SetClockRatio(0.9)
	clock.Advance(5 * sim.Second)
	e := m.Trace().Energy(0, clock.Now())
	if e <= 0 {
		t.Fatal("no energy recorded")
	}
	// Second half must be cheaper than the first.
	first := m.Trace().Energy(0, 5)
	second := m.Trace().Energy(5, 10)
	if second >= first {
		t.Fatalf("slowed half (%v) should cost less than stock half (%v)", second, first)
	}
}
