// Package mobo models the paper's ASUS P5Q3 Deluxe motherboard: its own
// power draw, the onboard EPU sensor that measures CPU package power (the
// paper's primary energy instrument), and the 6-Engine tuning software that
// applies underclocking, voltage downgrades, loadline and chipset settings
// to the platform.
package mobo

import (
	"ecodb/internal/energy"
	"ecodb/internal/hw/cpu"
	"ecodb/internal/hw/mem"
	"ecodb/internal/sim"
)

// Config describes the motherboard.
type Config struct {
	Model string
	// SoftOffW is the board's draw while soft-off (wake circuitry).
	SoftOffW energy.Watts
	// BaseW is the board's draw when powered on (chipset, VRM losses,
	// fans, onboard controllers) before any chipset downgrade.
	BaseW energy.Watts
	// CPUActivatedW is additional board draw activated when a CPU is
	// installed (VRM phases, CPU fan). The paper notes that installing
	// the CPU "likely activates other components on the motherboard".
	CPUActivatedW energy.Watts
	// ChipsetDowngradeSavesW is saved when the 6-Engine chipset voltage
	// downgrade is enabled.
	ChipsetDowngradeSavesW energy.Watts
}

// P5Q3Deluxe matches the paper's board, a "green"-marketed P45 board.
func P5Q3Deluxe() Config {
	return Config{
		Model:                  "ASUS P5Q3 Deluxe WiFi-AP",
		SoftOffW:               3.7,
		BaseW:                  12.8,
		CPUActivatedW:          3.6,
		ChipsetDowngradeSavesW: 1.4,
	}
}

// Motherboard is the simulated board. It owns the power trace for the
// board itself; the CPU, memory, disk and GPU record their own traces.
type Motherboard struct {
	cfg   Config
	clock *sim.Clock
	trace energy.Trace

	cpuInstalled      bool
	chipsetDowngraded bool
	on                bool
}

// New returns a powered-off Motherboard attached to clock.
func New(cfg Config, clock *sim.Clock) *Motherboard {
	m := &Motherboard{cfg: cfg, clock: clock}
	m.trace.Set(clock.Now(), 0) // soft-off draw is accounted by the PSU standby path
	return m
}

// Config returns the board configuration.
func (m *Motherboard) Config() Config { return m.cfg }

// Trace returns the board's DC power trace.
func (m *Motherboard) Trace() *energy.Trace { return &m.trace }

// SetCPUInstalled records whether a CPU is socketed, which activates
// additional board circuitry.
func (m *Motherboard) SetCPUInstalled(installed bool) {
	m.cpuInstalled = installed
	m.refresh()
}

// SetPower turns the board on or off (the case power button).
func (m *Motherboard) SetPower(on bool) {
	m.on = on
	m.refresh()
}

// On reports whether the board is powered.
func (m *Motherboard) On() bool { return m.on }

// SoftOffDC returns the board's DC draw while soft-off.
func (m *Motherboard) SoftOffDC() energy.Watts { return m.cfg.SoftOffW }

// Power returns the board's current DC draw.
func (m *Motherboard) Power() energy.Watts {
	if !m.on {
		return 0
	}
	w := m.cfg.BaseW
	if m.cpuInstalled {
		w += m.cfg.CPUActivatedW
	}
	if m.chipsetDowngraded {
		w -= m.cfg.ChipsetDowngradeSavesW
	}
	return w
}

func (m *Motherboard) refresh() {
	m.trace.Set(m.clock.Now(), m.Power())
}

// EPUSensor is the board's onboard CPU power sensor. It exposes the CPU
// package power trace the way the ASUS EPU does: a live wattage readout
// that external software (the 6-Engine GUI) samples about once per second.
type EPUSensor struct {
	cpu *cpu.CPU
}

// EPU returns the board's CPU power sensor for the installed processor.
func (m *Motherboard) EPU(c *cpu.CPU) *EPUSensor { return &EPUSensor{cpu: c} }

// ReadWatts returns the instantaneous CPU package power at instant t.
func (s *EPUSensor) ReadWatts(t sim.Time) energy.Watts { return s.cpu.Trace().At(t) }

// Trace exposes the underlying CPU power trace for exact integration
// (what a better instrument than the 1 Hz GUI would see).
func (s *EPUSensor) Trace() *energy.Trace { return s.cpu.Trace() }

// Tuner is the 6-Engine software facade: one object that pushes a platform
// power profile onto the CPU, memory and chipset together, the way the
// paper's experiments configure the machine.
type Tuner struct {
	board *Motherboard
	cpu   *cpu.CPU
	mem   *mem.Memory
}

// Tuner returns the 6-Engine control facade for the installed components.
func (m *Motherboard) Tuner(c *cpu.CPU, mm *mem.Memory) *Tuner {
	return &Tuner{board: m, cpu: c, mem: mm}
}

// Profile is a complete 6-Engine platform setting.
type Profile struct {
	// UnderclockFrac lowers the FSB by this fraction (0.05 = 5%).
	UnderclockFrac float64
	// Downgrade is the CPU voltage downgrade preset.
	Downgrade cpu.Downgrade
	// LightLoadline enables voltage droop under load ("CPU loadline:
	// light" in the paper's setup).
	LightLoadline bool
	// ChipsetDowngrade lowers chipset voltage ("chipset voltage
	// downgrade: on").
	ChipsetDowngrade bool
	// DeepIdle enables EPU idle management (immediate downshift and deep
	// halts during waits).
	DeepIdle bool
	// StallMultiplierCap engages the EPU's dynamic low-load downshift for
	// memory-stalled phases (0 disables it). The 6-Engine's milder
	// profile downshifts to 8×, its aggressive profile to 6×.
	StallMultiplierCap float64
}

// Stock is the factory configuration: no underclock, no downgrades, stock
// loadline, and the OS high-performance idle behaviour.
func Stock() Profile { return Profile{} }

// Tuned returns the paper's non-stock configuration at the given
// underclocking fraction and voltage downgrade: light loadline, chipset
// downgrade on, and EPU power management enabled, exactly the auxiliary
// settings §3.3 lists. The EPU's dynamic downshift depth follows the
// selected preset: the "small" profile downshifts stalled phases to 8×,
// the "medium" profile to 6×.
func Tuned(underclockFrac float64, d cpu.Downgrade) Profile {
	var stallCap float64
	switch d {
	case cpu.DowngradeSmall:
		stallCap = 8
	case cpu.DowngradeMedium:
		stallCap = 6
	}
	return Profile{
		UnderclockFrac:     underclockFrac,
		Downgrade:          d,
		LightLoadline:      true,
		ChipsetDowngrade:   true,
		DeepIdle:           true,
		StallMultiplierCap: stallCap,
	}
}

// Apply pushes the profile to all platform components.
func (t *Tuner) Apply(p Profile) {
	t.cpu.SetUnderclock(p.UnderclockFrac)
	t.cpu.SetDowngrade(p.Downgrade)
	if p.LightLoadline {
		t.cpu.SetLoadline(cpu.LoadlineLight)
	} else {
		t.cpu.SetLoadline(cpu.LoadlineStock)
	}
	t.cpu.SetDeepIdle(p.DeepIdle)
	t.cpu.SetStallMultiplierCap(p.StallMultiplierCap)
	t.board.chipsetDowngraded = p.ChipsetDowngrade
	t.board.refresh()
	if t.mem != nil {
		t.mem.SetClockRatio(1 - p.UnderclockFrac)
	}
}
