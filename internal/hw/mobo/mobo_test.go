package mobo

import (
	"testing"

	"ecodb/internal/hw/cpu"
	"ecodb/internal/hw/mem"
	"ecodb/internal/sim"
)

func testBoard(t testing.TB) (*Motherboard, *cpu.CPU, *mem.Memory, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	b := New(P5Q3Deluxe(), clock)
	c := cpu.New(cpu.E8500(), clock)
	m := mem.New(mem.Kingston2x1GDDR3(), clock)
	return b, c, m, clock
}

func TestBoardPowerStates(t *testing.T) {
	b, _, _, _ := testBoard(t)
	if b.Power() != 0 {
		t.Fatal("off board should draw 0 on the DC trace")
	}
	b.SetPower(true)
	base := b.Power()
	if base <= 0 {
		t.Fatal("powered board should draw")
	}
	b.SetCPUInstalled(true)
	if b.Power() <= base {
		t.Fatal("installing a CPU should activate extra board circuitry")
	}
}

func TestTunedProfileSettings(t *testing.T) {
	p := Tuned(0.10, cpu.DowngradeMedium)
	if p.UnderclockFrac != 0.10 || p.Downgrade != cpu.DowngradeMedium {
		t.Fatalf("profile = %+v", p)
	}
	if !p.LightLoadline || !p.ChipsetDowngrade || !p.DeepIdle {
		t.Fatal("tuned profile must enable the paper's auxiliary settings")
	}
	if p.StallMultiplierCap != 6 {
		t.Fatalf("medium stall cap = %v, want 6", p.StallMultiplierCap)
	}
	if Tuned(0.05, cpu.DowngradeSmall).StallMultiplierCap != 8 {
		t.Fatal("small stall cap should be 8")
	}
	if Stock() != (Profile{}) {
		t.Fatal("stock profile should be the zero value")
	}
}

func TestTunerAppliesEverything(t *testing.T) {
	b, c, m, _ := testBoard(t)
	b.SetPower(true)
	tuner := b.Tuner(c, m)
	onPower := b.Power()

	tuner.Apply(Tuned(0.10, cpu.DowngradeSmall))
	if c.Underclock() != 0.10 {
		t.Fatal("underclock not applied")
	}
	if c.Downgrade() != cpu.DowngradeSmall {
		t.Fatal("downgrade not applied")
	}
	if m.EffectiveMHz() >= 1333 {
		t.Fatal("memory clock not slowed")
	}
	if b.Power() >= onPower {
		t.Fatal("chipset downgrade not applied")
	}

	tuner.Apply(Stock())
	if c.Underclock() != 0 || c.Downgrade() != cpu.DowngradeNone {
		t.Fatal("stock profile not restored")
	}
	if m.EffectiveMHz() != 1333 {
		t.Fatal("memory clock not restored")
	}
}

func TestTunedLowersIdleAndBusyPower(t *testing.T) {
	b, c, m, _ := testBoard(t)
	b.SetPower(true)
	tuner := b.Tuner(c, m)

	stockIdle := c.IdlePower()
	stockBusy := c.BusyPower(cpu.Compute)
	stockStall := c.BusyPower(cpu.MemStall)
	tuner.Apply(Tuned(0.05, cpu.DowngradeMedium))
	if c.IdlePower() >= stockIdle {
		t.Fatal("tuned idle power should drop (deep idle + downgrade)")
	}
	if c.BusyPower(cpu.Compute) >= stockBusy {
		t.Fatal("tuned busy power should drop")
	}
	// The EPU stall downshift makes memory-stalled power drop much more
	// than proportionally.
	stallRatio := float64(c.BusyPower(cpu.MemStall)) / float64(stockStall)
	busyRatio := float64(c.BusyPower(cpu.Compute)) / float64(stockBusy)
	if stallRatio >= busyRatio {
		t.Fatalf("stall power ratio %v should undercut compute ratio %v (EPU downshift)",
			stallRatio, busyRatio)
	}
}

func TestEPUSensorReadsCPUTrace(t *testing.T) {
	b, c, _, clock := testBoard(t)
	epu := b.EPU(c)
	idle := epu.ReadWatts(clock.Now())
	c.Run(3e9, cpu.Compute)
	// Mid-run reading (probe just after the run started).
	busyAt := clock.Now().Sub(0) / 2
	busy := epu.ReadWatts(sim.Time(busyAt))
	if busy <= idle {
		t.Fatalf("EPU busy reading %v should exceed idle %v", busy, idle)
	}
	if epu.Trace() != c.Trace() {
		t.Fatal("EPU trace should be the CPU trace")
	}
}
