// Package psu models a switching power supply's conversion loss: the wall
// draw is the DC load divided by a load-dependent efficiency, plus a fixed
// conversion overhead. The paper estimates its Corsair VX450W at about 83%
// efficiency near the system's ~20% load point and notes that all Table 1
// readings "contain a significant amount of PSU losses".
package psu

import (
	"fmt"

	"ecodb/internal/energy"
)

// Config describes a power supply unit.
type Config struct {
	Model  string
	RatedW float64

	// StandbyW is the wall draw with the system soft-off (the +5 V
	// standby rail and control circuitry).
	StandbyW energy.Watts
	// FixedLossW is the conversion overhead while the supply is on,
	// independent of load.
	FixedLossW energy.Watts
	// EfficiencyCurve maps load fraction (DC watts / RatedW) to
	// efficiency, as (loadFraction, efficiency) breakpoints in ascending
	// load order; efficiency is interpolated linearly between them.
	EfficiencyCurve [][2]float64
}

// VX450W matches the paper's Corsair VX450W, an 80plus unit: ~83%
// efficient near 20% load, peaking mid-curve, sagging at very low loads.
func VX450W() Config {
	return Config{
		Model:  "Corsair VX450W",
		RatedW: 450,
		// Wall standby of the PSU alone; the motherboard's soft-off draw
		// is modelled by the motherboard (together they reproduce the
		// paper's 9.2 W system-off reading).
		StandbyW:   5.5,
		FixedLossW: 1.6,
		EfficiencyCurve: [][2]float64{
			{0.00, 0.60},
			{0.05, 0.76},
			{0.10, 0.81},
			{0.20, 0.84},
			{0.50, 0.86},
			{1.00, 0.82},
		},
	}
}

// PSU converts a DC load into the corresponding wall draw.
type PSU struct {
	cfg Config
}

// New returns a PSU with the given configuration. It panics on an empty or
// unordered efficiency curve.
func New(cfg Config) *PSU {
	if len(cfg.EfficiencyCurve) == 0 {
		panic("psu: empty efficiency curve")
	}
	for i := 1; i < len(cfg.EfficiencyCurve); i++ {
		if cfg.EfficiencyCurve[i][0] <= cfg.EfficiencyCurve[i-1][0] {
			panic("psu: efficiency curve breakpoints must ascend")
		}
	}
	return &PSU{cfg: cfg}
}

// Config returns the supply's configuration.
func (p *PSU) Config() Config { return p.cfg }

// Efficiency returns the conversion efficiency at the given DC load.
func (p *PSU) Efficiency(dc energy.Watts) float64 {
	frac := float64(dc) / p.cfg.RatedW
	curve := p.cfg.EfficiencyCurve
	if frac <= curve[0][0] {
		return curve[0][1]
	}
	for i := 1; i < len(curve); i++ {
		if frac <= curve[i][0] {
			lo, hi := curve[i-1], curve[i]
			t := (frac - lo[0]) / (hi[0] - lo[0])
			return lo[1] + t*(hi[1]-lo[1])
		}
	}
	return curve[len(curve)-1][1]
}

// Wall returns the wall draw for a DC load with the system on.
// Negative loads panic.
func (p *PSU) Wall(dc energy.Watts) energy.Watts {
	if dc < 0 {
		panic(fmt.Sprintf("psu: negative DC load %v", dc))
	}
	return p.cfg.FixedLossW + energy.Watts(float64(dc)/p.Efficiency(dc))
}

// StandbyWall returns the wall draw with the system soft-off.
func (p *PSU) StandbyWall() energy.Watts { return p.cfg.StandbyW }
