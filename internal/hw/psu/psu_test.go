package psu

import (
	"math"
	"testing"
	"testing/quick"

	"ecodb/internal/energy"
)

func TestEfficiencyInterpolation(t *testing.T) {
	p := New(VX450W())
	// Paper: "we estimate that the power efficiency of the PSU is around
	// 83%, given the near 20% load".
	eff := p.Efficiency(energy.Watts(0.2 * 450))
	if math.Abs(eff-0.84) > 0.02 {
		t.Fatalf("efficiency at 20%% load = %v, want ≈0.83-0.84", eff)
	}
}

func TestEfficiencyEndpoints(t *testing.T) {
	p := New(VX450W())
	curve := p.Config().EfficiencyCurve
	if got := p.Efficiency(0); got != curve[0][1] {
		t.Fatalf("zero-load efficiency = %v", got)
	}
	if got := p.Efficiency(energy.Watts(2 * 450)); got != curve[len(curve)-1][1] {
		t.Fatalf("overload efficiency = %v", got)
	}
}

func TestWallExceedsDC(t *testing.T) {
	p := New(VX450W())
	f := func(raw uint16) bool {
		dc := energy.Watts(float64(raw%400) + 1)
		return p.Wall(dc) > dc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWallMonotonicInLoad(t *testing.T) {
	p := New(VX450W())
	prev := energy.Watts(0)
	for dc := 1.0; dc <= 450; dc += 1 {
		w := p.Wall(energy.Watts(dc))
		if w <= prev {
			t.Fatalf("wall power not monotonic at %vW DC", dc)
		}
		prev = w
	}
}

func TestNegativeLoadPanics(t *testing.T) {
	p := New(VX450W())
	defer func() {
		if recover() == nil {
			t.Fatal("negative load did not panic")
		}
	}()
	p.Wall(-1)
}

func TestStandby(t *testing.T) {
	p := New(VX450W())
	if p.StandbyWall() != p.Config().StandbyW {
		t.Fatal("standby mismatch")
	}
}

func TestBadCurvePanics(t *testing.T) {
	mustPanic := func(name string, cfg Config) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		New(cfg)
	}
	mustPanic("empty curve", Config{RatedW: 100})
	mustPanic("unordered curve", Config{
		RatedW:          100,
		EfficiencyCurve: [][2]float64{{0.5, 0.8}, {0.1, 0.7}},
	})
}
