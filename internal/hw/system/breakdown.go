package system

import (
	"fmt"
	"strings"

	"ecodb/internal/energy"
	"ecodb/internal/hw/cpu"
	"ecodb/internal/hw/disk"
	"ecodb/internal/hw/mem"
	"ecodb/internal/hw/mobo"
	"ecodb/internal/hw/psu"
	"ecodb/internal/sim"
)

// BreakdownStage is one row of the paper's Table 1: a set of installed
// components and the wall power measured with them.
type BreakdownStage struct {
	Label string
	// Components present, mirroring Table 1's columns.
	CPU, RAM1G, RAM2G, GPU, SysOn bool
	// WallW is the simulated wall reading for this build stage.
	WallW energy.Watts
}

// PowerBreakdown reproduces the paper's Table 1 experiment: starting from
// just the PSU and motherboard, components are added one at a time and the
// wall draw is measured at each stage. The measurements are taken with no
// disk and no operating system (as in the paper), so the CPU spins in
// firmware at the top p-state on one core.
func PowerBreakdown() []BreakdownStage {
	stages := []struct {
		label                       string
		cpu, ram1, ram2, gpu, sysOn bool
	}{
		{"PSU+MOBO, system off", false, false, false, false, false},
		{"PSU+MOBO", false, false, false, false, true},
		{"+CPU (with fan)", true, false, false, false, true},
		{"+1G RAM", true, true, false, false, true},
		{"+2G RAM", true, true, true, false, true},
		{"+GPU", true, true, true, true, true},
	}

	out := make([]BreakdownStage, 0, len(stages))
	for _, s := range stages {
		m := buildStage(s.cpu, s.ram1, s.ram2, s.gpu, s.sysOn)
		out = append(out, BreakdownStage{
			Label: s.label,
			CPU:   s.cpu, RAM1G: s.ram1, RAM2G: s.ram2, GPU: s.gpu, SysOn: s.sysOn,
			WallW: m.WallPowerAt(m.Clock.Now()),
		})
	}
	return out
}

// buildStage assembles a partially populated machine. Components that are
// not installed contribute no draw (zero-DIMM memory, powered-off GPU).
func buildStage(withCPU, ram1, ram2, withGPU, sysOn bool) *Machine {
	clock := sim.NewClock()
	memCfg := mem.Kingston2x1GDDR3()
	switch {
	case ram1 && ram2:
		memCfg.DIMMs = 2
	case ram1:
		memCfg.DIMMs = 1
	default:
		memCfg.DIMMs = 0
	}
	m := &Machine{
		Clock: clock,
		Mem:   mem.New(memCfg, clock),
		Disk:  disk.New(disk.CaviarSE16(), clock), // constructed but unplugged below
		GPU:   GeForce8400GS(clock),
		Board: mobo.New(mobo.P5Q3Deluxe(), clock),
		PSU:   psu.New(psu.VX450W()),
	}
	// Table 1 is measured without the disk: silence its idle draw.
	m.Disk.Line5V().Set(clock.Now(), 0)
	m.Disk.Line12V().Set(clock.Now(), 0)

	// firmwareActivity is the switching activity of the BIOS boot-screen
	// spin loop: one core polling, far below a database workload's IPC.
	const firmwareActivity = 0.68

	m.CPU = cpu.New(cpu.E8500(), clock)
	if withCPU {
		m.Board.SetCPUInstalled(true)
		if sysOn {
			// No OS: firmware spins one core at the top p-state.
			m.CPU.Trace().Set(clock.Now(), m.CPU.PowerAt(m.CPU.TopPState(), firmwareActivity, 1))
		}
	} else {
		m.CPU.Trace().Set(clock.Now(), 0)
	}
	if !withGPU {
		m.GPU.SetPower(false)
	} else {
		m.GPU.SetPower(sysOn)
	}
	m.Board.SetPower(sysOn)
	if !sysOn {
		m.CPU.Trace().Set(clock.Now(), 0)
	}
	return m
}

// FormatBreakdown renders stages as the paper's Table 1.
func FormatBreakdown(stages []BreakdownStage) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-6s %-6s %-6s %-5s %-7s %9s\n",
		"Stage", "CPU", "1G RAM", "2G RAM", "GPU", "SYS ON", "Measured")
	mark := func(v bool) string {
		if v {
			return "X"
		}
		return "x"
	}
	for _, s := range stages {
		fmt.Fprintf(&b, "%-24s %-6s %-6s %-6s %-5s %-7s %8.1fW\n",
			s.Label, mark(s.CPU), mark(s.RAM1G), mark(s.RAM2G), mark(s.GPU), mark(s.SysOn),
			float64(s.WallW))
	}
	return b.String()
}
