// Package system assembles the paper's system under test: ASUS P5Q3 Deluxe
// board, Intel E8500, 2×1 GB DDR3, GeForce 8400GS, WD Caviar SE16 disk and
// a Corsair VX450W supply, measured at the wall by a Yokogawa WT210. It
// provides the component-staging power breakdown of the paper's Table 1 and
// the blocking-I/O orchestration that ties CPU waits to disk service times.
package system

import (
	"ecodb/internal/energy"
	"ecodb/internal/hw/cpu"
	"ecodb/internal/hw/disk"
	"ecodb/internal/hw/mem"
	"ecodb/internal/hw/mobo"
	"ecodb/internal/hw/psu"
	"ecodb/internal/sim"
)

// GPU is a discrete graphics card modelled as a constant draw; the paper
// notes database servers may not need one, and it only matters for the
// wall-power breakdown.
type GPU struct {
	Model string
	IdleW energy.Watts

	clock *sim.Clock
	trace energy.Trace
	on    bool
}

// GeForce8400GS matches the paper's ASUS GeForce 8400GS 256M.
func GeForce8400GS(clock *sim.Clock) *GPU {
	g := &GPU{Model: "ASUS GeForce 8400GS 256M", IdleW: 11.7, clock: clock}
	g.trace.Set(clock.Now(), 0)
	return g
}

// Trace returns the GPU power trace.
func (g *GPU) Trace() *energy.Trace { return &g.trace }

// SetPower turns the card's draw on or off with the system.
func (g *GPU) SetPower(on bool) {
	g.on = on
	if on {
		g.trace.Set(g.clock.Now(), g.IdleW)
	} else {
		g.trace.Set(g.clock.Now(), 0)
	}
}

// Machine is a fully assembled system under test sharing one virtual clock.
type Machine struct {
	Clock *sim.Clock
	CPU   *cpu.CPU
	Mem   *mem.Memory
	Disk  *disk.Disk
	GPU   *GPU
	Board *mobo.Motherboard
	PSU   *psu.PSU
}

// NewSUT assembles the paper's system under test with all components
// installed and powered on.
func NewSUT() *Machine {
	clock := sim.NewClock()
	m := &Machine{
		Clock: clock,
		CPU:   cpu.New(cpu.E8500(), clock),
		Mem:   mem.New(mem.Kingston2x1GDDR3(), clock),
		Disk:  disk.New(disk.CaviarSE16(), clock),
		GPU:   GeForce8400GS(clock),
		Board: mobo.New(mobo.P5Q3Deluxe(), clock),
		PSU:   psu.New(psu.VX450W()),
	}
	m.Board.SetCPUInstalled(true)
	m.Board.SetPower(true)
	m.GPU.SetPower(true)
	return m
}

// Tuner returns the 6-Engine facade controlling this machine's platform.
func (m *Machine) Tuner() *mobo.Tuner { return m.Board.Tuner(m.CPU, m.Mem) }

// EPU returns the board's CPU power sensor.
func (m *Machine) EPU() *mobo.EPUSensor { return m.Board.EPU(m.CPU) }

// CPUModel returns the machine's processor; it satisfies the engine's
// Machine interface.
func (m *Machine) CPUModel() *cpu.CPU { return m.CPU }

// BlockingRead performs one synchronous disk read: the disk services the
// request while the CPU idles, and the clock advances once by the service
// time. This is how query execution charges I/O waits.
func (m *Machine) BlockingRead(n int64, pattern disk.Pattern) sim.Duration {
	d := m.Disk.Read(n, pattern)
	m.CPU.Wait(d)
	return d
}

// dcTraces lists every DC-side component trace.
func (m *Machine) dcTraces() []*energy.Trace {
	return []*energy.Trace{
		m.CPU.Trace(), m.Mem.Trace(), m.Disk.Line5V(), m.Disk.Line12V(),
		m.GPU.Trace(), m.Board.Trace(),
	}
}

// DCPowerAt returns the summed component DC draw at instant t.
func (m *Machine) DCPowerAt(t sim.Time) energy.Watts {
	return energy.TotalAt(t, m.dcTraces()...)
}

// WallPowerAt returns the wall draw at instant t — what the Yokogawa WT210
// reads — including PSU conversion loss and standby draw.
func (m *Machine) WallPowerAt(t sim.Time) energy.Watts {
	dc := m.DCPowerAt(t)
	if !m.Board.On() {
		return m.PSU.StandbyWall() + m.Board.SoftOffDC()
	}
	return m.PSU.Wall(dc)
}

// WallEnergy integrates wall power over [t0, t1] exactly, applying the
// PSU's load-dependent efficiency instant by instant.
func (m *Machine) WallEnergy(t0, t1 sim.Time) energy.Joules {
	if !m.Board.On() {
		return (m.PSU.StandbyWall() + m.Board.SoftOffDC()).For(t1.Sub(t0).Seconds())
	}
	return energy.Integrate(t0, t1, func(dc energy.Watts) energy.Watts {
		return m.PSU.Wall(dc)
	}, m.dcTraces()...)
}

// DCEnergy integrates the summed component DC draw over [t0, t1].
func (m *Machine) DCEnergy(t0, t1 sim.Time) energy.Joules {
	return energy.Integrate(t0, t1, nil, m.dcTraces()...)
}
