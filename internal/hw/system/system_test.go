package system

import (
	"math"
	"testing"

	"ecodb/internal/hw/cpu"
	"ecodb/internal/hw/disk"
	"ecodb/internal/hw/mobo"
	"ecodb/internal/sim"
)

func TestPowerBreakdownMatchesPaper(t *testing.T) {
	paper := []float64{9.2, 20.1, 49.7, 54.0, 55.7, 69.3}
	stages := PowerBreakdown()
	if len(stages) != len(paper) {
		t.Fatalf("breakdown has %d stages, want %d", len(stages), len(paper))
	}
	for i, s := range stages {
		if math.Abs(float64(s.WallW)-paper[i]) > 0.5 {
			t.Errorf("stage %q = %.1fW, paper %.1fW (tolerance 0.5W)",
				s.Label, float64(s.WallW), paper[i])
		}
	}
	// Monotone: adding components never lowers the wall draw.
	for i := 1; i < len(stages); i++ {
		if stages[i].WallW < stages[i-1].WallW {
			t.Fatalf("stage %d draw decreased", i)
		}
	}
}

func TestFormatBreakdown(t *testing.T) {
	out := FormatBreakdown(PowerBreakdown())
	if out == "" {
		t.Fatal("empty breakdown rendering")
	}
}

func TestWallIncludesPSULoss(t *testing.T) {
	m := NewSUT()
	tNow := m.Clock.Now()
	dc := m.DCPowerAt(tNow)
	wall := m.WallPowerAt(tNow)
	if wall <= dc {
		t.Fatalf("wall %v must exceed DC %v (conversion loss)", wall, dc)
	}
}

func TestSoftOffWall(t *testing.T) {
	m := NewSUT()
	m.Board.SetPower(false)
	wall := m.WallPowerAt(m.Clock.Now())
	// Soft-off draw: PSU standby + board wake circuitry ≈ 9.2 W.
	if math.Abs(float64(wall)-9.2) > 0.5 {
		t.Fatalf("soft-off wall = %v, want ≈9.2W", wall)
	}
}

func TestBlockingReadAdvancesOnce(t *testing.T) {
	m := NewSUT()
	before := m.Clock.Now()
	d := m.BlockingRead(64<<10, disk.Random)
	if d <= 0 {
		t.Fatal("read took no time")
	}
	if got := m.Clock.Now().Sub(before); got != d {
		t.Fatalf("clock advanced %v, want exactly the service time %v", got, d)
	}
}

func TestBlockingReadChargesBothComponents(t *testing.T) {
	m := NewSUT()
	t0 := m.Clock.Now()
	m.BlockingRead(1<<20, disk.Random)
	t1 := m.Clock.Now()
	if m.Disk.Energy(t0, t1) <= 0 {
		t.Fatal("disk energy not charged")
	}
	cpuE := m.CPU.Trace().Energy(t0, t1)
	wantIdle := float64(m.CPU.IdlePower()) * t1.Sub(t0).Seconds()
	if math.Abs(float64(cpuE)-wantIdle) > 1e-6 {
		t.Fatalf("CPU charged %v during I/O, want idle energy %v", cpuE, wantIdle)
	}
}

func TestWallEnergyIntegratesAllComponents(t *testing.T) {
	m := NewSUT()
	t0 := m.Clock.Now()
	m.CPU.Run(3e9, cpu.Compute)
	m.BlockingRead(512<<10, disk.Sequential)
	t1 := m.Clock.Now()

	dcE := m.DCEnergy(t0, t1)
	wallE := m.WallEnergy(t0, t1)
	if wallE <= dcE {
		t.Fatalf("wall energy %v must exceed DC energy %v", wallE, dcE)
	}
	// Average wall power must sit between the DC draw and 2× DC.
	avgWall := float64(wallE) / t1.Sub(t0).Seconds()
	avgDC := float64(dcE) / t1.Sub(t0).Seconds()
	if avgWall > 2*avgDC {
		t.Fatalf("implausible PSU loss: wall %v vs DC %v", avgWall, avgDC)
	}
}

// The paper notes the whole-system saving is much smaller than the CPU
// saving (Figure 1: 49% CPU energy vs only ~6% system energy); verify the
// machine reproduces that dilution.
func TestSystemSavingSmallerThanCPUSaving(t *testing.T) {
	run := func(tuned bool) (cpuJ, wallJ float64) {
		m := NewSUT()
		if tuned {
			m.Tuner().Apply(mobo.Tuned(0.05, cpu.DowngradeMedium))
		}
		t0 := m.Clock.Now()
		// A busy/stall mix resembling the commercial workload.
		for i := 0; i < 10; i++ {
			m.CPU.Run(3e8, cpu.Compute)
			m.CPU.Run(1e9, cpu.MemStall)
		}
		t1 := m.Clock.Now()
		return float64(m.CPU.Trace().Energy(t0, t1)), float64(m.WallEnergy(t0, t1))
	}
	stockCPU, stockWall := run(false)
	tunedCPU, tunedWall := run(true)

	cpuSaving := 1 - tunedCPU/stockCPU
	wallSaving := 1 - tunedWall/stockWall
	if cpuSaving <= 0 {
		t.Fatal("tuned run should save CPU energy")
	}
	if !(wallSaving < cpuSaving) {
		t.Fatalf("system saving %.1f%% should be diluted below CPU saving %.1f%%",
			wallSaving*100, cpuSaving*100)
	}
}

func TestSUTComponentsShareClock(t *testing.T) {
	m := NewSUT()
	if m.CPU.Clock() != m.Clock {
		t.Fatal("CPU clock mismatch")
	}
	m.CPU.Run(1e9, cpu.Compute)
	if m.Clock.Now() == 0 {
		t.Fatal("shared clock did not advance")
	}
}

func TestGPUPower(t *testing.T) {
	clock := sim.NewClock()
	g := GeForce8400GS(clock)
	g.SetPower(true)
	if g.Trace().At(clock.Now()) != g.IdleW {
		t.Fatal("GPU on should draw idle watts")
	}
	g.SetPower(false)
	if g.Trace().At(clock.Now()) != 0 {
		t.Fatal("GPU off should draw nothing")
	}
}
