// Package meter implements the paper's measurement methodology (§3.1):
//
//   - CPU power is read from the motherboard's EPU sensor through a GUI
//     that refreshes about once per second, so "CPU joules was recorded as
//     the average sampled wattage multiplied by the workload execution
//     time".
//   - Each workload is run five times; the top and bottom readings are
//     discarded and the middle three averaged.
//   - Disk energy is measured by clamping current meters on the drive's
//     5 V and 12 V supply lines and summing the two energies.
package meter

import (
	"fmt"
	"sort"

	"ecodb/internal/energy"
	"ecodb/internal/sim"
)

// GUISampler measures a power trace the way the paper samples the ASUS
// 6-Engine display: instantaneous readings on a fixed refresh interval,
// energy = mean reading × duration. A phase RNG (optional) randomizes the
// sampling phase per measurement, modelling the uncontrolled alignment of
// the GUI refresh with the workload.
type GUISampler struct {
	// Interval is the refresh period; the 6-Engine refreshes ~1 s.
	Interval sim.Duration
	// Phase, if non-nil, draws a random initial offset in [0, Interval)
	// for each measurement.
	Phase *sim.RNG
}

// NewGUISampler returns a sampler with the paper's ~1 s refresh.
func NewGUISampler() *GUISampler { return &GUISampler{Interval: sim.Second} }

// Measure estimates the energy of trace over [t0, t1] from periodic
// instantaneous samples. Windows shorter than one interval fall back to a
// single reading at t0.
func (g *GUISampler) Measure(tr *energy.Trace, t0, t1 sim.Time) energy.Joules {
	if t1 <= t0 {
		return 0
	}
	iv := g.Interval
	if iv <= 0 {
		iv = sim.Second
	}
	start := t0
	if g.Phase != nil {
		start = t0.Add(sim.Duration(g.Phase.Float64() * float64(iv)))
	}
	samples := tr.Sample(start, t1, iv)
	if len(samples) == 0 {
		samples = []energy.Watts{tr.At(t0)}
	}
	var sum float64
	for _, w := range samples {
		sum += float64(w)
	}
	mean := sum / float64(len(samples))
	return energy.Watts(mean).For(t1.Sub(t0).Seconds())
}

// Reading is one measured workload execution.
type Reading struct {
	Energy energy.Joules
	Time   sim.Duration
}

// EDP returns the reading's energy-delay product.
func (r Reading) EDP() energy.EDP { return energy.EDPOf(r.Energy, r.Time.Seconds()) }

func (r Reading) String() string {
	return fmt.Sprintf("%.1fJ over %v", float64(r.Energy), r.Time)
}

// Protocol runs a workload measurement the paper's way: repeat Runs times,
// sort by energy, discard the top and bottom readings, and average the
// rest. Fewer than three runs are averaged directly.
type Protocol struct {
	Runs int
}

// NewProtocol returns the paper's five-run protocol.
func NewProtocol() *Protocol { return &Protocol{Runs: 5} }

// Execute calls run once per repetition and reduces the readings.
// It panics if Runs is not positive.
func (p *Protocol) Execute(run func(rep int) Reading) Reading {
	if p.Runs <= 0 {
		panic("meter: protocol needs at least one run")
	}
	readings := make([]Reading, p.Runs)
	for i := range readings {
		readings[i] = run(i)
	}
	return Reduce(readings)
}

// Reduce applies the discard-extremes-and-average step to a set of
// readings: they are ordered by energy, the first and last dropped when
// there are at least three, and the remainder averaged component-wise.
func Reduce(readings []Reading) Reading {
	if len(readings) == 0 {
		return Reading{}
	}
	sorted := make([]Reading, len(readings))
	copy(sorted, readings)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Energy < sorted[j].Energy })
	if len(sorted) >= 3 {
		sorted = sorted[1 : len(sorted)-1]
	}
	var e, t float64
	for _, r := range sorted {
		e += float64(r.Energy)
		t += float64(r.Time)
	}
	n := float64(len(sorted))
	return Reading{Energy: energy.Joules(e / n), Time: sim.Duration(t / n)}
}

// LineMeter integrates energy on a supply line exactly, like the current
// probes the paper attaches to the disk's 5 V and 12 V lines.
type LineMeter struct {
	Line *energy.Trace
}

// Energy returns the line's energy over [t0, t1].
func (l LineMeter) Energy(t0, t1 sim.Time) energy.Joules {
	return l.Line.Energy(t0, t1)
}

// SumLines totals the energy measured on several lines over [t0, t1] —
// the paper "summed up the energy consumption to compute the overall
// energy consumption of the hard disk drive".
func SumLines(t0, t1 sim.Time, lines ...*energy.Trace) energy.Joules {
	var e energy.Joules
	for _, tr := range lines {
		e += tr.Energy(t0, t1)
	}
	return e
}
