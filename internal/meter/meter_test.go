package meter

import (
	"math"
	"testing"

	"ecodb/internal/energy"
	"ecodb/internal/sim"
)

func TestGUISamplerConstantPower(t *testing.T) {
	var tr energy.Trace
	tr.Set(0, 25)
	g := NewGUISampler()
	got := g.Measure(&tr, 0, 10)
	if math.Abs(float64(got)-250) > 1e-9 {
		t.Fatalf("constant 25W over 10s = %v, want 250J", got)
	}
}

func TestGUISamplerQuantization(t *testing.T) {
	// Power spikes to 100W for 100ms once per second, 0W otherwise:
	// exact energy is 10×0.1×100 = 100J, but samples at whole seconds
	// read the idle phase and report ≈0 — the paper methodology's
	// aliasing, reproduced.
	var tr energy.Trace
	for s := 0; s < 10; s++ {
		tr.Set(sim.Time(s)+0.5, 100)
		tr.Set(sim.Time(s)+0.6, 0)
	}
	g := NewGUISampler()
	got := g.Measure(&tr, 0, 10)
	exact := tr.Energy(0, 10)
	if math.Abs(float64(exact)-100) > 1e-9 {
		t.Fatalf("exact energy = %v, want 100J", exact)
	}
	if got != 0 {
		t.Fatalf("aliased measurement = %v, want 0 (sampler misses the spikes)", got)
	}
}

func TestGUISamplerPhaseChangesReading(t *testing.T) {
	var tr energy.Trace
	tr.Set(0, 0)
	tr.Set(0.5, 50) // power steps mid-interval
	g := NewGUISampler()
	noPhase := g.Measure(&tr, 0, 4)

	g.Phase = sim.NewRNG(3)
	withPhase := g.Measure(&tr, 0, 4)
	if noPhase == withPhase {
		t.Log("phase draw happened to land on the same grid; acceptable but unlikely")
	}
	// Either way the reading must be within the trace's power range.
	for _, v := range []energy.Joules{noPhase, withPhase} {
		if v < 0 || v > 200 {
			t.Fatalf("reading %v outside plausible [0,200J]", v)
		}
	}
}

func TestGUISamplerShortWindow(t *testing.T) {
	var tr energy.Trace
	tr.Set(0, 40)
	g := NewGUISampler()
	got := g.Measure(&tr, 0, 0.25) // shorter than one refresh
	if math.Abs(float64(got)-10) > 1e-9 {
		t.Fatalf("short window = %v, want 10J", got)
	}
}

func TestReduceDiscardsExtremes(t *testing.T) {
	readings := []Reading{
		{Energy: 100, Time: 10},
		{Energy: 10, Time: 1}, // low outlier
		{Energy: 105, Time: 11},
		{Energy: 500, Time: 50}, // high outlier
		{Energy: 95, Time: 9},
	}
	got := Reduce(readings)
	if math.Abs(float64(got.Energy)-100) > 1e-9 {
		t.Fatalf("reduced energy = %v, want 100", got.Energy)
	}
	if math.Abs(float64(got.Time)-10) > 1e-9 {
		t.Fatalf("reduced time = %v, want 10", got.Time)
	}
}

func TestReduceFewReadings(t *testing.T) {
	got := Reduce([]Reading{{Energy: 10, Time: 1}, {Energy: 20, Time: 2}})
	if got.Energy != 15 || got.Time != 1.5 {
		t.Fatalf("two-reading reduce = %+v", got)
	}
	if r := Reduce(nil); r.Energy != 0 || r.Time != 0 {
		t.Fatal("empty reduce should be zero")
	}
}

func TestProtocolExecutesAllRuns(t *testing.T) {
	p := NewProtocol()
	var calls int
	p.Execute(func(rep int) Reading {
		calls++
		return Reading{Energy: energy.Joules(rep), Time: sim.Duration(rep)}
	})
	if calls != 5 {
		t.Fatalf("protocol ran %d times, want 5", calls)
	}
}

func TestProtocolInvalidRunsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-run protocol did not panic")
		}
	}()
	(&Protocol{}).Execute(func(int) Reading { return Reading{} })
}

func TestReadingEDP(t *testing.T) {
	r := Reading{Energy: 100, Time: 2}
	if got := r.EDP(); got != 200 {
		t.Fatalf("EDP = %v", got)
	}
}

func TestSumLines(t *testing.T) {
	var a, b energy.Trace
	a.Set(0, 2)
	b.Set(0, 3)
	if got := SumLines(0, 10, &a, &b); got != 50 {
		t.Fatalf("SumLines = %v, want 50", got)
	}
	if got := (LineMeter{Line: &a}).Energy(0, 10); got != 20 {
		t.Fatalf("LineMeter = %v, want 20", got)
	}
}
