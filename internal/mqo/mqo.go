// Package mqo implements the multi-query optimization QED relies on (§4):
// structurally identical single-table selection queries are merged into one
// query whose predicate is the disjunction of the originals, the merged
// query runs once, and the combined result is split back per query in
// application logic — whose time and energy cost the paper explicitly
// charges to the measurement.
package mqo

import (
	"fmt"

	"ecodb/internal/catalog"
	"ecodb/internal/expr"
	"ecodb/internal/plan"
)

// Selection describes one mergeable query: a full-row scan of a table with
// a single-column equality predicate.
type Selection struct {
	Table *catalog.Table
	Col   int
	Value expr.Value
}

// ExtractSelection recognizes a mergeable query shape. It returns false
// for anything other than Scan(table, col = const).
func ExtractSelection(n plan.Node) (Selection, bool) {
	scan, ok := n.(*plan.Scan)
	if !ok || scan.Filter == nil {
		return Selection{}, false
	}
	cmp, ok := scan.Filter.(expr.Cmp)
	if !ok || cmp.Op != expr.EQ {
		return Selection{}, false
	}
	col, ok := cmp.L.(expr.Col)
	if !ok {
		return Selection{}, false
	}
	c, ok := cmp.R.(expr.Const)
	if !ok {
		return Selection{}, false
	}
	return Selection{Table: scan.Table, Col: col.Idx, Value: c.V}, true
}

// MergeStrategy selects how the merged predicate is built.
type MergeStrategy int

const (
	// OrChain evaluates the disjunction left to right, as the paper's
	// engines do for a predicate disjunction: per-row cost grows linearly
	// with the batch size.
	OrChain MergeStrategy = iota
	// HashSet evaluates membership with a hash probe: constant per-row
	// cost. This is the "smarter plan" extension ecoDB provides beyond
	// the paper; the ablation bench compares the two.
	HashSet
)

func (s MergeStrategy) String() string {
	if s == HashSet {
		return "hash-set"
	}
	return "or-chain"
}

// Merged is a batch of selections compiled into one plan.
type Merged struct {
	Plan       plan.Node
	Selections []Selection
	Strategy   MergeStrategy
}

// Merge combines mergeable queries into a single disjunctive query.
// It fails if the queries are not all selections on the same table and
// column, or if fewer than two queries are given.
func Merge(queries []plan.Node, strategy MergeStrategy) (*Merged, error) {
	if len(queries) < 2 {
		return nil, fmt.Errorf("mqo: need at least 2 queries to merge, got %d", len(queries))
	}
	sels := make([]Selection, len(queries))
	for i, q := range queries {
		sel, ok := ExtractSelection(q)
		if !ok {
			return nil, fmt.Errorf("mqo: query %d is not a mergeable selection: %s", i, plan.Format(q))
		}
		sels[i] = sel
		if i > 0 && (sel.Table != sels[0].Table || sel.Col != sels[0].Col) {
			return nil, fmt.Errorf("mqo: query %d selects a different table or column", i)
		}
	}

	col := expr.Col{Idx: sels[0].Col, Name: sels[0].Table.Schema.Columns()[sels[0].Col].Name}
	var pred expr.Expr
	switch strategy {
	case OrChain:
		terms := make([]expr.Expr, len(sels))
		for i, s := range sels {
			terms[i] = expr.Cmp{Op: expr.EQ, L: col, R: expr.Const{V: s.Value}}
		}
		pred = expr.Or{Terms: terms}
	case HashSet:
		vals := make([]expr.Value, len(sels))
		for i, s := range sels {
			vals[i] = s.Value
		}
		pred = expr.NewInHash(col, vals)
	default:
		return nil, fmt.Errorf("mqo: unknown merge strategy %d", int(strategy))
	}
	return &Merged{
		Plan:       plan.NewScan(sels[0].Table, pred),
		Selections: sels,
		Strategy:   strategy,
	}, nil
}

// SplitCostPerRowPerProbe is the client-side cycles to test one result row
// against one query's predicate during result splitting.
const SplitCostPerRowPerProbe = 9

// Splitter incrementally routes merged-result rows back to their original
// queries, so a streaming consumer can split batches as they arrive off
// the engine instead of materializing the merged mega-result twice. The
// paper performs this in application logic and includes its time and
// energy cost; the caller charges the accumulated cycles to the machine.
type Splitter struct {
	m        *Merged
	index    map[expr.Value]int
	col      int
	perQuery [][]expr.Row
	cycles   float64
}

// NewSplitter returns a splitter for the merged batch.
func (m *Merged) NewSplitter() *Splitter {
	// A real client routes on the selection column's value; with equality
	// predicates a map gives the destination directly, but the probe cost
	// still scales with how the client organizes the split. Charge the
	// map-based cost for HashSet merges and the linear scan cost for
	// OrChain merges, mirroring the server-side strategy.
	index := make(map[expr.Value]int, len(m.Selections))
	for i, s := range m.Selections {
		index[s.Value] = i
	}
	return &Splitter{
		m:        m,
		index:    index,
		col:      m.Selections[0].Col,
		perQuery: make([][]expr.Row, len(m.Selections)),
	}
}

// Add routes one batch of merged-result rows.
func (s *Splitter) Add(rows []expr.Row) {
	switch s.m.Strategy {
	case HashSet:
		s.cycles += 2 * SplitCostPerRowPerProbe * float64(len(rows))
	default:
		// Linear routing: on average half the predicates are tested.
		s.cycles += float64(len(s.m.Selections)) / 2 * SplitCostPerRowPerProbe * float64(len(rows))
	}
	for _, row := range rows {
		if qi, ok := s.index[row[s.col]]; ok {
			s.perQuery[qi] = append(s.perQuery[qi], row)
		}
	}
}

// Finish returns one row set per original query (in input order) and the
// client-side CPU cycles the split consumed.
func (s *Splitter) Finish() (perQuery [][]expr.Row, clientCycles float64) {
	return s.perQuery, s.cycles
}

// Split routes a fully materialized merged result in one call — a
// convenience wrapper over the streaming Splitter.
func (m *Merged) Split(rows []expr.Row) (perQuery [][]expr.Row, clientCycles float64) {
	s := m.NewSplitter()
	s.Add(rows)
	return s.Finish()
}
