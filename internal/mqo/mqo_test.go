package mqo

import (
	"testing"

	"ecodb/internal/catalog"
	"ecodb/internal/expr"
	"ecodb/internal/plan"
)

func lineitemish() *catalog.Table {
	t := catalog.NewTable("li", catalog.NewSchema(
		catalog.Column{Name: "k", Kind: expr.KindInt},
		catalog.Column{Name: "qty", Kind: expr.KindInt},
	))
	for i := int64(0); i < 100; i++ {
		t.Insert(expr.Row{expr.Int(i), expr.Int(i%10 + 1)})
	}
	return t
}

func selQuery(t *catalog.Table, qty int64) plan.Node {
	return plan.NewScan(t, expr.Cmp{
		Op: expr.EQ, L: t.Schema.Col("qty"), R: expr.Const{V: expr.Int(qty)},
	})
}

func TestExtractSelection(t *testing.T) {
	tb := lineitemish()
	sel, ok := ExtractSelection(selQuery(tb, 3))
	if !ok {
		t.Fatal("selection not recognized")
	}
	if sel.Table != tb || sel.Col != 1 || sel.Value.I != 3 {
		t.Fatalf("selection = %+v", sel)
	}
}

func TestExtractSelectionRejects(t *testing.T) {
	tb := lineitemish()
	cases := []struct {
		name string
		node plan.Node
	}{
		{"no filter", plan.NewScan(tb, nil)},
		{"range predicate", plan.NewScan(tb, expr.Cmp{Op: expr.LT, L: tb.Schema.Col("qty"), R: expr.Const{V: expr.Int(3)}})},
		{"non-scan", plan.NewLimit(plan.NewScan(tb, nil), 1)},
		{"const-const", plan.NewScan(tb, expr.Cmp{Op: expr.EQ, L: expr.Const{V: expr.Int(1)}, R: expr.Const{V: expr.Int(1)}})},
	}
	for _, c := range cases {
		if _, ok := ExtractSelection(c.node); ok {
			t.Errorf("%s should not be mergeable", c.name)
		}
	}
}

func TestMergeOrChain(t *testing.T) {
	tb := lineitemish()
	m, err := Merge([]plan.Node{selQuery(tb, 1), selQuery(tb, 2), selQuery(tb, 3)}, OrChain)
	if err != nil {
		t.Fatal(err)
	}
	scan, ok := m.Plan.(*plan.Scan)
	if !ok {
		t.Fatalf("merged plan is %T", m.Plan)
	}
	or, ok := scan.Filter.(expr.Or)
	if !ok {
		t.Fatalf("merged predicate is %T, want Or", scan.Filter)
	}
	if len(or.Terms) != 3 {
		t.Fatalf("disjunction has %d terms", len(or.Terms))
	}
	// Semantics: merged predicate matches exactly the union.
	for i := int64(0); i < 100; i++ {
		row := expr.Row{expr.Int(i), expr.Int(i%10 + 1)}
		want := row[1].I >= 1 && row[1].I <= 3
		if got := scan.Filter.Eval(row, nil).Truthy(); got != want {
			t.Fatalf("merged predicate on qty=%d = %v, want %v", row[1].I, got, want)
		}
	}
}

func TestMergeHashSet(t *testing.T) {
	tb := lineitemish()
	m, err := Merge([]plan.Node{selQuery(tb, 4), selQuery(tb, 9)}, HashSet)
	if err != nil {
		t.Fatal(err)
	}
	scan := m.Plan.(*plan.Scan)
	if _, ok := scan.Filter.(*expr.InHash); !ok {
		t.Fatalf("merged predicate is %T, want InHash", scan.Filter)
	}
}

func TestMergeErrors(t *testing.T) {
	tb := lineitemish()
	other := catalog.NewTable("other", catalog.NewSchema(
		catalog.Column{Name: "qty", Kind: expr.KindInt}))

	if _, err := Merge([]plan.Node{selQuery(tb, 1)}, OrChain); err == nil {
		t.Fatal("single query should not merge")
	}
	if _, err := Merge(nil, OrChain); err == nil {
		t.Fatal("empty batch should not merge")
	}
	if _, err := Merge([]plan.Node{selQuery(tb, 1), plan.NewScan(tb, nil)}, OrChain); err == nil {
		t.Fatal("non-selection should not merge")
	}
	// Non-EQ predicate: a range selection defeats the merger even when
	// table and column match.
	rangeQ := plan.NewScan(tb, expr.Cmp{Op: expr.LT, L: tb.Schema.Col("qty"), R: expr.Const{V: expr.Int(5)}})
	if _, err := Merge([]plan.Node{selQuery(tb, 1), rangeQ}, OrChain); err == nil {
		t.Fatal("non-EQ predicate should not merge")
	}
	otherQ := plan.NewScan(other, expr.Cmp{Op: expr.EQ, L: other.Schema.Col("qty"), R: expr.Const{V: expr.Int(1)}})
	if _, err := Merge([]plan.Node{selQuery(tb, 1), otherQ}, OrChain); err == nil {
		t.Fatal("cross-table queries should not merge")
	}
	// Cross-column: same table, equality shape, different columns.
	colK := plan.NewScan(tb, expr.Cmp{Op: expr.EQ, L: tb.Schema.Col("k"), R: expr.Const{V: expr.Int(1)}})
	if _, err := Merge([]plan.Node{selQuery(tb, 1), colK}, OrChain); err == nil {
		t.Fatal("cross-column queries should not merge")
	}
	// Order independence of the cross-column check: the mismatch can sit
	// in any position, not just adjacent to the first query.
	if _, err := Merge([]plan.Node{selQuery(tb, 1), selQuery(tb, 2), colK}, OrChain); err == nil {
		t.Fatal("cross-column mismatch in the tail should not merge")
	}
	if _, err := Merge([]plan.Node{selQuery(tb, 1), selQuery(tb, 2)}, MergeStrategy(99)); err == nil {
		t.Fatal("unknown strategy should not merge")
	}
}

func TestExtractSelectionMoreRejects(t *testing.T) {
	tb := lineitemish()
	cases := []struct {
		name string
		node plan.Node
	}{
		{"between", plan.NewScan(tb, expr.Between{E: tb.Schema.Col("qty"), Lo: expr.Int(1), Hi: expr.Int(3)})},
		{"eq with non-const rhs", plan.NewScan(tb, expr.Cmp{Op: expr.EQ, L: tb.Schema.Col("qty"), R: tb.Schema.Col("k")})},
		{"filter above scan", plan.NewFilter(plan.NewScan(tb, nil), expr.Cmp{Op: expr.EQ, L: tb.Schema.Col("qty"), R: expr.Const{V: expr.Int(3)}})},
	}
	for _, c := range cases {
		if _, ok := ExtractSelection(c.node); ok {
			t.Errorf("%s should not be mergeable", c.name)
		}
	}
}

func TestSplitRoutesRows(t *testing.T) {
	tb := lineitemish()
	m, err := Merge([]plan.Node{selQuery(tb, 1), selQuery(tb, 2)}, OrChain)
	if err != nil {
		t.Fatal(err)
	}
	// Build the merged result by hand: rows with qty 1, 2 and an
	// (impossible in practice) unmatched qty 5.
	rows := []expr.Row{
		{expr.Int(0), expr.Int(1)},
		{expr.Int(1), expr.Int(2)},
		{expr.Int(2), expr.Int(1)},
		{expr.Int(3), expr.Int(5)},
	}
	perQuery, cycles := m.Split(rows)
	if len(perQuery) != 2 {
		t.Fatalf("split produced %d buckets", len(perQuery))
	}
	if len(perQuery[0]) != 2 || len(perQuery[1]) != 1 {
		t.Fatalf("bucket sizes = %d,%d want 2,1", len(perQuery[0]), len(perQuery[1]))
	}
	if cycles <= 0 {
		t.Fatal("split must report client cycles")
	}
}

func TestSplitCostScalesWithBatchForOrChain(t *testing.T) {
	tb := lineitemish()
	mk := func(n int, strategy MergeStrategy) float64 {
		queries := make([]plan.Node, n)
		for i := range queries {
			queries[i] = selQuery(tb, int64(i+1))
		}
		m, err := Merge(queries, strategy)
		if err != nil {
			t.Fatal(err)
		}
		rows := []expr.Row{{expr.Int(0), expr.Int(1)}}
		_, cycles := m.Split(rows)
		return cycles
	}
	if !(mk(10, OrChain) < mk(20, OrChain)) {
		t.Fatal("or-chain split cost should grow with batch size")
	}
	if mk(10, HashSet) != mk(20, HashSet) {
		t.Fatal("hash-set split cost should not grow with batch size")
	}
}

func TestMergeStrategyString(t *testing.T) {
	if OrChain.String() != "or-chain" || HashSet.String() != "hash-set" {
		t.Fatal("strategy names wrong")
	}
}

func TestSplitterStreamingMatchesSplit(t *testing.T) {
	lt := lineitemish()
	qcol := lt.Schema.MustIndex("qty")
	plans := make([]plan.Node, 5)
	for i := range plans {
		plans[i] = plan.NewScan(lt, expr.Cmp{
			Op: expr.EQ, L: lt.Schema.Col("qty"), R: expr.Const{V: expr.Int(int64(i + 1))},
		})
	}
	merged, err := Merge(plans, OrChain)
	if err != nil {
		t.Fatal(err)
	}
	// Gather every merged-result row straight off the heap.
	var rows []expr.Row
	for p := 0; p < lt.Heap.NumPages(); p++ {
		for _, r := range lt.Heap.Page(p).Rows() {
			if q := r[qcol].I; q >= 1 && q <= 5 {
				rows = append(rows, r)
			}
		}
	}

	wantPer, wantCycles := merged.Split(rows)

	// Streaming the same rows through in arbitrary chunk sizes must route
	// identically and charge identical client cycles.
	s := merged.NewSplitter()
	for i := 0; i < len(rows); i += 37 {
		end := i + 37
		if end > len(rows) {
			end = len(rows)
		}
		s.Add(rows[i:end])
	}
	gotPer, gotCycles := s.Finish()

	if gotCycles != wantCycles {
		t.Fatalf("client cycles differ: %v vs %v", gotCycles, wantCycles)
	}
	for qi := range wantPer {
		if len(gotPer[qi]) != len(wantPer[qi]) {
			t.Fatalf("query %d: %d rows streamed vs %d split", qi, len(gotPer[qi]), len(wantPer[qi]))
		}
	}
}
