package obsv

import (
	"ecodb/internal/energy"
	"ecodb/internal/hw/cpu"
	"ecodb/internal/sim"
)

// Collector builds one query's Profile. The executor tells it which
// operator is current (span push/pop around Open/Next/Close) and what each
// operator charges; the CPU tells it, via the cpu.Observer hook, what every
// clock-advancing segment actually cost. The collector never charges
// anything itself.
//
// Attribution works at charge time, not run time: the executor accumulates
// per-kind cycles and flushes them to the CPU at page granularity, so one
// cpu.Run segment carries charges from every operator in the pipeline. Each
// Charge is therefore tagged with the span that made it, and when the run
// segment arrives its energy and duration are distributed pro-rata over the
// pending tagged cycles of that kind — with the last share computed as the
// remainder, so the shares sum to the segment exactly.
type Collector struct {
	root    *Span
	stack   []*Span
	pending [3][]pendingCharge

	segJoules float64 // chronological segment-order accumulation
	plan      *PlanInfo
	prof      *Profile
}

type pendingCharge struct {
	span   *Span
	cycles float64
}

// NewCollector starts a profile rooted at a statement span.
func NewCollector(label string, start sim.Time) *Collector {
	root := &Span{Kind: KindStatement, Label: label, Start: start}
	return &Collector{root: root, stack: []*Span{root}}
}

// Root returns the statement span.
func (c *Collector) Root() *Span { return c.root }

// Cur returns the span charges are currently attributed to.
func (c *Collector) Cur() *Span { return c.stack[len(c.stack)-1] }

// OpenSpan creates a child of the current span and makes it current.
func (c *Collector) OpenSpan(kind Kind, label, table string, at sim.Time) *Span {
	parent := c.Cur()
	s := &Span{Kind: kind, Label: label, Table: table, Start: at, parent: parent}
	parent.Children = append(parent.Children, s)
	c.stack = append(c.stack, s)
	return s
}

// Push re-enters an existing span (an operator's Next/Close call).
func (c *Collector) Push(s *Span) { c.stack = append(c.stack, s) }

// Pop leaves the current span, recording the instant as its latest end.
func (c *Collector) Pop(at sim.Time) {
	s := c.Cur()
	if at > s.End {
		s.End = at
	}
	c.stack = c.stack[:len(c.stack)-1]
}

// Charge attributes post-amplification cycles of the given work kind to
// the current span. Called by exec.Ctx on every charge when profiling is
// enabled; cycles here are exactly the cycles the next Flush will run.
func (c *Collector) Charge(kind int, cycles float64) {
	s := c.Cur()
	s.Cycles[kind] += cycles
	pl := c.pending[kind]
	if n := len(pl); n > 0 && pl[n-1].span == s {
		pl[n-1].cycles += cycles
		return
	}
	c.pending[kind] = append(pl, pendingCharge{span: s, cycles: cycles})
}

// PageRead records one physical page surfaced while the current span ran.
func (c *Collector) PageRead(bytes int64) {
	s := c.Cur()
	s.PagesRead++
	s.PageBytes += bytes
}

// PagePruned records one page the current span skipped via zone maps.
func (c *Collector) PagePruned() { c.Cur().PagesPruned++ }

// SetPlan attaches the optimizer's choice and per-operator estimates.
func (c *Collector) SetPlan(p *PlanInfo) { c.plan = p }

// Plan returns the attached optimizer info, nil when the statement did not
// route through the optimizer.
func (c *Collector) Plan() *PlanInfo { return c.plan }

// CPURun implements cpu.Observer: one busy segment ran on the CPU. Its
// energy and duration are split over the pending charges of that kind; a
// segment with no pending charges (statement overhead run directly by the
// engine) lands on the current span.
func (c *Collector) CPURun(kind cpu.WorkKind, cycles float64, start, end sim.Time, busy energy.Watts) {
	d := end.Sub(start).Seconds()
	e := float64(busy.For(d))
	c.segJoules += e
	k := int(kind)
	pl := c.pending[k]
	if len(pl) == 0 {
		s := c.Cur()
		s.Joules += e
		s.KindJoules[k] += e
		s.Seconds += d
		return
	}
	var total float64
	for _, pc := range pl {
		total += pc.cycles
	}
	var eAcc, dAcc float64
	for i, pc := range pl {
		var es, ds float64
		if i == len(pl)-1 {
			es, ds = e-eAcc, d-dAcc
		} else {
			frac := pc.cycles / total
			es, ds = e*frac, d*frac
			eAcc += es
			dAcc += ds
		}
		pc.span.Joules += es
		pc.span.KindJoules[k] += es
		pc.span.Seconds += ds
	}
	c.pending[k] = pl[:0]
}

// CPUWait implements cpu.Observer: the CPU idled for a blocking wait (a
// disk read). The idle energy belongs to whichever operator blocked.
func (c *Collector) CPUWait(start, end sim.Time, idle energy.Watts) {
	d := end.Sub(start).Seconds()
	e := float64(idle.For(d))
	c.segJoules += e
	s := c.Cur()
	s.Joules += e
	s.WaitJoules += e
	s.Seconds += d
}

// Finish closes the profile at the given instant. Idempotent; returns the
// same Profile on repeat calls.
func (c *Collector) Finish(end sim.Time) *Profile {
	if c.prof != nil {
		return c.prof
	}
	c.root.End = end
	if c.plan != nil {
		attachEstimates(c.root, c.plan.Ops)
	}
	p := &Profile{
		Root:        c.root,
		Start:       c.root.Start,
		End:         end,
		Joules:      SumJoules(c.root),
		MeterJoules: c.segJoules,
		Plan:        c.plan,
	}
	Walk(c.root, func(s *Span, _ int) {
		for k := range p.KindJoules {
			p.KindJoules[k] += s.KindJoules[k]
		}
		p.WaitJoules += s.WaitJoules
	})
	c.prof = p
	return p
}
