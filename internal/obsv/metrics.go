// Package obsv is ecoDB's observability substrate: a process-wide metrics
// registry (counters, gauges, histograms) and per-query execution profiles
// that attribute the simulated cycles and joules the cost model already
// charges to the operator that charged them.
//
// The cardinal rule is that observation never charges: nothing in this
// package touches the simulated clock, the CPU, or the energy traces. A
// profile is a read-only view over the charge calls the executor makes
// anyway, so simulated results, durations, and joules are byte-identical
// with profiling on or off.
package obsv

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// FloatCounter is a monotonically increasing float metric (e.g. joules).
type FloatCounter struct{ bits atomic.Uint64 }

// Add increments the counter by d.
func (f *FloatCounter) Add(d float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + d)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Load returns the current value.
func (f *FloatCounter) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Gauge is a point-in-time float metric.
type Gauge struct{ bits atomic.Uint64 }

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the last value set.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a bucketed distribution metric with fixed upper bounds.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []int64   // len(bounds)+1
	count  int64
	sum    float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.count++
	h.sum += v
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Registry is a named collection of metrics. Metric constructors are
// get-or-create, so independent packages can reference the same metric by
// name without coordination.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	floats   map[string]*FloatCounter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		floats:   make(map[string]*FloatCounter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every engine reports into.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// FloatCounter returns the named float counter, creating it if needed.
func (r *Registry) FloatCounter(name string) *FloatCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.floats[name]
	if !ok {
		f = &FloatCounter{}
		r.floats[name] = f
	}
	return f
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds if needed (bounds are ignored on an existing histogram).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// MetricsSnapshot is a point-in-time copy of every metric in a registry.
// Experiments difference two snapshots to isolate their own activity from
// the process-wide totals.
type MetricsSnapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Floats     map[string]float64      `json:"float_counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot copies the current value of every metric.
func (r *Registry) Snapshot() MetricsSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := MetricsSnapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Floats:     make(map[string]float64, len(r.floats)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, f := range r.floats {
		s.Floats[name] = f.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		h.mu.Lock()
		hs := HistSnapshot{
			Count:  h.count,
			Sum:    h.sum,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
		}
		h.mu.Unlock()
		s.Histograms[name] = hs
	}
	return s
}

// Counter returns a counter's value in the snapshot, zero if absent.
func (s MetricsSnapshot) Counter(name string) int64 { return s.Counters[name] }

// Float returns a float counter's value in the snapshot, zero if absent.
func (s MetricsSnapshot) Float(name string) float64 { return s.Floats[name] }

// Text renders the snapshot as sorted "name value" lines.
func (s MetricsSnapshot) Text() string {
	var lines []string
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.Floats {
		lines = append(lines, fmt.Sprintf("%s %g", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %g", name, v))
	}
	for name, h := range s.Histograms {
		lines = append(lines, fmt.Sprintf("%s_count %d", name, h.Count))
		lines = append(lines, fmt.Sprintf("%s_sum %g", name, h.Sum))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// JSON renders the snapshot as indented JSON.
func (s MetricsSnapshot) JSON() string {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic(err) // plain maps of numbers cannot fail to marshal
	}
	return string(b) + "\n"
}

// Canonical metric names. Counters are process-wide and monotonic; read
// them as before/after snapshot deltas to isolate one run's activity.
const (
	MetricQueries        = "engine_queries_total"
	MetricBatches        = "engine_batches_total"
	MetricRowsOut        = "engine_rows_out_total"
	MetricQuerySeconds   = "engine_query_seconds"       // histogram, simulated
	MetricPlanningSecs   = "engine_planning_seconds"    // histogram, real wall-clock
	MetricQueryJoules    = "engine_query_joules_total." // + objective suffix
	MetricPoolReads      = "storage_pool_reads_total"
	MetricPoolMisses     = "storage_pool_misses_total"
	MetricPoolResident   = "storage_pool_resident_bytes" // gauge
	MetricPagesPruned    = "exec_pages_pruned_total"
	MetricSortRows       = "exec_sort_rows_total"
	MetricMergePasses    = "exec_sort_merge_passes_total"
	MetricProbeMorsels   = "exec_join_probe_morsels_total"
	MetricSharedAttaches = "scanshare_attaches_total"
	MetricSharedSurfaced = "scanshare_pages_surfaced_total"
	MetricSharedPasses   = "scanshare_passes_total"

	// Query-server metrics (internal/server). Admitted = taken off the
	// admission queue and executed; rejected = bounced at the bounded queue.
	MetricServerSessions       = "server_sessions_total"
	MetricServerQueued         = "server_queued_total" // statements that waited > 0 simulated time
	MetricServerRejected       = "server_rejected_total"
	MetricServerBatches        = "server_flush_batches_total"
	MetricServerDeadlineMisses = "server_deadline_misses_total"
	MetricServerQueueDepth     = "server_queue_depth"           // gauge: statements waiting
	MetricServerActive         = "server_active_sessions"       // gauge: admitted, not yet responded
	MetricServerQueueWait      = "server_queue_wait_seconds"    // histogram, simulated
	MetricServerPolicyJoules   = "server_policy_joules_total."  // + admission policy suffix
	MetricServerTenantQueries  = "server_tenant_queries_total." // + tenant suffix
	MetricServerTenantJoules   = "server_tenant_joules_total."  // + tenant suffix
)

// Hot-path metrics, resolved once so charging sites pay a single atomic add.
var (
	Queries        = Default().Counter(MetricQueries)
	Batches        = Default().Counter(MetricBatches)
	RowsOut        = Default().Counter(MetricRowsOut)
	PoolReads      = Default().Counter(MetricPoolReads)
	PoolMisses     = Default().Counter(MetricPoolMisses)
	PagesPruned    = Default().Counter(MetricPagesPruned)
	SortRows       = Default().Counter(MetricSortRows)
	MergePasses    = Default().Counter(MetricMergePasses)
	ProbeMorsels   = Default().Counter(MetricProbeMorsels)
	SharedAttaches = Default().Counter(MetricSharedAttaches)
	SharedSurfaced = Default().Counter(MetricSharedSurfaced)
	SharedPasses   = Default().Counter(MetricSharedPasses)

	QuerySeconds = Default().Histogram(MetricQuerySeconds,
		[]float64{0.01, 0.1, 1, 10, 60, 600})
	PlanningSeconds = Default().Histogram(MetricPlanningSecs,
		[]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1})
)

// QueryJoules returns the per-objective query energy counter ("disabled"
// for the bypass path).
func QueryJoules(objective string) *FloatCounter {
	return Default().FloatCounter(MetricQueryJoules + objective)
}
