package obsv

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name must return the same counter")
	}
	if r.FloatCounter("f") != r.FloatCounter("f") {
		t.Fatal("same name must return the same float counter")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("same name must return the same gauge")
	}
	h := r.Histogram("h", []float64{1, 10})
	if r.Histogram("h", []float64{99}) != h {
		t.Fatal("same name must return the same histogram (bounds ignored on existing)")
	}
}

func TestFloatCounterConcurrentAdds(t *testing.T) {
	var f FloatCounter
	const workers, addsPer = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < addsPer; i++ {
				f.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := f.Load(); got != workers*addsPer*0.5 {
		t.Fatalf("concurrent float adds lost updates: %v, want %v",
			got, workers*addsPer*0.5)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 5 || s.Sum != 55.65 {
		t.Fatalf("count=%d sum=%v, want 5/55.65", s.Count, s.Sum)
	}
	// 0.05 and 0.1 land ≤0.1; 0.5 ≤1; 5 ≤10; 50 overflows to +Inf.
	want := []int64{2, 1, 1, 1}
	for i, n := range want {
		if s.Counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], n, s.Counts)
		}
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	s := r.Snapshot()
	r.Counter("c").Add(4)
	if s.Counter("c") != 3 {
		t.Fatalf("snapshot mutated after the fact: %d", s.Counter("c"))
	}
	if r.Snapshot().Counter("c") != 7 {
		t.Fatal("live counter did not advance")
	}
	if s.Counter("absent") != 0 || s.Float("absent") != 0 {
		t.Fatal("absent metrics must read zero")
	}
}

func TestSnapshotTextSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total").Inc()
	r.Counter("a_total").Add(2)
	r.FloatCounter("joules").Add(1.5)
	r.Gauge("resident").Set(42)
	r.Histogram("secs", []float64{1}).Observe(0.25)
	text := r.Snapshot().Text()
	lines := strings.Split(strings.TrimSuffix(text, "\n"), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Fatalf("Text() not sorted: %q before %q", lines[i-1], lines[i])
		}
	}
	for _, want := range []string{"a_total 2", "z_total 1", "joules 1.5",
		"resident 42", "secs_count 1", "secs_sum 0.25"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Text() missing %q:\n%s", want, text)
		}
	}
}

func TestSnapshotJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("q").Add(7)
	r.FloatCounter("j").Add(2.25)
	var back MetricsSnapshot
	if err := json.Unmarshal([]byte(r.Snapshot().JSON()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter("q") != 7 || back.Float("j") != 2.25 {
		t.Fatalf("round-trip lost values: %+v", back)
	}
}

func TestQueryJoulesPerObjective(t *testing.T) {
	a := QueryJoules("latency")
	b := QueryJoules("joules")
	if a == b {
		t.Fatal("objectives must get distinct counters")
	}
	before := a.Load()
	a.Add(1.25)
	if QueryJoules("latency").Load()-before != 1.25 {
		t.Fatal("objective counter not shared by name")
	}
}

// The hot-path package vars must alias the default registry's named
// metrics, so engine increments and registry snapshots agree.
func TestPackageVarsAliasDefaultRegistry(t *testing.T) {
	before := Default().Snapshot().Counter(MetricQueries)
	Queries.Inc()
	after := Default().Snapshot().Counter(MetricQueries)
	if after-before != 1 {
		t.Fatalf("Queries.Inc() moved %s by %d, want 1", MetricQueries, after-before)
	}
}
