package obsv

import (
	"fmt"
	"strings"

	"ecodb/internal/sim"
)

// Render formats the profile as the EXPLAIN ANALYZE tree: a totals header,
// the optimizer's choice when the statement routed through it, and one line
// per operator span with rows (estimate vs actual), attributed joules and
// share of the query total, and attributed simulated time.
func (p *Profile) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "total: time=%s joules=%s rows=%d\n",
		p.Duration(), fmtJ(p.Joules), p.Root.Rows)
	fmt.Fprintf(&b, "by component: compute %s, memstall %s, stream %s, wait %s\n",
		fmtJ(p.KindJoules[0]), fmtJ(p.KindJoules[1]), fmtJ(p.KindJoules[2]), fmtJ(p.WaitJoules))
	if p.Plan != nil {
		fmt.Fprintf(&b, "plan: objective=%s parallelism=%d access=%s\n",
			p.Plan.Objective, p.Plan.Parallelism, p.Plan.Access)
		fmt.Fprintf(&b, "estimated: %s %s %s rows\n",
			fmtSecs(p.Plan.EstSeconds), fmtJ(p.Plan.EstJoules), fmtRows(p.Plan.EstRows))
	}
	b.WriteString("operators:\n")
	renderSpan(&b, p.Root, "", "", p.Joules)
	return b.String()
}

func renderSpan(b *strings.Builder, s *Span, head, tail string, total float64) {
	label := head + s.Label
	pct := 0.0
	if total > 0 {
		pct = 100 * s.Joules / total
	}
	fmt.Fprintf(b, "%-46s %-24s %10s %6.1f%% %10s",
		label, renderRows(s), fmtJ(s.Joules), pct, sim.Duration(s.Seconds))
	if detail := renderDetail(s); detail != "" {
		fmt.Fprintf(b, "  %s", detail)
	}
	b.WriteByte('\n')
	for i, c := range s.Children {
		ch, ct := tail+"└─ ", tail+"   "
		if i < len(s.Children)-1 {
			ch, ct = tail+"├─ ", tail+"│  "
		}
		renderSpan(b, c, ch, ct, total)
	}
}

func renderRows(s *Span) string {
	if s.Kind == KindStatement || s.Kind == KindResult || s.Kind == KindQueue {
		return ""
	}
	r := fmt.Sprintf("rows=%d", s.Rows)
	if s.Est != nil {
		r += fmt.Sprintf(" (est %s)", fmtRows(s.Est.Rows))
	}
	return r
}

func renderDetail(s *Span) string {
	var parts []string
	if s.Est != nil {
		parts = append(parts, fmt.Sprintf("est %s", fmtJ(s.Est.Joules)))
	}
	if s.PagesRead > 0 || s.PagesPruned > 0 {
		parts = append(parts, fmt.Sprintf("pages=%d pruned=%d", s.PagesRead, s.PagesPruned))
	}
	if s.Shared {
		parts = append(parts, fmt.Sprintf("pass(entry=%d seen=%d skipped=%d)",
			s.SharedEntry, s.SharedSeen, s.SharedPruned))
	}
	if s.WaitJoules > 0 {
		parts = append(parts, fmt.Sprintf("wait=%s", fmtJ(s.WaitJoules)))
	}
	return strings.Join(parts, " ")
}

func fmtJ(j float64) string { return fmt.Sprintf("%.4gJ", j) }

func fmtSecs(s float64) string { return sim.Duration(s).String() }

func fmtRows(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.2fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk", r/1e3)
	default:
		return fmt.Sprintf("%.0f", r)
	}
}
