package obsv

import "ecodb/internal/sim"

// Kind classifies a profile span by the operator it observes. The estimate
// join-up matches optimizer operator estimates to spans by kind (and table,
// for scan leaves).
type Kind uint8

const (
	KindStatement Kind = iota // the root: whole-statement overhead + residue
	KindScan                  // any scan leaf: serial, morsel-parallel, or shared
	KindFused                 // fused filter/project pipeline stages
	KindJoin
	KindAgg
	KindSort
	KindLimit
	KindFilter // a standalone (unfused) filter — optimizer estimates only
	KindProject
	KindResult // the server→client result path charged at statement finish
	KindQueue  // admission-queue wait before the statement started (server path)
)

func (k Kind) String() string {
	switch k {
	case KindStatement:
		return "statement"
	case KindScan:
		return "scan"
	case KindFused:
		return "fused"
	case KindJoin:
		return "join"
	case KindAgg:
		return "agg"
	case KindSort:
		return "sort"
	case KindLimit:
		return "limit"
	case KindFilter:
		return "filter"
	case KindProject:
		return "project"
	case KindResult:
		return "result"
	case KindQueue:
		return "queue"
	}
	return "unknown"
}

// Span is one operator's slice of a query profile: what it emitted, the
// cycles it charged by work kind, and the simulated seconds and joules
// attributed to those charges.
type Span struct {
	Kind  Kind
	Label string
	Table string // scan leaves: the table being read

	Start, End sim.Time

	// Output actually produced.
	Batches int64
	Rows    int64

	// Cycles charged by this operator, by work kind (post-amplification,
	// exactly what the executor accumulated toward cpu.Run).
	Cycles [3]float64

	// Attributed simulated cost. KindJoules splits Joules by work kind;
	// WaitJoules is the idle-power energy of blocking I/O performed while
	// this operator was running (also included in Joules). Seconds is the
	// attributed share of simulated wall-clock.
	Joules     float64
	KindJoules [3]float64
	WaitJoules float64
	Seconds    float64

	// Scan-path detail.
	PagesRead   int64
	PageBytes   int64
	PagesPruned int64 // pages this scan skipped via zone maps

	// Shared-scan consumer detail: where the consumer attached on the
	// circular pass, and its page outcome counts for the pass.
	SharedEntry  int
	SharedSeen   int64
	SharedPruned int64
	Shared       bool

	// Est carries the optimizer's prediction for this operator when the
	// statement routed through internal/opt.
	Est *OpEstimate

	Children []*Span
	parent   *Span
}

// Parent returns the enclosing span, nil for the root.
func (s *Span) Parent() *Span { return s.parent }

// TotalCycles returns the span's charged cycles summed over work kinds.
func (s *Span) TotalCycles() float64 { return s.Cycles[0] + s.Cycles[1] + s.Cycles[2] }

// OpEstimate is the optimizer's per-operator prediction: cardinality and
// the simulated seconds/joules of the operator's cycle vector under the
// chosen parallelism and access path.
type OpEstimate struct {
	Kind    Kind
	Table   string // scan estimates: the table
	Desc    string
	Rows    float64
	Seconds float64
	Joules  float64
}

// PlanInfo is the optimizer's side of the estimate-vs-actual join-up: the
// chosen plan summary and the per-operator estimates in execution order.
type PlanInfo struct {
	Objective   string
	Parallelism int
	Access      string // "shared-scan" or "private-scan"
	EstSeconds  float64
	EstJoules   float64
	EstRows     float64
	Ops         []OpEstimate
}

// Profile is a finished per-query execution profile.
type Profile struct {
	Root       *Span
	Start, End sim.Time

	// Joules is the query total: exactly SumJoules(Root), so per-operator
	// shares always sum to it bit-for-bit. MeterJoules is the same energy
	// accumulated in segment (chronological) order — the order the energy
	// trace integrates in — and agrees with Joules and with
	// Trace.Energy(Start, End) up to float-association dust.
	Joules      float64
	MeterJoules float64
	KindJoules  [3]float64
	WaitJoules  float64

	// Plan is non-nil when the statement routed through the optimizer.
	Plan *PlanInfo
}

// Duration returns the statement's simulated wall-clock.
func (p *Profile) Duration() sim.Duration { return p.End.Sub(p.Start) }

// SumJoules returns a span tree's total attributed joules, summing each
// child subtree before the span's own share. Profile.Joules is computed by
// this function, so callers re-walking the tree the same way reproduce the
// total exactly.
func SumJoules(s *Span) float64 {
	var t float64
	for _, c := range s.Children {
		t += SumJoules(c)
	}
	return t + s.Joules
}

// Walk visits every span depth-first, parents before children.
func Walk(s *Span, fn func(*Span, int)) {
	walk(s, 0, fn)
}

func walk(s *Span, depth int, fn func(*Span, int)) {
	fn(s, depth)
	for _, c := range s.Children {
		walk(c, depth+1, fn)
	}
}

// attachEstimates joins the optimizer's per-operator estimates onto the
// executed span tree: scan estimates match scan spans by table name; other
// kinds pair up in deepest-first (post-order) sequence, which is the order
// planCycles records them in. Filter/Project estimates fold into the fused
// span that executed them. Unmatched estimates are dropped.
func attachEstimates(root *Span, ests []OpEstimate) {
	byTable := make(map[string]*Span)
	byKind := make(map[Kind][]*Span)
	var post func(*Span)
	post = func(s *Span) {
		for _, c := range s.Children {
			post(c)
		}
		// Any span naming a table can absorb that table's scan estimate —
		// a parallel-agg span, say, is the fused scan+agg boundary and
		// matches both the scan estimate (by table) and the agg estimate
		// (by kind). Pure scan spans are table-matched only.
		if s.Table != "" {
			byTable[s.Table] = s
		}
		if s.Kind != KindScan {
			byKind[s.Kind] = append(byKind[s.Kind], s)
		}
	}
	post(root)

	take := func(k Kind) *Span {
		l := byKind[k]
		if len(l) == 0 {
			return nil
		}
		byKind[k] = l[1:]
		return l[0]
	}
	for i := range ests {
		est := ests[i]
		var sp *Span
		switch est.Kind {
		case KindScan:
			sp = byTable[est.Table]
		case KindFilter, KindProject:
			// Fused pipelines execute these; fold successive estimates
			// into the same fused span (rows follow the outermost stage).
			l := byKind[KindFused]
			if len(l) > 0 {
				sp = l[0]
			}
		default:
			sp = take(est.Kind)
		}
		if sp == nil {
			continue
		}
		if sp.Est == nil {
			sp.Est = &OpEstimate{}
			*sp.Est = est
		} else {
			sp.Est.Joules += est.Joules
			sp.Est.Seconds += est.Seconds
			sp.Est.Rows = est.Rows
		}
	}
}
