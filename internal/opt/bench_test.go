package opt_test

import (
	"testing"
	"time"

	"ecodb/internal/engine"
	"ecodb/internal/hw/system"
	"ecodb/internal/opt"
	"ecodb/internal/tpch"
)

// BenchmarkOptimizeQ5 measures full optimization of the six-table Q5 join
// — extract excluded, since the engine runs Extract+Optimize per query and
// the DP enumeration dominates. The bench-smoke CI job runs this to catch
// planning-cost regressions; TestPlanningFractionOfQ5Execution holds the
// budget itself.
func BenchmarkOptimizeQ5(b *testing.B) {
	e := commercialEngine(b, opt.Objective{})
	lg, base, err := opt.Extract(tpch.Q5(e.Catalog(), "ASIA", 1994))
	if err != nil {
		b.Fatal(err)
	}
	env, _ := e.OptimizerEnv()
	obj := opt.MinimizeJoules()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Optimize(lg, base, env, obj); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPlanningFractionOfQ5Execution pins the optimizer's planning budget:
// extracting and optimizing Q5 must cost under 1% of executing it at the
// experiments' default scale (SF 0.05 × 20, paper-equivalent 1). Both
// sides are real Go wall-clock, so planning is averaged over many rounds
// and execution over a few to keep scheduler noise out of the ratio.
func TestPlanningFractionOfQ5Execution(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock ratio needs the full experiment scale")
	}
	prof := engine.ProfileCommercial()
	prof.WorkAmplification = 20
	e := engine.New(prof, system.NewSUT())
	tpch.NewGenerator(0.05, 42).Load(e.Catalog(),
		tpch.Region, tpch.Nation, tpch.Supplier, tpch.Customer, tpch.Orders, tpch.Lineitem)
	e.WarmAll()
	p := tpch.Q5(e.Catalog(), "ASIA", 1994)
	env, _ := e.OptimizerEnv()
	obj := opt.MinimizeJoules()

	// Warm the catalog's statistics cache: tables compute stats once per
	// load (a hashed NDV pass), and every query planned afterwards reuses
	// them — the steady state this budget is about.
	if lg, base, err := opt.Extract(p); err != nil {
		t.Fatal(err)
	} else if _, err := opt.Optimize(lg, base, env, obj); err != nil {
		t.Fatal(err)
	}

	const planRounds = 200
	start := time.Now()
	for i := 0; i < planRounds; i++ {
		lg, base, err := opt.Extract(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := opt.Optimize(lg, base, env, obj); err != nil {
			t.Fatal(err)
		}
	}
	planning := time.Since(start) / planRounds

	const execRounds = 3
	start = time.Now()
	for i := 0; i < execRounds; i++ {
		e.Exec(p)
	}
	execution := time.Since(start) / execRounds

	frac := float64(planning) / float64(execution)
	t.Logf("planning %v, execution %v, fraction %.3f%%", planning, execution, frac*100)
	if frac >= 0.01 {
		t.Errorf("planning costs %.2f%% of Q5 execution, budget is 1%%", frac*100)
	}
}
