// Package opt is the cost-and-energy query optimizer: it estimates
// per-operator cardinalities from catalog statistics, costs candidate
// physical plans in simulated seconds AND joules using the engine's own
// cycle constants and CPU power model, and picks the plan a configurable
// objective prefers — minimum latency, minimum joules, or a blend. The
// same cycle accounting that the executor charges at run time (see
// internal/exec) is what the optimizer predicts at plan time, so "the
// cost model is the energy model" holds on both sides of the planner.
package opt

import (
	"ecodb/internal/catalog"
	"ecodb/internal/expr"
	"ecodb/internal/plan"
)

// defaultSel is the selectivity assumed for predicates the statistics
// cannot size (System R's 1/3).
const defaultSel = 1.0 / 3

// minRows floors every cardinality estimate so downstream divisions and
// logarithms stay sane.
const minRows = 1e-3

// est is one optimization's estimation context: the logical plan, the
// environment, and each table's statistics.
type est struct {
	lg    *plan.Logical
	env   Env
	stats []*catalog.TableStats

	// Enumeration caches: selectivity per conjunct, endpoint tables per
	// conjunct column, and leaf scan cost per table — all shape-independent,
	// so the DP's inner loop never recomputes them.
	conjSel   []float64
	conjLeft  []int // TableOf(LeftCol), -1 for non-equi conjuncts
	conjRight []int
}

func newEst(lg *plan.Logical, env Env) *est {
	e := &est{lg: lg, env: env, stats: make([]*catalog.TableStats, len(lg.Tables))}
	for i, t := range lg.Tables {
		e.stats[i] = t.Stats()
	}
	e.conjSel = make([]float64, len(lg.Conjuncts))
	e.conjLeft = make([]int, len(lg.Conjuncts))
	e.conjRight = make([]int, len(lg.Conjuncts))
	for i, c := range lg.Conjuncts {
		e.conjSel[i] = e.conjunctSel(c)
		e.conjLeft[i], e.conjRight[i] = -1, -1
		if c.EquiJoin {
			e.conjLeft[i] = lg.TableOf(c.LeftCol)
			e.conjRight[i] = lg.TableOf(c.RightCol)
		}
	}
	return e
}

// colStats returns the statistics of a global column id.
func (e *est) colStats(g int) (catalog.ColStats, int64) {
	t := e.lg.TableOf(g)
	return *e.stats[t].Col(g - e.lg.ColOffset(t)), e.stats[t].Rows
}

// ndv returns a column's distinct count, floored at 1.
func (e *est) ndv(g int) float64 {
	cs, _ := e.colStats(g)
	if cs.NDV < 1 {
		return 1
	}
	return float64(cs.NDV)
}

// numericValue converts orderable values to a point on the number line for
// interval-fraction estimates.
func numericValue(v expr.Value) (float64, bool) {
	switch v.Kind {
	case expr.KindInt, expr.KindDate, expr.KindBool:
		return float64(v.I), true
	case expr.KindFloat:
		return v.F, true
	default:
		return 0, false
	}
}

// rangeFraction estimates the fraction of a column's [min, max] domain
// below point v.
func rangeFraction(cs catalog.ColStats, v expr.Value) (float64, bool) {
	if !cs.Valid {
		return 0, false
	}
	lo, okLo := numericValue(cs.Min)
	hi, okHi := numericValue(cs.Max)
	x, okX := numericValue(v)
	if !okLo || !okHi || !okX || hi <= lo {
		return 0, false
	}
	f := (x - lo) / (hi - lo)
	return clamp01(f), true
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// sel estimates the selectivity of a bound predicate whose column
// references are global ids. It mirrors the classic System R rules,
// sized by the zone-map-harvested statistics.
func (e *est) sel(p expr.Expr) float64 {
	switch n := p.(type) {
	case expr.Cmp:
		return e.selCmp(n)
	case expr.Between:
		if col, ok := n.E.(expr.Col); ok {
			cs, _ := e.colStats(col.Idx)
			lo, okL := rangeFraction(cs, n.Lo)
			hi, okH := rangeFraction(cs, n.Hi)
			if okL && okH {
				return clamp01(hi - lo)
			}
		}
		return defaultSel
	case expr.And:
		s := 1.0
		for _, t := range n.Terms {
			s *= e.sel(t)
		}
		return s
	case expr.Or:
		miss := 1.0
		for _, t := range n.Terms {
			miss *= 1 - e.sel(t)
		}
		return 1 - miss
	case expr.Not:
		return clamp01(1 - e.sel(n.E))
	case *expr.InHash:
		if col, ok := n.E.(expr.Col); ok {
			return clamp01(float64(len(n.Set)) / e.ndv(col.Idx))
		}
		return defaultSel
	default:
		return defaultSel
	}
}

func (e *est) selCmp(n expr.Cmp) float64 {
	col, colOK := n.L.(expr.Col)
	cst, cstOK := n.R.(expr.Const)
	flipped := false
	if !colOK || !cstOK {
		// Try const <op> col.
		if c2, ok := n.R.(expr.Col); ok {
			if k2, ok := n.L.(expr.Const); ok {
				col, cst, colOK, cstOK, flipped = c2, k2, true, true, true
			}
		}
	}
	if !colOK || !cstOK {
		if n.Op == expr.EQ {
			// col = col (same table, or a join edge costed elsewhere).
			return defaultSel
		}
		return defaultSel
	}
	cs, _ := e.colStats(col.Idx)
	op := n.Op
	if flipped {
		op = flipCmp(op)
	}
	switch op {
	case expr.EQ:
		return clamp01(1 / e.ndv(col.Idx))
	case expr.NE:
		return clamp01(1 - 1/e.ndv(col.Idx))
	case expr.LT, expr.LE:
		if f, ok := rangeFraction(cs, cst.V); ok {
			return f
		}
		return defaultSel
	case expr.GT, expr.GE:
		if f, ok := rangeFraction(cs, cst.V); ok {
			return clamp01(1 - f)
		}
		return defaultSel
	default:
		return defaultSel
	}
}

// flipCmp mirrors a comparison for const <op> col shapes.
func flipCmp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.LT:
		return expr.GT
	case expr.LE:
		return expr.GE
	case expr.GT:
		return expr.LT
	case expr.GE:
		return expr.LE
	default:
		return op
	}
}

// conjunctSel estimates one logical conjunct's selectivity: equi-join
// edges use the containment rule 1/max(ndv), everything else the
// predicate rules above.
func (e *est) conjunctSel(c plan.Conjunct) float64 {
	if c.EquiJoin {
		return 1 / max(e.ndv(c.LeftCol), e.ndv(c.RightCol), 1)
	}
	return e.sel(c.Pred)
}

// rowsOf estimates the output cardinality of joining a table subset with
// every covered conjunct applied — independent of join order and build
// sides, which is what lets the enumerator share it across candidates.
func (e *est) rowsOf(s plan.TableSet) float64 {
	rows := 1.0
	for t := range e.lg.Tables {
		if s.Has(t) {
			rows *= float64(e.stats[t].Rows)
		}
	}
	for _, c := range e.lg.Conjuncts {
		if c.Tables != 0 && c.Tables.SubsetOf(s) {
			rows *= e.conjunctSel(c)
		}
	}
	return max(rows, minRows)
}

// groupCount estimates an aggregation's output groups: the product of the
// grouping columns' distinct counts, capped by the input cardinality.
func (e *est) groupCount(inRows float64) float64 {
	if e.lg.Agg == nil {
		return inRows
	}
	if len(e.lg.Agg.GroupBy) == 0 {
		return 1
	}
	groups := 1.0
	for _, g := range e.lg.Agg.GroupBy {
		groups *= e.ndv(g)
	}
	return max(min(groups, inRows), 1)
}

// outRowBytes estimates the wire size of one output row from the result
// schema's kinds.
func (e *est) outRowBytes() float64 {
	var b float64
	for _, c := range e.lg.OutputSchema().Columns() {
		if c.Kind == expr.KindString {
			b += 16
		} else {
			b += 8
		}
	}
	return b
}
