package opt

import (
	"math"

	"ecodb/internal/expr"
	"ecodb/internal/hw/cpu"
)

// cycles accumulates a candidate plan's estimated work by kind, mirroring
// the executor's Charge sites. passStream and passZone are the subsets of
// Stream and Compute cycles that a shared circular scan fires once per
// PASS rather than once per query — the portion that amortizes across
// co-attached queries when the shared access path is chosen.
type cycles struct {
	k          [3]float64 // indexed by cpu.WorkKind
	passStream float64
	passZone   float64
}

func (c *cycles) add(kind cpu.WorkKind, v float64) { c.k[kind] += v }

func (c *cycles) addAll(o cycles) {
	for i := range c.k {
		c.k[i] += o.k[i]
	}
	c.passStream += o.passStream
	c.passZone += o.passZone
}

// total sums every bucket — a deterministic tiebreak for frontier
// overflow, not a cost.
func (c cycles) total() float64 {
	return c.k[0] + c.k[1] + c.k[2]
}

// dominatedBy reports component-wise domination (≤ in every bucket, and
// shared-amortizable work separated so domination holds for every access
// path and parallelism the scorer might try later).
func (c cycles) dominatedBy(o cycles) bool {
	const eps = 1e-9
	for i := range c.k {
		if o.k[i] > c.k[i]*(1+eps)+eps {
			return false
		}
	}
	return o.passStream <= c.passStream*(1+eps)+eps && o.passZone <= c.passZone*(1+eps)+eps
}

// exprCyclesPerRow mirrors the vectorized evaluator's per-row cost accrual
// (internal/expr/batch.go) for one predicate or projection expression.
func exprCyclesPerRow(e expr.Expr) float64 {
	switch n := e.(type) {
	case expr.Col:
		return expr.CyclesColRef
	case expr.Const:
		return expr.CyclesConst
	case expr.Cmp:
		cmp := float64(expr.CyclesCompare)
		if k, ok := n.R.(expr.Const); ok && k.V.Kind == expr.KindString {
			cmp = expr.CyclesStringCmp
		}
		return exprCyclesPerRow(n.L) + exprCyclesPerRow(n.R) + cmp
	case expr.Between:
		return expr.CyclesColRef + 2*expr.CyclesCompare
	case expr.And:
		var s float64
		for _, t := range n.Terms {
			s += exprCyclesPerRow(t) + expr.CyclesLogic
		}
		return s
	case expr.Or:
		var s float64
		for _, t := range n.Terms {
			s += exprCyclesPerRow(t) + expr.CyclesLogic
		}
		return s
	case expr.Not:
		return exprCyclesPerRow(n.E) + expr.CyclesLogic
	case *expr.InHash:
		return expr.CyclesColRef + expr.CyclesHashProbe
	case expr.Arith:
		return exprCyclesPerRow(n.L) + exprCyclesPerRow(n.R) + expr.CyclesArith
	default:
		return 20
	}
}

func (e *est) exprMult() float64 {
	if m := e.env.Cost.ExprCycleMultiple; m > 0 {
		return m
	}
	return 1
}

// scanCost estimates one table scan: page streaming (pass-amortizable),
// zone-map consults when a filter is pushed, per-tuple interpretation, and
// predicate evaluation over every input row. Page pruning is not assumed
// (a conservative upper bound: stats cannot tell how clustered a predicate
// is), so estimates are comparable across candidates rather than absolute.
func (e *est) scanCost(t int, pushed []expr.Expr) (outRows float64, c cycles) {
	st := e.stats[t]
	rows := float64(st.Rows)

	stream := e.env.Cost.PageStreamCyclesPerKB * float64(st.Bytes) / 1024
	c.add(cpu.Stream, stream)
	c.passStream = stream

	if len(pushed) > 0 {
		zone := e.env.Cost.ZoneCheckCycles * float64(st.Pages)
		c.add(cpu.Compute, zone)
		c.passZone = zone
	}

	c.add(cpu.Compute, e.env.Cost.ScanTupleCycles*rows)
	c.add(cpu.MemStall, e.env.Cost.ScanTupleStallCycles*rows)

	outRows = rows
	for _, p := range pushed {
		c.add(cpu.Compute, exprCyclesPerRow(p)*e.exprMult()*rows)
		outRows *= e.sel(p)
	}
	return max(outRows, minRows), c
}

// joinCost estimates one hash join: build-side insertion, probe-side
// lookups, match emission, and residual evaluation over candidate matches.
func (e *est) joinCost(buildRows, probeRows, matches float64, residuals []expr.Expr) cycles {
	var c cycles
	c.add(cpu.Compute, e.env.Cost.BuildCycles*buildRows)
	c.add(cpu.MemStall, e.env.Cost.BuildStallCycles*buildRows)
	c.add(cpu.Compute, e.env.Cost.ProbeCycles*probeRows)
	c.add(cpu.MemStall, e.env.Cost.ProbeStallCycles*probeRows)
	c.add(cpu.Compute, e.env.Cost.MatchCycles*matches)
	for _, r := range residuals {
		c.add(cpu.Compute, exprCyclesPerRow(r)*e.exprMult()*matches)
	}
	return c
}

// aggCost estimates hash aggregation over inRows input rows emitting
// groups results.
func (e *est) aggCost(inRows, groups float64) cycles {
	var c cycles
	c.add(cpu.Compute, e.env.Cost.AggCycles*inRows)
	c.add(cpu.MemStall, e.env.Cost.AggStallCycles*inRows)
	if e.lg.Agg != nil {
		for _, s := range e.lg.Agg.Specs {
			if s.Arg != nil {
				c.add(cpu.Compute, exprCyclesPerRow(s.Arg)*e.exprMult()*inRows)
			}
		}
	}
	c.add(cpu.Compute, e.env.Cost.AggCycles*groups)
	return c
}

// sortCost estimates an n·log₂n comparison sort — the same formula
// exec.Ctx.chargeSort charges at runtime, so the estimate is exact up to
// the cardinality guess. Parallel sort lowering never changes it: workers
// only move real comparison work, and the coordinator charges the serial
// formula on the total surviving row count.
func (e *est) sortCost(rows float64) cycles {
	var c cycles
	if rows > 1 {
		n := rows * math.Log2(rows)
		c.add(cpu.Compute, e.env.Cost.SortCmpCycles*n)
		c.add(cpu.MemStall, 0.25*e.env.Cost.SortCmpCycles*n)
	}
	return c
}

// projectCost estimates the projection expressions over rows.
func (e *est) projectCost(rows float64) cycles {
	var c cycles
	if e.lg.Project == nil {
		return c
	}
	for _, ex := range e.lg.Project.Exprs {
		c.add(cpu.Compute, exprCyclesPerRow(ex)*e.exprMult()*rows)
	}
	return c
}

// resultCost estimates the result path: server-side materialization and
// wire streaming plus the client-side per-row receive with its collector
// pressure, exactly as Rows.finish charges them.
func (e *est) resultCost(rows float64) cycles {
	var c cycles
	c.add(cpu.Stream, e.env.Cost.ResultRowCycles*rows)
	c.add(cpu.Stream, e.env.Cost.ResultKBCycles*rows*e.outRowBytes()/1024)
	gc := e.env.Cost.ClientRowFactor(rows * e.amp())
	c.add(cpu.MemStall, e.env.Cost.ClientRowCycles*rows*gc)
	return c
}

func (e *est) amp() float64 {
	if e.env.Amplify <= 0 {
		return 1
	}
	return e.env.Amplify
}

// timeEnergy converts estimated cycles into simulated (seconds, joules)
// for one execution configuration: parallelism degree and access path.
//
// Private execution pays every cycle itself. Shared execution with Q
// co-attached queries amortizes the pass-fired work (page streaming, zone
// consults) to 1/Q per query for energy; for latency the queries
// time-share the processor, so the per-query response multiplies the
// non-amortized work by Q while the pass streams once. Statement overhead
// is charged unamplified, as the engine runs it.
func (e *est) timeEnergy(c cycles, par int, shared bool) (secs, joules float64) {
	amp := e.amp()
	q := 1.0
	if shared && e.env.SharedConcurrency > 1 {
		q = float64(e.env.SharedConcurrency)
	}
	m := e.env.CPU

	own := [3]float64{
		(c.k[cpu.Compute] - c.passZone) * amp,
		c.k[cpu.MemStall] * amp,
		(c.k[cpu.Stream] - c.passStream) * amp,
	}
	own[cpu.Compute] += e.env.OverheadCycles
	pass := [2]float64{c.passZone * amp, c.passStream * amp} // compute, stream

	var ownSecs float64
	for kind, cy := range own {
		k := cpu.WorkKind(kind)
		ownSecs += m.EstimateSeconds(cy, k, par)
		joules += m.EstimateEnergy(cy+passShare(kind, pass, q), k, par)
	}
	passSecs := m.EstimateSeconds(pass[0], cpu.Compute, par) +
		m.EstimateSeconds(pass[1], cpu.Stream, par)
	secs = q*ownSecs + passSecs
	return secs, joules
}

// passShare returns this query's amortized share of pass-fired cycles for
// the given kind.
func passShare(kind int, pass [2]float64, q float64) float64 {
	switch cpu.WorkKind(kind) {
	case cpu.Compute:
		return pass[0] / q
	case cpu.Stream:
		return pass[1] / q
	default:
		return 0
	}
}
