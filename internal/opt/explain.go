package opt

import (
	"fmt"
	"strings"

	"ecodb/internal/hw/cpu"
	"ecodb/internal/obsv"
	"ecodb/internal/plan"
)

// Explain renders an optimizer choice for a logical plan: the execution
// configuration, the whole-plan estimates, and one line per operator with
// its estimated output rows, cycles, and joules under the chosen
// configuration. The output is deterministic for a given plan and
// environment, which is what lets golden tests pin it.
func Explain(lg *plan.Logical, env Env, ch *Choice) (string, error) {
	if env.CPU == nil {
		return "", fmt.Errorf("opt: explain needs a CPU model")
	}
	e := newEst(lg, env)
	order := ch.Phys.JoinOrder
	builds := ch.Phys.BuildLeft
	if order == nil {
		order = lg.DefaultChoices().JoinOrder
	}
	if builds == nil {
		builds = lg.DefaultChoices().BuildLeft
	}
	_, _, ops, ok := e.planCycles(order, builds, ch.Phys.Pushdown, true)
	if !ok {
		return "", fmt.Errorf("opt: choice does not lower against %s", lg.Describe())
	}

	var b strings.Builder
	access := "private-scan"
	if ch.Shared {
		access = "shared-scan"
	}
	fmt.Fprintf(&b, "objective=%s parallelism=%d access=%s pushdown=%s\n",
		ch.Objective, ch.Parallelism, access, ch.Phys.Pushdown)
	names := make([]string, len(order))
	for i, t := range order {
		names[i] = lg.Tables[t].Name
	}
	if len(order) > 1 {
		sides := make([]string, len(builds))
		for i, bl := range builds {
			if bl {
				sides[i] = "L"
			} else {
				sides[i] = "R"
			}
		}
		fmt.Fprintf(&b, "join order: %s  build sides: %s\n",
			strings.Join(names, " ⨝ "), strings.Join(sides, " "))
	}
	fmt.Fprintf(&b, "estimated: %s  %s  %s rows\n",
		fmtSecs(ch.EstSeconds), fmtJoules(ch.EstJoules), fmtRows(ch.EstRows))
	b.WriteString("operators:\n")
	for _, op := range ops {
		joules := e.opJoules(op, ch.Parallelism, ch.Shared)
		fmt.Fprintf(&b, "  %-52s rows≈%-10s cycles≈%-10s %s\n",
			op.desc, fmtRows(op.rows), fmtCycles(op.cyc.total()), fmtJoules(joules))
	}
	return b.String(), nil
}

// OperatorEstimates returns the per-operator estimates of a choice in the
// profiler's join-up form: one record per operator planCycles costs, in the
// executor's post-order (scan leaves and joins bottom-up, then filters,
// aggregation, projection, sort, limit, result), each carrying estimated
// rows, seconds, and joules under the chosen configuration. The engine
// attaches these to the matching spans of the executed profile so EXPLAIN
// ANALYZE can print estimate-vs-actual per operator.
func OperatorEstimates(lg *plan.Logical, env Env, ch *Choice) []obsv.OpEstimate {
	if env.CPU == nil {
		return nil
	}
	e := newEst(lg, env)
	order := ch.Phys.JoinOrder
	builds := ch.Phys.BuildLeft
	if order == nil {
		order = lg.DefaultChoices().JoinOrder
	}
	if builds == nil {
		builds = lg.DefaultChoices().BuildLeft
	}
	_, _, ops, ok := e.planCycles(order, builds, ch.Phys.Pushdown, true)
	if !ok {
		return nil
	}
	out := make([]obsv.OpEstimate, len(ops))
	for i, op := range ops {
		table := ""
		if op.scanTable >= 0 {
			table = lg.Tables[op.scanTable].Name
		}
		out[i] = obsv.OpEstimate{
			Kind:    op.kind,
			Table:   table,
			Desc:    op.desc,
			Rows:    op.rows,
			Seconds: e.opSeconds(op, ch.Parallelism, ch.Shared),
			Joules:  e.opJoules(op, ch.Parallelism, ch.Shared),
		}
	}
	return out
}

// opSeconds converts one operator's estimated cycles to per-query response
// seconds under the chosen configuration, mirroring timeEnergy: shared
// execution time-shares the machine (own work stretches by Q) while the
// pass streams once.
func (e *est) opSeconds(op opEst, par int, shared bool) float64 {
	amp := e.amp()
	q := 1.0
	if shared && e.env.SharedConcurrency > 1 {
		q = float64(e.env.SharedConcurrency)
	}
	m := e.env.CPU
	c := op.cyc
	own := m.EstimateSeconds((c.k[cpu.Compute]-c.passZone)*amp, cpu.Compute, par) +
		m.EstimateSeconds(c.k[cpu.MemStall]*amp, cpu.MemStall, par) +
		m.EstimateSeconds((c.k[cpu.Stream]-c.passStream)*amp, cpu.Stream, par)
	pass := m.EstimateSeconds(c.passZone*amp, cpu.Compute, par) +
		m.EstimateSeconds(c.passStream*amp, cpu.Stream, par)
	return q*own + pass
}

// opJoules converts one operator's estimated cycles to joules under the
// chosen configuration. Scan leaves amortize their pass-fired work across
// the shared pass when the shared access path was chosen, matching the
// whole-plan accounting in timeEnergy.
func (e *est) opJoules(op opEst, par int, shared bool) float64 {
	amp := e.amp()
	q := 1.0
	if shared && op.scanTable >= 0 && e.env.SharedConcurrency > 1 {
		q = float64(e.env.SharedConcurrency)
	}
	c := op.cyc
	var j float64
	j += e.env.CPU.EstimateEnergy((c.k[cpu.Compute]-c.passZone+c.passZone/q)*amp, cpu.Compute, par)
	j += e.env.CPU.EstimateEnergy(c.k[cpu.MemStall]*amp, cpu.MemStall, par)
	j += e.env.CPU.EstimateEnergy((c.k[cpu.Stream]-c.passStream+c.passStream/q)*amp, cpu.Stream, par)
	return j
}

func fmtSecs(s float64) string {
	switch {
	case s <= 0:
		return "0 s"
	case s < 1e-3:
		return fmt.Sprintf("%.1f µs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2f ms", s*1e3)
	default:
		return fmt.Sprintf("%.3f s", s)
	}
}

func fmtJoules(j float64) string {
	switch {
	case j <= 0:
		return "0 J"
	case j < 1e-3:
		return fmt.Sprintf("%.1f µJ", j*1e6)
	case j < 1:
		return fmt.Sprintf("%.2f mJ", j*1e3)
	default:
		return fmt.Sprintf("%.3f J", j)
	}
}

func fmtRows(r float64) string {
	if r < 1 {
		return "0"
	}
	if r < 1e6 {
		return fmt.Sprintf("%.0f", r)
	}
	return fmt.Sprintf("%.3g", r)
}

func fmtCycles(c float64) string {
	if c < 1e4 {
		return fmt.Sprintf("%.0f", c)
	}
	return fmt.Sprintf("%.3g", c)
}
