package opt

import (
	"fmt"

	"ecodb/internal/catalog"
	"ecodb/internal/expr"
	"ecodb/internal/plan"
)

// Extract rebuilds the logical form of a hand-lowered physical plan, plus
// the physical choices that plan embodies, so programmatic plans (the
// tpch package, tests, callers of engine.Query) can flow through the
// optimizer without a SQL front end. The returned choices re-lower to a
// plan with the same result rows in the same order as root.
//
// Supported shapes are exactly what plan.Lower produces and the hand
// planners build: an optional Limit/Sort/Project/Agg stack (outermost to
// innermost, each at most once) over a tree of hash joins whose every
// join has at least one Scan (or Filter over Scan) child — i.e. linear,
// not bushy. Anything else returns an error, and callers fall back to
// executing root as given.
func Extract(root plan.Node) (*plan.Logical, plan.PhysChoices, error) {
	n := root
	limit := -1
	if l, ok := n.(*plan.Limit); ok {
		limit = l.N
		n = l.Input
	}
	var sortKeys []plan.SortKey
	if s, ok := n.(*plan.Sort); ok {
		sortKeys = s.Keys
		n = s.Input
	}
	var proj *plan.Project
	if p, ok := n.(*plan.Project); ok {
		proj = p
		n = p.Input
	}
	var agg *plan.Agg
	if a, ok := n.(*plan.Agg); ok {
		agg = a
		n = a.Input
	}

	// Filters between the stack and the join tree: collect, translate once
	// the column map exists.
	var filters []expr.Expr
	for {
		f, ok := n.(*plan.Filter)
		if !ok {
			break
		}
		filters = append(filters, f.Pred)
		n = f.Input
	}

	scans, builds, err := flattenJoins(n)
	if err != nil {
		return nil, plan.PhysChoices{}, err
	}

	tables := make([]*catalog.Table, len(scans))
	for i, s := range scans {
		tables[i] = s.Table
	}
	lg, err := plan.NewLogical(tables)
	if err != nil {
		return nil, plan.PhysChoices{}, err
	}

	// Column maps as Lower maintains them: curMap[i] = global id at
	// position i of the accumulated stream after each join step.
	curMap := tableGlobals(lg, 0)
	addScanPreds := func(t int) error {
		if scans[t].Filter == nil {
			return nil
		}
		for _, p := range splitAnd(scans[t].Filter) {
			g, err := remapChecked(p, func(i int) (int, bool) {
				if i < 0 || i >= tables[t].Schema.NumCols() {
					return 0, false
				}
				return lg.ColOffset(t) + i, true
			})
			if err != nil {
				return fmt.Errorf("opt: extract scan filter on %s: %w", tables[t].Name, err)
			}
			if err := lg.AddPredicate(g); err != nil {
				return err
			}
		}
		return nil
	}
	if err := addScanPreds(0); err != nil {
		return nil, plan.PhysChoices{}, err
	}

	// Replay the join steps bottom-up, emitting each step's key conjunct
	// before its residuals so re-lowering picks the same hash keys.
	join := n
	steps := make([]*plan.HashJoin, 0, len(builds))
	for j, ok := join.(*plan.HashJoin); ok; j, ok = join.(*plan.HashJoin) {
		steps = append(steps, j)
		if len(steps) > len(builds) {
			return nil, plan.PhysChoices{}, fmt.Errorf("opt: join tree shape changed during replay")
		}
		if builds[len(builds)-len(steps)] {
			join = j.Build
		} else {
			join = j.Probe
		}
	}
	for step := 1; step < len(scans); step++ {
		j := steps[len(steps)-step] // steps was collected top-down
		t := step
		if err := addScanPreds(t); err != nil {
			return nil, plan.PhysChoices{}, err
		}
		var gCur, gNew int
		var newMap []int
		if builds[step-1] {
			gCur, gNew = curMap[j.BuildKey], lg.ColOffset(t)+j.ProbeKey
			newMap = append(append([]int{}, curMap...), tableGlobals(lg, t)...)
		} else {
			gCur, gNew = curMap[j.ProbeKey], lg.ColOffset(t)+j.BuildKey
			newMap = append(tableGlobals(lg, t), curMap...)
		}
		key := expr.Cmp{Op: expr.EQ,
			L: expr.Col{Idx: gCur, Name: lg.ColName(gCur)},
			R: expr.Col{Idx: gNew, Name: lg.ColName(gNew)}}
		if err := lg.AddPredicate(key); err != nil {
			return nil, plan.PhysChoices{}, err
		}
		if j.Residual != nil {
			for _, p := range splitAnd(j.Residual) {
				g, err := remapChecked(p, func(i int) (int, bool) {
					if i < 0 || i >= len(newMap) {
						return 0, false
					}
					return newMap[i], true
				})
				if err != nil {
					return nil, plan.PhysChoices{}, fmt.Errorf("opt: extract join residual: %w", err)
				}
				if err := lg.AddPredicate(g); err != nil {
					return nil, plan.PhysChoices{}, err
				}
			}
		}
		curMap = newMap
	}

	for _, f := range filters {
		g, err := remapChecked(f, func(i int) (int, bool) {
			if i < 0 || i >= len(curMap) {
				return 0, false
			}
			return curMap[i], true
		})
		if err != nil {
			return nil, plan.PhysChoices{}, fmt.Errorf("opt: extract filter: %w", err)
		}
		if err := lg.AddPredicate(g); err != nil {
			return nil, plan.PhysChoices{}, err
		}
	}

	if agg != nil {
		groups := make([]int, len(agg.GroupBy))
		for i, g := range agg.GroupBy {
			if g < 0 || g >= len(curMap) {
				return nil, plan.PhysChoices{}, fmt.Errorf("opt: extract group-by column %d out of scope", g)
			}
			groups[i] = curMap[g]
		}
		specs := make([]plan.AggSpec, len(agg.Aggs))
		for i, s := range agg.Aggs {
			specs[i] = s
			if s.Arg != nil {
				a, err := remapChecked(s.Arg, func(i int) (int, bool) {
					if i < 0 || i >= len(curMap) {
						return 0, false
					}
					return curMap[i], true
				})
				if err != nil {
					return nil, plan.PhysChoices{}, fmt.Errorf("opt: extract aggregate argument: %w", err)
				}
				specs[i].Arg = a
			}
		}
		if err := lg.SetAgg(groups, specs); err != nil {
			return nil, plan.PhysChoices{}, err
		}
	}

	if proj != nil {
		spec := &plan.ProjectSpec{
			Names: append([]string{}, proj.Names...),
			Kinds: append([]expr.Kind{}, proj.Kinds...),
		}
		for _, e := range proj.Exprs {
			var g expr.Expr
			var err error
			if agg != nil {
				// Over the aggregate's output: positions are already
				// shape-invariant, keep them.
				g = e
			} else {
				g, err = remapChecked(e, func(i int) (int, bool) {
					if i < 0 || i >= len(curMap) {
						return 0, false
					}
					return curMap[i], true
				})
			}
			if err != nil {
				return nil, plan.PhysChoices{}, fmt.Errorf("opt: extract projection: %w", err)
			}
			spec.Exprs = append(spec.Exprs, g)
		}
		lg.Project = spec
	}

	lg.Sort = append([]plan.SortKey{}, sortKeys...)
	lg.Limit = limit

	base := plan.PhysChoices{
		JoinOrder: identityOrder(len(tables)),
		BuildLeft: builds,
		Pushdown:  plan.PushdownAll,
	}

	// Sanity: the extracted logical must lower under its own base choices
	// and present the same output schema as the original plan.
	lowered, err := lg.Lower(base)
	if err != nil {
		return nil, plan.PhysChoices{}, fmt.Errorf("opt: extracted plan does not re-lower: %w", err)
	}
	if !sameSchema(lowered.Schema(), root.Schema()) {
		return nil, plan.PhysChoices{}, fmt.Errorf("opt: extracted plan changes the output schema")
	}
	return lg, base, nil
}

// flattenJoins decomposes a linear hash-join tree into leaf scans in join
// order (position i joins at step i−1) and the build-side flags the
// original tree used. A lone scan yields one table and no steps.
func flattenJoins(n plan.Node) ([]*plan.Scan, []bool, error) {
	switch j := n.(type) {
	case *plan.Scan:
		return []*plan.Scan{j}, nil, nil
	case *plan.HashJoin:
		buildScan, buildLeaf := asScanLeaf(j.Build)
		probeScan, probeLeaf := asScanLeaf(j.Probe)
		switch {
		case buildLeaf && probeLeaf:
			// Bottom of the chain: the build side starts the order.
			return []*plan.Scan{buildScan, probeScan}, []bool{true}, nil
		case probeLeaf:
			scans, builds, err := flattenJoins(j.Build)
			if err != nil {
				return nil, nil, err
			}
			return append(scans, probeScan), append(builds, true), nil
		case buildLeaf:
			scans, builds, err := flattenJoins(j.Probe)
			if err != nil {
				return nil, nil, err
			}
			return append(scans, buildScan), append(builds, false), nil
		default:
			return nil, nil, fmt.Errorf("opt: bushy join trees are not extractable")
		}
	default:
		return nil, nil, fmt.Errorf("opt: cannot extract a logical plan from %T", n)
	}
}

// asScanLeaf unwraps a Scan, folding a Filter chain above it into the
// scan's own predicate.
func asScanLeaf(n plan.Node) (*plan.Scan, bool) {
	var preds []expr.Expr
	for {
		switch v := n.(type) {
		case *plan.Scan:
			s := v
			for i := len(preds) - 1; i >= 0; i-- {
				merged := s.Filter
				if merged == nil {
					merged = preds[i]
				} else {
					merged = expr.And{Terms: []expr.Expr{merged, preds[i]}}
				}
				s = plan.NewScan(s.Table, merged)
			}
			return s, true
		case *plan.Filter:
			preds = append(preds, v.Pred)
			n = v.Input
		default:
			return nil, false
		}
	}
}

// splitAnd flattens nested conjunctions into their terms.
func splitAnd(e expr.Expr) []expr.Expr {
	if a, ok := e.(expr.And); ok {
		var out []expr.Expr
		for _, t := range a.Terms {
			out = append(out, splitAnd(t)...)
		}
		return out
	}
	return []expr.Expr{e}
}

// remapChecked rewrites column references through f, failing (instead of
// panicking, as plan.RemapExpr would) when a reference is out of scope or
// the expression type is unknown.
func remapChecked(e expr.Expr, f func(int) (int, bool)) (out expr.Expr, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("unsupported expression: %v", r)
		}
	}()
	bad := false
	out = plan.RemapExpr(e, func(i int) int {
		g, ok := f(i)
		if !ok {
			bad = true
			return 0
		}
		return g
	})
	if bad {
		return nil, fmt.Errorf("column reference out of scope in %s", e)
	}
	return out, nil
}

func tableGlobals(lg *plan.Logical, t int) []int {
	n := lg.Tables[t].Schema.NumCols()
	out := make([]int, n)
	for i := range out {
		out[i] = lg.ColOffset(t) + i
	}
	return out
}

func identityOrder(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func sameSchema(a, b *catalog.Schema) bool {
	if a.NumCols() != b.NumCols() {
		return false
	}
	ac, bc := a.Columns(), b.Columns()
	for i := range ac {
		if ac[i].Kind != bc[i].Kind {
			return false
		}
	}
	return true
}
