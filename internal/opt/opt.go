package opt

import (
	"fmt"
	"math"
	"sort"

	"ecodb/internal/exec"
	"ecodb/internal/expr"
	"ecodb/internal/hw/cpu"
	"ecodb/internal/obsv"
	"ecodb/internal/plan"
)

// Objective selects what the optimizer minimizes. The zero value is
// disabled — engines bypass the optimizer entirely and run hand-lowered
// plans unchanged, which is what keeps the golden suites byte-stable.
type Objective struct {
	Enabled bool
	// JouleWeight blends the two goals: 0 minimizes latency, 1 minimizes
	// simulated joules, intermediate values trade them geometrically.
	JouleWeight float64
}

// MinimizeLatency returns the $/s objective.
func MinimizeLatency() Objective { return Objective{Enabled: true, JouleWeight: 0} }

// MinimizeJoules returns the $/J objective.
func MinimizeJoules() Objective { return Objective{Enabled: true, JouleWeight: 1} }

// Blend returns a weighted objective; w is clamped to [0, 1].
func Blend(w float64) Objective {
	return Objective{Enabled: true, JouleWeight: clamp01(w)}
}

func (o Objective) String() string {
	switch {
	case !o.Enabled:
		return "disabled"
	case o.JouleWeight <= 0:
		return "latency"
	case o.JouleWeight >= 1:
		return "joules"
	default:
		return fmt.Sprintf("blend(%.2f)", o.JouleWeight)
	}
}

// score is the quantity minimized: a weighted geometric blend of seconds
// and joules. Logarithms make the weight unit-free — at weight w the
// optimizer accepts a 1% latency increase for roughly w/(1−w) percent of
// energy saving.
func (o Objective) score(secs, joules float64) float64 {
	return (1-o.JouleWeight)*math.Log(max(secs, 1e-12)) +
		o.JouleWeight*math.Log(max(joules, 1e-12))
}

// Env is the environment one optimization runs against: the simulated
// processor (for cycle→time/energy conversion under its current tuning),
// the engine's cost constants, and the execution options the session can
// actually exercise.
type Env struct {
	CPU     *cpu.CPU
	Cost    exec.CostModel
	Amplify float64
	// OverheadCycles is the per-statement overhead the engine charges
	// outside the operator tree (unamplified).
	OverheadCycles float64
	// MaxParallelism caps the degree the optimizer may choose (the
	// profile's configured parallelism; never above the core count).
	MaxParallelism int
	// SharedConcurrency is the expected number of queries co-attached to
	// a shared scan pass. Values above 1 enable the shared access path as
	// a candidate: pass-fired work (page streaming, zone consults)
	// amortizes to 1/Q per query, while response time stretches as the
	// queries time-share the processor.
	SharedConcurrency int
}

// Choice is the optimizer's output: the physical lowering choices plus the
// execution configuration, with the estimates that won.
type Choice struct {
	Phys        plan.PhysChoices
	Parallelism int
	// Shared selects the shared-scan access path for the plan's leaves.
	Shared     bool
	Objective  Objective
	EstSeconds float64
	EstJoules  float64
	EstRows    float64
}

// maxCandsPerSet caps the Pareto frontier kept per table subset during
// join enumeration.
const maxCandsPerSet = 8

// Optimize searches the physical plan space for lg — join order, build
// sides, pushdown depth, access path, parallelism — and returns the
// candidate the objective scores best. base is the hand-lowered (or
// front-end default) shape, always admitted as a candidate and used as
// the result-order reference.
//
// Result-order stability is a hard constraint, not a preference: join
// orders beyond base are only explored when the query aggregates (a hash
// table absorbs input row order) and has no LIMIT; and when a
// float-accumulating aggregate (SUM/AVG) is present, only shapes whose
// final probe stream is the same base table as base's are admitted —
// those accumulate every group in that table's heap order, making the
// aggregate bit-identical across all admitted shapes.
func Optimize(lg *plan.Logical, base plan.PhysChoices, env Env, obj Objective) (*Choice, error) {
	if !obj.Enabled {
		return nil, fmt.Errorf("opt: objective disabled")
	}
	if env.CPU == nil {
		return nil, fmt.Errorf("opt: environment has no CPU model")
	}
	if env.MaxParallelism < 1 {
		env.MaxParallelism = 1
	}
	if n := env.CPU.Config().Cores; env.MaxParallelism > n {
		env.MaxParallelism = n
	}
	e := newEst(lg, env)

	if base.JoinOrder == nil || base.BuildLeft == nil {
		def := lg.DefaultChoices()
		if base.JoinOrder == nil {
			base.JoinOrder = def.JoinOrder
		}
		if base.BuildLeft == nil {
			base.BuildLeft = def.BuildLeft
		}
	}

	sharedOpts := []bool{false}
	if env.SharedConcurrency > 1 {
		sharedOpts = append(sharedOpts, true)
	}

	var best *Choice
	bestScore := math.Inf(1)
	consider := func(order []int, builds []bool, pd plan.Pushdown) {
		c, outRows, _, ok := e.planCycles(order, builds, pd, false)
		if !ok {
			return
		}
		for _, shared := range sharedOpts {
			for par := 1; par <= env.MaxParallelism; par++ {
				secs, joules := e.timeEnergy(c, par, shared)
				score := obj.score(secs, joules)
				if score < bestScore-1e-12 {
					bestScore = score
					best = &Choice{
						Phys: plan.PhysChoices{
							JoinOrder: append([]int{}, order...),
							BuildLeft: append([]bool{}, builds...),
							Pushdown:  pd,
						},
						Parallelism: par,
						Shared:      shared,
						Objective:   obj,
						EstSeconds:  secs,
						EstJoules:   joules,
						EstRows:     outRows,
					}
				}
			}
		}
	}

	// The base shape first: ties go to the hand-lowered plan.
	for _, pd := range []plan.Pushdown{base.Pushdown, otherPushdown(base.Pushdown)} {
		consider(base.JoinOrder, base.BuildLeft, pd)
	}
	if e.orderFree() {
		pinned := -1
		if e.pinFinalProbe() {
			pinned = spineTable(base.JoinOrder, base.BuildLeft)
		}
		// The DP generates candidate shapes under full pushdown (its
		// frontier is only a candidate generator — consider re-costs every
		// shape exactly), then each shape is scored under both pushdowns.
		for _, sh := range e.enumerateShapes(pinned) {
			if sameShape(sh.order, sh.builds, base.JoinOrder, base.BuildLeft) {
				continue
			}
			for _, pd := range []plan.Pushdown{plan.PushdownAll, plan.PushdownBase} {
				consider(sh.order, sh.builds, pd)
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("opt: no executable plan for %s", lg.Describe())
	}
	return best, nil
}

func otherPushdown(p plan.Pushdown) plan.Pushdown {
	if p == plan.PushdownAll {
		return plan.PushdownBase
	}
	return plan.PushdownAll
}

func sameShape(ao []int, ab []bool, bo []int, bb []bool) bool {
	if len(ao) != len(bo) || len(ab) != len(bb) {
		return false
	}
	for i := range ao {
		if ao[i] != bo[i] {
			return false
		}
	}
	for i := range ab {
		if ab[i] != bb[i] {
			return false
		}
	}
	return true
}

// spineTable returns the base table whose heap order the plan's output
// stream follows: walking joins top-down, output order follows the probe
// side; the spine is the first probe-side leaf encountered, or the
// starting table when every join builds its leaf.
func spineTable(order []int, builds []bool) int {
	for i := len(builds) - 1; i >= 0; i-- {
		if builds[i] {
			return order[i+1]
		}
	}
	return order[0]
}

// orderFree reports whether join orders beyond the base may be explored
// at all: only aggregating queries absorb row order into a hash table,
// and LIMIT makes even aggregated output prefix-sensitive.
func (e *est) orderFree() bool {
	return e.lg.Agg != nil && e.lg.Limit < 0 && len(e.lg.Tables) > 1
}

// pinFinalProbe reports whether candidates must keep the base shape's
// probe spine. Always true for aggregating queries: the hash aggregate
// emits groups in first-seen order and SUM/AVG accumulate floats in
// arrival order, both of which follow the final probe stream — keeping
// the spine (with key-unique build sides, as TPC-H's PK joins are) keeps
// results byte-identical across every admitted shape.
func (e *est) pinFinalProbe() bool {
	return e.lg.Agg != nil
}

type shape struct {
	order  []int
	builds []bool
}

// cand is one enumeration candidate: a left-deep join prefix over a table
// subset with its accumulated cost. Cardinality is shared per subset.
type cand struct {
	set    plan.TableSet
	order  []int
	builds []bool
	rows   float64
	c      cycles
}

// enumerateShapes runs a Selinger-style dynamic program over connected
// table subsets, keeping a Pareto frontier of candidates per subset (no
// scalar cost exists before the objective is applied — a shape can win on
// compute cycles and lose on stalls, and both latency and joules are
// monotone in the five cycle buckets, so frontier pruning is safe for
// every objective, access path and parallelism scored later).
//
// pinned ≥ 0 names a table that must join last, probed (builds final =
// true) — the spine constraint for float-aggregating queries.
//
// The DP costs candidates under full pushdown; the caller re-costs every
// returned shape under each admissible pushdown depth.
func (e *est) enumerateShapes(pinned int) []shape {
	lg := e.lg
	n := len(lg.Tables)

	adj := make([]plan.TableSet, n)
	for i, c := range lg.Conjuncts {
		if !c.EquiJoin {
			continue
		}
		lt, rt := e.conjLeft[i], e.conjRight[i]
		adj[lt] = adj[lt].With(rt)
		adj[rt] = adj[rt].With(lt)
	}

	// Leaf scans are shape-independent; cost each table once.
	leafRows := make([]float64, n)
	leafCyc := make([]cycles, n)
	for t := 0; t < n; t++ {
		leafRows[t], leafCyc[t] = e.scanCost(t, e.singlePreds(t))
	}

	grow := n // tables the DP grows over
	if pinned >= 0 {
		grow = n - 1 // the pinned spine joins in a fixed final step
	}

	dp := make(map[plan.TableSet][]cand)
	for t := 0; t < n; t++ {
		if pinned >= 0 && t == pinned {
			continue
		}
		set := plan.TableSet(0).With(t)
		dp[set] = []cand{{set: set, order: []int{t}, builds: nil, rows: leafRows[t], c: leafCyc[t]}}
	}

	// Expand subsets in increasing size so every predecessor exists.
	for size := 1; size < grow; size++ {
		subsets := make([]plan.TableSet, 0, len(dp))
		for s := range dp {
			if s.Count() == size {
				subsets = append(subsets, s)
			}
		}
		sort.Slice(subsets, func(i, j int) bool { return subsets[i] < subsets[j] })
		for _, s := range subsets {
			for t := 0; t < n; t++ {
				if s.Has(t) || (pinned >= 0 && t == pinned) || adj[t]&s == 0 {
					continue
				}
				key := s.With(t)
				for _, cd := range dp[s] {
					for _, buildLeft := range []bool{true, false} {
						nc, ok := e.expand(cd, t, leafRows[t], leafCyc[t], buildLeft)
						if !ok {
							continue
						}
						dp[key] = paretoInsert(dp[key], nc)
					}
				}
			}
		}
	}

	var out []shape
	if pinned >= 0 {
		full := plan.TableSet(0)
		for t := 0; t < n; t++ {
			if t != pinned {
				full = full.With(t)
			}
		}
		for _, cd := range dp[full] {
			if adj[pinned]&full == 0 {
				break
			}
			// Build the dims, probe the spine.
			nc, ok := e.expand(cd, pinned, leafRows[pinned], leafCyc[pinned], true)
			if !ok {
				continue
			}
			out = append(out, shape{order: nc.order, builds: nc.builds})
		}
		return out
	}
	full := plan.TableSet(0)
	for t := 0; t < n; t++ {
		full = full.With(t)
	}
	for _, cd := range dp[full] {
		out = append(out, shape{order: cd.order, builds: cd.builds})
	}
	return out
}

// singlePreds lists table t's single-table conjunct predicates.
func (e *est) singlePreds(t int) []expr.Expr {
	only := plan.TableSet(0).With(t)
	var preds []expr.Expr
	for _, c := range e.lg.Conjuncts {
		if c.Tables == only {
			preds = append(preds, c.Pred)
		}
	}
	return preds
}

// expand grows a candidate by joining table t, mirroring one Lower step.
// leafRows/leafC are t's cached scan cost under full pushdown.
func (e *est) expand(cd cand, t int, leafRows float64, leafC cycles, buildLeft bool) (cand, bool) {
	_, residuals, matches, outRows, ok := e.joinStep(cd.set, cd.rows, t, leafRows, plan.PushdownAll)
	if !ok {
		return cand{}, false
	}

	buildRows, probeRows := cd.rows, leafRows
	if !buildLeft {
		buildRows, probeRows = leafRows, cd.rows
	}

	nc := cand{
		set:    cd.set.With(t),
		order:  append(append([]int{}, cd.order...), t),
		builds: append(append([]bool{}, cd.builds...), buildLeft),
		rows:   outRows,
		c:      cd.c,
	}
	nc.c.addAll(leafC)
	nc.c.addAll(e.joinCost(buildRows, probeRows, matches, residuals))
	return nc, true
}

// joinStep resolves the hash key and residual conjuncts for joining table
// t onto subset set, returning the pre-residual match count and the
// post-residual output cardinality.
func (e *est) joinStep(set plan.TableSet, setRows float64, t int, leafRows float64, pd plan.Pushdown) (keyIdx int, residuals []expr.Expr, matches, outRows float64, ok bool) {
	lg := e.lg
	newSet := set.With(t)
	keyIdx = -1
	for i, c := range lg.Conjuncts {
		if !c.EquiJoin || !c.Tables.SubsetOf(newSet) || c.Tables.SubsetOf(set) {
			continue
		}
		lt, rt := e.conjLeft[i], e.conjRight[i]
		if (set.Has(lt) && rt == t) || (set.Has(rt) && lt == t) {
			keyIdx = i
			break
		}
	}
	if keyIdx < 0 {
		return -1, nil, 0, 0, false
	}
	matches = setRows * leafRows * e.conjSel[keyIdx]
	outRows = matches
	only := plan.TableSet(0).With(t)
	for i, c := range lg.Conjuncts {
		if i == keyIdx || !c.Tables.SubsetOf(newSet) || c.Tables.SubsetOf(set) {
			continue
		}
		if c.Tables == only && pd == plan.PushdownAll {
			continue // pushed into the leaf scan, already applied
		}
		residuals = append(residuals, c.Pred)
		outRows *= e.conjSel[i]
	}
	return keyIdx, residuals, max(matches, minRows), max(outRows, minRows), true
}

// paretoInsert adds a candidate to a subset's frontier, dropping
// dominated entries (and the newcomer if dominated).
func paretoInsert(frontier []cand, nc cand) []cand {
	for _, f := range frontier {
		if nc.c.dominatedBy(f.c) {
			return frontier
		}
	}
	keep := frontier[:0]
	for _, f := range frontier {
		if !f.c.dominatedBy(nc.c) {
			keep = append(keep, f)
		}
	}
	keep = append(keep, nc)
	if len(keep) > maxCandsPerSet {
		// Deterministic overflow: keep the lowest total-cycle candidates.
		sort.Slice(keep, func(i, j int) bool {
			return keep[i].c.total() < keep[j].c.total()
		})
		keep = keep[:maxCandsPerSet]
	}
	return keep
}

// opEst annotates one operator for EXPLAIN: its description, estimated
// output rows, and estimated cycles (amplification excluded; applied at
// conversion).
type opEst struct {
	kind obsv.Kind
	desc string
	rows float64
	cyc  cycles
	// scanTable is ≥ 0 for scan leaves (index into lg.Tables).
	scanTable int
}

// planCycles walks one candidate shape exactly as plan.Lower would build
// it, accumulating estimated cycles. With collect it also records the
// per-operator estimates EXPLAIN renders. ok is false when the shape does
// not lower (no equi edge joins some table to its predecessors).
func (e *est) planCycles(order []int, builds []bool, pd plan.Pushdown, collect bool) (cycles, float64, []opEst, bool) {
	lg := e.lg
	if len(order) != len(lg.Tables) || len(builds) != len(lg.Tables)-1 {
		return cycles{}, 0, nil, false
	}
	var total cycles
	var ops []opEst
	// record is only invoked under collect so the desc strings (fmt-built)
	// cost nothing on the optimizer's hot enumeration path.
	record := func(kind obsv.Kind, desc string, rows float64, c cycles, scanTable int) {
		ops = append(ops, opEst{kind: kind, desc: desc, rows: rows, cyc: c, scanTable: scanTable})
	}

	placed := make([]bool, len(lg.Conjuncts))
	takeSingles := func(t int) (preds []expr.Expr) {
		only := plan.TableSet(0).With(t)
		for i, c := range lg.Conjuncts {
			if placed[i] || c.Tables != only {
				continue
			}
			preds = append(preds, c.Pred)
			placed[i] = true
		}
		return preds
	}

	t0 := order[0]
	pushed := takeSingles(t0)
	curRows, c0 := e.scanCost(t0, pushed)
	total.addAll(c0)
	if collect {
		record(obsv.KindScan, scanDesc(lg, t0, len(pushed) > 0), curRows, c0, t0)
	}
	curSet := plan.TableSet(0).With(t0)

	for step, t := range order[1:] {
		var leafPreds []expr.Expr
		if pd == plan.PushdownAll {
			leafPreds = takeSingles(t)
		}
		leafRows, leafC := e.scanCost(t, leafPreds)
		total.addAll(leafC)
		if collect {
			record(obsv.KindScan, scanDesc(lg, t, len(leafPreds) > 0), leafRows, leafC, t)
		}
		newSet := curSet.With(t)

		keyIdx := -1
		for i, c := range lg.Conjuncts {
			if placed[i] || !c.EquiJoin {
				continue
			}
			lt, rt := lg.TableOf(c.LeftCol), lg.TableOf(c.RightCol)
			if (curSet.Has(lt) && rt == t) || (curSet.Has(rt) && lt == t) {
				keyIdx = i
				break
			}
		}
		if keyIdx < 0 {
			return cycles{}, 0, nil, false
		}
		placed[keyIdx] = true
		matches := max(curRows*leafRows*e.conjunctSel(lg.Conjuncts[keyIdx]), minRows)

		var residuals []expr.Expr
		outRows := matches
		for i, c := range lg.Conjuncts {
			if placed[i] || !c.Tables.SubsetOf(newSet) {
				continue
			}
			residuals = append(residuals, c.Pred)
			outRows *= e.conjunctSel(c)
			placed[i] = true
		}
		outRows = max(outRows, minRows)

		buildRows, probeRows := curRows, leafRows
		if !builds[step] {
			buildRows, probeRows = leafRows, curRows
		}
		jc := e.joinCost(buildRows, probeRows, matches, residuals)
		total.addAll(jc)
		if collect {
			record(obsv.KindJoin, joinDesc(lg, keyIdx, builds[step], len(residuals)), outRows, jc, -1)
		}
		curRows, curSet = outRows, newSet
	}

	// Unplaced conjuncts become Filters in Lower; cost them the same way.
	for i, c := range lg.Conjuncts {
		if placed[i] {
			continue
		}
		var fc cycles
		fc.add(cpu.Compute, exprCyclesPerRow(c.Pred)*e.exprMult()*curRows)
		total.addAll(fc)
		curRows = max(curRows*e.sel(c.Pred), minRows)
		if collect {
			record(obsv.KindFilter, fmt.Sprintf("Filter(%s)", c.Pred), curRows, fc, -1)
		}
		placed[i] = true
	}

	if lg.Agg != nil {
		groups := e.groupCount(curRows)
		ac := e.aggCost(curRows, groups)
		total.addAll(ac)
		if collect {
			record(obsv.KindAgg, aggDesc(lg), groups, ac, -1)
		}
		curRows = groups
	}
	if lg.Project != nil {
		pc := e.projectCost(curRows)
		total.addAll(pc)
		if collect {
			record(obsv.KindProject, fmt.Sprintf("Project(%d exprs)", len(lg.Project.Exprs)), curRows, pc, -1)
		}
	}
	if len(lg.Sort) > 0 {
		sc := e.sortCost(curRows)
		total.addAll(sc)
		if collect {
			record(obsv.KindSort, fmt.Sprintf("Sort(%d keys)", len(lg.Sort)), curRows, sc, -1)
		}
	}
	if lg.Limit >= 0 && float64(lg.Limit) < curRows {
		curRows = float64(lg.Limit)
		if collect {
			record(obsv.KindLimit, fmt.Sprintf("Limit(%d)", lg.Limit), curRows, cycles{}, -1)
		}
	}
	rc := e.resultCost(curRows)
	total.addAll(rc)
	if collect {
		record(obsv.KindResult, "Result", curRows, rc, -1)
	}

	return total, curRows, ops, true
}

func scanDesc(lg *plan.Logical, t int, filtered bool) string {
	if filtered {
		return fmt.Sprintf("Scan(%s, filtered)", lg.Tables[t].Name)
	}
	return fmt.Sprintf("Scan(%s)", lg.Tables[t].Name)
}

func joinDesc(lg *plan.Logical, keyIdx int, buildLeft bool, residuals int) string {
	c := lg.Conjuncts[keyIdx]
	side := "build=left"
	if !buildLeft {
		side = "build=right"
	}
	d := fmt.Sprintf("HashJoin(%s = %s, %s", qualCol(lg, c.LeftCol), qualCol(lg, c.RightCol), side)
	if residuals > 0 {
		d += fmt.Sprintf(", %d residuals", residuals)
	}
	return d + ")"
}

func aggDesc(lg *plan.Logical) string {
	return fmt.Sprintf("Agg(%d group cols, %d aggs)", len(lg.Agg.GroupBy), len(lg.Agg.Specs))
}

// qualCol renders a global column id as table.column.
func qualCol(lg *plan.Logical, g int) string {
	return lg.Tables[lg.TableOf(g)].Name + "." + lg.ColName(g)
}
