package opt_test

import (
	"strings"
	"testing"

	"ecodb/internal/engine"
	"ecodb/internal/expr"
	"ecodb/internal/hw/system"
	"ecodb/internal/opt"
	"ecodb/internal/plan"
	"ecodb/internal/sql"
	"ecodb/internal/tpch"
)

// commercialEngine returns a warm commercial-profile engine over a small
// TPC-H load, optionally with an optimizer objective enabled.
func commercialEngine(t testing.TB, obj opt.Objective) *engine.Engine {
	t.Helper()
	prof := engine.ProfileCommercial()
	prof.WorkAmplification = 20
	prof.Objective = obj
	e := engine.New(prof, system.NewSUT())
	tpch.NewGenerator(0.01, 42).Load(e.Catalog(),
		tpch.Region, tpch.Nation, tpch.Supplier, tpch.Customer, tpch.Orders, tpch.Lineitem)
	e.WarmAll()
	return e
}

func rowsEqual(a, b []expr.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestExtractQ5RoundTrip: extracting the hand-lowered Q5 and re-lowering
// it under its own base choices must reproduce the original rows exactly,
// in the original order.
func TestExtractQ5RoundTrip(t *testing.T) {
	e := commercialEngine(t, opt.Objective{})
	p := tpch.Q5(e.Catalog(), "ASIA", 1994)

	lg, base, err := opt.Extract(p)
	if err != nil {
		t.Fatalf("extract Q5: %v", err)
	}
	if got := len(lg.Tables); got != 6 {
		t.Fatalf("extracted %d tables, want 6", got)
	}
	// The hand plan builds the supplier leaf at the final join — the probe
	// spine must be lineitem, not the last-joined table.
	if base.BuildLeft[len(base.BuildLeft)-1] {
		t.Fatalf("Q5's final join builds the supplier leaf; extracted BuildLeft=%v", base.BuildLeft)
	}

	relowered, err := lg.Lower(base)
	if err != nil {
		t.Fatalf("re-lower extracted Q5: %v", err)
	}
	want, _ := e.Exec(p)
	got, _ := e.Exec(relowered)
	if !rowsEqual(want.Rows, got.Rows) {
		t.Fatalf("re-lowered Q5 diverges from the hand plan: %d vs %d rows", len(got.Rows), len(want.Rows))
	}
}

// TestObjectivesDisagree: on the Q5 join the latency-optimal and
// joules-optimal choices must differ, with each winning its own metric.
func TestObjectivesDisagree(t *testing.T) {
	e := commercialEngine(t, opt.Objective{})
	lg, base, err := opt.Extract(tpch.Q5(e.Catalog(), "ASIA", 1994))
	if err != nil {
		t.Fatal(err)
	}
	env, _ := e.OptimizerEnv()

	lat, err := opt.Optimize(lg, base, env, opt.MinimizeLatency())
	if err != nil {
		t.Fatalf("latency optimize: %v", err)
	}
	jou, err := opt.Optimize(lg, base, env, opt.MinimizeJoules())
	if err != nil {
		t.Fatalf("joules optimize: %v", err)
	}

	if jou.EstJoules > lat.EstJoules {
		t.Errorf("joules objective estimates more joules than latency objective: %g > %g",
			jou.EstJoules, lat.EstJoules)
	}
	if lat.EstSeconds > jou.EstSeconds {
		t.Errorf("latency objective estimates more seconds than joules objective: %g > %g",
			lat.EstSeconds, jou.EstSeconds)
	}
	samePhys := lat.Parallelism == jou.Parallelism && lat.Shared == jou.Shared &&
		samePlan(lat.Phys, jou.Phys)
	if samePhys {
		t.Errorf("objectives chose identical plans: %+v", lat)
	}
}

func samePlan(a, b plan.PhysChoices) bool {
	if len(a.JoinOrder) != len(b.JoinOrder) || a.Pushdown != b.Pushdown {
		return false
	}
	for i := range a.JoinOrder {
		if a.JoinOrder[i] != b.JoinOrder[i] {
			return false
		}
	}
	for i := range a.BuildLeft {
		if a.BuildLeft[i] != b.BuildLeft[i] {
			return false
		}
	}
	return true
}

// TestOptimizedResultsBitIdentical is the optimizer's hard safety
// property: for every query shape the engine routes through it, under
// every objective, result rows must be bit-identical (values AND order)
// to the hand-lowered baseline.
func TestOptimizedResultsBitIdentical(t *testing.T) {
	type mk func(e *engine.Engine) plan.Node
	queries := map[string]mk{
		"q5": func(e *engine.Engine) plan.Node {
			return tpch.Q5(e.Catalog(), "AMERICA", 1995)
		},
		"revenue_agg": func(e *engine.Engine) plan.Node {
			return tpch.RevenueByQuantityQuery(e.Catalog(), 30)
		},
		"band_scan": func(e *engine.Engine) plan.Node {
			return tpch.QuantityBandQuery(e.Catalog(), 11, 2)
		},
		"sql_join_residual": func(e *engine.Engine) plan.Node {
			p, err := sql.Plan(e.Catalog(), `SELECT n_name, COUNT(*) AS suppliers
				FROM nation JOIN supplier ON s_nationkey = n_nationkey AND s_acctbal > n_nationkey
				GROUP BY n_name ORDER BY n_name`)
			if err != nil {
				t.Fatalf("bind: %v", err)
			}
			return p
		},
	}

	baseline := commercialEngine(t, opt.Objective{})
	for _, obj := range []opt.Objective{opt.MinimizeLatency(), opt.MinimizeJoules(), opt.Blend(0.5)} {
		optimized := commercialEngine(t, obj)
		for name, build := range queries {
			want, _ := baseline.Exec(build(baseline))
			got, _ := optimized.Exec(build(optimized))
			if !rowsEqual(want.Rows, got.Rows) {
				t.Errorf("%s under %s objective diverges from baseline: %d vs %d rows",
					name, obj, len(got.Rows), len(want.Rows))
			}
		}
	}
}

// TestSharedAccessPathFollowsObjective: with co-attached queries expected,
// the joules objective takes the shared pass (pass work amortizes) while
// the latency objective stays private (sharing stretches response time).
func TestSharedAccessPathFollowsObjective(t *testing.T) {
	e := commercialEngine(t, opt.Objective{})
	lg, base, err := opt.Extract(tpch.QuantityBandQuery(e.Catalog(), 21, 2))
	if err != nil {
		t.Fatal(err)
	}
	env, _ := e.OptimizerEnv()
	env.SharedConcurrency = 8

	jou, err := opt.Optimize(lg, base, env, opt.MinimizeJoules())
	if err != nil {
		t.Fatal(err)
	}
	if !jou.Shared {
		t.Errorf("joules objective should ride the shared pass at concurrency 8, chose private")
	}
	lat, err := opt.Optimize(lg, base, env, opt.MinimizeLatency())
	if err != nil {
		t.Fatal(err)
	}
	if lat.Shared {
		t.Errorf("latency objective should scan privately, chose shared")
	}
}

// TestSharedSessionOptimizedResults: a shared session with an objective
// enabled still returns exactly the private baseline's rows, whichever
// access path the optimizer picks.
func TestSharedSessionOptimizedResults(t *testing.T) {
	baseline := commercialEngine(t, opt.Objective{})
	optimized := commercialEngine(t, opt.MinimizeJoules())

	want, _ := baseline.Exec(tpch.QuantityBandQuery(baseline.Catalog(), 5, 2))

	s := optimized.NewSharedSession()
	s.SetExpectedConcurrency(8)
	rows := s.Query(tpch.QuantityBandQuery(optimized.Catalog(), 5, 2))
	var got []expr.Row
	for {
		b, err := rows.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		got = b.AppendRowsTo(got)
	}
	if !rowsEqual(want.Rows, got) {
		t.Fatalf("shared-session optimized query diverges: %d vs %d rows", len(got), len(want.Rows))
	}
}

// TestExplainSQL: the SQL front end's EXPLAIN renders the chosen plan
// with per-operator estimates.
func TestExplainSQL(t *testing.T) {
	e := commercialEngine(t, opt.MinimizeJoules())
	out, err := sql.Explain(e, `EXPLAIN SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
		FROM region
		JOIN nation ON n_regionkey = r_regionkey
		JOIN customer ON c_nationkey = n_nationkey
		JOIN orders ON o_custkey = c_custkey
		JOIN lineitem ON l_orderkey = o_orderkey
		JOIN supplier ON s_suppkey = l_suppkey AND s_nationkey = c_nationkey
		WHERE r_name = 'ASIA'
		  AND o_orderdate >= DATE '1994-01-01' AND o_orderdate < DATE '1995-01-01'
		GROUP BY n_name ORDER BY revenue DESC`)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	for _, want := range []string{"objective=joules", "join order:", "Scan(lineitem", "HashJoin(", "Agg(", "rows≈"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	// EXPLAIN statements must not execute.
	if _, err := sql.Plan(e.Catalog(), `EXPLAIN SELECT * FROM nation`); err == nil {
		t.Error("EXPLAIN statement should not be executable via Plan")
	}
}

// TestOptimizerBypassesUnknownShapes: a plan the extractor cannot model
// executes as handed in rather than failing.
func TestOptimizerBypassesUnknownShapes(t *testing.T) {
	baseline := commercialEngine(t, opt.Objective{})
	optimized := commercialEngine(t, opt.MinimizeJoules())

	// A bushy join: both children of the root join are themselves joins.
	mk := func(e *engine.Engine) plan.Node {
		cat := e.Catalog()
		rn := plan.NewHashJoin(
			plan.NewScan(cat.MustTable(tpch.Region), nil),
			plan.NewScan(cat.MustTable(tpch.Nation), nil),
			cat.MustTable(tpch.Region).Schema.MustIndex("r_regionkey"),
			cat.MustTable(tpch.Nation).Schema.MustIndex("n_regionkey"), nil)
		sc := plan.NewHashJoin(
			plan.NewScan(cat.MustTable(tpch.Supplier), nil),
			plan.NewScan(cat.MustTable(tpch.Customer), nil),
			cat.MustTable(tpch.Supplier).Schema.MustIndex("s_nationkey"),
			cat.MustTable(tpch.Customer).Schema.MustIndex("c_nationkey"), nil)
		return plan.NewHashJoin(rn, sc,
			rn.Schema().MustIndex("n_nationkey"),
			sc.Schema().MustIndex("s_nationkey"), nil)
	}
	if _, _, err := opt.Extract(mk(baseline)); err == nil {
		t.Fatal("bushy join should not extract")
	}
	want, _ := baseline.Exec(mk(baseline))
	got, _ := optimized.Exec(mk(optimized))
	if !rowsEqual(want.Rows, got.Rows) {
		t.Fatalf("bypassed plan diverges: %d vs %d rows", len(got.Rows), len(want.Rows))
	}
}
