package plan

import (
	"fmt"
	"strings"

	"ecodb/internal/catalog"
	"ecodb/internal/expr"
)

// This file is the logical half of the planner: a bound relational-algebra
// description of a query over a *global column space* — the concatenation
// of every FROM table's columns in declaration order — separated from the
// physical decisions (join order, build sides, pushdown depth, access
// path) that Lower applies to produce an executable Node tree. Binding and
// validation happen here, against (table, column) pairs, so front ends
// (sql, programmatic extraction) only translate syntax.

// TableSet is a bitmask over a Logical plan's table positions.
type TableSet uint64

// MaxTables bounds the FROM list so TableSet fits one word.
const MaxTables = 64

// With returns the set with table i added.
func (s TableSet) With(i int) TableSet { return s | 1<<uint(i) }

// Has reports membership of table i.
func (s TableSet) Has(i int) bool { return s&(1<<uint(i)) != 0 }

// SubsetOf reports whether every member of s is in t.
func (s TableSet) SubsetOf(t TableSet) bool { return s&^t == 0 }

// Count returns the number of member tables.
func (s TableSet) Count() int {
	n := 0
	for ; s != 0; s &= s - 1 {
		n++
	}
	return n
}

// Conjunct is one bound predicate conjunct over the global column space,
// annotated with the tables it touches and, when it has the shape
// col = col across two different tables, the equi-join columns — the edges
// the optimizer's join enumeration walks.
type Conjunct struct {
	Pred   expr.Expr
	Tables TableSet
	// EquiJoin marks Pred as exactly Col(a) = Col(b) with a and b in
	// different tables; LeftCol/RightCol are their global column ids.
	EquiJoin          bool
	LeftCol, RightCol int
}

// AggQuery describes grouping and aggregation: group-by columns as global
// ids, aggregate arguments as expressions over the global space. Output
// columns are the groups followed by the aggregates, as Agg emits them.
type AggQuery struct {
	GroupBy []int
	Specs   []AggSpec
}

// ProjectSpec describes the output expressions. For a plain query they are
// bound over the global column space; when the query aggregates they are
// bound over the aggregate's output schema (groups then aggregates), whose
// positions do not depend on physical join shape.
type ProjectSpec struct {
	Exprs []expr.Expr
	Names []string
	Kinds []expr.Kind
}

// Logical is a bound logical query: which tables, which predicate
// conjuncts, and what shape of aggregation/projection/ordering — nothing
// about join order, build sides, pushdown or access paths. Sort keys are
// positions in the output schema, which is physical-shape invariant.
type Logical struct {
	Tables    []*catalog.Table
	Conjuncts []Conjunct
	Agg       *AggQuery
	Project   *ProjectSpec // nil: emit the global column space (or Agg output) as is
	Sort      []SortKey
	Limit     int // -1: no limit

	offsets []int // global id of each table's first column
}

// NewLogical starts a logical plan over the given FROM tables.
func NewLogical(tables []*catalog.Table) (*Logical, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("plan: logical plan needs at least one table")
	}
	if len(tables) > MaxTables {
		return nil, fmt.Errorf("plan: %d tables exceeds the %d-table limit", len(tables), MaxTables)
	}
	lg := &Logical{Tables: tables, Limit: -1, offsets: make([]int, len(tables))}
	off := 0
	for i, t := range tables {
		lg.offsets[i] = off
		off += t.Schema.NumCols()
	}
	return lg, nil
}

// NumCols returns the width of the global column space.
func (lg *Logical) NumCols() int {
	last := len(lg.Tables) - 1
	return lg.offsets[last] + lg.Tables[last].Schema.NumCols()
}

// ColOffset returns the global id of table t's first column.
func (lg *Logical) ColOffset(t int) int { return lg.offsets[t] }

// TableOf returns which table a global column id belongs to.
func (lg *Logical) TableOf(g int) int {
	for t := len(lg.offsets) - 1; t >= 0; t-- {
		if g >= lg.offsets[t] {
			return t
		}
	}
	panic(fmt.Sprintf("plan: global column %d out of range", g))
}

// ColName returns the base-table column name of a global id.
func (lg *Logical) ColName(g int) string {
	t := lg.TableOf(g)
	return lg.Tables[t].Schema.Columns()[g-lg.offsets[t]].Name
}

// ColKind returns the base-table column kind of a global id.
func (lg *Logical) ColKind(g int) expr.Kind {
	t := lg.TableOf(g)
	return lg.Tables[t].Schema.Columns()[g-lg.offsets[t]].Kind
}

// Resolve binds a (table, column) reference to a global column id. An
// empty table name searches all tables and reports ambiguity — the
// validation that used to live in sql's scope machinery.
func (lg *Logical) Resolve(table, column string) (int, error) {
	if table != "" {
		for i, t := range lg.Tables {
			if t.Name == table {
				if idx, ok := t.Schema.Index(column); ok {
					return lg.offsets[i] + idx, nil
				}
				return 0, fmt.Errorf("plan: table %q has no column %q", table, column)
			}
		}
		return 0, fmt.Errorf("plan: no table %q in FROM", table)
	}
	found := -1
	for i, t := range lg.Tables {
		if idx, ok := t.Schema.Index(column); ok {
			if found >= 0 {
				return 0, fmt.Errorf("plan: column %q is ambiguous", column)
			}
			found = lg.offsets[i] + idx
		}
	}
	if found < 0 {
		return 0, fmt.Errorf("plan: unknown column %q", column)
	}
	return found, nil
}

// AddPredicate analyzes one bound conjunct (columns are global ids) and
// records it: which tables it touches, and whether it is an equi-join
// edge. Column ids out of range are a binding bug and error out here.
func (lg *Logical) AddPredicate(pred expr.Expr) error {
	cols := ExprCols(pred)
	var set TableSet
	for _, g := range cols {
		if g < 0 || g >= lg.NumCols() {
			return fmt.Errorf("plan: predicate %s references column %d outside the global space", pred, g)
		}
		set = set.With(lg.TableOf(g))
	}
	c := Conjunct{Pred: pred, Tables: set}
	if cmp, ok := pred.(expr.Cmp); ok && cmp.Op == expr.EQ {
		l, lok := cmp.L.(expr.Col)
		r, rok := cmp.R.(expr.Col)
		if lok && rok && lg.TableOf(l.Idx) != lg.TableOf(r.Idx) {
			c.EquiJoin = true
			c.LeftCol, c.RightCol = l.Idx, r.Idx
		}
	}
	lg.Conjuncts = append(lg.Conjuncts, c)
	return nil
}

// SetAgg installs grouping and aggregation, validating global column ids.
func (lg *Logical) SetAgg(groupBy []int, specs []AggSpec) error {
	for _, g := range groupBy {
		if g < 0 || g >= lg.NumCols() {
			return fmt.Errorf("plan: group-by column %d outside the global space", g)
		}
	}
	for _, s := range specs {
		if s.Arg == nil && s.Func != Count {
			return fmt.Errorf("plan: aggregate %s needs an argument", s.Func)
		}
	}
	lg.Agg = &AggQuery{GroupBy: groupBy, Specs: specs}
	return nil
}

// OutputSchema returns the query's result schema — stable across every
// physical lowering, which is what makes Sort positions and golden results
// meaningful independent of the optimizer's choices.
func (lg *Logical) OutputSchema() *catalog.Schema {
	if lg.Project != nil {
		cols := make([]catalog.Column, len(lg.Project.Exprs))
		for i := range cols {
			cols[i] = catalog.Column{Name: lg.Project.Names[i], Kind: lg.Project.Kinds[i]}
		}
		return catalog.NewSchema(cols...)
	}
	if lg.Agg != nil {
		cols := make([]catalog.Column, 0, len(lg.Agg.GroupBy)+len(lg.Agg.Specs))
		for _, g := range lg.Agg.GroupBy {
			cols = append(cols, catalog.Column{Name: lg.ColName(g), Kind: lg.ColKind(g)})
		}
		for _, s := range lg.Agg.Specs {
			kind := expr.KindFloat
			if s.Func == Count {
				kind = expr.KindInt
			}
			cols = append(cols, catalog.Column{Name: s.Name, Kind: kind})
		}
		return catalog.NewSchema(cols...)
	}
	return qualifySchema(lg.globalColumns())
}

// globalColumns lists the global column space as catalog columns.
func (lg *Logical) globalColumns() []catalog.Column {
	cols := make([]catalog.Column, 0, lg.NumCols())
	for _, t := range lg.Tables {
		cols = append(cols, t.Schema.Columns()...)
	}
	return cols
}

// qualifySchema builds a schema from columns, renaming duplicates the way
// catalog.Concat does so star results over self-named tables stay legal.
func qualifySchema(cols []catalog.Column) *catalog.Schema {
	seen := make(map[string]int)
	out := make([]catalog.Column, len(cols))
	copy(out, cols)
	for i := range out {
		n := out[i].Name
		seen[n]++
		if seen[n] > 1 {
			out[i].Name = fmt.Sprintf("%s_%d", n, seen[n])
		}
	}
	return catalog.NewSchema(out...)
}

// Pushdown selects how deep single-table conjuncts are pushed.
type Pushdown int

const (
	// PushdownBase pushes only the first-ordered table's conjuncts into
	// its scan — the legacy front-end shape.
	PushdownBase Pushdown = iota
	// PushdownAll pushes every single-table conjunct into its scan.
	PushdownAll
)

func (p Pushdown) String() string {
	if p == PushdownAll {
		return "all"
	}
	return "base"
}

// PhysChoices is one point in the physical plan space: the decisions the
// optimizer makes and Lower mechanically applies. Access path (private vs
// shared scan) and parallelism degree are execution-time concerns carried
// by opt's result, not plan structure.
type PhysChoices struct {
	// JoinOrder is a permutation of table positions; nil keeps FROM order.
	JoinOrder []int
	// BuildLeft[i] controls join step i (which adds JoinOrder[i+1]): true
	// builds the accumulated left side and probes the new table, false
	// builds the new table and probes the accumulated stream.
	BuildLeft []bool
	// Pushdown selects predicate pushdown depth.
	Pushdown Pushdown
}

// DefaultChoices reproduces the hand-lowered shape: FROM-order left-deep
// joins, accumulated side as build, full pushdown.
func (lg *Logical) DefaultChoices() PhysChoices {
	order := make([]int, len(lg.Tables))
	for i := range order {
		order[i] = i
	}
	bl := make([]bool, max(len(lg.Tables)-1, 0))
	for i := range bl {
		bl[i] = true
	}
	return PhysChoices{JoinOrder: order, BuildLeft: bl, Pushdown: PushdownAll}
}

// Lower produces the physical operator tree for one choice of join order,
// build sides and pushdown depth. Join keys come from the logical equi-join
// conjuncts; every other conjunct lands at the earliest operator whose
// inputs cover it (scan filter, join residual, or — defensively — a Filter).
// The result's output schema equals OutputSchema regardless of choices.
func (lg *Logical) Lower(ch PhysChoices) (Node, error) {
	order := ch.JoinOrder
	if order == nil {
		order = lg.DefaultChoices().JoinOrder
	}
	if len(order) != len(lg.Tables) {
		return nil, fmt.Errorf("plan: join order has %d entries for %d tables", len(order), len(lg.Tables))
	}
	buildLeft := ch.BuildLeft
	if buildLeft == nil {
		buildLeft = lg.DefaultChoices().BuildLeft
	}
	if len(buildLeft) != len(lg.Tables)-1 {
		return nil, fmt.Errorf("plan: build sides have %d entries for %d joins", len(buildLeft), len(lg.Tables)-1)
	}

	placed := make([]bool, len(lg.Conjuncts))

	// scanOf builds table t's leaf, absorbing its single-table conjuncts
	// when the pushdown depth allows.
	scanOf := func(t int, push bool) *Scan {
		var pred expr.Expr
		if push {
			only := TableSet(0).With(t)
			for i, c := range lg.Conjuncts {
				if placed[i] || c.Tables != only {
					continue
				}
				pred = andExpr(pred, RemapExpr(c.Pred, func(g int) int { return g - lg.offsets[t] }))
				placed[i] = true
			}
		}
		return NewScan(lg.Tables[t], pred)
	}

	t0 := order[0]
	var cur Node = scanOf(t0, true)
	curMap := lg.tableGlobals(t0)
	curSet := TableSet(0).With(t0)

	for step, ti := range order[1:] {
		t := ti
		leaf := scanOf(t, ch.Pushdown == PushdownAll)
		newSet := curSet.With(t)

		// Hash keys: the first unplaced equi-join edge between the
		// accumulated set and the new table.
		keyIdx := -1
		var gCur, gNew int
		for i, c := range lg.Conjuncts {
			if placed[i] || !c.EquiJoin {
				continue
			}
			lt, rt := lg.TableOf(c.LeftCol), lg.TableOf(c.RightCol)
			switch {
			case curSet.Has(lt) && rt == t:
				keyIdx, gCur, gNew = i, c.LeftCol, c.RightCol
			case curSet.Has(rt) && lt == t:
				keyIdx, gCur, gNew = i, c.RightCol, c.LeftCol
			}
			if keyIdx >= 0 {
				break
			}
		}
		if keyIdx < 0 {
			return nil, fmt.Errorf("plan: no equality joins %s to the preceding tables", lg.Tables[t].Name)
		}
		placed[keyIdx] = true

		var build, probe Node
		var buildKey, probeKey int
		var newMap []int
		if buildLeft[step] {
			build, probe = cur, leaf
			buildKey = indexOfGlobal(curMap, gCur)
			probeKey = gNew - lg.offsets[t]
			newMap = append(append([]int{}, curMap...), lg.tableGlobals(t)...)
		} else {
			build, probe = leaf, cur
			buildKey = gNew - lg.offsets[t]
			probeKey = indexOfGlobal(curMap, gCur)
			newMap = append(lg.tableGlobals(t), curMap...)
		}

		// Residual: every remaining conjunct whose tables are now covered.
		var residual expr.Expr
		for i, c := range lg.Conjuncts {
			if placed[i] || !c.Tables.SubsetOf(newSet) {
				continue
			}
			residual = andExpr(residual, RemapExpr(c.Pred, func(g int) int { return indexOfGlobal(newMap, g) }))
			placed[i] = true
		}

		cur = NewHashJoin(build, probe, buildKey, probeKey, residual)
		curMap, curSet = newMap, newSet
	}

	// Defensive: anything unplaced (single-table queries push everything,
	// so this only fires on malformed conjunct sets) becomes a Filter.
	for i, c := range lg.Conjuncts {
		if placed[i] {
			continue
		}
		cur = NewFilter(cur, RemapExpr(c.Pred, func(g int) int { return indexOfGlobal(curMap, g) }))
		placed[i] = true
	}

	if lg.Agg != nil {
		groups := make([]int, len(lg.Agg.GroupBy))
		for i, g := range lg.Agg.GroupBy {
			groups[i] = indexOfGlobal(curMap, g)
		}
		specs := make([]AggSpec, len(lg.Agg.Specs))
		for i, s := range lg.Agg.Specs {
			specs[i] = s
			if s.Arg != nil {
				specs[i].Arg = RemapExpr(s.Arg, func(g int) int { return indexOfGlobal(curMap, g) })
			}
		}
		cur = NewAgg(cur, groups, specs)
	}

	switch {
	case lg.Project != nil && lg.Agg != nil:
		// Projection over the aggregate's output: positions are already
		// physical-shape invariant.
		cur = NewProject(cur, lg.Project.Exprs, lg.Project.Names, lg.Project.Kinds)
	case lg.Project != nil:
		exprs := make([]expr.Expr, len(lg.Project.Exprs))
		for i, e := range lg.Project.Exprs {
			exprs[i] = RemapExpr(e, func(g int) int { return indexOfGlobal(curMap, g) })
		}
		cur = NewProject(cur, exprs, lg.Project.Names, lg.Project.Kinds)
	case lg.Agg == nil:
		// Star output: restore global column order when the physical
		// shape shuffled it, so results are lowering-invariant.
		if !isIdentity(curMap) {
			out := lg.OutputSchema()
			exprs := make([]expr.Expr, lg.NumCols())
			names := make([]string, lg.NumCols())
			kinds := make([]expr.Kind, lg.NumCols())
			for g := 0; g < lg.NumCols(); g++ {
				exprs[g] = expr.Col{Idx: indexOfGlobal(curMap, g), Name: lg.ColName(g)}
				names[g] = out.Columns()[g].Name
				kinds[g] = out.Columns()[g].Kind
			}
			cur = NewProject(cur, exprs, names, kinds)
		}
	}

	for _, k := range lg.Sort {
		if k.Col < 0 || k.Col >= cur.Schema().NumCols() {
			return nil, fmt.Errorf("plan: sort key %d outside the output schema", k.Col)
		}
	}
	if len(lg.Sort) > 0 {
		cur = NewSort(cur, lg.Sort...)
	}
	if lg.Limit >= 0 {
		cur = NewLimit(cur, lg.Limit)
	}
	return cur, nil
}

// tableGlobals lists table t's global column ids in order.
func (lg *Logical) tableGlobals(t int) []int {
	n := lg.Tables[t].Schema.NumCols()
	out := make([]int, n)
	for i := range out {
		out[i] = lg.offsets[t] + i
	}
	return out
}

func indexOfGlobal(m []int, g int) int {
	for i, v := range m {
		if v == g {
			return i
		}
	}
	panic(fmt.Sprintf("plan: global column %d not in scope during lowering", g))
}

func isIdentity(m []int) bool {
	for i, v := range m {
		if i != v {
			return false
		}
	}
	return true
}

func andExpr(acc, e expr.Expr) expr.Expr {
	if acc == nil {
		return e
	}
	if a, ok := acc.(expr.And); ok {
		return expr.And{Terms: append(append([]expr.Expr{}, a.Terms...), e)}
	}
	return expr.And{Terms: []expr.Expr{acc, e}}
}

// Describe summarizes the logical plan for diagnostics.
func (lg *Logical) Describe() string {
	var b strings.Builder
	names := make([]string, len(lg.Tables))
	for i, t := range lg.Tables {
		names[i] = t.Name
	}
	fmt.Fprintf(&b, "Logical(%s", strings.Join(names, " ⨝ "))
	if n := len(lg.Conjuncts); n > 0 {
		fmt.Fprintf(&b, ", %d conjuncts", n)
	}
	if lg.Agg != nil {
		fmt.Fprintf(&b, ", agg[%d groups, %d aggs]", len(lg.Agg.GroupBy), len(lg.Agg.Specs))
	}
	if lg.Project != nil {
		fmt.Fprintf(&b, ", project[%d]", len(lg.Project.Exprs))
	}
	if len(lg.Sort) > 0 {
		fmt.Fprintf(&b, ", sort[%d]", len(lg.Sort))
	}
	if lg.Limit >= 0 {
		fmt.Fprintf(&b, ", limit %d", lg.Limit)
	}
	b.WriteString(")")
	return b.String()
}

// ExprCols returns the column positions an expression references.
func ExprCols(e expr.Expr) []int {
	var out []int
	WalkCols(e, func(idx int) { out = append(out, idx) })
	return out
}

// WalkCols visits every column reference in an expression.
func WalkCols(e expr.Expr, f func(idx int)) {
	switch n := e.(type) {
	case expr.Col:
		f(n.Idx)
	case expr.Const:
	case expr.Cmp:
		WalkCols(n.L, f)
		WalkCols(n.R, f)
	case expr.Between:
		WalkCols(n.E, f)
	case expr.And:
		for _, t := range n.Terms {
			WalkCols(t, f)
		}
	case expr.Or:
		for _, t := range n.Terms {
			WalkCols(t, f)
		}
	case expr.Not:
		WalkCols(n.E, f)
	case *expr.InHash:
		WalkCols(n.E, f)
	case expr.Arith:
		WalkCols(n.L, f)
		WalkCols(n.R, f)
	default:
		panic(fmt.Sprintf("plan: cannot walk expression %T", e))
	}
}

// RemapExpr rewrites an expression's column positions through f, leaving
// the original untouched.
func RemapExpr(e expr.Expr, f func(int) int) expr.Expr {
	switch n := e.(type) {
	case expr.Col:
		return expr.Col{Idx: f(n.Idx), Name: n.Name}
	case expr.Const:
		return n
	case expr.Cmp:
		return expr.Cmp{Op: n.Op, L: RemapExpr(n.L, f), R: RemapExpr(n.R, f)}
	case expr.Between:
		return expr.Between{E: RemapExpr(n.E, f), Lo: n.Lo, Hi: n.Hi}
	case expr.And:
		terms := make([]expr.Expr, len(n.Terms))
		for i, t := range n.Terms {
			terms[i] = RemapExpr(t, f)
		}
		return expr.And{Terms: terms}
	case expr.Or:
		terms := make([]expr.Expr, len(n.Terms))
		for i, t := range n.Terms {
			terms[i] = RemapExpr(t, f)
		}
		return expr.Or{Terms: terms}
	case expr.Not:
		return expr.Not{E: RemapExpr(n.E, f)}
	case *expr.InHash:
		return &expr.InHash{E: RemapExpr(n.E, f), Set: n.Set}
	case expr.Arith:
		return expr.Arith{Op: n.Op, L: RemapExpr(n.L, f), R: RemapExpr(n.R, f)}
	default:
		panic(fmt.Sprintf("plan: cannot remap expression %T", e))
	}
}
