package plan

import (
	"strings"
	"testing"

	"ecodb/internal/catalog"
	"ecodb/internal/expr"
)

func logicalFixture(t *testing.T) (*Logical, *catalog.Table, *catalog.Table) {
	t.Helper()
	a := catalog.NewTable("a", catalog.NewSchema(
		catalog.Column{Name: "id", Kind: expr.KindInt},
		catalog.Column{Name: "v", Kind: expr.KindInt},
	))
	b := catalog.NewTable("b", catalog.NewSchema(
		catalog.Column{Name: "aid", Kind: expr.KindInt},
		catalog.Column{Name: "v", Kind: expr.KindInt},
	))
	lg, err := NewLogical([]*catalog.Table{a, b})
	if err != nil {
		t.Fatal(err)
	}
	return lg, a, b
}

func TestLogicalResolve(t *testing.T) {
	lg, _, _ := logicalFixture(t)

	if g, err := lg.Resolve("", "id"); err != nil || g != 0 {
		t.Fatalf("id -> %d, %v", g, err)
	}
	if g, err := lg.Resolve("", "aid"); err != nil || g != 2 {
		t.Fatalf("aid -> %d, %v", g, err)
	}
	if g, err := lg.Resolve("b", "v"); err != nil || g != 3 {
		t.Fatalf("b.v -> %d, %v", g, err)
	}
	if _, err := lg.Resolve("", "v"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("unqualified duplicate should be ambiguous, got %v", err)
	}
	if _, err := lg.Resolve("", "nope"); err == nil {
		t.Fatal("unknown column should fail")
	}
	if _, err := lg.Resolve("c", "v"); err == nil {
		t.Fatal("unknown table should fail")
	}
}

func TestLogicalLowerShapes(t *testing.T) {
	lg, _, _ := logicalFixture(t)
	mustPred := func(e expr.Expr) {
		if err := lg.AddPredicate(e); err != nil {
			t.Fatal(err)
		}
	}
	// a.id = b.aid (join edge), a.v > 1 (single-table), a.v < b.v (residual).
	mustPred(expr.Cmp{Op: expr.EQ, L: expr.Col{Idx: 0, Name: "id"}, R: expr.Col{Idx: 2, Name: "aid"}})
	mustPred(expr.Cmp{Op: expr.GT, L: expr.Col{Idx: 1, Name: "v"}, R: expr.Const{V: expr.Int(1)}})
	mustPred(expr.Cmp{Op: expr.LT, L: expr.Col{Idx: 1, Name: "v"}, R: expr.Col{Idx: 3, Name: "v"}})

	if !lg.Conjuncts[0].EquiJoin || lg.Conjuncts[0].Tables != TableSet(0b11) {
		t.Fatalf("join conjunct analysis = %+v", lg.Conjuncts[0])
	}
	if lg.Conjuncts[1].EquiJoin || lg.Conjuncts[1].Tables != TableSet(0b01) {
		t.Fatalf("filter conjunct analysis = %+v", lg.Conjuncts[1])
	}

	root, err := lg.Lower(lg.DefaultChoices())
	if err != nil {
		t.Fatal(err)
	}
	join, ok := root.(*HashJoin)
	if !ok {
		t.Fatalf("root = %T, want *HashJoin", root)
	}
	if join.BuildKey != 0 || join.ProbeKey != 0 || join.Residual == nil {
		t.Fatalf("join keys/residual = %d/%d/%v", join.BuildKey, join.ProbeKey, join.Residual)
	}
	if scan, ok := join.Build.(*Scan); !ok || scan.Filter == nil {
		t.Fatalf("build leaf should be the filtered scan of a, got %s", join.Build.Describe())
	}

	// Reversed order keeps the output schema but flips the physical shape
	// and restores global column order with a projection.
	rev, err := lg.Lower(PhysChoices{JoinOrder: []int{1, 0}, BuildLeft: []bool{true}, Pushdown: PushdownAll})
	if err != nil {
		t.Fatal(err)
	}
	proj, ok := rev.(*Project)
	if !ok {
		t.Fatalf("reversed root = %T, want reorder *Project", rev)
	}
	want := lg.OutputSchema()
	got := proj.Schema()
	if got.NumCols() != want.NumCols() {
		t.Fatalf("reordered width %d vs %d", got.NumCols(), want.NumCols())
	}
	for i := range want.Columns() {
		if got.Columns()[i].Name != want.Columns()[i].Name {
			t.Fatalf("col %d = %q, want %q", i, got.Columns()[i].Name, want.Columns()[i].Name)
		}
	}
}

func TestLogicalLowerNoJoinEdge(t *testing.T) {
	lg, _, _ := logicalFixture(t)
	if _, err := lg.Lower(lg.DefaultChoices()); err == nil {
		t.Fatal("cross join without an equality edge should fail to lower")
	}
}

func TestLogicalOutputSchemaQualifiesDuplicates(t *testing.T) {
	lg, _, _ := logicalFixture(t)
	out := lg.OutputSchema()
	names := make([]string, out.NumCols())
	for i, c := range out.Columns() {
		names[i] = c.Name
	}
	if strings.Join(names, ",") != "id,v,aid,v_2" {
		t.Fatalf("star schema = %v", names)
	}
}

func TestRemapExprCoversAllNodes(t *testing.T) {
	in := expr.And{Terms: []expr.Expr{
		expr.Not{E: expr.Cmp{Op: expr.EQ, L: expr.Col{Idx: 1}, R: expr.Const{V: expr.Int(1)}}},
		expr.Or{Terms: []expr.Expr{
			expr.Between{E: expr.Col{Idx: 2}, Lo: expr.Int(0), Hi: expr.Int(9)},
			expr.NewInHash(expr.Col{Idx: 3}, []expr.Value{expr.Int(4)}),
		}},
		expr.Cmp{Op: expr.LT, L: expr.Arith{Op: expr.Add, L: expr.Col{Idx: 4}, R: expr.Const{V: expr.Int(2)}}, R: expr.Col{Idx: 5}},
	}}
	out := RemapExpr(in, func(i int) int { return i + 10 })
	var got []int
	WalkCols(out, func(i int) { got = append(got, i) })
	wantCols := []int{11, 12, 13, 14, 15}
	if len(got) != len(wantCols) {
		t.Fatalf("cols = %v", got)
	}
	for i := range got {
		if got[i] != wantCols[i] {
			t.Fatalf("cols = %v, want %v", got, wantCols)
		}
	}
	// The original is untouched.
	var orig []int
	WalkCols(in, func(i int) { orig = append(orig, i) })
	if orig[0] != 1 {
		t.Fatalf("original mutated: %v", orig)
	}
}
