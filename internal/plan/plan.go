// Package plan defines logical query plans for the simulated engine:
// scans, filters, hash joins, aggregation, projection, sorting and limits —
// the operator set TPC-H Q5 and the paper's selection workloads need.
// Plans are built programmatically (the engines under study are driven via
// prepared statements in the paper; ecoDB's public API mirrors that).
package plan

import (
	"fmt"
	"strings"

	"ecodb/internal/catalog"
	"ecodb/internal/expr"
)

// Node is a logical plan operator.
type Node interface {
	// Schema describes the node's output rows.
	Schema() *catalog.Schema
	// Children returns input operators, build/left side first.
	Children() []Node
	// Describe returns a one-line operator description (without inputs).
	Describe() string
}

// Scan reads every row of a table, optionally filtering. The paper's
// setups build no indices, so scans are the only access path.
type Scan struct {
	Table  *catalog.Table
	Filter expr.Expr // optional
}

// NewScan returns a scan of t with an optional filter.
func NewScan(t *catalog.Table, filter expr.Expr) *Scan {
	return &Scan{Table: t, Filter: filter}
}

// Schema implements Node.
func (s *Scan) Schema() *catalog.Schema { return s.Table.Schema }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// Describe implements Node.
func (s *Scan) Describe() string {
	if s.Filter != nil {
		return fmt.Sprintf("Scan(%s, filter=%s)", s.Table.Name, s.Filter)
	}
	return fmt.Sprintf("Scan(%s)", s.Table.Name)
}

// Filter drops rows not satisfying the predicate.
type Filter struct {
	Input Node
	Pred  expr.Expr
}

// NewFilter wraps input with a predicate.
func NewFilter(input Node, pred expr.Expr) *Filter {
	return &Filter{Input: input, Pred: pred}
}

// Schema implements Node.
func (f *Filter) Schema() *catalog.Schema { return f.Input.Schema() }

// Children implements Node.
func (f *Filter) Children() []Node { return []Node{f.Input} }

// Describe implements Node.
func (f *Filter) Describe() string { return fmt.Sprintf("Filter(%s)", f.Pred) }

// HashJoin equi-joins Build and Probe on single-column keys, with an
// optional residual predicate evaluated on the concatenated row (Build
// columns first). Output rows are buildRow ++ probeRow.
type HashJoin struct {
	Build, Probe       Node
	BuildKey, ProbeKey int // column positions in the respective schemas
	Residual           expr.Expr
	schema             *catalog.Schema
}

// NewHashJoin builds a hash equi-join node. Key positions must be valid
// for the input schemas; violations panic at plan-construction time.
func NewHashJoin(build, probe Node, buildKey, probeKey int, residual expr.Expr) *HashJoin {
	if buildKey < 0 || buildKey >= build.Schema().NumCols() {
		panic(fmt.Sprintf("plan: build key %d out of range", buildKey))
	}
	if probeKey < 0 || probeKey >= probe.Schema().NumCols() {
		panic(fmt.Sprintf("plan: probe key %d out of range", probeKey))
	}
	return &HashJoin{
		Build: build, Probe: probe,
		BuildKey: buildKey, ProbeKey: probeKey,
		Residual: residual,
		schema:   catalog.Concat(build.Schema(), probe.Schema()),
	}
}

// Schema implements Node.
func (j *HashJoin) Schema() *catalog.Schema { return j.schema }

// Children implements Node.
func (j *HashJoin) Children() []Node { return []Node{j.Build, j.Probe} }

// Describe implements Node.
func (j *HashJoin) Describe() string {
	d := fmt.Sprintf("HashJoin(build.%s = probe.%s",
		j.Build.Schema().Columns()[j.BuildKey].Name,
		j.Probe.Schema().Columns()[j.ProbeKey].Name)
	if j.Residual != nil {
		d += fmt.Sprintf(", residual=%s", j.Residual)
	}
	return d + ")"
}

// Project computes output expressions.
type Project struct {
	Input  Node
	Exprs  []expr.Expr
	Names  []string
	Kinds  []expr.Kind
	schema *catalog.Schema
}

// NewProject builds a projection; Names/Kinds give the output schema.
func NewProject(input Node, exprs []expr.Expr, names []string, kinds []expr.Kind) *Project {
	if len(exprs) != len(names) || len(exprs) != len(kinds) {
		panic("plan: projection exprs/names/kinds length mismatch")
	}
	cols := make([]catalog.Column, len(exprs))
	for i := range exprs {
		cols[i] = catalog.Column{Name: names[i], Kind: kinds[i]}
	}
	return &Project{Input: input, Exprs: exprs, Names: names, Kinds: kinds,
		schema: catalog.NewSchema(cols...)}
}

// Schema implements Node.
func (p *Project) Schema() *catalog.Schema { return p.schema }

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Input} }

// Describe implements Node.
func (p *Project) Describe() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = fmt.Sprintf("%s AS %s", e, p.Names[i])
	}
	return "Project(" + strings.Join(parts, ", ") + ")"
}

// AggFunc is an aggregate function.
type AggFunc int

// Aggregate functions.
const (
	Sum AggFunc = iota
	Count
	Min
	Max
	Avg
)

func (f AggFunc) String() string {
	return [...]string{"sum", "count", "min", "max", "avg"}[f]
}

// AggSpec is one aggregate output.
type AggSpec struct {
	Func AggFunc
	Arg  expr.Expr // ignored for Count
	Name string
}

// Agg groups by column positions and computes aggregates. Output columns
// are the group-by columns followed by the aggregates.
type Agg struct {
	Input   Node
	GroupBy []int
	Aggs    []AggSpec
	schema  *catalog.Schema
}

// NewAgg builds a hash aggregation node.
func NewAgg(input Node, groupBy []int, aggs []AggSpec) *Agg {
	in := input.Schema()
	cols := make([]catalog.Column, 0, len(groupBy)+len(aggs))
	for _, g := range groupBy {
		cols = append(cols, in.Columns()[g])
	}
	for _, a := range aggs {
		kind := expr.KindFloat
		if a.Func == Count {
			kind = expr.KindInt
		}
		cols = append(cols, catalog.Column{Name: a.Name, Kind: kind})
	}
	return &Agg{Input: input, GroupBy: groupBy, Aggs: aggs, schema: catalog.NewSchema(cols...)}
}

// Schema implements Node.
func (a *Agg) Schema() *catalog.Schema { return a.schema }

// Children implements Node.
func (a *Agg) Children() []Node { return []Node{a.Input} }

// Describe implements Node.
func (a *Agg) Describe() string {
	groups := make([]string, len(a.GroupBy))
	for i, g := range a.GroupBy {
		groups[i] = a.Input.Schema().Columns()[g].Name
	}
	aggs := make([]string, len(a.Aggs))
	for i, s := range a.Aggs {
		if s.Func == Count {
			aggs[i] = "count(*)"
		} else {
			aggs[i] = fmt.Sprintf("%s(%s)", s.Func, s.Arg)
		}
	}
	return fmt.Sprintf("Agg(by=[%s], aggs=[%s])",
		strings.Join(groups, ","), strings.Join(aggs, ","))
}

// SortKey orders by one output column.
type SortKey struct {
	Col  int
	Desc bool
}

// Sort orders its input. Keys compare with expr.Compare semantics (NULLs
// smallest, so ASC puts them first and DESC last); ties keep input order.
// When the input is a morsel-eligible scan→filter→project fragment,
// CompileParallel lowers Sort to worker-side sorted-run generation with a
// loser-tree merge; output, simulated durations, and joules stay
// bit-identical to the serial operator at any worker count.
type Sort struct {
	Input Node
	Keys  []SortKey
}

// NewSort builds a sort node.
func NewSort(input Node, keys ...SortKey) *Sort {
	return &Sort{Input: input, Keys: keys}
}

// Schema implements Node.
func (s *Sort) Schema() *catalog.Schema { return s.Input.Schema() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Input} }

// Describe implements Node.
func (s *Sort) Describe() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		dir := "asc"
		if k.Desc {
			dir = "desc"
		}
		parts[i] = fmt.Sprintf("%s %s", s.Input.Schema().Columns()[k.Col].Name, dir)
	}
	return "Sort(" + strings.Join(parts, ", ") + ")"
}

// Limit passes through at most N rows. The executor completes the scan
// (realistic without indices) but emits only the first N.
type Limit struct {
	Input Node
	N     int
}

// NewLimit builds a limit node.
func NewLimit(input Node, n int) *Limit { return &Limit{Input: input, N: n} }

// Schema implements Node.
func (l *Limit) Schema() *catalog.Schema { return l.Input.Schema() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Input} }

// Describe implements Node.
func (l *Limit) Describe() string { return fmt.Sprintf("Limit(%d)", l.N) }

// Format renders a plan tree indented, one operator per line.
func Format(n Node) string {
	var b strings.Builder
	var rec func(Node, int)
	rec = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Describe())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return b.String()
}
