package plan

import (
	"strings"
	"testing"

	"ecodb/internal/catalog"
	"ecodb/internal/expr"
)

func table(name string, cols ...string) *catalog.Table {
	cc := make([]catalog.Column, len(cols))
	for i, c := range cols {
		cc[i] = catalog.Column{Name: c, Kind: expr.KindInt}
	}
	return catalog.NewTable(name, catalog.NewSchema(cc...))
}

func TestScanSchemaAndDescribe(t *testing.T) {
	tb := table("t", "a", "b")
	s := NewScan(tb, nil)
	if s.Schema() != tb.Schema {
		t.Fatal("scan schema should be the table schema")
	}
	if got := s.Describe(); got != "Scan(t)" {
		t.Fatalf("Describe = %q", got)
	}
	f := NewScan(tb, expr.Cmp{Op: expr.EQ, L: tb.Schema.Col("a"), R: expr.Const{V: expr.Int(1)}})
	if !strings.Contains(f.Describe(), "filter=") {
		t.Fatalf("filtered Describe = %q", f.Describe())
	}
}

func TestHashJoinSchemaConcat(t *testing.T) {
	l, r := table("l", "lk", "lv"), table("r", "rk", "rv")
	j := NewHashJoin(NewScan(l, nil), NewScan(r, nil), 0, 0, nil)
	if j.Schema().NumCols() != 4 {
		t.Fatalf("join schema cols = %d", j.Schema().NumCols())
	}
	if j.Schema().MustIndex("rk") != 2 {
		t.Fatal("probe columns should follow build columns")
	}
	if len(j.Children()) != 2 {
		t.Fatal("join should have two children")
	}
}

func TestHashJoinBadKeyPanics(t *testing.T) {
	l, r := table("l", "a"), table("r", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range key did not panic")
		}
	}()
	NewHashJoin(NewScan(l, nil), NewScan(r, nil), 5, 0, nil)
}

func TestProjectSchema(t *testing.T) {
	tb := table("t", "a")
	p := NewProject(NewScan(tb, nil),
		[]expr.Expr{tb.Schema.Col("a")}, []string{"x"}, []expr.Kind{expr.KindInt})
	if p.Schema().MustIndex("x") != 0 {
		t.Fatal("project schema wrong")
	}
}

func TestProjectMismatchPanics(t *testing.T) {
	tb := table("t", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	NewProject(NewScan(tb, nil), []expr.Expr{tb.Schema.Col("a")}, []string{"x", "y"}, []expr.Kind{expr.KindInt})
}

func TestAggSchema(t *testing.T) {
	tb := table("t", "g", "x")
	a := NewAgg(NewScan(tb, nil), []int{0}, []AggSpec{
		{Func: Sum, Arg: tb.Schema.Col("x"), Name: "s"},
		{Func: Count, Name: "c"},
	})
	sch := a.Schema()
	if sch.NumCols() != 3 {
		t.Fatalf("agg schema cols = %d", sch.NumCols())
	}
	if sch.Columns()[1].Kind != expr.KindFloat {
		t.Fatal("sum output should be float")
	}
	if sch.Columns()[2].Kind != expr.KindInt {
		t.Fatal("count output should be int")
	}
}

func TestFormatTree(t *testing.T) {
	tb := table("t", "a")
	p := NewSort(NewAgg(NewScan(tb, nil), []int{0},
		[]AggSpec{{Func: Count, Name: "c"}}), SortKey{Col: 1, Desc: true})
	out := Format(p)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("Format produced %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Sort(") {
		t.Fatalf("root line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  Agg(") {
		t.Fatalf("child line = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "    Scan(") {
		t.Fatalf("leaf line = %q", lines[2])
	}
}

func TestDescribeStrings(t *testing.T) {
	tb := table("t", "a", "b")
	cases := []struct {
		node Node
		want string
	}{
		{NewFilter(NewScan(tb, nil), expr.Cmp{Op: expr.GT, L: tb.Schema.Col("a"), R: expr.Const{V: expr.Int(0)}}), "Filter"},
		{NewLimit(NewScan(tb, nil), 3), "Limit(3)"},
		{NewSort(NewScan(tb, nil), SortKey{Col: 0}), "Sort(a asc)"},
	}
	for _, c := range cases {
		if !strings.Contains(c.node.Describe(), c.want) {
			t.Errorf("Describe() = %q, want contains %q", c.node.Describe(), c.want)
		}
	}
}

func TestAggFuncString(t *testing.T) {
	if Sum.String() != "sum" || Count.String() != "count" || Avg.String() != "avg" {
		t.Fatal("AggFunc names wrong")
	}
}
