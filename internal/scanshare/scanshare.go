// Package scanshare implements cooperative shared scans: one circular pass
// over a heap serves any number of in-flight queries at once. This is the
// work-sharing lever of the eco-friendly-DBMS literature generalized past
// QED's predicate merging — where mqo.Merge only folds structurally
// identical equality selections into one disjunction, a shared scan lets
// *arbitrary* concurrent scans of a table ride one physical pass, so the
// pass's I/O and page streaming are paid once no matter how many queries
// consume it.
//
// A per-table Coordinator owns a single storage.CircularScan. Consumers
// attach at the pass's current position (their entry page), receive every
// page the pass surfaces from then on, and are done after one full
// wrap-around lap — every page seen exactly once, in pass order. The pass
// itself has no start or end: it advances only when some consumer pulls
// and nothing is buffered for it, and it keeps its position between
// consumers, so a late arrival simply joins mid-lap (the elevator
// behaviour of circular-scan designs).
//
// Charging rules (the subsystem's energy story):
//
//   - Buffer-pool accesses — and therefore simulated disk reads — happen
//     inside the coordinator's CircularScan, once per page the pass
//     surfaces, regardless of how many consumers receive the page.
//   - The Surface callback fires once per surfaced page on the consumer
//     whose pull advanced the pass; the executor charges the shared
//     page-stream cycles (one memory stream moves the page) and the page
//     hook there.
//   - Everything per-query — tuple interpretation, predicate evaluation,
//     result materialization — is charged by each consumer on its own
//     execution context as it processes the shared pages.
//
// Like the rest of the simulated machine, a Coordinator is single-threaded:
// consumers interleave pulls cooperatively on one goroutine, so simulated
// durations and joules are deterministic for a fixed attach and pull order.
package scanshare

import (
	"fmt"

	"ecodb/internal/expr"
	"ecodb/internal/obsv"
	"ecodb/internal/storage"
)

// Surface is the shared-side accounting hook: the coordinator invokes it
// exactly once per page the pass surfaces (not once per consumer), on the
// pull that advanced the pass. bytes is the page's storage footprint.
type Surface func(idx int, bytes int64)

// Prune is a consumer's page-skip test: given a page's zone maps it
// reports whether the consumer's predicate can be satisfied nowhere on the
// page. It must be pure — the coordinator may evaluate it more than once
// per page.
type Prune func(zones []expr.Zone) bool

// PassStats counts the coordinator's sharing traffic.
type PassStats struct {
	// PagesSurfaced is how many pages the pass physically read (buffer
	// pool touched, shared charges fired) — the "one I/O stream".
	PagesSurfaced int64
	// PagesDelivered counts page deliveries across all consumers; the
	// ratio PagesDelivered/PagesSurfaced is the sharing factor.
	PagesDelivered int64
	// PagesPruned is how many pass steps skipped the page entirely because
	// every consumer that still needed it pruned it by zone maps — no
	// buffer-pool touch, no surface charge.
	PagesPruned int64
	// Attaches counts consumers admitted over the coordinator's lifetime.
	Attaches int64
}

// Coordinator owns one table's shared circular pass. It is not safe for
// concurrent use — like the simulated CPU it serves, it assumes the
// cooperative single-threaded execution model.
type Coordinator struct {
	heap  *storage.Heap
	table string
	scan  *storage.CircularScan

	active []*Consumer
	stats  PassStats

	// Lap accounting: a "pass" is one full wrap-around of the circular
	// scan — NumPages steps, skipped or surfaced. The coordinator snapshots
	// the stats delta over each completed lap so callers can see sharing
	// traffic per pass rather than only over the coordinator's lifetime.
	passSteps int       // steps into the current lap
	lapStart  PassStats // lifetime stats at the start of the current lap
	lastPass  PassStats // stats delta over the most recently completed lap
	passes    int64
	onPass    func(PassStats) // optional per-completed-pass listener
}

// NewCoordinator returns a coordinator for heap. table names the heap in
// buffer-pool page IDs; pool may be nil for an all-in-memory engine.
func NewCoordinator(heap *storage.Heap, table string, pool *storage.BufferPool) *Coordinator {
	return &Coordinator{
		heap:  heap,
		table: table,
		scan:  storage.NewCircularScan(heap, table, pool, 0),
	}
}

// Table returns the name the coordinator's pages are registered under.
func (c *Coordinator) Table() string { return c.table }

// Pos returns the pass's current position — the entry page the next
// attaching consumer will remember.
func (c *Coordinator) Pos() int { return c.scan.Pos() }

// Attached returns how many consumers are currently attached.
func (c *Coordinator) Attached() int { return len(c.active) }

// Stats returns the sharing counters accumulated so far.
func (c *Coordinator) Stats() PassStats { return c.stats }

// Passes returns how many full wrap-around laps the pass has completed.
func (c *Coordinator) Passes() int64 { return c.passes }

// LastPass returns the sharing counters of the most recently completed
// lap — the zero PassStats before the first lap completes.
func (c *Coordinator) LastPass() PassStats { return c.lastPass }

// SetPassListener registers fn to be called with each completed lap's
// stats delta, replacing any previous listener. Pass nil to remove.
func (c *Coordinator) SetPassListener(fn func(PassStats)) { c.onPass = fn }

// stepDone records one pass step (skipped or surfaced) and, when it
// completes a lap, publishes that lap's stats delta.
func (c *Coordinator) stepDone() {
	c.passSteps++
	if c.passSteps < c.heap.NumPages() {
		return
	}
	c.passSteps = 0
	c.lastPass = PassStats{
		PagesSurfaced:  c.stats.PagesSurfaced - c.lapStart.PagesSurfaced,
		PagesDelivered: c.stats.PagesDelivered - c.lapStart.PagesDelivered,
		PagesPruned:    c.stats.PagesPruned - c.lapStart.PagesPruned,
		Attaches:       c.stats.Attaches - c.lapStart.Attaches,
	}
	c.lapStart = c.stats
	c.passes++
	obsv.SharedPasses.Inc()
	if c.onPass != nil {
		c.onPass(c.lastPass)
	}
}

// Attach admits a consumer into the pass at its current position. The
// consumer will receive every heap page exactly once, starting at the
// entry page and wrapping, and must be Closed when its query finishes.
func (c *Coordinator) Attach() *Consumer { return c.AttachPruned(nil) }

// AttachPruned admits a consumer with a zone-map prune test. Pages the
// test rejects are delivered as pruned (the consumer counts them toward
// its lap and charges its zone check, but gets no data); a pass step whose
// every needy consumer prunes the page skips it physically — no buffer
// pool, no surface charge. prune nil never prunes, making Attach the
// degenerate case.
func (c *Coordinator) AttachPruned(prune Prune) *Consumer { return c.AttachWith(prune, 0) }

// AttachWith is AttachPruned with an attach priority. The pass itself is
// symmetric — it advances on whichever consumer pulls, and every attached
// consumer sees every page once — so priority does not change what the
// coordinator delivers; it is admission metadata the drain policy consumes:
// a server admitting a batch attaches its statements in priority order
// (earlier entry on the circular pass) and pulls higher-priority consumers
// more often per round, so they complete their lap sooner. Simulated
// charging is unchanged for any priorities given a fixed attach-and-pull
// order.
func (c *Coordinator) AttachWith(prune Prune, priority int) *Consumer {
	k := &Consumer{
		coord:     c,
		prune:     prune,
		priority:  priority,
		entry:     c.scan.Pos(),
		remaining: c.heap.NumPages(),
	}
	c.active = append(c.active, k)
	c.stats.Attaches++
	obsv.SharedAttaches.Inc()
	return k
}

// advance steps the pass by one page. When at least one consumer that
// still needs the page does not prune it, the circular scan surfaces it —
// buffer pool touched, surface hook fired once — and every needy consumer
// has it queued (marked pruned for those whose test rejects it, so they
// skip their per-tuple work). When every needy consumer prunes it, the
// scan skips the page without reading: the queues advance but no physical
// or shared charge exists for the page.
func (c *Coordinator) advance(surface Surface) {
	zones, ok := c.scan.PeekZones()
	if !ok {
		return // empty heap: nothing to surface, consumers are born done
	}
	needed := false
	for _, k := range c.active {
		if k.remaining > 0 && !k.prunes(zones) {
			needed = true
			break
		}
	}
	if !needed {
		idx, _ := c.scan.Skip()
		c.stats.PagesPruned++
		obsv.PagesPruned.Inc()
		for _, k := range c.active {
			if k.remaining > 0 {
				k.queue = append(k.queue, queuedPage{idx: idx, pruned: true})
				k.remaining--
			}
		}
		c.stepDone()
		return
	}
	idx, page, ok := c.scan.Next()
	if !ok {
		return
	}
	c.stats.PagesSurfaced++
	obsv.SharedSurfaced.Inc()
	for _, k := range c.active {
		if k.remaining > 0 {
			k.queue = append(k.queue, queuedPage{idx: idx, pruned: k.prunes(zones)})
			k.remaining--
			c.stats.PagesDelivered++
		}
	}
	if surface != nil {
		surface(idx, page.Bytes)
	}
	c.stepDone()
}

// detach removes k from the active set.
func (c *Coordinator) detach(k *Consumer) {
	for i, a := range c.active {
		if a == k {
			c.active = append(c.active[:i], c.active[i+1:]...)
			return
		}
	}
}

// queuedPage is one delivered, unconsumed pass step: the page index and
// whether this consumer's prune test rejected it.
type queuedPage struct {
	idx    int
	pruned bool
}

// Consumer is one query's membership in a shared pass.
type Consumer struct {
	coord     *Coordinator
	prune     Prune // nil: never prunes
	priority  int   // attach priority (advisory; see AttachWith)
	entry     int
	queue     []queuedPage // delivered, unconsumed steps, in pass order
	remaining int          // pages the pass has yet to deliver to this consumer
	seen      int64
	pruned    int64
	closed    bool
}

// prunes reports whether the consumer's test rejects a page with the given
// zone maps.
func (k *Consumer) prunes(zones []expr.Zone) bool {
	return k.prune != nil && len(zones) > 0 && k.prune(zones)
}

// Entry returns the page index at which the consumer joined the pass —
// the first page it receives.
func (k *Consumer) Entry() int { return k.entry }

// Priority returns the attach priority the consumer was admitted with.
func (k *Consumer) Priority() int { return k.priority }

// PagesSeen returns how many pass steps the consumer has consumed so far,
// pruned steps included.
func (k *Consumer) PagesSeen() int64 { return k.seen }

// PagesPruned returns how many of the consumer's steps were pruned.
func (k *Consumer) PagesPruned() int64 { return k.pruned }

// Next returns the consumer's next pass step in pass order. When nothing
// is buffered it advances the shared pass, firing surface once for the
// newly surfaced page (see Surface); pages another consumer's pulls
// already surfaced are served from the buffer with no shared charge. A
// step with pruned true carries no page — the consumer's zone-map test
// rejected it, so the caller charges its zone check and moves on. ok is
// false once the consumer has seen every heap page exactly once —
// immediately, for an empty heap.
func (k *Consumer) Next(surface Surface) (idx int, page *storage.Page, pruned bool, ok bool) {
	if k.closed {
		panic(fmt.Sprintf("scanshare: Next on closed consumer of %q", k.coord.table))
	}
	if len(k.queue) == 0 {
		if k.remaining == 0 {
			return 0, nil, false, false
		}
		k.coord.advance(surface)
	}
	q := k.queue[0]
	k.queue = k.queue[1:]
	k.seen++
	if q.pruned {
		k.pruned++
		return q.idx, nil, true, true
	}
	return q.idx, k.coord.heap.Page(q.idx), false, true
}

// Close detaches the consumer from the pass. It is idempotent; a closed
// consumer must not be used again.
func (k *Consumer) Close() {
	if k.closed {
		return
	}
	k.closed = true
	k.coord.detach(k)
}
