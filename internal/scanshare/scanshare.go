// Package scanshare implements cooperative shared scans: one circular pass
// over a heap serves any number of in-flight queries at once. This is the
// work-sharing lever of the eco-friendly-DBMS literature generalized past
// QED's predicate merging — where mqo.Merge only folds structurally
// identical equality selections into one disjunction, a shared scan lets
// *arbitrary* concurrent scans of a table ride one physical pass, so the
// pass's I/O and page streaming are paid once no matter how many queries
// consume it.
//
// A per-table Coordinator owns a single storage.CircularScan. Consumers
// attach at the pass's current position (their entry page), receive every
// page the pass surfaces from then on, and are done after one full
// wrap-around lap — every page seen exactly once, in pass order. The pass
// itself has no start or end: it advances only when some consumer pulls
// and nothing is buffered for it, and it keeps its position between
// consumers, so a late arrival simply joins mid-lap (the elevator
// behaviour of circular-scan designs).
//
// Charging rules (the subsystem's energy story):
//
//   - Buffer-pool accesses — and therefore simulated disk reads — happen
//     inside the coordinator's CircularScan, once per page the pass
//     surfaces, regardless of how many consumers receive the page.
//   - The Surface callback fires once per surfaced page on the consumer
//     whose pull advanced the pass; the executor charges the shared
//     page-stream cycles (one memory stream moves the page) and the page
//     hook there.
//   - Everything per-query — tuple interpretation, predicate evaluation,
//     result materialization — is charged by each consumer on its own
//     execution context as it processes the shared pages.
//
// Like the rest of the simulated machine, a Coordinator is single-threaded:
// consumers interleave pulls cooperatively on one goroutine, so simulated
// durations and joules are deterministic for a fixed attach and pull order.
package scanshare

import (
	"fmt"

	"ecodb/internal/storage"
)

// Surface is the shared-side accounting hook: the coordinator invokes it
// exactly once per page the pass surfaces (not once per consumer), on the
// pull that advanced the pass. bytes is the page's storage footprint.
type Surface func(idx int, bytes int64)

// PassStats counts the coordinator's sharing traffic.
type PassStats struct {
	// PagesSurfaced is how many pages the pass physically read (buffer
	// pool touched, shared charges fired) — the "one I/O stream".
	PagesSurfaced int64
	// PagesDelivered counts page deliveries across all consumers; the
	// ratio PagesDelivered/PagesSurfaced is the sharing factor.
	PagesDelivered int64
	// Attaches counts consumers admitted over the coordinator's lifetime.
	Attaches int64
}

// Coordinator owns one table's shared circular pass. It is not safe for
// concurrent use — like the simulated CPU it serves, it assumes the
// cooperative single-threaded execution model.
type Coordinator struct {
	heap  *storage.Heap
	table string
	scan  *storage.CircularScan

	active []*Consumer
	stats  PassStats
}

// NewCoordinator returns a coordinator for heap. table names the heap in
// buffer-pool page IDs; pool may be nil for an all-in-memory engine.
func NewCoordinator(heap *storage.Heap, table string, pool *storage.BufferPool) *Coordinator {
	return &Coordinator{
		heap:  heap,
		table: table,
		scan:  storage.NewCircularScan(heap, table, pool, 0),
	}
}

// Table returns the name the coordinator's pages are registered under.
func (c *Coordinator) Table() string { return c.table }

// Pos returns the pass's current position — the entry page the next
// attaching consumer will remember.
func (c *Coordinator) Pos() int { return c.scan.Pos() }

// Attached returns how many consumers are currently attached.
func (c *Coordinator) Attached() int { return len(c.active) }

// Stats returns the sharing counters accumulated so far.
func (c *Coordinator) Stats() PassStats { return c.stats }

// Attach admits a consumer into the pass at its current position. The
// consumer will receive every heap page exactly once, starting at the
// entry page and wrapping, and must be Closed when its query finishes.
func (c *Coordinator) Attach() *Consumer {
	k := &Consumer{
		coord:     c,
		entry:     c.scan.Pos(),
		remaining: c.heap.NumPages(),
	}
	c.active = append(c.active, k)
	c.stats.Attaches++
	return k
}

// advance surfaces one page: the circular scan touches the buffer pool,
// every attached consumer that still needs pages has the page queued, and
// the shared-side surface hook fires once.
func (c *Coordinator) advance(surface Surface) {
	idx, page, ok := c.scan.Next()
	if !ok {
		return // empty heap: nothing to surface, consumers are born done
	}
	c.stats.PagesSurfaced++
	for _, k := range c.active {
		if k.remaining > 0 {
			k.queue = append(k.queue, idx)
			k.remaining--
			c.stats.PagesDelivered++
		}
	}
	if surface != nil {
		surface(idx, page.Bytes)
	}
}

// detach removes k from the active set.
func (c *Coordinator) detach(k *Consumer) {
	for i, a := range c.active {
		if a == k {
			c.active = append(c.active[:i], c.active[i+1:]...)
			return
		}
	}
}

// Consumer is one query's membership in a shared pass.
type Consumer struct {
	coord     *Coordinator
	entry     int
	queue     []int // delivered, unconsumed page indexes, in pass order
	remaining int   // pages the pass has yet to deliver to this consumer
	seen      int64
	closed    bool
}

// Entry returns the page index at which the consumer joined the pass —
// the first page it receives.
func (k *Consumer) Entry() int { return k.entry }

// PagesSeen returns how many pages the consumer has consumed so far.
func (k *Consumer) PagesSeen() int64 { return k.seen }

// Next returns the consumer's next page in pass order. When nothing is
// buffered it advances the shared pass, firing surface once for the newly
// surfaced page (see Surface); pages another consumer's pulls already
// surfaced are served from the buffer with no shared charge. ok is false
// once the consumer has seen every heap page exactly once — immediately,
// for an empty heap.
func (k *Consumer) Next(surface Surface) (idx int, page *storage.Page, ok bool) {
	if k.closed {
		panic(fmt.Sprintf("scanshare: Next on closed consumer of %q", k.coord.table))
	}
	if len(k.queue) == 0 {
		if k.remaining == 0 {
			return 0, nil, false
		}
		k.coord.advance(surface)
	}
	idx = k.queue[0]
	k.queue = k.queue[1:]
	k.seen++
	return idx, k.coord.heap.Page(idx), true
}

// Close detaches the consumer from the pass. It is idempotent; a closed
// consumer must not be used again.
func (k *Consumer) Close() {
	if k.closed {
		return
	}
	k.closed = true
	k.coord.detach(k)
}
