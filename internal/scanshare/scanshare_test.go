package scanshare

import (
	"testing"

	"ecodb/internal/expr"
	"ecodb/internal/obsv"
	"ecodb/internal/storage"
)

// heapOf builds a heap whose pages hold a handful of tagged rows each.
func heapOf(t *testing.T, rows int) *storage.Heap {
	t.Helper()
	h := storage.NewHeap(256)
	for i := 0; i < rows; i++ {
		h.Append(expr.Row{expr.Int(int64(i))})
	}
	return h
}

// drain pulls the consumer to completion, returning the page indexes in
// the order received.
func drain(k *Consumer, surface Surface) []int {
	var got []int
	for {
		idx, _, _, ok := k.Next(surface)
		if !ok {
			return got
		}
		got = append(got, idx)
	}
}

func TestSingleConsumerSeesAllPagesInOrder(t *testing.T) {
	h := heapOf(t, 500)
	n := h.NumPages()
	c := NewCoordinator(h, "t", nil)
	k := c.Attach()
	if k.Entry() != 0 {
		t.Fatalf("fresh pass entry = %d, want 0", k.Entry())
	}
	got := drain(k, nil)
	if len(got) != n {
		t.Fatalf("consumer saw %d pages, want %d", len(got), n)
	}
	for i, idx := range got {
		if idx != i {
			t.Fatalf("page %d arrived as %d: a fresh pass must run in page order", i, idx)
		}
	}
	k.Close()
	if c.Attached() != 0 {
		t.Fatal("consumer still attached after Close")
	}
	// A completed lap leaves the cursor back at the entry page.
	if c.Pos() != 0 {
		t.Fatalf("pass position after full lap = %d, want 0", c.Pos())
	}
}

func TestSharedPassSurfacesOncePerPage(t *testing.T) {
	h := heapOf(t, 500)
	n := h.NumPages()
	c := NewCoordinator(h, "t", nil)

	const consumers = 4
	ks := make([]*Consumer, consumers)
	for i := range ks {
		ks[i] = c.Attach()
	}
	surfaced := make(map[int]int)
	surface := func(idx int, bytes int64) {
		if bytes <= 0 {
			t.Fatalf("page %d surfaced with %d bytes", idx, bytes)
		}
		surfaced[idx]++
	}
	// Round-robin pulls, one page per consumer per round.
	done := 0
	for done < consumers {
		done = 0
		for _, k := range ks {
			if _, _, _, ok := k.Next(surface); !ok {
				done++
			}
		}
	}
	if len(surfaced) != n {
		t.Fatalf("pass surfaced %d distinct pages, want %d", len(surfaced), n)
	}
	for idx, times := range surfaced {
		if times != 1 {
			t.Fatalf("page %d surfaced %d times: shared I/O must be charged once per pass", idx, times)
		}
	}
	st := c.Stats()
	if st.PagesSurfaced != int64(n) {
		t.Fatalf("PagesSurfaced = %d, want %d", st.PagesSurfaced, n)
	}
	if st.PagesDelivered != int64(n*consumers) {
		t.Fatalf("PagesDelivered = %d, want %d", st.PagesDelivered, n*consumers)
	}
	for i, k := range ks {
		if k.PagesSeen() != int64(n) {
			t.Fatalf("consumer %d saw %d pages, want %d", i, k.PagesSeen(), n)
		}
	}
}

// A consumer attaching while the pass sits on its LAST page must still see
// every page exactly once: the last page first, then the wrap-around lap
// over all the others.
func TestAttachOnLastPageSeesEveryPageOnce(t *testing.T) {
	h := heapOf(t, 500)
	n := h.NumPages()
	if n < 3 {
		t.Fatalf("need ≥3 pages, got %d", n)
	}
	c := NewCoordinator(h, "t", nil)

	// Drive an earlier consumer until the pass sits on page n-1.
	first := c.Attach()
	for i := 0; i < n-1; i++ {
		if _, _, _, ok := first.Next(nil); !ok {
			t.Fatalf("first consumer ended after %d pages", i)
		}
	}
	if c.Pos() != n-1 {
		t.Fatalf("pass position = %d, want %d", c.Pos(), n-1)
	}

	late := c.Attach()
	if late.Entry() != n-1 {
		t.Fatalf("late entry = %d, want %d", late.Entry(), n-1)
	}
	got := drain(late, nil)
	if len(got) != n {
		t.Fatalf("late consumer saw %d pages, want %d", len(got), n)
	}
	seen := make(map[int]bool)
	for i, idx := range got {
		if want := (n - 1 + i) % n; idx != want {
			t.Fatalf("late consumer page %d arrived as %d, want %d (wrap order)", i, idx, want)
		}
		if seen[idx] {
			t.Fatalf("late consumer saw page %d twice", idx)
		}
		seen[idx] = true
	}
	// The earlier consumer finishes its own lap undisturbed.
	if rest := drain(first, nil); len(rest) != 1 || rest[0] != n-1 {
		t.Fatalf("first consumer's final pages = %v, want [%d]", rest, n-1)
	}
	first.Close()
	late.Close()
}

func TestEmptyHeapConsumerIsBornDone(t *testing.T) {
	c := NewCoordinator(storage.NewHeap(0), "empty", nil)
	k := c.Attach()
	fired := false
	if _, _, _, ok := k.Next(func(int, int64) { fired = true }); ok {
		t.Fatal("empty heap delivered a page")
	}
	if fired {
		t.Fatal("empty heap fired the surface hook")
	}
	if k.PagesSeen() != 0 {
		t.Fatalf("PagesSeen = %d, want 0", k.PagesSeen())
	}
	k.Close()
}

func TestSinglePageHeapOnePagePerConsumer(t *testing.T) {
	h := heapOf(t, 3)
	if h.NumPages() != 1 {
		t.Fatalf("want single-page heap, got %d pages", h.NumPages())
	}
	c := NewCoordinator(h, "tiny", nil)
	a, b := c.Attach(), c.Attach()
	if got := drain(a, nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("consumer a pages = %v, want [0]", got)
	}
	if got := drain(b, nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("consumer b pages = %v, want [0]", got)
	}
	// Two separate passes over the single page: late consumer c attaches
	// after the wrap and still gets it exactly once.
	k := c.Attach()
	if got := drain(k, nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("consumer c pages = %v, want [0]", got)
	}
}

// A consumer that never pulls still receives every page (buffered) while a
// busy consumer drives the pass; its own later pulls are then free of
// shared charges.
func TestIdleConsumerIsServedFromBuffer(t *testing.T) {
	h := heapOf(t, 300)
	n := h.NumPages()
	c := NewCoordinator(h, "t", nil)
	idle := c.Attach()
	busy := c.Attach()

	var surfacedByBusy int
	drain(busy, func(int, int64) { surfacedByBusy++ })
	if surfacedByBusy != n {
		t.Fatalf("busy consumer surfaced %d pages, want %d", surfacedByBusy, n)
	}
	var surfacedByIdle int
	got := drain(idle, func(int, int64) { surfacedByIdle++ })
	if surfacedByIdle != 0 {
		t.Fatalf("idle consumer surfaced %d pages, want 0 (all buffered)", surfacedByIdle)
	}
	if len(got) != n {
		t.Fatalf("idle consumer saw %d pages, want %d", len(got), n)
	}
}

// The pass keeps its position between consumers: after a partial drive, a
// new attach enters mid-lap (the elevator behaviour).
func TestPassPositionPersistsAcrossConsumers(t *testing.T) {
	h := heapOf(t, 300)
	n := h.NumPages()
	if n < 4 {
		t.Fatalf("need ≥4 pages, got %d", n)
	}
	c := NewCoordinator(h, "t", nil)
	a := c.Attach()
	for i := 0; i < 3; i++ {
		a.Next(nil)
	}
	b := c.Attach()
	if b.Entry() != 3 {
		t.Fatalf("second consumer entered at %d, want 3", b.Entry())
	}
	if got := drain(b, nil); len(got) != n || got[0] != 3 {
		t.Fatalf("second consumer saw %d pages starting at %v, want %d starting at 3",
			len(got), got[:1], n)
	}
	drain(a, nil)
	a.Close()
	b.Close()
}

func TestCloseIsIdempotentAndNextAfterClosePanics(t *testing.T) {
	c := NewCoordinator(heapOf(t, 10), "t", nil)
	k := c.Attach()
	k.Close()
	k.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Next on a closed consumer should panic")
		}
	}()
	k.Next(nil)
}

func TestCoordinatorPoolChargedOncePerPass(t *testing.T) {
	h := heapOf(t, 400)
	n := h.NumPages()
	pool := storage.NewBufferPool(1<<30, readerStub{})
	c := NewCoordinator(h, "li", pool)
	ks := []*Consumer{c.Attach(), c.Attach(), c.Attach()}
	for _, k := range ks {
		drain(k, nil)
		k.Close()
	}
	st := pool.Stats()
	if st.Hits+st.Misses != int64(n) {
		t.Fatalf("pool touched %d times for 3 consumers, want one pass (%d)", st.Hits+st.Misses, n)
	}
}

type readerStub struct{}

func (readerStub) BlockingRead(int64, bool) {}

// One full wrap-around lap publishes its stats delta: Passes, LastPass,
// and the listener all see per-lap numbers, not lifetime totals.
func TestLapAccountingAndListener(t *testing.T) {
	h := heapOf(t, 500)
	n := h.NumPages()
	c := NewCoordinator(h, "t", nil)
	var laps []PassStats
	c.SetPassListener(func(ps PassStats) { laps = append(laps, ps) })

	a := c.Attach()
	drain(a, nil)
	a.Close()
	if c.Passes() != 1 {
		t.Fatalf("Passes() = %d after one drained consumer, want 1", c.Passes())
	}
	lp := c.LastPass()
	if lp.PagesSurfaced != int64(n) || lp.PagesDelivered != int64(n) || lp.Attaches != 1 {
		t.Fatalf("first lap delta = %+v, want %d surfaced, %d delivered, 1 attach", lp, n, n)
	}
	if len(laps) != 1 || laps[0] != lp {
		t.Fatalf("listener saw %v, want one call with %+v", laps, lp)
	}

	// Second lap, two consumers: the delta restarts — it must not carry
	// the first lap's counts.
	b1, b2 := c.Attach(), c.Attach()
	done := 0
	for done < 2 {
		done = 0
		for _, k := range []*Consumer{b1, b2} {
			if _, _, _, ok := k.Next(nil); !ok {
				done++
			}
		}
	}
	if c.Passes() != 2 {
		t.Fatalf("Passes() = %d, want 2", c.Passes())
	}
	lp = c.LastPass()
	if lp.PagesSurfaced != int64(n) || lp.PagesDelivered != int64(2*n) || lp.Attaches != 2 {
		t.Fatalf("second lap delta = %+v, want %d surfaced, %d delivered, 2 attaches", lp, n, 2*n)
	}
	if len(laps) != 2 {
		t.Fatalf("listener called %d times, want 2", len(laps))
	}
	b1.Close()
	b2.Close()
}

// A page every needy consumer prunes is skipped physically and counts
// ONCE per pass step in the coordinator's (and registry's) pruned total —
// not once per consumer. Each consumer still records its own pruned steps
// as per-query detail.
func TestFullyPrunedPageCountsOncePerPass(t *testing.T) {
	h := heapOf(t, 500)
	n := h.NumPages()
	c := NewCoordinator(h, "t", nil)
	pruneAll := func([]expr.Zone) bool { return true }
	g0 := obsv.PagesPruned.Load()

	a := c.AttachPruned(pruneAll)
	b := c.AttachPruned(pruneAll)
	surface := func(int, int64) { t.Fatal("fully pruned pass surfaced a page") }
	done := 0
	for done < 2 {
		done = 0
		for _, k := range []*Consumer{a, b} {
			if _, _, pruned, ok := k.Next(surface); ok && !pruned {
				t.Fatal("prune-everything consumer received a data page")
			} else if !ok {
				done++
			}
		}
	}
	st := c.Stats()
	if st.PagesPruned != int64(n) {
		t.Fatalf("coordinator PagesPruned = %d for 2 consumers, want %d (once per pass step)",
			st.PagesPruned, n)
	}
	if st.PagesSurfaced != 0 {
		t.Fatalf("PagesSurfaced = %d, want 0", st.PagesSurfaced)
	}
	if a.PagesPruned() != int64(n) || b.PagesPruned() != int64(n) {
		t.Fatalf("per-consumer pruned = %d/%d, want %d each (query detail preserved)",
			a.PagesPruned(), b.PagesPruned(), n)
	}
	if got := obsv.PagesPruned.Load() - g0; got != int64(n) {
		t.Fatalf("registry exec_pages_pruned_total delta = %d, want %d", got, n)
	}
	if c.Passes() != 1 || c.LastPass().PagesPruned != int64(n) {
		t.Fatalf("lap accounting over a pruned pass: passes=%d lastPass=%+v",
			c.Passes(), c.LastPass())
	}
	a.Close()
	b.Close()
}
