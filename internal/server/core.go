// Package server is ecoDB's multi-tenant query front end: an admission
// scheduler plus an HTTP layer that lets thousands of concurrent client
// sessions share one simulated machine. Statements are parsed on their
// own connection goroutines but every engine touch — admission, execution,
// clock advance — happens on a single scheduler goroutine, preserving the
// cooperative single-threaded execution model the whole simulation is
// built on.
//
// Admission is the energy lever. Instead of running each statement the
// moment it arrives (the private-scan baseline), the scheduler holds
// best-effort statements in a bounded queue until a co-admission window
// fills, then admits the batch through engine.SharedSession so all of its
// scans ride each table's circular pass: page I/O and page streaming are
// charged once per pass no matter how many statements consume it. Three
// policies are provided — see Policy. Deadline-urgent statements bypass
// the window; everything else waits for the next flush batch.
//
// The charging-model invariant carries through: for a fixed admission and
// pull order, simulated results, durations, and joules are bit-identical
// to the embedded SharedSession path (workload.RunShared). Admission
// metadata — priorities, queue timestamps, profiling — is policy and
// observation, never physics. The serial-replay test in this package and
// the invariants section of docs/ARCHITECTURE.md pin this down.
package server

import (
	"errors"
	"fmt"
	"sort"

	"ecodb/internal/core"
	"ecodb/internal/engine"
	"ecodb/internal/expr"
	"ecodb/internal/obsv"
	"ecodb/internal/plan"
	"ecodb/internal/sim"
	"ecodb/internal/sql"
)

// Policy selects how the scheduler turns the admission queue into engine
// work.
type Policy int

const (
	// PolicyPrivate is the baseline: statements execute one at a time in
	// arrival order through Engine.Query — private scans, no sharing.
	PolicyPrivate Policy = iota
	// PolicyShared gathers statements into co-admission windows (flush
	// batches) and admits each batch through the shared-scan session,
	// ordered by attach priority (higher first, arrival order within a
	// priority). The drain is priority-weighted round-robin: a statement
	// at priority p gets 1+max(0,p) pulls per round, so it finishes its
	// lap sooner without changing what anything is charged.
	PolicyShared
	// PolicyDeadline is PolicyShared with earliest-deadline-first batch
	// order, and statements whose remaining budget is at or below
	// Config.UrgentSlack bypass the flush window — the batch flushes
	// immediately rather than waiting for more co-admissions.
	PolicyDeadline
)

// ParsePolicy maps a flag value to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "private":
		return PolicyPrivate, nil
	case "shared":
		return PolicyShared, nil
	case "deadline":
		return PolicyDeadline, nil
	}
	return 0, fmt.Errorf("server: unknown admission policy %q (want private, shared or deadline)", s)
}

func (p Policy) String() string {
	switch p {
	case PolicyPrivate:
		return "private"
	case PolicyShared:
		return "shared"
	case PolicyDeadline:
		return "deadline"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Config tunes the admission scheduler.
type Config struct {
	// Policy is the admission policy.
	Policy Policy
	// MaxInflight bounds the admission queue: statements accepted but not
	// yet responded to. A statement arriving at the bound is rejected with
	// ErrOverloaded. Zero means zero capacity — every statement is
	// rejected — which is the honest reading, not a default; use
	// DefaultConfig for sensible values.
	MaxInflight int
	// FlushThreshold flushes a co-admission window as soon as this many
	// statements are waiting (shared and deadline policies).
	FlushThreshold int
	// FlushWait bounds how long a statement waits for co-admission before
	// its window flushes anyway. In the open-loop harness this is
	// simulated time; in live serving the scheduler waits the same span of
	// real time (the simulated clock does not advance between batches).
	FlushWait sim.Duration
	// UrgentSlack is the deadline policy's bypass threshold: a statement
	// whose remaining budget is ≤ UrgentSlack (or already negative)
	// flushes the window immediately.
	UrgentSlack sim.Duration
	// Window caps how many statements one flush batch co-admits.
	Window int
	// Profiling runs every statement with the engine profiler on, which
	// partitions each co-admitted window's energy exactly per statement
	// (per-tenant and per-response joules become exact instead of an even
	// split). Observation never charges, so this is bit-neutral.
	Profiling bool
}

// DefaultConfig returns the serving defaults: shared admission, a deep
// queue, flush at 4 waiting statements or 20 ms, exact energy attribution.
func DefaultConfig() Config {
	return Config{
		Policy:         PolicyShared,
		MaxInflight:    4096,
		FlushThreshold: 4,
		FlushWait:      0.020,
		UrgentSlack:    0.020,
		Window:         64,
		Profiling:      true,
	}
}

// StmtKind distinguishes what a request wants run.
type StmtKind int

const (
	// StmtQuery executes the bound plan and returns rows.
	StmtQuery StmtKind = iota
	// StmtExplain renders the optimizer's plan for SQL without executing.
	StmtExplain
	// StmtAnalyze executes the bound plan with profiling forced on and
	// returns the rendered execution profile (EXPLAIN ANALYZE), queue-wait
	// span included.
	StmtAnalyze
)

// Request is one statement submitted for admission.
type Request struct {
	// ID labels the statement in the admission log; defaults to "s<seq>".
	ID string
	// Tenant attributes the statement's per-tenant accounting; defaults
	// to "default".
	Tenant string
	// SQL is the statement text (used by StmtExplain, which re-plans it).
	SQL string
	// Plan is the bound plan for StmtQuery and StmtAnalyze.
	Plan plan.Node
	// Kind is what to do with the statement.
	Kind StmtKind
	// Priority is the attach priority for shared admission: higher
	// priorities are admitted earlier in the batch and drained more often
	// per round. Zero is best-effort.
	Priority int
	// Deadline, when positive, is the statement's simulated-time response
	// budget measured from admission. The deadline policy orders by it
	// and lets urgent statements bypass the flush window; every policy
	// reports misses.
	Deadline sim.Duration
	// CollectRows materializes result rows into the response (the HTTP
	// path); measurement harnesses leave it false and keep cardinalities.
	CollectRows bool
}

// Response is one statement's outcome.
type Response struct {
	ID      string
	Columns []string
	Rows    []expr.Row
	RowsOut int64
	// Explain carries the rendered plan or execution profile for
	// StmtExplain / StmtAnalyze.
	Explain string
	// QueueWait is the simulated time between admission-queue entry and
	// statement start; Duration the execution window; Response their sum
	// (queue entry to completion).
	QueueWait sim.Duration
	Duration  sim.Duration
	Response  sim.Duration
	// Joules is the statement's simulated CPU energy: its profiled share
	// of the co-admitted window when Config.Profiling is on, an even split
	// of the window otherwise, and the exact statement trace window under
	// the private policy.
	Joules float64
	// DeadlineMiss reports a statement that completed after its deadline.
	DeadlineMiss bool
	Err          error
}

// ErrOverloaded rejects a statement arriving at a full admission queue.
var ErrOverloaded = errors.New("server: admission queue full")

// ErrDraining rejects a statement arriving after shutdown began.
var ErrDraining = errors.New("server: draining")

// AdmittedBatch is one flush batch in the admission log: when it was
// admitted and the statement IDs in admission order. Replaying the log —
// advance the clock to At, co-admit the IDs' plans through a shared
// session in order, drain round-robin — reproduces the run's simulated
// energy exactly (the bit-identity contract; see the serial-replay test).
type AdmittedBatch struct {
	At     sim.Time
	Policy Policy
	IDs    []string
}

// pending is one accepted, unexecuted statement.
type pending struct {
	req         Request
	id          string
	tenant      string
	seq         int64
	arrive      sim.Time // queue-entry instant, simulated
	deadline    sim.Time // absolute; valid when hasDeadline
	hasDeadline bool
	done        chan Response // live path; nil in the open-loop harness
	resp        Response      // open-loop path result slot
}

// Core is the admission scheduler. All methods that touch the engine —
// enqueue, flush, RunOpenLoop — must run on one goroutine (the scheduler
// loop in live serving, the caller in the open-loop harness).
type Core struct {
	cfg   Config
	sys   *core.System
	eng   *engine.Engine
	clock *sim.Clock
	sess  *engine.SharedSession

	queue    []*pending
	seq      int64
	inflight int // accepted, not yet responded
	log      []AdmittedBatch

	// Live-serving machinery (see http.go).
	submit  chan *pending
	stopc   chan struct{}
	stopped chan struct{}

	mSessions, mQueued, mRejected, mBatches, mMisses *obsv.Counter
	gDepth, gActive                                  *obsv.Gauge
	hWait                                            *obsv.Histogram
}

// NewCore returns a scheduler over the system's engine. The shared-scan
// session — and its pass positions — persist for the core's lifetime, so
// successive flush batches reuse the same elevator passes.
func NewCore(cfg Config, sys *core.System) *Core {
	r := obsv.Default()
	return &Core{
		cfg:       cfg,
		sys:       sys,
		eng:       sys.Engine,
		clock:     sys.Machine.Clock,
		sess:      sys.Engine.NewSharedSession(),
		submit:    make(chan *pending), // unbuffered: an accepted send means the loop has it
		stopc:     make(chan struct{}),
		stopped:   make(chan struct{}),
		mSessions: r.Counter(obsv.MetricServerSessions),
		mQueued:   r.Counter(obsv.MetricServerQueued),
		mRejected: r.Counter(obsv.MetricServerRejected),
		mBatches:  r.Counter(obsv.MetricServerBatches),
		mMisses:   r.Counter(obsv.MetricServerDeadlineMisses),
		gDepth:    r.Gauge(obsv.MetricServerQueueDepth),
		gActive:   r.Gauge(obsv.MetricServerActive),
		hWait: r.Histogram(obsv.MetricServerQueueWait,
			[]float64{1e-4, 1e-3, 1e-2, 0.1, 1, 10}),
	}
}

// Config returns the scheduler's configuration.
func (c *Core) Config() Config { return c.cfg }

// System returns the simulated system the scheduler drives.
func (c *Core) System() *core.System { return c.sys }

// AdmissionLog returns every flush batch admitted so far, in order.
func (c *Core) AdmissionLog() []AdmittedBatch { return c.log }

// enqueue accepts or rejects one statement against the admission bound.
// Scheduler goroutine only.
func (c *Core) enqueue(p *pending) bool {
	if c.inflight >= c.cfg.MaxInflight {
		c.mRejected.Inc()
		p.resp = Response{ID: p.id, Err: ErrOverloaded}
		p.reply()
		return false
	}
	c.seq++
	p.seq = c.seq
	if p.id == "" {
		p.id = fmt.Sprintf("s%d", p.seq)
	}
	if p.tenant == "" {
		p.tenant = "default"
	}
	p.arrive = c.clock.Now()
	if p.req.Deadline > 0 {
		p.deadline = p.arrive.Add(p.req.Deadline)
		p.hasDeadline = true
	}
	c.inflight++
	c.queue = append(c.queue, p)
	c.mSessions.Inc()
	c.gDepth.Set(float64(len(c.queue)))
	c.gActive.Set(float64(c.inflight))
	return true
}

// reply delivers the pending statement's response on the live path; the
// open-loop harness reads resp directly.
func (p *pending) reply() {
	if p.done != nil {
		p.done <- p.resp
	}
}

// urgent reports whether some queued statement's remaining deadline
// budget is at or below the urgent slack (deadline policy only).
func (c *Core) urgent() bool {
	if c.cfg.Policy != PolicyDeadline {
		return false
	}
	now := c.clock.Now()
	for _, p := range c.queue {
		if p.hasDeadline && p.deadline.Sub(now) <= c.cfg.UrgentSlack {
			return true
		}
	}
	return false
}

// oldestArrival returns the earliest queue-entry instant in the queue.
func (c *Core) oldestArrival() sim.Time {
	t := c.queue[0].arrive
	for _, p := range c.queue[1:] {
		if p.arrive < t {
			t = p.arrive
		}
	}
	return t
}

// shouldFlush reports whether the queue is ready to flush without waiting
// for more arrivals. more reports whether the caller can still deliver
// future arrivals (false forces a flush of whatever is queued).
func (c *Core) shouldFlush(more bool) bool {
	if len(c.queue) == 0 {
		return false
	}
	if c.cfg.Policy == PolicyPrivate || !more {
		return true
	}
	if len(c.queue) >= c.cfg.FlushThreshold {
		return true
	}
	if c.urgent() {
		return true
	}
	return c.clock.Now().Sub(c.oldestArrival()) >= c.cfg.FlushWait
}

// takeBatch removes and returns the next flush batch in admission order
// under the configured policy.
func (c *Core) takeBatch() []*pending {
	switch c.cfg.Policy {
	case PolicyShared:
		// Attach priority first (higher admits earlier on the pass),
		// arrival order within a priority.
		sort.SliceStable(c.queue, func(i, j int) bool {
			if c.queue[i].req.Priority != c.queue[j].req.Priority {
				return c.queue[i].req.Priority > c.queue[j].req.Priority
			}
			return c.queue[i].seq < c.queue[j].seq
		})
	case PolicyDeadline:
		// Earliest deadline first; deadline-free statements after all
		// deadlined ones, in arrival order.
		sort.SliceStable(c.queue, func(i, j int) bool {
			pi, pj := c.queue[i], c.queue[j]
			if pi.hasDeadline != pj.hasDeadline {
				return pi.hasDeadline
			}
			if pi.hasDeadline && pi.deadline != pj.deadline {
				return pi.deadline < pj.deadline
			}
			return pi.seq < pj.seq
		})
	}
	n := len(c.queue)
	if c.cfg.Policy != PolicyPrivate && c.cfg.Window > 0 && n > c.cfg.Window {
		n = c.cfg.Window
	}
	batch := make([]*pending, n)
	copy(batch, c.queue)
	c.queue = append(c.queue[:0], c.queue[n:]...)
	c.gDepth.Set(float64(len(c.queue)))
	return batch
}

// flush admits and executes one batch, replying to every statement in it.
// Scheduler goroutine only.
func (c *Core) flush() {
	batch := c.takeBatch()
	if len(batch) == 0 {
		return
	}
	c.mBatches.Inc()
	ids := make([]string, len(batch))
	for i, p := range batch {
		ids[i] = p.id
	}
	c.log = append(c.log, AdmittedBatch{At: c.clock.Now(), Policy: c.cfg.Policy, IDs: ids})

	if c.cfg.Policy == PolicyPrivate {
		for _, p := range batch {
			c.executePrivate(p)
		}
	} else {
		c.executeShared(batch)
	}
	for _, p := range batch {
		c.finishStmt(p)
	}
	c.refreshGauges()
}

// finishStmt finalizes one executed statement: deadline accounting,
// per-tenant accounting, the reply.
func (c *Core) finishStmt(p *pending) {
	r := &p.resp
	r.ID = p.id
	if p.hasDeadline && p.arrive.Add(r.Response) > p.deadline {
		r.DeadlineMiss = true
		c.mMisses.Inc()
	}
	if r.QueueWait > 0 {
		c.mQueued.Inc()
	}
	c.hWait.Observe(r.QueueWait.Seconds())
	reg := obsv.Default()
	reg.Counter(obsv.MetricServerTenantQueries + p.tenant).Inc()
	reg.FloatCounter(obsv.MetricServerTenantJoules + p.tenant).Add(r.Joules)
	c.inflight--
	c.gActive.Set(float64(c.inflight))
	p.reply()
}

// executePrivate runs one statement through the plain (private-scan)
// engine path, charging it an exact per-statement trace window.
func (c *Core) executePrivate(p *pending) {
	if p.req.Kind == StmtExplain {
		c.executeExplain(p)
		return
	}
	t0 := c.clock.Now()
	prev := c.eng.Profiling()
	c.eng.SetProfiling(c.cfg.Profiling || p.req.Kind == StmtAnalyze)
	rows := c.eng.QueryQueued(p.req.Plan, p.arrive)
	c.eng.SetProfiling(prev)
	c.drainOne(p, rows)
	t1 := c.clock.Now()
	p.resp.Joules = float64(c.sys.Machine.CPU.Trace().Energy(t0, t1))
	p.resp.QueueWait = t0.Sub(p.arrive)
	p.resp.Response = t1.Sub(p.arrive)
	obsv.Default().FloatCounter(obsv.MetricServerPolicyJoules + c.cfg.Policy.String()).Add(p.resp.Joules)
}

// executeShared co-admits a batch through the shared-scan session and
// drains the result streams priority-weighted round-robin. With all
// priorities zero the drain is exactly workload.RunShared's one pull per
// live stream per round — the order the bit-identity contract pins.
func (c *Core) executeShared(batch []*pending) {
	t0 := c.clock.Now()
	c.sess.SetExpectedConcurrency(len(batch))
	streams := make([]*engine.Rows, len(batch))
	starts := make([]sim.Time, len(batch))
	for i, p := range batch {
		if p.req.Kind == StmtExplain {
			c.executeExplain(p)
			continue
		}
		starts[i] = c.clock.Now()
		prev := c.eng.Profiling()
		c.eng.SetProfiling(c.cfg.Profiling || p.req.Kind == StmtAnalyze)
		streams[i] = c.sess.Admit(p.req.Plan, engine.AdmitOpts{
			Priority: p.req.Priority,
			QueuedAt: p.arrive,
			Queued:   true,
		})
		c.eng.SetProfiling(prev)
	}
	remaining := 0
	for _, r := range streams {
		if r != nil {
			remaining++
		}
	}
	executed := remaining
	for remaining > 0 {
		for i, r := range streams {
			if r == nil {
				continue
			}
			pulls := 1
			if p := batch[i].req.Priority; p > 0 {
				pulls += p
			}
			for k := 0; k < pulls && streams[i] != nil; k++ {
				b, err := r.Next()
				if err != nil {
					batch[i].resp.Err = err
					streams[i] = nil
					remaining--
					break
				}
				if b == nil {
					c.finalizeShared(batch[i], r, starts[i])
					streams[i] = nil
					remaining--
					break
				}
				if batch[i].req.CollectRows {
					batch[i].resp.Rows = b.AppendRowsTo(batch[i].resp.Rows)
				}
			}
		}
	}
	t1 := c.clock.Now()
	window := float64(c.sys.Machine.CPU.Trace().Energy(t0, t1))
	obsv.Default().FloatCounter(obsv.MetricServerPolicyJoules + c.cfg.Policy.String()).Add(window)
	if !c.cfg.Profiling && executed > 0 {
		// Without profiles the window's energy cannot be attributed per
		// statement; split it evenly (documented approximation — turn
		// Config.Profiling on for the exact partition).
		share := window / float64(executed)
		for i, p := range batch {
			if p.req.Kind != StmtExplain && p.resp.Err == nil && streams[i] == nil {
				if p.resp.Joules == 0 {
					p.resp.Joules = share
				}
			}
		}
	}
}

// finalizeShared records one co-admitted statement's outcome at stream
// exhaustion.
func (c *Core) finalizeShared(p *pending, r *engine.Rows, start sim.Time) {
	end := c.clock.Now()
	st := r.Stats()
	p.resp.RowsOut = st.RowsOut
	p.resp.Columns = columnNames(r)
	p.resp.QueueWait = start.Sub(p.arrive)
	p.resp.Duration = st.Duration
	p.resp.Response = end.Sub(p.arrive)
	if prof := r.Profile(); prof != nil {
		p.resp.Joules = prof.Joules
		if p.req.Kind == StmtAnalyze {
			p.resp.Explain = prof.Render()
		}
	}
}

// drainOne pulls a private statement's stream to completion, collecting
// rows when asked.
func (c *Core) drainOne(p *pending, rows *engine.Rows) {
	for {
		b, err := rows.Next()
		if err != nil {
			p.resp.Err = err
			return
		}
		if b == nil {
			break
		}
		if p.req.CollectRows {
			p.resp.Rows = b.AppendRowsTo(p.resp.Rows)
		}
	}
	st := rows.Stats()
	p.resp.RowsOut = st.RowsOut
	p.resp.Columns = columnNames(rows)
	p.resp.Duration = st.Duration
	// Joules stay the exact trace window executePrivate measures; the
	// profile is only needed here for ANALYZE rendering.
	if prof := rows.Profile(); prof != nil && p.req.Kind == StmtAnalyze {
		p.resp.Explain = prof.Render()
	}
}

// executeExplain renders the optimizer's plan — no simulated work, so it
// can ride any batch without charging anything.
func (c *Core) executeExplain(p *pending) {
	out, err := sql.Explain(c.eng, p.req.SQL)
	p.resp.Explain, p.resp.Err = out, err
}

// columnNames extracts the result schema's column names.
func columnNames(r *engine.Rows) []string {
	cols := r.Schema().Columns()
	names := make([]string, len(cols))
	for i, col := range cols {
		names[i] = col.Name
	}
	return names
}

// refreshGauges updates the engine-owned gauges the /metrics endpoint
// cannot touch itself (handlers never reach the engine; the scheduler
// refreshes after every batch, exactly as engine.MetricsSnapshot would).
func (c *Core) refreshGauges() {
	if pool := c.eng.Pool(); pool != nil {
		obsv.Default().Gauge(obsv.MetricPoolResident).Set(float64(pool.Used()))
	}
}
