package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ecodb/internal/expr"
	"ecodb/internal/obsv"
	"ecodb/internal/sim"
	"ecodb/internal/sql"
)

// This file is the live-serving edge: an HTTP front end over the admission
// scheduler. Connection handlers are ordinary concurrent goroutines — the
// server admits as many sessions as the OS gives it sockets — but they
// only parse SQL (the catalog is read-only after load) and rendezvous with
// the single scheduler goroutine, which owns every engine and clock touch.
//
//	POST /query    SQL text body; X-Tenant, X-Priority, X-Deadline-Ms headers
//	GET  /metrics  the engine metrics registry, exposition text format
//	GET  /healthz  "ok" until drain begins, 503 after
//	GET  /tenants  per-tenant admitted-query and joule totals, JSON

// Start launches the scheduler loop. Submissions rendezvous with the loop
// over an unbuffered channel, so an accepted Do is guaranteed to be
// answered — even by the drain path.
func (c *Core) Start() {
	go c.loop()
}

// Shutdown begins a graceful drain: new submissions are rejected with
// ErrDraining while everything already accepted is flushed, executed, and
// answered. It returns when the scheduler loop has exited or ctx expires.
func (c *Core) Shutdown(ctx context.Context) error {
	select {
	case <-c.stopc:
	default:
		close(c.stopc)
	}
	select {
	case <-c.stopped:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do submits one statement and blocks until its response. Safe to call
// from any number of goroutines.
func (c *Core) Do(req Request) Response {
	p := &pending{req: req, id: req.ID, tenant: req.Tenant, done: make(chan Response, 1)}
	select {
	case c.submit <- p:
		return <-p.done
	case <-c.stopped:
		return Response{ID: req.ID, Err: ErrDraining}
	}
}

// loop is the scheduler: the one goroutine that touches the engine during
// live serving. It gathers submissions into flush batches, times
// co-admission windows in real time (the simulated clock only advances
// while statements execute), and drains the queue on shutdown.
func (c *Core) loop() {
	defer close(c.stopped)
	flushWait := time.Duration(c.cfg.FlushWait.Seconds() * float64(time.Second))
	if flushWait <= 0 {
		flushWait = time.Millisecond
	}
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	defer timer.Stop()
	armed := false
	for {
		select {
		case p := <-c.submit:
			c.enqueue(p)
			for c.shouldFlushLive() {
				c.flush()
			}
			if len(c.queue) > 0 && !armed {
				timer.Reset(flushWait)
				armed = true
			} else if len(c.queue) == 0 && armed {
				if !timer.Stop() {
					<-timer.C
				}
				armed = false
			}
		case <-timer.C:
			armed = false
			for len(c.queue) > 0 {
				c.flush()
			}
		case <-c.stopc:
			// Drain: everything accepted gets executed and answered. A
			// sender blocked on the unbuffered submit channel has not been
			// accepted and unblocks via the stopped channel in Do.
			for len(c.queue) > 0 {
				c.flush()
			}
			return
		}
	}
}

// shouldFlushLive is the live loop's immediate-flush test: the private
// policy never batches, a full window flushes, and deadline-urgent
// statements bypass the window. The FlushWait timeout is the timer's job.
func (c *Core) shouldFlushLive() bool {
	if len(c.queue) == 0 {
		return false
	}
	return c.cfg.Policy == PolicyPrivate ||
		len(c.queue) >= c.cfg.FlushThreshold ||
		c.urgent()
}

// Server is the HTTP front end.
type Server struct {
	core     *Core
	srv      *http.Server
	draining atomic.Bool
}

// NewServer wires a Core to an address. Call Core.Start (or let
// ListenAndServe do it) before serving.
func NewServer(c *Core, addr string) *Server {
	s := &Server{core: c}
	s.srv = &http.Server{Addr: addr, Handler: s.Handler()}
	return s
}

// Handler returns the route table, for tests and embedding.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/tenants", s.handleTenants)
	return mux
}

// ListenAndServe starts the scheduler and serves until Shutdown.
func (s *Server) ListenAndServe() error {
	s.core.Start()
	err := s.srv.ListenAndServe()
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown drains gracefully: the listener stops accepting, in-flight
// handlers finish (their statements are answered by the scheduler's drain),
// and the scheduler loop exits.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	httpErr := s.srv.Shutdown(ctx)
	coreErr := s.core.Shutdown(ctx)
	if httpErr != nil {
		return httpErr
	}
	return coreErr
}

// queryResponse is the /query JSON wire format. Times are simulated
// seconds; joules are simulated CPU energy.
type queryResponse struct {
	ID           string   `json:"id,omitempty"`
	Columns      []string `json:"columns,omitempty"`
	Rows         [][]any  `json:"rows,omitempty"`
	RowsOut      int64    `json:"rows_out"`
	Explain      string   `json:"explain,omitempty"`
	QueueWaitSec float64  `json:"queue_wait_seconds"`
	DurationSec  float64  `json:"duration_seconds"`
	ResponseSec  float64  `json:"response_seconds"`
	Joules       float64  `json:"joules"`
	DeadlineMiss bool     `json:"deadline_miss,omitempty"`
	Error        string   `json:"error,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a SQL statement", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, queryResponse{Error: err.Error()})
		return
	}
	query := strings.TrimSpace(string(body))
	req, err := buildRequest(s.core, query, r.Header)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, queryResponse{Error: err.Error()})
		return
	}
	resp := s.core.Do(req)
	status := http.StatusOK
	switch resp.Err {
	case nil:
	case ErrDraining:
		status = http.StatusServiceUnavailable
	case ErrOverloaded:
		status = http.StatusTooManyRequests
	default:
		status = http.StatusBadRequest
	}
	out := queryResponse{
		ID:           resp.ID,
		Columns:      resp.Columns,
		RowsOut:      resp.RowsOut,
		Explain:      resp.Explain,
		QueueWaitSec: resp.QueueWait.Seconds(),
		DurationSec:  resp.Duration.Seconds(),
		ResponseSec:  resp.Response.Seconds(),
		Joules:       resp.Joules,
		DeadlineMiss: resp.DeadlineMiss,
	}
	if resp.Err != nil {
		out.Error = resp.Err.Error()
	}
	if len(resp.Rows) > 0 {
		out.Rows = make([][]any, len(resp.Rows))
		for i, row := range resp.Rows {
			out.Rows[i] = rowJSON(row)
		}
	}
	writeJSON(w, status, out)
}

// buildRequest parses one statement on the connection goroutine — binding
// only reads the catalog, which is immutable after load — so the scheduler
// never pays for malformed SQL.
func buildRequest(c *Core, query string, h http.Header) (Request, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return Request{}, err
	}
	req := Request{
		Tenant:      h.Get("X-Tenant"),
		SQL:         query,
		CollectRows: true,
	}
	if v := h.Get("X-Priority"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil {
			return Request{}, fmt.Errorf("bad X-Priority %q: %w", v, err)
		}
		req.Priority = p
	}
	if v := h.Get("X-Deadline-Ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			return Request{}, fmt.Errorf("bad X-Deadline-Ms %q", v)
		}
		req.Deadline = sim.Duration(ms / 1e3)
	}
	switch {
	case stmt.Explain && stmt.Analyze:
		req.Kind = StmtAnalyze
	case stmt.Explain:
		// The scheduler renders the plan from the raw SQL; nothing to bind.
		req.Kind = StmtExplain
		return req, nil
	}
	stmt.Explain, stmt.Analyze = false, false
	p, err := sql.Bind(c.eng.Catalog(), stmt)
	if err != nil {
		return Request{}, err
	}
	req.Plan = p
	return req, nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// The scheduler refreshed engine gauges after its last batch, so the
	// registry snapshot is exactly engine.MetricsSnapshot's content —
	// without handlers ever touching the engine.
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, obsv.Default().Snapshot().Text())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ok\n")
}

func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	type tenant struct {
		Queries int64   `json:"queries"`
		Joules  float64 `json:"joules"`
	}
	snap := obsv.Default().Snapshot()
	out := map[string]*tenant{}
	get := func(name string) *tenant {
		t, ok := out[name]
		if !ok {
			t = &tenant{}
			out[name] = t
		}
		return t
	}
	for name, v := range snap.Counters {
		if t, ok := strings.CutPrefix(name, obsv.MetricServerTenantQueries); ok {
			get(t).Queries = v
		}
	}
	for name, v := range snap.Floats {
		if t, ok := strings.CutPrefix(name, obsv.MetricServerTenantJoules); ok {
			get(t).Joules = v
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// rowJSON converts one result row to JSON-friendly values.
func rowJSON(row expr.Row) []any {
	out := make([]any, len(row))
	for i, v := range row {
		switch v.Kind {
		case expr.KindNull:
			out[i] = nil
		case expr.KindBool:
			out[i] = v.I != 0
		case expr.KindInt:
			out[i] = v.I
		case expr.KindFloat:
			out[i] = v.F
		case expr.KindString:
			out[i] = v.S
		case expr.KindDate:
			out[i] = v.DateString()
		default:
			out[i] = v.String()
		}
	}
	return out
}
