package server

import (
	"sort"

	"ecodb/internal/sim"
)

// This file is the scheduler's open-loop measurement harness: the same
// admission machinery as live serving, driven entirely in simulated time
// on the caller's goroutine. Requests arrive at fixed simulated instants
// whether or not earlier ones have finished (open loop — the offered load
// never backs off), the clock advances to the next arrival whenever the
// server idles (idle watts accrue, which is the energy-proportionality
// story), and co-admission windows elapse in simulated time. Because
// everything is deterministic, a fixed arrival schedule produces
// bit-identical results, durations, and joules on every run.

// Arrival schedules one request at a simulated instant.
type Arrival struct {
	At  sim.Time
	Req Request
}

// OpenLoopArrivals builds a constant-rate schedule: n requests at qps
// requests per simulated second, starting at start, cycling through reqs.
func OpenLoopArrivals(start sim.Time, n int, qps float64, reqs []Request) []Arrival {
	out := make([]Arrival, n)
	for i := range out {
		out[i] = Arrival{
			At:  start.Add(sim.Duration(float64(i) / qps)),
			Req: reqs[i%len(reqs)],
		}
	}
	return out
}

// OpenLoopResult summarizes one open-loop run.
type OpenLoopResult struct {
	Offered   int
	Completed int
	Rejected  int
	Misses    int
	// Start and End bound the run in simulated time: first arrival to
	// last completion.
	Start, End sim.Time
	// Joules is the CPU trace energy over [Start, End] — busy and idle,
	// so a server that finishes early and sits idle still pays idle watts
	// until End.
	Joules float64
	// MeanResponse and MaxResponse aggregate completed statements'
	// queue-entry-to-completion times.
	MeanResponse, MaxResponse sim.Duration
	Responses                 []Response
}

// AchievedQPS returns completions per simulated second over the run.
func (r OpenLoopResult) AchievedQPS() float64 {
	if d := r.End.Sub(r.Start).Seconds(); d > 0 {
		return float64(r.Completed) / d
	}
	return 0
}

// JoulesPerQuery returns the run's total energy (idle included) per
// completed statement.
func (r OpenLoopResult) JoulesPerQuery() float64 {
	if r.Completed == 0 {
		return 0
	}
	return r.Joules / float64(r.Completed)
}

// RunOpenLoop drives the scheduler through an arrival schedule in
// simulated time and returns the run's outcome. It must not be mixed with
// Start/Do on the same core: the open loop owns the engine synchronously.
func (c *Core) RunOpenLoop(arrivals []Arrival) OpenLoopResult {
	arr := make([]Arrival, len(arrivals))
	copy(arr, arrivals)
	sort.SliceStable(arr, func(i, j int) bool { return arr[i].At < arr[j].At })

	out := OpenLoopResult{Offered: len(arr), Start: c.clock.Now()}
	if len(arr) > 0 && arr[0].At > out.Start {
		out.Start = arr[0].At
	}
	pend := make([]*pending, 0, len(arr))
	i := 0
	for i < len(arr) || len(c.queue) > 0 {
		now := c.clock.Now()
		for i < len(arr) && arr[i].At <= now {
			p := &pending{req: arr[i].Req, id: arr[i].Req.ID, tenant: arr[i].Req.Tenant}
			if c.enqueue(p) {
				pend = append(pend, p)
			} else {
				out.Rejected++
			}
			i++
		}
		if len(c.queue) == 0 {
			if i >= len(arr) {
				// Everything left was rejected at the bound; nothing to run.
				break
			}
			c.clock.AdvanceTo(arr[i].At)
			continue
		}
		if c.shouldFlush(i < len(arr)) {
			c.flush()
			continue
		}
		// Neither full nor timed out: sleep to whichever comes first, the
		// window expiry or the next arrival. A wake-up instant that is not
		// strictly in the future means the window has expired to within
		// float rounding ((t+w)-t can come out a hair under w), so flush
		// rather than spin on a no-op clock advance.
		next := c.oldestArrival().Add(c.cfg.FlushWait)
		if i < len(arr) && arr[i].At < next {
			next = arr[i].At
		}
		if next <= now {
			c.flush()
			continue
		}
		c.clock.AdvanceTo(next)
	}

	out.End = c.clock.Now()
	trace := c.sys.Machine.CPU.Trace()
	out.Joules = float64(trace.Energy(out.Start, out.End))
	out.Responses = make([]Response, len(pend))
	for j, p := range pend {
		out.Responses[j] = p.resp
		if p.resp.Err != nil {
			continue
		}
		out.Completed++
		if p.resp.DeadlineMiss {
			out.Misses++
		}
		out.MeanResponse += p.resp.Response
		if p.resp.Response > out.MaxResponse {
			out.MaxResponse = p.resp.Response
		}
	}
	if out.Completed > 0 {
		out.MeanResponse /= sim.Duration(out.Completed)
	}
	return out
}
