package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ecodb/internal/core"
	"ecodb/internal/engine"
	"ecodb/internal/obsv"
	"ecodb/internal/plan"
	"ecodb/internal/sim"
	"ecodb/internal/tpch"
	"ecodb/internal/workload"
)

// testProfile is the serving profile the tests run under: commercial
// physics with prepared-statement overhead, exactly as the ablation uses.
func testProfile() engine.Profile {
	prof := engine.ProfileCommercial()
	prof.WorkAmplification = 1
	prof.QueryOverheadCycles = 5e5
	return prof
}

// newTestSystem builds a small warm SUT and the band workload's plans.
// Loading and warming advance the simulated clock, so tests schedule
// arrivals relative to clock.Now(), never at absolute zero.
func newTestSystem(t *testing.T) (*core.System, []plan.Node) {
	t.Helper()
	sys := core.NewSystem(testProfile())
	tpch.NewGenerator(0.0005, 42).Load(sys.Engine.Catalog(), tpch.Lineitem)
	sys.Engine.WarmAll()
	return sys, tpch.QuantityBandWorkload(sys.Engine.Catalog(), 25)
}

func queryRequests(plans []plan.Node, n int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{ID: fmt.Sprintf("q%02d", i), Plan: plans[i%len(plans)]}
	}
	return reqs
}

// wave schedules every request at the same simulated instant.
func wave(at sim.Time, reqs []Request) []Arrival {
	out := make([]Arrival, len(reqs))
	for i, r := range reqs {
		out[i] = Arrival{At: at, Req: r}
	}
	return out
}

func traceEnergy(sys *core.System) float64 {
	return float64(sys.Machine.CPU.Trace().Energy(0, sys.Machine.Clock.Now()))
}

// TestZeroCapacityQueue: MaxInflight 0 means zero capacity, so every
// statement bounces with ErrOverloaded and nothing executes.
func TestZeroCapacityQueue(t *testing.T) {
	sys, plans := newTestSystem(t)
	cfg := DefaultConfig()
	cfg.MaxInflight = 0
	c := NewCore(cfg, sys)
	before := obsv.Default().Counter(obsv.MetricServerRejected).Load()
	res := c.RunOpenLoop(wave(sys.Machine.Clock.Now(), queryRequests(plans, 3)))
	if res.Rejected != 3 || res.Completed != 0 {
		t.Fatalf("zero-capacity queue: rejected=%d completed=%d, want 3/0", res.Rejected, res.Completed)
	}
	if got := obsv.Default().Counter(obsv.MetricServerRejected).Load() - before; got != 3 {
		t.Fatalf("rejected counter advanced by %d, want 3", got)
	}
	if len(c.AdmissionLog()) != 0 {
		t.Fatalf("zero-capacity queue admitted %d batches", len(c.AdmissionLog()))
	}
	c.Start()
	if r := c.Do(Request{Plan: plans[0]}); r.Err != ErrOverloaded {
		t.Fatalf("live submission error = %v, want ErrOverloaded", r.Err)
	}
	if err := c.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestDeadlineExpiredAtAdmission: a statement whose budget is already
// blown when it reaches the engine still runs to completion — admission
// never kills statements — and is counted missed exactly once.
func TestDeadlineExpiredAtAdmission(t *testing.T) {
	sys, plans := newTestSystem(t)
	cfg := DefaultConfig()
	cfg.Policy = PolicyDeadline
	cfg.FlushThreshold = 1
	c := NewCore(cfg, sys)
	before := obsv.Default().Counter(obsv.MetricServerDeadlineMisses).Load()
	reqs := queryRequests(plans, 1)
	reqs[0].Deadline = 1e-12 // expires before any simulated work can finish
	res := c.RunOpenLoop(wave(sys.Machine.Clock.Now(), reqs))
	if res.Completed != 1 {
		t.Fatalf("expired statement did not complete: %+v", res)
	}
	if !res.Responses[0].DeadlineMiss || res.Misses != 1 {
		t.Fatalf("expired statement not counted missed: %+v", res.Responses[0])
	}
	if got := obsv.Default().Counter(obsv.MetricServerDeadlineMisses).Load() - before; got != 1 {
		t.Fatalf("deadline miss counter advanced by %d, want 1", got)
	}
	if res.Responses[0].RowsOut == 0 {
		t.Fatalf("expired statement produced no rows — it must still run")
	}
}

// TestDrainDuringInflight: shutdown while statements sit in the admission
// queue executes and answers every accepted statement; later submissions
// are refused with ErrDraining.
func TestDrainDuringInflight(t *testing.T) {
	sys, plans := newTestSystem(t)
	cfg := DefaultConfig()
	cfg.FlushThreshold = 100 // nothing flushes on its own...
	cfg.FlushWait = 10       // ...for 10 real seconds of window wait
	c := NewCore(cfg, sys)
	c.Start()

	const n = 8
	var wg sync.WaitGroup
	results := make([]Response, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.Do(Request{ID: fmt.Sprintf("d%d", i), Plan: plans[i]})
		}(i)
	}
	// Wait until the scheduler has accepted all n into the queue.
	depth := obsv.Default().Gauge(obsv.MetricServerQueueDepth)
	for start := time.Now(); depth.Load() < n; {
		if time.Since(start) > 5*time.Second {
			t.Fatalf("queue never reached depth %d (at %v)", n, depth.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if err := c.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("accepted statement %d not completed on drain: %v", i, r.Err)
		}
		if r.RowsOut == 0 {
			t.Fatalf("accepted statement %d drained without executing", i)
		}
	}
	if r := c.Do(Request{Plan: plans[0]}); r.Err != ErrDraining {
		t.Fatalf("post-drain submission error = %v, want ErrDraining", r.Err)
	}
}

// TestBitIdentityWithRunShared: a single co-admitted server batch over the
// same plans, on a twin system, produces byte-identical simulated clocks,
// joules, and per-statement response times to the embedded
// workload.RunShared path. Admission metadata is policy and observation,
// never physics.
func TestBitIdentityWithRunShared(t *testing.T) {
	const n = 8

	sysA, plansA := newTestSystem(t)
	cfg := DefaultConfig()
	cfg.Policy = PolicyShared
	cfg.Window = n
	cfg.Profiling = false
	c := NewCore(cfg, sysA)
	res := c.RunOpenLoop(wave(sysA.Machine.Clock.Now(), queryRequests(plansA, n)))
	if res.Completed != n || len(c.AdmissionLog()) != 1 {
		t.Fatalf("server run: completed=%d batches=%d, want %d/1", res.Completed, len(c.AdmissionLog()), n)
	}

	sysB, plansB := newTestSystem(t)
	out := workload.RunShared(sysB.Engine, sysB.Machine.Clock, workload.NewQueries("q", plansB[:n]))

	endA, endB := sysA.Machine.Clock.Now(), sysB.Machine.Clock.Now()
	if endA != endB {
		t.Fatalf("clocks diverge: server %v vs embedded %v", endA, endB)
	}
	if jA, jB := traceEnergy(sysA), traceEnergy(sysB); jA != jB {
		t.Fatalf("joules diverge: server %v vs embedded %v", jA, jB)
	}
	for i := range out.Queries {
		if res.Responses[i].Response != out.Queries[i].End {
			t.Fatalf("query %d response diverges: server %v vs embedded %v",
				i, res.Responses[i].Response, out.Queries[i].End)
		}
	}
}

// TestSerialReplayBitIdentity: replaying a multi-batch open-loop run's
// admission log — advance the clock to each batch instant, co-admit its
// IDs' plans through a persistent shared session, drain round-robin —
// reproduces the run's end clock and total joules exactly.
func TestSerialReplayBitIdentity(t *testing.T) {
	const n = 24

	sysA, plansA := newTestSystem(t)
	cfg := DefaultConfig()
	cfg.Policy = PolicyShared
	cfg.FlushThreshold = 4
	cfg.FlushWait = 0.002
	cfg.Profiling = false
	c := NewCore(cfg, sysA)
	res := c.RunOpenLoop(OpenLoopArrivals(sysA.Machine.Clock.Now(), n, 2000, queryRequests(plansA, n)))
	if res.Completed != n {
		t.Fatalf("server run completed %d of %d", res.Completed, n)
	}
	adm := c.AdmissionLog()
	if len(adm) < 2 {
		t.Fatalf("want a multi-batch run, got %d batches", len(adm))
	}

	// Twin system: replay the log serially through the embedded path.
	sysB, plansB := newTestSystem(t)
	byID := map[string]plan.Node{}
	for _, r := range queryRequests(plansB, n) {
		byID[r.ID] = r.Plan
	}
	sess := sysB.Engine.NewSharedSession()
	for _, batch := range adm {
		sysB.Machine.Clock.AdvanceTo(batch.At)
		sess.SetExpectedConcurrency(len(batch.IDs))
		streams := make([]*engine.Rows, len(batch.IDs))
		for i, id := range batch.IDs {
			streams[i] = sess.Query(byID[id])
		}
		remaining := len(streams)
		for remaining > 0 {
			for i, r := range streams {
				if r == nil {
					continue
				}
				b, err := r.Next()
				if err != nil {
					t.Fatalf("replay error: %v", err)
				}
				if b == nil {
					streams[i] = nil
					remaining--
				}
			}
		}
	}
	endA, endB := sysA.Machine.Clock.Now(), sysB.Machine.Clock.Now()
	if endA != endB {
		t.Fatalf("replay clock diverges: %v vs %v", endA, endB)
	}
	if jA, jB := traceEnergy(sysA), traceEnergy(sysB); jA != jB {
		t.Fatalf("replay joules diverge: %v vs %v", jA, jB)
	}
}

// TestQueueWaitSpanInAnalyze: a statement that waited in the admission
// queue shows the wait as a QueueWait span in its EXPLAIN ANALYZE tree.
func TestQueueWaitSpanInAnalyze(t *testing.T) {
	sys, plans := newTestSystem(t)
	cfg := DefaultConfig()
	cfg.FlushThreshold = 2
	c := NewCore(cfg, sys)
	// q0 arrives first and waits for q1 to fill the co-admission window:
	// a real, deterministic 1 ms queue wait.
	start := sys.Machine.Clock.Now()
	arr := []Arrival{
		{At: start, Req: Request{ID: "q0", Plan: plans[0], Kind: StmtAnalyze}},
		{At: start.Add(0.001), Req: Request{ID: "q1", Plan: plans[1]}},
	}
	res := c.RunOpenLoop(arr)
	if res.Completed != 2 {
		t.Fatalf("completed %d of 2", res.Completed)
	}
	r0 := res.Responses[0]
	if r0.QueueWait <= 0 {
		t.Fatalf("q0 queue wait = %v, want > 0", r0.QueueWait)
	}
	if !strings.Contains(r0.Explain, "QueueWait") {
		t.Fatalf("EXPLAIN ANALYZE missing QueueWait span:\n%s", r0.Explain)
	}
}

// TestPriorityDrainsFirst: within one co-admitted batch, a higher-priority
// statement's stream is drained ahead of its best-effort peers, so it
// finishes strictly sooner.
func TestPriorityDrainsFirst(t *testing.T) {
	sys, plans := newTestSystem(t)
	cfg := DefaultConfig()
	cfg.Profiling = false
	c := NewCore(cfg, sys)
	reqs := queryRequests(plans, 4)
	reqs[3].Priority = 3
	res := c.RunOpenLoop(wave(sys.Machine.Clock.Now(), reqs))
	if res.Completed != 4 {
		t.Fatalf("completed %d of 4", res.Completed)
	}
	prio := res.Responses[3].Response
	for i := 0; i < 3; i++ {
		if prio >= res.Responses[i].Response {
			t.Fatalf("priority statement (%v) did not finish before best-effort %d (%v)",
				prio, i, res.Responses[i].Response)
		}
	}
}

// TestHTTPServerSmoke: concurrent HTTP sessions against the full stack —
// queries answered, metrics exposed from the registry, healthz flips to
// 503 on drain, and post-drain queries are refused.
func TestHTTPServerSmoke(t *testing.T) {
	sys, _ := newTestSystem(t)
	c := NewCore(DefaultConfig(), sys)
	s := NewServer(c, "unused")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c.Start()

	sessionsBefore := obsv.Default().Counter(obsv.MetricServerSessions).Load()
	const n = 40
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := fmt.Sprintf("SELECT COUNT(*) FROM lineitem WHERE l_quantity < %d", i%20+2)
			req, _ := http.NewRequest("POST", ts.URL+"/query", strings.NewReader(q))
			req.Header.Set("X-Tenant", fmt.Sprintf("tenant%d", i%4))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", hresp.StatusCode)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(metrics), obsv.MetricServerSessions) {
		t.Fatalf("metrics missing %s:\n%s", obsv.MetricServerSessions, metrics)
	}
	if got := obsv.Default().Counter(obsv.MetricServerSessions).Load() - sessionsBefore; got != n {
		t.Fatalf("sessions counter advanced by %d, want %d", got, n)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The httptest listener is separate from the server's own, so the
	// handler still answers — and must report draining.
	hresp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz after drain: %v", err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain = %d, want 503", hresp.StatusCode)
	}
	qresp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader("SELECT COUNT(*) FROM lineitem"))
	if err != nil {
		t.Fatalf("query after drain: %v", err)
	}
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query after drain = %d, want 503", qresp.StatusCode)
	}
}

// TestProfilingIsBitNeutral: the same open-loop run with and without
// per-statement profiling lands on identical clocks and joules —
// observation never charges.
func TestProfilingIsBitNeutral(t *testing.T) {
	run := func(profiling bool) (sim.Time, float64) {
		sys, plans := newTestSystem(t)
		cfg := DefaultConfig()
		cfg.FlushThreshold = 4
		cfg.Profiling = profiling
		c := NewCore(cfg, sys)
		res := c.RunOpenLoop(OpenLoopArrivals(sys.Machine.Clock.Now(), 12, 3000, queryRequests(plans, 12)))
		if res.Completed != 12 {
			t.Fatalf("completed %d of 12", res.Completed)
		}
		return sys.Machine.Clock.Now(), traceEnergy(sys)
	}
	endOn, jOn := run(true)
	endOff, jOff := run(false)
	if endOn != endOff || jOn != jOff {
		t.Fatalf("profiling changed physics: end %v vs %v, joules %v vs %v", endOn, endOff, jOn, jOff)
	}
}
