// Package sim provides the deterministic simulation substrate shared by all
// hardware models: a virtual clock, simulated durations, and a reproducible
// random number generator.
//
// Every hardware component (CPU, disk, memory) charges time against a shared
// *Clock rather than the wall clock, which makes experiments deterministic,
// fast, and independent of the host machine.
package sim

import "fmt"

// Duration is a span of virtual time in seconds.
type Duration float64

// Common durations.
const (
	Nanosecond  Duration = 1e-9
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1
	Minute      Duration = 60
)

// Seconds returns the duration as a float64 number of seconds.
func (d Duration) Seconds() float64 { return float64(d) }

// Milliseconds returns the duration as a float64 number of milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) * 1e3 }

func (d Duration) String() string {
	switch {
	case d < Microsecond:
		return fmt.Sprintf("%.1fns", float64(d)/1e-9)
	case d < Millisecond:
		return fmt.Sprintf("%.2fµs", float64(d)/1e-6)
	case d < Second:
		return fmt.Sprintf("%.2fms", float64(d)/1e-3)
	case d < Minute:
		return fmt.Sprintf("%.3fs", float64(d))
	default:
		return fmt.Sprintf("%.1fmin", float64(d)/60)
	}
}

// Time is an instant of virtual time, in seconds since the start of the
// simulation.
type Time float64

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier instant u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the instant as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) }

// Clock is a virtual clock. The zero value is a clock at time zero, ready to
// use. A single Clock is shared by all components of one simulated machine;
// it is not safe for concurrent use (simulated machines are single-threaded
// by design, mirroring the one-query-at-a-time model in the paper).
type Clock struct {
	now Time
}

// NewClock returns a clock starting at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d and returns the new time.
// Advancing by a negative duration panics: simulated time is monotonic.
func (c *Clock) Advance(d Duration) Time {
	if d < 0 {
		panic(fmt.Sprintf("sim: clock advanced by negative duration %v", d))
	}
	c.now = c.now.Add(d)
	return c.now
}

// AdvanceTo moves the clock forward to instant t. It panics if t is in the
// past.
func (c *Clock) AdvanceTo(t Time) {
	if t < c.now {
		panic(fmt.Sprintf("sim: clock moved backwards from %v to %v", c.now, t))
	}
	c.now = t
}

// Reset rewinds the clock to zero. Only experiment harnesses should call
// this, between independent runs.
func (c *Clock) Reset() { c.now = 0 }
