package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(2 * Second)
	c.Advance(500 * Millisecond)
	if got, want := c.Now().Seconds(), 2.5; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.AdvanceTo(Time(3))
	if c.Now() != 3 {
		t.Fatalf("AdvanceTo(3): Now() = %v", c.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo into the past did not panic")
		}
	}()
	c.AdvanceTo(Time(1))
}

func TestClockReset(t *testing.T) {
	c := NewClock()
	c.Advance(Second)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("after Reset, Now() = %v", c.Now())
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{5 * Nanosecond, "5.0ns"},
		{3 * Microsecond, "3.00µs"},
		{12 * Millisecond, "12.00ms"},
		{1.5 * Second, "1.500s"},
		{120 * Second, "2.0min"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%v).String() = %q, want %q", float64(c.d), got, c.want)
		}
	}
}

func TestTimeSubAdd(t *testing.T) {
	a := Time(10)
	b := a.Add(2 * Second)
	if b.Sub(a) != 2*Second {
		t.Fatalf("Sub = %v, want 2s", b.Sub(a))
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	if NewRNG(42).Uint64() == c.Uint64() {
		t.Fatal("different seeds produced identical first values")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		v := NewRNG(seed).Intn(bound)
		return v >= 0 && v < bound
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntRangeInclusive(t *testing.T) {
	r := NewRNG(1)
	seenLo, seenHi := false, false
	for i := 0; i < 10000; i++ {
		v := r.IntRange(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("IntRange(3,7) = %d", v)
		}
		seenLo = seenLo || v == 3
		seenHi = seenHi || v == 7
	}
	if !seenLo || !seenHi {
		t.Fatal("IntRange never produced an endpoint in 10k draws")
	}
}

func TestRNGUniformity(t *testing.T) {
	// Chi-squared-ish sanity: 50 buckets over 100k draws should each be
	// within 20% of the expected count. Catches gross modulo bias.
	r := NewRNG(99)
	const draws, buckets = 100000, 50
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.2*want {
			t.Fatalf("bucket %d count %d deviates >20%% from %v", b, c, want)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	p := NewRNG(5).Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm produced invalid/duplicate element %d", v)
		}
		seen[v] = true
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(0).Intn(0)
}
