package sql

import "fmt"

// SelectStmt is a parsed SELECT statement, optionally prefixed with
// EXPLAIN (which asks for the chosen physical plan instead of rows) or
// EXPLAIN ANALYZE (which executes the statement and asks for its profile).
type SelectStmt struct {
	Explain bool
	Analyze bool // EXPLAIN ANALYZE; implies Explain
	Items   []SelectItem
	From    TableRef
	Joins   []JoinClause
	Where   Node
	GroupBy []ColRef
	OrderBy []OrderItem
	Limit   int // -1 when absent
}

// SelectItem is one select-list entry: either a star, a plain expression,
// or an aggregate call, optionally aliased.
type SelectItem struct {
	Star  bool
	Agg   string // "", or SUM/COUNT/MIN/MAX/AVG
	Expr  Node   // nil for COUNT(*) and star
	Alias string
}

// TableRef names a base table.
type TableRef struct {
	Name string
}

// JoinClause is one INNER JOIN with its ON condition.
type JoinClause struct {
	Table TableRef
	On    Node
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Node
	Desc bool
}

// Node is an expression AST node.
type Node interface {
	fmt.Stringer
	node()
}

// ColRef references a column, optionally qualified.
type ColRef struct {
	Table string // "" when unqualified
	Name  string
}

func (c ColRef) node() {}
func (c ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// Lit is a literal value.
type Lit struct {
	Kind LitKind
	N    float64 // Number
	S    string  // Str / Date
	B    bool    // Boolean
}

// LitKind classifies literals.
type LitKind int

// Literal kinds.
const (
	LitNumber LitKind = iota
	LitString
	LitDate
	LitBool
	LitNull
)

func (l Lit) node() {}
func (l Lit) String() string {
	switch l.Kind {
	case LitNumber:
		return fmt.Sprintf("%g", l.N)
	case LitString:
		return "'" + l.S + "'"
	case LitDate:
		return "DATE '" + l.S + "'"
	case LitBool:
		return fmt.Sprintf("%v", l.B)
	default:
		return "NULL"
	}
}

// BinOp is a binary operation: comparison, arithmetic, AND, OR.
type BinOp struct {
	Op   string // = <> < <= > >= + - * / AND OR
	L, R Node
}

func (b BinOp) node()          {}
func (b BinOp) String() string { return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R) }

// UnaryNot is NOT <expr>.
type UnaryNot struct {
	E Node
}

func (u UnaryNot) node()          {}
func (u UnaryNot) String() string { return fmt.Sprintf("(NOT %s)", u.E) }

// BetweenNode is <expr> BETWEEN lo AND hi (inclusive bounds, per SQL).
type BetweenNode struct {
	E, Lo, Hi Node
}

func (b BetweenNode) node() {}
func (b BetweenNode) String() string {
	return fmt.Sprintf("(%s BETWEEN %s AND %s)", b.E, b.Lo, b.Hi)
}

// InNode is <expr> IN (v1, v2, ...).
type InNode struct {
	E    Node
	List []Node
}

func (i InNode) node() {}
func (i InNode) String() string {
	s := fmt.Sprintf("(%s IN (", i.E)
	for j, v := range i.List {
		if j > 0 {
			s += ", "
		}
		s += v.String()
	}
	return s + "))"
}
