package sql

import (
	"fmt"
	"math"
	"time"

	"ecodb/internal/catalog"
	"ecodb/internal/expr"
	"ecodb/internal/plan"
)

// Plan parses a SELECT statement and lowers it onto the catalog's tables,
// producing an executable logical plan. Joins are built left-deep in FROM
// order with hash joins on the equality conditions of each ON clause; WHERE
// conjuncts that touch only the first table are pushed into its scan, the
// engines' no-index plan shape.
func Plan(cat *catalog.Catalog, query string) (plan.Node, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return Bind(cat, stmt)
}

// Bind lowers a parsed statement onto the catalog.
func Bind(cat *catalog.Catalog, stmt *SelectStmt) (plan.Node, error) {
	b := &binder{cat: cat}
	return b.bind(stmt)
}

type binder struct {
	cat *catalog.Catalog
}

// scope resolves column references against the current intermediate
// schema, tracking which base table contributed each column.
type scope struct {
	schema *catalog.Schema
	source []string // table name per column position
}

func (s *scope) resolve(c ColRef) (int, error) {
	if c.Table == "" {
		idx, ok := s.schema.Index(c.Name)
		if !ok {
			return 0, fmt.Errorf("sql: unknown column %q", c.Name)
		}
		return idx, nil
	}
	for i, col := range s.schema.Columns() {
		if col.Name == c.Name && s.source[i] == c.Table {
			return i, nil
		}
	}
	return 0, fmt.Errorf("sql: unknown column %q", c.String())
}

func (b *binder) bind(stmt *SelectStmt) (plan.Node, error) {
	base, err := b.cat.Table(stmt.From.Name)
	if err != nil {
		return nil, err
	}

	// Split WHERE into conjuncts; push single-table ones into the scan.
	conjuncts := splitConjuncts(stmt.Where)
	baseScope := &scope{schema: base.Schema, source: tableSources(base)}
	var scanPred expr.Expr
	var residualWhere []Node
	for _, c := range conjuncts {
		if bound, err := bindExpr(c, baseScope); err == nil {
			scanPred = andWith(scanPred, bound)
		} else {
			residualWhere = append(residualWhere, c)
		}
	}

	var root plan.Node = plan.NewScan(base, scanPred)
	sc := baseScope

	// Left-deep join chain.
	for _, j := range stmt.Joins {
		right, err := b.cat.Table(j.Table.Name)
		if err != nil {
			return nil, err
		}
		rightScope := &scope{schema: right.Schema, source: tableSources(right)}
		joined, joinedScope, err := bindJoin(root, sc, right, rightScope, j.On)
		if err != nil {
			return nil, err
		}
		root, sc = joined, joinedScope
	}

	// Remaining WHERE conjuncts over the joined schema.
	for _, c := range residualWhere {
		bound, err := bindExpr(c, sc)
		if err != nil {
			return nil, err
		}
		root = plan.NewFilter(root, bound)
	}

	// Aggregation.
	hasAgg := len(stmt.GroupBy) > 0
	for _, it := range stmt.Items {
		if it.Agg != "" {
			hasAgg = true
		}
	}
	if hasAgg {
		root, sc, err = bindAgg(stmt, root, sc)
		if err != nil {
			return nil, err
		}
	} else if !isStar(stmt.Items) {
		root, sc, err = bindProject(stmt.Items, root, sc)
		if err != nil {
			return nil, err
		}
	}

	// ORDER BY over the output schema.
	if len(stmt.OrderBy) > 0 {
		keys := make([]plan.SortKey, len(stmt.OrderBy))
		for i, o := range stmt.OrderBy {
			col, ok := o.Expr.(ColRef)
			if !ok {
				return nil, fmt.Errorf("sql: ORDER BY supports column references only, got %s", o.Expr)
			}
			idx, err := sc.resolve(col)
			if err != nil {
				return nil, err
			}
			keys[i] = plan.SortKey{Col: idx, Desc: o.Desc}
		}
		root = plan.NewSort(root, keys...)
	}

	if stmt.Limit >= 0 {
		root = plan.NewLimit(root, stmt.Limit)
	}
	return root, nil
}

func isStar(items []SelectItem) bool {
	return len(items) == 1 && items[0].Star
}

func tableSources(t *catalog.Table) []string {
	src := make([]string, t.Schema.NumCols())
	for i := range src {
		src[i] = t.Name
	}
	return src
}

// bindJoin builds a hash join between the accumulated left plan and a base
// table, extracting one equality over (left, right) columns as the hash
// keys and binding everything else in the ON clause as a residual.
func bindJoin(left plan.Node, leftScope *scope, right *catalog.Table, rightScope *scope, on Node) (plan.Node, *scope, error) {
	conjuncts := splitConjuncts(on)
	keyIdx := -1
	var lKey, rKey int
	for i, c := range conjuncts {
		bo, ok := c.(BinOp)
		if !ok || bo.Op != "=" {
			continue
		}
		lc, lok := bo.L.(ColRef)
		rc, rok := bo.R.(ColRef)
		if !lok || !rok {
			continue
		}
		if li, err := leftScope.resolve(lc); err == nil {
			if ri, err := rightScope.resolve(rc); err == nil {
				keyIdx, lKey, rKey = i, li, ri
				break
			}
		}
		// Try flipped.
		if li, err := leftScope.resolve(rc); err == nil {
			if ri, err := rightScope.resolve(lc); err == nil {
				keyIdx, lKey, rKey = i, li, ri
				break
			}
		}
	}
	if keyIdx < 0 {
		return nil, nil, fmt.Errorf("sql: JOIN %s requires an equality between the joined tables in ON", right.Name)
	}

	// Build side = accumulated left (small relations first in the
	// paper's workloads), probe side = the new table.
	j := plan.NewHashJoin(left, plan.NewScan(right, nil), lKey, rKey, nil)
	joinedScope := &scope{
		schema: j.Schema(),
		source: append(append([]string{}, leftScope.source...), rightScope.source...),
	}

	// Residual conjuncts bind over the concatenated schema.
	var residual expr.Expr
	for i, c := range conjuncts {
		if i == keyIdx {
			continue
		}
		bound, err := bindExpr(c, joinedScope)
		if err != nil {
			return nil, nil, err
		}
		residual = andWith(residual, bound)
	}
	j.Residual = residual
	return j, joinedScope, nil
}

// bindAgg lowers GROUP BY + aggregate select items, then projects the
// select-list order on top when it differs from (groups..., aggs...).
func bindAgg(stmt *SelectStmt, input plan.Node, sc *scope) (plan.Node, *scope, error) {
	var groupIdx []int
	for _, g := range stmt.GroupBy {
		idx, err := sc.resolve(g)
		if err != nil {
			return nil, nil, err
		}
		groupIdx = append(groupIdx, idx)
	}

	var specs []plan.AggSpec
	outNames := make([]string, 0, len(stmt.Items))
	aggNameByItem := make(map[int]string)
	for i, it := range stmt.Items {
		switch {
		case it.Star:
			return nil, nil, fmt.Errorf("sql: SELECT * cannot be combined with aggregation")
		case it.Agg != "":
			name := it.Alias
			if name == "" {
				name = fmt.Sprintf("%s_%d", toLower(it.Agg), i+1)
			}
			spec := plan.AggSpec{Name: name}
			switch it.Agg {
			case "SUM":
				spec.Func = plan.Sum
			case "COUNT":
				spec.Func = plan.Count
			case "MIN":
				spec.Func = plan.Min
			case "MAX":
				spec.Func = plan.Max
			case "AVG":
				spec.Func = plan.Avg
			}
			if it.Expr != nil {
				arg, err := bindExpr(it.Expr, sc)
				if err != nil {
					return nil, nil, err
				}
				spec.Arg = arg
			} else if spec.Func != plan.Count {
				return nil, nil, fmt.Errorf("sql: %s requires an argument", it.Agg)
			}
			specs = append(specs, spec)
			aggNameByItem[i] = name
			outNames = append(outNames, name)
		default:
			col, ok := it.Expr.(ColRef)
			if !ok {
				return nil, nil, fmt.Errorf("sql: non-aggregate select item %s must be a grouping column", it.Expr)
			}
			idx, err := sc.resolve(col)
			if err != nil {
				return nil, nil, err
			}
			found := false
			for _, g := range groupIdx {
				if g == idx {
					found = true
					break
				}
			}
			if !found {
				return nil, nil, fmt.Errorf("sql: column %s is not in GROUP BY", col)
			}
			name := it.Alias
			if name == "" {
				name = col.Name
			}
			outNames = append(outNames, name)
		}
	}

	agg := plan.NewAgg(input, groupIdx, specs)
	aggScope := &scope{schema: agg.Schema(), source: make([]string, agg.Schema().NumCols())}

	// Project into select-list order (and aliases).
	exprs := make([]expr.Expr, len(stmt.Items))
	kinds := make([]expr.Kind, len(stmt.Items))
	gi, ai := 0, 0
	for i, it := range stmt.Items {
		if it.Agg != "" {
			pos := len(groupIdx) + ai
			exprs[i] = expr.Col{Idx: pos, Name: aggNameByItem[i]}
			kinds[i] = agg.Schema().Columns()[pos].Kind
			ai++
		} else {
			pos := indexOfGroup(groupIdx, sc, it.Expr.(ColRef))
			exprs[i] = expr.Col{Idx: pos, Name: outNames[i]}
			kinds[i] = agg.Schema().Columns()[pos].Kind
			gi++
		}
	}
	proj := plan.NewProject(agg, exprs, outNames, kinds)
	return proj, &scope{schema: proj.Schema(), source: make([]string, proj.Schema().NumCols())}, aggScopeErr(aggScope)
}

// aggScopeErr exists to keep the error signature simple; binding above
// cannot fail at this point.
func aggScopeErr(*scope) error { return nil }

func indexOfGroup(groupIdx []int, sc *scope, col ColRef) int {
	idx, _ := sc.resolve(col)
	for gpos, g := range groupIdx {
		if g == idx {
			return gpos
		}
	}
	return 0
}

func bindProject(items []SelectItem, input plan.Node, sc *scope) (plan.Node, *scope, error) {
	exprs := make([]expr.Expr, len(items))
	names := make([]string, len(items))
	kinds := make([]expr.Kind, len(items))
	for i, it := range items {
		if it.Star {
			return nil, nil, fmt.Errorf("sql: * must be the only select item")
		}
		bound, err := bindExpr(it.Expr, sc)
		if err != nil {
			return nil, nil, err
		}
		exprs[i] = bound
		names[i] = it.Alias
		if names[i] == "" {
			if c, ok := it.Expr.(ColRef); ok {
				names[i] = c.Name
			} else {
				names[i] = fmt.Sprintf("col_%d", i+1)
			}
		}
		kinds[i] = kindOf(it.Expr, sc)
	}
	p := plan.NewProject(input, exprs, names, kinds)
	return p, &scope{schema: p.Schema(), source: make([]string, p.Schema().NumCols())}, nil
}

// kindOf infers a projected expression's output kind.
func kindOf(n Node, sc *scope) expr.Kind {
	switch n := n.(type) {
	case ColRef:
		if idx, err := sc.resolve(n); err == nil {
			return sc.schema.Columns()[idx].Kind
		}
		return expr.KindNull
	case Lit:
		switch n.Kind {
		case LitNumber:
			if n.N == math.Trunc(n.N) {
				return expr.KindInt
			}
			return expr.KindFloat
		case LitString:
			return expr.KindString
		case LitDate:
			return expr.KindDate
		case LitBool:
			return expr.KindBool
		default:
			return expr.KindNull
		}
	case BinOp:
		switch n.Op {
		case "+", "-", "*", "/":
			return expr.KindFloat
		default:
			return expr.KindBool
		}
	default:
		return expr.KindBool
	}
}

// bindExpr lowers an AST expression against a scope.
func bindExpr(n Node, sc *scope) (expr.Expr, error) {
	switch n := n.(type) {
	case ColRef:
		idx, err := sc.resolve(n)
		if err != nil {
			return nil, err
		}
		return expr.Col{Idx: idx, Name: n.Name}, nil
	case Lit:
		v, err := litValue(n)
		if err != nil {
			return nil, err
		}
		return expr.Const{V: v}, nil
	case UnaryNot:
		e, err := bindExpr(n.E, sc)
		if err != nil {
			return nil, err
		}
		return expr.Not{E: e}, nil
	case BetweenNode:
		e, err := bindExpr(n.E, sc)
		if err != nil {
			return nil, err
		}
		lo, lok := n.Lo.(Lit)
		hi, hok := n.Hi.(Lit)
		if !lok || !hok {
			return nil, fmt.Errorf("sql: BETWEEN bounds must be literals")
		}
		loV, err := litValue(lo)
		if err != nil {
			return nil, err
		}
		hiV, err := litValue(hi)
		if err != nil {
			return nil, err
		}
		// SQL BETWEEN is inclusive on both ends; the plan's Between is
		// [lo, hi), so lower as a conjunction of comparisons.
		return expr.And{Terms: []expr.Expr{
			expr.Cmp{Op: expr.GE, L: e, R: expr.Const{V: loV}},
			expr.Cmp{Op: expr.LE, L: e, R: expr.Const{V: hiV}},
		}}, nil
	case InNode:
		e, err := bindExpr(n.E, sc)
		if err != nil {
			return nil, err
		}
		terms := make([]expr.Expr, len(n.List))
		for i, item := range n.List {
			lit, ok := item.(Lit)
			if !ok {
				return nil, fmt.Errorf("sql: IN list items must be literals")
			}
			v, err := litValue(lit)
			if err != nil {
				return nil, err
			}
			terms[i] = expr.Cmp{Op: expr.EQ, L: e, R: expr.Const{V: v}}
		}
		// Lowered as the linear OR chain the paper's engines evaluate.
		return expr.Or{Terms: terms}, nil
	case BinOp:
		l, err := bindExpr(n.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := bindExpr(n.R, sc)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "AND":
			return expr.And{Terms: []expr.Expr{l, r}}, nil
		case "OR":
			return expr.Or{Terms: []expr.Expr{l, r}}, nil
		case "=":
			return expr.Cmp{Op: expr.EQ, L: l, R: r}, nil
		case "<>":
			return expr.Cmp{Op: expr.NE, L: l, R: r}, nil
		case "<":
			return expr.Cmp{Op: expr.LT, L: l, R: r}, nil
		case "<=":
			return expr.Cmp{Op: expr.LE, L: l, R: r}, nil
		case ">":
			return expr.Cmp{Op: expr.GT, L: l, R: r}, nil
		case ">=":
			return expr.Cmp{Op: expr.GE, L: l, R: r}, nil
		case "+":
			return expr.Arith{Op: expr.Add, L: l, R: r}, nil
		case "-":
			return expr.Arith{Op: expr.Sub, L: l, R: r}, nil
		case "*":
			return expr.Arith{Op: expr.Mul, L: l, R: r}, nil
		case "/":
			return expr.Arith{Op: expr.Div, L: l, R: r}, nil
		default:
			return nil, fmt.Errorf("sql: unsupported operator %q", n.Op)
		}
	default:
		return nil, fmt.Errorf("sql: cannot bind %T", n)
	}
}

func litValue(l Lit) (expr.Value, error) {
	switch l.Kind {
	case LitNumber:
		if l.N == math.Trunc(l.N) && math.Abs(l.N) < 1e15 {
			return expr.Int(int64(l.N)), nil
		}
		return expr.Float(l.N), nil
	case LitString:
		return expr.String(l.S), nil
	case LitDate:
		t, err := time.Parse("2006-01-02", l.S)
		if err != nil {
			return expr.Value{}, fmt.Errorf("sql: bad date %q: %v", l.S, err)
		}
		return expr.Date(t.Unix() / 86400), nil
	case LitBool:
		return expr.Bool(l.B), nil
	default:
		return expr.Null(), nil
	}
}

// splitConjuncts flattens a tree of AND nodes.
func splitConjuncts(n Node) []Node {
	if n == nil {
		return nil
	}
	if bo, ok := n.(BinOp); ok && bo.Op == "AND" {
		return append(splitConjuncts(bo.L), splitConjuncts(bo.R)...)
	}
	return []Node{n}
}

func andWith(acc, e expr.Expr) expr.Expr {
	if acc == nil {
		return e
	}
	if a, ok := acc.(expr.And); ok {
		a.Terms = append(a.Terms, e)
		return a
	}
	return expr.And{Terms: []expr.Expr{acc, e}}
}

func toLower(s string) string {
	out := []byte(s)
	for i := range out {
		if out[i] >= 'A' && out[i] <= 'Z' {
			out[i] += 'a' - 'A'
		}
	}
	return string(out)
}
