package sql

import (
	"fmt"
	"math"
	"time"

	"ecodb/internal/catalog"
	"ecodb/internal/expr"
	"ecodb/internal/plan"
)

// The front end is split the way the cdb select planner splits it: this
// file only translates the AST into a bound plan.Logical — name resolution
// and validation live in the plan layer's global column space — and the
// physical shape (join order, build sides, pushdown, access path) is a
// separate lowering step. Plan and Bind keep the legacy "hand-lowered"
// contract by lowering with the default FROM-order choices; optimizing
// callers bind to the logical form and hand it to internal/opt instead.

// Plan parses a SELECT statement and lowers it onto the catalog's tables
// with the default physical choices: left-deep hash joins in FROM order,
// accumulated side as build, single-table predicates pushed into scans.
func Plan(cat *catalog.Catalog, query string) (plan.Node, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return Bind(cat, stmt)
}

// Bind lowers a parsed statement onto the catalog with default choices.
func Bind(cat *catalog.Catalog, stmt *SelectStmt) (plan.Node, error) {
	if stmt.Explain {
		return nil, fmt.Errorf("sql: EXPLAIN statements are not executable; render them with sql.Explain")
	}
	lg, err := BindLogical(cat, stmt)
	if err != nil {
		return nil, err
	}
	return lg.Lower(lg.DefaultChoices())
}

// BindLogical binds a parsed statement to a logical plan: tables resolved,
// every WHERE and ON conjunct bound over the global column space with
// equi-join edges identified, aggregation/projection/ordering validated.
// ON conjuncts may reference any table declared up to and including their
// join; multi-condition ON clauses bind in full — one equality becomes the
// hash-join edge at lowering time and the rest evaluate as residuals, with
// qualified references resolving against base tables (not the renamed join
// schema) and ambiguous unqualified references rejected.
func BindLogical(cat *catalog.Catalog, stmt *SelectStmt) (*plan.Logical, error) {
	tables := make([]*catalog.Table, 0, 1+len(stmt.Joins))
	seen := make(map[string]bool)
	addTable := func(ref TableRef) error {
		t, err := cat.Table(ref.Name)
		if err != nil {
			return err
		}
		if seen[t.Name] {
			return fmt.Errorf("sql: table %q appears twice in FROM (aliases are not supported)", t.Name)
		}
		seen[t.Name] = true
		tables = append(tables, t)
		return nil
	}
	if err := addTable(stmt.From); err != nil {
		return nil, err
	}
	for _, j := range stmt.Joins {
		if err := addTable(j.Table); err != nil {
			return nil, err
		}
	}
	lg, err := plan.NewLogical(tables)
	if err != nil {
		return nil, err
	}

	// Predicates: WHERE sees every table; the i-th join's ON clause sees
	// tables declared up to and including it.
	bindConjuncts := func(n Node, visibleTables int) error {
		sc := &scope{lg: lg, tables: visibleTables}
		for _, c := range splitConjuncts(n) {
			bound, err := bindExpr(c, sc)
			if err != nil {
				return err
			}
			if err := lg.AddPredicate(bound); err != nil {
				return err
			}
		}
		return nil
	}
	for i, j := range stmt.Joins {
		if err := bindConjuncts(j.On, i+2); err != nil {
			return nil, err
		}
	}
	if err := bindConjuncts(stmt.Where, len(tables)); err != nil {
		return nil, err
	}

	hasAgg := len(stmt.GroupBy) > 0
	for _, it := range stmt.Items {
		if it.Agg != "" {
			hasAgg = true
		}
	}
	fullScope := &scope{lg: lg, tables: len(tables)}
	switch {
	case hasAgg:
		if err := bindAgg(stmt, lg, fullScope); err != nil {
			return nil, err
		}
	case !isStar(stmt.Items):
		if err := bindProject(stmt.Items, lg, fullScope); err != nil {
			return nil, err
		}
	}

	// ORDER BY over the output schema: by output name, or — for star
	// queries, where output positions are the global column space — by
	// qualified base-table reference.
	out := lg.OutputSchema()
	for _, o := range stmt.OrderBy {
		col, ok := o.Expr.(ColRef)
		if !ok {
			return nil, fmt.Errorf("sql: ORDER BY supports column references only, got %s", o.Expr)
		}
		idx, found := out.Index(col.Name)
		if col.Table != "" || !found {
			if lg.Project != nil || lg.Agg != nil {
				return nil, fmt.Errorf("sql: unknown ORDER BY column %q", col)
			}
			g, err := lg.Resolve(col.Table, col.Name)
			if err != nil {
				return nil, fmt.Errorf("sql: unknown ORDER BY column %q", col)
			}
			idx = g
		}
		lg.Sort = append(lg.Sort, plan.SortKey{Col: idx, Desc: o.Desc})
	}

	lg.Limit = stmt.Limit
	return lg, nil
}

func isStar(items []SelectItem) bool {
	return len(items) == 1 && items[0].Star
}

// scope adapts the logical plan's resolver to the binder, restricting
// visibility to the first tables of the FROM list (SQL's left-to-right ON
// scoping).
type scope struct {
	lg     *plan.Logical
	tables int
}

func (s *scope) resolve(c ColRef) (int, error) {
	g, err := s.lg.Resolve(c.Table, c.Name)
	if err != nil {
		return 0, fmt.Errorf("sql: %s", unknownColumn(c, err))
	}
	if s.lg.TableOf(g) >= s.tables {
		return 0, fmt.Errorf("sql: column %q is not visible here (its table joins later)", c)
	}
	return g, nil
}

// unknownColumn keeps the front end's error vocabulary while the plan
// layer does the resolving.
func unknownColumn(c ColRef, err error) string {
	return fmt.Sprintf("unknown column %q: %v", c.String(), err)
}

// bindAgg binds GROUP BY plus aggregate select items, installing the
// aggregation and the select-list-order projection over its output.
func bindAgg(stmt *SelectStmt, lg *plan.Logical, sc *scope) error {
	var groupIdx []int
	for _, g := range stmt.GroupBy {
		idx, err := sc.resolve(g)
		if err != nil {
			return err
		}
		groupIdx = append(groupIdx, idx)
	}

	var specs []plan.AggSpec
	// Projection over the aggregate output (groups..., aggs...), in
	// select-list order with aliases applied.
	exprs := make([]expr.Expr, len(stmt.Items))
	names := make([]string, len(stmt.Items))
	kinds := make([]expr.Kind, len(stmt.Items))
	for i, it := range stmt.Items {
		switch {
		case it.Star:
			return fmt.Errorf("sql: SELECT * cannot be combined with aggregation")
		case it.Agg != "":
			name := it.Alias
			if name == "" {
				name = fmt.Sprintf("%s_%d", toLower(it.Agg), i+1)
			}
			spec := plan.AggSpec{Name: name}
			switch it.Agg {
			case "SUM":
				spec.Func = plan.Sum
			case "COUNT":
				spec.Func = plan.Count
			case "MIN":
				spec.Func = plan.Min
			case "MAX":
				spec.Func = plan.Max
			case "AVG":
				spec.Func = plan.Avg
			}
			if it.Expr != nil {
				arg, err := bindExpr(it.Expr, sc)
				if err != nil {
					return err
				}
				spec.Arg = arg
			} else if spec.Func != plan.Count {
				return fmt.Errorf("sql: %s requires an argument", it.Agg)
			}
			pos := len(groupIdx) + len(specs)
			specs = append(specs, spec)
			exprs[i] = expr.Col{Idx: pos, Name: name}
			names[i] = name
			kinds[i] = expr.KindFloat
			if spec.Func == plan.Count {
				kinds[i] = expr.KindInt
			}
		default:
			col, ok := it.Expr.(ColRef)
			if !ok {
				return fmt.Errorf("sql: non-aggregate select item %s must be a grouping column", it.Expr)
			}
			idx, err := sc.resolve(col)
			if err != nil {
				return err
			}
			gpos := -1
			for p, g := range groupIdx {
				if g == idx {
					gpos = p
					break
				}
			}
			if gpos < 0 {
				return fmt.Errorf("sql: column %s is not in GROUP BY", col)
			}
			name := it.Alias
			if name == "" {
				name = col.Name
			}
			exprs[i] = expr.Col{Idx: gpos, Name: name}
			names[i] = name
			kinds[i] = lg.ColKind(idx)
		}
	}
	if err := lg.SetAgg(groupIdx, specs); err != nil {
		return err
	}
	lg.Project = &plan.ProjectSpec{Exprs: exprs, Names: names, Kinds: kinds}
	return nil
}

// bindProject binds a plain (non-aggregating) select list over the global
// column space.
func bindProject(items []SelectItem, lg *plan.Logical, sc *scope) error {
	exprs := make([]expr.Expr, len(items))
	names := make([]string, len(items))
	kinds := make([]expr.Kind, len(items))
	for i, it := range items {
		if it.Star {
			return fmt.Errorf("sql: * must be the only select item")
		}
		bound, err := bindExpr(it.Expr, sc)
		if err != nil {
			return err
		}
		exprs[i] = bound
		names[i] = it.Alias
		if names[i] == "" {
			if c, ok := it.Expr.(ColRef); ok {
				names[i] = c.Name
			} else {
				names[i] = fmt.Sprintf("col_%d", i+1)
			}
		}
		kinds[i] = kindOf(it.Expr, sc)
	}
	lg.Project = &plan.ProjectSpec{Exprs: exprs, Names: names, Kinds: kinds}
	return nil
}

// kindOf infers a projected expression's output kind.
func kindOf(n Node, sc *scope) expr.Kind {
	switch n := n.(type) {
	case ColRef:
		if idx, err := sc.resolve(n); err == nil {
			return sc.lg.ColKind(idx)
		}
		return expr.KindNull
	case Lit:
		switch n.Kind {
		case LitNumber:
			if n.N == math.Trunc(n.N) {
				return expr.KindInt
			}
			return expr.KindFloat
		case LitString:
			return expr.KindString
		case LitDate:
			return expr.KindDate
		case LitBool:
			return expr.KindBool
		default:
			return expr.KindNull
		}
	case BinOp:
		switch n.Op {
		case "+", "-", "*", "/":
			return expr.KindFloat
		default:
			return expr.KindBool
		}
	default:
		return expr.KindBool
	}
}

// bindExpr lowers an AST expression against a scope; column positions in
// the result are global column ids.
func bindExpr(n Node, sc *scope) (expr.Expr, error) {
	switch n := n.(type) {
	case ColRef:
		idx, err := sc.resolve(n)
		if err != nil {
			return nil, err
		}
		return expr.Col{Idx: idx, Name: n.Name}, nil
	case Lit:
		v, err := litValue(n)
		if err != nil {
			return nil, err
		}
		return expr.Const{V: v}, nil
	case UnaryNot:
		e, err := bindExpr(n.E, sc)
		if err != nil {
			return nil, err
		}
		return expr.Not{E: e}, nil
	case BetweenNode:
		e, err := bindExpr(n.E, sc)
		if err != nil {
			return nil, err
		}
		lo, lok := n.Lo.(Lit)
		hi, hok := n.Hi.(Lit)
		if !lok || !hok {
			return nil, fmt.Errorf("sql: BETWEEN bounds must be literals")
		}
		loV, err := litValue(lo)
		if err != nil {
			return nil, err
		}
		hiV, err := litValue(hi)
		if err != nil {
			return nil, err
		}
		// SQL BETWEEN is inclusive on both ends; the plan's Between is
		// [lo, hi), so lower as a conjunction of comparisons.
		return expr.And{Terms: []expr.Expr{
			expr.Cmp{Op: expr.GE, L: e, R: expr.Const{V: loV}},
			expr.Cmp{Op: expr.LE, L: e, R: expr.Const{V: hiV}},
		}}, nil
	case InNode:
		e, err := bindExpr(n.E, sc)
		if err != nil {
			return nil, err
		}
		terms := make([]expr.Expr, len(n.List))
		for i, item := range n.List {
			lit, ok := item.(Lit)
			if !ok {
				return nil, fmt.Errorf("sql: IN list items must be literals")
			}
			v, err := litValue(lit)
			if err != nil {
				return nil, err
			}
			terms[i] = expr.Cmp{Op: expr.EQ, L: e, R: expr.Const{V: v}}
		}
		// Lowered as the linear OR chain the paper's engines evaluate.
		return expr.Or{Terms: terms}, nil
	case BinOp:
		l, err := bindExpr(n.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := bindExpr(n.R, sc)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "AND":
			return expr.And{Terms: []expr.Expr{l, r}}, nil
		case "OR":
			return expr.Or{Terms: []expr.Expr{l, r}}, nil
		case "=":
			return expr.Cmp{Op: expr.EQ, L: l, R: r}, nil
		case "<>":
			return expr.Cmp{Op: expr.NE, L: l, R: r}, nil
		case "<":
			return expr.Cmp{Op: expr.LT, L: l, R: r}, nil
		case "<=":
			return expr.Cmp{Op: expr.LE, L: l, R: r}, nil
		case ">":
			return expr.Cmp{Op: expr.GT, L: l, R: r}, nil
		case ">=":
			return expr.Cmp{Op: expr.GE, L: l, R: r}, nil
		case "+":
			return expr.Arith{Op: expr.Add, L: l, R: r}, nil
		case "-":
			return expr.Arith{Op: expr.Sub, L: l, R: r}, nil
		case "*":
			return expr.Arith{Op: expr.Mul, L: l, R: r}, nil
		case "/":
			return expr.Arith{Op: expr.Div, L: l, R: r}, nil
		default:
			return nil, fmt.Errorf("sql: unsupported operator %q", n.Op)
		}
	default:
		return nil, fmt.Errorf("sql: cannot bind %T", n)
	}
}

func litValue(l Lit) (expr.Value, error) {
	switch l.Kind {
	case LitNumber:
		if l.N == math.Trunc(l.N) && math.Abs(l.N) < 1e15 {
			return expr.Int(int64(l.N)), nil
		}
		return expr.Float(l.N), nil
	case LitString:
		return expr.String(l.S), nil
	case LitDate:
		t, err := time.Parse("2006-01-02", l.S)
		if err != nil {
			return expr.Value{}, fmt.Errorf("sql: bad date %q: %v", l.S, err)
		}
		return expr.Date(t.Unix() / 86400), nil
	case LitBool:
		return expr.Bool(l.B), nil
	default:
		return expr.Null(), nil
	}
}

// splitConjuncts flattens a tree of AND nodes.
func splitConjuncts(n Node) []Node {
	if n == nil {
		return nil
	}
	if bo, ok := n.(BinOp); ok && bo.Op == "AND" {
		return append(splitConjuncts(bo.L), splitConjuncts(bo.R)...)
	}
	return []Node{n}
}

func toLower(s string) string {
	out := []byte(s)
	for i := range out {
		if out[i] >= 'A' && out[i] <= 'Z' {
			out[i] += 'a' - 'A'
		}
	}
	return string(out)
}
