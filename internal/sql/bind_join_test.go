package sql

// Regression coverage for multi-condition ON clauses. The old binder
// resolved residual conjuncts against the concatenated join schema, where
// duplicate column names had already been renamed (v -> v_2): qualified
// references like tb.v failed to bind, and ambiguous unqualified
// references silently resolved to the left table.

import (
	"strings"
	"testing"

	"ecodb/internal/catalog"
	"ecodb/internal/engine"
	"ecodb/internal/expr"
	"ecodb/internal/hw/system"
)

func dupNameEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New(engine.ProfileMySQLMemory(), system.NewSUT())
	ta := catalog.NewTable("ta", catalog.NewSchema(
		catalog.Column{Name: "k", Kind: expr.KindInt},
		catalog.Column{Name: "v", Kind: expr.KindInt},
	))
	tb := catalog.NewTable("tb", catalog.NewSchema(
		catalog.Column{Name: "k", Kind: expr.KindInt},
		catalog.Column{Name: "v", Kind: expr.KindInt},
	))
	for i := 0; i < 100; i++ {
		ta.Insert(expr.Row{expr.Int(int64(i)), expr.Int(int64(i % 10))})
		tb.Insert(expr.Row{expr.Int(int64(i)), expr.Int(int64(i % 7))})
	}
	e.Catalog().MustCreate(ta)
	e.Catalog().MustCreate(tb)
	return e
}

func TestBindJoinMultiConditionQualifiedResidual(t *testing.T) {
	e := dupNameEngine(t)

	// The second conjunct references both tables' duplicate-named column
	// by qualifier; it must become a residual on the join, not an error.
	p, err := Plan(e.Catalog(), `SELECT * FROM ta JOIN tb ON ta.k = tb.k AND ta.v < tb.v`)
	if err != nil {
		t.Fatalf("multi-condition ON with qualified duplicate names: %v", err)
	}
	res, _ := e.Exec(p)
	rows := res.Rows

	// Ground truth: k matches pairwise, so count i in [0,100) with
	// i%10 < i%7.
	want := 0
	for i := 0; i < 100; i++ {
		if i%10 < i%7 {
			want++
		}
	}
	if want == 0 || want == 100 {
		t.Fatal("degenerate fixture: residual filters nothing")
	}
	if len(rows) != want {
		t.Fatalf("residual not applied: got %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if !(r[1].I < r[3].I) {
			t.Fatalf("row violates residual ta.v < tb.v: %v", r)
		}
	}
}

func TestBindJoinAmbiguousResidualRejected(t *testing.T) {
	e := dupNameEngine(t)

	// Unqualified v exists in both tables; the old binder silently took
	// the left one.
	_, err := Plan(e.Catalog(), `SELECT * FROM ta JOIN tb ON ta.k = tb.k AND v < 3`)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("ambiguous residual should be rejected, got %v", err)
	}
}

func TestBindJoinOnScopeLeftToRight(t *testing.T) {
	e := tpchEngine(t)

	// An ON clause may not reference tables that join later in the FROM
	// list.
	_, err := Plan(e.Catalog(),
		`SELECT * FROM nation JOIN supplier ON s_nationkey = n_nationkey AND c_nationkey = n_nationkey JOIN customer ON c_nationkey = n_nationkey`)
	if err == nil {
		t.Fatal("ON referencing a later table should fail to bind")
	}
}
