package sql

import (
	"fmt"

	"ecodb/internal/catalog"
	"ecodb/internal/opt"
)

// Explainer is the slice of an engine EXPLAIN needs: the tables to bind
// against and the optimizer environment to cost candidate plans in.
// *engine.Engine satisfies it.
type Explainer interface {
	Catalog() *catalog.Catalog
	OptimizerEnv() (opt.Env, opt.Objective)
}

// IsExplain reports whether the statement parses as an EXPLAIN.
func IsExplain(query string) bool {
	stmt, err := Parse(query)
	return err == nil && stmt.Explain
}

// Explain renders the physical plan the optimizer would choose for a
// query — `EXPLAIN SELECT ...` or a bare SELECT — with per-operator
// estimated rows, cycles and joules. On engines whose objective is
// disabled the plan is costed under the latency objective, so EXPLAIN
// works everywhere without changing what executes.
func Explain(e Explainer, query string) (string, error) {
	stmt, err := Parse(query)
	if err != nil {
		return "", err
	}
	stmt.Explain = false
	lg, err := BindLogical(e.Catalog(), stmt)
	if err != nil {
		return "", err
	}
	env, obj := e.OptimizerEnv()
	if !obj.Enabled {
		obj = opt.MinimizeLatency()
	}
	ch, err := opt.Optimize(lg, lg.DefaultChoices(), env, obj)
	if err != nil {
		return "", fmt.Errorf("sql: explain: %w", err)
	}
	return opt.Explain(lg, env, ch)
}
