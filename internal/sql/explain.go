package sql

import (
	"fmt"

	"ecodb/internal/catalog"
	"ecodb/internal/obsv"
	"ecodb/internal/opt"
	"ecodb/internal/plan"
)

// Explainer is the slice of an engine EXPLAIN needs: the tables to bind
// against and the optimizer environment to cost candidate plans in.
// *engine.Engine satisfies it.
type Explainer interface {
	Catalog() *catalog.Catalog
	OptimizerEnv() (opt.Env, opt.Objective)
}

// IsExplain reports whether the statement parses as an EXPLAIN.
func IsExplain(query string) bool {
	stmt, err := Parse(query)
	return err == nil && stmt.Explain
}

// IsExplainAnalyze reports whether the statement parses as an EXPLAIN
// ANALYZE.
func IsExplainAnalyze(query string) bool {
	stmt, err := Parse(query)
	return err == nil && stmt.Analyze
}

// Explain renders the physical plan the optimizer would choose for a
// query — `EXPLAIN SELECT ...` or a bare SELECT — with per-operator
// estimated rows, cycles and joules. On engines whose objective is
// disabled the plan is costed under the latency objective, so EXPLAIN
// works everywhere without changing what executes.
func Explain(e Explainer, query string) (string, error) {
	stmt, err := Parse(query)
	if err != nil {
		return "", err
	}
	stmt.Explain, stmt.Analyze = false, false
	lg, err := BindLogical(e.Catalog(), stmt)
	if err != nil {
		return "", err
	}
	env, obj := e.OptimizerEnv()
	if !obj.Enabled {
		obj = opt.MinimizeLatency()
	}
	ch, err := opt.Optimize(lg, lg.DefaultChoices(), env, obj)
	if err != nil {
		return "", fmt.Errorf("sql: explain: %w", err)
	}
	return opt.Explain(lg, env, ch)
}

// Analyzer is the slice of an engine EXPLAIN ANALYZE needs: plan binding
// plus profiled execution. *engine.Engine satisfies it.
type Analyzer interface {
	Explainer
	AnalyzeQuery(p plan.Node) (*obsv.Profile, error)
}

// ExplainAnalyze executes a query — `EXPLAIN ANALYZE SELECT ...` or a bare
// SELECT — with profiling enabled and renders its execution profile: the
// operator tree with actual rows (estimates alongside, when the engine's
// objective routes the statement through the optimizer), attributed
// simulated joules with each operator's share of the query total, and
// attributed simulated time. The statement really runs, charging all its
// simulated work, exactly as executing it without ANALYZE would.
func ExplainAnalyze(e Analyzer, query string) (string, error) {
	stmt, err := Parse(query)
	if err != nil {
		return "", err
	}
	stmt.Explain, stmt.Analyze = false, false
	p, err := Bind(e.Catalog(), stmt)
	if err != nil {
		return "", err
	}
	prof, err := e.AnalyzeQuery(p)
	if err != nil {
		return "", fmt.Errorf("sql: explain analyze: %w", err)
	}
	return prof.Render(), nil
}
