// Package sql provides a small SQL front end for the ecoDB engine: a
// lexer, a recursive-descent parser, and a binder that lowers parsed
// SELECT statements onto the logical plans in internal/plan. It covers the
// dialect the paper's workloads need — single- and multi-table
// SELECT/JOIN/WHERE/GROUP BY/ORDER BY/LIMIT with arithmetic, comparisons,
// BETWEEN, IN lists and the sum/count/min/max/avg aggregates — so clients
// can drive the engine the way the paper's JDBC clients drove theirs.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // ( ) , * .
	tokOp     // = <> < <= > >= + - /
)

// token is one lexical unit with its source position.
type token struct {
	kind tokenKind
	text string // keywords are upper-cased
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// keywords recognized by the dialect.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "BETWEEN": true, "IN": true, "JOIN": true, "ON": true,
	"ASC": true, "DESC": true, "SUM": true, "COUNT": true, "MIN": true,
	"MAX": true, "AVG": true, "DATE": true, "INNER": true, "TRUE": true,
	"FALSE": true, "NULL": true, "EXPLAIN": true, "ANALYZE": true,
}

// lex tokenizes the input. It returns an error with position information
// on any malformed token.
func lex(input string) ([]token, error) {
	var out []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				out = append(out, token{kind: tokKeyword, text: upper, pos: start})
			} else {
				out = append(out, token{kind: tokIdent, text: word, pos: start})
			}
		case unicode.IsDigit(rune(c)):
			start := i
			seenDot := false
			for i < n && (unicode.IsDigit(rune(input[i])) || (input[i] == '.' && !seenDot)) {
				if input[i] == '.' {
					seenDot = true
				}
				i++
			}
			out = append(out, token{kind: tokNumber, text: input[start:i], pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			out = append(out, token{kind: tokString, text: sb.String(), pos: start})
		case c == '<':
			if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
				out = append(out, token{kind: tokOp, text: input[i : i+2], pos: i})
				i += 2
			} else {
				out = append(out, token{kind: tokOp, text: "<", pos: i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				out = append(out, token{kind: tokOp, text: ">=", pos: i})
				i += 2
			} else {
				out = append(out, token{kind: tokOp, text: ">", pos: i})
				i++
			}
		case c == '=' || c == '+' || c == '-' || c == '/':
			out = append(out, token{kind: tokOp, text: string(c), pos: i})
			i++
		case c == '(' || c == ')' || c == ',' || c == '*' || c == '.' || c == ';':
			out = append(out, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
		}
	}
	out = append(out, token{kind: tokEOF, pos: n})
	return out, nil
}
