package sql

import (
	"fmt"
	"strconv"
)

// Parse parses one SELECT statement.
func Parse(input string) (*SelectStmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	explain := p.acceptKeyword("EXPLAIN")
	analyze := explain && p.acceptKeyword("ANALYZE")
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	stmt.Explain = explain
	stmt.Analyze = analyze
	// Optional trailing semicolon.
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: "+format+" (at offset %d)", append(args, p.peek().pos)...)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errf("expected %q, found %s", s, p.peek())
	}
	return nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}

	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	stmt.From = TableRef{Name: name}

	// JOIN chain.
	for {
		if p.acceptKeyword("INNER") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.acceptKeyword("JOIN") {
			break
		}
		jname, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Table: TableRef{Name: jname}, On: cond})
	}

	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}

	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, c)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}

	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}

	if p.acceptKeyword("LIMIT") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, p.errf("expected limit count, found %s", t)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("bad limit %q", t.text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	// Aggregate call?
	if t := p.peek(); t.kind == tokKeyword {
		switch t.text {
		case "SUM", "COUNT", "MIN", "MAX", "AVG":
			p.next()
			if err := p.expectSymbol("("); err != nil {
				return SelectItem{}, err
			}
			item := SelectItem{Agg: t.text}
			if t.text == "COUNT" && p.acceptSymbol("*") {
				// COUNT(*): no argument.
			} else {
				arg, err := p.parseExpr()
				if err != nil {
					return SelectItem{}, err
				}
				item.Expr = arg
			}
			if err := p.expectSymbol(")"); err != nil {
				return SelectItem{}, err
			}
			item.Alias = p.parseOptionalAlias()
			return item, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Expr: e, Alias: p.parseOptionalAlias()}, nil
}

func (p *parser) parseOptionalAlias() string {
	if p.acceptKeyword("AS") {
		if t := p.peek(); t.kind == tokIdent {
			p.next()
			return t.text
		}
	}
	return ""
}

func (p *parser) parseIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, found %s", t)
	}
	p.next()
	return t.text, nil
}

func (p *parser) parseColRef() (ColRef, error) {
	name, err := p.parseIdent()
	if err != nil {
		return ColRef{}, err
	}
	if p.acceptSymbol(".") {
		col, err := p.parseIdent()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Table: name, Name: col}, nil
	}
	return ColRef{Name: name}, nil
}

// Expression grammar, lowest to highest precedence:
//
//	expr   := and { OR and }
//	and    := not { AND not }
//	not    := [NOT] pred
//	pred   := add [ cmpop add | BETWEEN add AND add | IN (lit, ...) ]
//	add    := mul { (+|-) mul }
//	mul    := prim { (*|/) prim }
//	prim   := literal | colref | ( expr )
func (p *parser) parseExpr() (Node, error) { return p.parseOr() }

func (p *parser) parseOr() (Node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = BinOp{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Node, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = BinOp{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Node, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return UnaryNot{E: e}, nil
	}
	return p.parsePred()
}

func (p *parser) parsePred() (Node, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokOp {
		switch t.text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return BinOp{Op: t.text, L: l, R: r}, nil
		}
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return BetweenNode{E: l, Lo: lo, Hi: hi}, nil
	}
	if p.acceptKeyword("IN") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var list []Node
		for {
			v, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			list = append(list, v)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return InNode{E: l, List: list}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Node, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokOp && (t.text == "+" || t.text == "-") {
			p.next()
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = BinOp{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMul() (Node, error) {
	l, err := p.parsePrim()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if (t.kind == tokSymbol && t.text == "*") || (t.kind == tokOp && t.text == "/") {
			p.next()
			r, err := p.parsePrim()
			if err != nil {
				return nil, err
			}
			op := t.text
			l = BinOp{Op: op, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parsePrim() (Node, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		n, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return Lit{Kind: LitNumber, N: n}, nil
	case t.kind == tokString:
		p.next()
		return Lit{Kind: LitString, S: t.text}, nil
	case t.kind == tokKeyword && t.text == "DATE":
		p.next()
		s := p.next()
		if s.kind != tokString {
			return nil, p.errf("expected date string after DATE, found %s", s)
		}
		return Lit{Kind: LitDate, S: s.text}, nil
	case t.kind == tokKeyword && (t.text == "TRUE" || t.text == "FALSE"):
		p.next()
		return Lit{Kind: LitBool, B: t.text == "TRUE"}, nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.next()
		return Lit{Kind: LitNull}, nil
	case t.kind == tokIdent:
		return p.parseColRefNode()
	case t.kind == tokSymbol && t.text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf("unexpected %s in expression", t)
	}
}

func (p *parser) parseColRefNode() (Node, error) {
	c, err := p.parseColRef()
	if err != nil {
		return nil, err
	}
	return c, nil
}
