package sql

// End-to-end coverage of the SQL front end through the vectorized batch
// pipeline: every statement here is planned by sql.Plan over the TPC-H
// catalog and executed twice — once via the SQL plan, once via a
// programmatically built plan — asserting row-for-row equality.

import (
	"testing"

	"ecodb/internal/catalog"
	"ecodb/internal/engine"
	"ecodb/internal/expr"
	"ecodb/internal/hw/system"
	"ecodb/internal/plan"
	"ecodb/internal/tpch"
)

func tpchEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New(engine.ProfileMySQLMemory(), system.NewSUT())
	tpch.NewGenerator(0.01, 42).Load(e.Catalog(),
		tpch.Region, tpch.Nation, tpch.Supplier, tpch.Customer, tpch.Orders, tpch.Lineitem)
	return e
}

func mustPlan(t *testing.T, e *engine.Engine, query string) plan.Node {
	t.Helper()
	p, err := Plan(e.Catalog(), query)
	if err != nil {
		t.Fatalf("Plan(%q): %v", query, err)
	}
	return p
}

func assertRowsEqual(t *testing.T, got, want []expr.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row counts differ: got %d, want %d", len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("row %d arity differs: %v vs %v", i, got[i], want[i])
		}
		for c := range got[i] {
			if !expr.Equal(got[i][c], want[i][c]) {
				t.Fatalf("row %d col %d differs: %v vs %v", i, c, got[i], want[i])
			}
		}
	}
}

func TestSQLJoinMatchesProgrammaticJoin(t *testing.T) {
	e := tpchEngine(t)

	sqlRes, _ := e.Exec(mustPlan(t, e,
		`SELECT * FROM nation JOIN supplier ON s_nationkey = n_nationkey`))

	nation := e.Catalog().MustTable(tpch.Nation)
	supplier := e.Catalog().MustTable(tpch.Supplier)
	prog := plan.NewHashJoin(
		plan.NewScan(nation, nil), plan.NewScan(supplier, nil),
		nation.Schema.MustIndex("n_nationkey"),
		supplier.Schema.MustIndex("s_nationkey"), nil)
	progRes, _ := e.Exec(prog)

	if len(sqlRes.Rows) == 0 {
		t.Fatal("join returned no rows")
	}
	assertRowsEqual(t, sqlRes.Rows, progRes.Rows)
}

func TestSQLGroupedAggregateOverJoin(t *testing.T) {
	e := tpchEngine(t)

	sqlRes, _ := e.Exec(mustPlan(t, e, `
		SELECT n_name, COUNT(*) AS suppliers
		FROM nation JOIN supplier ON s_nationkey = n_nationkey
		GROUP BY n_name
		ORDER BY n_name`))

	nation := e.Catalog().MustTable(tpch.Nation)
	supplier := e.Catalog().MustTable(tpch.Supplier)
	join := plan.NewHashJoin(
		plan.NewScan(nation, nil), plan.NewScan(supplier, nil),
		nation.Schema.MustIndex("n_nationkey"),
		supplier.Schema.MustIndex("s_nationkey"), nil)
	agg := plan.NewAgg(join,
		[]int{join.Schema().MustIndex("n_name")},
		[]plan.AggSpec{{Func: plan.Count, Name: "suppliers"}})
	prog := plan.NewSort(agg, plan.SortKey{Col: 0})
	progRes, _ := e.Exec(prog)

	if len(sqlRes.Rows) == 0 {
		t.Fatal("aggregate returned no rows")
	}
	assertRowsEqual(t, sqlRes.Rows, progRes.Rows)
}

func TestSQLStarSelectWithPredicates(t *testing.T) {
	e := tpchEngine(t)

	sqlRes, _ := e.Exec(mustPlan(t, e, `
		SELECT * FROM orders
		WHERE o_orderdate >= DATE '1994-01-01' AND o_orderdate < DATE '1995-01-01'`))

	orders := e.Catalog().MustTable(tpch.Orders)
	prog := plan.NewScan(orders, expr.Between{
		E:  orders.Schema.Col("o_orderdate"),
		Lo: expr.MustParseDate("1994-01-01"),
		Hi: expr.MustParseDate("1995-01-01"),
	})
	progRes, _ := e.Exec(prog)

	if len(sqlRes.Rows) == 0 {
		t.Fatal("date-range select returned no rows")
	}
	assertRowsEqual(t, sqlRes.Rows, progRes.Rows)
}

func TestSQLInListMatchesOrChain(t *testing.T) {
	e := tpchEngine(t)

	sqlRes, _ := e.Exec(mustPlan(t, e,
		`SELECT * FROM lineitem WHERE l_quantity IN (3, 7, 11)`))

	li := e.Catalog().MustTable(tpch.Lineitem)
	col := li.Schema.Col("l_quantity")
	var terms []expr.Expr
	for _, q := range []int64{3, 7, 11} {
		terms = append(terms, expr.Cmp{Op: expr.EQ, L: col, R: expr.Const{V: expr.Int(q)}})
	}
	progRes, _ := e.Exec(plan.NewScan(li, expr.Or{Terms: terms}))

	if len(sqlRes.Rows) == 0 {
		t.Fatal("IN-list select returned no rows")
	}
	assertRowsEqual(t, sqlRes.Rows, progRes.Rows)
}

func TestSQLPlanStreamsThroughQuery(t *testing.T) {
	// The streaming iterator over a SQL plan yields exactly the rows the
	// materialized wrapper returns, batch boundaries notwithstanding.
	e := tpchEngine(t)
	p := mustPlan(t, e, `
		SELECT l_quantity AS q, COUNT(*) AS n
		FROM lineitem
		GROUP BY l_quantity
		ORDER BY q`)

	res, _ := e.Exec(p)

	rows := e.Query(p)
	var streamed []expr.Row
	batches := 0
	for {
		b, err := rows.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		batches++
		streamed = b.AppendRowsTo(streamed)
	}
	if batches == 0 {
		t.Fatal("stream produced no batches")
	}
	assertRowsEqual(t, streamed, res.Rows)
	if rows.Stats().RowsOut != int64(len(res.Rows)) {
		t.Fatalf("stream accounted %d rows, want %d", rows.Stats().RowsOut, len(res.Rows))
	}
}

func TestSQLLimitThroughBatchPipeline(t *testing.T) {
	e := tpchEngine(t)
	res, st := e.Exec(mustPlan(t, e,
		`SELECT * FROM lineitem WHERE l_quantity <= 10 ORDER BY l_orderkey LIMIT 12`))
	if len(res.Rows) != 12 || st.RowsOut != 12 {
		t.Fatalf("limit returned %d rows (stats %d), want 12", len(res.Rows), st.RowsOut)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][0].I < res.Rows[i-1][0].I {
			t.Fatal("limited result not ordered by l_orderkey")
		}
	}
}

// nullableEngine returns a memory engine with small hand-built tables
// containing NULLs, for end-to-end coverage of the executor NULL fixes.
func nullableEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New(engine.ProfileMySQLMemory(), system.NewSUT())

	people := catalog.NewTable("people", catalog.NewSchema(
		catalog.Column{Name: "dept", Kind: expr.KindString},
		catalog.Column{Name: "bonus", Kind: expr.KindInt},
	))
	people.Insert(expr.Row{expr.String("eng"), expr.Int(10)})
	people.Insert(expr.Row{expr.String("eng"), expr.Null()})
	people.Insert(expr.Row{expr.String("ops"), expr.Null()})
	e.Catalog().MustCreate(people)

	left := catalog.NewTable("lhs", catalog.NewSchema(
		catalog.Column{Name: "lk", Kind: expr.KindInt}))
	left.Insert(expr.Row{expr.Null()})
	left.Insert(expr.Row{expr.Int(1)})
	e.Catalog().MustCreate(left)

	right := catalog.NewTable("rhs", catalog.NewSchema(
		catalog.Column{Name: "rk", Kind: expr.KindInt}))
	right.Insert(expr.Row{expr.Null()})
	right.Insert(expr.Row{expr.Int(1)})
	e.Catalog().MustCreate(right)

	empty := catalog.NewTable("nobody", catalog.NewSchema(
		catalog.Column{Name: "x", Kind: expr.KindInt}))
	e.Catalog().MustCreate(empty)

	return e
}

func TestSQLCountColumnSkipsNulls(t *testing.T) {
	e := nullableEngine(t)
	res, _ := e.Exec(mustPlan(t, e, `
		SELECT dept, COUNT(bonus) AS with_bonus, COUNT(*) AS everyone
		FROM people GROUP BY dept ORDER BY dept`))
	if len(res.Rows) != 2 {
		t.Fatalf("got %d groups, want 2", len(res.Rows))
	}
	eng, ops := res.Rows[0], res.Rows[1]
	if eng[1].I != 1 || eng[2].I != 2 {
		t.Fatalf("eng: COUNT(bonus)=%v COUNT(*)=%v, want 1 and 2", eng[1], eng[2])
	}
	if ops[1].I != 0 || ops[2].I != 1 {
		t.Fatalf("ops: COUNT(bonus)=%v COUNT(*)=%v, want 0 and 1", ops[1], ops[2])
	}
}

func TestSQLGlobalAggregateOverEmptyTable(t *testing.T) {
	e := nullableEngine(t)
	res, st := e.Exec(mustPlan(t, e,
		`SELECT COUNT(*) AS c, SUM(x) AS s, MIN(x) AS mn FROM nobody`))
	if len(res.Rows) != 1 || st.RowsOut != 1 {
		t.Fatalf("global aggregate over empty table returned %d rows, want 1", len(res.Rows))
	}
	r := res.Rows[0]
	if r[0].I != 0 {
		t.Fatalf("COUNT(*) = %v, want 0", r[0])
	}
	if !r[1].IsNull() || !r[2].IsNull() {
		t.Fatalf("SUM/MIN over empty table = %v/%v, want NULL/NULL", r[1], r[2])
	}
}

func TestSQLJoinIgnoresNullKeys(t *testing.T) {
	e := nullableEngine(t)
	res, _ := e.Exec(mustPlan(t, e,
		`SELECT * FROM lhs JOIN rhs ON rk = lk`))
	if len(res.Rows) != 1 {
		t.Fatalf("NULL-key join returned %d rows, want 1", len(res.Rows))
	}
	if res.Rows[0][0].I != 1 || res.Rows[0][1].I != 1 {
		t.Fatalf("joined row = %v, want (1,1)", res.Rows[0])
	}
}

func TestSQLResultsWorkerInvariant(t *testing.T) {
	// The same SQL statement executed with and without morsel parallelism
	// returns identical rows and identical simulated statistics.
	query := `
		SELECT l_quantity AS q, COUNT(*) AS n
		FROM lineitem
		WHERE l_quantity <= 30
		GROUP BY l_quantity
		ORDER BY q`
	serialProf := engine.ProfileMySQLMemory()
	parallelProf := serialProf
	parallelProf.Workers = 4

	mk := func(prof engine.Profile) *engine.Engine {
		e := engine.New(prof, system.NewSUT())
		tpch.NewGenerator(0.01, 42).Load(e.Catalog(), tpch.Lineitem)
		return e
	}
	e1, e2 := mk(serialProf), mk(parallelProf)
	r1, st1 := e1.Exec(mustPlan(t, e1, query))
	r2, st2 := e2.Exec(mustPlan(t, e2, query))
	if len(r1.Rows) == 0 {
		t.Fatal("query returned no rows")
	}
	assertRowsEqual(t, r2.Rows, r1.Rows)
	if st1 != st2 {
		t.Fatalf("stats diverge across worker counts: %+v vs %+v", st1, st2)
	}
}
