package sql

import (
	"strings"
	"testing"

	"ecodb/internal/catalog"
	"ecodb/internal/engine"
	"ecodb/internal/hw/system"
	"ecodb/internal/tpch"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a, b FROM t WHERE x >= 1.5 AND name = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	if toks[0].text != "SELECT" || toks[0].kind != tokKeyword {
		t.Fatalf("first token = %+v", toks[0])
	}
	// The escaped quote collapses.
	found := false
	for _, tk := range toks {
		if tk.kind == tokString && tk.text == "it's" {
			found = true
		}
	}
	if !found {
		t.Fatal("escaped string literal not lexed")
	}
	if kinds[len(kinds)-1] != tokEOF {
		t.Fatal("missing EOF token")
	}
}

func TestLexComments(t *testing.T) {
	toks, err := lex("SELECT -- comment here\n1")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 { // SELECT, 1, EOF
		t.Fatalf("tokens = %d, want 3", len(toks))
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Fatal("unterminated string should fail")
	}
	if _, err := lex("SELECT @"); err == nil {
		t.Fatal("bad character should fail")
	}
}

func TestParseSimpleSelect(t *testing.T) {
	stmt, err := Parse("SELECT * FROM lineitem WHERE l_quantity = 7")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.Items[0].Star {
		t.Fatal("expected star select")
	}
	if stmt.From.Name != "lineitem" {
		t.Fatalf("from = %q", stmt.From.Name)
	}
	bo, ok := stmt.Where.(BinOp)
	if !ok || bo.Op != "=" {
		t.Fatalf("where = %v", stmt.Where)
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
	if err != nil {
		t.Fatal(err)
	}
	// AND binds tighter than OR.
	root := stmt.Where.(BinOp)
	if root.Op != "OR" {
		t.Fatalf("root op = %s, want OR", root.Op)
	}
	if right := root.R.(BinOp); right.Op != "AND" {
		t.Fatalf("right op = %s, want AND", right.Op)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	stmt, err := Parse("SELECT a + b * c FROM t")
	if err != nil {
		t.Fatal(err)
	}
	add := stmt.Items[0].Expr.(BinOp)
	if add.Op != "+" {
		t.Fatalf("root = %s", add.Op)
	}
	if mul := add.R.(BinOp); mul.Op != "*" {
		t.Fatalf("rhs = %s, want *", mul.Op)
	}
}

func TestParseFullQ5(t *testing.T) {
	q := `SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
	      FROM region
	      JOIN nation ON n_regionkey = r_regionkey
	      JOIN customer ON c_nationkey = n_nationkey
	      JOIN orders ON o_custkey = c_custkey
	      JOIN lineitem ON l_orderkey = o_orderkey
	      JOIN supplier ON s_suppkey = l_suppkey AND s_nationkey = c_nationkey
	      WHERE r_name = 'ASIA'
	        AND o_orderdate >= DATE '1994-01-01'
	        AND o_orderdate < DATE '1995-01-01'
	      GROUP BY n_name
	      ORDER BY revenue DESC`
	stmt, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Joins) != 5 {
		t.Fatalf("joins = %d", len(stmt.Joins))
	}
	if len(stmt.GroupBy) != 1 || stmt.GroupBy[0].Name != "n_name" {
		t.Fatalf("group by = %v", stmt.GroupBy)
	}
	if !stmt.OrderBy[0].Desc {
		t.Fatal("order by should be DESC")
	}
	if stmt.Items[1].Agg != "SUM" || stmt.Items[1].Alias != "revenue" {
		t.Fatalf("agg item = %+v", stmt.Items[1])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"UPDATE t SET x = 1",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t GROUP x",
		"SELECT * FROM t LIMIT x",
		"SELECT * FROM t extra",
		"SELECT a FROM t JOIN u",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestParseBetweenAndIn(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1, 2, 3)")
	if err != nil {
		t.Fatal(err)
	}
	and := stmt.Where.(BinOp)
	if _, ok := and.L.(BetweenNode); !ok {
		t.Fatalf("left = %T, want BetweenNode", and.L)
	}
	in := and.R.(InNode)
	if len(in.List) != 3 {
		t.Fatalf("in list = %d", len(in.List))
	}
}

func TestParseLimitAndSemicolon(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t LIMIT 10;")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Limit != 10 {
		t.Fatalf("limit = %d", stmt.Limit)
	}
}

// End-to-end: the SQL front end produces the same Q5 answers as the
// programmatic plan builder.
func TestSQLQ5MatchesProgrammaticPlan(t *testing.T) {
	m := system.NewSUT()
	e := engine.New(engine.ProfileMySQLMemory(), m)
	tpch.NewGenerator(0.01, 42).Load(e.Catalog(),
		tpch.Region, tpch.Nation, tpch.Supplier, tpch.Customer, tpch.Orders, tpch.Lineitem)

	sqlPlan, err := Plan(e.Catalog(), `
		SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
		FROM region
		JOIN nation ON n_regionkey = r_regionkey
		JOIN customer ON c_nationkey = n_nationkey
		JOIN orders ON o_custkey = c_custkey
		JOIN lineitem ON l_orderkey = o_orderkey
		JOIN supplier ON s_suppkey = l_suppkey AND s_nationkey = c_nationkey
		WHERE r_name = 'ASIA'
		  AND o_orderdate >= DATE '1994-01-01'
		  AND o_orderdate < DATE '1995-01-01'
		GROUP BY n_name
		ORDER BY revenue DESC`)
	if err != nil {
		t.Fatal(err)
	}
	sqlRes, _ := e.Exec(sqlPlan)
	progRes, _ := e.Exec(tpch.Q5(e.Catalog(), "ASIA", 1994))

	if len(sqlRes.Rows) != len(progRes.Rows) {
		t.Fatalf("row counts differ: sql %d vs programmatic %d",
			len(sqlRes.Rows), len(progRes.Rows))
	}
	for i := range sqlRes.Rows {
		if sqlRes.Rows[i][0].S != progRes.Rows[i][0].S {
			t.Fatalf("row %d nation differs: %v vs %v", i, sqlRes.Rows[i], progRes.Rows[i])
		}
		if d := sqlRes.Rows[i][1].F - progRes.Rows[i][1].F; d > 1e-6 || d < -1e-6 {
			t.Fatalf("row %d revenue differs", i)
		}
	}
}

func TestSQLSelectionQuery(t *testing.T) {
	m := system.NewSUT()
	e := engine.New(engine.ProfileMySQLMemory(), m)
	tpch.NewGenerator(0.01, 42).Load(e.Catalog(), tpch.Lineitem)

	p, err := Plan(e.Catalog(), "SELECT * FROM lineitem WHERE l_quantity = 25")
	if err != nil {
		t.Fatal(err)
	}
	sqlRes, _ := e.Exec(p)
	progRes, _ := e.Exec(tpch.QuantityQuery(e.Catalog(), 25))
	if len(sqlRes.Rows) != len(progRes.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(sqlRes.Rows), len(progRes.Rows))
	}
}

func TestSQLProjectionAndAliases(t *testing.T) {
	m := system.NewSUT()
	e := engine.New(engine.ProfileMySQLMemory(), m)
	tpch.NewGenerator(0.01, 42).Load(e.Catalog(), tpch.Lineitem)

	p, err := Plan(e.Catalog(),
		"SELECT l_quantity AS q, l_extendedprice * 2 AS double_price FROM lineitem LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	res, _ := e.Exec(p)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Schema.MustIndex("q") != 0 || res.Schema.MustIndex("double_price") != 1 {
		t.Fatal("aliases not applied")
	}
}

func TestSQLAggregatesWithoutGroupBy(t *testing.T) {
	m := system.NewSUT()
	e := engine.New(engine.ProfileMySQLMemory(), m)
	tpch.NewGenerator(0.01, 42).Load(e.Catalog(), tpch.Lineitem)

	p, err := Plan(e.Catalog(), "SELECT COUNT(*) AS n, MIN(l_quantity) AS lo, MAX(l_quantity) AS hi FROM lineitem")
	if err != nil {
		t.Fatal(err)
	}
	res, _ := e.Exec(p)
	if len(res.Rows) != 1 {
		t.Fatalf("global aggregate returned %d rows", len(res.Rows))
	}
	row := res.Rows[0]
	total := e.Catalog().MustTable(tpch.Lineitem).Heap.NumRows()
	if row[0].I != total {
		t.Fatalf("count = %d, want %d", row[0].I, total)
	}
	if row[1].AsFloat() != 1 || row[2].AsFloat() != 50 {
		t.Fatalf("min/max = %v/%v, want 1/50", row[1], row[2])
	}
}

func TestBindErrors(t *testing.T) {
	cat := catalog.NewCatalog()
	tpch.NewGenerator(0.001, 42).Load(cat, tpch.Lineitem)

	bad := []string{
		"SELECT * FROM missing_table",
		"SELECT nope FROM lineitem",
		"SELECT l_quantity FROM lineitem GROUP BY l_orderkey",
		"SELECT * FROM lineitem JOIN lineitem ON 1 = 1", // duplicate + no key
		"SELECT * FROM lineitem ORDER BY l_quantity + 1",
	}
	for _, q := range bad {
		if _, err := Plan(cat, q); err == nil {
			t.Errorf("Plan(%q) should fail", q)
		}
	}
}

func TestWherePushdownIntoScan(t *testing.T) {
	cat := catalog.NewCatalog()
	tpch.NewGenerator(0.001, 42).Load(cat, tpch.Lineitem)
	p, err := Plan(cat, "SELECT * FROM lineitem WHERE l_quantity = 3")
	if err != nil {
		t.Fatal(err)
	}
	// The single-table predicate lands in the scan, not a Filter node.
	if !strings.HasPrefix(p.Describe(), "Scan(lineitem, filter=") {
		t.Fatalf("plan root = %s, want filtered scan", p.Describe())
	}
}
