package storage

import (
	"container/list"
	"fmt"

	"ecodb/internal/obsv"
)

// PageID identifies one page of one table.
type PageID struct {
	Table string
	Index int
}

// DiskReader performs a blocking read of n bytes; sequential reports
// whether the access continues the previous transfer. The engine wires
// this to the simulated machine (disk service time + CPU idle wait).
type DiskReader interface {
	BlockingRead(n int64, sequential bool)
}

// PoolStats counts buffer pool traffic.
type PoolStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	BytesIn   int64
}

// BufferPool is a byte-budgeted LRU cache of table pages backed by a
// simulated disk. Access charges a disk read on a miss; consecutive-index
// misses on the same table read sequentially (the drive's streaming path),
// everything else seeks.
type BufferPool struct {
	capacity int64
	used     int64
	reader   DiskReader

	lru      *list.List               // front = most recent; values are *entry
	resident map[PageID]*list.Element //

	last  PageID // last page actually read from disk
	valid bool   // whether last is meaningful
	stats PoolStats
}

type entry struct {
	id    PageID
	bytes int64
}

// NewBufferPool returns a pool holding at most capacity bytes, reading
// misses through reader. It panics on a non-positive capacity or nil
// reader; use a resident (memory-engine) table configuration instead of a
// degenerate pool.
func NewBufferPool(capacity int64, reader DiskReader) *BufferPool {
	if capacity <= 0 {
		panic("storage: buffer pool capacity must be positive")
	}
	if reader == nil {
		panic("storage: buffer pool needs a disk reader")
	}
	return &BufferPool{
		capacity: capacity,
		reader:   reader,
		lru:      list.New(),
		resident: make(map[PageID]*list.Element),
	}
}

// Capacity returns the pool's byte budget.
func (bp *BufferPool) Capacity() int64 { return bp.capacity }

// Used returns the bytes currently resident.
func (bp *BufferPool) Used() int64 { return bp.used }

// Stats returns traffic counters.
func (bp *BufferPool) Stats() PoolStats { return bp.stats }

// ResetStats zeroes the traffic counters.
func (bp *BufferPool) ResetStats() { bp.stats = PoolStats{} }

// Access touches a page, reading it from disk if absent and evicting LRU
// pages to fit. Pages larger than the whole pool still stream through (one
// read, immediately evicted).
func (bp *BufferPool) Access(id PageID, bytes int64) {
	if bytes < 0 {
		panic(fmt.Sprintf("storage: negative page size for %v", id))
	}
	obsv.PoolReads.Inc()
	if el, ok := bp.resident[id]; ok {
		bp.lru.MoveToFront(el)
		bp.stats.Hits++
		return
	}
	bp.stats.Misses++
	bp.stats.BytesIn += bytes
	obsv.PoolMisses.Inc()

	sequential := bp.valid && id.Table == bp.last.Table && id.Index == bp.last.Index+1
	bp.reader.BlockingRead(bytes, sequential)
	bp.last, bp.valid = id, true

	// Evict to fit.
	for bp.used+bytes > bp.capacity && bp.lru.Len() > 0 {
		back := bp.lru.Back()
		e := back.Value.(*entry)
		bp.lru.Remove(back)
		delete(bp.resident, e.id)
		bp.used -= e.bytes
		bp.stats.Evictions++
	}
	if bytes <= bp.capacity {
		el := bp.lru.PushFront(&entry{id: id, bytes: bytes})
		bp.resident[id] = el
		bp.used += bytes
	}
}

// Contains reports whether a page is resident.
func (bp *BufferPool) Contains(id PageID) bool {
	_, ok := bp.resident[id]
	return ok
}

// Warm marks a table's pages resident without charging disk reads, the
// state after the warm-up runs the paper performs before measuring.
// Warming more bytes than capacity keeps only the most recently warmed
// pages, like a real scan-through would.
func (bp *BufferPool) Warm(table string, heap *Heap) {
	for i := 0; i < heap.NumPages(); i++ {
		id := PageID{Table: table, Index: i}
		bytes := heap.Page(i).Bytes
		if el, ok := bp.resident[id]; ok {
			bp.lru.MoveToFront(el)
			continue
		}
		for bp.used+bytes > bp.capacity && bp.lru.Len() > 0 {
			back := bp.lru.Back()
			e := back.Value.(*entry)
			bp.lru.Remove(back)
			delete(bp.resident, e.id)
			bp.used -= e.bytes
			bp.stats.Evictions++
		}
		if bytes <= bp.capacity {
			bp.resident[id] = bp.lru.PushFront(&entry{id: id, bytes: bytes})
			bp.used += bytes
		}
	}
}

// InvalidateAll empties the pool — a cold start, as after the paper's
// system reboot in §3.5.
func (bp *BufferPool) InvalidateAll() {
	bp.lru.Init()
	bp.resident = make(map[PageID]*list.Element)
	bp.used = 0
	bp.valid = false
}
