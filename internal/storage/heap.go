// Package storage provides heap table storage and a buffer pool. Tables
// are divided into fixed-target-size pages; the buffer pool tracks which
// pages are resident and charges simulated disk reads for misses, which is
// how cold-vs-warm runs (paper §3.5) differ.
package storage

import (
	"fmt"

	"ecodb/internal/expr"
)

// DefaultPageBytes is the target page size, matching the 8 KB pages common
// to the paper's engines.
const DefaultPageBytes = 8 << 10

// Page holds one page's tuples in columnar layout — the on-"disk" unit the
// executor scans — with a storage footprint estimate and per-column zone
// maps. Data's vectors are owned by the page: scans hand out zero-copy
// views of them, so consumers must never mutate a page's batch.
type Page struct {
	Data  expr.Batch
	Bytes int64
	// Zones holds one min/max/null-presence entry per column, maintained
	// incrementally on append. Always present; whether scans consult it is
	// the executor's choice (expr.ZoneMapPruning).
	Zones []expr.Zone
}

// NumRows returns the page's tuple count.
func (p *Page) NumRows() int { return p.Data.N }

// Rows materializes the page's tuples as rows with fresh backing — the
// row-major view loaders and tests use; the executor reads Data directly.
func (p *Page) Rows() []expr.Row { return p.Data.Rows() }

// Heap is an append-only heap file of pages. The paper's experiments
// create no indices ("In all our experiments, we did not create any
// database indices"), so heaps and full scans are the only access path.
type Heap struct {
	pageTarget int64
	pages      []*Page
	rows       int64
	bytes      int64
}

// NewHeap returns an empty heap with the given target page size in bytes;
// zero or negative selects DefaultPageBytes.
func NewHeap(pageTargetBytes int64) *Heap {
	if pageTargetBytes <= 0 {
		pageTargetBytes = DefaultPageBytes
	}
	return &Heap{pageTarget: pageTargetBytes}
}

// Append adds a row to the heap, decomposing it into the current page's
// column vectors and starting a new page when the current one reaches the
// target size. Page sizing uses the row-major footprint estimate, so page
// boundaries are layout-independent.
func (h *Heap) Append(row expr.Row) {
	rb := row.Bytes()
	n := len(h.pages)
	if n == 0 || h.pages[n-1].Bytes+rb > h.pageTarget {
		h.pages = append(h.pages, &Page{
			Data:  *expr.NewBatch(len(row)),
			Zones: expr.NewZones(len(row)),
		})
		n++
	}
	p := h.pages[n-1]
	p.Data.AppendRow(row)
	for i, v := range row {
		p.Zones[i].Update(v)
	}
	p.Bytes += rb
	h.rows++
	h.bytes += rb
}

// NumPages returns the page count.
func (h *Heap) NumPages() int { return len(h.pages) }

// NumRows returns the row count.
func (h *Heap) NumRows() int64 { return h.rows }

// Bytes returns the estimated total storage footprint.
func (h *Heap) Bytes() int64 { return h.bytes }

// Page returns page i. It panics on out-of-range access.
func (h *Heap) Page(i int) *Page {
	if i < 0 || i >= len(h.pages) {
		panic(fmt.Sprintf("storage: page %d out of range [0,%d)", i, len(h.pages)))
	}
	return h.pages[i]
}

// PageTarget returns the configured target page size.
func (h *Heap) PageTarget() int64 { return h.pageTarget }

// CompressStrings dictionary-encodes the heap's string columns in place and
// returns how many columns were encoded. For each eligible column — plain
// strings on every page, no heterogeneous vectors — it builds one global
// sorted dictionary over the column's distinct words and rewrites every
// page's vector to codes against it. Logical content, page boundaries, and
// the byte footprint the simulation charges are unchanged: encoding is a
// physical-layout choice, and results must be bit-identical either way.
// Call only after loading is complete and before scans start.
func (h *Heap) CompressStrings() int {
	if len(h.pages) == 0 {
		return 0
	}
	width := len(h.pages[0].Data.Cols)
	encoded := 0
	for c := 0; c < width; c++ {
		eligible := false
		seen := make(map[string]struct{})
		var words []string
		for _, p := range h.pages {
			vec := &p.Data.Cols[c]
			if vec.Any != nil || (vec.Kind != expr.KindString && vec.Kind != expr.KindNull) {
				eligible = false
				break
			}
			if vec.Kind != expr.KindString {
				continue // all-NULL page: nothing to encode
			}
			eligible = true
			for i, s := range vec.S {
				if vec.Nulls != nil && vec.Nulls[i] {
					continue
				}
				if _, ok := seen[s]; !ok {
					seen[s] = struct{}{}
					words = append(words, s)
				}
			}
		}
		if !eligible {
			continue
		}
		dict := expr.NewDict(words)
		for _, p := range h.pages {
			vec := &p.Data.Cols[c]
			if vec.Kind == expr.KindString {
				vec.EncodeDict(dict)
			}
		}
		encoded++
	}
	return encoded
}
