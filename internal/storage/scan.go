package storage

import (
	"sync/atomic"

	"ecodb/internal/expr"
)

// PageScan is a stateful cursor over a heap's pages — the storage half of
// the executor's batch pipeline. Each step surfaces one page through the
// buffer pool (misses become simulated disk reads) and hands its rows to a
// batch, so the executor charges work at page granularity while flowing
// rows downstream in larger chunks.
type PageScan struct {
	heap  *Heap
	table string
	pool  *BufferPool // nil for an all-in-memory engine
	next  int
}

// NewPageScan returns a cursor over heap's pages. table names the heap in
// buffer-pool page IDs; pool may be nil when no pool is attached.
func NewPageScan(heap *Heap, table string, pool *BufferPool) *PageScan {
	return &PageScan{heap: heap, table: table, pool: pool}
}

// ReadInto advances to the next page, touching the buffer pool when one is
// attached, and appends the page's rows to dst. It reports the page's byte
// size and row count; ok is false when the heap is exhausted (dst is then
// untouched).
func (s *PageScan) ReadInto(dst *expr.Batch) (bytes int64, rows int, ok bool) {
	if s.next >= s.heap.NumPages() {
		return 0, 0, false
	}
	page := s.heap.Page(s.next)
	if s.pool != nil {
		s.pool.Access(PageID{Table: s.table, Index: s.next}, page.Bytes)
	}
	s.next++
	dst.Rows = append(dst.Rows, page.Rows...)
	return page.Bytes, len(page.Rows), true
}

// Reset rewinds the cursor to the first page.
func (s *PageScan) Reset() { s.next = 0 }

// MorselSource hands out a heap's pages to concurrent workers, one page —
// one morsel — at a time. It is the storage half of the morsel-driven
// parallel executor: a handout is a single atomic increment, so any number
// of worker goroutines can claim morsels without locking. Buffer-pool
// accounting is deliberately absent here — the pool and the rest of the
// simulated machine are single-threaded, so the executor's coordinator
// replays pool accesses in page order while merging worker results, which
// keeps simulated time and energy deterministic.
type MorselSource struct {
	heap *Heap
	next atomic.Int64
}

// NewMorselSource returns a concurrent cursor over heap's pages.
func NewMorselSource(heap *Heap) *MorselSource {
	return &MorselSource{heap: heap}
}

// NumMorsels returns how many morsels (pages) the source serves in total.
func (s *MorselSource) NumMorsels() int { return s.heap.NumPages() }

// Next claims the next unclaimed page, returning its index and contents;
// ok is false once the heap is exhausted. Safe for concurrent use.
func (s *MorselSource) Next() (idx int, page *Page, ok bool) {
	i := int(s.next.Add(1)) - 1
	if i >= s.heap.NumPages() {
		return 0, nil, false
	}
	return i, s.heap.Page(i), true
}
