package storage

import "ecodb/internal/expr"

// PageScan is a stateful cursor over a heap's pages — the storage half of
// the executor's batch pipeline. Each step surfaces one page through the
// buffer pool (misses become simulated disk reads) and hands its rows to a
// batch, so the executor charges work at page granularity while flowing
// rows downstream in larger chunks.
type PageScan struct {
	heap  *Heap
	table string
	pool  *BufferPool // nil for an all-in-memory engine
	next  int
}

// NewPageScan returns a cursor over heap's pages. table names the heap in
// buffer-pool page IDs; pool may be nil when no pool is attached.
func NewPageScan(heap *Heap, table string, pool *BufferPool) *PageScan {
	return &PageScan{heap: heap, table: table, pool: pool}
}

// ReadInto advances to the next page, touching the buffer pool when one is
// attached, and appends the page's rows to dst. It reports the page's byte
// size and row count; ok is false when the heap is exhausted (dst is then
// untouched).
func (s *PageScan) ReadInto(dst *expr.Batch) (bytes int64, rows int, ok bool) {
	if s.next >= s.heap.NumPages() {
		return 0, 0, false
	}
	page := s.heap.Page(s.next)
	if s.pool != nil {
		s.pool.Access(PageID{Table: s.table, Index: s.next}, page.Bytes)
	}
	s.next++
	dst.Rows = append(dst.Rows, page.Rows...)
	return page.Bytes, len(page.Rows), true
}

// Reset rewinds the cursor to the first page.
func (s *PageScan) Reset() { s.next = 0 }
