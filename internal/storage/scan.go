package storage

import (
	"sync/atomic"

	"ecodb/internal/expr"
)

// PageScan is a stateful cursor over a heap's pages — the storage half of
// the executor's batch pipeline. Each step surfaces one page through the
// buffer pool (misses become simulated disk reads) and hands its rows to a
// batch, so the executor charges work at page granularity while flowing
// rows downstream in larger chunks.
type PageScan struct {
	heap  *Heap
	table string
	pool  *BufferPool // nil for an all-in-memory engine
	next  int
}

// NewPageScan returns a cursor over heap's pages. table names the heap in
// buffer-pool page IDs; pool may be nil when no pool is attached.
func NewPageScan(heap *Heap, table string, pool *BufferPool) *PageScan {
	return &PageScan{heap: heap, table: table, pool: pool}
}

// ReadInto advances to the next page, touching the buffer pool when one is
// attached, and turns dst into a zero-copy view of the page's column
// vectors (full selection). It reports the page's byte size and row count;
// ok is false when the heap is exhausted (dst is then untouched).
func (s *PageScan) ReadInto(dst *expr.Batch) (bytes int64, rows int, ok bool) {
	if s.next >= s.heap.NumPages() {
		return 0, 0, false
	}
	page := s.heap.Page(s.next)
	if s.pool != nil {
		s.pool.Access(PageID{Table: s.table, Index: s.next}, page.Bytes)
	}
	s.next++
	dst.Alias(&page.Data, nil)
	return page.Bytes, page.NumRows(), true
}

// PeekZones returns the zone maps of the page the next ReadInto would
// surface, without advancing and without touching the buffer pool — the
// pruning check a scan runs before deciding to read or Skip. ok is false
// when the heap is exhausted.
func (s *PageScan) PeekZones() (zones []expr.Zone, ok bool) {
	if s.next >= s.heap.NumPages() {
		return nil, false
	}
	return s.heap.Page(s.next).Zones, true
}

// Skip advances past the next page without touching the buffer pool — a
// pruned page is never physically read, so no disk or pool state changes.
func (s *PageScan) Skip() {
	if s.next < s.heap.NumPages() {
		s.next++
	}
}

// Reset rewinds the cursor to the first page.
func (s *PageScan) Reset() { s.next = 0 }

// CircularScan is a wrap-aware cursor over a heap's pages — the storage
// half of the shared-scan subsystem and the circular cousin of
// MorselSource. The cursor can start at any page and wraps past the last
// page back to the first, so a pass has no intrinsic end: consumers that
// join mid-pass (remembering their entry page) bound their own reading at
// one full lap. Like PageScan, each surfaced page touches the buffer pool
// when one is attached, so misses become simulated disk reads exactly
// where the pass physically reads.
type CircularScan struct {
	heap  *Heap
	table string
	pool  *BufferPool // nil for an all-in-memory engine
	cur   int
}

// NewCircularScan returns a circular cursor over heap's pages starting at
// page start (normalized into range; empty heaps pin the cursor at 0).
func NewCircularScan(heap *Heap, table string, pool *BufferPool, start int) *CircularScan {
	s := &CircularScan{heap: heap, table: table, pool: pool}
	if n := heap.NumPages(); n > 0 {
		s.cur = ((start % n) + n) % n
	}
	return s
}

// Pos returns the page index the next call to Next will surface — the
// entry page a consumer attaching now should remember.
func (s *CircularScan) Pos() int { return s.cur }

// Next surfaces the page under the cursor, touching the buffer pool when
// one is attached, and advances with wrap-around. ok is false only when
// the heap has no pages; otherwise the cursor circles forever and the
// caller decides when its lap is complete.
func (s *CircularScan) Next() (idx int, page *Page, ok bool) {
	n := s.heap.NumPages()
	if n == 0 {
		return 0, nil, false
	}
	idx = s.cur
	page = s.heap.Page(idx)
	if s.pool != nil {
		s.pool.Access(PageID{Table: s.table, Index: idx}, page.Bytes)
	}
	s.cur = (idx + 1) % n
	return idx, page, true
}

// PeekZones returns the zone maps of the page under the cursor without
// advancing and without touching the buffer pool. ok is false when the
// heap has no pages.
func (s *CircularScan) PeekZones() (zones []expr.Zone, ok bool) {
	if s.heap.NumPages() == 0 {
		return nil, false
	}
	return s.heap.Page(s.cur).Zones, true
}

// Skip advances past the page under the cursor without touching the buffer
// pool — the circular cousin of PageScan.Skip for pruned pages.
func (s *CircularScan) Skip() (idx int, ok bool) {
	n := s.heap.NumPages()
	if n == 0 {
		return 0, false
	}
	idx = s.cur
	s.cur = (idx + 1) % n
	return idx, true
}

// DefaultMorselRunLength is how many adjacent pages one morsel-run handout
// covers. Run-length handout gives a worker NUMA-style affinity: it keeps
// claiming neighbouring pages (socket-local in a real machine) instead of
// interleaving with every other worker page by page.
const DefaultMorselRunLength = 8

// MorselSource hands out a heap's pages to concurrent workers in runs of
// adjacent pages. It is the storage half of the morsel-driven parallel
// executor: a handout is a single atomic increment on the run counter, so
// any number of worker goroutines can claim runs without locking, and each
// worker then walks its run's pages in order. Buffer-pool accounting is
// deliberately absent here — the pool and the rest of the simulated
// machine are single-threaded, so the executor's coordinator replays pool
// accesses in page order while merging worker results, which keeps
// simulated time and energy deterministic regardless of run length or
// worker count.
type MorselSource struct {
	heap    *Heap
	runLen  int
	nextRun atomic.Int64
}

// MorselRun is one handout: the adjacent pages [Start, End).
type MorselRun struct {
	Start, End int
}

// Len returns how many pages the run covers.
func (r MorselRun) Len() int { return r.End - r.Start }

// NewMorselSource returns a concurrent run-granular cursor over heap's
// pages with the default run length.
func NewMorselSource(heap *Heap) *MorselSource {
	return NewMorselSourceRunLength(heap, DefaultMorselRunLength)
}

// NewMorselSourceRunLength returns a concurrent cursor handing out runs of
// runLen adjacent pages; non-positive lengths select the default.
func NewMorselSourceRunLength(heap *Heap, runLen int) *MorselSource {
	if runLen <= 0 {
		runLen = DefaultMorselRunLength
	}
	return &MorselSource{heap: heap, runLen: runLen}
}

// NumMorsels returns how many morsels (pages) the source serves in total.
func (s *MorselSource) NumMorsels() int { return s.heap.NumPages() }

// RunLength returns the configured pages-per-handout run length.
func (s *MorselSource) RunLength() int { return s.runLen }

// NextRun claims the next unclaimed run of adjacent pages; ok is false
// once the heap is exhausted. Runs are claimed in ascending page order
// (run k covers pages [k·runLen, (k+1)·runLen) clipped to the heap).
// Safe for concurrent use.
func (s *MorselSource) NextRun() (run MorselRun, ok bool) {
	r := int(s.nextRun.Add(1)) - 1
	start := r * s.runLen
	n := s.heap.NumPages()
	if start >= n {
		return MorselRun{}, false
	}
	end := start + s.runLen
	if end > n {
		end = n
	}
	return MorselRun{Start: start, End: end}, true
}

// Page returns page i of the underlying heap, for workers walking a
// claimed run.
func (s *MorselSource) Page(i int) *Page { return s.heap.Page(i) }
