package storage

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"ecodb/internal/expr"
)

func intRow(v int64) expr.Row { return expr.Row{expr.Int(v)} }

func TestHeapAppendAndPaging(t *testing.T) {
	h := NewHeap(64) // tiny pages: 12-byte rows → 5 per page
	for i := int64(0); i < 23; i++ {
		h.Append(intRow(i))
	}
	if h.NumRows() != 23 {
		t.Fatalf("NumRows = %d", h.NumRows())
	}
	if h.NumPages() < 2 {
		t.Fatalf("expected multiple pages, got %d", h.NumPages())
	}
	// Every row present, in order.
	var seen int64
	for p := 0; p < h.NumPages(); p++ {
		for _, row := range h.Page(p).Rows() {
			if row[0].I != seen {
				t.Fatalf("row %d out of order: got %d", seen, row[0].I)
			}
			seen++
		}
	}
	if seen != 23 {
		t.Fatalf("iterated %d rows", seen)
	}
}

func TestHeapDefaultPageSize(t *testing.T) {
	h := NewHeap(0)
	if h.PageTarget() != DefaultPageBytes {
		t.Fatalf("default page target = %d", h.PageTarget())
	}
}

func TestHeapPageOutOfRangePanics(t *testing.T) {
	h := NewHeap(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Page(0) on empty heap did not panic")
		}
	}()
	h.Page(0)
}

func TestHeapBytesTracksRows(t *testing.T) {
	h := NewHeap(0)
	h.Append(intRow(1))
	want := intRow(1).Bytes()
	if h.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", h.Bytes(), want)
	}
}

// fakeReader records reads for buffer pool tests.
type fakeReader struct {
	reads []struct {
		n   int64
		seq bool
	}
}

func (f *fakeReader) BlockingRead(n int64, sequential bool) {
	f.reads = append(f.reads, struct {
		n   int64
		seq bool
	}{n, sequential})
}

func TestBufferPoolMissThenHit(t *testing.T) {
	r := &fakeReader{}
	bp := NewBufferPool(1<<20, r)
	id := PageID{Table: "t", Index: 0}
	bp.Access(id, 100)
	bp.Access(id, 100)
	st := bp.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(r.reads) != 1 {
		t.Fatalf("disk reads = %d, want 1", len(r.reads))
	}
}

func TestBufferPoolSequentialDetection(t *testing.T) {
	r := &fakeReader{}
	bp := NewBufferPool(1<<20, r)
	for i := 0; i < 4; i++ {
		bp.Access(PageID{Table: "t", Index: i}, 100)
	}
	// First read seeks; the rest stream.
	if r.reads[0].seq {
		t.Fatal("first read should be random")
	}
	for i := 1; i < 4; i++ {
		if !r.reads[i].seq {
			t.Fatalf("read %d should be sequential", i)
		}
	}
	// A different table breaks the run.
	bp.Access(PageID{Table: "u", Index: 4}, 100)
	if r.reads[4].seq {
		t.Fatal("table switch should seek")
	}
}

func TestBufferPoolEviction(t *testing.T) {
	r := &fakeReader{}
	bp := NewBufferPool(250, r)
	for i := 0; i < 3; i++ {
		bp.Access(PageID{Table: "t", Index: i}, 100)
	}
	// Capacity 250 with 100-byte pages: page 0 must have been evicted.
	if bp.Contains(PageID{Table: "t", Index: 0}) {
		t.Fatal("LRU page not evicted")
	}
	if !bp.Contains(PageID{Table: "t", Index: 2}) {
		t.Fatal("most recent page missing")
	}
	if bp.Stats().Evictions == 0 {
		t.Fatal("evictions not counted")
	}
	if bp.Used() > bp.Capacity() {
		t.Fatalf("used %d exceeds capacity %d", bp.Used(), bp.Capacity())
	}
}

func TestBufferPoolLRUOrderRespectsAccess(t *testing.T) {
	r := &fakeReader{}
	bp := NewBufferPool(250, r)
	bp.Access(PageID{Table: "t", Index: 0}, 100)
	bp.Access(PageID{Table: "t", Index: 1}, 100)
	bp.Access(PageID{Table: "t", Index: 0}, 100) // touch 0 again
	bp.Access(PageID{Table: "t", Index: 2}, 100) // evicts 1, not 0
	if !bp.Contains(PageID{Table: "t", Index: 0}) {
		t.Fatal("recently touched page evicted")
	}
	if bp.Contains(PageID{Table: "t", Index: 1}) {
		t.Fatal("least recently used page kept")
	}
}

func TestBufferPoolOversizedPageStreamsThrough(t *testing.T) {
	r := &fakeReader{}
	bp := NewBufferPool(100, r)
	bp.Access(PageID{Table: "t", Index: 0}, 1000)
	if bp.Contains(PageID{Table: "t", Index: 0}) {
		t.Fatal("page larger than pool must not be cached")
	}
	if bp.Used() != 0 {
		t.Fatalf("used = %d", bp.Used())
	}
}

func TestBufferPoolWarm(t *testing.T) {
	h := NewHeap(64)
	for i := int64(0); i < 40; i++ {
		h.Append(intRow(i))
	}
	r := &fakeReader{}
	bp := NewBufferPool(1<<20, r)
	bp.Warm("t", h)
	if len(r.reads) != 0 {
		t.Fatal("Warm must not touch the disk")
	}
	for i := 0; i < h.NumPages(); i++ {
		bp.Access(PageID{Table: "t", Index: i}, h.Page(i).Bytes)
	}
	if bp.Stats().Misses != 0 {
		t.Fatalf("misses after warm = %d", bp.Stats().Misses)
	}
}

func TestBufferPoolInvalidateAll(t *testing.T) {
	r := &fakeReader{}
	bp := NewBufferPool(1<<20, r)
	id := PageID{Table: "t", Index: 0}
	bp.Access(id, 100)
	bp.InvalidateAll()
	if bp.Contains(id) || bp.Used() != 0 {
		t.Fatal("InvalidateAll left residue")
	}
	bp.Access(id, 100)
	if bp.Stats().Misses != 2 {
		t.Fatalf("misses = %d, want 2", bp.Stats().Misses)
	}
	// After invalidation the first re-read must seek again.
	if r.reads[1].seq {
		t.Fatal("post-invalidate read should be random")
	}
}

func TestBufferPoolConstructorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero capacity", func() { NewBufferPool(0, &fakeReader{}) })
	mustPanic("nil reader", func() { NewBufferPool(1, nil) })
}

// Property: used bytes never exceed capacity and all resident pages are
// tracked, under arbitrary access sequences.
func TestBufferPoolInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		bp := NewBufferPool(1000, &fakeReader{})
		for _, op := range ops {
			idx := int(op % 37)
			size := int64(op%13)*20 + 10
			bp.Access(PageID{Table: fmt.Sprint(op % 3), Index: idx}, size)
			if bp.Used() > bp.Capacity() {
				return false
			}
		}
		st := bp.Stats()
		return st.Hits+st.Misses == int64(len(ops))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMorselSourceHandsOutEveryPageOnce(t *testing.T) {
	h := NewHeap(256)
	for i := 0; i < 2000; i++ {
		h.Append(expr.Row{expr.Int(int64(i))})
	}
	src := NewMorselSource(h)
	if src.NumMorsels() != h.NumPages() {
		t.Fatalf("NumMorsels = %d, want %d", src.NumMorsels(), h.NumPages())
	}

	var mu sync.Mutex
	claimed := make(map[int]int)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				run, ok := src.NextRun()
				if !ok {
					return
				}
				for idx := run.Start; idx < run.End; idx++ {
					if src.Page(idx) != h.Page(idx) {
						t.Errorf("morsel %d handed the wrong page", idx)
						return
					}
					mu.Lock()
					claimed[idx]++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if len(claimed) != h.NumPages() {
		t.Fatalf("workers claimed %d distinct pages, want %d", len(claimed), h.NumPages())
	}
	for idx, n := range claimed {
		if n != 1 {
			t.Fatalf("page %d handed out %d times", idx, n)
		}
	}
}

// The NUMA-affinity contract: every handout is a run of adjacent pages of
// exactly the configured length (the tail run may be shorter), runs are
// claimed in ascending order, and together they tile the heap.
func TestMorselSourceRunLengthContiguous(t *testing.T) {
	h := NewHeap(256)
	for i := 0; i < 1000; i++ {
		h.Append(expr.Row{expr.Int(int64(i))})
	}
	n := h.NumPages()
	if n < 10 {
		t.Fatalf("need a multi-page heap, got %d pages", n)
	}
	const runLen = 3
	src := NewMorselSourceRunLength(h, runLen)
	if src.RunLength() != runLen {
		t.Fatalf("RunLength = %d, want %d", src.RunLength(), runLen)
	}
	var runs []MorselRun
	for {
		run, ok := src.NextRun()
		if !ok {
			break
		}
		runs = append(runs, run)
	}
	next := 0
	for i, run := range runs {
		if run.Start != next {
			t.Fatalf("run %d starts at %d, want %d (runs must tile the heap in order)", i, run.Start, next)
		}
		want := runLen
		if run.Start+want > n {
			want = n - run.Start
		}
		if run.Len() != want {
			t.Fatalf("run %d covers %d pages, want %d", i, run.Len(), want)
		}
		next = run.End
	}
	if next != n {
		t.Fatalf("runs end at page %d, want %d", next, n)
	}
}

func TestMorselSourceDefaultRunLength(t *testing.T) {
	src := NewMorselSource(NewHeap(0))
	if src.RunLength() != DefaultMorselRunLength {
		t.Fatalf("default run length = %d, want %d", src.RunLength(), DefaultMorselRunLength)
	}
	if s2 := NewMorselSourceRunLength(NewHeap(0), -3); s2.RunLength() != DefaultMorselRunLength {
		t.Fatal("non-positive run length should select the default")
	}
}

func TestMorselSourceEmptyHeap(t *testing.T) {
	src := NewMorselSource(NewHeap(0))
	if _, ok := src.NextRun(); ok {
		t.Fatal("empty heap handed out a run")
	}
}

// --- CircularScan ---

func circHeap(t *testing.T, rows int) *Heap {
	t.Helper()
	h := NewHeap(256)
	for i := 0; i < rows; i++ {
		h.Append(expr.Row{expr.Int(int64(i))})
	}
	return h
}

func TestCircularScanWrapsFromAnyStart(t *testing.T) {
	h := circHeap(t, 500)
	n := h.NumPages()
	if n < 3 {
		t.Fatalf("need ≥3 pages, got %d", n)
	}
	for _, start := range []int{0, 1, n - 1, n, n + 2, -1} {
		s := NewCircularScan(h, "t", nil, start)
		wantFirst := ((start % n) + n) % n
		if s.Pos() != wantFirst {
			t.Fatalf("start %d: Pos = %d, want %d", start, s.Pos(), wantFirst)
		}
		seen := make(map[int]int)
		for i := 0; i < n; i++ {
			idx, page, ok := s.Next()
			if !ok {
				t.Fatalf("start %d: pass ended after %d pages", start, i)
			}
			if want := (wantFirst + i) % n; idx != want {
				t.Fatalf("start %d: page %d surfaced index %d, want %d", start, i, idx, want)
			}
			if page != h.Page(idx) {
				t.Fatalf("start %d: wrong page for index %d", start, idx)
			}
			seen[idx]++
		}
		if len(seen) != n {
			t.Fatalf("start %d: one lap surfaced %d distinct pages, want %d", start, len(seen), n)
		}
		// The lap closes: the cursor is back at the entry page.
		if s.Pos() != wantFirst {
			t.Fatalf("start %d: after a full lap Pos = %d, want %d", start, s.Pos(), wantFirst)
		}
	}
}

func TestCircularScanEmptyHeap(t *testing.T) {
	s := NewCircularScan(NewHeap(0), "t", nil, 3)
	if s.Pos() != 0 {
		t.Fatalf("empty heap Pos = %d, want 0", s.Pos())
	}
	if _, _, ok := s.Next(); ok {
		t.Fatal("empty heap surfaced a page")
	}
}

func TestCircularScanSinglePageRepeats(t *testing.T) {
	h := circHeap(t, 3) // all rows fit one page
	if h.NumPages() != 1 {
		t.Fatalf("want a single-page heap, got %d pages", h.NumPages())
	}
	s := NewCircularScan(h, "t", nil, 5)
	for i := 0; i < 4; i++ {
		idx, _, ok := s.Next()
		if !ok || idx != 0 {
			t.Fatalf("lap %d: idx=%d ok=%v, want 0 true", i, idx, ok)
		}
	}
}

func TestCircularScanTouchesPool(t *testing.T) {
	h := circHeap(t, 500)
	n := h.NumPages()
	bp := NewBufferPool(1<<20, &fakeReader{})
	s := NewCircularScan(h, "li", bp, 0)
	for i := 0; i < 2*n; i++ {
		s.Next()
	}
	st := bp.Stats()
	if st.Misses != int64(n) {
		t.Fatalf("first lap should miss every page once: misses = %d, want %d", st.Misses, n)
	}
	if st.Hits != int64(n) {
		t.Fatalf("second lap should hit every page: hits = %d, want %d", st.Hits, n)
	}
}
