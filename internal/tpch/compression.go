package tpch

import (
	"fmt"

	"ecodb/internal/catalog"
	"ecodb/internal/expr"
	"ecodb/internal/plan"
)

// The compressed-storage workload: selective range scans that zone maps can
// prune and string-equality scans that dictionary encoding accelerates.
//
// l_orderkey is generated in strictly increasing order, so every lineitem
// heap page covers a narrow, disjoint key band — the clustered-key shape on
// which per-page min/max zone maps skip almost the whole table for a narrow
// range predicate. l_quantity, by contrast, is uniform 1..50 on every page:
// zone maps can never prune it, which is why the band workload of the
// shared-scan ablation is useless here and this file exists.

// OrderkeyBandQuery builds a full-row range selection over lineitem:
// lo <= l_orderkey < lo+width.
func OrderkeyBandQuery(cat *catalog.Catalog, lo, width int64) plan.Node {
	t := cat.MustTable(Lineitem)
	return plan.NewScan(t, expr.Between{
		E:  t.Schema.Col("l_orderkey"),
		Lo: expr.Int(lo),
		Hi: expr.Int(lo + width),
	})
}

// OrderkeyBandWorkload builds n non-overlapping order-key range selections,
// each covering ~1% of the key domain, evenly spread across it. sf must be
// the scale factor the catalog was generated at — it fixes the key domain
// (order keys are dense in 1..Cardinality(Orders, sf)).
func OrderkeyBandWorkload(cat *catalog.Catalog, sf float64, n int) []plan.Node {
	if n < 1 || n > 50 {
		panic(fmt.Sprintf("tpch: orderkey band workload size %d outside [1,50]", n))
	}
	nOrders := Cardinality(Orders, sf)
	width := nOrders / 100
	if width < 1 {
		width = 1
	}
	out := make([]plan.Node, n)
	for i := range out {
		lo := 1 + (int64(i)*nOrders)/int64(n)
		out[i] = OrderkeyBandQuery(cat, lo, width)
	}
	return out
}

// StatusQuery builds a full-row selection of orders by order status — a
// string-equality predicate over a three-value column. Every page holds all
// three statuses, so zone maps never prune it; the win is dictionary
// encoding, which turns the per-row string comparison into an integer code
// comparison.
func StatusQuery(cat *catalog.Catalog, status string) plan.Node {
	t := cat.MustTable(Orders)
	return plan.NewScan(t, expr.Cmp{
		Op: expr.EQ,
		L:  t.Schema.Col("o_orderstatus"),
		R:  expr.Const{V: expr.String(status)},
	})
}

// SegmentQuery builds a full-row selection of customers by market segment —
// the same dictionary-friendly shape as StatusQuery over a five-value
// column.
func SegmentQuery(cat *catalog.Catalog, segment string) plan.Node {
	t := cat.MustTable(Customer)
	return plan.NewScan(t, expr.Cmp{
		Op: expr.EQ,
		L:  t.Schema.Col("c_mktsegment"),
		R:  expr.Const{V: expr.String(segment)},
	})
}

// CompressionWorkload builds the mixed workload of the compressed-storage
// ablation: nBands narrow order-key ranges over lineitem (zone-map fodder),
// the three order-status selections over orders, and the five
// market-segment selections over customer (dictionary fodder). It needs the
// lineitem, orders, and customer tables loaded at scale factor sf.
func CompressionWorkload(cat *catalog.Catalog, sf float64, nBands int) []plan.Node {
	out := OrderkeyBandWorkload(cat, sf, nBands)
	for _, status := range []string{"F", "O", "P"} {
		out = append(out, StatusQuery(cat, status))
	}
	for _, seg := range MktSegments {
		out = append(out, SegmentQuery(cat, seg))
	}
	return out
}
