package tpch

import (
	"fmt"

	"ecodb/internal/catalog"
	"ecodb/internal/expr"
	"ecodb/internal/sim"
)

// Date range of o_orderdate per the TPC-H specification.
var (
	orderDateLo = expr.MustParseDate("1992-01-01").I
	orderDateHi = expr.MustParseDate("1998-08-02").I
)

// Generator produces TPC-H tables deterministically from a seed.
type Generator struct {
	SF   float64
	Seed uint64
}

// NewGenerator returns a generator for the given scale factor.
// Non-positive scale factors panic.
func NewGenerator(sf float64, seed uint64) *Generator {
	if sf <= 0 {
		panic(fmt.Sprintf("tpch: non-positive scale factor %v", sf))
	}
	return &Generator{SF: sf, Seed: seed}
}

// Load generates the named tables (all eight when none are named) into the
// catalog. Orders and lineitem are generated together so line items agree
// with their orders.
func (g *Generator) Load(cat *catalog.Catalog, tables ...string) {
	want := map[string]bool{}
	if len(tables) == 0 {
		tables = []string{Region, Nation, Supplier, Customer, Orders, Lineitem, Part, PartSupp}
	}
	for _, t := range tables {
		want[t] = true
	}
	if want[Region] {
		g.loadRegion(cat)
	}
	if want[Nation] {
		g.loadNation(cat)
	}
	if want[Supplier] {
		g.loadSupplier(cat)
	}
	if want[Customer] {
		g.loadCustomer(cat)
	}
	if want[Orders] || want[Lineitem] {
		g.loadOrdersAndLineitem(cat, want[Orders], want[Lineitem])
	}
	if want[Part] {
		g.loadPart(cat)
	}
	if want[PartSupp] {
		g.loadPartSupp(cat)
	}
	if expr.DictStrings() {
		// Dictionary-encode string columns after loading: a build-time
		// physical-layout choice, invisible to queries (results, page
		// boundaries, and simulated charges are unchanged by encoding).
		for _, name := range tables {
			cat.MustTable(name).Heap.CompressStrings()
		}
	}
}

func (g *Generator) loadRegion(cat *catalog.Catalog) {
	t := catalog.NewTable(Region, RegionSchema())
	for i, name := range RegionNames {
		t.Insert(expr.Row{
			expr.Int(int64(i)),
			expr.String(name),
			expr.String("established region of commerce"),
		})
	}
	cat.MustCreate(t)
}

func (g *Generator) loadNation(cat *catalog.Catalog) {
	t := catalog.NewTable(Nation, NationSchema())
	for i, n := range NationNames {
		t.Insert(expr.Row{
			expr.Int(int64(i)),
			expr.String(n.Name),
			expr.Int(int64(n.Region)),
		})
	}
	cat.MustCreate(t)
}

func (g *Generator) loadSupplier(cat *catalog.Catalog) {
	rng := sim.NewRNG(g.Seed ^ 0x05)
	t := catalog.NewTable(Supplier, SupplierSchema())
	n := Cardinality(Supplier, g.SF)
	for k := int64(1); k <= n; k++ {
		t.Insert(expr.Row{
			expr.Int(k),
			expr.String(fmt.Sprintf("Supplier#%09d", k)),
			expr.Int(int64(rng.Intn(len(NationNames)))),
			expr.Float(float64(rng.IntRange(-99999, 999999)) / 100),
		})
	}
	cat.MustCreate(t)
}

func (g *Generator) loadCustomer(cat *catalog.Catalog) {
	rng := sim.NewRNG(g.Seed ^ 0x0C)
	t := catalog.NewTable(Customer, CustomerSchema())
	n := Cardinality(Customer, g.SF)
	for k := int64(1); k <= n; k++ {
		t.Insert(expr.Row{
			expr.Int(k),
			expr.String(fmt.Sprintf("Customer#%09d", k)),
			expr.Int(int64(rng.Intn(len(NationNames)))),
			expr.Float(float64(rng.IntRange(-99999, 999999)) / 100),
			expr.String(MktSegments[rng.Intn(len(MktSegments))]),
		})
	}
	cat.MustCreate(t)
}

func (g *Generator) loadOrdersAndLineitem(cat *catalog.Catalog, wantOrders, wantLineitem bool) {
	rng := sim.NewRNG(g.Seed ^ 0x01)
	var ot, lt *catalog.Table
	if wantOrders {
		ot = catalog.NewTable(Orders, OrdersSchema())
	}
	if wantLineitem {
		lt = catalog.NewTable(Lineitem, LineitemSchema())
	}
	nOrders := Cardinality(Orders, g.SF)
	nCust := Cardinality(Customer, g.SF)
	statuses := []string{"F", "O", "P"}

	for ok := int64(1); ok <= nOrders; ok++ {
		custkey := rng.Int63n(nCust) + 1
		orderdate := orderDateLo + rng.Int63n(orderDateHi-orderDateLo)
		lines := 1 + rng.Intn(MaxLinesPerOrder)
		var total float64

		for ln := 1; ln <= lines; ln++ {
			qty := int64(rng.IntRange(1, 50))
			price := float64(qty) * (900 + float64(rng.Intn(100100))/100) / 10
			disc := float64(rng.Intn(11)) / 100
			ship := orderdate + int64(rng.IntRange(1, 121))
			total += price * (1 - disc)
			if lt != nil {
				lt.Insert(expr.Row{
					expr.Int(ok),
					expr.Int(int64(ln)),
					expr.Int(rng.Int63n(Cardinality(Supplier, g.SF)) + 1),
					expr.Int(qty),
					expr.Float(price),
					expr.Float(disc),
					expr.Date(ship),
				})
			}
		}
		if ot != nil {
			ot.Insert(expr.Row{
				expr.Int(ok),
				expr.Int(custkey),
				expr.String(statuses[rng.Intn(len(statuses))]),
				expr.Float(total),
				expr.Date(orderdate),
			})
		}
	}
	if ot != nil {
		cat.MustCreate(ot)
	}
	if lt != nil {
		cat.MustCreate(lt)
	}
}

func (g *Generator) loadPart(cat *catalog.Catalog) {
	rng := sim.NewRNG(g.Seed ^ 0x09)
	t := catalog.NewTable(Part, PartSchema())
	n := Cardinality(Part, g.SF)
	for k := int64(1); k <= n; k++ {
		t.Insert(expr.Row{
			expr.Int(k),
			expr.String(fmt.Sprintf("part %d", k)),
			expr.String(fmt.Sprintf("Brand#%d%d", 1+rng.Intn(5), 1+rng.Intn(5))),
			expr.Float(900 + float64(k%1000)),
		})
	}
	cat.MustCreate(t)
}

func (g *Generator) loadPartSupp(cat *catalog.Catalog) {
	rng := sim.NewRNG(g.Seed ^ 0x77)
	t := catalog.NewTable(PartSupp, PartSuppSchema())
	nParts := Cardinality(Part, g.SF)
	nSupp := Cardinality(Supplier, g.SF)
	for p := int64(1); p <= nParts; p++ {
		for i := 0; i < 4; i++ {
			t.Insert(expr.Row{
				expr.Int(p),
				expr.Int((p+int64(i)*nParts/4)%nSupp + 1),
				expr.Int(int64(rng.IntRange(1, 9999))),
				expr.Float(float64(rng.IntRange(100, 100000)) / 100),
			})
		}
	}
	cat.MustCreate(t)
}
