package tpch

import (
	"fmt"

	"ecodb/internal/catalog"
	"ecodb/internal/expr"
	"ecodb/internal/plan"
)

// Q5 builds TPC-H query 5 — the six-table join with a group-by on one
// attribute that the paper uses for every PVC experiment ("This query has a
// response time that is often close to the geometric mean of the power
// tests"):
//
//	SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
//	FROM customer, orders, lineitem, supplier, nation, region
//	WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
//	  AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
//	  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
//	  AND r_name = :region
//	  AND o_orderdate >= :date AND o_orderdate < :date + 1 year
//	GROUP BY n_name ORDER BY revenue DESC
//
// The plan is the no-index shape both engines run: a left-deep chain of
// hash joins over full scans, small relations on the build side.
func Q5(cat *catalog.Catalog, region string, startYear int) plan.Node {
	if startYear < 1992 || startYear > 1997 {
		panic(fmt.Sprintf("tpch: Q5 start year %d outside order-date range", startYear))
	}
	regionT := cat.MustTable(Region)
	nationT := cat.MustTable(Nation)
	customerT := cat.MustTable(Customer)
	ordersT := cat.MustTable(Orders)
	lineitemT := cat.MustTable(Lineitem)
	supplierT := cat.MustTable(Supplier)

	dateLo := expr.MustParseDate(fmt.Sprintf("%d-01-01", startYear))
	dateHi := expr.MustParseDate(fmt.Sprintf("%d-01-01", startYear+1))

	// region(r_name = :region)
	regionScan := plan.NewScan(regionT, expr.Cmp{
		Op: expr.EQ,
		L:  regionT.Schema.Col("r_name"),
		R:  expr.Const{V: expr.String(region)},
	})

	// ⨝ nation ON n_regionkey = r_regionkey
	natJoin := plan.NewHashJoin(
		regionScan, plan.NewScan(nationT, nil),
		regionT.Schema.MustIndex("r_regionkey"),
		nationT.Schema.MustIndex("n_regionkey"),
		nil,
	)

	// ⨝ customer ON c_nationkey = n_nationkey
	custJoin := plan.NewHashJoin(
		natJoin, plan.NewScan(customerT, nil),
		natJoin.Schema().MustIndex("n_nationkey"),
		customerT.Schema.MustIndex("c_nationkey"),
		nil,
	)

	// ⨝ orders ON o_custkey = c_custkey, orders pre-filtered by date
	ordersScan := plan.NewScan(ordersT, expr.Between{
		E:  ordersT.Schema.Col("o_orderdate"),
		Lo: dateLo,
		Hi: dateHi,
	})
	ordJoin := plan.NewHashJoin(
		custJoin, ordersScan,
		custJoin.Schema().MustIndex("c_custkey"),
		ordersT.Schema.MustIndex("o_custkey"),
		nil,
	)

	// ⨝ lineitem ON l_orderkey = o_orderkey
	lineJoin := plan.NewHashJoin(
		ordJoin, plan.NewScan(lineitemT, nil),
		ordJoin.Schema().MustIndex("o_orderkey"),
		lineitemT.Schema.MustIndex("l_orderkey"),
		nil,
	)

	// ⨝ supplier ON s_suppkey = l_suppkey AND s_nationkey = c_nationkey.
	// Supplier is the build side; the nation-equality is a residual on the
	// joined row.
	suppScan := plan.NewScan(supplierT, nil)
	suppJoin := plan.NewHashJoin(
		suppScan, lineJoin,
		supplierT.Schema.MustIndex("s_suppkey"),
		lineJoin.Schema().MustIndex("l_suppkey"),
		nil, // residual attached below once the concat schema exists
	)
	suppJoin.Residual = expr.Cmp{
		Op: expr.EQ,
		L:  suppJoin.Schema().Col("s_nationkey"),
		R:  suppJoin.Schema().Col("c_nationkey"),
	}

	// Revenue aggregation grouped by nation name.
	revenue := expr.Arith{
		Op: expr.Mul,
		L:  suppJoin.Schema().Col("l_extendedprice"),
		R: expr.Arith{
			Op: expr.Sub,
			L:  expr.Const{V: expr.Float(1)},
			R:  suppJoin.Schema().Col("l_discount"),
		},
	}
	agg := plan.NewAgg(suppJoin,
		[]int{suppJoin.Schema().MustIndex("n_name")},
		[]plan.AggSpec{{Func: plan.Sum, Arg: revenue, Name: "revenue"}},
	)

	return plan.NewSort(agg, plan.SortKey{Col: agg.Schema().MustIndex("revenue"), Desc: true})
}

// Q5Params identifies one Q5 instance.
type Q5Params struct {
	Region    string
	StartYear int
}

func (p Q5Params) String() string { return fmt.Sprintf("Q5(%s, %d)", p.Region, p.StartYear) }

// Q5WorkloadParams returns the paper's ten-query workload: "predicates
// using regions 'Asia' and 'America' and all five possible date ranges",
// which are non-overlapping and uniform in work.
func Q5WorkloadParams() []Q5Params {
	var out []Q5Params
	for _, region := range []string{"ASIA", "AMERICA"} {
		for year := 1993; year <= 1997; year++ {
			out = append(out, Q5Params{Region: region, StartYear: year})
		}
	}
	return out
}

// Q5Workload builds the ten Q5 plans of the paper's workload.
func Q5Workload(cat *catalog.Catalog) []plan.Node {
	params := Q5WorkloadParams()
	plans := make([]plan.Node, len(params))
	for i, p := range params {
		plans[i] = Q5(cat, p.Region, p.StartYear)
	}
	return plans
}

// QuantityQuery builds the paper's QED selection query: a full-row
// single-table select over lineitem with a point predicate on l_quantity.
// With quantities uniform over 1..50, each query selects 2% of the table
// (§4: "each query having a 2% selectivity based on the l_quantity
// attribute").
func QuantityQuery(cat *catalog.Catalog, quantity int64) plan.Node {
	t := cat.MustTable(Lineitem)
	return plan.NewScan(t, expr.Cmp{
		Op: expr.EQ,
		L:  t.Schema.Col("l_quantity"),
		R:  expr.Const{V: expr.Int(quantity)},
	})
}

// QuantityWorkload builds n selection queries with distinct l_quantity
// predicates (n ≤ 50, one per distinct value, so "there is no overlap
// amongst the selection predicates up to a batch size of 50").
func QuantityWorkload(cat *catalog.Catalog, n int) []plan.Node {
	if n < 1 || n > 50 {
		panic(fmt.Sprintf("tpch: quantity workload size %d outside [1,50]", n))
	}
	out := make([]plan.Node, n)
	for i := range out {
		out[i] = QuantityQuery(cat, int64(i+1))
	}
	return out
}

// QuantityBandQuery builds a range selection over lineitem:
// lo <= l_quantity < lo+width. The range shape is deliberately outside
// mqo's mergeable fragment (equality selections only), making it the
// target workload of the shared-scan subsystem: QED cannot fold these into
// one disjunction, but scanshare can still serve a whole batch of them
// from one heap pass.
func QuantityBandQuery(cat *catalog.Catalog, lo, width int64) plan.Node {
	t := cat.MustTable(Lineitem)
	return plan.NewScan(t, expr.Between{
		E:  t.Schema.Col("l_quantity"),
		Lo: expr.Int(lo),
		Hi: expr.Int(lo + width),
	})
}

// QuantityBandWorkload builds n non-mergeable band selections with
// distinct, non-overlapping 2-quantity bands (n ≤ 25 keeps the bands
// within l_quantity's 1..50 domain).
func QuantityBandWorkload(cat *catalog.Catalog, n int) []plan.Node {
	if n < 1 || n > 25 {
		panic(fmt.Sprintf("tpch: band workload size %d outside [1,25]", n))
	}
	out := make([]plan.Node, n)
	for i := range out {
		out[i] = QuantityBandQuery(cat, int64(2*i+1), 2)
	}
	return out
}

// RevenueByQuantityQuery builds the Q1-shaped pricing-summary aggregation:
// revenue per l_quantity value over a quantity-bounded slice of lineitem,
//
//	SELECT l_quantity, SUM(l_extendedprice * (1 - l_discount)),
//	       AVG(l_extendedprice * (1 - l_discount)), COUNT(*)
//	FROM lineitem WHERE l_quantity < :maxQty GROUP BY l_quantity
//
// — the aggregation-dominated analytical shape whose Agg sits directly on
// a scan→filter fragment, so the parallel pre-aggregation path applies.
func RevenueByQuantityQuery(cat *catalog.Catalog, maxQty int64) plan.Node {
	t := cat.MustTable(Lineitem)
	price := t.Schema.Col("l_extendedprice")
	disc := t.Schema.Col("l_discount")
	revenue := expr.Arith{
		Op: expr.Mul,
		L:  price,
		R:  expr.Arith{Op: expr.Sub, L: expr.Const{V: expr.Float(1)}, R: disc},
	}
	scan := plan.NewScan(t, expr.Cmp{
		Op: expr.LT,
		L:  t.Schema.Col("l_quantity"),
		R:  expr.Const{V: expr.Int(maxQty)},
	})
	return plan.NewAgg(scan,
		[]int{t.Schema.MustIndex("l_quantity")},
		[]plan.AggSpec{
			{Func: plan.Sum, Arg: revenue, Name: "revenue"},
			{Func: plan.Avg, Arg: revenue, Name: "avg_revenue"},
			{Func: plan.Count, Name: "n"},
		})
}

// OrderedRevenueQuery builds the sort-dominated analytical shape: per-row
// revenue over a quantity-bounded slice of lineitem, ordered by revenue,
//
//	SELECT l_extendedprice * (1 - l_discount) AS revenue, l_orderkey
//	FROM lineitem WHERE l_quantity < :maxQty
//	ORDER BY revenue DESC
//
// — a Sort sitting directly on a scan→filter→project fragment, so the
// morsel-parallel sort path (worker-side run generation + loser-tree
// merge) applies.
func OrderedRevenueQuery(cat *catalog.Catalog, maxQty int64) plan.Node {
	t := cat.MustTable(Lineitem)
	price := t.Schema.Col("l_extendedprice")
	disc := t.Schema.Col("l_discount")
	revenue := expr.Arith{
		Op: expr.Mul,
		L:  price,
		R:  expr.Arith{Op: expr.Sub, L: expr.Const{V: expr.Float(1)}, R: disc},
	}
	proj := plan.NewProject(
		plan.NewScan(t, expr.Cmp{
			Op: expr.LT,
			L:  t.Schema.Col("l_quantity"),
			R:  expr.Const{V: expr.Int(maxQty)},
		}),
		[]expr.Expr{revenue, t.Schema.Col("l_orderkey")},
		[]string{"revenue", "l_orderkey"},
		[]expr.Kind{expr.KindFloat, expr.KindInt},
	)
	return plan.NewSort(proj, plan.SortKey{Col: 0, Desc: true})
}

// OrderedRevenueWorkload builds n sort queries with distinct quantity
// bounds (n ≤ 40 keeps every query selective below l_quantity's 1..50
// domain while leaving real per-query sort work).
func OrderedRevenueWorkload(cat *catalog.Catalog, n int) []plan.Node {
	if n < 1 || n > 40 {
		panic(fmt.Sprintf("tpch: ordered revenue workload size %d outside [1,40]", n))
	}
	out := make([]plan.Node, n)
	for i := range out {
		out[i] = OrderedRevenueQuery(cat, int64(50-i))
	}
	return out
}

// RevenueAggWorkload builds n aggregation queries with distinct quantity
// bounds (n ≤ 40 keeps every query selective below l_quantity's 1..50
// domain while leaving real per-query work).
func RevenueAggWorkload(cat *catalog.Catalog, n int) []plan.Node {
	if n < 1 || n > 40 {
		panic(fmt.Sprintf("tpch: revenue agg workload size %d outside [1,40]", n))
	}
	out := make([]plan.Node, n)
	for i := range out {
		out[i] = RevenueByQuantityQuery(cat, int64(50-i))
	}
	return out
}
