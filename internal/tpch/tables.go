// Package tpch generates TPC-H data deterministically and builds the
// paper's two workloads: TPC-H Q5 (the six-table join + group-by used for
// every PVC experiment) and the 2%-selectivity l_quantity selection queries
// used for QED.
//
// Schemas carry the columns the paper's queries touch plus enough
// surrounding realism to be recognizably TPC-H; wide comment columns are
// omitted from the large tables to keep generated datasets compact.
package tpch

import (
	"ecodb/internal/catalog"
	"ecodb/internal/expr"
)

// Table names.
const (
	Region   = "region"
	Nation   = "nation"
	Supplier = "supplier"
	Customer = "customer"
	Orders   = "orders"
	Lineitem = "lineitem"
	Part     = "part"
	PartSupp = "partsupp"
)

// RegionNames are the five TPC-H regions; the paper's Q5 workload uses
// AMERICA and ASIA.
var RegionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// NationNames are the 25 TPC-H nations with their region assignments
// (nation key = position).
var NationNames = []struct {
	Name   string
	Region int
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3}, {"UNITED KINGDOM", 3},
	{"UNITED STATES", 1},
}

// MktSegments are the TPC-H customer market segments.
var MktSegments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}

// Schemas.

// RegionSchema returns the region table schema.
func RegionSchema() *catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Name: "r_regionkey", Kind: expr.KindInt},
		catalog.Column{Name: "r_name", Kind: expr.KindString},
		catalog.Column{Name: "r_comment", Kind: expr.KindString},
	)
}

// NationSchema returns the nation table schema.
func NationSchema() *catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Name: "n_nationkey", Kind: expr.KindInt},
		catalog.Column{Name: "n_name", Kind: expr.KindString},
		catalog.Column{Name: "n_regionkey", Kind: expr.KindInt},
	)
}

// SupplierSchema returns the supplier table schema.
func SupplierSchema() *catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Name: "s_suppkey", Kind: expr.KindInt},
		catalog.Column{Name: "s_name", Kind: expr.KindString},
		catalog.Column{Name: "s_nationkey", Kind: expr.KindInt},
		catalog.Column{Name: "s_acctbal", Kind: expr.KindFloat},
	)
}

// CustomerSchema returns the customer table schema.
func CustomerSchema() *catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Name: "c_custkey", Kind: expr.KindInt},
		catalog.Column{Name: "c_name", Kind: expr.KindString},
		catalog.Column{Name: "c_nationkey", Kind: expr.KindInt},
		catalog.Column{Name: "c_acctbal", Kind: expr.KindFloat},
		catalog.Column{Name: "c_mktsegment", Kind: expr.KindString},
	)
}

// OrdersSchema returns the orders table schema.
func OrdersSchema() *catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Name: "o_orderkey", Kind: expr.KindInt},
		catalog.Column{Name: "o_custkey", Kind: expr.KindInt},
		catalog.Column{Name: "o_orderstatus", Kind: expr.KindString},
		catalog.Column{Name: "o_totalprice", Kind: expr.KindFloat},
		catalog.Column{Name: "o_orderdate", Kind: expr.KindDate},
	)
}

// LineitemSchema returns the lineitem table schema.
func LineitemSchema() *catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Name: "l_orderkey", Kind: expr.KindInt},
		catalog.Column{Name: "l_linenumber", Kind: expr.KindInt},
		catalog.Column{Name: "l_suppkey", Kind: expr.KindInt},
		catalog.Column{Name: "l_quantity", Kind: expr.KindInt},
		catalog.Column{Name: "l_extendedprice", Kind: expr.KindFloat},
		catalog.Column{Name: "l_discount", Kind: expr.KindFloat},
		catalog.Column{Name: "l_shipdate", Kind: expr.KindDate},
	)
}

// PartSchema returns the part table schema.
func PartSchema() *catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Name: "p_partkey", Kind: expr.KindInt},
		catalog.Column{Name: "p_name", Kind: expr.KindString},
		catalog.Column{Name: "p_brand", Kind: expr.KindString},
		catalog.Column{Name: "p_retailprice", Kind: expr.KindFloat},
	)
}

// PartSuppSchema returns the partsupp table schema.
func PartSuppSchema() *catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Name: "ps_partkey", Kind: expr.KindInt},
		catalog.Column{Name: "ps_suppkey", Kind: expr.KindInt},
		catalog.Column{Name: "ps_availqty", Kind: expr.KindInt},
		catalog.Column{Name: "ps_supplycost", Kind: expr.KindFloat},
	)
}

// Cardinalities at scale factor 1.0.
const (
	SuppliersPerSF = 10_000
	CustomersPerSF = 150_000
	OrdersPerSF    = 1_500_000
	PartsPerSF     = 200_000
	// Lineitems per order are 1..7 uniform, ≈4 on average → ≈6 M per SF.
	MaxLinesPerOrder = 7
)

// Cardinality returns the target row count for a table at scale factor sf.
// Region and nation are fixed size; others scale linearly (minimum 1).
func Cardinality(table string, sf float64) int64 {
	scale := func(base int64) int64 {
		n := int64(float64(base) * sf)
		if n < 1 {
			n = 1
		}
		return n
	}
	switch table {
	case Region:
		return int64(len(RegionNames))
	case Nation:
		return int64(len(NationNames))
	case Supplier:
		return scale(SuppliersPerSF)
	case Customer:
		return scale(CustomersPerSF)
	case Orders:
		return scale(OrdersPerSF)
	case Part:
		return scale(PartsPerSF)
	case PartSupp:
		return scale(4 * PartsPerSF)
	default:
		panic("tpch: unknown table " + table)
	}
}
