package tpch

import (
	"math"
	"testing"

	"ecodb/internal/catalog"
	"ecodb/internal/expr"
	"ecodb/internal/mqo"
)

func loadAll(t testing.TB, sf float64) *catalog.Catalog {
	t.Helper()
	cat := catalog.NewCatalog()
	NewGenerator(sf, 42).Load(cat)
	return cat
}

func TestCardinalities(t *testing.T) {
	cat := loadAll(t, 0.01)
	cases := []struct {
		table string
		want  int64
	}{
		{Region, 5},
		{Nation, 25},
		{Supplier, 100},
		{Customer, 1500},
		{Orders, 15000},
		{Part, 2000},
		{PartSupp, 8000},
	}
	for _, c := range cases {
		got := cat.MustTable(c.table).Heap.NumRows()
		if got != c.want {
			t.Errorf("%s rows = %d, want %d", c.table, got, c.want)
		}
	}
	// Lineitem has 1..7 lines per order, ≈4 on average.
	li := cat.MustTable(Lineitem).Heap.NumRows()
	if li < 45000 || li > 75000 {
		t.Errorf("lineitem rows = %d, want ≈60000", li)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := loadAll(t, 0.001)
	b := loadAll(t, 0.001)
	ta, tb := a.MustTable(Lineitem), b.MustTable(Lineitem)
	if ta.Heap.NumRows() != tb.Heap.NumRows() {
		t.Fatal("same seed produced different row counts")
	}
	ra := ta.Heap.Page(0).Rows()[0]
	rb := tb.Heap.Page(0).Rows()[0]
	for i := range ra {
		if expr.Compare(ra[i], rb[i]) != 0 {
			t.Fatalf("same seed produced different first rows: %v vs %v", ra, rb)
		}
	}
}

func TestForeignKeysValid(t *testing.T) {
	cat := loadAll(t, 0.005)
	nCust := cat.MustTable(Customer).Heap.NumRows()
	nSupp := cat.MustTable(Supplier).Heap.NumRows()
	nOrders := cat.MustTable(Orders).Heap.NumRows()

	ot := cat.MustTable(Orders)
	ck := ot.Schema.MustIndex("o_custkey")
	for p := 0; p < ot.Heap.NumPages(); p++ {
		for _, row := range ot.Heap.Page(p).Rows() {
			if row[ck].I < 1 || row[ck].I > nCust {
				t.Fatalf("o_custkey %d out of [1,%d]", row[ck].I, nCust)
			}
		}
	}
	lt := cat.MustTable(Lineitem)
	ok := lt.Schema.MustIndex("l_orderkey")
	sk := lt.Schema.MustIndex("l_suppkey")
	for p := 0; p < lt.Heap.NumPages(); p++ {
		for _, row := range lt.Heap.Page(p).Rows() {
			if row[ok].I < 1 || row[ok].I > nOrders {
				t.Fatalf("l_orderkey %d out of range", row[ok].I)
			}
			if row[sk].I < 1 || row[sk].I > nSupp {
				t.Fatalf("l_suppkey %d out of range", row[sk].I)
			}
		}
	}
}

func TestNationRegionAssignments(t *testing.T) {
	cat := loadAll(t, 0.001)
	nt := cat.MustTable(Nation)
	if nt.Heap.NumRows() != 25 {
		t.Fatal("nation must have 25 rows")
	}
	counts := map[int64]int{}
	for p := 0; p < nt.Heap.NumPages(); p++ {
		for _, row := range nt.Heap.Page(p).Rows() {
			rk := row[nt.Schema.MustIndex("n_regionkey")].I
			if rk < 0 || rk > 4 {
				t.Fatalf("n_regionkey %d out of range", rk)
			}
			counts[rk]++
		}
	}
	for r := int64(0); r < 5; r++ {
		if counts[r] != 5 {
			t.Fatalf("region %d has %d nations, want 5", r, counts[r])
		}
	}
}

func TestQuantityUniform(t *testing.T) {
	cat := loadAll(t, 0.02)
	lt := cat.MustTable(Lineitem)
	q := lt.Schema.MustIndex("l_quantity")
	counts := make(map[int64]int)
	total := 0
	for p := 0; p < lt.Heap.NumPages(); p++ {
		for _, row := range lt.Heap.Page(p).Rows() {
			v := row[q].I
			if v < 1 || v > 50 {
				t.Fatalf("l_quantity %d outside 1..50", v)
			}
			counts[v]++
			total++
		}
	}
	// Each value ≈2% of rows (the paper's per-query selectivity).
	want := float64(total) / 50
	for v := int64(1); v <= 50; v++ {
		if math.Abs(float64(counts[v])-want) > 0.25*want {
			t.Fatalf("l_quantity=%d count %d deviates >25%% from uniform %v", v, counts[v], want)
		}
	}
}

func TestOrderDatesInRange(t *testing.T) {
	cat := loadAll(t, 0.002)
	ot := cat.MustTable(Orders)
	d := ot.Schema.MustIndex("o_orderdate")
	lo, hi := expr.MustParseDate("1992-01-01").I, expr.MustParseDate("1998-08-02").I
	for p := 0; p < ot.Heap.NumPages(); p++ {
		for _, row := range ot.Heap.Page(p).Rows() {
			if row[d].I < lo || row[d].I >= hi {
				t.Fatalf("o_orderdate %v outside TPC-H range", row[d])
			}
		}
	}
}

func TestPartialLoad(t *testing.T) {
	cat := catalog.NewCatalog()
	NewGenerator(0.001, 1).Load(cat, Lineitem)
	if _, err := cat.Table(Lineitem); err != nil {
		t.Fatal("lineitem missing after partial load")
	}
	if _, err := cat.Table(Orders); err == nil {
		t.Fatal("orders should not be loaded")
	}
}

func TestQ5PlanShape(t *testing.T) {
	cat := loadAll(t, 0.001)
	p := Q5(cat, "ASIA", 1994)
	// Root is a sort over an aggregation over joins.
	if got := p.Describe(); got != "Sort(revenue desc)" {
		t.Fatalf("root = %q", got)
	}
	agg := p.Children()[0]
	if agg.Schema().MustIndex("n_name") != 0 {
		t.Fatal("agg output should start with n_name")
	}
	if agg.Schema().MustIndex("revenue") != 1 {
		t.Fatal("agg output should include revenue")
	}
}

func TestQ5BadYearPanics(t *testing.T) {
	cat := loadAll(t, 0.001)
	defer func() {
		if recover() == nil {
			t.Fatal("year 2001 did not panic")
		}
	}()
	Q5(cat, "ASIA", 2001)
}

func TestQ5WorkloadParams(t *testing.T) {
	params := Q5WorkloadParams()
	if len(params) != 10 {
		t.Fatalf("workload has %d queries, want 10", len(params))
	}
	seen := map[Q5Params]bool{}
	for _, p := range params {
		if p.Region != "ASIA" && p.Region != "AMERICA" {
			t.Fatalf("unexpected region %q", p.Region)
		}
		if p.StartYear < 1993 || p.StartYear > 1997 {
			t.Fatalf("unexpected year %d", p.StartYear)
		}
		if seen[p] {
			t.Fatalf("duplicate params %v (predicates must not overlap)", p)
		}
		seen[p] = true
	}
}

func TestQuantityQueryIsMergeable(t *testing.T) {
	cat := loadAll(t, 0.001)
	q := QuantityQuery(cat, 7)
	sel, ok := mqo.ExtractSelection(q)
	if !ok {
		t.Fatal("quantity query should be a mergeable selection")
	}
	if sel.Value.I != 7 {
		t.Fatalf("selection value = %v", sel.Value)
	}
}

func TestQuantityWorkloadDistinctPredicates(t *testing.T) {
	cat := loadAll(t, 0.001)
	qs := QuantityWorkload(cat, 50)
	seen := map[int64]bool{}
	for _, q := range qs {
		sel, ok := mqo.ExtractSelection(q)
		if !ok {
			t.Fatal("workload query not mergeable")
		}
		if seen[sel.Value.I] {
			t.Fatalf("duplicate predicate value %d", sel.Value.I)
		}
		seen[sel.Value.I] = true
	}
}

func TestQuantityWorkloadBoundsPanics(t *testing.T) {
	cat := loadAll(t, 0.001)
	defer func() {
		if recover() == nil {
			t.Fatal("size 51 did not panic")
		}
	}()
	QuantityWorkload(cat, 51)
}

func TestNewGeneratorValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sf 0 did not panic")
		}
	}()
	NewGenerator(0, 1)
}
