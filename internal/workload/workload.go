// Package workload models query streams and their execution accounting:
// queries arriving with zero think time, executed one at a time (the
// paper's workload model in §4), with per-query response times measured
// from batch issue — the accounting QED's Figure 6 uses.
package workload

import (
	"fmt"

	"ecodb/internal/engine"
	"ecodb/internal/plan"
	"ecodb/internal/sim"
)

// Query is one statement in a workload.
type Query struct {
	ID   string
	Plan plan.Node
}

// NewQueries wraps plans with sequential IDs.
func NewQueries(prefix string, plans []plan.Node) []Query {
	out := make([]Query, len(plans))
	for i, p := range plans {
		out[i] = Query{ID: fmt.Sprintf("%s-%02d", prefix, i+1), Plan: p}
	}
	return out
}

// QueryResult is one query's outcome within a batch run.
type QueryResult struct {
	ID string
	// Start and End are offsets from batch issue; End-Start is this
	// query's own execution window, End its response time under the
	// paper's "time starts when the batch is issued" accounting.
	Start, End sim.Duration
	Rows       int64
}

// Response returns the query's response time from batch issue.
func (q QueryResult) Response() sim.Duration { return q.End }

// RunResult is the outcome of executing a batch of queries.
type RunResult struct {
	Total   sim.Duration
	Queries []QueryResult
}

// MeanResponse returns the average per-query response time from batch
// issue — the Y axis of the paper's Figure 6.
func (r RunResult) MeanResponse() sim.Duration {
	if len(r.Queries) == 0 {
		return 0
	}
	var sum sim.Duration
	for _, q := range r.Queries {
		sum += q.Response()
	}
	return sum / sim.Duration(len(r.Queries))
}

// MaxResponse returns the worst per-query response time.
func (r RunResult) MaxResponse() sim.Duration {
	var max sim.Duration
	for _, q := range r.Queries {
		if q.Response() > max {
			max = q.Response()
		}
	}
	return max
}

// TotalRows sums result cardinalities.
func (r RunResult) TotalRows() int64 {
	var n int64
	for _, q := range r.Queries {
		n += q.Rows
	}
	return n
}

// RunSequential executes the queries back to back on the engine — the
// traditional evaluation the paper compares QED against: "each query being
// evaluated individually, and one after the other". Time and energy cost
// start when the first query is sent.
func RunSequential(e *engine.Engine, clock *sim.Clock, queries []Query) RunResult {
	issue := clock.Now()
	out := RunResult{Queries: make([]QueryResult, 0, len(queries))}
	for _, q := range queries {
		start := clock.Now().Sub(issue)
		// Stream the result without materializing it: measurement loops
		// only need cardinalities, and the simulated result-path cost is
		// charged by the iterator either way.
		st := e.Query(q.Plan).Stats()
		out.Queries = append(out.Queries, QueryResult{
			ID:    q.ID,
			Start: start,
			End:   clock.Now().Sub(issue),
			Rows:  st.RowsOut,
		})
	}
	out.Total = clock.Now().Sub(issue)
	return out
}
