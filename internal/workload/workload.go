// Package workload models query streams and their execution accounting:
// queries arriving with zero think time, executed one at a time (the
// paper's workload model in §4), with per-query response times measured
// from batch issue — the accounting QED's Figure 6 uses.
package workload

import (
	"fmt"

	"ecodb/internal/engine"
	"ecodb/internal/plan"
	"ecodb/internal/sim"
)

// Query is one statement in a workload.
type Query struct {
	ID   string
	Plan plan.Node
}

// NewQueries wraps plans with sequential IDs.
func NewQueries(prefix string, plans []plan.Node) []Query {
	out := make([]Query, len(plans))
	for i, p := range plans {
		out[i] = Query{ID: fmt.Sprintf("%s-%02d", prefix, i+1), Plan: p}
	}
	return out
}

// QueryResult is one query's outcome within a batch run.
type QueryResult struct {
	ID string
	// Start and End are offsets from batch issue; End-Start is this
	// query's own execution window, End its response time under the
	// paper's "time starts when the batch is issued" accounting.
	Start, End sim.Duration
	Rows       int64
}

// Response returns the query's response time from batch issue.
func (q QueryResult) Response() sim.Duration { return q.End }

// RunResult is the outcome of executing a batch of queries.
type RunResult struct {
	Total   sim.Duration
	Queries []QueryResult
}

// MeanResponse returns the average per-query response time from batch
// issue — the Y axis of the paper's Figure 6.
func (r RunResult) MeanResponse() sim.Duration {
	if len(r.Queries) == 0 {
		return 0
	}
	var sum sim.Duration
	for _, q := range r.Queries {
		sum += q.Response()
	}
	return sum / sim.Duration(len(r.Queries))
}

// MaxResponse returns the worst per-query response time.
func (r RunResult) MaxResponse() sim.Duration {
	var max sim.Duration
	for _, q := range r.Queries {
		if q.Response() > max {
			max = q.Response()
		}
	}
	return max
}

// TotalRows sums result cardinalities.
func (r RunResult) TotalRows() int64 {
	var n int64
	for _, q := range r.Queries {
		n += q.Rows
	}
	return n
}

// RunSequential executes the queries back to back on the engine — the
// traditional evaluation the paper compares QED against: "each query being
// evaluated individually, and one after the other". Time and energy cost
// start when the first query is sent.
func RunSequential(e *engine.Engine, clock *sim.Clock, queries []Query) RunResult {
	issue := clock.Now()
	out := RunResult{Queries: make([]QueryResult, 0, len(queries))}
	for _, q := range queries {
		start := clock.Now().Sub(issue)
		// Stream the result without materializing it: measurement loops
		// only need cardinalities, and the simulated result-path cost is
		// charged by the iterator either way.
		st := e.Query(q.Plan).Stats()
		out.Queries = append(out.Queries, QueryResult{
			ID:    q.ID,
			Start: start,
			End:   clock.Now().Sub(issue),
			Rows:  st.RowsOut,
		})
	}
	out.Total = clock.Now().Sub(issue)
	return out
}

// RunShared executes the queries concurrently through a shared-scan
// session: every query is admitted up front (attaching its scan leaves to
// per-table circular passes at the same entry page), then the result
// streams are drained round-robin, one batch per query per round, until
// all complete. For batches of streaming scans — the shared-scan target
// workload — heap pages are read and streamed once per table pass no
// matter how many queries consume them, while each query pays its own
// per-tuple CPU and result path: the shared-work generalization of QED's
// predicate merging. Plans containing blocking operators weaken that
// guarantee: a hash join drains its whole build side inside Open, i.e. at
// admission, advancing the shared pass a full lap before later queries
// attach, so those batches pay extra laps (results stay correct; only the
// amortization shrinks). The round-robin pull order is fixed, so simulated
// durations and joules are deterministic. All queries are issued together
// (Start 0) and each finishes when its own stream is exhausted.
func RunShared(e *engine.Engine, clock *sim.Clock, queries []Query) RunResult {
	issue := clock.Now()
	sess := e.NewSharedSession()
	// The whole batch is co-admitted, so that is the concurrency the
	// optimizer (when the profile enables one) costs shared attaches with.
	sess.SetExpectedConcurrency(len(queries))
	streams := make([]*engine.Rows, len(queries))
	for i, q := range queries {
		streams[i] = sess.Query(q.Plan)
	}
	out := RunResult{Queries: make([]QueryResult, len(queries))}
	for i, q := range queries {
		out.Queries[i] = QueryResult{ID: q.ID, Start: 0}
	}
	remaining := len(queries)
	for remaining > 0 {
		for i, r := range streams {
			if r == nil {
				continue
			}
			b, err := r.Next()
			if err != nil {
				// No operator errors exist today; a partial shared batch
				// would silently corrupt the measurement, so fail loudly.
				panic(fmt.Sprintf("workload: shared query %s failed mid-stream: %v", queries[i].ID, err))
			}
			if b == nil {
				out.Queries[i].End = clock.Now().Sub(issue)
				out.Queries[i].Rows = r.Stats().RowsOut
				streams[i] = nil
				remaining--
			}
		}
	}
	out.Total = clock.Now().Sub(issue)
	return out
}
